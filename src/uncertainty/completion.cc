#include "uncertainty/completion.h"

#include <cmath>
#include <limits>
#include <vector>

namespace sidq {
namespace uncertainty {

StatusOr<Trajectory> LinearComplete(const Trajectory& sparse,
                                    Timestamp target_interval_ms) {
  if (!sparse.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  if (target_interval_ms <= 0) {
    return Status::InvalidArgument("interval must be positive");
  }
  Trajectory out(sparse.object_id());
  for (size_t i = 0; i < sparse.size(); ++i) {
    if (i > 0) {
      const TrajectoryPoint& a = sparse[i - 1];
      const TrajectoryPoint& b = sparse[i];
      for (Timestamp t = a.t + target_interval_ms; t < b.t;
           t += target_interval_ms) {
        const double f = static_cast<double>(t - a.t) /
                         static_cast<double>(b.t - a.t);
        out.AppendUnordered(
            TrajectoryPoint(t, geometry::Lerp(a.p, b.p, f)));
      }
    }
    out.AppendUnordered(sparse[i]);
  }
  return out;
}

StatusOr<Trajectory> RoadCompleter::Complete(const Trajectory& sparse) const {
  if (!sparse.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  Trajectory out(sparse.object_id());
  const Timestamp interval = options_.target_interval_ms;
  for (size_t i = 0; i < sparse.size(); ++i) {
    if (i > 0) {
      const TrajectoryPoint& a = sparse[i - 1];
      const TrajectoryPoint& b = sparse[i];
      const Timestamp gap = b.t - a.t;
      if (gap >= options_.min_gap_ms) {
        // Build the route polyline a -> nodes(shortest path) -> b.
        std::vector<geometry::Point> route;
        bool have_route = false;
        auto ea = network_->NearestEdge(a.p);
        auto eb = network_->NearestEdge(b.p);
        if (ea.ok() && eb.ok()) {
          const geometry::Point pa = network_->ProjectToEdge(*ea, a.p);
          const geometry::Point pb = network_->ProjectToEdge(*eb, b.p);
          if (*ea == *eb) {
            // Both fixes on one edge: the route is the edge itself.
            route = {a.p, pa, pb, b.p};
            have_route = true;
          } else {
            // Pick the endpoint pair minimising the full route cost;
            // entering at the blindly-closest endpoint can backtrack by up
            // to a whole edge length.
            const auto& edge_a = network_->edge(*ea);
            const auto& edge_b = network_->edge(*eb);
            double best_cost = std::numeric_limits<double>::infinity();
            NodeId best_na = kInvalidNodeId, best_nb = kInvalidNodeId;
            for (NodeId na : {edge_a.u, edge_a.v}) {
              for (NodeId nb : {edge_b.u, edge_b.v}) {
                const double cost =
                    geometry::Distance(pa, network_->node(na).p) +
                    network_->ShortestPathLength(na, nb) +
                    geometry::Distance(network_->node(nb).p, pb);
                if (cost < best_cost) {
                  best_cost = cost;
                  best_na = na;
                  best_nb = nb;
                }
              }
            }
            if (best_na != kInvalidNodeId) {
              auto path = network_->ShortestPath(best_na, best_nb);
              if (path.ok()) {
                route.push_back(a.p);
                route.push_back(pa);
                for (NodeId n : path.value()) {
                  route.push_back(network_->node(n).p);
                }
                route.push_back(pb);
                route.push_back(b.p);
                have_route = true;
              }
            }
          }
        }
        double route_len = 0.0;
        for (size_t k = 1; k < route.size(); ++k) {
          route_len += geometry::Distance(route[k - 1], route[k]);
        }
        const double straight = geometry::Distance(a.p, b.p);
        if (have_route && route_len > 0.0 &&
            route_len <= options_.max_detour_factor * std::max(straight, 1.0)) {
          // Walk the route, emitting points at the target interval with
          // time proportional to distance travelled.
          size_t seg = 0;
          double seg_pos = 0.0;
          for (Timestamp t = a.t + interval; t < b.t; t += interval) {
            const double frac = static_cast<double>(t - a.t) /
                                static_cast<double>(gap);
            double target_dist = frac * route_len;
            // advance along route
            double travelled = 0.0;
            seg = 0;
            seg_pos = 0.0;
            while (seg + 1 < route.size()) {
              const double sl =
                  geometry::Distance(route[seg], route[seg + 1]);
              if (travelled + sl >= target_dist) {
                seg_pos = target_dist - travelled;
                break;
              }
              travelled += sl;
              ++seg;
            }
            geometry::Point p;
            if (seg + 1 >= route.size()) {
              p = route.back();
            } else {
              const double sl =
                  geometry::Distance(route[seg], route[seg + 1]);
              p = sl > 0.0
                      ? geometry::Lerp(route[seg], route[seg + 1],
                                       seg_pos / sl)
                      : route[seg];
            }
            out.AppendUnordered(TrajectoryPoint(t, p));
          }
        } else {
          for (Timestamp t = a.t + interval; t < b.t; t += interval) {
            const double f = static_cast<double>(t - a.t) /
                             static_cast<double>(gap);
            out.AppendUnordered(
                TrajectoryPoint(t, geometry::Lerp(a.p, b.p, f)));
          }
        }
      } else if (gap > interval) {
        for (Timestamp t = a.t + interval; t < b.t; t += interval) {
          const double f =
              static_cast<double>(t - a.t) / static_cast<double>(gap);
          out.AppendUnordered(
              TrajectoryPoint(t, geometry::Lerp(a.p, b.p, f)));
        }
      }
    }
    out.AppendUnordered(sparse[i]);
  }
  return out;
}

}  // namespace uncertainty
}  // namespace sidq

#include "uncertainty/calibration.h"

#include <cmath>
#include <map>
#include <utility>

namespace sidq {
namespace uncertainty {

void TrajectoryCalibrator::BuildAnchors(
    const std::vector<Trajectory>& corpus) {
  struct CellAgg {
    geometry::Point sum;
    size_t count = 0;
  };
  std::map<std::pair<int64_t, int64_t>, CellAgg> cells;
  const double cell = options_.anchor_cell_m;
  for (const Trajectory& tr : corpus) {
    for (const TrajectoryPoint& pt : tr.points()) {
      const std::pair<int64_t, int64_t> key{
          static_cast<int64_t>(std::floor(pt.p.x / cell)),
          static_cast<int64_t>(std::floor(pt.p.y / cell))};
      CellAgg& agg = cells[key];
      agg.sum += pt.p;
      agg.count += 1;
    }
  }
  std::vector<geometry::Point> anchors;
  for (const auto& [key, agg] : cells) {
    if (agg.count >= options_.min_points_per_anchor) {
      anchors.push_back(agg.sum / static_cast<double>(agg.count));
    }
  }
  SetAnchors(std::move(anchors));
}

void TrajectoryCalibrator::SetAnchors(std::vector<geometry::Point> anchors) {
  anchors_ = std::move(anchors);
  std::vector<index::KdTree::Item> items;
  items.reserve(anchors_.size());
  for (size_t i = 0; i < anchors_.size(); ++i) {
    items.push_back(index::KdTree::Item{i, anchors_[i]});
  }
  anchor_index_ = index::KdTree(std::move(items));
}

StatusOr<Trajectory> TrajectoryCalibrator::Calibrate(
    const Trajectory& noisy) const {
  if (anchors_.empty()) {
    return Status::FailedPrecondition("no anchors built");
  }
  Trajectory out(noisy.object_id());
  for (const TrajectoryPoint& pt : noisy.points()) {
    TrajectoryPoint calibrated = pt;
    const auto nn = anchor_index_.KnnWithDistance(pt.p, 1);
    if (!nn.empty() && nn.front().second <= options_.snap_radius_m) {
      calibrated.p = anchors_[nn.front().first];
    }
    out.AppendUnordered(calibrated);
  }
  return out;
}

}  // namespace uncertainty
}  // namespace sidq

#pragma once

#include <vector>

#include "core/statusor.h"
#include "core/trajectory.h"
#include "index/kdtree.h"

namespace sidq {
namespace uncertainty {

// Calibration-based trajectory uncertainty elimination (Su et al.,
// SIGMOD 2013 family): noisy trajectories are aligned to a set of stable
// reference (anchor) points mined from a historical trajectory corpus.
class TrajectoryCalibrator {
 public:
  struct Options {
    // Anchor extraction: corpus points are bucketed on a grid of this cell
    // size; each sufficiently-popular cell contributes its centroid.
    double anchor_cell_m = 40.0;
    size_t min_points_per_anchor = 3;
    // Calibration: a point snaps to its nearest anchor when one lies within
    // this radius; otherwise it is kept as-is.
    double snap_radius_m = 50.0;
  };

  explicit TrajectoryCalibrator(Options options) : options_(options) {}
  TrajectoryCalibrator() : TrajectoryCalibrator(Options{}) {}

  // Mines anchors from a reference corpus (typically historical, denser or
  // cleaner trajectories). Must be called before Calibrate.
  void BuildAnchors(const std::vector<Trajectory>& corpus);
  // Direct anchor injection (e.g. from a map's lane midpoints).
  void SetAnchors(std::vector<geometry::Point> anchors);

  size_t num_anchors() const { return anchors_.size(); }
  const std::vector<geometry::Point>& anchors() const { return anchors_; }

  // Snaps every input point to its nearest anchor within snap_radius_m.
  // Fails when no anchors have been built.
  [[nodiscard]] StatusOr<Trajectory> Calibrate(const Trajectory& noisy) const;

 private:
  Options options_;
  std::vector<geometry::Point> anchors_;
  index::KdTree anchor_index_;
};

}  // namespace uncertainty
}  // namespace sidq

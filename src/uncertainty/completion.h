#pragma once

#include "core/statusor.h"
#include "core/trajectory.h"
#include "core/types.h"
#include "sim/road_network.h"

namespace sidq {
namespace uncertainty {

// Inference-based trajectory uncertainty elimination (Section 2.2.2):
// restores the unobserved path between temporally sparse samples.

// Baseline: fills gaps longer than `target_interval_ms` with points
// linearly interpolated at that interval.
[[nodiscard]] StatusOr<Trajectory> LinearComplete(const Trajectory& sparse,
                                    Timestamp target_interval_ms);

// Route-inference completion using explicit spatial constraints: for each
// gap the most plausible road route between the two observed points is
// reconstructed (nearest edges + network shortest path), and points are
// placed along it at `target_interval_ms`, with timestamps allocated in
// proportion to route distance (Zheng et al., ICDE 2012 / Wu et al.,
// KDD 2016 family).
class RoadCompleter {
 public:
  struct Options {
    Timestamp target_interval_ms = 1000;
    // Gaps shorter than this are linearly interpolated instead.
    Timestamp min_gap_ms = 2500;
    // When the route detour exceeds straight-line distance by this factor,
    // fall back to linear interpolation (the match is likely wrong).
    double max_detour_factor = 3.0;
  };

  RoadCompleter(const sim::RoadNetwork* network, Options options)
      : network_(network), options_(options) {}
  explicit RoadCompleter(const sim::RoadNetwork* network)
      : RoadCompleter(network, Options{}) {}

  [[nodiscard]] StatusOr<Trajectory> Complete(const Trajectory& sparse) const;

 private:
  const sim::RoadNetwork* network_;
  Options options_;
};

}  // namespace uncertainty
}  // namespace sidq

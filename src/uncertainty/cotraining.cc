#include "uncertainty/cotraining.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace uncertainty {

namespace {

// (distance, series index) pairs of the k nearest non-empty series.
std::vector<std::pair<double, size_t>> NearestSeries(
    const StDataset& data, const geometry::Point& p, size_t k) {
  std::vector<std::pair<double, size_t>> d;
  for (size_t i = 0; i < data.num_sensors(); ++i) {
    if (data.series()[i].empty()) continue;
    d.emplace_back(geometry::DistanceSq(data.series()[i].loc(), p), i);
  }
  k = std::min(k, d.size());
  std::partial_sort(d.begin(), d.begin() + k, d.end());
  d.resize(k);
  for (auto& [dist_sq, idx] : d) dist_sq = std::sqrt(dist_sq);
  return d;
}

double SeriesValueAt(const StSeries& s, Timestamp t) {
  const Timestamp clamped =
      std::clamp(t, s.records().front().t, s.records().back().t);
  // The clamped timestamp is always inside the span of a non-empty series,
  // so this cannot fail; value() aborts loudly if that invariant breaks.
  return s.InterpolateAt(clamped).value();
}

}  // namespace

StatusOr<std::vector<CoTrainingEstimator::Estimate>>
CoTrainingEstimator::Run(const StDataset& labeled,
                         const std::vector<Query>& queries) const {
  if (labeled.TotalRecords() == 0) {
    return Status::FailedPrecondition("no labelled data");
  }
  // Per-sensor time means (the static spatial component of each label).
  std::vector<double> means(labeled.num_sensors(), 0.0);
  for (size_t i = 0; i < labeled.num_sensors(); ++i) {
    const StSeries& s = labeled.series()[i];
    if (s.empty()) continue;
    double acc = 0.0;
    for (const StRecord& r : s.records()) acc += r.value;
    means[i] = acc / static_cast<double>(s.size());
  }

  std::vector<Estimate> out(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    const auto nn = NearestSeries(labeled, q.p, options_.k);
    if (nn.empty()) {
      return Status::NotFound("no labelled series near query " +
                              std::to_string(qi));
    }
    // View 1 (spatial): IDW over the k nearest sensors' *instantaneous*
    // values. View 2 (decomposition): IDW over the same sensors' *time
    // means* plus the mean temporal deviation of a 3x wider neighbourhood
    // -- temporal modulation varies more smoothly in space than the field
    // itself, so a wider average denoises it. The two views exploit the
    // labels' temporal structure differently, which makes their errors
    // only partially correlated -- the premise of co-training.
    double wsum = 0.0, inst = 0.0, mean_field = 0.0;
    for (const auto& [dist, idx] : nn) {
      const StSeries& s = labeled.series()[idx];
      const double w =
          1.0 / std::pow(std::max(1.0, dist), options_.idw_power);
      inst += w * SeriesValueAt(s, q.t);
      mean_field += w * means[idx];
      wsum += w;
    }
    const auto wide = NearestSeries(labeled, q.p, options_.k * 3);
    double delta = 0.0;
    for (const auto& [dist, idx] : wide) {
      delta += SeriesValueAt(labeled.series()[idx], q.t) - means[idx];
    }
    delta /= static_cast<double>(wide.size());
    const double spatial = inst / wsum;
    const double decomposed = mean_field / wsum + delta;
    // For a pure IDW the two views coincide; they diverge once the label
    // noise or local dynamics break the decomposition. Average them when
    // they agree (variance reduction); trust the spatial view otherwise.
    if (std::abs(spatial - decomposed) <= options_.agreement_tolerance) {
      out[qi].value = (spatial + decomposed) / 2.0;
      out[qi].pseudo_labeled = true;
    } else {
      out[qi].value = spatial;
      out[qi].pseudo_labeled = false;
    }
  }
  return out;
}

}  // namespace uncertainty
}  // namespace sidq

#pragma once

#include <string>

#include "core/pipeline.h"
#include "core/statusor.h"
#include "core/trajectory.h"

namespace sidq {
namespace uncertainty {

// Smoothing-based trajectory uncertainty elimination (Section 2.2.2):
// exploits temporal autocorrelation of consecutive points to damp
// measurement volatility.

// Centred moving average over a window of `half_window` points each side.
[[nodiscard]] StatusOr<Trajectory> MovingAverageSmooth(const Trajectory& input,
                                         size_t half_window);

// First-order exponential smoothing with factor alpha in (0, 1]; alpha = 1
// reproduces the input.
[[nodiscard]] StatusOr<Trajectory> ExponentialSmooth(const Trajectory& input, double alpha);

// Pipeline stage adapters.
class MovingAverageStage : public TrajectoryStage {
 public:
  explicit MovingAverageStage(size_t half_window)
      : half_window_(half_window) {}
  std::string name() const override { return "moving_average_smooth"; }
  [[nodiscard]] StatusOr<Trajectory> Apply(const Trajectory& input) const override {
    return MovingAverageSmooth(input, half_window_);
  }

 private:
  size_t half_window_;
};

class ExponentialSmoothStage : public TrajectoryStage {
 public:
  explicit ExponentialSmoothStage(double alpha) : alpha_(alpha) {}
  std::string name() const override { return "exponential_smooth"; }
  [[nodiscard]] StatusOr<Trajectory> Apply(const Trajectory& input) const override {
    return ExponentialSmooth(input, alpha_);
  }

 private:
  double alpha_;
};

}  // namespace uncertainty
}  // namespace sidq

#include "uncertainty/interpolation.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

namespace sidq {
namespace uncertainty {

namespace {

// Value of series `s` at time t, clamped to the series span; error when the
// series is empty.
StatusOr<double> SeriesValueAt(const StSeries& s, Timestamp t) {
  if (s.empty()) return Status::FailedPrecondition("empty series");
  const Timestamp clamped =
      std::clamp(t, s.records().front().t, s.records().back().t);
  return s.InterpolateAt(clamped);
}

// Indices of the k sensors nearest to p.
std::vector<size_t> NearestSensors(const StDataset& data,
                                   const geometry::Point& p, size_t k) {
  std::vector<std::pair<double, size_t>> d;
  d.reserve(data.num_sensors());
  for (size_t i = 0; i < data.num_sensors(); ++i) {
    if (data.series()[i].empty()) continue;
    d.emplace_back(geometry::DistanceSq(data.series()[i].loc(), p), i);
  }
  k = std::min(k, d.size());
  std::partial_sort(d.begin(), d.begin() + k, d.end());
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(d[i].second);
  return out;
}

}  // namespace

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

IdwInterpolator::IdwInterpolator(const StDataset* data, Options options)
    : data_(data), options_(options) {}

StatusOr<double> IdwInterpolator::Estimate(const geometry::Point& p,
                                           Timestamp t) const {
  const std::vector<size_t> nn =
      NearestSensors(*data_, p, options_.k);
  if (nn.empty()) return Status::NotFound("no sensors with data");
  double wsum = 0.0, acc = 0.0;
  for (size_t idx : nn) {
    const StSeries& s = data_->series()[idx];
    auto v = SeriesValueAt(s, t);
    if (!v.ok()) continue;
    const double d =
        std::max(options_.epsilon_m, geometry::Distance(s.loc(), p));
    const double w = 1.0 / std::pow(d, options_.power);
    acc += w * v.value();
    wsum += w;
  }
  if (wsum <= 0.0) return Status::NotFound("no usable neighbour series");
  return acc / wsum;
}

StatusOr<double> KernelInterpolator::Estimate(const geometry::Point& p,
                                              Timestamp t) const {
  const double inv_2h2 =
      1.0 / (2.0 * options_.bandwidth_m * options_.bandwidth_m);
  double wsum = 0.0, acc = 0.0;
  for (const StSeries& s : data_->series()) {
    auto v = SeriesValueAt(s, t);
    if (!v.ok()) continue;
    const double d_sq = geometry::DistanceSq(s.loc(), p);
    const double w = std::exp(-d_sq * inv_2h2);
    acc += w * v.value();
    wsum += w;
  }
  if (wsum <= 1e-300) return Status::NotFound("no usable series");
  return acc / wsum;
}

TrendClusterInterpolator::TrendClusterInterpolator(const StDataset* data,
                                                   Options options)
    : data_(data), options_(options) {
  const size_t n = data_->num_sensors();
  // Union-find over sensors; join spatial neighbours with correlated trends.
  std::vector<size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<std::vector<double>> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = data_->series()[i].Values();
  for (size_t i = 0; i < n; ++i) {
    const std::vector<size_t> nb = NearestSensors(
        *data_, data_->series()[i].loc(), options_.neighbors + 1);
    for (size_t j : nb) {
      if (j == i) continue;
      if (PearsonCorrelation(values[i], values[j]) >=
          options_.min_correlation) {
        parent[find(i)] = find(j);
      }
    }
  }
  cluster_of_.assign(n, -1);
  num_clusters_ = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t root = find(i);
    if (cluster_of_[root] < 0) cluster_of_[root] = num_clusters_++;
    cluster_of_[i] = cluster_of_[root];
  }
}

StatusOr<double> TrendClusterInterpolator::Estimate(const geometry::Point& p,
                                                    Timestamp t) const {
  const std::vector<size_t> nearest = NearestSensors(*data_, p, 1);
  if (nearest.empty()) return Status::NotFound("no sensors with data");
  const int cluster = cluster_of_[nearest.front()];
  // IDW over same-cluster sensors only.
  std::vector<std::pair<double, size_t>> members;
  for (size_t i = 0; i < data_->num_sensors(); ++i) {
    if (cluster_of_[i] != cluster || data_->series()[i].empty()) continue;
    members.emplace_back(
        geometry::DistanceSq(data_->series()[i].loc(), p), i);
  }
  const size_t k = std::min(options_.idw.k, members.size());
  std::partial_sort(members.begin(), members.begin() + k, members.end());
  double wsum = 0.0, acc = 0.0;
  for (size_t m = 0; m < k; ++m) {
    const StSeries& s = data_->series()[members[m].second];
    auto v = SeriesValueAt(s, t);
    if (!v.ok()) continue;
    const double d =
        std::max(options_.idw.epsilon_m, geometry::Distance(s.loc(), p));
    const double w = 1.0 / std::pow(d, options_.idw.power);
    acc += w * v.value();
    wsum += w;
  }
  if (wsum <= 0.0) return Status::NotFound("no usable cluster members");
  return acc / wsum;
}

}  // namespace uncertainty
}  // namespace sidq

#include "uncertainty/fusion.h"

#include <cmath>

#include "core/logging.h"

namespace sidq {
namespace uncertainty {

StatusOr<StDataset> FuseStid(const StDataset& primary,
                             const StDataset& auxiliary,
                             const StidFusionOptions& options) {
  if (options.radius_m <= 0.0 || options.window_ms <= 0) {
    return Status::InvalidArgument("radius and window must be positive");
  }
  StDataset out(primary.field_name());
  const double r_sq = options.radius_m * options.radius_m;
  for (const StSeries& s : primary.series()) {
    StSeries fused(s.sensor(), s.loc());
    for (const StRecord& rec : s.records()) {
      const double sigma =
          rec.stddev > 0.0 ? rec.stddev : options.default_sigma;
      double wsum = 1.0 / (sigma * sigma);
      double acc = rec.value * wsum;
      for (const StSeries& aux : auxiliary.series()) {
        if (geometry::DistanceSq(aux.loc(), rec.loc) > r_sq) continue;
        // Use the aux record closest in time within the window.
        const StRecord* best = nullptr;
        Timestamp best_dt = options.window_ms + 1;
        for (const StRecord& ar : aux.records()) {
          const Timestamp dt = std::abs(ar.t - rec.t);
          if (dt <= options.window_ms && dt < best_dt) {
            best = &ar;
            best_dt = dt;
          }
        }
        if (best != nullptr) {
          const double as =
              best->stddev > 0.0 ? best->stddev : options.default_sigma;
          const double w = 1.0 / (as * as);
          acc += best->value * w;
          wsum += w;
        }
      }
      SIDQ_CHECK_OK(
          fused.Append(rec.t, acc / wsum, std::sqrt(1.0 / wsum)));
    }
    out.AddSeries(std::move(fused));
  }
  return out;
}

}  // namespace uncertainty
}  // namespace sidq

#pragma once

#include <memory>
#include <vector>

#include "core/statusor.h"
#include "core/stid.h"
#include "core/types.h"
#include "geometry/point.h"

namespace sidq {
namespace uncertainty {

// STID uncertainty elimination via spatiotemporal interpolation
// (Section 2.2.2): estimates the thematic value at an unsampled
// location-time point from spatiotemporally nearby samples. All
// implementations resolve time by per-sensor linear interpolation and
// differ in how they combine across sensors.
class StInterpolator {
 public:
  virtual ~StInterpolator() = default;
  // Estimated value at (p, t); fails when no sensor has data covering t.
  virtual StatusOr<double> Estimate(const geometry::Point& p,
                                    Timestamp t) const = 0;
};

// Inverse-distance weighting over the k spatially nearest sensors.
class IdwInterpolator : public StInterpolator {
 public:
  struct Options {
    size_t k = 6;
    double power = 2.0;
    double epsilon_m = 1.0;  // distance floor
  };

  IdwInterpolator(const StDataset* data, Options options);
  explicit IdwInterpolator(const StDataset* data)
      : IdwInterpolator(data, Options{}) {}

  [[nodiscard]] StatusOr<double> Estimate(const geometry::Point& p,
                            Timestamp t) const override;

 private:
  const StDataset* data_;
  Options options_;
};

// Gaussian kernel regression (Nadaraya-Watson) with bandwidth h over all
// sensors.
class KernelInterpolator : public StInterpolator {
 public:
  struct Options {
    double bandwidth_m = 400.0;
  };

  KernelInterpolator(const StDataset* data, Options options)
      : data_(data), options_(options) {}
  explicit KernelInterpolator(const StDataset* data)
      : KernelInterpolator(data, Options{}) {}

  [[nodiscard]] StatusOr<double> Estimate(const geometry::Point& p,
                            Timestamp t) const override;

 private:
  const StDataset* data_;
  Options options_;
};

// Trend-cluster interpolation (Appice et al., JoSIS 2013 family): sensors
// are grouped by the similarity of their temporal trends (Pearson
// correlation over value series >= min_correlation joins two sensors);
// estimation uses IDW restricted to the cluster of the nearest sensor, so
// values never leak across spatial regimes with different dynamics.
class TrendClusterInterpolator : public StInterpolator {
 public:
  struct Options {
    double min_correlation = 0.7;
    // Candidate edges: each sensor is tested against its m nearest sensors.
    size_t neighbors = 8;
    IdwInterpolator::Options idw;
  };

  TrendClusterInterpolator(const StDataset* data, Options options);
  explicit TrendClusterInterpolator(const StDataset* data)
      : TrendClusterInterpolator(data, Options{}) {}

  [[nodiscard]] StatusOr<double> Estimate(const geometry::Point& p,
                            Timestamp t) const override;

  // Cluster label per sensor index (for inspection/tests).
  const std::vector<int>& cluster_of() const { return cluster_of_; }
  int num_clusters() const { return num_clusters_; }

 private:
  const StDataset* data_;
  Options options_;
  std::vector<int> cluster_of_;
  int num_clusters_ = 0;
};

// Pearson correlation between two equally-long series; 0 when degenerate.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace uncertainty
}  // namespace sidq

#pragma once

#include "core/statusor.h"
#include "core/stid.h"
#include "core/types.h"

namespace sidq {
namespace uncertainty {

// Data-fusion-based measurement uncertainty reduction (Okafor et al., ICT
// Express 2020 family): each primary record is fused with auxiliary-source
// records taken nearby in space and time by inverse-variance weighting.
// Per-record `stddev` fields drive the weights (records with stddev <= 0
// get `default_sigma`).
struct StidFusionOptions {
  double radius_m = 150.0;
  Timestamp window_ms = 60'000;
  double default_sigma = 1.0;
};

// Returns a copy of `primary` whose values (and stddevs) are fused with
// matching `auxiliary` records. Records with no auxiliary match are kept.
[[nodiscard]] StatusOr<StDataset> FuseStid(const StDataset& primary,
                             const StDataset& auxiliary,
                             const StidFusionOptions& options);

}  // namespace uncertainty
}  // namespace sidq

#include "uncertainty/smoothing.h"

#include <algorithm>

namespace sidq {
namespace uncertainty {

StatusOr<Trajectory> MovingAverageSmooth(const Trajectory& input,
                                         size_t half_window) {
  if (!input.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  Trajectory out(input.object_id());
  const size_t n = input.size();
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= half_window ? i - half_window : 0;
    const size_t hi = std::min(n - 1, i + half_window);
    geometry::Point acc(0.0, 0.0);
    for (size_t j = lo; j <= hi; ++j) acc += input[j].p;
    TrajectoryPoint pt = input[i];
    pt.p = acc / static_cast<double>(hi - lo + 1);
    out.AppendUnordered(pt);
  }
  return out;
}

StatusOr<Trajectory> ExponentialSmooth(const Trajectory& input,
                                       double alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (!input.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  Trajectory out(input.object_id());
  geometry::Point state;
  for (size_t i = 0; i < input.size(); ++i) {
    if (i == 0) {
      state = input[i].p;
    } else {
      state = state * (1.0 - alpha) + input[i].p * alpha;
    }
    TrajectoryPoint pt = input[i];
    pt.p = state;
    out.AppendUnordered(pt);
  }
  return out;
}

}  // namespace uncertainty
}  // namespace sidq

#pragma once

#include <vector>

#include "core/statusor.h"
#include "core/stid.h"
#include "core/types.h"
#include "geometry/point.h"

namespace sidq {
namespace uncertainty {

// Semi-supervised field estimation by co-training views (Section 2.1
// "learning paradigm" perspective; Chen et al., UbiComp 2016 family for
// fine-grained air quality). Two partially independent views estimate the
// value at an unlabelled location-time point:
//   - the SPATIAL view: IDW over the nearest sensors' instantaneous values;
//   - the DECOMPOSITION view: IDW over the same sensors' *time means* plus
//     the temporal deviation averaged over a wider neighbourhood.
// Where the views agree within `agreement_tolerance`, their average is a
// *pseudo-label*: an unlabelled point whose estimate is trustworthy enough
// to act as a label for downstream consumers -- the way semi-supervised
// methods mitigate label scarcity. Disagreement flags the estimate as
// uncertain and the spatial view is used alone.
class CoTrainingEstimator {
 public:
  struct Options {
    // Spatial view: IDW neighbours.
    size_t k = 5;
    double idw_power = 2.0;
    // Views agreeing within this tolerance create a pseudo-label.
    double agreement_tolerance = 2.0;
  };

  explicit CoTrainingEstimator(Options options) : options_(options) {}
  CoTrainingEstimator() : CoTrainingEstimator(Options{}) {}

  struct Query {
    geometry::Point p;
    Timestamp t = 0;
  };
  struct Estimate {
    double value = 0.0;
    // True when the estimate was reinforced by view agreement (higher
    // confidence).
    bool pseudo_labeled = false;
  };

  // Estimates values at `queries` given the labelled dataset. Queries
  // should share time instants with the data (standard STID gridding).
  [[nodiscard]] StatusOr<std::vector<Estimate>> Run(const StDataset& labeled,
                                      const std::vector<Query>& queries) const;

 private:
  Options options_;
};

}  // namespace uncertainty
}  // namespace sidq

#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/logging.h"
#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "obs/metrics.h"

namespace sidq {
namespace exec {

// Fixed-size work-stealing thread pool. Tasks are distributed round-robin
// over per-worker deques; an idle worker first drains its own deque in FIFO
// order, then steals from the back of its siblings' deques, so a skewed
// shard assignment cannot strand work behind one slow queue.
//
// Error propagation follows the repo-wide Status idiom: tasks return
// Status / StatusOr<T> *by value* through the future -- the pool never
// traffics in exceptions. Shutdown is graceful: every task queued before
// Shutdown() runs to completion before the workers join, so futures
// obtained from Submit() never dangle. A task submitted at or after the
// start of Shutdown() is rejected: its future resolves immediately to
// Status::Unavailable (never silently dropped), so racing producers always
// learn the fate of their work.
//
// This is the only place in the tree allowed to spawn std::thread
// (sidq-lint rule R6); everything else parallelizes through this pool.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1; pass 0 to use
  // std::thread::hardware_concurrency()). With a registry, the pool counts
  // exec.pool.{tasks,steals,rejected} -- all kVolatile, since how often
  // workers steal (and whether a submission races shutdown) is pure OS
  // scheduling, exactly what the determinism contract keeps out of golden
  // snapshots.
  explicit ThreadPool(size_t num_threads,
                      obs::MetricsRegistry* metrics = nullptr);
  // Graceful: equivalent to Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  // Enqueues `fn` and returns a future for its result. Submitting from
  // multiple threads is safe. Once Shutdown() has begun the task is NOT
  // run: the future resolves to Status::Unavailable (the result type must
  // be constructible from Status -- the repo-wide Status/StatusOr idiom),
  // so a submission racing Shutdown() is reported, not dropped.
  template <typename F>
  auto Submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    static_assert(std::is_constructible_v<R, Status>,
                  "ThreadPool tasks must return Status or StatusOr<T> so "
                  "post-Shutdown rejection can be reported through the "
                  "future");
    // packaged_task is move-only but std::function requires copyable
    // callables, so the task lives behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    if (!Enqueue([task] { (*task)(); })) {
      rejected_counter_.Increment();
      std::packaged_task<R()> reject([]() -> R {
        return Status::Unavailable("task submitted after ThreadPool shutdown");
      });
      future = reject.get_future();
      reject();
    }
    return future;
  }

  // Drains every queued task, then joins the workers. Idempotent.
  void Shutdown() SIDQ_EXCLUDES(mu_);

 private:
  struct Worker {
    Mutex mu;
    std::deque<std::function<void()>> queue SIDQ_GUARDED_BY(mu);
  };

  // False when the pool is shutting down (task not queued). Lock order:
  // takes mu_ first, then the target worker's mu nested inside it (see
  // DESIGN.md "Concurrency & locking discipline"); hence EXCLUDES both.
  [[nodiscard]] bool Enqueue(std::function<void()> task) SIDQ_EXCLUDES(mu_);
  void WorkerLoop(size_t self) SIDQ_EXCLUDES(mu_);
  // Pops own work (front) or steals (back); false when every queue is empty.
  bool TryPop(size_t self, std::function<void()>* task) SIDQ_EXCLUDES(mu_);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // mu_/cv_ guard the idle/wakeup protocol; `queued_` counts tasks pushed
  // but not yet popped so sleepers never miss a submission.
  Mutex mu_;
  CondVar cv_;
  size_t queued_ SIDQ_GUARDED_BY(mu_) = 0;
  bool shutdown_ SIDQ_GUARDED_BY(mu_) = false;

  std::atomic<size_t> next_queue_{0};

  // Detached no-ops when the pool was built without a registry.
  obs::Counter tasks_counter_;
  obs::Counter steals_counter_;
  obs::Counter rejected_counter_;
};

}  // namespace exec
}  // namespace sidq

#include "exec/steady_clock.h"

#include <chrono>
#include <thread>

namespace sidq {
namespace exec {

int64_t SteadyClock::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SteadyClock::SleepMs(int64_t ms) const {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

const SteadyClock* SteadyClock::Global() {
  static const SteadyClock clock;
  return &clock;
}

}  // namespace exec
}  // namespace sidq

#include "exec/thread_pool.h"

#include <algorithm>

namespace sidq {
namespace exec {

ThreadPool::ThreadPool(size_t num_threads, obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    tasks_counter_ =
        metrics->counter("exec.pool.tasks", obs::MetricStability::kVolatile);
    steals_counter_ =
        metrics->counter("exec.pool.steals", obs::MetricStability::kVolatile);
    rejected_counter_ = metrics->counter("exec.pool.rejected",
                                         obs::MetricStability::kVolatile);
  }
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Enqueue(std::function<void()> task) {
  const size_t idx =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    // The shutdown check, queue push, and queued_ increment must be one
    // atomic step with respect to Shutdown(): checking first and pushing
    // later left a window where a task enqueued mid-shutdown was never
    // counted, so the workers drained queued_ == 0 and joined with the
    // task still sitting in a deque -- a silent drop. Nesting the worker
    // mutex inside mu_ is safe: no other path holds them simultaneously.
    MutexLock lock(mu_);
    if (shutdown_) return false;
    {
      MutexLock wlock(workers_[idx]->mu);
      workers_[idx]->queue.push_back(std::move(task));
    }
    ++queued_;
  }
  tasks_counter_.Increment();
  cv_.NotifyOne();
  return true;
}

bool ThreadPool::TryPop(size_t self, std::function<void()>* task) {
  const size_t n = workers_.size();
  for (size_t k = 0; k < n; ++k) {
    Worker& w = *workers_[(self + k) % n];
    {
      MutexLock lock(w.mu);
      if (w.queue.empty()) continue;
      if (k == 0) {
        *task = std::move(w.queue.front());
        w.queue.pop_front();
      } else {
        *task = std::move(w.queue.back());
        w.queue.pop_back();
        steals_counter_.Increment();
      }
    }
    {
      MutexLock lock(mu_);
      --queued_;
    }
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    std::function<void()> task;
    if (TryPop(self, &task)) {
      task();
      task = nullptr;  // release captures before sleeping
      continue;
    }
    MutexLock lock(mu_);
    // Condition loop instead of a predicate lambda: the guarded reads of
    // queued_/shutdown_ stay inside this analyzed scope (core/mutex.h).
    while (queued_ == 0 && !shutdown_) cv_.Wait(mu_);
    if (queued_ == 0 && shutdown_) return;
  }
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace exec
}  // namespace sidq

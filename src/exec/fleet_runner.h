#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/clock.h"
#include "core/pipeline.h"
#include "core/quality.h"
#include "core/retry.h"
#include "core/status.h"
#include "core/trajectory.h"

namespace sidq {

namespace obs {
struct ObsSinks;
}  // namespace obs

namespace exec {

// What a per-object pipeline failure does to the rest of the fleet.
enum class FailurePolicy {
  // First-error-wins: flip the fleet cancellation flag (when
  // Options::cancel_on_error), skip unstarted shards, abort in-flight
  // objects at their next cooperative check. The pre-resilience behaviour.
  kFailFast,
  // Quarantine the failing object (after its retries and ladder rungs are
  // exhausted), keep cleaning everything else, and return partial results
  // with per-object annotations. A fleet-level circuit breaker
  // (Options::max_quarantine_fraction) still aborts runs where failure is
  // the rule rather than the exception.
  kBestEffort,
};

// How a fleet batch is cut into per-task shards.
enum class ShardingMode {
  // Contiguous index chunks of Options::shard_size. Cheapest; the work
  // stealing pool absorbs moderate imbalance.
  kRoundRobin,
  // AdaptiveQuadPartition over trajectory centroids with a per-partition
  // load cap (Options::skew_max_load). Choose this when the fleet is
  // spatially clustered *and* per-trajectory cost correlates with location
  // (e.g. downtown trajectories hit denser road networks), so that one
  // hot region does not become one giant task.
  kSkewAware,
};

// count / mean / p50 / p99 of one DQ metric across the fleet.
struct MetricAggregate {
  size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

// Aggregate DQ statistics for one pipeline stage across every trajectory
// that reached that stage: the fleet-level DqReport.
struct FleetStageStats {
  std::string stage_name;
  std::map<DqDimension, MetricAggregate> metrics;

  // The per-dimension means as a DqReport, for DiagnoseChanges interop.
  [[nodiscard]] DqReport MeanReport() const;
  [[nodiscard]] std::string ToString() const;
};

// Per-object resilience annotation: how the object's result was obtained.
// Objects that cleaned at full fidelity on the first attempt produce no
// annotation; everything else (retries, degraded ladder rungs, quarantine)
// is recorded here, sorted by input index.
struct ObjectAnnotation {
  size_t index = 0;
  ObjectId id = 0;
  ExecQuality quality = ExecQuality::kFull;
  int retries = 0;
  // Ladder falls, in stage order (empty unless quality >= kDegraded or a
  // fallback rung rescued the object).
  std::vector<DegradeEvent> degraded;
  // Terminal status: OK unless the object was quarantined / failed.
  Status status;
};

// Outcome of one fleet run. Per-trajectory statuses are reported instead of
// one flattened StatusOr so that a single poisoned trajectory does not
// discard the 9,999 that cleaned fine.
struct FleetResult {
  // Cleaned trajectory per input index; meaningful iff statuses[i].ok().
  std::vector<Trajectory> cleaned;
  // Per-trajectory terminal status: OK, the failing stage's error, or
  // Cancelled when first-error-wins cancellation skipped its shard.
  std::vector<Status> statuses;
  // The stage failure with the lowest input index among shards that
  // executed; OK when the whole fleet cleaned. With cancellation enabled
  // and a single failing trajectory this is deterministic; with several
  // failures the winner among *executed* shards can depend on scheduling
  // (disable cancel_on_error for exhaustive error reporting).
  Status first_error;
  // Fleet-level aggregates, num_stages()+1 entries starting with "input";
  // filled by RunProfiled only.
  std::vector<FleetStageStats> stage_stats;

  size_t shards_total = 0;
  size_t shards_cancelled = 0;

  // Resilience outcome (filled for every run; empty/zero when nothing
  // retried, degraded, or failed).
  std::vector<ObjectAnnotation> annotations;
  size_t objects_quarantined = 0;
  size_t objects_degraded = 0;
  size_t retries_total = 0;
  // True when the best-effort circuit breaker aborted the run because too
  // large a fraction of the fleet was quarantined.
  bool breaker_tripped = false;

  [[nodiscard]] bool ok() const {
    return first_error.ok() && shards_cancelled == 0;
  }
  // Best-effort success: every shard executed and the breaker held; some
  // objects may still be quarantined (see annotations).
  [[nodiscard]] bool partial_ok() const {
    return shards_cancelled == 0 && !breaker_tripped;
  }
  // Input indices of quarantined objects, ascending.
  [[nodiscard]] std::vector<size_t> QuarantinedIndices() const;
  // One-line human summary, e.g.
  // "fleet: 23/24 full, 2 degraded, 1 quarantined, 5 retries".
  [[nodiscard]] std::string ResilienceSummary() const;
};

// Runs a TrajectoryPipeline over a batch of trajectories on a work-stealing
// ThreadPool.
//
// Determinism contract: trajectory i is cleaned with the RNG substream
// DeriveSeed(base_seed, fleet[i].object_id()) and results are written back
// by input index, so the output is bit-identical to
// TrajectoryPipeline::RunBatch() -- regardless of worker count, sharding
// mode, or OS scheduling. (Trajectories sharing an object_id share a
// substream; give fleet members distinct ids.)
//
// Failure contract: first-error-wins. The first stage failure flips a
// cancellation flag; shards that have not started yet finish immediately,
// marking their trajectories Cancelled. Shards already in flight complete
// normally. Set cancel_on_error=false to always clean everything.
class FleetRunner {
 public:
  struct Options {
    // Worker threads; <= 0 means std::thread::hardware_concurrency().
    int num_threads = 0;
    ShardingMode sharding = ShardingMode::kRoundRobin;
    // Trajectories per task under kRoundRobin. Small shards expose more
    // parallelism; large shards amortize scheduling.
    size_t shard_size = 16;
    // Per-partition trajectory cap under kSkewAware.
    size_t skew_max_load = 64;
    // Base seed of the per-trajectory substreams.
    uint64_t base_seed = 42;
    // First-error-wins cancellation (kFailFast only).
    bool cancel_on_error = true;

    // --- resilience ---
    FailurePolicy failure_policy = FailurePolicy::kFailFast;
    // Per-stage retry policy for transient failures; max_retries = 0
    // disables retrying. Backoff jitter draws from the per-object
    // substream DeriveSeed(base_seed ^ kRetryStreamSalt, object_id), so
    // retried output is bit-identical for any worker count.
    RetryPolicy retry;
    // Per-trajectory time budget; 0 disables deadlines. Enforced
    // cooperatively by context-aware stages/kernels.
    int64_t deadline_ms = 0;
    // true: every trajectory runs against its own VirtualClock starting at
    // 0, so injected stalls and backoffs are instant and one object's
    // stalls can never consume another's budget -- fully deterministic
    // (tests, chaos runs). false: deadlines/backoffs use `clock` below.
    bool virtual_time = false;
    // Wall clock for deadlines/backoffs when virtual_time is false;
    // nullptr = process-wide SteadyClock.
    const Clock* clock = nullptr;
    // Circuit breaker (kBestEffort only): abort the run once more than
    // this fraction of the fleet has been quarantined. >= 1.0 disables.
    // Tripping is an early-exit race like cancel_on_error: *which* shards
    // get skipped depends on scheduling, the trip decision itself does not.
    double max_quarantine_fraction = 1.0;

    // --- observability ---
    // Metrics + trace sinks (borrowed, nullable). The runner records
    // fleet.* gauges, per-stage counters/duration histograms, retry and
    // degrade counters, and one span tree per object keyed by object id
    // (fleet-level spans under obs::kProcessKey). Under virtual_time the
    // default metrics snapshot and the canonical span list are
    // bit-identical for any worker count (DESIGN.md "Observability").
    const obs::ObsSinks* obs = nullptr;
  };

  // `pipeline` must outlive the runner and is shared read-only across
  // workers; stages must therefore be const-thread-safe.
  FleetRunner(const TrajectoryPipeline* pipeline, Options options);

  [[nodiscard]] FleetResult Run(const std::vector<Trajectory>& fleet) const;

  // Also profiles every trajectory before the first and after each stage
  // (against truths[i] when `truths` is non-null, aligned with `fleet`) and
  // merges the per-trajectory StageReports into FleetResult::stage_stats.
  [[nodiscard]] FleetResult RunProfiled(
      const std::vector<Trajectory>& fleet,
      const std::vector<Trajectory>* truths,
      const TrajectoryProfiler& profiler) const;

  // The shard index sets the next Run would use (exposed for tests and
  // load-balance introspection). Every input index appears exactly once.
  [[nodiscard]] std::vector<std::vector<size_t>> MakeShards(
      const std::vector<Trajectory>& fleet) const;

 private:
  FleetResult RunInternal(const std::vector<Trajectory>& fleet,
                          const std::vector<Trajectory>* truths,
                          const TrajectoryProfiler* profiler) const;

  const TrajectoryPipeline* pipeline_;
  Options options_;
};

}  // namespace exec
}  // namespace sidq

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/quality.h"
#include "core/status.h"
#include "core/trajectory.h"

namespace sidq {
namespace exec {

// How a fleet batch is cut into per-task shards.
enum class ShardingMode {
  // Contiguous index chunks of Options::shard_size. Cheapest; the work
  // stealing pool absorbs moderate imbalance.
  kRoundRobin,
  // AdaptiveQuadPartition over trajectory centroids with a per-partition
  // load cap (Options::skew_max_load). Choose this when the fleet is
  // spatially clustered *and* per-trajectory cost correlates with location
  // (e.g. downtown trajectories hit denser road networks), so that one
  // hot region does not become one giant task.
  kSkewAware,
};

// count / mean / p50 / p99 of one DQ metric across the fleet.
struct MetricAggregate {
  size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

// Aggregate DQ statistics for one pipeline stage across every trajectory
// that reached that stage: the fleet-level DqReport.
struct FleetStageStats {
  std::string stage_name;
  std::map<DqDimension, MetricAggregate> metrics;

  // The per-dimension means as a DqReport, for DiagnoseChanges interop.
  [[nodiscard]] DqReport MeanReport() const;
  [[nodiscard]] std::string ToString() const;
};

// Outcome of one fleet run. Per-trajectory statuses are reported instead of
// one flattened StatusOr so that a single poisoned trajectory does not
// discard the 9,999 that cleaned fine.
struct FleetResult {
  // Cleaned trajectory per input index; meaningful iff statuses[i].ok().
  std::vector<Trajectory> cleaned;
  // Per-trajectory terminal status: OK, the failing stage's error, or
  // Cancelled when first-error-wins cancellation skipped its shard.
  std::vector<Status> statuses;
  // The stage failure with the lowest input index among shards that
  // executed; OK when the whole fleet cleaned. With cancellation enabled
  // and a single failing trajectory this is deterministic; with several
  // failures the winner among *executed* shards can depend on scheduling
  // (disable cancel_on_error for exhaustive error reporting).
  Status first_error;
  // Fleet-level aggregates, num_stages()+1 entries starting with "input";
  // filled by RunProfiled only.
  std::vector<FleetStageStats> stage_stats;

  size_t shards_total = 0;
  size_t shards_cancelled = 0;

  [[nodiscard]] bool ok() const {
    return first_error.ok() && shards_cancelled == 0;
  }
};

// Runs a TrajectoryPipeline over a batch of trajectories on a work-stealing
// ThreadPool.
//
// Determinism contract: trajectory i is cleaned with the RNG substream
// DeriveSeed(base_seed, fleet[i].object_id()) and results are written back
// by input index, so the output is bit-identical to
// TrajectoryPipeline::RunBatch() -- regardless of worker count, sharding
// mode, or OS scheduling. (Trajectories sharing an object_id share a
// substream; give fleet members distinct ids.)
//
// Failure contract: first-error-wins. The first stage failure flips a
// cancellation flag; shards that have not started yet finish immediately,
// marking their trajectories Cancelled. Shards already in flight complete
// normally. Set cancel_on_error=false to always clean everything.
class FleetRunner {
 public:
  struct Options {
    // Worker threads; <= 0 means std::thread::hardware_concurrency().
    int num_threads = 0;
    ShardingMode sharding = ShardingMode::kRoundRobin;
    // Trajectories per task under kRoundRobin. Small shards expose more
    // parallelism; large shards amortize scheduling.
    size_t shard_size = 16;
    // Per-partition trajectory cap under kSkewAware.
    size_t skew_max_load = 64;
    // Base seed of the per-trajectory substreams.
    uint64_t base_seed = 42;
    // First-error-wins cancellation.
    bool cancel_on_error = true;
  };

  // `pipeline` must outlive the runner and is shared read-only across
  // workers; stages must therefore be const-thread-safe.
  FleetRunner(const TrajectoryPipeline* pipeline, Options options);

  [[nodiscard]] FleetResult Run(const std::vector<Trajectory>& fleet) const;

  // Also profiles every trajectory before the first and after each stage
  // (against truths[i] when `truths` is non-null, aligned with `fleet`) and
  // merges the per-trajectory StageReports into FleetResult::stage_stats.
  [[nodiscard]] FleetResult RunProfiled(
      const std::vector<Trajectory>& fleet,
      const std::vector<Trajectory>* truths,
      const TrajectoryProfiler& profiler) const;

  // The shard index sets the next Run would use (exposed for tests and
  // load-balance introspection). Every input index appears exactly once.
  [[nodiscard]] std::vector<std::vector<size_t>> MakeShards(
      const std::vector<Trajectory>& fleet) const;

 private:
  FleetResult RunInternal(const std::vector<Trajectory>& fleet,
                          const std::vector<Trajectory>* truths,
                          const TrajectoryProfiler* profiler) const;

  const TrajectoryPipeline* pipeline_;
  Options options_;
};

}  // namespace exec
}  // namespace sidq

#include "exec/fleet_runner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <future>
#include <thread>
#include <utility>

#include "core/exec_context.h"
#include "core/random.h"
#include "exec/steady_clock.h"
#include "exec/thread_pool.h"
#include "geometry/point.h"
#include "obs/observer.h"
#include "query/partition.h"

namespace sidq {
namespace exec {

namespace {

// Nearest-rank percentile of an already-sorted sample.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const size_t idx = static_cast<size_t>(std::max(1.0, rank)) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

geometry::Point Centroid(const Trajectory& t) {
  geometry::Point c;
  if (t.empty()) return c;
  for (const TrajectoryPoint& pt : t.points()) {
    c.x += pt.p.x;
    c.y += pt.p.y;
  }
  c.x /= static_cast<double>(t.size());
  c.y /= static_cast<double>(t.size());
  return c;
}

}  // namespace

std::vector<size_t> FleetResult::QuarantinedIndices() const {
  std::vector<size_t> out;
  for (const ObjectAnnotation& a : annotations) {
    if (a.quality == ExecQuality::kQuarantined) out.push_back(a.index);
  }
  return out;
}

std::string FleetResult::ResilienceSummary() const {
  const size_t n = statuses.size();
  const size_t full = n - objects_quarantined - objects_degraded;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "fleet: %zu/%zu full, %zu degraded, %zu quarantined, "
                "%zu retries%s",
                full, n, objects_degraded, objects_quarantined,
                retries_total, breaker_tripped ? ", BREAKER TRIPPED" : "");
  return buf;
}

DqReport FleetStageStats::MeanReport() const {
  DqReport report;
  for (const auto& [dim, agg] : metrics) report.Set(dim, agg.mean);
  return report;
}

std::string FleetStageStats::ToString() const {
  std::string out = "stage '" + stage_name + "':";
  for (const auto& [dim, agg] : metrics) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  " %s{n=%zu mean=%.3f p50=%.3f p99=%.3f}",
                  DqDimensionName(dim), agg.count, agg.mean, agg.p50,
                  agg.p99);
    out += buf;
  }
  return out;
}

FleetRunner::FleetRunner(const TrajectoryPipeline* pipeline, Options options)
    : pipeline_(pipeline), options_(options) {}

std::vector<std::vector<size_t>> FleetRunner::MakeShards(
    const std::vector<Trajectory>& fleet) const {
  std::vector<std::vector<size_t>> shards;
  if (fleet.empty()) return shards;

  if (options_.sharding == ShardingMode::kRoundRobin) {
    const size_t shard_size = std::max<size_t>(1, options_.shard_size);
    for (size_t begin = 0; begin < fleet.size(); begin += shard_size) {
      std::vector<size_t> shard;
      const size_t end = std::min(fleet.size(), begin + shard_size);
      shard.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) shard.push_back(i);
      shards.push_back(std::move(shard));
    }
    return shards;
  }

  // Skew-aware: partition trajectory centroids with the adaptive quadtree,
  // then group trajectories by the partition box containing their centroid.
  // Point-free trajectories have no centroid and collect in a shard of
  // their own.
  std::vector<geometry::Point> centroids;
  std::vector<size_t> with_points;
  std::vector<size_t> empties;
  for (size_t i = 0; i < fleet.size(); ++i) {
    if (fleet[i].empty()) {
      empties.push_back(i);
    } else {
      with_points.push_back(i);
      centroids.push_back(Centroid(fleet[i]));
    }
  }
  const auto partitions = query::AdaptiveQuadPartition(
      centroids, std::max<size_t>(1, options_.skew_max_load));
  std::vector<std::vector<size_t>> buckets(partitions.size());
  for (size_t k = 0; k < centroids.size(); ++k) {
    // First containing box wins; boxes tile the (expanded) bounds, so a
    // centroid on a shared seam is claimed deterministically once.
    bool placed = false;
    for (size_t b = 0; b < partitions.size(); ++b) {
      if (partitions[b].box.Contains(centroids[k])) {
        buckets[b].push_back(with_points[k]);
        placed = true;
        break;
      }
    }
    if (!placed) empties.push_back(with_points[k]);
  }
  for (std::vector<size_t>& bucket : buckets) {
    if (!bucket.empty()) shards.push_back(std::move(bucket));
  }
  if (!empties.empty()) {
    std::sort(empties.begin(), empties.end());
    shards.push_back(std::move(empties));
  }
  return shards;
}

FleetResult FleetRunner::Run(const std::vector<Trajectory>& fleet) const {
  return RunInternal(fleet, nullptr, nullptr);
}

FleetResult FleetRunner::RunProfiled(const std::vector<Trajectory>& fleet,
                                     const std::vector<Trajectory>* truths,
                                     const TrajectoryProfiler& profiler) const {
  return RunInternal(fleet, truths, &profiler);
}

FleetResult FleetRunner::RunInternal(const std::vector<Trajectory>& fleet,
                                     const std::vector<Trajectory>* truths,
                                     const TrajectoryProfiler* profiler) const {
  FleetResult result;
  const size_t n = fleet.size();
  result.cleaned.resize(n);
  result.statuses.assign(
      n, Status::Cancelled("shard skipped: fleet cancelled after an earlier "
                           "stage failure"));
  if (n == 0) {
    result.statuses.clear();
    return result;
  }

  const std::vector<std::vector<size_t>> shards = MakeShards(fleet);
  result.shards_total = shards.size();

  // Per-trajectory profiling output, merged after the join so aggregation
  // order never depends on scheduling.
  std::vector<std::vector<StageReport>> all_reports;
  if (profiler != nullptr) all_reports.resize(n);
  // Per-trajectory resilience traces, likewise merged after the join.
  std::vector<RunTrace> traces(n);

  const bool best_effort =
      options_.failure_policy == FailurePolicy::kBestEffort;
  const bool retry_enabled = options_.retry.max_retries > 0;
  const Clock* wall_clock =
      options_.clock != nullptr ? options_.clock : SteadyClock::Global();

  const obs::ObsSinks sinks =
      options_.obs != nullptr ? *options_.obs : obs::ObsSinks{};
  const bool has_obs = sinks.metrics != nullptr || sinks.tracer != nullptr;
  // Quarantine/degrade tallies are pure functions of the inputs only when
  // no early exit can skip shards: best-effort with the breaker disabled,
  // or fail-fast without cancellation. Otherwise *which* objects ran
  // depends on scheduling and the tallies go volatile.
  const bool deterministic_counts =
      best_effort ? options_.max_quarantine_fraction >= 1.0
                  : !options_.cancel_on_error;
  const obs::MetricStability count_stability =
      deterministic_counts ? obs::MetricStability::kDeterministic
                           : obs::MetricStability::kVolatile;
  const obs::MetricStability timing_stability =
      options_.virtual_time ? obs::MetricStability::kDeterministic
                            : obs::MetricStability::kVolatile;
  // The fleet-level span gets its own virtual clock pinned at 0 (worker
  // wall time must not leak into a deterministic trace); under real time
  // it shares the wall clock.
  VirtualClock fleet_vclock;
  const Clock* fleet_clock = options_.virtual_time
                                 ? static_cast<const Clock*>(&fleet_vclock)
                                 : wall_clock;
  obs::TraceSpan fleet_span(sinks.tracer, fleet_clock, obs::kProcessKey,
                            "fleet.run", "fleet");
  // Breaker arithmetic: quarantine count that, once *exceeded*, trips.
  const size_t breaker_limit =
      options_.max_quarantine_fraction >= 1.0
          ? n
          : static_cast<size_t>(options_.max_quarantine_fraction *
                                static_cast<double>(n));

  std::atomic<bool> cancelled{false};
  std::atomic<bool> breaker_tripped{false};
  std::atomic<size_t> shards_cancelled{0};
  std::atomic<size_t> quarantined_count{0};

  // Each shard task writes only its own indices of cleaned/statuses/
  // all_reports/traces; the future join publishes those writes to this
  // thread.
  auto run_shard = [&](const std::vector<size_t>* shard) -> Status {
    if (cancelled.load(std::memory_order_acquire)) {
      shards_cancelled.fetch_add(1, std::memory_order_relaxed);
      return Status::Cancelled("shard skipped after earlier failure");
    }
    Status first = Status::OK();
    // One observer per shard: it caches metric handles and span names
    // across the shard's objects and flushes its buffered spans to the
    // tracer in a single batch when it goes out of scope.
    obs::PipelineObserver observer(sinks, options_.virtual_time);
    obs::Histogram object_duration_hist =
        sinks.metrics != nullptr
            ? sinks.metrics->histogram(
                  "fleet.object.duration_ms",
                  obs::MetricsRegistry::DurationBucketsMs(),
                  timing_stability)
            : obs::Histogram();
    for (size_t i : *shard) {
      const ObjectId id = fleet[i].object_id();
      Rng rng = Rng::ForKey(options_.base_seed, id);
      Rng retry_rng =
          Rng::ForKey(options_.base_seed ^ kRetryStreamSalt, id);
      // Virtual time gives every object a private clock starting at 0:
      // injected stalls and backoffs advance only this object's time, so
      // deadline decisions are identical for any worker count.
      VirtualClock vclock;
      const Clock* clock =
          options_.virtual_time ? static_cast<const Clock*>(&vclock)
                                : wall_clock;
      const ExecContext exec =
          ExecContext::After(clock, options_.deadline_ms, &cancelled);
      StageContext ctx;
      ctx.rng = &rng;
      ctx.retry_rng = &retry_rng;
      ctx.exec = &exec;
      ctx.retry = retry_enabled ? &options_.retry : nullptr;
      ctx.trace = &traces[i];

      if (has_obs) {
        observer.BeginObject(id, clock);
        ctx.obs = &observer;
      }
      const int64_t object_start_ms = clock->NowMs();

      StatusOr<Trajectory> out =
          profiler != nullptr
              ? pipeline_->RunProfiled(
                    fleet[i],
                    truths != nullptr ? &(*truths)[i] : nullptr, *profiler,
                    &all_reports[i], ctx)
              : pipeline_->Run(fleet[i], ctx);
      if (has_obs) {
        object_duration_hist.Record(
            static_cast<double>(clock->NowMs() - object_start_ms));
        observer.EndObject(
            out.ok() ? (traces[i].degraded.empty() ? "full" : "degraded")
                     : "failed");
      }
      if (out.ok()) {
        result.cleaned[i] = std::move(out).value();
        result.statuses[i] = Status::OK();
      } else {
        result.statuses[i] = out.status();
        if (first.ok()) first = out.status();
        if (best_effort) {
          if (out.status().code() != StatusCode::kCancelled) {
            const size_t q =
                quarantined_count.fetch_add(1, std::memory_order_relaxed) +
                1;
            if (q > breaker_limit) {
              breaker_tripped.store(true, std::memory_order_relaxed);
              cancelled.store(true, std::memory_order_release);
            }
          }
        } else if (options_.cancel_on_error) {
          cancelled.store(true, std::memory_order_release);
        }
      }
    }
    return first;
  };

  size_t num_threads =
      options_.num_threads > 0 ? static_cast<size_t>(options_.num_threads) : 0;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (num_threads <= 1) {
    // Single-threaded: run shards inline on the caller thread, in shard
    // order. A one-worker pool pays thread spawn/join plus a future and
    // condvar round-trip per shard, which made threads=1 measurably
    // SLOWER than serial execution on cpu-bound fleets.
    for (const std::vector<size_t>& shard : shards) {
      Status shard_status = run_shard(&shard);
      (void)shard_status;  // recorded per trajectory in statuses
    }
  } else {
    ThreadPool pool(num_threads, sinks.metrics);
    std::vector<std::future<Status>> futures;
    futures.reserve(shards.size());
    for (const std::vector<size_t>& shard : shards) {
      futures.push_back(pool.Submit([&run_shard, &shard] {
        return run_shard(&shard);
      }));
    }
    for (std::future<Status>& f : futures) {
      // Shard-level failures are also recorded per trajectory; the future
      // exists to join and to propagate Status through the pool API.
      Status shard_status = f.get();
      (void)shard_status;  // recorded per trajectory in statuses
    }
  }

  result.shards_cancelled = shards_cancelled.load(std::memory_order_relaxed);
  result.breaker_tripped = breaker_tripped.load(std::memory_order_relaxed);

  // Per-object annotations, built after the join in input-index order so
  // the vector is deterministic regardless of scheduling. Objects that
  // cleaned at full fidelity on the first attempt produce no entry.
  for (size_t i = 0; i < n; ++i) {
    const RunTrace& tr = traces[i];
    const Status& st = result.statuses[i];
    if (st.ok() && tr.retries == 0 && tr.degraded.empty()) continue;
    ObjectAnnotation a;
    a.index = i;
    a.id = fleet[i].object_id();
    a.retries = tr.retries;
    a.degraded = tr.degraded;
    a.status = st;
    if (!st.ok()) {
      a.quality = ExecQuality::kQuarantined;
      ++result.objects_quarantined;
    } else if (!tr.degraded.empty()) {
      a.quality = ExecQuality::kDegraded;
      ++result.objects_degraded;
    }
    result.retries_total += static_cast<size_t>(tr.retries);
    result.annotations.push_back(std::move(a));
  }

  // First-error-wins, resolved by input index for determinism.
  for (size_t i = 0; i < n; ++i) {
    const Status& st = result.statuses[i];
    if (!st.ok() && st.code() != StatusCode::kCancelled) {
      result.first_error = st;
      break;
    }
  }

  if (sinks.metrics != nullptr) {
    sinks.metrics->gauge("fleet.objects.total")
        .Set(static_cast<int64_t>(n));
    sinks.metrics->gauge("fleet.shards.total")
        .Set(static_cast<int64_t>(result.shards_total));
    sinks.metrics
        ->gauge("fleet.shards.cancelled", obs::MetricStability::kVolatile)
        .Set(static_cast<int64_t>(result.shards_cancelled));
    sinks.metrics->gauge("fleet.objects.quarantined", count_stability)
        .Set(static_cast<int64_t>(result.objects_quarantined));
    sinks.metrics->gauge("fleet.objects.degraded", count_stability)
        .Set(static_cast<int64_t>(result.objects_degraded));
    sinks.metrics->gauge("fleet.retries.total", count_stability)
        .Set(static_cast<int64_t>(result.retries_total));
    sinks.metrics->gauge("fleet.breaker_tripped", count_stability)
        .Set(result.breaker_tripped ? 1 : 0);
  }
  fleet_span.set_note(result.ResilienceSummary());
  fleet_span.Finish();

  if (profiler != nullptr) {
    const size_t num_stage_slots = pipeline_->num_stages() + 1;
    result.stage_stats.resize(num_stage_slots);
    for (size_t s = 0; s < num_stage_slots; ++s) {
      FleetStageStats& stats = result.stage_stats[s];
      std::map<DqDimension, std::vector<double>> samples;
      for (size_t i = 0; i < n; ++i) {
        if (all_reports[i].size() <= s) continue;
        const StageReport& sr = all_reports[i][s];
        if (stats.stage_name.empty()) stats.stage_name = sr.stage_name;
        for (const auto& [dim, value] : sr.report.metrics()) {
          samples[dim].push_back(value);
        }
      }
      for (auto& [dim, values] : samples) {
        std::sort(values.begin(), values.end());
        MetricAggregate agg;
        agg.count = values.size();
        double sum = 0.0;
        for (double v : values) sum += v;
        agg.mean = sum / static_cast<double>(values.size());
        agg.p50 = Percentile(values, 0.50);
        agg.p99 = Percentile(values, 0.99);
        stats.metrics[dim] = agg;
      }
    }
  }

  return result;
}

}  // namespace exec
}  // namespace sidq

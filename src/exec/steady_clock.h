#pragma once

#include <cstdint>

#include "core/clock.h"

namespace sidq {
namespace exec {

// Wall-time Clock backed by std::chrono::steady_clock. Lives in src/exec/
// because that is the only directory allowed to touch real time (sidq-lint
// rule R8); everything else receives a `const Clock*` and cannot tell wall
// time from virtual time.
class SteadyClock : public Clock {
 public:
  int64_t NowMs() const override;
  void SleepMs(int64_t ms) const override;

  // Shared process-wide instance for callers that just want "real time".
  static const SteadyClock* Global();
};

}  // namespace exec
}  // namespace sidq

#include "stream/window.h"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <utility>

#include "obs/export.h"

namespace sidq {
namespace stream {

namespace {

// (event time, seq) is the total window-processing order; admission dedups
// on (sensor, t), so it never depends on arrival order.
bool EventTimeLess(const StreamEvent& a, const StreamEvent& b) {
  return std::tie(a.record.t, a.seq) < std::tie(b.record.t, b.seq);
}

}  // namespace

std::vector<StreamEvent> RingWindow::TakeSortedByTime() {
  std::vector<StreamEvent> out = std::move(events_);
  events_.clear();
  std::sort(out.begin(), out.end(), EventTimeLess);
  return out;
}

StreamEvent* RingWindow::TakeSortedByTime(Arena* arena, size_t* count) {
  *count = events_.size();
  StreamEvent* out = arena->AllocArray<StreamEvent>(events_.size());
  std::copy(events_.begin(), events_.end(), out);
  events_.clear();
  std::sort(out, out + *count, EventTimeLess);
  return out;
}

WindowKpis ProcessWindow(SensorId sensor, int64_t window_index,
                         Timestamp window_ms, std::vector<StreamEvent> events,
                         int64_t duplicates, const SensorRule& rule,
                         const KpiThresholds& thresholds,
                         SensorPipeline* pipeline,
                         std::vector<StRecord>* cleaned,
                         QuarantineLedger* ledger,
                         std::vector<KpiAlert>* alerts) {
  return ProcessWindow(sensor, window_index, window_ms, events.data(),
                       events.size(), duplicates, rule, thresholds, pipeline,
                       cleaned, ledger, alerts);
}

WindowKpis ProcessWindow(SensorId sensor, int64_t window_index,
                         Timestamp window_ms, StreamEvent* events,
                         size_t event_count, int64_t duplicates,
                         const SensorRule& rule,
                         const KpiThresholds& thresholds,
                         SensorPipeline* pipeline,
                         std::vector<StRecord>* cleaned,
                         QuarantineLedger* ledger,
                         std::vector<KpiAlert>* alerts) {
  std::sort(events, events + event_count, EventTimeLess);

  WindowKpis kpis;
  kpis.sensor = sensor;
  kpis.window_start = static_cast<Timestamp>(window_index) * window_ms;
  kpis.window_end = kpis.window_start + window_ms;
  kpis.duplicates = duplicates;

  double sum_value = 0.0;
  double sum_stddev = 0.0;
  bool has_prev = false;
  Timestamp prev_t = kpis.window_start;
  double prev_value = 0.0;
  for (size_t e = 0; e < event_count; ++e) {
    const StreamEvent& ev = events[e];
    const StRecord& rec = ev.record;
    if (pipeline->robust_z.Observe(rec.value)) {
      ledger->Add(ev.seq, rec, QuarantineReason::kOutlier);
      ++kpis.outliers;
      continue;
    }
    const refine::OnlineKalman1D::Estimate est =
        pipeline->kalman.Update(rec.t, rec.value, rec.stddev);
    StRecord out = rec;
    out.value = est.value;
    out.stddev = est.stddev;
    cleaned->push_back(out);
    if (pipeline->drift.Observe(rec.value)) kpis.drift = true;

    ++kpis.count;
    sum_value += rec.value;
    sum_stddev += est.stddev;
    kpis.min_value = kpis.count == 1 ? rec.value
                                     : std::min(kpis.min_value, rec.value);
    kpis.max_value = kpis.count == 1 ? rec.value
                                     : std::max(kpis.max_value, rec.value);
    kpis.max_gap_ms = std::max(kpis.max_gap_ms, rec.t - prev_t);
    if (has_prev && rec.t > prev_t) {
      const double rate =
          std::abs(rec.value - prev_value) / TimestampToSeconds(rec.t - prev_t);
      if (rate > rule.max_rate_per_s) ++kpis.consistency_violations;
    }
    has_prev = true;
    prev_t = rec.t;
    prev_value = rec.value;
  }
  kpis.max_gap_ms = std::max(kpis.max_gap_ms, kpis.window_end - prev_t);

  const double expected = static_cast<double>(window_ms) /
                          static_cast<double>(rule.expected_interval_ms);
  kpis.completeness =
      expected > 0.0 ? static_cast<double>(kpis.count) / expected : 0.0;
  const double delivered = static_cast<double>(kpis.duplicates + kpis.count);
  kpis.redundancy =
      delivered > 0.0 ? static_cast<double>(kpis.duplicates) / delivered : 0.0;
  if (kpis.count > 0) {
    kpis.mean_value = sum_value / static_cast<double>(kpis.count);
    kpis.precision_stddev = sum_stddev / static_cast<double>(kpis.count);
  }

  if (kpis.completeness < thresholds.min_completeness) {
    alerts->push_back({sensor, kpis.window_start, DqDimension::kCompleteness,
                       kpis.completeness, thresholds.min_completeness});
  }
  if (kpis.redundancy > thresholds.max_redundancy) {
    alerts->push_back({sensor, kpis.window_start, DqDimension::kRedundancy,
                       kpis.redundancy, thresholds.max_redundancy});
  }
  if (kpis.max_gap_ms > thresholds.max_gap_ms) {
    alerts->push_back({sensor, kpis.window_start, DqDimension::kTimeSparsity,
                       static_cast<double>(kpis.max_gap_ms),
                       static_cast<double>(thresholds.max_gap_ms)});
  }
  if (kpis.consistency_violations > thresholds.max_consistency_violations) {
    alerts->push_back(
        {sensor, kpis.window_start, DqDimension::kConsistency,
         static_cast<double>(kpis.consistency_violations),
         static_cast<double>(thresholds.max_consistency_violations)});
  }
  return kpis;
}

std::string WindowKpisToJson(const WindowKpis& kpis) {
  using obs::internal_json::FormatDouble;
  std::ostringstream out;
  out << "{\"sensor\":" << kpis.sensor
      << ",\"window_start\":" << kpis.window_start
      << ",\"window_end\":" << kpis.window_end << ",\"count\":" << kpis.count
      << ",\"outliers\":" << kpis.outliers
      << ",\"duplicates\":" << kpis.duplicates
      << ",\"completeness\":" << FormatDouble(kpis.completeness)
      << ",\"redundancy\":" << FormatDouble(kpis.redundancy)
      << ",\"max_gap_ms\":" << kpis.max_gap_ms
      << ",\"precision_stddev\":" << FormatDouble(kpis.precision_stddev)
      << ",\"consistency_violations\":" << kpis.consistency_violations
      << ",\"mean_value\":" << FormatDouble(kpis.mean_value)
      << ",\"min_value\":" << FormatDouble(kpis.min_value)
      << ",\"max_value\":" << FormatDouble(kpis.max_value)
      << ",\"drift\":" << (kpis.drift ? "true" : "false") << "}";
  return out.str();
}

std::string KpiAlertToJson(const KpiAlert& alert) {
  using obs::internal_json::FormatDouble;
  std::ostringstream out;
  out << "{\"sensor\":" << alert.sensor
      << ",\"window_start\":" << alert.window_start << ",\"dimension\":\""
      << DqDimensionName(alert.dimension) << "\""
      << ",\"observed\":" << FormatDouble(alert.observed)
      << ",\"threshold\":" << FormatDouble(alert.threshold) << "}";
  return out.str();
}

}  // namespace stream
}  // namespace sidq

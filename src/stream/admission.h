#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "core/stid.h"
#include "core/types.h"
#include "stream/event_log.h"
#include "stream/quarantine.h"
#include "stream/rules.h"

namespace sidq {
namespace stream {

// Event-time window index of `t` for `window_ms`-wide tumbling windows
// aligned at epoch 0. Floor division, correct for negative timestamps.
[[nodiscard]] inline int64_t WindowIndexOf(Timestamp t, Timestamp window_ms) {
  int64_t q = t / window_ms;
  if (t % window_ms != 0 && t < 0) --q;
  return q;
}

// The verdict AdmissionFilter renders on one arriving event.
struct AdmissionDecision {
  bool admitted = false;
  QuarantineReason reason = QuarantineReason::kUnknownSensor;  // if !admitted
  const SensorRule* rule = nullptr;  // nullptr only for kUnknownSensor
  int64_t window_index = 0;          // event-time window of the record
};

// Stateful per-sensor admission control, evaluated in arrival (seq) order.
//
// This class is the determinism keystone of the stream layer: the engine
// and the batch reference both run their event logs through an
// AdmissionFilter with identical configuration, so "which records survive"
// is decided by one shared code path and the differential contract reduces
// to the downstream processing being order-insensitive.
//
// Check order (first failure wins, mirrors QuarantineReason numbering):
//   unknown sensor -> non-finite -> late -> duplicate -> out-of-range ->
//   window overflow -> admit.
//
// Watermark semantics: per sensor, W = max admitted event time minus the
// rule's max_lateness_ms; an event with t <= W is late. The watermark
// advances only on *admitted* records, so a single record with a garbage
// future timestamp cannot blind a sensor (it is rejected by range or
// finiteness first, or -- if it slips through -- at least later data is
// judged against data that passed the same gauntlet).
class AdmissionFilter {
 public:
  AdmissionFilter(const RuleSet* rules, Timestamp window_ms,
                  size_t window_capacity)
      : rules_(rules), window_ms_(window_ms), capacity_(window_capacity) {}

  // Judges one event; on admit, updates watermark/dedup/occupancy state.
  AdmissionDecision Observe(const StreamEvent& ev);

  // Current watermark for `sensor`: kMinTimestamp until the first admit.
  [[nodiscard]] Timestamp Watermark(SensorId sensor) const;

  // Retires window `window_index` of `sensor`: prunes its dedup and
  // occupancy state and returns how many duplicates were suppressed in it
  // (feeds the redundancy KPI). The engine calls this when the watermark
  // closes a window; the batch reference calls it while grouping.
  int64_t ReleaseWindow(SensorId sensor, int64_t window_index);

 private:
  struct SensorState {
    Timestamp max_admitted_t = kMinTimestamp;
    std::set<Timestamp> admitted_ts;            // pruned by ReleaseWindow
    std::map<int64_t, size_t> window_counts;    // window -> admitted records
    std::map<int64_t, int64_t> window_dups;     // window -> suppressed dups
  };

  const RuleSet* rules_;
  Timestamp window_ms_;
  size_t capacity_;
  std::map<SensorId, SensorState> sensors_;
};

}  // namespace stream
}  // namespace sidq

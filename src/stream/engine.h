#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/exec_context.h"
#include "core/stid.h"
#include "core/types.h"
#include "obs/observer.h"
#include "outlier/online_detectors.h"
#include "refine/online_kalman.h"
#include "stream/admission.h"
#include "stream/event_log.h"
#include "stream/quarantine.h"
#include "stream/rules.h"
#include "stream/window.h"

namespace sidq {
namespace stream {

// Chaos sites compiled into the ingestion path (core/failpoint.h). Both are
// keyed by sensor id; transient faults are absorbed by the engine's bounded
// deterministic retries, permanent faults quarantine the affected records.
inline constexpr char kIngestFailPoint[] = "stream.ingest";
inline constexpr char kWindowCloseFailPoint[] = "stream.window_close";

struct StreamConfig {
  RuleSet rules;
  // Tumbling event-time window width; KPIs and cleaning run per window.
  Timestamp window_ms = 300'000;
  // Hard per-(sensor, window) record bound; overflow records quarantine.
  size_t window_capacity = 256;
  KpiThresholds thresholds;
  refine::OnlineKalman1D::Options kalman;
  outlier::RollingRobustZ::Options robust_z;
  outlier::PageHinkley::Options drift;
  // Additional attempts when a chaos site injects a transient fault.
  int max_fault_retries = 3;
};

// Per-sensor roll-up of one replay, for summaries and quick assertions.
struct SensorSummary {
  SensorId sensor = kInvalidSensorId;
  int64_t admitted = 0;
  int64_t quarantined = 0;
  int64_t windows_closed = 0;
  Timestamp watermark = kMinTimestamp;
};

// Everything a replay produces. After Canonicalize(), the representation
// is a pure function of (event log, config): series sorted by sensor,
// ledger by seq, KPIs by (sensor, window), alerts by (sensor, window,
// dimension) -- so serial and sharded replays compare byte-identically.
struct StreamOutput {
  StDataset cleaned;
  QuarantineLedger ledger;
  std::vector<WindowKpis> kpis;
  std::vector<KpiAlert> alerts;
  std::vector<SensorSummary> sensors;
  int64_t ingested = 0;

  void Canonicalize();
  // Merges `other` (disjoint sensors) into this output; Canonicalize()
  // afterwards to restore canonical order.
  void Merge(StreamOutput&& other);
};

// Canonical JSON document for a StreamOutput (stable key order, canonical
// float formatting). The differential and golden tests compare these
// strings; equality here IS the stream == batch contract.
[[nodiscard]] std::string StreamOutputToJson(const StreamOutput& output);

// FNV-1a over StreamOutputToJson: the one-number replay fingerprint used
// by the bench checksum gate and the example's parity check.
[[nodiscard]] uint64_t OutputChecksum(const StreamOutput& output);

// Record-at-a-time ingestion engine: per-sensor declarative admission,
// event-time watermarks, bounded tumbling windows, and online cleaning at
// window close. Single-threaded by design -- parallel replay shards
// *sensors* across engines (stream/replay.h), because every piece of
// engine state is per-sensor, so sharding by sensor preserves the serial
// decision sequence exactly.
//
// Determinism: outputs depend only on (event log, config). Watermarks are
// pure event-time arithmetic; arrival wall time never enters any decision
// (lint rule R13). With chaos armed, fault decisions are deterministic per
// (site, sensor, evaluation#), so chaos runs are reproducible too.
class StreamEngine {
 public:
  // `sinks` / `clock` / `ctx` are borrowed and nullable: metrics and spans
  // drop without sinks, Push never cancels without a context.
  explicit StreamEngine(const StreamConfig& config,
                        const obs::ObsSinks& sinks = {},
                        const Clock* clock = nullptr,
                        const ExecContext* ctx = nullptr);

  // Ingests one event (arrival order = ascending seq). Closes every window
  // the advancing watermark retires. Returns non-OK only for cooperative
  // cancellation / deadline exceeded -- data problems quarantine instead.
  [[nodiscard]] Status Push(const StreamEvent& ev);

  // End of stream: closes all still-open windows (ascending per sensor).
  [[nodiscard]] Status Flush();

  // Takes the canonicalized output; the engine is spent afterwards.
  [[nodiscard]] StreamOutput TakeOutput();

  [[nodiscard]] Timestamp Watermark(SensorId sensor) const {
    return filter_.Watermark(sensor);
  }

  // Thematic field name stamped onto the cleaned dataset.
  void set_field_name(std::string name) { field_name_ = std::move(name); }

 private:
  struct SensorState {
    // Open windows keyed by window index: std::map so ready windows close
    // in ascending event-time order (determinism contract).
    std::map<int64_t, RingWindow> open_windows;
    SensorPipeline pipeline;
    std::vector<StRecord> cleaned;
    int64_t admitted = 0;
    int64_t quarantined = 0;
    int64_t windows_closed = 0;
  };

  // Evaluates a chaos site with bounded deterministic retries; transient
  // faults within budget are absorbed, so armed-with-retryable-chaos runs
  // produce bit-identical output to disarmed runs.
  Status EvaluateSite(const char* site, SensorId sensor, bool* corrupt);

  // Per-sensor state, created on first sight with the config's online
  // operator options.
  SensorState& GetState(SensorId sensor);

  void Quarantine(uint64_t seq, const StRecord& rec, QuarantineReason reason,
                  SensorState* state);
  Status CloseWindow(SensorId sensor, int64_t window_index,
                     SensorState* state);
  Status CloseReadyWindows(SensorId sensor, SensorState* state);

  StreamConfig config_;
  obs::ObsSinks sinks_;
  const Clock* clock_;
  ExecContext default_ctx_;
  const ExecContext* ctx_;

  AdmissionFilter filter_;
  std::map<SensorId, SensorState> sensors_;
  std::string field_name_;
  int64_t ingested_ = 0;
  QuarantineLedger ledger_;
  std::vector<WindowKpis> kpis_;
  std::vector<KpiAlert> alerts_;

  obs::Counter ingested_counter_;
  obs::Counter admitted_counter_;
  obs::Counter late_counter_;
  obs::Counter quarantined_counter_;
  obs::Counter windows_counter_;
  obs::Counter outliers_counter_;
  std::map<std::string, obs::Counter> reason_counters_;
  std::map<SensorId, obs::Gauge> completeness_gauges_;
  std::map<SensorId, obs::Gauge> redundancy_gauges_;
};

// Convenience: pushes every event of `log` then flushes.
[[nodiscard]] Status ReplayInto(StreamEngine* engine, const EventLog& log);

}  // namespace stream
}  // namespace sidq

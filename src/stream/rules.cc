#include "stream/rules.h"

#include <sstream>
#include <string>
#include <vector>

namespace sidq {
namespace stream {

namespace {

Status ParseClauses(std::istringstream& fields, size_t lineno,
                    SensorRule* rule) {
  std::string token;
  while (fields >> token) {
    if (token == "range") {
      if (!(fields >> rule->min_value >> rule->max_value)) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": range wants <min> <max>");
      }
      if (!(rule->min_value < rule->max_value)) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": range min must be < max");
      }
    } else if (token == "interval") {
      if (!(fields >> rule->expected_interval_ms) ||
          rule->expected_interval_ms <= 0) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": interval wants a positive ms count");
      }
    } else if (token == "lateness") {
      if (!(fields >> rule->max_lateness_ms) || rule->max_lateness_ms < 0) {
        return Status::InvalidArgument(
            "line " + std::to_string(lineno) +
            ": lateness wants a non-negative ms count");
      }
    } else if (token == "rate") {
      if (!(fields >> rule->max_rate_per_s) || rule->max_rate_per_s <= 0) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": rate wants a positive per-second "
                                       "bound");
      }
    } else {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": unknown clause '" + token + "'");
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<RuleSet> ParseRuleSet(const std::string& text) {
  RuleSet rules;
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string subject;
    if (!(fields >> subject)) continue;  // blank / comment-only line
    if (subject == "default") {
      SensorRule rule = rules.default_rule();
      SIDQ_RETURN_IF_ERROR(ParseClauses(fields, lineno, &rule));
      rules.set_default_rule(rule);
    } else if (subject == "sensor") {
      SensorId sensor = kInvalidSensorId;
      if (!(fields >> sensor)) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": sensor wants an id");
      }
      SensorRule rule = rules.default_rule();
      SIDQ_RETURN_IF_ERROR(ParseClauses(fields, lineno, &rule));
      rules.AddRule(sensor, rule);
    } else if (subject == "unknown-sensors") {
      std::string policy;
      if (!(fields >> policy) ||
          (policy != "quarantine" && policy != "admit")) {
        return Status::InvalidArgument(
            "line " + std::to_string(lineno) +
            ": unknown-sensors wants quarantine|admit");
      }
      rules.set_quarantine_unknown(policy == "quarantine");
    } else {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": unknown subject '" + subject + "'");
    }
  }
  return rules;
}

}  // namespace stream
}  // namespace sidq

#include "stream/admission.h"

#include <cmath>

namespace sidq {
namespace stream {

AdmissionDecision AdmissionFilter::Observe(const StreamEvent& ev) {
  const StRecord& rec = ev.record;
  AdmissionDecision d;
  d.rule = rules_->Find(rec.sensor);
  if (d.rule == nullptr) {
    d.reason = QuarantineReason::kUnknownSensor;
    return d;
  }
  d.window_index = WindowIndexOf(rec.t, window_ms_);
  if (!std::isfinite(rec.value) || !std::isfinite(rec.loc.x) ||
      !std::isfinite(rec.loc.y) || !std::isfinite(rec.stddev)) {
    d.reason = QuarantineReason::kNonFinite;
    return d;
  }
  SensorState& state = sensors_[rec.sensor];
  if (state.max_admitted_t != kMinTimestamp &&
      rec.t <= state.max_admitted_t - d.rule->max_lateness_ms) {
    d.reason = QuarantineReason::kLate;
    return d;
  }
  if (state.admitted_ts.count(rec.t) != 0) {
    ++state.window_dups[d.window_index];
    d.reason = QuarantineReason::kDuplicate;
    return d;
  }
  if (rec.value < d.rule->min_value || rec.value > d.rule->max_value) {
    d.reason = QuarantineReason::kOutOfRange;
    return d;
  }
  size_t& occupancy = state.window_counts[d.window_index];
  if (occupancy >= capacity_) {
    d.reason = QuarantineReason::kWindowOverflow;
    return d;
  }
  ++occupancy;
  state.admitted_ts.insert(rec.t);
  if (rec.t > state.max_admitted_t) state.max_admitted_t = rec.t;
  d.admitted = true;
  return d;
}

Timestamp AdmissionFilter::Watermark(SensorId sensor) const {
  auto it = sensors_.find(sensor);
  if (it == sensors_.end() || it->second.max_admitted_t == kMinTimestamp) {
    return kMinTimestamp;
  }
  const SensorRule* rule = rules_->Find(sensor);
  const Timestamp lateness = rule != nullptr ? rule->max_lateness_ms : 0;
  return it->second.max_admitted_t - lateness;
}

int64_t AdmissionFilter::ReleaseWindow(SensorId sensor, int64_t window_index) {
  auto it = sensors_.find(sensor);
  if (it == sensors_.end()) return 0;
  SensorState& state = it->second;
  state.window_counts.erase(window_index);
  const Timestamp lo = static_cast<Timestamp>(window_index) * window_ms_;
  state.admitted_ts.erase(state.admitted_ts.lower_bound(lo),
                          state.admitted_ts.lower_bound(lo + window_ms_));
  auto dup_it = state.window_dups.find(window_index);
  if (dup_it == state.window_dups.end()) return 0;
  const int64_t dups = dup_it->second;
  state.window_dups.erase(dup_it);
  return dups;
}

}  // namespace stream
}  // namespace sidq

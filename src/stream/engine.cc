#include "stream/engine.h"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <utility>

#include "core/arena.h"
#include "core/failpoint.h"
#include "core/retry.h"
#include "obs/export.h"

namespace sidq {
namespace stream {

void StreamOutput::Canonicalize() {
  std::sort(cleaned.mutable_series().begin(), cleaned.mutable_series().end(),
            [](const StSeries& a, const StSeries& b) {
              return a.sensor() < b.sensor();
            });
  ledger.Canonicalize();
  std::sort(kpis.begin(), kpis.end(),
            [](const WindowKpis& a, const WindowKpis& b) {
              return std::tie(a.sensor, a.window_start) <
                     std::tie(b.sensor, b.window_start);
            });
  std::sort(alerts.begin(), alerts.end(),
            [](const KpiAlert& a, const KpiAlert& b) {
              return std::tie(a.sensor, a.window_start, a.dimension) <
                     std::tie(b.sensor, b.window_start, b.dimension);
            });
  std::sort(sensors.begin(), sensors.end(),
            [](const SensorSummary& a, const SensorSummary& b) {
              return a.sensor < b.sensor;
            });
}

void StreamOutput::Merge(StreamOutput&& other) {
  if (cleaned.field_name().empty() && !other.cleaned.field_name().empty()) {
    StDataset renamed(other.cleaned.field_name());
    renamed.mutable_series() = std::move(cleaned.mutable_series());
    cleaned = std::move(renamed);
  }
  for (StSeries& s : other.cleaned.mutable_series()) {
    cleaned.AddSeries(std::move(s));
  }
  ledger.Merge(other.ledger);
  kpis.insert(kpis.end(), other.kpis.begin(), other.kpis.end());
  alerts.insert(alerts.end(), other.alerts.begin(), other.alerts.end());
  sensors.insert(sensors.end(), other.sensors.begin(), other.sensors.end());
  ingested += other.ingested;
}

std::string StreamOutputToJson(const StreamOutput& output) {
  using obs::internal_json::EscapeString;
  using obs::internal_json::FormatDouble;
  std::ostringstream out;
  out << "{\n\"field\":\"" << EscapeString(output.cleaned.field_name())
      << "\",\n\"ingested\":" << output.ingested << ",\n\"cleaned\":[";
  bool first = true;
  for (const StSeries& series : output.cleaned.series()) {
    for (const StRecord& rec : series.records()) {
      out << (first ? "" : ",") << "\n  {\"sensor\":" << rec.sensor
          << ",\"t\":" << rec.t << ",\"x\":" << FormatDouble(rec.loc.x)
          << ",\"y\":" << FormatDouble(rec.loc.y)
          << ",\"value\":" << FormatDouble(rec.value)
          << ",\"stddev\":" << FormatDouble(rec.stddev) << "}";
      first = false;
    }
  }
  out << (first ? "" : "\n") << "],\n\"quarantine\":" << output.ledger.ToJson()
      << ",\n\"kpis\":[";
  for (size_t i = 0; i < output.kpis.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n  " << WindowKpisToJson(output.kpis[i]);
  }
  out << (output.kpis.empty() ? "" : "\n") << "],\n\"alerts\":[";
  for (size_t i = 0; i < output.alerts.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n  " << KpiAlertToJson(output.alerts[i]);
  }
  out << (output.alerts.empty() ? "" : "\n") << "],\n\"sensors\":[";
  for (size_t i = 0; i < output.sensors.size(); ++i) {
    const SensorSummary& s = output.sensors[i];
    out << (i == 0 ? "" : ",") << "\n  {\"sensor\":" << s.sensor
        << ",\"admitted\":" << s.admitted
        << ",\"quarantined\":" << s.quarantined
        << ",\"windows_closed\":" << s.windows_closed
        << ",\"watermark\":" << s.watermark << "}";
  }
  out << (output.sensors.empty() ? "" : "\n") << "]\n}\n";
  return out.str();
}

uint64_t OutputChecksum(const StreamOutput& output) {
  const std::string json = StreamOutputToJson(output);
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (unsigned char c : json) {
    h ^= c;
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return h;
}

StreamEngine::StreamEngine(const StreamConfig& config,
                           const obs::ObsSinks& sinks, const Clock* clock,
                           const ExecContext* ctx)
    : config_(config),
      sinks_(sinks),
      clock_(clock),
      ctx_(ctx != nullptr ? ctx : &default_ctx_),
      filter_(&config_.rules, config_.window_ms, config_.window_capacity) {
  if (sinks_.metrics != nullptr) {
    ingested_counter_ = sinks_.metrics->counter("stream.ingested");
    admitted_counter_ = sinks_.metrics->counter("stream.admitted");
    late_counter_ = sinks_.metrics->counter("stream.late");
    quarantined_counter_ = sinks_.metrics->counter("stream.quarantined");
    windows_counter_ = sinks_.metrics->counter("stream.windows.closed");
    outliers_counter_ = sinks_.metrics->counter("stream.outliers");
  }
}

StreamEngine::SensorState& StreamEngine::GetState(SensorId sensor) {
  auto [it, inserted] = sensors_.try_emplace(sensor);
  if (inserted) {
    it->second.pipeline =
        SensorPipeline(config_.kalman, config_.robust_z, config_.drift);
  }
  return it->second;
}

Status StreamEngine::EvaluateSite(const char* site, SensorId sensor,
                                  bool* corrupt) {
  Status s = Status::OK();
  for (int attempt = 0;; ++attempt) {
    s = MaybeInjectFailPoint(site, sensor, ctx_, corrupt);
    if (s.ok() || !IsTransient(s.code()) ||
        attempt >= config_.max_fault_retries) {
      return s;
    }
    // Deterministic backoff on the context clock: instant under
    // VirtualClock, so retried runs stay virtual-time reproducible.
    ctx_->Stall(int64_t{1} << attempt);
  }
}

void StreamEngine::Quarantine(uint64_t seq, const StRecord& rec,
                              QuarantineReason reason, SensorState* state) {
  ledger_.Add(seq, rec, reason);
  ++state->quarantined;
  quarantined_counter_.Increment();
  if (sinks_.metrics != nullptr) {
    const std::string name = QuarantineReasonName(reason);
    auto [it, inserted] = reason_counters_.try_emplace(name);
    if (inserted) {
      it->second = sinks_.metrics->counter("stream.quarantined." + name);
    }
    it->second.Increment();
  }
}

Status StreamEngine::Push(const StreamEvent& ev) {
  SIDQ_RETURN_IF_ERROR(ctx_->Check());
  ++ingested_;
  ingested_counter_.Increment();

  StreamEvent event = ev;
  bool corrupt = false;
  const Status fault =
      EvaluateSite(kIngestFailPoint, event.record.sensor, &corrupt);
  SensorState& state = GetState(event.record.sensor);
  if (!fault.ok()) {
    Quarantine(event.seq, event.record, QuarantineReason::kIngestFault,
               &state);
    return Status::OK();
  }
  if (corrupt) {
    // A corrupted reading: garbage value that the declarative range gate
    // downstream is expected to catch (the chaos test pins exactly this).
    event.record.value = 4e30;
  }

  const AdmissionDecision d = filter_.Observe(event);
  if (!d.admitted) {
    if (d.reason == QuarantineReason::kLate) late_counter_.Increment();
    Quarantine(event.seq, event.record, d.reason, &state);
    return Status::OK();
  }
  ++state.admitted;
  admitted_counter_.Increment();
  auto [it, inserted] = state.open_windows.try_emplace(
      d.window_index, RingWindow(config_.window_capacity));
  it->second.Push(event);
  return CloseReadyWindows(event.record.sensor, &state);
}

Status StreamEngine::CloseReadyWindows(SensorId sensor, SensorState* state) {
  const Timestamp watermark = filter_.Watermark(sensor);
  while (!state->open_windows.empty()) {
    const int64_t window_index = state->open_windows.begin()->first;
    const Timestamp window_end =
        (static_cast<Timestamp>(window_index) + 1) * config_.window_ms;
    if (window_end - 1 > watermark) break;  // records could still arrive
    SIDQ_RETURN_IF_ERROR(CloseWindow(sensor, window_index, state));
  }
  return Status::OK();
}

Status StreamEngine::CloseWindow(SensorId sensor, int64_t window_index,
                                 SensorState* state) {
  SIDQ_RETURN_IF_ERROR(ctx_->Check());
  auto it = state->open_windows.find(window_index);
  // The drained window lives in arena scratch for the duration of the
  // close: the hot per-window path performs no heap allocation for it.
  ArenaScope scope(ScratchArena());
  size_t event_count = 0;
  StreamEvent* events = it->second.TakeSortedByTime(scope.arena(),
                                                    &event_count);
  state->open_windows.erase(it);
  const int64_t dups = filter_.ReleaseWindow(sensor, window_index);

  const Status fault = EvaluateSite(kWindowCloseFailPoint, sensor, nullptr);
  if (!fault.ok()) {
    // The whole window is lost: divert its records so nothing vanishes
    // silently, but emit no KPIs -- the window never "happened".
    for (size_t e = 0; e < event_count; ++e) {
      Quarantine(events[e].seq, events[e].record,
                 QuarantineReason::kWindowFault, state);
    }
    return Status::OK();
  }

  const SensorRule* rule = config_.rules.Find(sensor);
  std::vector<KpiAlert> alerts;
  QuarantineLedger window_ledger;
  const WindowKpis kpis = ProcessWindow(
      sensor, window_index, config_.window_ms, events, event_count, dups,
      *rule, config_.thresholds, &state->pipeline, &state->cleaned,
      &window_ledger, &alerts);
  for (const QuarantineEntry& entry : window_ledger.entries()) {
    Quarantine(entry.seq,
               StRecord(entry.sensor, entry.t, geometry::Point(), entry.value),
               entry.reason, state);
  }
  alerts_.insert(alerts_.end(), alerts.begin(), alerts.end());
  kpis_.push_back(kpis);
  ++state->windows_closed;
  windows_counter_.Increment();
  outliers_counter_.Increment(kpis.outliers);

  if (sinks_.metrics != nullptr) {
    auto [cit, cin] = completeness_gauges_.try_emplace(sensor);
    if (cin) {
      cit->second = sinks_.metrics->gauge("stream.kpi.completeness.s" +
                                          std::to_string(sensor));
    }
    cit->second.Set(static_cast<int64_t>(kpis.completeness * 1000.0));
    auto [rit, rin] = redundancy_gauges_.try_emplace(sensor);
    if (rin) {
      rit->second = sinks_.metrics->gauge("stream.kpi.redundancy.s" +
                                          std::to_string(sensor));
    }
    rit->second.Set(static_cast<int64_t>(kpis.redundancy * 1000.0));
  }
  if (sinks_.tracer != nullptr) {
    sinks_.tracer->Instant(sensor, "window", "stream.window_close", clock_,
                           "start=" + std::to_string(kpis.window_start) +
                               " count=" + std::to_string(kpis.count));
  }
  return Status::OK();
}

Status StreamEngine::Flush() {
  for (auto& [sensor, state] : sensors_) {
    while (!state.open_windows.empty()) {
      SIDQ_RETURN_IF_ERROR(
          CloseWindow(sensor, state.open_windows.begin()->first, &state));
    }
  }
  return Status::OK();
}

StreamOutput StreamEngine::TakeOutput() {
  StreamOutput out;
  out.cleaned = StDataset(field_name_);
  out.ingested = ingested_;
  for (auto& [sensor, state] : sensors_) {
    if (!state.cleaned.empty()) {
      StSeries series(sensor, state.cleaned.front().loc);
      series.mutable_records() = std::move(state.cleaned);
      out.cleaned.AddSeries(std::move(series));
    }
    SensorSummary summary;
    summary.sensor = sensor;
    summary.admitted = state.admitted;
    summary.quarantined = state.quarantined;
    summary.windows_closed = state.windows_closed;
    summary.watermark = filter_.Watermark(sensor);
    out.sensors.push_back(summary);
  }
  out.ledger = std::move(ledger_);
  out.kpis = std::move(kpis_);
  out.alerts = std::move(alerts_);
  out.Canonicalize();
  return out;
}

Status ReplayInto(StreamEngine* engine, const EventLog& log) {
  engine->set_field_name(log.field_name);
  for (const StreamEvent& ev : log.events) {
    SIDQ_RETURN_IF_ERROR(engine->Push(ev));
  }
  return engine->Flush();
}

}  // namespace stream
}  // namespace sidq

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/stid.h"
#include "core/types.h"

namespace sidq {
namespace stream {

// Why a record was diverted instead of entering the cleaned output. Ordered
// roughly by where in the admission path the check fires; the numeric value
// is part of the ledger's canonical JSON, so append only.
enum class QuarantineReason : uint8_t {
  kUnknownSensor = 0,   // strict rule set, no rule for this sensor
  kNonFinite = 1,       // NaN/inf value or coordinates
  kLate = 2,            // event time at or before the sensor watermark
  kDuplicate = 3,       // same (sensor, t) already admitted in-window
  kOutOfRange = 4,      // value outside the rule's [min, max]
  kWindowOverflow = 5,  // bounded window already at capacity
  kOutlier = 6,         // online robust-z flagged it at window close
  kIngestFault = 7,     // permanent fault injected at the ingest edge
  kWindowFault = 8,     // permanent fault injected at window close
  kStoreCorruptBlock = 9,  // durable-store block failed CRC/manifest check
  kStoreTornTail = 10,     // durable-store torn append cut off at recovery
};

[[nodiscard]] const char* QuarantineReasonName(QuarantineReason reason);

// One diverted record. `seq` is the event's global arrival index and the
// canonical sort key: ledgers built by differently-sharded replays merge
// into the same order because seq is unique per event.
struct QuarantineEntry {
  uint64_t seq = 0;
  SensorId sensor = kInvalidSensorId;
  Timestamp t = 0;
  double value = 0.0;
  QuarantineReason reason = QuarantineReason::kUnknownSensor;
};

// The quarantine ledger: the stream-side "reject table" that makes data
// quality auditable -- nothing is silently dropped, every exclusion carries
// a machine-readable reason code keyed back to the arrival log.
class QuarantineLedger {
 public:
  void Add(const QuarantineEntry& entry) { entries_.push_back(entry); }
  void Add(uint64_t seq, const StRecord& rec, QuarantineReason reason) {
    entries_.push_back({seq, rec.sensor, rec.t, rec.value, reason});
  }

  [[nodiscard]] size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::vector<QuarantineEntry>& entries() const {
    return entries_;
  }

  // Per-reason entry counts, keyed by reason name (sorted by std::map).
  [[nodiscard]] std::map<std::string, int64_t> CountsByReason() const;

  // Sorts entries by seq. seq is unique within a log, so this is a total
  // order; shard-merged and serial ledgers canonicalize identically.
  void Canonicalize();

  // Appends `other`'s entries (used when merging per-shard ledgers; call
  // Canonicalize() afterwards).
  void Merge(const QuarantineLedger& other);

  // Canonical JSON array, one object per entry, in current entry order.
  [[nodiscard]] std::string ToJson() const;

 private:
  std::vector<QuarantineEntry> entries_;
};

}  // namespace stream
}  // namespace sidq

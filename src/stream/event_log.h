#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/random.h"
#include "core/status.h"
#include "core/statusor.h"
#include "core/stid.h"
#include "core/types.h"
#include "obs/metrics.h"

namespace sidq {
namespace stream {

// One record as it *arrives* at the ingestion edge: the measurement itself
// plus its arrival metadata. `seq` is the global arrival index (unique,
// ascending within a log) and the determinism anchor of the whole stream
// layer: every quarantine-ledger entry traces back to exactly one seq, so
// outputs from differently-sharded replays merge into one canonical order.
// `arrival_ms` is when the record reached the gateway -- event time
// `record.t` plus network/battery-induced delay -- and exists only for
// latency KPIs and human inspection; all stream decisions (watermarks,
// lateness, windows) are functions of event time and arrival *order*,
// never of arrival wall time (lint rule R13).
struct StreamEvent {
  uint64_t seq = 0;
  Timestamp arrival_ms = 0;
  StRecord record;
};

// A recorded event log: the replayable unit of the streaming layer. Events
// are stored in arrival order (ascending seq). Replaying a log through the
// stream engine is deterministic by construction, which is what lets the
// differential tests pin stream output == batch output bit-for-bit.
struct EventLog {
  std::string field_name;
  std::vector<StreamEvent> events;

  [[nodiscard]] size_t size() const { return events.size(); }
  [[nodiscard]] bool empty() const { return events.empty(); }
};

// How RecordArrivals perturbs event-time order into a realistic (and
// adversarial) arrival order: exponential network delay on every record,
// occasional heavy straggler delay, and occasional gateway-side duplicate
// deliveries. All draws come from the caller's seeded Rng, so the same
// (dataset, options, seed) always produces the same log.
struct ArrivalOptions {
  // Mean of the exponential per-record network delay (ms); <= 0 disables
  // jitter entirely (arrival == event time, order-preserving).
  double mean_delay_ms = 2000.0;
  // Probability that a record is a straggler, adding Uniform(0, heavy)
  // extra delay on top of the exponential draw.
  double straggler_probability = 0.05;
  double straggler_delay_ms = 60'000.0;
  // Probability that a delivered record is delivered again later
  // (duplicate with the same sensor/t/value, its own seq).
  double duplicate_probability = 0.0;
  double duplicate_delay_ms = 10'000.0;
};

// Flattens `data` into an arrival-ordered event log under the delay model
// above. Ties in arrival time break by (sensor, t, value) so the produced
// log -- and everything replayed from it -- is a pure function of
// (data, options, rng seed).
EventLog RecordArrivals(const StDataset& data, const ArrivalOptions& options,
                        Rng* rng);

// Text serialization, one event per line, canonical float formatting:
// rewriting a freshly-read log reproduces the file byte-for-byte. The
// writer publishes atomically (tmp + fsync + rename) and appends a
// trailer line recording the event count, so the reader can tell a torn
// tail (truncation at any byte -- mid-line or at a line boundary) apart
// from a clean end-of-file.
[[nodiscard]] Status WriteEventLogFile(const EventLog& log,
                                       const std::string& path);

// Reads a log back. Failure modes are reason-coded:
//   - NotFound: the file does not exist.
//   - DataLoss("torn tail ..."): the file is a strict prefix of a valid
//     log -- a partial final line, or a missing/incomplete trailer. A
//     replay MUST NOT treat such a log as complete (silently dropping the
//     tail is the exact failure mode sidq exists to prevent).
//   - InvalidArgument: interior garbling -- bad header, unparseable
//     non-final line, seq gap, data after the trailer, count mismatch.
// When `metrics` is non-null, a torn tail increments the
// `stream.log.torn_tail` counter before the error returns.
[[nodiscard]] StatusOr<EventLog> ReadEventLogFile(
    const std::string& path, obs::MetricsRegistry* metrics = nullptr);

}  // namespace stream
}  // namespace sidq

#include "stream/replay.h"

#include <algorithm>
#include <future>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/trace.h"

namespace sidq {
namespace stream {

StatusOr<StreamOutput> Replay(const EventLog& log, const StreamConfig& config,
                              const ReplayOptions& options) {
  const int threads = std::max(1, options.num_threads);
  obs::TraceSpan replay_span;
  if (options.sinks.tracer != nullptr) {
    replay_span = obs::TraceSpan(options.sinks.tracer, options.clock,
                                 obs::kProcessKey, "stream.replay", "stream");
    replay_span.set_note("threads=" + std::to_string(threads) +
                         " events=" + std::to_string(log.size()));
  }
  if (threads == 1) {
    StreamEngine engine(config, options.sinks, options.clock, options.ctx);
    SIDQ_RETURN_IF_ERROR(ReplayInto(&engine, log));
    return engine.TakeOutput();
  }

  // Shard by sensor: each sub-log keeps arrival order (ascending seq), and
  // every decision the engine makes is per-sensor, so shard outputs are
  // the serial outputs of their sensors.
  std::vector<EventLog> shards(static_cast<size_t>(threads));
  for (EventLog& shard : shards) shard.field_name = log.field_name;
  for (const StreamEvent& ev : log.events) {
    shards[ev.record.sensor % static_cast<uint64_t>(threads)].events.push_back(
        ev);
  }

  exec::ThreadPool pool(static_cast<size_t>(threads), options.sinks.metrics);
  std::vector<std::future<StatusOr<StreamOutput>>> futures;
  futures.reserve(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    const EventLog& shard = shards[i];
    futures.push_back(
        pool.Submit([&config, &options, &shard]() -> StatusOr<StreamOutput> {
          StreamEngine engine(config, options.sinks, options.clock,
                              options.ctx);
          SIDQ_RETURN_IF_ERROR(ReplayInto(&engine, shard));
          return engine.TakeOutput();
        }));
  }

  StreamOutput merged;
  merged.cleaned = StDataset(log.field_name);
  Status failure = Status::OK();
  for (std::future<StatusOr<StreamOutput>>& f : futures) {
    StatusOr<StreamOutput> shard_output = f.get();
    if (!shard_output.ok()) {
      failure = shard_output.status();
      continue;  // drain every future before reporting
    }
    merged.Merge(std::move(shard_output).value());
  }
  SIDQ_RETURN_IF_ERROR(failure);
  merged.Canonicalize();
  return merged;
}

StreamOutput BatchReference(const EventLog& log, const StreamConfig& config) {
  AdmissionFilter filter(&config.rules, config.window_ms,
                         config.window_capacity);
  StreamOutput out;
  out.cleaned = StDataset(log.field_name);
  out.ingested = static_cast<int64_t>(log.size());

  std::map<SensorId, std::map<int64_t, std::vector<StreamEvent>>> admitted;
  std::map<SensorId, SensorSummary> summaries;
  for (const StreamEvent& ev : log.events) {
    SensorSummary& summary = summaries[ev.record.sensor];
    summary.sensor = ev.record.sensor;
    const AdmissionDecision d = filter.Observe(ev);
    if (!d.admitted) {
      out.ledger.Add(ev.seq, ev.record, d.reason);
      ++summary.quarantined;
      continue;
    }
    admitted[ev.record.sensor][d.window_index].push_back(ev);
    ++summary.admitted;
  }

  for (auto& [sensor, windows] : admitted) {
    SensorPipeline pipeline(config.kalman, config.robust_z, config.drift);
    std::vector<StRecord> cleaned;
    const SensorRule* rule = config.rules.Find(sensor);
    SensorSummary& summary = summaries[sensor];
    for (auto& [window_index, events] : windows) {
      const int64_t dups = filter.ReleaseWindow(sensor, window_index);
      const WindowKpis kpis = ProcessWindow(
          sensor, window_index, config.window_ms, std::move(events), dups,
          *rule, config.thresholds, &pipeline, &cleaned, &out.ledger,
          &out.alerts);
      out.kpis.push_back(kpis);
      summary.quarantined += kpis.outliers;
      ++summary.windows_closed;
    }
    if (!cleaned.empty()) {
      StSeries series(sensor, cleaned.front().loc);
      series.mutable_records() = std::move(cleaned);
      out.cleaned.AddSeries(std::move(series));
    }
  }
  for (auto& [sensor, summary] : summaries) {
    summary.watermark = filter.Watermark(sensor);
    out.sensors.push_back(summary);
  }
  out.Canonicalize();
  return out;
}

}  // namespace stream
}  // namespace sidq

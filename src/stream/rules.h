#pragma once

#include <map>
#include <string>

#include "core/status.h"
#include "core/statusor.h"
#include "core/types.h"

namespace sidq {
namespace stream {

// Declarative per-sensor data-quality contract, the `dq_rules` shape of the
// config-driven DQ frameworks the paper surveys: what a healthy record from
// this sensor looks like (admissible value range), how often it should
// report (expected interval -> windowed completeness), how far out of order
// its records may arrive (max lateness -> the sensor's watermark lag), and
// how fast its value may physically change (rate -> consistency KPI).
struct SensorRule {
  double min_value = -1e30;
  double max_value = 1e30;
  // Expected reporting interval; drives the per-window completeness KPI.
  Timestamp expected_interval_ms = 60'000;
  // Watermark lag: a record whose event time is at or before
  // (max event time seen - max_lateness_ms) is quarantined as late.
  Timestamp max_lateness_ms = 120'000;
  // Max credible |dvalue/dt| in value units per second; consecutive pairs
  // beyond it count as consistency violations in the window KPIs.
  double max_rate_per_s = 1e30;
};

// Rule lookup: per-sensor overrides over one default rule, plus the policy
// for sensors no rule mentions (admit under the default rule, or
// quarantine as unknown -- the strict mode for closed fleets).
class RuleSet {
 public:
  RuleSet() = default;

  void set_default_rule(const SensorRule& rule) { default_rule_ = rule; }
  const SensorRule& default_rule() const { return default_rule_; }

  void set_quarantine_unknown(bool strict) { quarantine_unknown_ = strict; }
  [[nodiscard]] bool quarantine_unknown() const { return quarantine_unknown_; }

  void AddRule(SensorId sensor, const SensorRule& rule) {
    per_sensor_[sensor] = rule;
  }
  [[nodiscard]] size_t num_sensor_rules() const { return per_sensor_.size(); }

  // The rule governing `sensor`, or nullptr when the sensor is unknown and
  // the set quarantines unknowns.
  [[nodiscard]] const SensorRule* Find(SensorId sensor) const {
    auto it = per_sensor_.find(sensor);
    if (it != per_sensor_.end()) return &it->second;
    return quarantine_unknown_ ? nullptr : &default_rule_;
  }

 private:
  SensorRule default_rule_;
  bool quarantine_unknown_ = false;
  std::map<SensorId, SensorRule> per_sensor_;
};

// Parses the declarative rule config. Line-oriented; '#' starts a comment.
//
//   default  range <min> <max> interval <ms> lateness <ms> [rate <per_s>]
//   sensor <id> range <min> <max> interval <ms> lateness <ms> [rate <per_s>]
//   unknown-sensors quarantine|admit
//
// Every clause is optional and order-free after the subject; unspecified
// fields keep the SensorRule defaults. Unknown tokens fail loudly.
[[nodiscard]] StatusOr<RuleSet> ParseRuleSet(const std::string& text);

}  // namespace stream
}  // namespace sidq

#include "stream/event_log.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "store/vfs.h"

namespace sidq {
namespace stream {

namespace {

// Value key with a total order (NaN sorts last), so the comparator stays a
// strict weak ordering even for garbage measurements.
double OrderableValue(double v) {
  return std::isnan(v) ? std::numeric_limits<double>::infinity() : v;
}

// Arrival-time ties break on measurement identity, never on the transient
// order RecordArrivals generated candidates in: the log is a pure function
// of (data, options, seed).
bool ArrivalLess(const StreamEvent& a, const StreamEvent& b) {
  const double av = OrderableValue(a.record.value);
  const double bv = OrderableValue(b.record.value);
  return std::tie(a.arrival_ms, a.record.sensor, a.record.t, av) <
         std::tie(b.arrival_ms, b.record.sensor, b.record.t, bv);
}

}  // namespace

EventLog RecordArrivals(const StDataset& data, const ArrivalOptions& options,
                        Rng* rng) {
  EventLog log;
  log.field_name = data.field_name();
  for (const StSeries& series : data.series()) {
    for (const StRecord& rec : series.records()) {
      StreamEvent ev;
      ev.record = rec;
      double delay = 0.0;
      if (rng != nullptr && options.mean_delay_ms > 0.0) {
        delay = rng->Exponential(1.0 / options.mean_delay_ms);
        if (options.straggler_probability > 0.0 &&
            rng->Bernoulli(options.straggler_probability)) {
          delay += rng->Uniform(0.0, options.straggler_delay_ms);
        }
      }
      ev.arrival_ms = rec.t + static_cast<Timestamp>(delay);
      const bool duplicated =
          rng != nullptr && options.duplicate_probability > 0.0 &&
          rng->Bernoulli(options.duplicate_probability);
      log.events.push_back(ev);
      if (duplicated) {
        StreamEvent dup = ev;
        dup.arrival_ms +=
            static_cast<Timestamp>(rng->Uniform(1.0, options.duplicate_delay_ms));
        log.events.push_back(dup);
      }
    }
  }
  std::stable_sort(log.events.begin(), log.events.end(), ArrivalLess);
  for (size_t i = 0; i < log.events.size(); ++i) {
    log.events[i].seq = static_cast<uint64_t>(i);
  }
  return log;
}

namespace {

constexpr char kHeaderPrefix[] = "# sidq-event-log v1 field=";
constexpr char kTrailerPrefix[] = "# sidq-event-log end count=";

// Torn-tail verdict: the on-disk bytes are a strict prefix of a valid log.
// Reason-coded DataLoss (never InvalidArgument) so callers can tell "the
// machine died mid-write, replay what survived elsewhere" apart from "this
// file is garbage".
Status TornTail(const std::string& path, const std::string& detail,
                obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    metrics->counter("stream.log.torn_tail").Increment(1);
  }
  return Status::DataLoss("torn tail in event log " + path + ": " + detail);
}

}  // namespace

Status WriteEventLogFile(const EventLog& log, const std::string& path) {
  std::ostringstream out;
  out << kHeaderPrefix << log.field_name << "\n";
  for (const StreamEvent& ev : log.events) {
    out << ev.seq << ' ' << ev.record.sensor << ' ' << ev.record.t << ' '
        << obs::internal_json::FormatDouble(ev.record.loc.x) << ' '
        << obs::internal_json::FormatDouble(ev.record.loc.y) << ' '
        << obs::internal_json::FormatDouble(ev.record.value) << ' '
        << obs::internal_json::FormatDouble(ev.record.stddev) << ' '
        << ev.arrival_ms << "\n";
  }
  // The trailer makes truncation detectable at every byte offset: cutting
  // mid-line leaves a partial line; cutting at a line boundary removes the
  // trailer itself.
  out << kTrailerPrefix << log.events.size() << "\n";
  return obs::WriteTextFile(path, out.str());
}

StatusOr<EventLog> ReadEventLogFile(const std::string& path,
                                    obs::MetricsRegistry* metrics) {
  SIDQ_ASSIGN_OR_RETURN(const std::string data,
                        store::ReadFileToString(store::DefaultVfs(), path));
  if (data.empty()) {
    return Status::InvalidArgument("empty event log: " + path);
  }
  // A valid log always ends with a newline (the trailer's); anything else
  // is a write cut off mid-line.
  const bool ends_with_newline = data.back() == '\n';

  // Split into lines, keeping track of which is last.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < data.size()) {
    const size_t nl = data.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(data.substr(start));
      break;
    }
    lines.push_back(data.substr(start, nl - start));
    start = nl + 1;
  }

  const std::string header = lines.empty() ? std::string() : lines[0];
  if (header.rfind(kHeaderPrefix, 0) != 0) {
    if (!ends_with_newline && lines.size() == 1) {
      // A partial first line could be a truncated header; a log this short
      // carries nothing recoverable either way.
      return TornTail(path, "partial header line", metrics);
    }
    return Status::InvalidArgument("bad event-log header: " + header);
  }
  EventLog log;
  log.field_name = header.substr(sizeof(kHeaderPrefix) - 1);

  bool saw_trailer = false;
  uint64_t trailer_count = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const bool is_last = i + 1 == lines.size();
    const bool is_partial = is_last && !ends_with_newline;
    const size_t lineno = i + 1;
    if (line.empty()) continue;
    if (saw_trailer) {
      return Status::InvalidArgument("data after trailer on event-log line " +
                                     std::to_string(lineno));
    }
    if (line.rfind(kTrailerPrefix, 0) == 0) {
      if (is_partial) {
        return TornTail(path, "partial trailer line", metrics);
      }
      const std::string count_str = line.substr(sizeof(kTrailerPrefix) - 1);
      char* end = nullptr;
      trailer_count = std::strtoull(count_str.c_str(), &end, 10);
      if (end == count_str.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad event-log trailer: " + line);
      }
      saw_trailer = true;
      continue;
    }
    // Tokenize, then convert doubles with strtod: istream's num_get never
    // accepts "nan"/"inf", but garbage measurements are exactly what event
    // logs exist to carry, so the codec must round-trip them.
    std::istringstream fields(line);
    std::string tok[8];
    bool short_line = false;
    for (std::string& t : tok) {
      if (!(fields >> t)) {
        short_line = true;
        break;
      }
    }
    StreamEvent ev;
    bool ok = !short_line;
    if (ok) {
      std::string extra;
      if (fields >> extra) {
        return Status::InvalidArgument("trailing fields on event-log line " +
                                       std::to_string(lineno));
      }
      auto to_u64 = [&ok](const std::string& s) -> uint64_t {
        char* end = nullptr;
        const uint64_t v = std::strtoull(s.c_str(), &end, 10);
        ok = ok && end != s.c_str() && *end == '\0';
        return v;
      };
      auto to_i64 = [&ok](const std::string& s) -> int64_t {
        char* end = nullptr;
        const int64_t v = std::strtoll(s.c_str(), &end, 10);
        ok = ok && end != s.c_str() && *end == '\0';
        return v;
      };
      auto to_double = [&ok](const std::string& s) -> double {
        char* end = nullptr;
        const double v = std::strtod(s.c_str(), &end);
        ok = ok && end != s.c_str() && *end == '\0';
        return v;
      };
      ev.seq = to_u64(tok[0]);
      ev.record.sensor = to_u64(tok[1]);
      ev.record.t = to_i64(tok[2]);
      ev.record.loc.x = to_double(tok[3]);
      ev.record.loc.y = to_double(tok[4]);
      ev.record.value = to_double(tok[5]);
      ev.record.stddev = to_double(tok[6]);
      ev.arrival_ms = to_i64(tok[7]);
    }
    if (!ok) {
      if (is_partial) {
        // An unparseable *final* line with no newline is truncation, not
        // garbling: every strict prefix of a valid data line lands here.
        return TornTail(path, "partial final line", metrics);
      }
      return Status::InvalidArgument("bad event-log line " +
                                     std::to_string(lineno) + ": " + line);
    }
    if (is_partial) {
      // Parsed cleanly but the newline is missing -- still a torn write
      // (and possibly a truncated number, e.g. "...  12" cut from "123").
      return TornTail(path, "final line missing newline", metrics);
    }
    log.events.push_back(ev);
  }
  if (!saw_trailer) {
    return TornTail(path, "missing trailer (log ends after " +
                              std::to_string(log.events.size()) +
                              " complete events)",
                    metrics);
  }
  if (trailer_count != log.events.size()) {
    return Status::InvalidArgument(
        "event-log trailer count " + std::to_string(trailer_count) +
        " != " + std::to_string(log.events.size()) + " events read");
  }
  for (size_t i = 0; i < log.events.size(); ++i) {
    if (log.events[i].seq != i) {
      return Status::InvalidArgument("event log seq gap at index " +
                                     std::to_string(i));
    }
  }
  return log;
}

}  // namespace stream
}  // namespace sidq

#include "stream/event_log.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>

#include "obs/export.h"

namespace sidq {
namespace stream {

namespace {

// Value key with a total order (NaN sorts last), so the comparator stays a
// strict weak ordering even for garbage measurements.
double OrderableValue(double v) {
  return std::isnan(v) ? std::numeric_limits<double>::infinity() : v;
}

// Arrival-time ties break on measurement identity, never on the transient
// order RecordArrivals generated candidates in: the log is a pure function
// of (data, options, seed).
bool ArrivalLess(const StreamEvent& a, const StreamEvent& b) {
  const double av = OrderableValue(a.record.value);
  const double bv = OrderableValue(b.record.value);
  return std::tie(a.arrival_ms, a.record.sensor, a.record.t, av) <
         std::tie(b.arrival_ms, b.record.sensor, b.record.t, bv);
}

}  // namespace

EventLog RecordArrivals(const StDataset& data, const ArrivalOptions& options,
                        Rng* rng) {
  EventLog log;
  log.field_name = data.field_name();
  for (const StSeries& series : data.series()) {
    for (const StRecord& rec : series.records()) {
      StreamEvent ev;
      ev.record = rec;
      double delay = 0.0;
      if (rng != nullptr && options.mean_delay_ms > 0.0) {
        delay = rng->Exponential(1.0 / options.mean_delay_ms);
        if (options.straggler_probability > 0.0 &&
            rng->Bernoulli(options.straggler_probability)) {
          delay += rng->Uniform(0.0, options.straggler_delay_ms);
        }
      }
      ev.arrival_ms = rec.t + static_cast<Timestamp>(delay);
      const bool duplicated =
          rng != nullptr && options.duplicate_probability > 0.0 &&
          rng->Bernoulli(options.duplicate_probability);
      log.events.push_back(ev);
      if (duplicated) {
        StreamEvent dup = ev;
        dup.arrival_ms +=
            static_cast<Timestamp>(rng->Uniform(1.0, options.duplicate_delay_ms));
        log.events.push_back(dup);
      }
    }
  }
  std::stable_sort(log.events.begin(), log.events.end(), ArrivalLess);
  for (size_t i = 0; i < log.events.size(); ++i) {
    log.events[i].seq = static_cast<uint64_t>(i);
  }
  return log;
}

Status WriteEventLogFile(const EventLog& log, const std::string& path) {
  std::ostringstream out;
  out << "# sidq-event-log v1 field=" << log.field_name << "\n";
  for (const StreamEvent& ev : log.events) {
    out << ev.seq << ' ' << ev.record.sensor << ' ' << ev.record.t << ' '
        << obs::internal_json::FormatDouble(ev.record.loc.x) << ' '
        << obs::internal_json::FormatDouble(ev.record.loc.y) << ' '
        << obs::internal_json::FormatDouble(ev.record.value) << ' '
        << obs::internal_json::FormatDouble(ev.record.stddev) << ' '
        << ev.arrival_ms << "\n";
  }
  return obs::WriteTextFile(path, out.str());
}

StatusOr<EventLog> ReadEventLogFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open event log: " + path);
  }
  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument("empty event log: " + path);
  }
  const std::string prefix = "# sidq-event-log v1 field=";
  if (header.rfind(prefix, 0) != 0) {
    return Status::InvalidArgument("bad event-log header: " + header);
  }
  EventLog log;
  log.field_name = header.substr(prefix.size());
  std::string line;
  size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    // Tokenize, then convert doubles with strtod: istream's num_get never
    // accepts "nan"/"inf", but garbage measurements are exactly what event
    // logs exist to carry, so the codec must round-trip them.
    std::istringstream fields(line);
    std::string tok[8];
    for (std::string& t : tok) {
      if (!(fields >> t)) {
        return Status::InvalidArgument("bad event-log line " +
                                       std::to_string(lineno) + ": " + line);
      }
    }
    std::string extra;
    if (fields >> extra) {
      return Status::InvalidArgument("trailing fields on event-log line " +
                                     std::to_string(lineno));
    }
    StreamEvent ev;
    bool ok = true;
    auto to_u64 = [&ok](const std::string& s) -> uint64_t {
      char* end = nullptr;
      const uint64_t v = std::strtoull(s.c_str(), &end, 10);
      ok = ok && end != s.c_str() && *end == '\0';
      return v;
    };
    auto to_i64 = [&ok](const std::string& s) -> int64_t {
      char* end = nullptr;
      const int64_t v = std::strtoll(s.c_str(), &end, 10);
      ok = ok && end != s.c_str() && *end == '\0';
      return v;
    };
    auto to_double = [&ok](const std::string& s) -> double {
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      ok = ok && end != s.c_str() && *end == '\0';
      return v;
    };
    ev.seq = to_u64(tok[0]);
    ev.record.sensor = to_u64(tok[1]);
    ev.record.t = to_i64(tok[2]);
    ev.record.loc.x = to_double(tok[3]);
    ev.record.loc.y = to_double(tok[4]);
    ev.record.value = to_double(tok[5]);
    ev.record.stddev = to_double(tok[6]);
    ev.arrival_ms = to_i64(tok[7]);
    if (!ok) {
      return Status::InvalidArgument("bad event-log line " +
                                     std::to_string(lineno) + ": " + line);
    }
    log.events.push_back(ev);
  }
  for (size_t i = 0; i < log.events.size(); ++i) {
    if (log.events[i].seq != i) {
      return Status::InvalidArgument("event log seq gap at index " +
                                     std::to_string(i));
    }
  }
  return log;
}

}  // namespace stream
}  // namespace sidq

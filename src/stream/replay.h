#pragma once

#include "core/exec_context.h"
#include "core/statusor.h"
#include "obs/observer.h"
#include "stream/engine.h"
#include "stream/event_log.h"

namespace sidq {
namespace stream {

struct ReplayOptions {
  // 1 = serial replay; > 1 shards *sensors* across that many engines on an
  // exec::ThreadPool. All engine state is per-sensor, so a sensor shard
  // replays exactly the serial decision sequence and the merged output is
  // bit-identical to the serial replay for any worker count.
  int num_threads = 1;
  obs::ObsSinks sinks;
  const Clock* clock = nullptr;
  const ExecContext* ctx = nullptr;
};

// Replays `log` through the stream engine and returns the canonical
// output. Fails only on cooperative cancellation / deadline (or a worker
// dying); data problems land in the output's quarantine ledger instead.
[[nodiscard]] StatusOr<StreamOutput> Replay(const EventLog& log,
                                            const StreamConfig& config,
                                            const ReplayOptions& options = {});

// The batch pipeline the stream engine must reproduce bit-for-bit: one
// admission pass over the whole log (identical AdmissionFilter, identical
// arrival order), then per sensor, windows processed in ascending
// event-time order through the same ProcessWindow. No watermark-driven
// incremental closes, no chaos sites, no bounded buffers in play -- if
// Replay() == BatchReference() on a log, the engine's incremental
// machinery added latency structure without changing a single bit of
// output. That equality is the differential contract the stream tests pin
// at 1/2/8 workers.
[[nodiscard]] StreamOutput BatchReference(const EventLog& log,
                                          const StreamConfig& config);

}  // namespace stream
}  // namespace sidq

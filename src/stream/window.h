#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/arena.h"
#include "core/quality.h"
#include "core/stid.h"
#include "core/types.h"
#include "outlier/online_detectors.h"
#include "refine/online_kalman.h"
#include "stream/event_log.h"
#include "stream/quarantine.h"
#include "stream/rules.h"

namespace sidq {
namespace stream {

// Bounded buffer for one sensor's one open event-time window. Capacity is
// fixed at construction; the admission filter guarantees Push is never
// called on a full window (overflow records are quarantined upstream), so
// memory per open window is a hard constant regardless of sensor behaviour.
class RingWindow {
 public:
  explicit RingWindow(size_t capacity) { events_.reserve(capacity); }

  void Push(const StreamEvent& ev) { events_.push_back(ev); }
  [[nodiscard]] size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  // Drains the window's events sorted by event time. Admission dedups on
  // (sensor, t), so event times are unique within a window and this sort
  // is a total order -- arrival order cannot leak into window processing.
  [[nodiscard]] std::vector<StreamEvent> TakeSortedByTime();

  // Same drain into arena scratch (the stream engine's window-close path):
  // the sorted events live until the caller's ArenaScope rewinds, and the
  // close performs no heap allocation for them.
  [[nodiscard]] StreamEvent* TakeSortedByTime(Arena* arena, size_t* count);

 private:
  std::vector<StreamEvent> events_;
};

// Windowed data-quality KPIs for one (sensor, window), the streaming
// counterpart of StidProfiler's dataset-level dimensions: completeness,
// redundancy, time sparsity (max gap), precision, and consistency, plus
// window aggregates and the online detectors' verdicts.
struct WindowKpis {
  SensorId sensor = kInvalidSensorId;
  Timestamp window_start = 0;
  Timestamp window_end = 0;
  int64_t count = 0;       // admitted records surviving the outlier gate
  int64_t outliers = 0;    // robust-z rejections at window close
  int64_t duplicates = 0;  // suppressed duplicate deliveries
  double completeness = 0.0;   // count / expected records per window
  double redundancy = 0.0;     // duplicates / (duplicates + count)
  Timestamp max_gap_ms = 0;    // time sparsity within the window
  double precision_stddev = 0.0;  // mean posterior stddev of the estimates
  int64_t consistency_violations = 0;  // |dv/dt| beyond the rule's rate
  double mean_value = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  bool drift = false;  // Page-Hinkley signalled inside this window
};

// Alert thresholds on the windowed KPIs; a window tripping one emits a
// KpiAlert tagged with the DqDimension it degrades.
struct KpiThresholds {
  double min_completeness = 0.5;
  double max_redundancy = 0.25;
  Timestamp max_gap_ms = 300'000;
  int64_t max_consistency_violations = 0;
};

struct KpiAlert {
  SensorId sensor = kInvalidSensorId;
  Timestamp window_start = 0;
  DqDimension dimension = DqDimension::kCompleteness;
  double observed = 0.0;
  double threshold = 0.0;
};

// Per-sensor online cleaning state threaded across that sensor's windows:
// the incremental Kalman level/trend filter, the rolling robust-z outlier
// gate, and the Page-Hinkley drift detector. Windows of one sensor close
// in event-time order, so this state sees records in event-time order too.
struct SensorPipeline {
  SensorPipeline() = default;
  SensorPipeline(const refine::OnlineKalman1D::Options& kalman_options,
                 const outlier::RollingRobustZ::Options& robust_z_options,
                 const outlier::PageHinkley::Options& drift_options)
      : kalman(kalman_options),
        robust_z(robust_z_options),
        drift(drift_options) {}

  refine::OnlineKalman1D kalman;
  outlier::RollingRobustZ robust_z;
  outlier::PageHinkley drift;
};

// Processes one closed window: events (already admitted) in event-time
// order run through the outlier gate then the Kalman update; survivors
// append to `cleaned` with the filtered value and posterior stddev,
// rejects go to `ledger` as kOutlier. Computes the window KPIs and any
// threshold alerts. Shared verbatim by the stream engine and the batch
// reference -- the differential contract holds because both sides call
// exactly this function on identical admitted event sets.
WindowKpis ProcessWindow(SensorId sensor, int64_t window_index,
                         Timestamp window_ms, std::vector<StreamEvent> events,
                         int64_t duplicates, const SensorRule& rule,
                         const KpiThresholds& thresholds,
                         SensorPipeline* pipeline,
                         std::vector<StRecord>* cleaned,
                         QuarantineLedger* ledger,
                         std::vector<KpiAlert>* alerts);

// Span form of the same function (sorts `events` in place). This is the
// single implementation both overloads share: the stream engine passes
// arena scratch, the batch reference passes its vector's storage -- so the
// stream-vs-batch differential contract is preserved by construction.
WindowKpis ProcessWindow(SensorId sensor, int64_t window_index,
                         Timestamp window_ms, StreamEvent* events,
                         size_t event_count, int64_t duplicates,
                         const SensorRule& rule,
                         const KpiThresholds& thresholds,
                         SensorPipeline* pipeline,
                         std::vector<StRecord>* cleaned,
                         QuarantineLedger* ledger,
                         std::vector<KpiAlert>* alerts);

// Canonical JSON object for one window's KPIs (keys in fixed order).
[[nodiscard]] std::string WindowKpisToJson(const WindowKpis& kpis);

// Canonical JSON object for one alert.
[[nodiscard]] std::string KpiAlertToJson(const KpiAlert& alert);

}  // namespace stream
}  // namespace sidq

#include "stream/quarantine.h"

#include <algorithm>
#include <sstream>

#include "obs/export.h"

namespace sidq {
namespace stream {

const char* QuarantineReasonName(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kUnknownSensor:
      return "unknown_sensor";
    case QuarantineReason::kNonFinite:
      return "non_finite";
    case QuarantineReason::kLate:
      return "late";
    case QuarantineReason::kDuplicate:
      return "duplicate";
    case QuarantineReason::kOutOfRange:
      return "out_of_range";
    case QuarantineReason::kWindowOverflow:
      return "window_overflow";
    case QuarantineReason::kOutlier:
      return "outlier";
    case QuarantineReason::kIngestFault:
      return "ingest_fault";
    case QuarantineReason::kWindowFault:
      return "window_fault";
    case QuarantineReason::kStoreCorruptBlock:
      return "store_corrupt_block";
    case QuarantineReason::kStoreTornTail:
      return "store_torn_tail";
  }
  return "unknown";
}

std::map<std::string, int64_t> QuarantineLedger::CountsByReason() const {
  std::map<std::string, int64_t> counts;
  for (const QuarantineEntry& e : entries_) {
    ++counts[QuarantineReasonName(e.reason)];
  }
  return counts;
}

void QuarantineLedger::Canonicalize() {
  std::sort(entries_.begin(), entries_.end(),
            [](const QuarantineEntry& a, const QuarantineEntry& b) {
              return a.seq < b.seq;
            });
}

void QuarantineLedger::Merge(const QuarantineLedger& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

std::string QuarantineLedger::ToJson() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const QuarantineEntry& e = entries_[i];
    if (i > 0) out << ",";
    out << "\n  {\"seq\":" << e.seq << ",\"sensor\":" << e.sensor
        << ",\"t\":" << e.t
        << ",\"value\":" << obs::internal_json::FormatDouble(e.value)
        << ",\"reason\":\"" << QuarantineReasonName(e.reason) << "\"}";
  }
  if (!entries_.empty()) out << "\n";
  out << "]";
  return out.str();
}

}  // namespace stream
}  // namespace sidq

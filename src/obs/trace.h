#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/clock.h"
#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace sidq {
namespace obs {

// Key for spans that belong to the run as a whole rather than to one
// object (e.g. "fleet.run"). Sorts after every object id in canonical
// span order.
inline constexpr uint64_t kProcessKey = ~0ull;

// Seq space reserved for spans recorded directly on the Tracer (Begin/End/
// Instant). Batch producers (PipelineObserver) assign their own per-key
// seqs starting at 0 and stay below this, so a direct span on an object's
// key -- e.g. a fired failpoint -- sorts deterministically after that
// object's batched pipeline spans instead of colliding with them.
inline constexpr uint64_t kDirectSeqBase = 1ull << 32;

// One completed (or instant) span. Identity is positional, not pointer-
// based: (key, seq) orders spans canonically and `depth` encodes the tree,
// so two runs that make the same calls produce byte-identical span lists --
// no span ids that depend on thread interleaving.
struct SpanRecord {
  uint64_t key = 0;       // object id, or kProcessKey
  std::string name;       // subject, e.g. "map_match"; kind is `category`
  std::string category;   // "fleet" | "stage" | "attempt" | "retry" | ...
  std::string note;       // free-form annotation ("" when unused)
  int depth = 0;          // nesting depth within the key (0 = key root)
  uint64_t seq = 0;       // per-key start order (>= kDirectSeqBase when
                          // recorded directly on the Tracer)
  int64_t start_ms = 0;   // on the span's Clock
  int64_t end_ms = 0;     // == start_ms for instant events
};

// Span collector. Begin/End (or the TraceSpan RAII wrapper) may be called
// from any thread; per-key sequence numbers and depth are assigned under a
// mutex, which is cheap at span granularity (a handful of spans per
// trajectory, not per point).
//
// Determinism: all spans of one key are produced by the single thread
// cleaning that object, in program order, against that object's Clock --
// under FleetRunner's virtual time this makes CanonicalSpans() a pure
// function of (fleet, seeds, configs), independent of worker count. Spans
// keyed kProcessKey come from the coordinating thread and are equally
// ordered. See DESIGN.md "Observability".
class Tracer {
 public:
  // An open span; treat as opaque between Begin and End.
  struct ActiveSpan {
    uint64_t key = 0;
    std::string name;
    std::string category;
    std::string note;
    int depth = 0;
    uint64_t seq = 0;
    int64_t start_ms = 0;
    const Clock* clock = nullptr;  // borrowed; may be null (times stay 0)
    bool open = false;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Opens a span for `key`; `clock` (nullable, borrowed) supplies start and
  // end times.
  ActiveSpan Begin(uint64_t key, std::string name, std::string category,
                   const Clock* clock);
  // Closes `span` and records it. No-op on a span that was never opened.
  void End(ActiveSpan&& span);
  // Records an instant event (start == end) at the key's current depth.
  void Instant(uint64_t key, std::string name, std::string category,
               const Clock* clock, std::string note = "");

  // Takes ownership of a batch of pre-built records in one O(1) critical
  // section (the vector is adopted whole -- no per-record moves), leaving
  // `records` empty. The producer is responsible for seq/depth assignment
  // and must keep seqs below kDirectSeqBase (PipelineObserver's batched
  // flush path).
  void AppendRecords(std::vector<SpanRecord>&& records);

  // Completed spans in canonical order: ascending (key, seq) -- object
  // spans grouped per object in start order, kProcessKey spans last.
  [[nodiscard]] std::vector<SpanRecord> CanonicalSpans() const;

  [[nodiscard]] size_t num_spans() const;

 private:
  struct KeyState {
    uint64_t next_seq = 0;
    int open_depth = 0;
  };

  // mu_ is the Tracer's single capability: every collection below is
  // guarded by it, and no method holds it across a call out of this class
  // (lock-ordering rules in DESIGN.md "Concurrency & locking discipline").
  mutable Mutex mu_;
  // Keys are looked up, never iterated: canonical order comes from sorting
  // the flat span list, not from map order (determinism contract, lint
  // rule R11).
  std::unordered_map<uint64_t, KeyState> keys_ SIDQ_GUARDED_BY(mu_);
  std::vector<SpanRecord> direct_records_
      SIDQ_GUARDED_BY(mu_);  // from Begin/End/Instant
  // Batches adopted whole from AppendRecords; concatenated (and sorted)
  // only at CanonicalSpans time.
  std::vector<std::vector<SpanRecord>> chunks_ SIDQ_GUARDED_BY(mu_);
  size_t chunk_spans_ SIDQ_GUARDED_BY(mu_) = 0;
};

// RAII span handle: opens on construction, records on destruction. Movable
// so it can live in std::optional; not copyable.
class TraceSpan {
 public:
  TraceSpan() = default;
  // All pointers borrowed; `tracer` may be null (the span is then a no-op),
  // matching the detached-handle idiom of obs::Counter.
  TraceSpan(Tracer* tracer, const Clock* clock, uint64_t key,
            std::string name, std::string category)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      span_ = tracer_->Begin(key, std::move(name), std::move(category), clock);
    }
  }
  TraceSpan(TraceSpan&& other) noexcept
      : tracer_(other.tracer_), span_(std::move(other.span_)) {
    other.tracer_ = nullptr;
    other.span_.open = false;
  }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      Finish();
      tracer_ = other.tracer_;
      span_ = std::move(other.span_);
      other.tracer_ = nullptr;
      other.span_.open = false;
    }
    return *this;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { Finish(); }

  // Attaches/overwrites the span's note (exported under args.note).
  void set_note(std::string note) { span_.note = std::move(note); }

  // Ends the span now instead of at destruction.
  void Finish() {
    if (tracer_ != nullptr && span_.open) tracer_->End(std::move(span_));
    tracer_ = nullptr;
    span_.open = false;
  }

 private:
  Tracer* tracer_ = nullptr;
  Tracer::ActiveSpan span_;
};

}  // namespace obs
}  // namespace sidq

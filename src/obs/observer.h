#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/clock.h"
#include "core/failpoint.h"
#include "core/observer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sidq {
namespace obs {

// The observability outputs a run writes into. Both pointers are borrowed
// and nullable -- a null sink simply drops that signal, so callers can
// collect metrics without traces or vice versa.
struct ObsSinks {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

// RunObserver implementation bridging pipeline events into metrics and
// spans. One instance per *shard* (not per object): the fleet runner
// rebinds it to each object with BeginObject/EndObject, which lets it cache
// metric handles and span-name strings across the objects of a shard --
// stage names repeat, so the steady state is an unordered_map hit plus
// relaxed atomic increments, no registry lock and no string building.
//
// Spans are buffered locally and pushed to the Tracer in one batch when the
// observer is destroyed (or Flush() is called): one tracer lock per shard
// instead of two per span. The observer owns its keys' low seq space
// (Tracer::kDirectSeqBase and up is reserved for direct tracer calls, e.g.
// fired failpoints), so batched and direct spans never collide. Only the
// shard's thread may touch the observer; the sinks themselves are
// thread-safe.
//
// Metric naming (DESIGN.md "Observability"):
//   pipeline.stage.runs.<stage>          counter, one per OnStageBegin
//   pipeline.stage.failures.<stage>      counter, stage ended non-OK
//   pipeline.stage.duration_ms.<stage>   histogram of stage durations
//   pipeline.retry.attempts              counter, == sum of RunTrace::retries
//   pipeline.degrade.falls               counter, == total DegradeEvents
//
// Span naming: the category carries the kind and the name carries the
// subject (short names stay within SSO, so emitting a span allocates only
// its record slot). "object"/"object" roots each object's tree (note
// full/degraded/failed); stage spans are <stage>/"stage" under it;
// <stage>#<n>/"attempt" only for *interesting* attempts -- a first attempt
// that succeeds is implied by its stage span and is elided, so retried or
// failing attempts stand out and the steady-state trace stays compact.
// Instants: <stage>/"retry", <ladder>/"degrade".
//
// `deterministic_timing` declares whether the clock is virtual (duration
// histograms registered kDeterministic) or wall-backed (kVolatile, so the
// scheduling-dependent durations stay out of golden snapshots).
class PipelineObserver : public RunObserver {
 public:
  explicit PipelineObserver(const ObsSinks& sinks,
                            bool deterministic_timing = true);
  ~PipelineObserver() override { Flush(); }
  PipelineObserver(const PipelineObserver&) = delete;
  void operator=(const PipelineObserver&) = delete;

  // Rebinds the observer to object `key` (timestamps read from `clock`,
  // borrowed, nullable) and opens its root span. Per-key span sequence
  // numbers restart at 0.
  void BeginObject(uint64_t key, const Clock* clock);
  // Closes the object root span, annotated with `note`.
  void EndObject(const char* note);
  // Pushes buffered spans to the tracer; automatic on destruction.
  void Flush();

  void OnStageBegin(const std::string& stage) override;
  void OnStageEnd(const std::string& stage, const Status& status) override;
  void OnAttemptBegin(const std::string& stage, int attempt) override;
  void OnAttemptEnd(const std::string& stage, int attempt,
                    const Status& status) override;
  void OnRetry(const std::string& stage, int attempt,
               int64_t backoff_ms) override;
  void OnDegrade(const std::string& ladder, int rung,
                 const std::string& rung_name, const Status& cause) override;

 private:
  // Handles and span names for one stage (or ladder-rung) name, resolved
  // once per shard.
  struct StageCache {
    Counter runs;
    Counter failures;
    Histogram duration;
    std::string stage_span_name;  // == the stage name (category says kind)
  };

  // String-free: span names are resolved at emission time (from the stage
  // cache, or built on the rare retried/failed-attempt pop), so pushing and
  // discarding a frame allocates nothing.
  struct Frame {
    const StageCache* cache = nullptr;  // stage frames; null for attempts
    const char* category = "";
    uint64_t seq = 0;
    int depth = 0;
    int64_t start_ms = 0;
  };

  int64_t NowMs() const { return clock_ != nullptr ? clock_->NowMs() : 0; }
  StageCache& CacheFor(const std::string& stage);
  void PushFrame(const StageCache* cache, const char* category);
  // Pops the top frame into a SpanRecord named `name` ending at `end_ms`;
  // `name` is ignored (and nothing is recorded) when `emit` is false.
  void PopFrame(bool emit, const std::string& name, const Status& status,
                int64_t end_ms);
  void EmitInstant(std::string name, const char* category, std::string note);

  ObsSinks sinks_;
  MetricStability timing_stability_ = MetricStability::kDeterministic;
  Counter retry_counter_;
  Counter degrade_counter_;
  std::unordered_map<std::string, StageCache> stage_cache_;
  // Pipelines run stages in the same order for every object, so a
  // round-robin hint (reset per object) resolves the next stage with one
  // string compare instead of a hash lookup. Pointers into stage_cache_
  // nodes, which never move.
  std::vector<std::pair<const std::string*, StageCache*>> stage_order_;
  size_t stage_hint_ = 0;

  uint64_t key_ = 0;
  const Clock* clock_ = nullptr;  // borrowed, nullable
  uint64_t next_seq_ = 0;
  Frame object_frame_;
  bool object_open_ = false;
  // Strictly nested begin/end events (core/observer.h contract), so one
  // LIFO stack serves stages and attempts alike.
  std::vector<Frame> frames_;
  std::vector<SpanRecord> buffer_;
};

// Process-wide FailPointObserver recording fired chaos faults:
//   chaos.failpoint.fired            counter, every fire
//   chaos.failpoint.fired.<site>     counter per site
// plus an instant span <site>/"failpoint" (note = action name) on the
// firing object's timeline, in the tracer's direct seq space (sorts after
// the object's pipeline spans). Thread-safe: counters
// are striped atomics and the tracer locks internally.
class FailPointRecorder : public FailPointObserver {
 public:
  explicit FailPointRecorder(const ObsSinks& sinks) : sinks_(sinks) {}

  void OnFailPointFired(const char* site, uint64_t key,
                        FailPointAction action, const Clock* clock) override;

 private:
  ObsSinks sinks_;
};

// RAII installation of a FailPointRecorder as the process-wide failpoint
// observer; restores the previous observer on destruction.
class ScopedFailPointObservation {
 public:
  explicit ScopedFailPointObservation(const ObsSinks& sinks)
      : recorder_(sinks),
        previous_(ExchangeFailPointObserver(&recorder_)) {}
  ~ScopedFailPointObservation() { ExchangeFailPointObserver(previous_); }
  ScopedFailPointObservation(const ScopedFailPointObservation&) = delete;
  void operator=(const ScopedFailPointObservation&) = delete;

 private:
  FailPointRecorder recorder_;
  FailPointObserver* previous_ = nullptr;
};

}  // namespace obs
}  // namespace sidq

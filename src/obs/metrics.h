#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace sidq {
namespace obs {

// -------------------------------------------------------------------------
// MetricsRegistry: counters, gauges, and fixed-bucket histograms, safe to
// write from FleetRunner workers. Writes are lock-free: each metric keeps
// kStripes cache-line-padded atomic shards and a writing thread touches only
// its own stripe (relaxed fetch_add), so eight workers hammering one counter
// never contend on a line. Snapshot() merges the stripes.
//
// Determinism contract (DESIGN.md "Observability"): a metric is either
//   kDeterministic -- its merged value is a pure function of (inputs, seeds,
//     config) under virtual time: counters/gauges of discrete events, and
//     histograms fed integer-valued samples (integer doubles sum exactly in
//     any stripe order, so even the float `sum` field is reproducible);
//   kVolatile -- its value depends on OS scheduling (work-steal counts,
//     wall-clock durations). Volatile metrics are excluded from snapshots
//     unless SnapshotOptions::include_volatile is set, so the default
//     export is byte-identical across runs and worker counts -- the
//     property the golden-trace tests pin.
// -------------------------------------------------------------------------

enum class MetricKind : int { kCounter = 0, kGauge, kHistogram };

enum class MetricStability : int {
  kDeterministic = 0,  // pure function of inputs under virtual time
  kVolatile,           // scheduling-dependent; excluded from golden snapshots
};

namespace internal_metrics {

inline constexpr size_t kStripes = 16;

// Stable per-thread stripe index in [0, kStripes).
size_t ThreadStripe();

struct alignas(64) CounterStripe {
  std::atomic<int64_t> value{0};
};

struct CounterCell {
  std::string name;
  MetricStability stability = MetricStability::kDeterministic;
  CounterStripe stripes[kStripes];
};

struct GaugeCell {
  std::string name;
  MetricStability stability = MetricStability::kDeterministic;
  std::atomic<int64_t> value{0};
};

struct alignas(64) HistogramStripe {
  // counts[i] covers bounds[i-1] < v <= bounds[i]; one extra overflow slot.
  // Raw atomic array (atomics are immovable, so no std::vector).
  std::unique_ptr<std::atomic<int64_t>[]> counts;
  std::atomic<double> sum{0.0};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

struct HistogramCell {
  std::string name;
  MetricStability stability = MetricStability::kDeterministic;
  std::vector<double> bounds;  // strictly increasing, finite
  HistogramStripe stripes[kStripes];
  // Set when the cell saw a non-finite sample or was registered with
  // invalid bounds; the JSON exporter turns this into a Status error
  // instead of emitting NaN/Inf (which is not valid JSON).
  std::atomic<bool> invalid{false};
};

}  // namespace internal_metrics

// Lightweight handles. Default-constructed handles are detached no-ops, so
// instrumented code needs no null checks when observability is off.
class Counter {
 public:
  Counter() = default;
  void Increment(int64_t n = 1) const {
    if (cell_ == nullptr) return;
    cell_->stripes[internal_metrics::ThreadStripe()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(internal_metrics::CounterCell* cell) : cell_(cell) {}
  internal_metrics::CounterCell* cell_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void Set(int64_t v) const {
    if (cell_ != nullptr) cell_->value.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t n) const {
    if (cell_ != nullptr) cell_->value.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(internal_metrics::GaugeCell* cell) : cell_(cell) {}
  internal_metrics::GaugeCell* cell_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  // Records one sample. Non-finite samples mark the histogram invalid
  // (surfaced as a Status error at export) rather than poisoning the sums.
  void Record(double v) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(internal_metrics::HistogramCell* cell) : cell_(cell) {}
  internal_metrics::HistogramCell* cell_ = nullptr;
};

// Merged point-in-time values, canonical: every vector sorted by name.
struct CounterValue {
  std::string name;
  int64_t value = 0;
  MetricStability stability = MetricStability::kDeterministic;
};

struct GaugeValue {
  std::string name;
  int64_t value = 0;
  MetricStability stability = MetricStability::kDeterministic;
};

struct HistogramValue {
  std::string name;
  std::vector<double> bounds;        // finite upper bucket bounds
  std::vector<int64_t> bucket_counts;  // bounds.size() entries
  int64_t overflow = 0;              // samples above the last bound
  int64_t count = 0;
  double sum = 0.0;
  double max = 0.0;  // largest recorded sample (0 when empty)
  // Nearest-rank percentiles resolved against bucket upper bounds; a
  // percentile landing in the overflow bucket reports `max`.
  double p50 = 0.0;
  double p99 = 0.0;
  bool invalid = false;  // saw NaN/Inf samples or bad bounds
  MetricStability stability = MetricStability::kDeterministic;
};

struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

struct SnapshotOptions {
  // Include kVolatile metrics (scheduling-dependent values). Off by
  // default so snapshots are deterministic and golden-testable.
  bool include_volatile = false;
};

// The registry. Handle lookup takes a shared lock (exclusive only when a
// name is first registered); handle writes are lock-free stripe updates.
// Cells live in deques, so handles stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the handle for `name`, registering it on first use. Re-asking
  // with a different kind (or, for histograms, different bounds) returns a
  // detached handle and records a registration error surfaced by
  // registration_error().
  Counter counter(const std::string& name,
                  MetricStability stability = MetricStability::kDeterministic)
      SIDQ_EXCLUDES(mu_);
  Gauge gauge(const std::string& name,
              MetricStability stability = MetricStability::kDeterministic)
      SIDQ_EXCLUDES(mu_);
  // `bounds` are upper bucket limits, strictly increasing and finite;
  // invalid bounds mark the histogram invalid (export then fails loudly).
  Histogram histogram(
      const std::string& name, std::vector<double> bounds,
      MetricStability stability = MetricStability::kDeterministic)
      SIDQ_EXCLUDES(mu_);

  // Common duration bucket bounds (milliseconds, 1 .. 10s).
  static std::vector<double> DurationBucketsMs();

  [[nodiscard]] MetricsSnapshot Snapshot(SnapshotOptions options = {}) const
      SIDQ_EXCLUDES(mu_);

  // First kind/bounds-mismatch registration error, empty when clean.
  [[nodiscard]] std::string registration_error() const SIDQ_EXCLUDES(mu_);

 private:
  struct Entry {
    MetricKind kind;
    size_t index;  // into the kind's deque
  };

  // mu_ guards the registry *structure* (name table, cell deques,
  // registration error) -- shared for lookup/snapshot, exclusive for
  // first-use registration. Cell *contents* (the striped atomics) are
  // deliberately outside the capability: handles write them lock-free
  // through raw pointers, which stay valid because deque elements never
  // move. by_name_ is looked up, never iterated: canonical snapshot order
  // comes from an explicit sort (lint rule R11).
  mutable SharedMutex mu_;
  std::unordered_map<std::string, Entry> by_name_ SIDQ_GUARDED_BY(mu_);
  std::deque<internal_metrics::CounterCell> counters_ SIDQ_GUARDED_BY(mu_);
  std::deque<internal_metrics::GaugeCell> gauges_ SIDQ_GUARDED_BY(mu_);
  std::deque<internal_metrics::HistogramCell> histograms_
      SIDQ_GUARDED_BY(mu_);
  std::string registration_error_ SIDQ_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace sidq

#include "obs/export.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "store/vfs.h"

namespace sidq {
namespace obs {

namespace internal_json {

std::string FormatDouble(double v) {
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace internal_json

namespace {

using internal_json::EscapeString;
using internal_json::FormatDouble;

void AppendDoubleArray(const std::vector<double>& vals, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += FormatDouble(vals[i]);
  }
  out->push_back(']');
}

void AppendIntArray(const std::vector<int64_t>& vals, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += std::to_string(vals[i]);
  }
  out->push_back(']');
}

}  // namespace

StatusOr<std::string> MetricsToJson(const MetricsSnapshot& snap) {
  std::string out = "{\"counters\":[";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    const CounterValue& c = snap.counters[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":\"" + EscapeString(c.name) +
           "\",\"value\":" + std::to_string(c.value) + "}";
  }
  out += "],\"gauges\":[";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    const GaugeValue& g = snap.gauges[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":\"" + EscapeString(g.name) +
           "\",\"value\":" + std::to_string(g.value) + "}";
  }
  out += "],\"histograms\":[";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramValue& h = snap.histograms[i];
    if (h.invalid) {
      return Status::InvalidArgument("histogram '" + h.name +
                                     "' is invalid (non-finite samples or "
                                     "bad bounds); refusing to export");
    }
    if (!std::isfinite(h.sum) || !std::isfinite(h.max) ||
        !std::isfinite(h.p50) || !std::isfinite(h.p99)) {
      return Status::InvalidArgument("histogram '" + h.name +
                                     "' has non-finite aggregates; "
                                     "refusing to export");
    }
    for (const double b : h.bounds) {
      if (!std::isfinite(b)) {
        return Status::InvalidArgument("histogram '" + h.name +
                                       "' has non-finite bounds; "
                                       "refusing to export");
      }
    }
    if (i > 0) out.push_back(',');
    out += "{\"name\":\"" + EscapeString(h.name) + "\",\"bounds\":";
    AppendDoubleArray(h.bounds, &out);
    out += ",\"bucket_counts\":";
    AppendIntArray(h.bucket_counts, &out);
    out += ",\"overflow\":" + std::to_string(h.overflow);
    out += ",\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + FormatDouble(h.sum);
    out += ",\"max\":" + FormatDouble(h.max);
    out += ",\"p50\":" + FormatDouble(h.p50);
    out += ",\"p99\":" + FormatDouble(h.p99);
    out += "}";
  }
  out += "]}";
  return out;
}

StatusOr<std::string> TraceToChromeJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (s.end_ms < s.start_ms) {
      return Status::InvalidArgument("span '" + s.name +
                                     "' ends before it starts; "
                                     "refusing to export");
    }
    if (i > 0) out.push_back(',');
    // Chrome trace_event wants microseconds; our clocks are millisecond
    // resolution, so scale exactly.
    const int64_t ts_us = s.start_ms * 1000;
    const int64_t dur_us = (s.end_ms - s.start_ms) * 1000;
    const uint64_t tid = s.key == kProcessKey ? 0 : s.key + 1;
    out += "{\"name\":\"" + EscapeString(s.name) + "\",\"cat\":\"" +
           EscapeString(s.category) + "\",\"ph\":\"X\",\"ts\":" +
           std::to_string(ts_us) + ",\"dur\":" + std::to_string(dur_us) +
           ",\"pid\":1,\"tid\":" + std::to_string(tid) + ",\"args\":{";
    out += "\"key\":" + (s.key == kProcessKey ? std::string("-1")
                                              : std::to_string(s.key));
    out += ",\"depth\":" + std::to_string(s.depth);
    out += ",\"seq\":" + std::to_string(s.seq);
    if (!s.note.empty()) {
      out += ",\"note\":\"" + EscapeString(s.note) + "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  // tmp + fsync + rename + dir-fsync: a crash or full disk mid-export can
  // never leave a truncated file that parses as a valid-but-short JSON
  // document (the silent-drop failure mode sidq exists to prevent).
  return store::AtomicWriteFile(store::DefaultVfs(), path, content);
}

}  // namespace obs
}  // namespace sidq

#pragma once

#include <string>
#include <vector>

#include "core/statusor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sidq {
namespace obs {

// Canonical JSON exporters. "Canonical" means: fixed key order, no
// whitespace variation, shortest-round-trip double formatting -- two equal
// snapshots serialize to byte-identical strings, which is what lets
// run_all.sh `cmp` the output of two seeded runs and what the golden-trace
// tests pin.
//
// Both exporters fail loudly instead of emitting invalid JSON: a histogram
// flagged invalid (NaN/Inf samples or bad bounds) or any non-finite value
// in the data yields Status::InvalidArgument.

// Serializes a merged snapshot:
//   {"counters":[{"name":...,"value":...}],
//    "gauges":[...],
//    "histograms":[{"name","bounds","bucket_counts","overflow","count",
//                   "sum","max","p50","p99"}]}
[[nodiscard]] StatusOr<std::string> MetricsToJson(const MetricsSnapshot& snap);

// Serializes canonical spans in Chrome trace_event format (load in
// chrome://tracing or Perfetto): {"traceEvents":[...]} with complete
// events (ph:"X"), ts/dur in microseconds, pid 1, tid = object id + 1
// (kProcessKey maps to tid 0), and args {key, depth, seq[, note]}.
[[nodiscard]] StatusOr<std::string> TraceToChromeJson(
    const std::vector<SpanRecord>& spans);

// Writes `content` to `path` atomically (tmp + fsync + rename + dir-fsync
// via the store Vfs): readers see the old file or the new one, never a
// truncated in-between. Fails with Status on any I/O error, including
// short writes and failing closes.
[[nodiscard]] Status WriteTextFile(const std::string& path,
                                   const std::string& content);

namespace internal_json {
// Shortest-round-trip formatting for a finite double; integer-valued
// doubles print without an exponent or trailing ".0" ambiguity concerns
// (e.g. 250 -> "250", 0.5 -> "0.5").
std::string FormatDouble(double v);
// JSON string escaping (quotes, backslash, control chars).
std::string EscapeString(const std::string& s);
}  // namespace internal_json

}  // namespace obs
}  // namespace sidq

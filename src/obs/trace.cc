#include "obs/trace.h"

#include <algorithm>

namespace sidq {
namespace obs {

Tracer::ActiveSpan Tracer::Begin(uint64_t key, std::string name,
                                 std::string category, const Clock* clock) {
  ActiveSpan span;
  span.key = key;
  span.name = std::move(name);
  span.category = std::move(category);
  span.clock = clock;
  span.start_ms = clock != nullptr ? clock->NowMs() : 0;
  span.open = true;
  MutexLock lock(mu_);
  KeyState& state = keys_[key];
  span.seq = kDirectSeqBase + state.next_seq++;
  span.depth = state.open_depth++;
  return span;
}

void Tracer::End(ActiveSpan&& span) {
  if (!span.open) return;
  SpanRecord rec;
  rec.key = span.key;
  rec.name = std::move(span.name);
  rec.category = std::move(span.category);
  rec.note = std::move(span.note);
  rec.depth = span.depth;
  rec.seq = span.seq;
  rec.start_ms = span.start_ms;
  rec.end_ms = span.clock != nullptr ? span.clock->NowMs() : span.start_ms;
  span.open = false;
  MutexLock lock(mu_);
  keys_[span.key].open_depth--;
  direct_records_.push_back(std::move(rec));
}

void Tracer::Instant(uint64_t key, std::string name, std::string category,
                     const Clock* clock, std::string note) {
  SpanRecord rec;
  rec.key = key;
  rec.name = std::move(name);
  rec.category = std::move(category);
  rec.note = std::move(note);
  rec.start_ms = clock != nullptr ? clock->NowMs() : 0;
  rec.end_ms = rec.start_ms;
  MutexLock lock(mu_);
  KeyState& state = keys_[key];
  rec.seq = kDirectSeqBase + state.next_seq++;
  rec.depth = state.open_depth;
  direct_records_.push_back(std::move(rec));
}

void Tracer::AppendRecords(std::vector<SpanRecord>&& records) {
  if (records.empty()) return;
  MutexLock lock(mu_);
  chunk_spans_ += records.size();
  chunks_.push_back(std::move(records));
}

std::vector<SpanRecord> Tracer::CanonicalSpans() const {
  std::vector<SpanRecord> spans;
  {
    MutexLock lock(mu_);
    spans.reserve(chunk_spans_ + direct_records_.size());
    for (const std::vector<SpanRecord>& chunk : chunks_) {
      spans.insert(spans.end(), chunk.begin(), chunk.end());
    }
    spans.insert(spans.end(), direct_records_.begin(),
                 direct_records_.end());
  }
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.seq < b.seq;
            });
  return spans;
}

size_t Tracer::num_spans() const {
  MutexLock lock(mu_);
  return chunk_spans_ + direct_records_.size();
}

}  // namespace obs
}  // namespace sidq

#include "obs/observer.h"

#include <string>
#include <utility>

namespace sidq {
namespace obs {

PipelineObserver::PipelineObserver(const ObsSinks& sinks,
                                   bool deterministic_timing)
    : sinks_(sinks),
      timing_stability_(deterministic_timing
                            ? MetricStability::kDeterministic
                            : MetricStability::kVolatile),
      retry_counter_(sinks.metrics != nullptr
                         ? sinks.metrics->counter("pipeline.retry.attempts")
                         : Counter()),
      degrade_counter_(sinks.metrics != nullptr
                           ? sinks.metrics->counter("pipeline.degrade.falls")
                           : Counter()) {
  frames_.reserve(8);
}

PipelineObserver::StageCache& PipelineObserver::CacheFor(
    const std::string& stage) {
  if (stage_hint_ < stage_order_.size() &&
      *stage_order_[stage_hint_].first == stage) {
    return *stage_order_[stage_hint_++].second;
  }
  auto it = stage_cache_.find(stage);
  if (it != stage_cache_.end()) return it->second;
  StageCache cache;
  if (sinks_.metrics != nullptr) {
    cache.runs = sinks_.metrics->counter("pipeline.stage.runs." + stage);
    cache.failures =
        sinks_.metrics->counter("pipeline.stage.failures." + stage);
    cache.duration = sinks_.metrics->histogram(
        "pipeline.stage.duration_ms." + stage,
        MetricsRegistry::DurationBucketsMs(), timing_stability_);
  }
  // Span name == stage name (the category column already says "stage"):
  // short names stay within SSO, so emitting a stage span allocates
  // nothing beyond the record slot.
  cache.stage_span_name = stage;
  it = stage_cache_.emplace(stage, std::move(cache)).first;
  stage_order_.emplace_back(&it->first, &it->second);
  stage_hint_ = stage_order_.size();
  return it->second;
}

void PipelineObserver::BeginObject(uint64_t key, const Clock* clock) {
  key_ = key;
  clock_ = clock;
  next_seq_ = 0;
  stage_hint_ = 0;
  frames_.clear();
  object_frame_ = Frame{};
  object_frame_.category = "object";
  object_frame_.seq = next_seq_++;
  object_frame_.start_ms = NowMs();
  object_open_ = true;
}

void PipelineObserver::EndObject(const char* note) {
  if (!object_open_) return;
  object_open_ = false;
  if (sinks_.tracer == nullptr) return;
  buffer_.emplace_back();
  SpanRecord& rec = buffer_.back();
  rec.key = key_;
  rec.name = "object";
  rec.category = "object";
  rec.note = note;
  rec.depth = 0;
  rec.seq = object_frame_.seq;
  rec.start_ms = object_frame_.start_ms;
  rec.end_ms = NowMs();
}

void PipelineObserver::Flush() {
  if (sinks_.tracer != nullptr && !buffer_.empty()) {
    sinks_.tracer->AppendRecords(std::move(buffer_));
  }
  buffer_.clear();
}

void PipelineObserver::PushFrame(const StageCache* cache,
                                 const char* category) {
  Frame frame;
  frame.cache = cache;
  frame.category = category;
  frame.seq = next_seq_++;
  frame.depth = static_cast<int>(frames_.size()) + (object_open_ ? 1 : 0);
  frame.start_ms = NowMs();
  frames_.push_back(frame);
}

void PipelineObserver::PopFrame(bool emit, const std::string& name,
                                const Status& status, int64_t end_ms) {
  if (frames_.empty()) return;
  const Frame& frame = frames_.back();
  if (emit && sinks_.tracer != nullptr) {
    buffer_.emplace_back();
    SpanRecord& rec = buffer_.back();
    rec.key = key_;
    rec.name = name;
    rec.category = frame.category;
    if (!status.ok()) rec.note = status.ToString();
    rec.depth = frame.depth;
    rec.seq = frame.seq;
    rec.start_ms = frame.start_ms;
    rec.end_ms = end_ms;
  }
  frames_.pop_back();
}

void PipelineObserver::EmitInstant(std::string name, const char* category,
                                   std::string note) {
  SpanRecord rec;
  rec.key = key_;
  rec.name = std::move(name);
  rec.category = category;
  rec.note = std::move(note);
  rec.depth = static_cast<int>(frames_.size()) + (object_open_ ? 1 : 0);
  rec.seq = next_seq_++;
  rec.start_ms = NowMs();
  rec.end_ms = rec.start_ms;
  buffer_.push_back(std::move(rec));
}

void PipelineObserver::OnStageBegin(const std::string& stage) {
  StageCache& cache = CacheFor(stage);
  cache.runs.Increment();
  PushFrame(&cache, "stage");
}

void PipelineObserver::OnStageEnd(const std::string& /*stage*/,
                                  const Status& status) {
  if (frames_.empty()) return;
  const Frame& frame = frames_.back();
  // The stage's cache rode along on the frame (resolved in OnStageBegin),
  // so the end path does no map lookup at all.
  const StageCache* cache = frame.cache;
  if (cache == nullptr) {
    frames_.pop_back();
    return;
  }
  const int64_t end_ms = NowMs();
  if (!status.ok()) cache->failures.Increment();
  cache->duration.Record(static_cast<double>(end_ms - frame.start_ms));
  PopFrame(/*emit=*/true, cache->stage_span_name, status, end_ms);
}

void PipelineObserver::OnAttemptBegin(const std::string& /*stage*/,
                                      int /*attempt*/) {
  // Attempt frames exist only to become spans; without a tracer both ends
  // of the pair no-op and the frame stack stays balanced.
  if (sinks_.tracer == nullptr) return;
  PushFrame(nullptr, "attempt");
}

void PipelineObserver::OnAttemptEnd(const std::string& stage, int attempt,
                                    const Status& status) {
  if (sinks_.tracer == nullptr) return;
  // A first attempt that succeeds is the overwhelmingly common case and is
  // fully described by its enclosing stage span; only retried or failing
  // attempts earn their own span (whose name is built here, on the rare
  // path).
  const bool emit = attempt > 0 || !status.ok();
  PopFrame(emit,
           emit ? stage + "#" + std::to_string(attempt) : std::string(),
           status, NowMs());
}

void PipelineObserver::OnRetry(const std::string& stage, int /*attempt*/,
                               int64_t backoff_ms) {
  retry_counter_.Increment();
  if (sinks_.tracer != nullptr) {
    EmitInstant(stage, "retry",
                "backoff_ms=" + std::to_string(backoff_ms));
  }
}

void PipelineObserver::OnDegrade(const std::string& ladder, int rung,
                                 const std::string& rung_name,
                                 const Status& /*cause*/) {
  degrade_counter_.Increment();
  if (sinks_.tracer != nullptr) {
    EmitInstant(ladder, "degrade",
                "rung=" + std::to_string(rung) + " (" + rung_name + ")");
  }
}

void FailPointRecorder::OnFailPointFired(const char* site, uint64_t key,
                                         FailPointAction action,
                                         const Clock* clock) {
  if (sinks_.metrics != nullptr) {
    sinks_.metrics->counter("chaos.failpoint.fired").Increment();
    sinks_.metrics->counter(std::string("chaos.failpoint.fired.") + site)
        .Increment();
  }
  if (sinks_.tracer != nullptr) {
    sinks_.tracer->Instant(key, site, "failpoint", clock,
                           FailPointActionName(action));
  }
}

}  // namespace obs
}  // namespace sidq

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace obs {

namespace internal_metrics {

size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

namespace {

// fetch_add for atomic<double> via CAS (GCC's native fetch_add on doubles
// is C++20 but keeping the loop portable costs nothing off the hot path's
// hot path -- one CAS per histogram sample).
void AtomicAdd(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < v && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

}  // namespace internal_metrics

void Histogram::Record(double v) const {
  using internal_metrics::kStripes;
  if (cell_ == nullptr) return;
  if (!std::isfinite(v)) {
    cell_->invalid.store(true, std::memory_order_relaxed);
    return;
  }
  internal_metrics::HistogramStripe& stripe =
      cell_->stripes[internal_metrics::ThreadStripe()];
  const auto it =
      std::lower_bound(cell_->bounds.begin(), cell_->bounds.end(), v);
  const size_t bucket =
      static_cast<size_t>(it - cell_->bounds.begin());  // bounds.size() = overflow
  stripe.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  if (v != 0.0) internal_metrics::AtomicAdd(stripe.sum, v);
  internal_metrics::AtomicMax(stripe.max, v);
}

Counter MetricsRegistry::counter(const std::string& name,
                                 MetricStability stability) {
  {
    ReaderMutexLock lock(mu_);
    const auto it = by_name_.find(name);
    // A kind mismatch falls through to the exclusive path so the
    // registration error gets recorded.
    if (it != by_name_.end() && it->second.kind == MetricKind::kCounter) {
      return Counter(&counters_[it->second.index]);
    }
  }
  WriterMutexLock lock(mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.kind != MetricKind::kCounter) {
      if (registration_error_.empty()) {
        registration_error_ = "metric '" + name + "' re-registered as counter";
      }
      return Counter();
    }
    return Counter(&counters_[it->second.index]);
  }
  counters_.emplace_back();
  internal_metrics::CounterCell& cell = counters_.back();
  cell.name = name;
  cell.stability = stability;
  by_name_[name] = Entry{MetricKind::kCounter, counters_.size() - 1};
  return Counter(&cell);
}

Gauge MetricsRegistry::gauge(const std::string& name,
                             MetricStability stability) {
  {
    ReaderMutexLock lock(mu_);
    const auto it = by_name_.find(name);
    if (it != by_name_.end() && it->second.kind == MetricKind::kGauge) {
      return Gauge(&gauges_[it->second.index]);
    }
  }
  WriterMutexLock lock(mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.kind != MetricKind::kGauge) {
      if (registration_error_.empty()) {
        registration_error_ = "metric '" + name + "' re-registered as gauge";
      }
      return Gauge();
    }
    return Gauge(&gauges_[it->second.index]);
  }
  gauges_.emplace_back();
  internal_metrics::GaugeCell& cell = gauges_.back();
  cell.name = name;
  cell.stability = stability;
  by_name_[name] = Entry{MetricKind::kGauge, gauges_.size() - 1};
  return Gauge(&cell);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds,
                                     MetricStability stability) {
  using internal_metrics::kStripes;
  {
    ReaderMutexLock lock(mu_);
    const auto it = by_name_.find(name);
    // Kind *and* bounds must match for the fast path; either mismatch
    // falls through so the exclusive path records the error (and, for a
    // bounds conflict, poisons the histogram).
    if (it != by_name_.end() && it->second.kind == MetricKind::kHistogram &&
        histograms_[it->second.index].bounds == bounds) {
      return Histogram(&histograms_[it->second.index]);
    }
  }
  WriterMutexLock lock(mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    internal_metrics::HistogramCell* existing =
        it->second.kind == MetricKind::kHistogram
            ? &histograms_[it->second.index]
            : nullptr;
    if (existing == nullptr || existing->bounds != bounds) {
      if (registration_error_.empty()) {
        registration_error_ =
            "metric '" + name + "' re-registered as histogram" +
            (existing != nullptr ? " with different bounds" : "");
      }
      if (existing != nullptr) {
        existing->invalid.store(true, std::memory_order_relaxed);
      }
      return Histogram();
    }
    return Histogram(existing);
  }

  bool bounds_ok = !bounds.empty();
  for (size_t i = 0; i < bounds.size() && bounds_ok; ++i) {
    if (!std::isfinite(bounds[i])) bounds_ok = false;
    if (i > 0 && bounds[i] <= bounds[i - 1]) bounds_ok = false;
  }

  histograms_.emplace_back();
  internal_metrics::HistogramCell& cell = histograms_.back();
  cell.name = name;
  cell.stability = stability;
  cell.bounds = std::move(bounds);
  for (size_t s = 0; s < kStripes; ++s) {
    // One extra slot for the overflow bucket; value-initialized to zero.
    cell.stripes[s].counts =
        std::make_unique<std::atomic<int64_t>[]>(cell.bounds.size() + 1);
  }
  if (!bounds_ok) cell.invalid.store(true, std::memory_order_relaxed);
  by_name_[name] = Entry{MetricKind::kHistogram, histograms_.size() - 1};
  return Histogram(&cell);
}

std::vector<double> MetricsRegistry::DurationBucketsMs() {
  return {1.0,   2.0,   5.0,    10.0,   25.0,   50.0,  100.0,
          250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
}

namespace {

// Nearest-rank percentile against bucket upper bounds; a rank landing in
// the overflow bucket reports the recorded max (keeps exports finite).
double BucketPercentile(const HistogramValue& h, double q) {
  if (h.count <= 0) return 0.0;
  const int64_t target = static_cast<int64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(h.count))));
  int64_t cum = 0;
  for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
    cum += h.bucket_counts[i];
    if (cum >= target) return h.bounds[i];
  }
  return h.max;
}

}  // namespace

MetricsSnapshot MetricsRegistry::Snapshot(SnapshotOptions options) const {
  using internal_metrics::kStripes;
  MetricsSnapshot snap;
  {
    ReaderMutexLock lock(mu_);

    for (const internal_metrics::CounterCell& cell : counters_) {
      if (cell.stability == MetricStability::kVolatile &&
          !options.include_volatile) {
        continue;
      }
      CounterValue v;
      v.name = cell.name;
      v.stability = cell.stability;
      for (size_t s = 0; s < kStripes; ++s) {
        v.value += cell.stripes[s].value.load(std::memory_order_relaxed);
      }
      snap.counters.push_back(std::move(v));
    }

    for (const internal_metrics::GaugeCell& cell : gauges_) {
      if (cell.stability == MetricStability::kVolatile &&
          !options.include_volatile) {
        continue;
      }
      snap.gauges.push_back(GaugeValue{
          cell.name, cell.value.load(std::memory_order_relaxed),
          cell.stability});
    }

    for (const internal_metrics::HistogramCell& cell : histograms_) {
      if (cell.stability == MetricStability::kVolatile &&
          !options.include_volatile) {
        continue;
      }
      HistogramValue v;
      v.name = cell.name;
      v.stability = cell.stability;
      v.bounds = cell.bounds;
      v.invalid = cell.invalid.load(std::memory_order_relaxed);
      v.bucket_counts.assign(cell.bounds.size(), 0);
      double max = -std::numeric_limits<double>::infinity();
      for (size_t s = 0; s < kStripes; ++s) {
        const internal_metrics::HistogramStripe& stripe = cell.stripes[s];
        for (size_t b = 0; b < cell.bounds.size(); ++b) {
          v.bucket_counts[b] +=
              stripe.counts[b].load(std::memory_order_relaxed);
        }
        v.overflow +=
            stripe.counts[cell.bounds.size()].load(std::memory_order_relaxed);
        v.sum += stripe.sum.load(std::memory_order_relaxed);
        max = std::max(max, stripe.max.load(std::memory_order_relaxed));
      }
      for (int64_t c : v.bucket_counts) v.count += c;
      v.count += v.overflow;
      v.max = v.count > 0 ? max : 0.0;
      v.p50 = BucketPercentile(v, 0.50);
      v.p99 = BucketPercentile(v, 0.99);
      snap.histograms.push_back(std::move(v));
    }
  }  // reader lock released: sorting needs no registry access

  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::string MetricsRegistry::registration_error() const {
  ReaderMutexLock lock(mu_);
  return registration_error_;
}

}  // namespace obs
}  // namespace sidq

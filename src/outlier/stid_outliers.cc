#include "outlier/stid_outliers.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace sidq {
namespace outlier {

StDbscan::Result StDbscan::Cluster(
    const std::vector<StRecord>& records) const {
  const size_t n = records.size();
  Result result;
  result.labels.assign(n, -2);  // -2 = unvisited, -1 = noise
  const double eps_sq = options_.eps_space_m * options_.eps_space_m;

  auto neighbors_of = [&](size_t i) {
    std::vector<size_t> out;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (std::abs(records[j].t - records[i].t) > options_.eps_time_ms) {
        continue;
      }
      if (geometry::DistanceSq(records[j].loc, records[i].loc) > eps_sq) {
        continue;
      }
      out.push_back(j);
    }
    return out;
  };

  int cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (result.labels[i] != -2) continue;
    std::vector<size_t> seeds = neighbors_of(i);
    if (seeds.size() + 1 < options_.min_pts) {
      result.labels[i] = -1;
      continue;
    }
    // Average value of the forming cluster, used for the delta_value test.
    double cluster_mean = records[i].value;
    size_t cluster_size = 1;
    result.labels[i] = cluster;
    std::deque<size_t> queue(seeds.begin(), seeds.end());
    while (!queue.empty()) {
      const size_t j = queue.front();
      queue.pop_front();
      if (result.labels[j] == -1) {
        // Previously noise: border point, absorb if thematically close.
        const double mean = cluster_mean / static_cast<double>(cluster_size);
        if (std::abs(records[j].value - mean) <= options_.delta_value) {
          result.labels[j] = cluster;
        }
        continue;
      }
      if (result.labels[j] != -2) continue;
      const double mean = cluster_mean / static_cast<double>(cluster_size);
      if (std::abs(records[j].value - mean) > options_.delta_value) {
        // Thematically incompatible with this cluster; leave for another.
        result.labels[j] = -1;
        continue;
      }
      result.labels[j] = cluster;
      cluster_mean += records[j].value;
      ++cluster_size;
      std::vector<size_t> nb = neighbors_of(j);
      if (nb.size() + 1 >= options_.min_pts) {
        for (size_t q : nb) {
          if (result.labels[q] == -2 || result.labels[q] == -1) {
            queue.push_back(q);
          }
        }
      }
    }
    ++cluster;
  }
  result.num_clusters = cluster;
  for (int& l : result.labels) {
    if (l == -2) l = -1;
  }
  return result;
}

std::vector<bool> StNeighborhoodDetector::Detect(
    const std::vector<StRecord>& records) const {
  const size_t n = records.size();
  std::vector<bool> flags(n, false);
  const double r_sq = options_.radius_m * options_.radius_m;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> values;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (std::abs(records[j].t - records[i].t) > options_.window_ms) {
        continue;
      }
      if (geometry::DistanceSq(records[j].loc, records[i].loc) > r_sq) {
        continue;
      }
      values.push_back(records[j].value);
    }
    if (values.size() < options_.min_neighbors) continue;
    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= static_cast<double>(values.size());
    const double sd = std::max(1e-6, std::sqrt(var));
    flags[i] = std::abs(records[i].value - mean) / sd > options_.z_threshold;
  }
  return flags;
}

}  // namespace outlier
}  // namespace sidq

#include "outlier/trajectory_outliers.h"

#include <algorithm>
#include <cmath>

#include "kernels/distance.h"
#include "kernels/soa.h"

namespace sidq {
namespace outlier {

namespace {

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  return v[v.size() / 2];
}

// Per-segment speeds (n-1 entries): one vectorized distance sweep over the
// columnar view instead of 2(n-2) scalar Distance calls.
std::vector<double> SegmentSpeeds(const Trajectory& input) {
  const size_t n = input.size();
  std::vector<double> speeds(n - 1);
  const kernels::TrajectoryView v = kernels::TrajectoryView::Of(input);
  kernels::ConsecutiveDist(v.x(), v.y(), n, speeds.data());
  for (size_t i = 0; i + 1 < n; ++i) {
    const Timestamp dt = v.t()[i + 1] - v.t()[i];
    speeds[i] = dt <= 0 ? 0.0 : speeds[i] / TimestampToSeconds(dt);
  }
  return speeds;
}

}  // namespace

StatusOr<std::vector<bool>> SpeedConstraintDetector::Detect(
    const Trajectory& input) const {
  if (!input.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  const size_t n = input.size();
  std::vector<bool> flags(n, false);
  if (n < 2) return flags;
  const double vmax = options_.max_speed_mps;
  const std::vector<double> speeds = SegmentSpeeds(input);
  for (size_t i = 0; i < n; ++i) {
    const bool fast_in = i > 0 && speeds[i - 1] > vmax;
    const bool fast_out = i + 1 < n && speeds[i] > vmax;
    if (i == 0) {
      flags[i] = fast_out;
    } else if (i + 1 == n) {
      flags[i] = fast_in;
    } else {
      flags[i] = fast_in && fast_out;
    }
  }
  return flags;
}

StatusOr<std::vector<bool>> StatisticalDetector::Detect(
    const Trajectory& input) const {
  if (!input.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  const size_t n = input.size();
  std::vector<bool> flags(n, false);
  if (n < 3) return flags;
  const kernels::TrajectoryView view = kernels::TrajectoryView::Of(input);
  // Deviation of each point from its window median position. The window
  // coordinate copies are contiguous column slices of the SoA view.
  std::vector<double> deviations(n, 0.0);
  std::vector<double> xs, ys;
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= options_.half_window ? i - options_.half_window : 0;
    const size_t hi = std::min(n - 1, i + options_.half_window);
    // The window includes the point itself: the median is robust to it,
    // and excluding it would bias the window centre off the path.
    xs.assign(view.x() + lo, view.x() + hi + 1);
    ys.assign(view.y() + lo, view.y() + hi + 1);
    const geometry::Point med(Median(xs), Median(ys));
    deviations[i] = geometry::Distance(input[i].p, med);
  }
  // Robust scale: 1.4826 * MAD of the deviations, floored at the typical
  // step length so that a deviation of one inter-sample hop (which the
  // window median can introduce near a genuine outlier) never triggers.
  std::vector<double> dev_copy = deviations;
  const double med_dev = Median(dev_copy);
  std::vector<double> abs_dev;
  abs_dev.reserve(n);
  for (double d : deviations) abs_dev.push_back(std::abs(d - med_dev));
  const double mad = Median(abs_dev);
  std::vector<double> steps(n - 1);
  kernels::ConsecutiveDist(view.x(), view.y(), n, steps.data());
  const double median_step = Median(std::move(steps));
  const double scale =
      std::max({options_.min_scale_m, 1.4826 * mad, median_step});
  for (size_t i = 0; i < n; ++i) {
    flags[i] = (deviations[i] - med_dev) / scale > options_.z_threshold;
  }
  return flags;
}

Status PredictiveDetector::Run(const Trajectory& input,
                               std::vector<bool>* flags,
                               Trajectory* repaired) const {
  if (!input.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  const size_t n = input.size();
  flags->assign(n, false);
  if (repaired != nullptr) {
    *repaired = Trajectory(input.object_id());
  }
  // Working copy holding repaired positions for sequential prediction.
  std::vector<geometry::Point> pos;
  pos.reserve(n);
  double scale = options_.initial_scale_m;
  for (size_t i = 0; i < n; ++i) {
    geometry::Point predicted = input[i].p;
    bool have_prediction = false;
    if (i >= 2) {
      const double dt01 =
          TimestampToSeconds(input[i - 1].t - input[i - 2].t);
      const double dt12 = TimestampToSeconds(input[i].t - input[i - 1].t);
      if (dt01 > 0.0 && dt12 > 0.0) {
        const geometry::Point vel = (pos[i - 1] - pos[i - 2]) / dt01;
        predicted = pos[i - 1] + vel * dt12;
        have_prediction = true;
      }
    }
    bool is_outlier = false;
    if (have_prediction) {
      const double innovation = geometry::Distance(input[i].p, predicted);
      if (innovation > options_.threshold_factor * scale) {
        is_outlier = true;
      } else {
        scale = (1.0 - options_.scale_alpha) * scale +
                options_.scale_alpha * std::max(innovation, 0.5);
      }
    }
    (*flags)[i] = is_outlier;
    pos.push_back(is_outlier ? predicted : input[i].p);
    if (repaired != nullptr) {
      TrajectoryPoint pt = input[i];
      pt.p = pos.back();
      repaired->AppendUnordered(pt);
    }
  }
  return Status::OK();
}

StatusOr<std::vector<bool>> PredictiveDetector::Detect(
    const Trajectory& input) const {
  std::vector<bool> flags;
  SIDQ_RETURN_IF_ERROR(Run(input, &flags, nullptr));
  return flags;
}

StatusOr<Trajectory> PredictiveDetector::Repair(
    const Trajectory& input) const {
  std::vector<bool> flags;
  Trajectory repaired;
  SIDQ_RETURN_IF_ERROR(Run(input, &flags, &repaired));
  return repaired;
}

StatusOr<Trajectory> RemoveFlagged(const Trajectory& input,
                                   const std::vector<bool>& flags) {
  if (flags.size() != input.size()) {
    return Status::InvalidArgument("flag count mismatch");
  }
  Trajectory out(input.object_id());
  out.Reserve(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    if (!flags[i]) out.AppendUnordered(input[i]);
  }
  return out;
}

StatusOr<Trajectory> RepairFlagged(const Trajectory& input,
                                   const std::vector<bool>& flags) {
  if (flags.size() != input.size()) {
    return Status::InvalidArgument("flag count mismatch");
  }
  const size_t n = input.size();
  Trajectory out(input.object_id());
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TrajectoryPoint pt = input[i];
    if (flags[i]) {
      // Nearest unflagged neighbours on both sides.
      size_t prev = i;
      while (prev > 0 && flags[prev]) --prev;
      size_t next = i;
      while (next + 1 < n && flags[next]) ++next;
      const bool prev_ok = !flags[prev];
      const bool next_ok = !flags[next];
      if (prev_ok && next_ok && input[next].t > input[prev].t) {
        const double f = static_cast<double>(pt.t - input[prev].t) /
                         static_cast<double>(input[next].t - input[prev].t);
        pt.p = geometry::Lerp(input[prev].p, input[next].p, f);
      } else if (prev_ok) {
        pt.p = input[prev].p;
      } else if (next_ok) {
        pt.p = input[next].p;
      }
    }
    out.AppendUnordered(pt);
  }
  return out;
}

DetectionQuality EvaluateDetection(const std::vector<bool>& predicted,
                                   const std::vector<bool>& truth) {
  size_t tp = 0, fp = 0, fn = 0;
  const size_t n = std::min(predicted.size(), truth.size());
  for (size_t i = 0; i < n; ++i) {
    if (predicted[i] && truth[i]) ++tp;
    if (predicted[i] && !truth[i]) ++fp;
    if (!predicted[i] && truth[i]) ++fn;
  }
  DetectionQuality q;
  q.precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  q.recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  q.f1 = q.precision + q.recall > 0.0
             ? 2.0 * q.precision * q.recall / (q.precision + q.recall)
             : 0.0;
  return q;
}

StatusOr<Trajectory> SpeedOutlierRepairStage::Apply(
    const Trajectory& input) const {
  SIDQ_ASSIGN_OR_RETURN(std::vector<bool> flags, detector_.Detect(input));
  return RepairFlagged(input, flags);
}

}  // namespace outlier
}  // namespace sidq

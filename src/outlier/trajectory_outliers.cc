#include "outlier/trajectory_outliers.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/arena.h"
#include "kernels/distance.h"
#include "kernels/soa.h"

namespace sidq {
namespace outlier {

namespace {

// Exact order statistic of v[0..n): partially sorts in place, so callers
// pass scratch copies. Same selection as the former by-value overload.
double MedianInPlace(double* v, size_t n) {
  if (n == 0) return 0.0;
  std::nth_element(v, v + n / 2, v + n);
  return v[n / 2];
}

// Per-segment speeds (n-1 entries) in arena scratch: one vectorized
// distance sweep over the columnar view instead of 2(n-2) scalar Distance
// calls, and no heap round trip per trajectory.
double* SegmentSpeeds(const Trajectory& input, ArenaScope* scope) {
  const size_t n = input.size();
  double* speeds = scope->AllocArray<double>(n - 1);
  const kernels::TrajectoryView v = kernels::TrajectoryView::Of(input);
  kernels::ConsecutiveDist(v.x(), v.y(), n, speeds);
  for (size_t i = 0; i + 1 < n; ++i) {
    const Timestamp dt = v.t()[i + 1] - v.t()[i];
    speeds[i] = dt <= 0 ? 0.0 : speeds[i] / TimestampToSeconds(dt);
  }
  return speeds;
}

}  // namespace

StatusOr<std::vector<bool>> SpeedConstraintDetector::Detect(
    const Trajectory& input) const {
  if (!input.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  const size_t n = input.size();
  std::vector<bool> flags(n, false);
  if (n < 2) return flags;
  const double vmax = options_.max_speed_mps;
  ArenaScope scope(ScratchArena());
  const double* speeds = SegmentSpeeds(input, &scope);
  for (size_t i = 0; i < n; ++i) {
    const bool fast_in = i > 0 && speeds[i - 1] > vmax;
    const bool fast_out = i + 1 < n && speeds[i] > vmax;
    if (i == 0) {
      flags[i] = fast_out;
    } else if (i + 1 == n) {
      flags[i] = fast_in;
    } else {
      flags[i] = fast_in && fast_out;
    }
  }
  return flags;
}

StatusOr<std::vector<bool>> StatisticalDetector::Detect(
    const Trajectory& input) const {
  if (!input.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  const size_t n = input.size();
  std::vector<bool> flags(n, false);
  if (n < 3) return flags;
  const kernels::TrajectoryView view = kernels::TrajectoryView::Of(input);
  // All statistics scratch (window slices, deviation arrays, step lengths)
  // lives in the arena for the duration of this call.
  ArenaScope scope(ScratchArena());
  const size_t wcap = 2 * options_.half_window + 1;
  double* xs = scope.AllocArray<double>(wcap);
  double* ys = scope.AllocArray<double>(wcap);
  // Deviation of each point from its window median position. The window
  // coordinate copies are contiguous column slices of the SoA view.
  double* deviations = scope.AllocArray<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= options_.half_window ? i - options_.half_window : 0;
    const size_t hi = std::min(n - 1, i + options_.half_window);
    const size_t w = hi - lo + 1;
    // The window includes the point itself: the median is robust to it,
    // and excluding it would bias the window centre off the path.
    std::memcpy(xs, view.x() + lo, w * sizeof(double));
    std::memcpy(ys, view.y() + lo, w * sizeof(double));
    const geometry::Point med(MedianInPlace(xs, w), MedianInPlace(ys, w));
    deviations[i] = geometry::Distance(input[i].p, med);
  }
  // Robust scale: 1.4826 * MAD of the deviations, floored at the typical
  // step length so that a deviation of one inter-sample hop (which the
  // window median can introduce near a genuine outlier) never triggers.
  double* dev_copy = scope.AllocArray<double>(n);
  std::memcpy(dev_copy, deviations, n * sizeof(double));
  const double med_dev = MedianInPlace(dev_copy, n);
  double* abs_dev = scope.AllocArray<double>(n);
  for (size_t i = 0; i < n; ++i) abs_dev[i] = std::abs(deviations[i] - med_dev);
  const double mad = MedianInPlace(abs_dev, n);
  double* steps = scope.AllocArray<double>(n - 1);
  kernels::ConsecutiveDist(view.x(), view.y(), n, steps);
  const double median_step = MedianInPlace(steps, n - 1);
  const double scale =
      std::max({options_.min_scale_m, 1.4826 * mad, median_step});
  for (size_t i = 0; i < n; ++i) {
    flags[i] = (deviations[i] - med_dev) / scale > options_.z_threshold;
  }
  return flags;
}

Status PredictiveDetector::Run(const Trajectory& input,
                               std::vector<bool>* flags,
                               Trajectory* repaired) const {
  if (!input.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  const size_t n = input.size();
  flags->assign(n, false);
  if (repaired != nullptr) {
    *repaired = Trajectory(input.object_id());
  }
  // Working copy holding repaired positions for sequential prediction.
  std::vector<geometry::Point> pos;
  pos.reserve(n);
  double scale = options_.initial_scale_m;
  for (size_t i = 0; i < n; ++i) {
    geometry::Point predicted = input[i].p;
    bool have_prediction = false;
    if (i >= 2) {
      const double dt01 =
          TimestampToSeconds(input[i - 1].t - input[i - 2].t);
      const double dt12 = TimestampToSeconds(input[i].t - input[i - 1].t);
      if (dt01 > 0.0 && dt12 > 0.0) {
        const geometry::Point vel = (pos[i - 1] - pos[i - 2]) / dt01;
        predicted = pos[i - 1] + vel * dt12;
        have_prediction = true;
      }
    }
    bool is_outlier = false;
    if (have_prediction) {
      const double innovation = geometry::Distance(input[i].p, predicted);
      if (innovation > options_.threshold_factor * scale) {
        is_outlier = true;
      } else {
        scale = (1.0 - options_.scale_alpha) * scale +
                options_.scale_alpha * std::max(innovation, 0.5);
      }
    }
    (*flags)[i] = is_outlier;
    pos.push_back(is_outlier ? predicted : input[i].p);
    if (repaired != nullptr) {
      TrajectoryPoint pt = input[i];
      pt.p = pos.back();
      repaired->AppendUnordered(pt);
    }
  }
  return Status::OK();
}

StatusOr<std::vector<bool>> PredictiveDetector::Detect(
    const Trajectory& input) const {
  std::vector<bool> flags;
  SIDQ_RETURN_IF_ERROR(Run(input, &flags, nullptr));
  return flags;
}

StatusOr<Trajectory> PredictiveDetector::Repair(
    const Trajectory& input) const {
  std::vector<bool> flags;
  Trajectory repaired;
  SIDQ_RETURN_IF_ERROR(Run(input, &flags, &repaired));
  return repaired;
}

StatusOr<Trajectory> RemoveFlagged(const Trajectory& input,
                                   const std::vector<bool>& flags) {
  if (flags.size() != input.size()) {
    return Status::InvalidArgument("flag count mismatch");
  }
  Trajectory out(input.object_id());
  out.Reserve(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    if (!flags[i]) out.AppendUnordered(input[i]);
  }
  return out;
}

StatusOr<Trajectory> RepairFlagged(const Trajectory& input,
                                   const std::vector<bool>& flags) {
  if (flags.size() != input.size()) {
    return Status::InvalidArgument("flag count mismatch");
  }
  const size_t n = input.size();
  Trajectory out(input.object_id());
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TrajectoryPoint pt = input[i];
    if (flags[i]) {
      // Nearest unflagged neighbours on both sides.
      size_t prev = i;
      while (prev > 0 && flags[prev]) --prev;
      size_t next = i;
      while (next + 1 < n && flags[next]) ++next;
      const bool prev_ok = !flags[prev];
      const bool next_ok = !flags[next];
      if (prev_ok && next_ok && input[next].t > input[prev].t) {
        const double f = static_cast<double>(pt.t - input[prev].t) /
                         static_cast<double>(input[next].t - input[prev].t);
        pt.p = geometry::Lerp(input[prev].p, input[next].p, f);
      } else if (prev_ok) {
        pt.p = input[prev].p;
      } else if (next_ok) {
        pt.p = input[next].p;
      }
    }
    out.AppendUnordered(pt);
  }
  return out;
}

DetectionQuality EvaluateDetection(const std::vector<bool>& predicted,
                                   const std::vector<bool>& truth) {
  size_t tp = 0, fp = 0, fn = 0;
  const size_t n = std::min(predicted.size(), truth.size());
  for (size_t i = 0; i < n; ++i) {
    if (predicted[i] && truth[i]) ++tp;
    if (predicted[i] && !truth[i]) ++fp;
    if (!predicted[i] && truth[i]) ++fn;
  }
  DetectionQuality q;
  q.precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  q.recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  q.f1 = q.precision + q.recall > 0.0
             ? 2.0 * q.precision * q.recall / (q.precision + q.recall)
             : 0.0;
  return q;
}

StatusOr<Trajectory> SpeedOutlierRepairStage::Apply(
    const Trajectory& input) const {
  SIDQ_ASSIGN_OR_RETURN(std::vector<bool> flags, detector_.Detect(input));
  return RepairFlagged(input, flags);
}

}  // namespace outlier
}  // namespace sidq

#pragma once

#include <vector>

#include "core/statusor.h"
#include "core/stid.h"
#include "core/types.h"

namespace sidq {
namespace outlier {

// ST-DBSCAN (Birant & Kut, DKE 2007): density-based clustering of
// spatiotemporal records with separate spatial (eps1), temporal (eps2) and
// thematic (delta_value) neighbourhood radii. Records in no cluster are
// spatiotemporal outliers (label -1).
class StDbscan {
 public:
  struct Options {
    double eps_space_m = 300.0;
    Timestamp eps_time_ms = 120'000;
    double delta_value = 5.0;  // max thematic difference within a cluster
    size_t min_pts = 5;
  };

  explicit StDbscan(Options options) : options_(options) {}
  StDbscan() : StDbscan(Options{}) {}

  struct Result {
    std::vector<int> labels;  // cluster id per record; -1 = outlier
    int num_clusters = 0;
  };

  // Clusters `records` (any order). O(n^2) neighbourhood computation; for
  // the sensor-scale data of this library that is the right trade-off.
  Result Cluster(const std::vector<StRecord>& records) const;

 private:
  Options options_;
};

// Spatiotemporal-neighbourhood thematic outlier detection: a record is an
// outlier when its value deviates from the mean of its ST-neighbours by
// more than `z_threshold` robust standard deviations (Aggarwal's
// "contextual attributes = space+time, thematic attribute = value" view).
class StNeighborhoodDetector {
 public:
  struct Options {
    double radius_m = 400.0;
    Timestamp window_ms = 120'000;
    double z_threshold = 3.0;
    size_t min_neighbors = 3;
  };

  explicit StNeighborhoodDetector(Options options) : options_(options) {}
  StNeighborhoodDetector() : StNeighborhoodDetector(Options{}) {}

  // One flag per record, aligned with `records`.
  std::vector<bool> Detect(const std::vector<StRecord>& records) const;

 private:
  Options options_;
};

}  // namespace outlier
}  // namespace sidq

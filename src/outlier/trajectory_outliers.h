#pragma once

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/statusor.h"
#include "core/trajectory.h"

namespace sidq {
namespace outlier {

// Trajectory-point outlier detection (Section 2.2.3). Each detector
// returns one flag per input point; RemoveFlagged / RepairFlagged turn
// flags into cleaned trajectories.

// Constraint-based: a point is an outlier when the speeds of both adjacent
// segments exceed a mobility bound -- the object would have had to jump
// away and back (Yan et al. / Zheng-style mobility constraints).
class SpeedConstraintDetector {
 public:
  struct Options {
    double max_speed_mps = 45.0;
  };

  explicit SpeedConstraintDetector(Options options) : options_(options) {}
  SpeedConstraintDetector() : SpeedConstraintDetector(Options{}) {}

  [[nodiscard]] StatusOr<std::vector<bool>> Detect(const Trajectory& input) const;

 private:
  Options options_;
};

// Statistics-based: robust z-score of each point's deviation from the
// median of a sliding window; outliers exceed `z_threshold` in units of
// 1.4826 * MAD (Patil et al.-style statistical profiling).
class StatisticalDetector {
 public:
  struct Options {
    size_t half_window = 5;
    double z_threshold = 3.5;
    // Floor for the robust scale estimate (metres); keeps near-noiseless
    // data from flagging numeric dust as outliers.
    double min_scale_m = 1.0;
  };

  explicit StatisticalDetector(Options options) : options_(options) {}
  StatisticalDetector() : StatisticalDetector(Options{}) {}

  [[nodiscard]] StatusOr<std::vector<bool>> Detect(const Trajectory& input) const;

 private:
  Options options_;
};

// Prediction-based: a constant-velocity predictor forecasts each point from
// its predecessors; points whose innovation exceeds `threshold_factor`
// times the running robust innovation scale are outliers (Zhang et al.,
// SIGMOD 2016 family). Repair() replaces outliers with the prediction.
class PredictiveDetector {
 public:
  struct Options {
    double threshold_factor = 5.0;
    // Initial innovation scale (m); adapts via exponential averaging.
    double initial_scale_m = 10.0;
    double scale_alpha = 0.05;
  };

  explicit PredictiveDetector(Options options) : options_(options) {}
  PredictiveDetector() : PredictiveDetector(Options{}) {}

  [[nodiscard]] StatusOr<std::vector<bool>> Detect(const Trajectory& input) const;
  // Detect + replace each outlier with its prediction (sequential repair:
  // later predictions use repaired values).
  [[nodiscard]] StatusOr<Trajectory> Repair(const Trajectory& input) const;

 private:
  [[nodiscard]] Status Run(const Trajectory& input, std::vector<bool>* flags,
             Trajectory* repaired) const;

  Options options_;
};

// Drops flagged points. Fails when flag count mismatches.
[[nodiscard]] StatusOr<Trajectory> RemoveFlagged(const Trajectory& input,
                                   const std::vector<bool>& flags);
// Replaces flagged points by linear interpolation between the nearest
// unflagged neighbours (endpoints snap to nearest unflagged point).
[[nodiscard]] StatusOr<Trajectory> RepairFlagged(const Trajectory& input,
                                   const std::vector<bool>& flags);

// Precision/recall/F1 of predicted flags against truth labels.
struct DetectionQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
DetectionQuality EvaluateDetection(const std::vector<bool>& predicted,
                                   const std::vector<bool>& truth);

// Pipeline stage: detect with a SpeedConstraintDetector and repair.
class SpeedOutlierRepairStage : public TrajectoryStage {
 public:
  explicit SpeedOutlierRepairStage(SpeedConstraintDetector::Options options)
      : detector_(options) {}
  SpeedOutlierRepairStage() : detector_() {}
  std::string name() const override { return "speed_outlier_repair"; }
  [[nodiscard]] StatusOr<Trajectory> Apply(const Trajectory& input) const override;

 private:
  SpeedConstraintDetector detector_;
};

}  // namespace outlier
}  // namespace sidq

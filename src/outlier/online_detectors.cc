#include "outlier/online_detectors.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace outlier {

namespace {

double MedianOf(std::vector<double> values) {
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    m = (m + *std::max_element(values.begin(), values.begin() + mid)) / 2.0;
  }
  return m;
}

}  // namespace

bool RollingRobustZ::Observe(double value) {
  bool outlier = false;
  if (buffer_.size() >= options_.min_samples) {
    const double median = MedianOf(buffer_);
    std::vector<double> deviations;
    deviations.reserve(buffer_.size());
    for (double v : buffer_) deviations.push_back(std::abs(v - median));
    const double mad = MedianOf(std::move(deviations));
    const double scale = std::max(1.4826 * mad,
                                  options_.min_mad_fraction *
                                      std::max(1.0, std::abs(median)));
    outlier = std::abs(value - median) > options_.z_threshold * scale;
  }
  if (!outlier) {
    if (buffer_.size() < options_.window) {
      buffer_.push_back(value);
    } else {
      buffer_[next_] = value;
      next_ = (next_ + 1) % options_.window;
    }
  }
  return outlier;
}

bool PageHinkley::Observe(double value) {
  ++n_;
  mean_ += (value - mean_) / static_cast<double>(n_);
  cum_up_ += value - mean_ - options_.delta;
  min_up_ = std::min(min_up_, cum_up_);
  cum_down_ += value - mean_ + options_.delta;
  max_down_ = std::max(max_down_, cum_down_);
  if (n_ < options_.min_samples) return false;
  const bool drift = (cum_up_ - min_up_ > options_.lambda) ||
                     (max_down_ - cum_down_ > options_.lambda);
  if (drift) {
    n_ = 0;
    mean_ = 0.0;
    cum_up_ = min_up_ = 0.0;
    cum_down_ = max_down_ = 0.0;
  }
  return drift;
}

}  // namespace outlier
}  // namespace sidq

#pragma once

#include <cstddef>
#include <vector>

namespace sidq {
namespace outlier {

// Online robust-z outlier test over a trailing window of inliers: a value
// is an outlier when |value - median| / (1.4826 * MAD) of the trailing
// window exceeds `z_threshold`. Flagged values do NOT enter the window, so
// a burst of faults cannot drag the baseline towards itself -- the
// streaming analogue of the robust (median/MAD) detectors in
// stid_outliers. Deterministic: state is a pure function of the observed
// value sequence.
class RollingRobustZ {
 public:
  struct Options {
    size_t window = 32;       // trailing inliers kept as the baseline
    size_t min_samples = 8;   // below this, everything is an inlier
    double z_threshold = 3.5;
    // MAD floor, as a fraction of |median|, so a near-constant baseline
    // does not make epsilon deviations look infinitely significant.
    double min_mad_fraction = 1e-3;
  };

  explicit RollingRobustZ(Options options) : options_(options) {}
  RollingRobustZ() : RollingRobustZ(Options{}) {}

  // Tests `value` against the current baseline, then absorbs it into the
  // baseline iff it was an inlier. Returns true when `value` is an outlier.
  bool Observe(double value);

  [[nodiscard]] size_t num_samples() const { return buffer_.size(); }

 private:
  Options options_;
  std::vector<double> buffer_;  // ring of trailing inliers
  size_t next_ = 0;             // ring write cursor
};

// Page-Hinkley test for drift (mean shift) in a value stream: maintains the
// cumulative deviation of observations from their running mean and signals
// when it escapes a `lambda`-wide band -- the classic sequential
// changepoint detector for sensor calibration drift. After signalling, the
// statistic resets and the detector starts a fresh epoch.
class PageHinkley {
 public:
  struct Options {
    double delta = 0.5;    // magnitude tolerance: drifts smaller than this
                           // per observation are absorbed as noise
    double lambda = 12.0;  // detection threshold on the cumulative statistic
    size_t min_samples = 10;
  };

  explicit PageHinkley(Options options) : options_(options) {}
  PageHinkley() : PageHinkley(Options{}) {}

  // Feeds one observation; returns true when drift is detected (and the
  // detector resets for the next epoch).
  bool Observe(double value);

 private:
  Options options_;
  size_t n_ = 0;
  double mean_ = 0.0;
  double cum_up_ = 0.0;    // detects upward mean shift
  double min_up_ = 0.0;
  double cum_down_ = 0.0;  // detects downward mean shift
  double max_down_ = 0.0;
};

}  // namespace outlier
}  // namespace sidq

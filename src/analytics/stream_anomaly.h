#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/trajectory.h"

namespace sidq {
namespace analytics {

// Streaming trajectory anomaly detection (Section 2.3.2; Chen et al.,
// Mobiquitous 2011 / Bu et al., KDD 2009 family): normal traffic induces a
// grid-cell transition model; a trajectory whose transitions have little
// support is anomalous. Scoring is incremental -- one point at a time --
// so the detector runs on live streams.
class StreamAnomalyDetector {
 public:
  struct Options {
    double cell_m = 250.0;
    // Transitions observed fewer than this many times count as unsupported.
    size_t min_support = 2;
    // A trajectory is anomalous when its unsupported-transition fraction
    // exceeds this threshold.
    double anomaly_threshold = 0.45;
  };

  explicit StreamAnomalyDetector(Options options) : options_(options) {}
  StreamAnomalyDetector() : StreamAnomalyDetector(Options{}) {}

  // Learns the transition support model from normal trajectories.
  void Train(const std::vector<Trajectory>& normal_corpus);

  // Fraction of a trajectory's cell transitions with support below
  // min_support (0 = fully normal, 1 = fully unsupported).
  double Score(const Trajectory& trajectory) const;
  bool IsAnomalous(const Trajectory& trajectory) const {
    return Score(trajectory) > options_.anomaly_threshold;
  }

  // --- incremental (streaming) API ---
  struct StreamState {
    uint64_t last_cell = 0;
    bool has_last = false;
    size_t transitions = 0;
    size_t unsupported = 0;

    double Score() const {
      return transitions == 0 ? 0.0
                              : static_cast<double>(unsupported) /
                                    static_cast<double>(transitions);
    }
  };
  // Feeds one point; updates the per-object state in O(1).
  void Feed(StreamState* state, const geometry::Point& p) const;

  size_t num_transitions_learned() const { return transitions_.size(); }

 private:
  uint64_t CellOf(const geometry::Point& p) const;

  Options options_;
  std::unordered_map<uint64_t, size_t> transitions_;  // (from,to) -> count
};

}  // namespace analytics
}  // namespace sidq

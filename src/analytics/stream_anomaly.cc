#include "analytics/stream_anomaly.h"

#include <cmath>

namespace sidq {
namespace analytics {

namespace {

// Packs a (from, to) cell pair into one key. Cell ids are 32-bit hashes of
// the integer cell coordinates.
uint64_t PairKey(uint64_t from, uint64_t to) {
  return (from << 32) ^ (to & 0xFFFFFFFFull);
}

}  // namespace

uint64_t StreamAnomalyDetector::CellOf(const geometry::Point& p) const {
  const int64_t cx = static_cast<int64_t>(std::floor(p.x / options_.cell_m));
  const int64_t cy = static_cast<int64_t>(std::floor(p.y / options_.cell_m));
  // 16/16-bit pack is plenty for city-scale grids.
  return (static_cast<uint64_t>(static_cast<uint16_t>(cx)) << 16) |
         static_cast<uint64_t>(static_cast<uint16_t>(cy));
}

void StreamAnomalyDetector::Train(
    const std::vector<Trajectory>& normal_corpus) {
  transitions_.clear();
  for (const Trajectory& tr : normal_corpus) {
    uint64_t last = 0;
    bool has_last = false;
    for (const TrajectoryPoint& pt : tr.points()) {
      const uint64_t cell = CellOf(pt.p);
      // Only cell *changes* carry signal; self-transitions would dominate
      // the statistics of any slow-moving object and mask anomalies.
      if (has_last && cell != last) {
        transitions_[PairKey(last, cell)] += 1;
      }
      last = cell;
      has_last = true;
    }
  }
}

void StreamAnomalyDetector::Feed(StreamState* state,
                                 const geometry::Point& p) const {
  const uint64_t cell = CellOf(p);
  // Dwelling inside a cell is never anomalous by itself; only score moves.
  if (state->has_last && cell != state->last_cell) {
    ++state->transitions;
    const auto it = transitions_.find(PairKey(state->last_cell, cell));
    const size_t support = it == transitions_.end() ? 0 : it->second;
    if (support < options_.min_support) ++state->unsupported;
  }
  state->last_cell = cell;
  state->has_last = true;
}

double StreamAnomalyDetector::Score(const Trajectory& trajectory) const {
  StreamState state;
  for (const TrajectoryPoint& pt : trajectory.points()) {
    Feed(&state, pt.p);
  }
  return state.Score();
}

}  // namespace analytics
}  // namespace sidq

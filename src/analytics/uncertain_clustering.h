#pragma once

#include <vector>

#include "query/uncertain_point.h"

namespace sidq {
namespace analytics {

// Clustering under location uncertainty (Section 2.3.2; FDBSCAN/Pelekis
// et al. family): DBSCAN where point closeness is judged by the *expected*
// distance between uncertain objects, so noisy objects near a cluster edge
// are treated by their distribution rather than a single noisy fix.
class UncertainDbscan {
 public:
  struct Options {
    double eps_m = 150.0;
    size_t min_pts = 4;
    // true: expected-distance semantics (uncertainty-aware);
    // false: plain DBSCAN on the means (naive baseline).
    bool use_expected_distance = true;
  };

  explicit UncertainDbscan(Options options) : options_(options) {}
  UncertainDbscan() : UncertainDbscan(Options{}) {}

  struct Result {
    std::vector<int> labels;  // cluster per object; -1 = noise
    int num_clusters = 0;
  };

  Result Cluster(const std::vector<query::UncertainPoint>& objects) const;

 private:
  Options options_;
};

// Adjusted Rand Index between two labelings (noise label -1 participates
// as its own class). 1.0 = identical partitions, ~0 = random agreement.
double AdjustedRandIndex(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace analytics
}  // namespace sidq

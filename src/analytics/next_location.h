#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/statusor.h"
#include "core/trajectory.h"
#include "geometry/point.h"

namespace sidq {
namespace analytics {

// Next-location prediction as a decision-making task over low-quality SID
// (Section 2.3.3): a Markov model over grid cells with order-2 -> order-1
// backoff, which tolerates the incomplete histories that trip fixed-order
// models (the "incompleteness in sequential decision-making" issue).
class NextCellPredictor {
 public:
  struct Options {
    double cell_m = 250.0;
  };

  explicit NextCellPredictor(Options options) : options_(options) {}
  NextCellPredictor() : NextCellPredictor(Options{}) {}

  void Train(const std::vector<Trajectory>& corpus);
  // Incremental (online) learning: folds one more trajectory into the
  // model without retraining -- the "incremental learning" trend of
  // Section 2.4 (models must keep up with evolving SID).
  void Observe(const Trajectory& trajectory);
  // Federated aggregation: folds another node's locally-trained model into
  // this one by summing transition counts. For count-based Markov models
  // this is exact -- merging K edge models equals central training on the
  // union -- so decentralised training shares no raw trajectories
  // (Section 2.4, federated learning for decentralised models).
  void MergeFrom(const NextCellPredictor& other);

  // Predicted centre of the next cell given the recent cell history (the
  // trajectory's trailing points); NotFound when no context matches.
  [[nodiscard]] StatusOr<geometry::Point> PredictNext(const Trajectory& recent) const;

  // Fraction of correct next-cell predictions over held-out trajectories
  // (each prefix of length >= 2 predicts its successor).
  double Evaluate(const std::vector<Trajectory>& held_out) const;

 private:
  using CellId = uint64_t;
  CellId CellOf(const geometry::Point& p) const;
  geometry::Point CenterOf(CellId c) const;
  // Distinct-cell sequence of a trajectory.
  std::vector<CellId> CellSequence(const Trajectory& tr) const;

  Options options_;
  std::unordered_map<uint64_t, std::unordered_map<CellId, size_t>> order2_;
  std::unordered_map<CellId, std::unordered_map<CellId, size_t>> order1_;
};

}  // namespace analytics
}  // namespace sidq

#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/stid.h"
#include "core/types.h"
#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {
namespace analytics {

// Continuous detection of bursty regions over a stream of spatial records
// (Section 2.3.2 "event discovery"; SURGE, Feng et al., TKDE 2019 family).
// The space is gridded; each cell keeps an exponential baseline of its
// arrival rate per window. A cell whose current-window count exceeds the
// baseline by `burst_factor` (and a minimum count) is bursty; adjacent
// bursty cells are merged into burst regions.
class BurstDetector {
 public:
  struct Options {
    double cell_m = 400.0;
    Timestamp window_ms = 60'000;
    // Baseline smoothing: baseline <- (1-alpha)*baseline + alpha*count.
    double baseline_alpha = 0.2;
    // Current count must exceed burst_factor * baseline...
    double burst_factor = 3.0;
    // ...and a Poisson significance guard of this many sigmas...
    double poisson_sigmas = 5.0;
    // ...and this absolute floor.
    size_t min_count = 8;
    // Windows the detector must have processed before any cell can fire
    // (baselines need time to converge). Cells never seen before count as
    // baseline 0, so cold-spot bursts do fire after the global warmup.
    int warmup_windows = 5;
  };

  explicit BurstDetector(Options options) : options_(options) {}
  BurstDetector() : BurstDetector(Options{}) {}

  struct BurstRegion {
    geometry::BBox bounds;
    size_t cells = 0;
    size_t events = 0;    // records in the window across the region
    Timestamp window_end = 0;
  };

  // Feeds one record; records must arrive in non-decreasing time order.
  // Returns the burst regions that fired when a window closed (usually
  // empty). Out-of-order records are counted into the current window.
  std::vector<BurstRegion> Feed(const geometry::Point& loc, Timestamp t);

  // Convenience: stream a whole dataset in time order, collecting every
  // region that fires.
  std::vector<BurstRegion> Scan(const std::vector<StRecord>& records);

  size_t windows_processed() const { return windows_processed_; }

 private:
  struct CellState {
    double baseline = 0.0;
    size_t current = 0;
  };
  using CellKey = uint64_t;
  static CellKey KeyOf(int32_t cx, int32_t cy) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(cy));
  }

  std::vector<BurstRegion> CloseWindow();

  Options options_;
  Timestamp window_start_ = kMinTimestamp;
  size_t windows_processed_ = 0;
  std::unordered_map<CellKey, CellState> cells_;
};

}  // namespace analytics
}  // namespace sidq

#include "analytics/popular_route.h"

#include <cmath>
#include <limits>
#include <queue>

namespace sidq {
namespace analytics {

PopularRouteFinder::CellId PopularRouteFinder::CellOf(
    const geometry::Point& p) const {
  const int64_t cx = static_cast<int64_t>(std::floor(p.x / options_.cell_m));
  const int64_t cy = static_cast<int64_t>(std::floor(p.y / options_.cell_m));
  return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(cy));
}

geometry::Point PopularRouteFinder::CenterOf(CellId c) const {
  const int32_t cx = static_cast<int32_t>(c >> 32);
  const int32_t cy = static_cast<int32_t>(c & 0xFFFFFFFFull);
  return geometry::Point((cx + 0.5) * options_.cell_m,
                         (cy + 0.5) * options_.cell_m);
}

void PopularRouteFinder::Build(const std::vector<Trajectory>& corpus) {
  out_edges_.clear();
  for (const Trajectory& tr : corpus) {
    CellId last = 0;
    bool has_last = false;
    for (const TrajectoryPoint& pt : tr.points()) {
      const CellId cell = CellOf(pt.p);
      if (has_last && cell != last) {
        out_edges_[last][cell] += 1;
        // Ensure the destination exists as a node.
        out_edges_.try_emplace(cell);
      } else if (!has_last) {
        out_edges_.try_emplace(cell);
      }
      last = cell;
      has_last = true;
    }
  }
  // Drop low-support transitions.
  // sidq: allow-unordered-iter(per-key pruning is order-independent; the
  // ordering-sensitive inner maps are std::map, iterated canonically)
  for (auto& [cell, nexts] : out_edges_) {
    for (auto it = nexts.begin(); it != nexts.end();) {
      if (it->second < options_.min_transitions) {
        it = nexts.erase(it);
      } else {
        ++it;
      }
    }
  }
}

StatusOr<PopularRouteFinder::Route> PopularRouteFinder::FindRoute(
    const geometry::Point& from, const geometry::Point& to) const {
  const CellId src = CellOf(from);
  const CellId dst = CellOf(to);
  if (out_edges_.find(src) == out_edges_.end()) {
    return Status::NotFound("source cell not in transfer network");
  }
  // Dijkstra on -log(transition probability).
  std::unordered_map<CellId, double> cost;
  std::unordered_map<CellId, CellId> prev;
  using QE = std::pair<double, CellId>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> pq;
  cost[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [c, cell] = pq.top();
    pq.pop();
    if (c > cost[cell]) continue;
    if (cell == dst) break;
    const auto it = out_edges_.find(cell);
    if (it == out_edges_.end()) continue;
    double total = 0.0;
    for (const auto& [next, count] : it->second) {
      total += static_cast<double>(count);
    }
    if (total <= 0.0) continue;
    for (const auto& [next, count] : it->second) {
      const double p = static_cast<double>(count) / total;
      const double w = -std::log(p);
      const double nc = c + w;
      const auto found = cost.find(next);
      if (found == cost.end() || nc < found->second) {
        cost[next] = nc;
        prev[next] = cell;
        pq.emplace(nc, next);
      }
    }
  }
  const auto found = cost.find(dst);
  if (found == cost.end()) {
    return Status::NotFound("destination unreachable in transfer network");
  }
  Route route;
  route.popularity = std::exp(-found->second);
  std::vector<CellId> cells{dst};
  CellId cur = dst;
  while (cur != src) {
    cur = prev.at(cur);
    cells.push_back(cur);
  }
  for (size_t i = cells.size(); i-- > 0;) {
    route.cells.push_back(CenterOf(cells[i]));
  }
  return route;
}

}  // namespace analytics
}  // namespace sidq

#include "analytics/next_location.h"

#include <cmath>

namespace sidq {
namespace analytics {

namespace {

uint64_t PairKey(uint64_t a, uint64_t b) { return (a * 1000003ull) ^ b; }

template <typename Map>
const typename Map::mapped_type* FindOrNull(const Map& m,
                                            const typename Map::key_type& k) {
  const auto it = m.find(k);
  return it == m.end() ? nullptr : &it->second;
}

}  // namespace

NextCellPredictor::CellId NextCellPredictor::CellOf(
    const geometry::Point& p) const {
  const int64_t cx = static_cast<int64_t>(std::floor(p.x / options_.cell_m));
  const int64_t cy = static_cast<int64_t>(std::floor(p.y / options_.cell_m));
  return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(cy));
}

geometry::Point NextCellPredictor::CenterOf(CellId c) const {
  const int32_t cx = static_cast<int32_t>(c >> 32);
  const int32_t cy = static_cast<int32_t>(c & 0xFFFFFFFFull);
  return geometry::Point((cx + 0.5) * options_.cell_m,
                         (cy + 0.5) * options_.cell_m);
}

std::vector<NextCellPredictor::CellId> NextCellPredictor::CellSequence(
    const Trajectory& tr) const {
  std::vector<CellId> out;
  for (const TrajectoryPoint& pt : tr.points()) {
    const CellId c = CellOf(pt.p);
    if (out.empty() || out.back() != c) out.push_back(c);
  }
  return out;
}

void NextCellPredictor::Train(const std::vector<Trajectory>& corpus) {
  order1_.clear();
  order2_.clear();
  for (const Trajectory& tr : corpus) Observe(tr);
}

void NextCellPredictor::Observe(const Trajectory& trajectory) {
  const std::vector<CellId> cells = CellSequence(trajectory);
  for (size_t i = 1; i < cells.size(); ++i) {
    order1_[cells[i - 1]][cells[i]] += 1;
    if (i >= 2) {
      order2_[PairKey(cells[i - 2], cells[i - 1])][cells[i]] += 1;
    }
  }
}

void NextCellPredictor::MergeFrom(const NextCellPredictor& other) {
  // sidq: allow-unordered-iter(count merging is commutative integer
  // addition; the merged tables are identical for any visit order)
  for (const auto& [ctx, dist] : other.order1_) {
    // sidq: allow-unordered-iter(commutative += merge into order1_)
    for (const auto& [cell, count] : dist) {
      order1_[ctx][cell] += count;
    }
  }
  // sidq: allow-unordered-iter(same commutative count merge as order1_)
  for (const auto& [ctx, dist] : other.order2_) {
    // sidq: allow-unordered-iter(commutative += merge into order2_)
    for (const auto& [cell, count] : dist) {
      order2_[ctx][cell] += count;
    }
  }
}

StatusOr<geometry::Point> NextCellPredictor::PredictNext(
    const Trajectory& recent) const {
  const std::vector<CellId> cells = CellSequence(recent);
  if (cells.empty()) return Status::InvalidArgument("no history");
  const std::unordered_map<CellId, size_t>* dist = nullptr;
  if (cells.size() >= 2) {
    dist = FindOrNull(order2_,
                      PairKey(cells[cells.size() - 2], cells.back()));
  }
  if (dist == nullptr || dist->empty()) {
    dist = FindOrNull(order1_, cells.back());
  }
  if (dist == nullptr || dist->empty()) {
    return Status::NotFound("no matching context");
  }
  CellId best = dist->begin()->first;
  size_t best_count = dist->begin()->second;
  // sidq: allow-unordered-iter(argmax with canonical tie-break below)
  for (const auto& [cell, count] : *dist) {
    // Ties break on the cell id so results do not depend on hash-map
    // iteration order (important for federated-vs-central equivalence).
    if (count > best_count || (count == best_count && cell < best)) {
      best = cell;
      best_count = count;
    }
  }
  return CenterOf(best);
}

double NextCellPredictor::Evaluate(
    const std::vector<Trajectory>& held_out) const {
  size_t total = 0, correct = 0;
  for (const Trajectory& tr : held_out) {
    const std::vector<CellId> cells = CellSequence(tr);
    for (size_t i = 2; i < cells.size(); ++i) {
      const std::unordered_map<CellId, size_t>* dist =
          FindOrNull(order2_, PairKey(cells[i - 2], cells[i - 1]));
      if (dist == nullptr || dist->empty()) {
        dist = FindOrNull(order1_, cells[i - 1]);
      }
      if (dist == nullptr || dist->empty()) continue;
      CellId best = dist->begin()->first;
      size_t best_count = dist->begin()->second;
      // sidq: allow-unordered-iter(argmax with canonical cell-id tie-break)
      for (const auto& [cell, count] : *dist) {
        if (count > best_count || (count == best_count && cell < best)) {
          best = cell;
          best_count = count;
        }
      }
      ++total;
      if (best == cells[i]) ++correct;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

}  // namespace analytics
}  // namespace sidq

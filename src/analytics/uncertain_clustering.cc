#include "analytics/uncertain_clustering.h"

#include <cmath>
#include <deque>
#include <map>

namespace sidq {
namespace analytics {

UncertainDbscan::Result UncertainDbscan::Cluster(
    const std::vector<query::UncertainPoint>& objects) const {
  const size_t n = objects.size();
  Result result;
  result.labels.assign(n, -2);  // -2 unvisited, -1 noise

  auto close = [&](size_t i, size_t j) {
    if (options_.use_expected_distance) {
      return objects[i].ExpectedDistance(objects[j].mean()) <= options_.eps_m;
    }
    return geometry::Distance(objects[i].mean(), objects[j].mean()) <=
           options_.eps_m;
  };
  auto neighbors_of = [&](size_t i) {
    std::vector<size_t> out;
    for (size_t j = 0; j < n; ++j) {
      if (j != i && close(i, j)) out.push_back(j);
    }
    return out;
  };

  int cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (result.labels[i] != -2) continue;
    std::vector<size_t> seeds = neighbors_of(i);
    if (seeds.size() + 1 < options_.min_pts) {
      result.labels[i] = -1;
      continue;
    }
    result.labels[i] = cluster;
    std::deque<size_t> queue(seeds.begin(), seeds.end());
    while (!queue.empty()) {
      const size_t j = queue.front();
      queue.pop_front();
      if (result.labels[j] == -1) result.labels[j] = cluster;  // border
      if (result.labels[j] != -2) continue;
      result.labels[j] = cluster;
      std::vector<size_t> nb = neighbors_of(j);
      if (nb.size() + 1 >= options_.min_pts) {
        for (size_t q : nb) {
          if (result.labels[q] == -2 || result.labels[q] == -1) {
            queue.push_back(q);
          }
        }
      }
    }
    ++cluster;
  }
  result.num_clusters = cluster;
  for (int& l : result.labels) {
    if (l == -2) l = -1;
  }
  return result;
}

double AdjustedRandIndex(const std::vector<int>& a,
                         const std::vector<int>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) return 1.0;
  std::map<std::pair<int, int>, double> joint;
  std::map<int, double> ca, cb;
  for (size_t i = 0; i < n; ++i) {
    joint[{a[i], b[i]}] += 1.0;
    ca[a[i]] += 1.0;
    cb[b[i]] += 1.0;
  }
  auto choose2 = [](double m) { return m * (m - 1.0) / 2.0; };
  double sum_joint = 0.0, sum_a = 0.0, sum_b = 0.0;
  for (const auto& [k, v] : joint) sum_joint += choose2(v);
  for (const auto& [k, v] : ca) sum_a += choose2(v);
  for (const auto& [k, v] : cb) sum_b += choose2(v);
  const double total = choose2(static_cast<double>(n));
  const double expected = sum_a * sum_b / total;
  const double max_index = (sum_a + sum_b) / 2.0;
  if (max_index - expected == 0.0) return 1.0;
  return (sum_joint - expected) / (max_index - expected);
}

}  // namespace analytics
}  // namespace sidq

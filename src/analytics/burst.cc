#include "analytics/burst.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace analytics {

std::vector<BurstDetector::BurstRegion> BurstDetector::Feed(
    const geometry::Point& loc, Timestamp t) {
  std::vector<BurstRegion> fired;
  if (window_start_ == kMinTimestamp) {
    window_start_ = t;
  }
  while (t >= window_start_ + options_.window_ms) {
    auto regions = CloseWindow();
    fired.insert(fired.end(), regions.begin(), regions.end());
    window_start_ += options_.window_ms;
  }
  const int32_t cx = static_cast<int32_t>(std::floor(loc.x / options_.cell_m));
  const int32_t cy = static_cast<int32_t>(std::floor(loc.y / options_.cell_m));
  cells_[KeyOf(cx, cy)].current += 1;
  return fired;
}

std::vector<BurstDetector::BurstRegion> BurstDetector::CloseWindow() {
  ++windows_processed_;
  // Identify bursty cells. A burst must clear three hurdles: an absolute
  // floor, a multiplicative factor over the cell's baseline, and a Poisson
  // significance guard (counts fluctuate with sd ~ sqrt(baseline)).
  const bool warmed =
      windows_processed_ >= static_cast<size_t>(options_.warmup_windows);
  std::unordered_map<CellKey, size_t> bursty;  // key -> count
  // sidq: allow-unordered-iter(per-cell EWMA update and bursty insert are
  // order-independent; bursty is only read through the sorted key list below)
  for (auto& [key, state] : cells_) {
    const double count = static_cast<double>(state.current);
    const bool fires =
        warmed && state.current >= options_.min_count &&
        count > options_.burst_factor * std::max(state.baseline, 0.5) &&
        count > state.baseline +
                    options_.poisson_sigmas *
                        std::sqrt(state.baseline + 1.0);
    if (fires) bursty[key] = state.current;
    state.baseline = (1.0 - options_.baseline_alpha) * state.baseline +
                     options_.baseline_alpha * count;
    state.current = 0;
  }
  // Merge 8-adjacent bursty cells into regions via BFS, seeding in sorted
  // key order: seeding from the unordered_map made the *order* of regions
  // in the returned vector a function of hash-map iteration order (an R11
  // unordered-iteration-into-output bug -- per-region totals are
  // commutative sums, but the region list itself feeds caller-visible
  // output and must be canonical).
  std::vector<CellKey> seed_keys;
  seed_keys.reserve(bursty.size());
  // sidq: allow-unordered-iter(keys are sorted before any ordering-
  // sensitive use; see seed_keys sort below)
  for (const auto& [key, count] : bursty) seed_keys.push_back(key);
  std::sort(seed_keys.begin(), seed_keys.end());
  std::vector<BurstRegion> regions;
  std::unordered_map<CellKey, bool> visited;
  for (const CellKey key : seed_keys) {
    if (visited[key]) continue;
    BurstRegion region;
    region.window_end = window_start_ + options_.window_ms;
    std::vector<CellKey> stack{key};
    visited[key] = true;
    while (!stack.empty()) {
      const CellKey cur = stack.back();
      stack.pop_back();
      const int32_t cx = static_cast<int32_t>(cur >> 32);
      const int32_t cy = static_cast<int32_t>(cur & 0xFFFFFFFFull);
      region.cells += 1;
      region.events += bursty.at(cur);
      region.bounds.Extend(
          geometry::Point(cx * options_.cell_m, cy * options_.cell_m));
      region.bounds.Extend(geometry::Point((cx + 1) * options_.cell_m,
                                           (cy + 1) * options_.cell_m));
      for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
          if (dx == 0 && dy == 0) continue;
          const CellKey nb = KeyOf(cx + dx, cy + dy);
          if (bursty.count(nb) > 0 && !visited[nb]) {
            visited[nb] = true;
            stack.push_back(nb);
          }
        }
      }
    }
    regions.push_back(region);
  }
  return regions;
}

std::vector<BurstDetector::BurstRegion> BurstDetector::Scan(
    const std::vector<StRecord>& records) {
  std::vector<StRecord> sorted = records;
  std::sort(sorted.begin(), sorted.end(),
            [](const StRecord& a, const StRecord& b) { return a.t < b.t; });
  std::vector<BurstRegion> out;
  for (const StRecord& r : sorted) {
    auto fired = Feed(r.loc, r.t);
    out.insert(out.end(), fired.begin(), fired.end());
  }
  return out;
}

}  // namespace analytics
}  // namespace sidq

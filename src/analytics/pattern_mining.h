#pragma once

#include <vector>

#include "core/symbolic.h"
#include "core/types.h"

namespace sidq {
namespace analytics {

// Probabilistic frequent sequential pattern mining over uncertain symbolic
// sequences (Section 2.3.2; Li et al. ICDM 2013 / Zhao et al. EDBT 2012
// family). Each sequence element carries an existence confidence in (0, 1];
// a pattern's expected support across a database is the sum over sequences
// of the probability that the pattern occurs (contiguously) at least once.
struct UncertainSequence {
  std::vector<RegionId> symbols;
  std::vector<double> confidence;  // aligned with symbols
};

struct SequentialPattern {
  std::vector<RegionId> symbols;
  double expected_support = 0.0;
};

class PatternMiner {
 public:
  struct Options {
    double min_expected_support = 2.0;
    size_t max_length = 4;
    size_t min_length = 2;
  };

  explicit PatternMiner(Options options) : options_(options) {}
  PatternMiner() : PatternMiner(Options{}) {}

  // Mines all contiguous patterns with expected support >=
  // min_expected_support, sorted by support (descending).
  std::vector<SequentialPattern> Mine(
      const std::vector<UncertainSequence>& database) const;

  // Probability that `pattern` occurs contiguously at least once in `seq`
  // (inclusion-exclusion via the complement of independent window misses;
  // exact for non-overlapping windows, a tight approximation otherwise).
  static double OccurrenceProbability(const UncertainSequence& seq,
                                      const std::vector<RegionId>& pattern);

 private:
  Options options_;
};

// Builds an UncertainSequence from a deduplicated symbolic trajectory with
// uniform confidence.
UncertainSequence FromSymbolic(const SymbolicTrajectory& trajectory,
                               double confidence);

}  // namespace analytics
}  // namespace sidq

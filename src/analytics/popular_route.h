#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/statusor.h"
#include "core/trajectory.h"
#include "geometry/point.h"

namespace sidq {
namespace analytics {

// Popular-route discovery from uncertain trajectories (Wei, Zheng & Peng,
// KDD 2012 family): low-sampling-rate trajectories are aggregated into a
// grid transfer network whose edge weights are transition probabilities;
// the most popular route between two locations maximises the product of
// transition probabilities (min-cost path on -log p).
class PopularRouteFinder {
 public:
  struct Options {
    double cell_m = 300.0;
    // Transitions seen fewer times are dropped from the transfer network.
    size_t min_transitions = 1;
  };

  explicit PopularRouteFinder(Options options) : options_(options) {}
  PopularRouteFinder() : PopularRouteFinder(Options{}) {}

  // Builds the transfer network from a (possibly sparse and noisy) corpus.
  void Build(const std::vector<Trajectory>& corpus);

  struct Route {
    std::vector<geometry::Point> cells;  // cell centres along the route
    double popularity = 0.0;             // product of transition probs
  };

  // Most popular route between the cells containing `from` and `to`;
  // NotFound when they are not connected in the transfer network.
  [[nodiscard]] StatusOr<Route> FindRoute(const geometry::Point& from,
                            const geometry::Point& to) const;

  size_t num_cells() const { return out_edges_.size(); }

 private:
  using CellId = uint64_t;
  CellId CellOf(const geometry::Point& p) const;
  geometry::Point CenterOf(CellId c) const;

  Options options_;
  // cell -> (next cell -> count). The outer map is only ever looked up by
  // key (plus one order-independent pruning pass), so it can stay hashed;
  // the inner map is *iterated* by FindRoute's Dijkstra -- both for the
  // floating-point probability normalization sum and for equal-cost edge
  // relaxation, where iteration order breaks ties. An ordered map makes
  // both canonical (R11: no unordered iteration on ordering-sensitive
  // paths), so the returned route is a pure function of the corpus.
  std::unordered_map<CellId, std::map<CellId, size_t>> out_edges_;
};

}  // namespace analytics
}  // namespace sidq

#include "analytics/pattern_mining.h"

#include <algorithm>
#include <map>

namespace sidq {
namespace analytics {

double PatternMiner::OccurrenceProbability(
    const UncertainSequence& seq, const std::vector<RegionId>& pattern) {
  const size_t n = seq.symbols.size();
  const size_t m = pattern.size();
  if (m == 0 || n < m) return 0.0;
  // P(at least one occurrence) = 1 - prod over candidate windows of
  // (1 - P(window matches)), treating windows as independent.
  double p_none = 1.0;
  for (size_t i = 0; i + m <= n; ++i) {
    double p_match = 1.0;
    for (size_t j = 0; j < m; ++j) {
      if (seq.symbols[i + j] != pattern[j]) {
        p_match = 0.0;
        break;
      }
      p_match *= seq.confidence[i + j];
    }
    p_none *= 1.0 - p_match;
  }
  return 1.0 - p_none;
}

std::vector<SequentialPattern> PatternMiner::Mine(
    const std::vector<UncertainSequence>& database) const {
  // Enumerate candidate contiguous patterns occurring in the data, then
  // keep those whose expected support clears the threshold. Apriori-style
  // pruning: a length-(k+1) pattern can only be frequent if its length-k
  // prefix is.
  std::vector<SequentialPattern> result;
  std::vector<std::vector<RegionId>> frontier;
  // Length-1 candidates.
  {
    std::map<RegionId, bool> seen;
    for (const UncertainSequence& seq : database) {
      for (RegionId s : seq.symbols) seen[s] = true;
    }
    for (const auto& [s, unused] : seen) frontier.push_back({s});
  }
  for (size_t len = 1; len <= options_.max_length && !frontier.empty();
       ++len) {
    std::vector<std::vector<RegionId>> survivors;
    for (const auto& pattern : frontier) {
      double support = 0.0;
      for (const UncertainSequence& seq : database) {
        support += OccurrenceProbability(seq, pattern);
      }
      if (support >= options_.min_expected_support) {
        survivors.push_back(pattern);
        if (pattern.size() >= options_.min_length) {
          result.push_back({pattern, support});
        }
      }
    }
    // Extend survivors by every symbol that follows the pattern somewhere.
    std::vector<std::vector<RegionId>> next;
    for (const auto& pattern : survivors) {
      std::map<RegionId, bool> followers;
      for (const UncertainSequence& seq : database) {
        const size_t n = seq.symbols.size();
        const size_t m = pattern.size();
        for (size_t i = 0; i + m < n; ++i) {
          bool match = true;
          for (size_t j = 0; j < m && match; ++j) {
            match = seq.symbols[i + j] == pattern[j];
          }
          if (match) followers[seq.symbols[i + m]] = true;
        }
      }
      for (const auto& [s, unused] : followers) {
        std::vector<RegionId> extended = pattern;
        extended.push_back(s);
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
  }
  std::sort(result.begin(), result.end(),
            [](const SequentialPattern& a, const SequentialPattern& b) {
              if (a.expected_support != b.expected_support) {
                return a.expected_support > b.expected_support;
              }
              return a.symbols.size() > b.symbols.size();
            });
  return result;
}

UncertainSequence FromSymbolic(const SymbolicTrajectory& trajectory,
                               double confidence) {
  UncertainSequence out;
  out.symbols = trajectory.RegionSequence();
  out.confidence.assign(out.symbols.size(), confidence);
  return out;
}

}  // namespace analytics
}  // namespace sidq

#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/trajectory.h"
#include "core/types.h"
#include "geometry/geo.h"

namespace sidq {
namespace kernels {

// Non-owning columnar (structure-of-arrays) view over trajectory samples.
// The hot loops in similarity, outlier detection, and map matching stream
// x/y/t columns; a 32-byte AoS TrajectoryPoint wastes three quarters of
// every cache line on fields those loops never read, and its layout defeats
// auto-vectorization. The kernels in distance.h all take raw column
// pointers from this view.
struct SoaView {
  const double* x = nullptr;
  const double* y = nullptr;
  const Timestamp* t = nullptr;
  size_t size = 0;

  [[nodiscard]] bool empty() const { return size == 0; }
};

// Owning columnar buffer: contiguous x, y, and timestamp columns copied out
// of an AoS sample sequence. Immutable after construction, so a single
// buffer can be shared (via shared_ptr) between trajectory copies and
// across threads once materialized.
class SoaBuffer {
 public:
  SoaBuffer() = default;

  // Copies the planar coordinates and timestamps of `tr` into columns.
  static SoaBuffer FromTrajectory(const Trajectory& tr);

  // Projects geographic samples into planar metres (via `proj`) while
  // materializing the columns -- the ingestion-side fast lane for feeds
  // that deliver WGS-84 coordinates.
  static SoaBuffer FromLatLon(
      const std::vector<std::pair<Timestamp, geometry::LatLon>>& samples,
      const geometry::LocalProjection& proj);

  [[nodiscard]] SoaView view() const {
    return SoaView{xs_.data(), ys_.data(), ts_.data(), xs_.size()};
  }
  [[nodiscard]] size_t size() const { return xs_.size(); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<Timestamp> ts_;
};

// Lazily materialized columnar view of a Trajectory, memoized on the
// trajectory object itself (Trajectory::derived_cache()).
//
// Contract:
//   - The first Of() call for a given revision copies the points into a
//     SoaBuffer and stamps the cache; later calls (same revision) reuse the
//     buffer without touching the points.
//   - Any mutation of the trajectory (Append*/SortByTime/mutable_points())
//     bumps Trajectory::revision(), so the next Of() rebuilds.
//   - The returned view keeps the buffer alive via shared_ptr: it stays
//     valid even if the trajectory mutates or dies afterwards (the view
//     then describes the snapshot it was built from).
//   - Of() serializes cache access through a striped lock, so concurrent
//     Of() calls on the same trajectory are safe; mutating a trajectory
//     concurrently with Of() is a data race, exactly as for points().
class TrajectoryView {
 public:
  static TrajectoryView Of(const Trajectory& tr);

  [[nodiscard]] const SoaView& view() const { return view_; }
  [[nodiscard]] const double* x() const { return view_.x; }
  [[nodiscard]] const double* y() const { return view_.y; }
  [[nodiscard]] const Timestamp* t() const { return view_.t; }
  [[nodiscard]] size_t size() const { return view_.size; }

  // The shared buffer backing this view (exposed for cache tests).
  [[nodiscard]] const std::shared_ptr<const SoaBuffer>& buffer() const {
    return buffer_;
  }

 private:
  TrajectoryView(std::shared_ptr<const SoaBuffer> buffer, SoaView view)
      : buffer_(std::move(buffer)), view_(view) {}

  std::shared_ptr<const SoaBuffer> buffer_;
  SoaView view_;
};

}  // namespace kernels
}  // namespace sidq

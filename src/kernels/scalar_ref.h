#pragma once

#include <cstddef>

#include "core/trajectory.h"

namespace sidq {
namespace kernels {
namespace scalar {

// Scalar reference implementations of the kernel-layer primitives. These
// mirror the pre-kernel AoS loops (the original query/similarity.cc code)
// operation-for-operation and their translation unit is compiled with
// auto-vectorization disabled (src/kernels/CMakeLists.txt), so they are the
// honest "before" baseline for bench_kernels and the oracle the property
// tests compare the vectorized kernels against bit-for-bit.

// Original DtwDistance: two-row DP with the scaled Sakoe-Chiba band.
double DtwDistance(const Trajectory& a, const Trajectory& b, int band);

// Original DiscreteFrechetDistance.
double FrechetDistance(const Trajectory& a, const Trajectory& b);

// Original EdrDistance.
double EdrDistance(const Trajectory& a, const Trajectory& b,
                   double epsilon_m);

// Original LcssSimilarity.
double LcssSimilarity(const Trajectory& a, const Trajectory& b,
                      double epsilon_m, Timestamp delta_ms);

// AoS pairwise squared distances: out[i*m + j] = DistanceSq(a[i].p, b[j].p).
void PairwiseSqDist(const Trajectory& a, const Trajectory& b, double* out);

// AoS minimum point-to-polyline distance over the samples of `tr`.
double PointToPolylineDist(const geometry::Point& p, const Trajectory& tr);

// AoS consecutive-sample distances: out[i] = Distance(tr[i].p, tr[i+1].p).
void ConsecutiveDist(const Trajectory& tr, double* out);

// AoS point-to-samples distances: out[i] = Distance(tr[i].p, p).
void PointToManyDist(const geometry::Point& p, const Trajectory& tr,
                     double* out);

}  // namespace scalar
}  // namespace kernels
}  // namespace sidq

#include "kernels/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sidq {
namespace kernels {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void PairwiseSqDist(const double* ax, const double* ay, size_t n,
                    const double* bx, const double* by, size_t m,
                    double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double axi = ax[i];
    const double ayi = ay[i];
    double* row = out + i * m;
    for (size_t j = 0; j < m; ++j) {
      const double dx = axi - bx[j];
      const double dy = ayi - by[j];
      row[j] = dx * dx + dy * dy;
    }
  }
}

void DistRow(double qx, double qy, const double* bx, const double* by,
             size_t lo, size_t hi, double* out) {
  for (size_t j = lo; j < hi; ++j) {
    const double dx = qx - bx[j];
    const double dy = qy - by[j];
    out[j] = std::sqrt(dx * dx + dy * dy);
  }
}

void PointToManyDist(double px, double py, const double* xs, const double* ys,
                     size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - px;
    const double dy = ys[i] - py;
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

void ConsecutiveDist(const double* xs, const double* ys, size_t n,
                     double* out) {
  if (n < 2) return;
  for (size_t i = 0; i + 1 < n; ++i) {
    const double dx = xs[i + 1] - xs[i];
    const double dy = ys[i + 1] - ys[i];
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

double PointToPolylineDist(double px, double py, const double* xs,
                           const double* ys, size_t n) {
  if (n == 0) return kInf;
  if (n == 1) {
    const double dx = px - xs[0];
    const double dy = py - ys[0];
    return std::sqrt(dx * dx + dy * dy);
  }
  // Mirrors geometry::PointSegmentDistance exactly: project onto the
  // segment, clamp the fraction, Lerp the closest point, then measure
  // p - closest.
  double best_sq = kInf;
  for (size_t i = 0; i + 1 < n; ++i) {
    const double ax = xs[i];
    const double ay = ys[i];
    const double dx = xs[i + 1] - ax;
    const double dy = ys[i + 1] - ay;
    const double len_sq = dx * dx + dy * dy;
    double f = 0.0;
    if (len_sq > 0.0) {
      f = ((px - ax) * dx + (py - ay) * dy) / len_sq;
      f = std::clamp(f, 0.0, 1.0);
    }
    const double cx = ax + dx * f;
    const double cy = ay + dy * f;
    const double ex = px - cx;
    const double ey = py - cy;
    best_sq = std::min(best_sq, ex * ex + ey * ey);
  }
  return std::sqrt(best_sq);
}

void DtwRowKernel(double qx, double qy, const double* bx, const double* by,
                  size_t m, size_t lo, size_t hi, const double* prev,
                  double* cur) {
  std::fill(cur, cur + m + 1, kInf);
  if (lo > hi) return;
  // Single fused pass: cur[j-1] is a loop-carried dependency, so the row
  // is latency-bound by the min/add chain no matter what; keeping the
  // sqrt in-loop lets it overlap that chain instead of costing a second
  // memory sweep (a separate vectorized distance pass measured SLOWER).
  for (size_t j = lo; j <= hi; ++j) {
    const double best = std::min({prev[j], prev[j - 1], cur[j - 1]});
    if (best != kInf) {
      const double dx = qx - bx[j - 1];
      const double dy = qy - by[j - 1];
      cur[j] = std::sqrt(dx * dx + dy * dy) + best;
    }
  }
}

void FrechetRowKernel(double qx, double qy, const double* bx,
                      const double* by, size_t m, const double* prev,
                      double* cur, double* dist_scratch) {
  // Pass 1 (vectorized): all m point distances.
  for (size_t j = 0; j < m; ++j) {
    const double dx = qx - bx[j];
    const double dy = qy - by[j];
    dist_scratch[j] = std::sqrt(dx * dx + dy * dy);
  }
  // Pass 2 (sequential).
  cur[0] = std::max(prev[0], dist_scratch[0]);
  for (size_t j = 1; j < m; ++j) {
    const double reach = std::min({prev[j], prev[j - 1], cur[j - 1]});
    cur[j] = std::max(reach, dist_scratch[j]);
  }
}

}  // namespace kernels
}  // namespace sidq

#include "kernels/distance.h"

#include "kernels/dispatch.h"

namespace sidq {
namespace kernels {

// Shims over the runtime-dispatched table. KernelDispatch::Get() resolves
// once per process (CPUID + SIDQ_FORCE_ISA) and then is a single atomic
// load, so the indirection adds one predictable call per batch -- noise
// next to the loops it selects.

void PairwiseSqDist(const double* ax, const double* ay, size_t n,
                    const double* bx, const double* by, size_t m,
                    double* out) {
  KernelDispatch::Get().pairwise_sq_dist(ax, ay, n, bx, by, m, out);
}

void DistRow(double qx, double qy, const double* bx, const double* by,
             size_t lo, size_t hi, double* out) {
  KernelDispatch::Get().dist_row(qx, qy, bx, by, lo, hi, out);
}

void PointToManyDist(double px, double py, const double* xs, const double* ys,
                     size_t n, double* out) {
  KernelDispatch::Get().point_to_many_dist(px, py, xs, ys, n, out);
}

void ConsecutiveDist(const double* xs, const double* ys, size_t n,
                     double* out) {
  KernelDispatch::Get().consecutive_dist(xs, ys, n, out);
}

double PointToPolylineDist(double px, double py, const double* xs,
                           const double* ys, size_t n) {
  return KernelDispatch::Get().point_to_polyline_dist(px, py, xs, ys, n);
}

void DtwRowKernel(double qx, double qy, const double* bx, const double* by,
                  size_t m, size_t lo, size_t hi, const double* prev,
                  double* cur, double* dist_scratch) {
  KernelDispatch::Get().dtw_row(qx, qy, bx, by, m, lo, hi, prev, cur,
                                dist_scratch);
}

void FrechetRowKernel(double qx, double qy, const double* bx,
                      const double* by, size_t m, const double* prev,
                      double* cur, double* dist_scratch) {
  KernelDispatch::Get().frechet_row(qx, qy, bx, by, m, prev, cur,
                                    dist_scratch);
}

double FrechetFullKernel(const double* ax, const double* ay, size_t n,
                         const double* bx, const double* by, size_t m,
                         double* scratch) {
  return KernelDispatch::Get().frechet_full(ax, ay, n, bx, by, m, scratch);
}

}  // namespace kernels
}  // namespace sidq

#include "kernels/packed_rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "core/arena.h"
#include "core/logging.h"
#include "kernels/dispatch.h"

namespace sidq {
namespace kernels {

double BoxGap(const geometry::BBox& a, const geometry::BBox& b) {
  const double dx = std::max({a.min_x - b.max_x, b.min_x - a.max_x, 0.0});
  const double dy = std::max({a.min_y - b.max_y, b.min_y - a.max_y, 0.0});
  return std::sqrt(dx * dx + dy * dy);
}

PackedRTree::PackedRTree(size_t max_entries) : max_entries_(max_entries) {
  SIDQ_CHECK(max_entries >= 4) << "max_entries must be >= 4";
  SIDQ_CHECK(max_entries <= kMaxEntriesCap)
      << "max_entries must be <= " << kMaxEntriesCap;
}

void PackedRTree::BulkLoad(std::vector<Item> items) {
  items_ = std::move(items);
  nodes_.clear();
  leaf_count_ = 0;
  height_ = 0;
  leaf_min_x_.clear();
  leaf_min_y_.clear();
  leaf_max_x_.clear();
  leaf_max_y_.clear();
  leaf_ids_.clear();
  node_min_x_.clear();
  node_min_y_.clear();
  node_max_x_.clear();
  node_max_y_.clear();
  node_index_.clear();
  if (items_.empty()) return;
  const size_t n = items_.size();
  for (const Item& it : items_) {
    // An inverted box has a NaN center, which would break the strict weak
    // ordering of the STR sorts below.
    SIDQ_CHECK(!it.box.Empty()) << "PackedRTree: empty item box";
  }

  if (n > max_entries_) {
    // STR: P = ceil(n / M) leaf pages, S = ceil(sqrt(P)) vertical slices;
    // sort by center x, then each slice by center y.
    const size_t pages = (n + max_entries_ - 1) / max_entries_;
    const size_t slices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(pages))));
    const size_t slice_cap = (n + slices - 1) / slices;
    std::sort(items_.begin(), items_.end(),
              [](const Item& a, const Item& b) {
                return a.box.Center().x < b.box.Center().x;
              });
    for (size_t s = 0; s < n; s += slice_cap) {
      const size_t s_end = std::min(s + slice_cap, n);
      std::sort(items_.begin() + s, items_.begin() + s_end,
                [](const Item& a, const Item& b) {
                  return a.box.Center().y < b.box.Center().y;
                });
    }
  }

  // Columnar mirror of the (now STR-sorted) items for SIMD leaf scans.
  leaf_min_x_.reserve(n);
  leaf_min_y_.reserve(n);
  leaf_max_x_.reserve(n);
  leaf_max_y_.reserve(n);
  leaf_ids_.reserve(n);
  for (const Item& it : items_) {
    leaf_min_x_.push_back(it.box.min_x);
    leaf_min_y_.push_back(it.box.min_y);
    leaf_max_x_.push_back(it.box.max_x);
    leaf_max_y_.push_back(it.box.max_y);
    leaf_ids_.push_back(it.id);
  }

  // Exact node count across all levels, so the level packing below never
  // reallocates (node construction is cold, but iterator stability over
  // nodes_ during the parent pass matters).
  size_t total_nodes = 0;
  for (size_t level = (n + max_entries_ - 1) / max_entries_; level > 1;
       level = (level + max_entries_ - 1) / max_entries_) {
    total_nodes += level;
  }
  nodes_.reserve(total_nodes + (n > 0 ? 1 : 0));

  // Leaf level: consecutive runs of max_entries_ items.
  for (size_t p = 0; p < n; p += max_entries_) {
    const size_t p_end = std::min(p + max_entries_, n);
    Node leaf;
    leaf.begin = static_cast<uint32_t>(p);
    leaf.end = static_cast<uint32_t>(p_end);
    leaf.item_begin = leaf.begin;
    leaf.item_end = leaf.end;
    for (size_t i = p; i < p_end; ++i) leaf.box.Extend(items_[i].box);
    nodes_.push_back(leaf);
  }
  leaf_count_ = nodes_.size();
  height_ = 1;

  // Pack each level into the next until a single root remains. Children of
  // consecutive parents are consecutive nodes, so a [begin, end) span per
  // parent suffices.
  size_t level_begin = 0;
  size_t level_end = nodes_.size();
  while (level_end - level_begin > 1) {
    for (size_t i = level_begin; i < level_end; i += max_entries_) {
      const size_t i_end = std::min(i + max_entries_, level_end);
      Node parent;
      parent.begin = static_cast<uint32_t>(i);
      parent.end = static_cast<uint32_t>(i_end);
      parent.item_begin = nodes_[i].item_begin;
      parent.item_end = nodes_[i_end - 1].item_end;
      for (size_t c = i; c < i_end; ++c) parent.box.Extend(nodes_[c].box);
      nodes_.push_back(parent);
    }
    level_begin = level_end;
    level_end = nodes_.size();
    ++height_;
  }

  // Columnar mirror of every node box (and its own index), so the batched
  // walk can leaf-scan a node's contiguous child span.
  node_min_x_.resize(nodes_.size());
  node_min_y_.resize(nodes_.size());
  node_max_x_.resize(nodes_.size());
  node_max_y_.resize(nodes_.size());
  node_index_.resize(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    node_min_x_[i] = nodes_[i].box.min_x;
    node_min_y_[i] = nodes_[i].box.min_y;
    node_max_x_[i] = nodes_[i].box.max_x;
    node_max_y_[i] = nodes_[i].box.max_y;
    node_index_[i] = i;
  }
}

size_t PackedRTree::ScanLeafInto(const Node& node, const geometry::BBox& query,
                                 uint64_t* out) const {
  const uint32_t b = node.begin;
  return KernelDispatch::Get().leaf_scan(
      leaf_min_x_.data() + b, leaf_min_y_.data() + b, leaf_max_x_.data() + b,
      leaf_max_y_.data() + b, leaf_ids_.data() + b, node.end - b, query.min_x,
      query.min_y, query.max_x, query.max_y, out);
}

void PackedRTree::ScanLeaf(const Node& node, const geometry::BBox& query,
                           std::vector<uint64_t>* out) const {
  uint64_t tmp[kMaxEntriesCap];
  const size_t cnt = ScanLeafInto(node, query, tmp);
  out->insert(out->end(), tmp, tmp + cnt);
}

std::vector<uint64_t> PackedRTree::RangeQuery(
    const geometry::BBox& query) const {
  std::vector<uint64_t> out;
  last_nodes_visited = 0;
  if (nodes_.empty() || query.Empty()) return out;
  if (!nodes_[root()].box.Intersects(query)) {
    last_nodes_visited = 1;
    return out;
  }
  // Children are intersection-tested before they are pushed, so every
  // popped node is known to intersect. The traversal stack is arena
  // scratch: steady-state solo queries do zero heap allocations beyond
  // the result vector itself.
  ArenaScope scope(ScratchArena());
  ArenaVec<int32_t> stack(scope.arena(), 64);
  stack.push_back(root());
  while (!stack.empty()) {
    const int32_t n = stack.back();
    stack.pop_back();
    ++last_nodes_visited;
    const Node& node = nodes_[n];
    if (IsLeaf(static_cast<size_t>(n))) {
      ScanLeaf(node, query, &out);
    } else if (query.Contains(node.box)) {
      // Whole subtree matches: its items are one contiguous run.
      out.insert(out.end(), leaf_ids_.data() + node.item_begin,
                 leaf_ids_.data() + node.item_end);
    } else {
      for (uint32_t c = node.begin; c < node.end; ++c) {
        if (nodes_[c].box.Intersects(query)) {
          stack.push_back(static_cast<int32_t>(c));
        }
      }
    }
  }
  return out;
}

PackedRTree::BatchResults PackedRTree::RangeQueryMany(
    const std::vector<geometry::BBox>& queries) const {
  BatchResults res;
  RangeQueryMany(queries, &res);
  return res;
}

void PackedRTree::RangeQueryMany(const std::vector<geometry::BBox>& queries,
                                 BatchResults* res) const {
  res->ids.clear();
  res->offsets.clear();
  res->offsets.reserve(queries.size() + 1);
  res->offsets.push_back(0);
  last_nodes_visited = 0;
  if (nodes_.empty() || queries.empty()) {
    res->offsets.resize(queries.size() + 1, 0);
    return;
  }

  // Shared walk: ONE depth-first pass over the node array; each stack
  // frame carries the subset of queries still active (= intersecting) at
  // its node. Restricted to any single query q, the popped sequence is
  // exactly q's solo DFS -- q-frames are only created while processing a
  // popped q-frame, in the same child order, under the same LIFO
  // discipline -- so per-query emission order matches RangeQuery exactly.
  // All traversal state lives in the scratch arena.
  ArenaScope scope(ScratchArena());
  Arena* arena = scope.arena();
  const uint32_t nq = static_cast<uint32_t>(queries.size());

  uint32_t* root_active = arena->AllocArray<uint32_t>(nq);
  uint32_t root_count = 0;
  const geometry::BBox& root_box = nodes_[root()].box;
  for (uint32_t q = 0; q < nq; ++q) {
    if (!queries[q].Empty() && root_box.Intersects(queries[q])) {
      root_active[root_count++] = q;
    }
  }

  struct Frame {
    int32_t node;
    const uint32_t* active;  // arena-owned query indices, ascending
    uint32_t count;
  };
  // One emission run = one contiguous slice of `pool` belonging to one
  // query (a leaf scan's hits or a contained subtree's item span). Runs
  // are recorded in emission order, which IS per-query solo order.
  struct EmitRun {
    uint32_t query;
    uint32_t pool_begin;
    uint32_t count;
  };
  ArenaVec<Frame> stack(arena, 64);
  ArenaVec<EmitRun> runs(arena, 64);
  ArenaVec<uint64_t> pool(arena, 256);
  uint64_t leaf_hits[kMaxEntriesCap];
  size_t visited = 0;
  // One atomic dispatch load for the whole batch.
  const auto leaf_scan = KernelDispatch::Get().leaf_scan;

  if (root_count > 0) {
    stack.push_back(Frame{root(), root_active, root_count});
  }
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes_[f.node];
    visited += f.count;  // one visit per (node, active query), as before
    if (IsLeaf(static_cast<size_t>(f.node))) {
      for (uint32_t a = 0; a < f.count; ++a) {
        const uint32_t q = f.active[a];
        const geometry::BBox& qb = queries[q];
        const size_t cnt = leaf_scan(
            leaf_min_x_.data() + node.begin, leaf_min_y_.data() + node.begin,
            leaf_max_x_.data() + node.begin, leaf_max_y_.data() + node.begin,
            leaf_ids_.data() + node.begin, node.end - node.begin, qb.min_x,
            qb.min_y, qb.max_x, qb.max_y, leaf_hits);
        if (cnt > 0) {
          const uint32_t begin = static_cast<uint32_t>(pool.size());
          for (size_t i = 0; i < cnt; ++i) pool.push_back(leaf_hits[i]);
          runs.push_back(EmitRun{q, begin, static_cast<uint32_t>(cnt)});
        }
      }
      continue;
    }
    // Partition the active set: queries containing the node's box emit its
    // whole contiguous item span now; the rest descend into children.
    uint32_t* descend = arena->AllocArray<uint32_t>(f.count);
    uint32_t descend_count = 0;
    for (uint32_t a = 0; a < f.count; ++a) {
      const uint32_t q = f.active[a];
      if (queries[q].Contains(node.box)) {
        const uint32_t begin = static_cast<uint32_t>(pool.size());
        for (uint32_t i = node.item_begin; i < node.item_end; ++i) {
          pool.push_back(leaf_ids_[i]);
        }
        runs.push_back(EmitRun{q, begin, node.item_end - node.item_begin});
      } else {
        descend[descend_count++] = q;
      }
    }
    if (descend_count == 0) continue;
    // SIMD child partition: each descending query runs one leaf-scan
    // sweep over the node's contiguous child span in the node SoA mirror,
    // yielding its intersecting child indices in ascending order. A
    // counting transpose then regroups the (query, child) pairs into
    // per-child active sets. Same sets, same ascending-query order, same
    // ascending-child push order as a scalar per-child loop nest -- only
    // the iteration shape changed, so the emission contract is untouched.
    const uint32_t child_n = node.end - node.begin;
    uint8_t* qc_pool = arena->AllocArray<uint8_t>(
        static_cast<size_t>(descend_count) * child_n);
    uint32_t* q_off = arena->AllocArray<uint32_t>(descend_count + 1);
    uint32_t* child_counts = arena->AllocArray<uint32_t>(child_n);
    std::memset(child_counts, 0, child_n * sizeof(uint32_t));
    uint32_t total_pairs = 0;
    for (uint32_t a = 0; a < descend_count; ++a) {
      q_off[a] = total_pairs;
      const geometry::BBox& qb = queries[descend[a]];
      const size_t cnt = leaf_scan(
          node_min_x_.data() + node.begin, node_min_y_.data() + node.begin,
          node_max_x_.data() + node.begin, node_max_y_.data() + node.begin,
          node_index_.data() + node.begin, child_n, qb.min_x, qb.min_y,
          qb.max_x, qb.max_y, leaf_hits);
      for (size_t i = 0; i < cnt; ++i) {
        // Child-relative index fits a byte: child_n <= kMaxEntriesCap.
        const uint8_t rel = static_cast<uint8_t>(leaf_hits[i] - node.begin);
        qc_pool[total_pairs + i] = rel;
        ++child_counts[rel];
      }
      total_pairs += static_cast<uint32_t>(cnt);
    }
    q_off[descend_count] = total_pairs;
    if (total_pairs == 0) continue;
    uint32_t* active_pool = arena->AllocArray<uint32_t>(total_pairs);
    uint32_t* child_off = arena->AllocArray<uint32_t>(child_n);
    uint32_t* child_cursor = arena->AllocArray<uint32_t>(child_n);
    uint32_t run_off = 0;
    for (uint32_t c = 0; c < child_n; ++c) {
      child_off[c] = run_off;
      child_cursor[c] = run_off;
      run_off += child_counts[c];
    }
    for (uint32_t a = 0; a < descend_count; ++a) {
      const uint32_t q = descend[a];
      for (uint32_t i = q_off[a]; i < q_off[a + 1]; ++i) {
        active_pool[child_cursor[qc_pool[i]]++] = q;
      }
    }
    for (uint32_t c = 0; c < child_n; ++c) {
      if (child_counts[c] > 0) {
        stack.push_back(Frame{static_cast<int32_t>(node.begin + c),
                              active_pool + child_off[c], child_counts[c]});
      }
    }
  }

  // Stable counting sort of the emission runs by query: per-query totals,
  // prefix-sum offsets, then scatter each run at its query's cursor. Runs
  // stay in emission order, so each query's ids land in solo DFS order.
  uint32_t* counts = scope.AllocFilled<uint32_t>(nq, 0u);
  for (const EmitRun& run : runs) counts[run.query] += run.count;
  size_t total = 0;
  for (uint32_t q = 0; q < nq; ++q) {
    total += counts[q];
    res->offsets.push_back(total);
  }
  res->ids.resize(total);
  size_t* cursor = arena->AllocArray<size_t>(nq);
  for (uint32_t q = 0; q < nq; ++q) cursor[q] = res->offsets[q];
  for (const EmitRun& run : runs) {
    std::memcpy(res->ids.data() + cursor[run.query],
                pool.data() + run.pool_begin, run.count * sizeof(uint64_t));
    cursor[run.query] += run.count;
  }
  last_nodes_visited = visited;
}

namespace {

struct KnnEntry {
  double dist;
  bool is_item;
  uint64_t key;  // item id, or node index
  bool operator>(const KnnEntry& o) const { return dist > o.dist; }
};

// Best-first search over an arena-backed binary heap. push/pop replicate
// std::priority_queue<Entry, vector<Entry>, greater<Entry>> exactly
// (push_back+push_heap / pop_heap+pop_back on the same comparator), so the
// emitted order -- including resolution of equal-distance ties -- is
// bit-identical to the former std::priority_queue implementation. The
// template keeps PackedRTree's private Node/Item types out of the free
// function's signature.
template <typename NodeVec, typename ItemVec>
size_t KnnWalk(const NodeVec& nodes, const ItemVec& items, size_t leaf_count,
               int32_t root, const geometry::Point& q, size_t k,
               ArenaVec<KnnEntry>* heap, std::vector<uint64_t>* out) {
  const std::greater<KnnEntry> cmp;
  heap->clear();
  const auto push = [&](KnnEntry e) {
    heap->push_back(e);
    std::push_heap(heap->begin(), heap->end(), cmp);
  };
  size_t visited = 0;
  size_t emitted = 0;
  // At most k ids are emitted per walk; reserving up front keeps the
  // emission loop free of reallocation.
  out->reserve(out->size() + k);
  push(KnnEntry{nodes[root].box.MinDistance(q), false,
                static_cast<uint64_t>(root)});
  while (!heap->empty() && emitted < k) {
    const KnnEntry e = (*heap)[0];
    std::pop_heap(heap->begin(), heap->end(), cmp);
    heap->pop_back();
    if (e.is_item) {
      out->push_back(e.key);
      ++emitted;
      continue;
    }
    ++visited;
    const auto& node = nodes[e.key];
    if (e.key < leaf_count) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        push(KnnEntry{items[i].box.MinDistance(q), true, items[i].id});
      }
    } else {
      for (uint32_t c = node.begin; c < node.end; ++c) {
        push(KnnEntry{nodes[c].box.MinDistance(q), false,
                      static_cast<uint64_t>(c)});
      }
    }
  }
  return visited;
}

}  // namespace

std::vector<uint64_t> PackedRTree::Knn(const geometry::Point& q,
                                       size_t k) const {
  std::vector<uint64_t> out;
  last_nodes_visited = 0;
  if (nodes_.empty() || k == 0) return out;
  ArenaScope scope(ScratchArena());
  ArenaVec<KnnEntry> heap(scope.arena(), 64);
  last_nodes_visited =
      KnnWalk(nodes_, items_, leaf_count_, root(), q, k, &heap, &out);
  return out;
}

PackedRTree::BatchResults PackedRTree::KnnMany(
    const std::vector<geometry::Point>& qs, size_t k) const {
  BatchResults res;
  res.offsets.reserve(qs.size() + 1);
  res.offsets.push_back(0);
  // One arena heap serves the whole batch (cleared, capacity kept), so the
  // per-query frontier costs zero allocations after the first query.
  ArenaScope scope(ScratchArena());
  ArenaVec<KnnEntry> heap(scope.arena(), 64);
  size_t visited = 0;
  for (const geometry::Point& q : qs) {
    if (!nodes_.empty() && k > 0) {
      visited +=
          KnnWalk(nodes_, items_, leaf_count_, root(), q, k, &heap, &res.ids);
    }
    res.offsets.push_back(res.ids.size());
  }
  last_nodes_visited = visited;
  return res;
}

BoxGapScan::BoxGapScan(const PackedRTree& tree, const geometry::BBox& query)
    : tree_(tree), query_(query) {
  if (!tree_.nodes_.empty()) {
    pq_.push(Entry{BoxGap(query_, tree_.nodes_.back().box), false,
                   static_cast<uint64_t>(tree_.root())});
  }
}

bool BoxGapScan::Next(uint64_t* id, double* gap) {
  while (!pq_.empty()) {
    const Entry e = pq_.top();
    pq_.pop();
    if (e.is_item) {
      *id = e.key;
      *gap = e.gap;
      return true;
    }
    const PackedRTree::Node& node = tree_.nodes_[e.key];
    if (tree_.IsLeaf(static_cast<size_t>(e.key))) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const PackedRTree::Item& it = tree_.items_[i];
        pq_.push(Entry{BoxGap(query_, it.box), true, it.id});
      }
    } else {
      for (uint32_t c = node.begin; c < node.end; ++c) {
        pq_.push(Entry{BoxGap(query_, tree_.nodes_[c].box), false,
                       static_cast<uint64_t>(c)});
      }
    }
  }
  return false;
}

}  // namespace kernels
}  // namespace sidq

#include "kernels/packed_rtree.h"

#include <algorithm>
#include <cmath>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "core/logging.h"

namespace sidq {
namespace kernels {

double BoxGap(const geometry::BBox& a, const geometry::BBox& b) {
  const double dx = std::max({a.min_x - b.max_x, b.min_x - a.max_x, 0.0});
  const double dy = std::max({a.min_y - b.max_y, b.min_y - a.max_y, 0.0});
  return std::sqrt(dx * dx + dy * dy);
}

PackedRTree::PackedRTree(size_t max_entries) : max_entries_(max_entries) {
  SIDQ_CHECK(max_entries >= 4) << "max_entries must be >= 4";
  SIDQ_CHECK(max_entries <= kMaxEntriesCap)
      << "max_entries must be <= " << kMaxEntriesCap;
}

void PackedRTree::BulkLoad(std::vector<Item> items) {
  items_ = std::move(items);
  nodes_.clear();
  leaf_count_ = 0;
  height_ = 0;
  leaf_min_x_.clear();
  leaf_min_y_.clear();
  leaf_max_x_.clear();
  leaf_max_y_.clear();
  leaf_ids_.clear();
  if (items_.empty()) return;
  const size_t n = items_.size();
  for (const Item& it : items_) {
    // An inverted box has a NaN center, which would break the strict weak
    // ordering of the STR sorts below.
    SIDQ_CHECK(!it.box.Empty()) << "PackedRTree: empty item box";
  }

  if (n > max_entries_) {
    // STR: P = ceil(n / M) leaf pages, S = ceil(sqrt(P)) vertical slices;
    // sort by center x, then each slice by center y.
    const size_t pages = (n + max_entries_ - 1) / max_entries_;
    const size_t slices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(pages))));
    const size_t slice_cap = (n + slices - 1) / slices;
    std::sort(items_.begin(), items_.end(),
              [](const Item& a, const Item& b) {
                return a.box.Center().x < b.box.Center().x;
              });
    for (size_t s = 0; s < n; s += slice_cap) {
      const size_t s_end = std::min(s + slice_cap, n);
      std::sort(items_.begin() + s, items_.begin() + s_end,
                [](const Item& a, const Item& b) {
                  return a.box.Center().y < b.box.Center().y;
                });
    }
  }

  // Columnar mirror of the (now STR-sorted) items for SIMD leaf scans.
  leaf_min_x_.reserve(n);
  leaf_min_y_.reserve(n);
  leaf_max_x_.reserve(n);
  leaf_max_y_.reserve(n);
  leaf_ids_.reserve(n);
  for (const Item& it : items_) {
    leaf_min_x_.push_back(it.box.min_x);
    leaf_min_y_.push_back(it.box.min_y);
    leaf_max_x_.push_back(it.box.max_x);
    leaf_max_y_.push_back(it.box.max_y);
    leaf_ids_.push_back(it.id);
  }

  // Leaf level: consecutive runs of max_entries_ items.
  for (size_t p = 0; p < n; p += max_entries_) {
    const size_t p_end = std::min(p + max_entries_, n);
    Node leaf;
    leaf.begin = static_cast<uint32_t>(p);
    leaf.end = static_cast<uint32_t>(p_end);
    leaf.item_begin = leaf.begin;
    leaf.item_end = leaf.end;
    for (size_t i = p; i < p_end; ++i) leaf.box.Extend(items_[i].box);
    nodes_.push_back(leaf);
  }
  leaf_count_ = nodes_.size();
  height_ = 1;

  // Pack each level into the next until a single root remains. Children of
  // consecutive parents are consecutive nodes, so a [begin, end) span per
  // parent suffices.
  size_t level_begin = 0;
  size_t level_end = nodes_.size();
  while (level_end - level_begin > 1) {
    for (size_t i = level_begin; i < level_end; i += max_entries_) {
      const size_t i_end = std::min(i + max_entries_, level_end);
      Node parent;
      parent.begin = static_cast<uint32_t>(i);
      parent.end = static_cast<uint32_t>(i_end);
      parent.item_begin = nodes_[i].item_begin;
      parent.item_end = nodes_[i_end - 1].item_end;
      for (size_t c = i; c < i_end; ++c) parent.box.Extend(nodes_[c].box);
      nodes_.push_back(parent);
    }
    level_begin = level_end;
    level_end = nodes_.size();
    ++height_;
  }
}

void PackedRTree::ScanLeaf(const Node& node, const geometry::BBox& query,
                           std::vector<uint64_t>* out) const {
  const uint32_t b = node.begin;
  const uint32_t count = node.end - node.begin;
  uint64_t tmp[kMaxEntriesCap];
#if defined(__AVX512F__)
  // Masked compares over the columnar leaf arrays; matching ids are
  // compacted with a compress-store. _CMP_LE_OQ agrees with scalar <= on
  // every non-NaN input, so the emitted SET matches the scalar scan.
  uint64_t* dst = tmp;
  const __m512d qminx = _mm512_set1_pd(query.min_x);
  const __m512d qminy = _mm512_set1_pd(query.min_y);
  const __m512d qmaxx = _mm512_set1_pd(query.max_x);
  const __m512d qmaxy = _mm512_set1_pd(query.max_y);
  uint32_t j = 0;
  for (; j + 8 <= count; j += 8) {
    const __mmask8 m =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(&leaf_min_x_[b + j]), qmaxx,
                           _CMP_LE_OQ) &
        _mm512_cmp_pd_mask(qminx, _mm512_loadu_pd(&leaf_max_x_[b + j]),
                           _CMP_LE_OQ) &
        _mm512_cmp_pd_mask(_mm512_loadu_pd(&leaf_min_y_[b + j]), qmaxy,
                           _CMP_LE_OQ) &
        _mm512_cmp_pd_mask(qminy, _mm512_loadu_pd(&leaf_max_y_[b + j]),
                           _CMP_LE_OQ);
    _mm512_mask_compressstoreu_epi64(
        dst, m, _mm512_loadu_si512(&leaf_ids_[b + j]));
    dst += static_cast<uint32_t>(__builtin_popcount(m));
  }
  if (j < count) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (count - j)) - 1);
    const __mmask8 m =
        _mm512_mask_cmp_pd_mask(
            tail, _mm512_maskz_loadu_pd(tail, &leaf_min_x_[b + j]), qmaxx,
            _CMP_LE_OQ) &
        _mm512_mask_cmp_pd_mask(
            tail, qminx, _mm512_maskz_loadu_pd(tail, &leaf_max_x_[b + j]),
            _CMP_LE_OQ) &
        _mm512_mask_cmp_pd_mask(
            tail, _mm512_maskz_loadu_pd(tail, &leaf_min_y_[b + j]), qmaxy,
            _CMP_LE_OQ) &
        _mm512_mask_cmp_pd_mask(
            tail, qminy, _mm512_maskz_loadu_pd(tail, &leaf_max_y_[b + j]),
            _CMP_LE_OQ);
    _mm512_mask_compressstoreu_epi64(
        dst, m, _mm512_maskz_loadu_epi64(tail, &leaf_ids_[b + j]));
    dst += static_cast<uint32_t>(__builtin_popcount(m));
  }
  out->insert(out->end(), tmp, dst);
#else
  // Portable shape: a branch-free hit-mask pass the compiler can
  // auto-vectorize, then a branchless compaction.
  uint32_t hit[kMaxEntriesCap];
  for (uint32_t j = 0; j < count; ++j) {
    hit[j] = static_cast<uint32_t>(leaf_min_x_[b + j] <= query.max_x) &
             static_cast<uint32_t>(query.min_x <= leaf_max_x_[b + j]) &
             static_cast<uint32_t>(leaf_min_y_[b + j] <= query.max_y) &
             static_cast<uint32_t>(query.min_y <= leaf_max_y_[b + j]);
  }
  uint32_t cnt = 0;
  for (uint32_t j = 0; j < count; ++j) {
    tmp[cnt] = leaf_ids_[b + j];
    cnt += hit[j];
  }
  out->insert(out->end(), tmp, tmp + cnt);
#endif
}

std::vector<uint64_t> PackedRTree::RangeQuery(
    const geometry::BBox& query) const {
  std::vector<uint64_t> out;
  last_nodes_visited = 0;
  if (nodes_.empty() || query.Empty()) return out;
  if (!nodes_[root()].box.Intersects(query)) {
    last_nodes_visited = 1;
    return out;
  }
  // Children are intersection-tested before they are pushed, so every
  // popped node is known to intersect.
  std::vector<int32_t> stack{root()};
  while (!stack.empty()) {
    const int32_t n = stack.back();
    stack.pop_back();
    ++last_nodes_visited;
    const Node& node = nodes_[n];
    if (IsLeaf(static_cast<size_t>(n))) {
      ScanLeaf(node, query, &out);
    } else if (query.Contains(node.box)) {
      // Whole subtree matches: its items are one contiguous run.
      out.insert(out.end(), leaf_ids_.data() + node.item_begin,
                 leaf_ids_.data() + node.item_end);
    } else {
      for (uint32_t c = node.begin; c < node.end; ++c) {
        if (nodes_[c].box.Intersects(query)) {
          stack.push_back(static_cast<int32_t>(c));
        }
      }
    }
  }
  return out;
}

PackedRTree::BatchResults PackedRTree::RangeQueryMany(
    const std::vector<geometry::BBox>& queries) const {
  BatchResults res;
  RangeQueryMany(queries, &res);
  return res;
}

void PackedRTree::RangeQueryMany(const std::vector<geometry::BBox>& queries,
                                 BatchResults* res) const {
  res->ids.clear();
  res->offsets.clear();
  res->offsets.reserve(queries.size() + 1);
  res->offsets.push_back(0);
  std::vector<int32_t> stack;  // reused across queries
  size_t visited = 0;
  for (const geometry::BBox& query : queries) {
    if (!nodes_.empty() && !query.Empty() &&
        nodes_[root()].box.Intersects(query)) {
      stack.push_back(root());
      while (!stack.empty()) {
        const int32_t n = stack.back();
        stack.pop_back();
        ++visited;
        const Node& node = nodes_[n];
        if (IsLeaf(static_cast<size_t>(n))) {
          ScanLeaf(node, query, &res->ids);
        } else if (query.Contains(node.box)) {
          res->ids.insert(res->ids.end(), leaf_ids_.data() + node.item_begin,
                          leaf_ids_.data() + node.item_end);
        } else {
          for (uint32_t c = node.begin; c < node.end; ++c) {
            if (nodes_[c].box.Intersects(query)) {
              stack.push_back(static_cast<int32_t>(c));
            }
          }
        }
      }
    }
    res->offsets.push_back(res->ids.size());
  }
  last_nodes_visited = visited;
}

std::vector<uint64_t> PackedRTree::Knn(const geometry::Point& q,
                                       size_t k) const {
  std::vector<uint64_t> out;
  last_nodes_visited = 0;
  if (nodes_.empty() || k == 0) return out;
  struct Entry {
    double dist;
    bool is_item;
    uint64_t key;  // item id or node index
    bool operator>(const Entry& o) const { return dist > o.dist; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  pq.push(Entry{nodes_.back().box.MinDistance(q), false,
                static_cast<uint64_t>(root())});
  while (!pq.empty() && out.size() < k) {
    const Entry e = pq.top();
    pq.pop();
    if (e.is_item) {
      out.push_back(e.key);
      continue;
    }
    ++last_nodes_visited;
    const Node& node = nodes_[e.key];
    if (IsLeaf(static_cast<size_t>(e.key))) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        pq.push(Entry{items_[i].box.MinDistance(q), true, items_[i].id});
      }
    } else {
      for (uint32_t c = node.begin; c < node.end; ++c) {
        pq.push(Entry{nodes_[c].box.MinDistance(q), false,
                      static_cast<uint64_t>(c)});
      }
    }
  }
  return out;
}

PackedRTree::BatchResults PackedRTree::KnnMany(
    const std::vector<geometry::Point>& qs, size_t k) const {
  BatchResults res;
  res.offsets.reserve(qs.size() + 1);
  res.offsets.push_back(0);
  for (const geometry::Point& q : qs) {
    const std::vector<uint64_t> one = Knn(q, k);
    res.ids.insert(res.ids.end(), one.begin(), one.end());
    res.offsets.push_back(res.ids.size());
  }
  return res;
}

BoxGapScan::BoxGapScan(const PackedRTree& tree, const geometry::BBox& query)
    : tree_(tree), query_(query) {
  if (!tree_.nodes_.empty()) {
    pq_.push(Entry{BoxGap(query_, tree_.nodes_.back().box), false,
                   static_cast<uint64_t>(tree_.root())});
  }
}

bool BoxGapScan::Next(uint64_t* id, double* gap) {
  while (!pq_.empty()) {
    const Entry e = pq_.top();
    pq_.pop();
    if (e.is_item) {
      *id = e.key;
      *gap = e.gap;
      return true;
    }
    const PackedRTree::Node& node = tree_.nodes_[e.key];
    if (tree_.IsLeaf(static_cast<size_t>(e.key))) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const PackedRTree::Item& it = tree_.items_[i];
        pq_.push(Entry{BoxGap(query_, it.box), true, it.id});
      }
    } else {
      for (uint32_t c = node.begin; c < node.end; ++c) {
        pq_.push(Entry{BoxGap(query_, tree_.nodes_[c].box), false,
                       static_cast<uint64_t>(c)});
      }
    }
  }
  return false;
}

}  // namespace kernels
}  // namespace sidq

#include "kernels/soa.h"

#include <array>

#include "core/mutex.h"

namespace sidq {
namespace kernels {

SoaBuffer SoaBuffer::FromTrajectory(const Trajectory& tr) {
  SoaBuffer buf;
  const std::vector<TrajectoryPoint>& pts = tr.points();
  buf.xs_.reserve(pts.size());
  buf.ys_.reserve(pts.size());
  buf.ts_.reserve(pts.size());
  for (const TrajectoryPoint& pt : pts) {
    buf.xs_.push_back(pt.p.x);
    buf.ys_.push_back(pt.p.y);
    buf.ts_.push_back(pt.t);
  }
  return buf;
}

SoaBuffer SoaBuffer::FromLatLon(
    const std::vector<std::pair<Timestamp, geometry::LatLon>>& samples,
    const geometry::LocalProjection& proj) {
  SoaBuffer buf;
  buf.xs_.reserve(samples.size());
  buf.ys_.reserve(samples.size());
  buf.ts_.reserve(samples.size());
  for (const auto& [t, geo] : samples) {
    const geometry::Point p = proj.Forward(geo);
    buf.xs_.push_back(p.x);
    buf.ys_.push_back(p.y);
    buf.ts_.push_back(t);
  }
  return buf;
}

namespace {

// Striped locks guarding Trajectory::derived_cache() slots: the slot itself
// is a plain (unsynchronized) member, so concurrent Of() calls on the same
// object serialize here. Striping by object address keeps the table tiny
// while making collisions (two distinct trajectories sharing a stripe)
// merely a throughput, never a correctness, concern.
//
// The guarded data (the cache slot) lives outside this TU, so the
// lock<->data relation cannot be expressed with SIDQ_GUARDED_BY; the
// capability map in DESIGN.md ("Concurrency & locking discipline") records
// it instead, and the annotated MutexLock below keeps the acquire/release
// pairing under analysis.
constexpr size_t kCacheStripes = 64;

Mutex& StripeFor(const Trajectory* tr) {
  static std::array<Mutex, kCacheStripes> stripes;
  const size_t h = reinterpret_cast<uintptr_t>(tr) / alignof(Trajectory);
  return stripes[h % kCacheStripes];
}

}  // namespace

TrajectoryView TrajectoryView::Of(const Trajectory& tr) {
  std::shared_ptr<const SoaBuffer> buffer;
  {
    const MutexLock lock(StripeFor(&tr));
    Trajectory::DerivedCache& slot = tr.derived_cache();
    if (slot.revision == tr.revision() && slot.value != nullptr) {
      buffer = std::static_pointer_cast<const SoaBuffer>(slot.value);
    } else {
      buffer =
          std::make_shared<const SoaBuffer>(SoaBuffer::FromTrajectory(tr));
      slot.value = buffer;
      slot.revision = tr.revision();
    }
  }
  return TrajectoryView(buffer, buffer->view());
}

}  // namespace kernels
}  // namespace sidq

#include "kernels/scalar_ref.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "geometry/point.h"
#include "geometry/segment.h"

namespace sidq {
namespace kernels {
namespace scalar {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double DtwDistance(const Trajectory& a, const Trajectory& b, int band) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : kInf;
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    size_t lo = 1, hi = m;
    if (band > 0) {
      const double center = static_cast<double>(i) * m / n;
      lo = static_cast<size_t>(std::max(1.0, center - band));
      hi = static_cast<size_t>(
          std::min(static_cast<double>(m), center + band));
    }
    for (size_t j = lo; j <= hi; ++j) {
      const double d = geometry::Distance(a[i - 1].p, b[j - 1].p);
      const double best = std::min({prev[j], prev[j - 1], cur[j - 1]});
      if (best != kInf) cur[j] = d + best;
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double FrechetDistance(const Trajectory& a, const Trajectory& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : kInf;
  std::vector<double> prev(m), cur(m);
  for (size_t j = 0; j < m; ++j) {
    const double d = geometry::Distance(a[0].p, b[j].p);
    prev[j] = j == 0 ? d : std::max(prev[j - 1], d);
  }
  for (size_t i = 1; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double d = geometry::Distance(a[i].p, b[j].p);
      double reach;
      if (j == 0) {
        reach = prev[0];
      } else {
        reach = std::min({prev[j], prev[j - 1], cur[j - 1]});
      }
      cur[j] = std::max(reach, d);
    }
    std::swap(prev, cur);
  }
  return prev[m - 1];
}

double EdrDistance(const Trajectory& a, const Trajectory& b,
                   double epsilon_m) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 0.0;
  if (n == 0 || m == 0) return 1.0;
  std::vector<double> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<double>(i);
    for (size_t j = 1; j <= m; ++j) {
      const bool match =
          geometry::Distance(a[i - 1].p, b[j - 1].p) <= epsilon_m;
      const double sub = prev[j - 1] + (match ? 0.0 : 1.0);
      cur[j] = std::min({sub, prev[j] + 1.0, cur[j - 1] + 1.0});
    }
    std::swap(prev, cur);
  }
  return prev[m] / static_cast<double>(std::max(n, m));
}

double LcssSimilarity(const Trajectory& a, const Trajectory& b,
                      double epsilon_m, Timestamp delta_ms) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return 0.0;
  std::vector<double> prev(m + 1, 0.0), cur(m + 1, 0.0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const bool match =
          geometry::Distance(a[i - 1].p, b[j - 1].p) <= epsilon_m &&
          std::abs(a[i - 1].t - b[j - 1].t) <= delta_ms;
      if (match) {
        cur[j] = prev[j - 1] + 1.0;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[m] / static_cast<double>(std::min(n, m));
}

void PairwiseSqDist(const Trajectory& a, const Trajectory& b, double* out) {
  const size_t m = b.size();
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < m; ++j) {
      out[i * m + j] = geometry::DistanceSq(a[i].p, b[j].p);
    }
  }
}

double PointToPolylineDist(const geometry::Point& p, const Trajectory& tr) {
  const size_t n = tr.size();
  if (n == 0) return kInf;
  if (n == 1) return geometry::Distance(p, tr[0].p);
  double best = kInf;
  for (size_t i = 0; i + 1 < n; ++i) {
    best = std::min(
        best, geometry::PointSegmentDistance(p, tr[i].p, tr[i + 1].p));
  }
  return best;
}

void ConsecutiveDist(const Trajectory& tr, double* out) {
  for (size_t i = 0; i + 1 < tr.size(); ++i) {
    out[i] = geometry::Distance(tr[i].p, tr[i + 1].p);
  }
}

void PointToManyDist(const geometry::Point& p, const Trajectory& tr,
                     double* out) {
  for (size_t i = 0; i < tr.size(); ++i) {
    out[i] = geometry::Distance(tr[i].p, p);
  }
}

}  // namespace scalar
}  // namespace kernels
}  // namespace sidq

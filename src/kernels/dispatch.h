#pragma once

#include <cstddef>
#include <cstdint>

namespace sidq {
namespace kernels {

// Runtime ISA dispatch for the kernel layer.
//
// Every distance/DP/leaf-scan primitive is compiled four times from one
// shared implementation (kernel_impl.inc), each translation unit targeting
// one ISA tier:
//
//   scalar   auto-vectorization disabled -- the bit-exactness oracle, the
//            same compilation mode as the AoS reference in scalar_ref.cc
//   sse2     the x86-64 baseline (plain build flags; on non-x86 this is
//            simply the portably auto-vectorized build)
//   avx2     compiled with -mavx2 when the compiler supports it
//   avx512   compiled with -mavx512f when the compiler supports it, and
//            additionally guarded by a CPUID probe at runtime
//
// The registry probes the CPU once (GCC/Clang __builtin_cpu_supports) and
// selects the widest tier that is both compiled in and supported by the
// host. Because every tier is built with FP contraction off and the
// primitives avoid reassociating reductions, all tiers produce
// BIT-IDENTICAL results -- the dispatch choice changes speed, never
// output. tests/kernels_dispatch_test.cc asserts this checksum equality
// for every compiled tier, and run_all.sh byte-compares a forced-scalar
// bench run against the dispatched one.
//
// Override: set SIDQ_FORCE_ISA=scalar|sse2|avx2|avx512 in the environment
// to pin the tier (CI keeps the oracle leg exercised this way). Forcing a
// tier the host cannot run falls back to the widest available tier at or
// below the request, with a warning.

enum class Isa : uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

inline constexpr int kIsaCount = 4;

const char* IsaName(Isa isa);

// The per-primitive entry points one ISA tier provides. All functions have
// the exact semantics documented in distance.h / packed_rtree.h; `ops.isa`
// records which tier the table belongs to.
struct KernelOps {
  void (*pairwise_sq_dist)(const double* ax, const double* ay, size_t n,
                           const double* bx, const double* by, size_t m,
                           double* out);
  void (*dist_row)(double qx, double qy, const double* bx, const double* by,
                   size_t lo, size_t hi, double* out);
  void (*point_to_many_dist)(double px, double py, const double* xs,
                             const double* ys, size_t n, double* out);
  void (*consecutive_dist)(const double* xs, const double* ys, size_t n,
                           double* out);
  double (*point_to_polyline_dist)(double px, double py, const double* xs,
                                   const double* ys, size_t n);
  void (*dtw_row)(double qx, double qy, const double* bx, const double* by,
                  size_t m, size_t lo, size_t hi, const double* prev,
                  double* cur, double* dist_scratch);
  void (*frechet_row)(double qx, double qy, const double* bx,
                      const double* by, size_t m, const double* prev,
                      double* cur, double* dist_scratch);
  // Full n x m discrete-Frechet DP via an anti-diagonal wavefront (cells
  // of one anti-diagonal are data-parallel); `scratch` holds 3*m doubles.
  // Bit-identical to iterating frechet_row over the rows.
  double (*frechet_full)(const double* ax, const double* ay, size_t n,
                         const double* bx, const double* by, size_t m,
                         double* scratch);
  // Branch-free box-intersection sweep over columnar leaf arrays; writes
  // the ids of hits to `out` (capacity >= count) and returns the hit
  // count. The emitted id sequence preserves leaf order for every tier.
  size_t (*leaf_scan)(const double* min_x, const double* min_y,
                      const double* max_x, const double* max_y,
                      const uint64_t* ids, size_t count, double qmin_x,
                      double qmin_y, double qmax_x, double qmax_y,
                      uint64_t* out);
  Isa isa;
};

class KernelDispatch {
 public:
  // The active tier's table, resolved once per process from CPUID and
  // SIDQ_FORCE_ISA. Thread-safe.
  static const KernelOps& Get();

  // The tier Get() resolved to.
  static Isa Active();

  // The table for one specific tier, or nullptr when that tier is not
  // compiled in or the host CPU cannot run it. For tests: iterating every
  // non-null table and comparing checksums against Table(Isa::kScalar) is
  // the dispatch equivalence property.
  static const KernelOps* Table(Isa isa);

  // Widest tier that is compiled in and CPU-supported.
  static Isa Best();

  // True when `isa` is compiled in and the host CPU can execute it.
  static bool Available(Isa isa);

  // Re-reads SIDQ_FORCE_ISA and re-resolves the active tier. Test-only:
  // production code must treat the dispatch choice as fixed at startup.
  static void ReinitForTest();
};

}  // namespace kernels
}  // namespace sidq

#pragma once

#include <cstddef>

#include "core/types.h"

namespace sidq {
namespace kernels {

// Batched distance primitives for the similarity / outlier / map-matching
// hot paths. Every function is a flat-array loop over SoA columns (see
// soa.h). As of kernel layer v2 these are thin shims over the runtime ISA
// dispatch table (see dispatch.h): each primitive is compiled per ISA tier
// from one shared implementation with FP contraction OFF
// (src/kernels/CMakeLists.txt), so every operation is a correctly-rounded
// IEEE op executed in the same order at every vector width. Results are
// therefore BIT-IDENTICAL to the scalar path, not merely close -- the
// equivalence property tests, kernels_dispatch_test, and the bench_kernels
// checksum gate all assert exact equality.
//
// Operand-order convention: a distance between a "query" sample q and a
// column sample j is computed as dq = q - column[j] (matching
// geometry::Distance(q, col) = (q - col).Norm()), except where noted.

// out[i*m + j] = squared Euclidean distance between a-sample i and
// b-sample j. `out` must hold n*m doubles.
void PairwiseSqDist(const double* ax, const double* ay, size_t n,
                    const double* bx, const double* by, size_t m,
                    double* out);

// out[j] = sqrt((qx-bx[j])^2 + (qy-by[j])^2) for j in [lo, hi).
// Entries outside [lo, hi) are left untouched.
void DistRow(double qx, double qy, const double* bx, const double* by,
             size_t lo, size_t hi, double* out);

// out[j] = distance from column sample j to (px, py), computed as
// (sample - point): matches geometry::Distance(sample, point).
void PointToManyDist(double px, double py, const double* xs, const double* ys,
                     size_t n, double* out);

// out[i] = distance between consecutive samples i and i+1, for
// i in [0, n-1). `out` must hold n-1 doubles; no-op when n < 2.
void ConsecutiveDist(const double* xs, const double* ys, size_t n,
                     double* out);

// Minimum distance from (px, py) to the polyline through the n column
// samples. Returns the point distance for n == 1 and +infinity for n == 0.
// Matches min over segments of geometry::PointSegmentDistance.
double PointToPolylineDist(double px, double py, const double* xs,
                           const double* ys, size_t n);

// One row of the DTW dynamic program (columns of `b`, rows of `a`):
// for 1-based DP columns j in [lo, hi],
//     cur[j] = d(q, b[j-1]) + min(prev[j], prev[j-1], cur[j-1])
// with cur entries outside the band set to +infinity and the sum skipped
// when all three predecessors are +infinity. `prev`/`cur` hold m+1 DP
// cells. `dist_scratch` (hi-lo+1 doubles, may be nullptr) enables the
// two-pass form on wide bands: a vectorized squared-distance sweep into
// the scratch, then the short sequential sqrt/min/add recurrence. Narrow
// bands (or a null scratch) use the fused single-pass form. Both forms
// produce the same outputs to the bit: the squared distance rounds to a
// double either way, so sqrt of the staged value equals the fused sqrt.
void DtwRowKernel(double qx, double qy, const double* bx, const double* by,
                  size_t m, size_t lo, size_t hi, const double* prev,
                  double* cur, double* dist_scratch);

// One row i >= 1 of the discrete-Frechet dynamic program:
//     cur[j] = max(min(prev[j], prev[j-1], cur[j-1]), d(q, b[j]))
// with the j == 0 column taking reach = prev[0]. `prev`/`cur` hold m
// cells; `dist_scratch` holds m doubles (reserved scratch -- the current
// best-measured form is fully fused and does not use it).
void FrechetRowKernel(double qx, double qy, const double* bx,
                      const double* by, size_t m, const double* prev,
                      double* cur, double* dist_scratch);

// The full n x m discrete-Frechet DP (n, m >= 1): returns D[n-1][m-1].
// Processes the table in anti-diagonal wavefronts -- cells of one
// anti-diagonal are independent, so the whole diagonal vectorizes and the
// row form's carried min/max recurrence disappears. `scratch` holds 3*m
// doubles (three rolling diagonals). Bit-identical to seeding row 0 with
// the prefix max of DistRow and iterating FrechetRowKernel: every cell
// evaluates the same expression with the same operand order, and min/max
// never round.
double FrechetFullKernel(const double* ax, const double* ay, size_t n,
                         const double* bx, const double* by, size_t m,
                         double* scratch);

}  // namespace kernels
}  // namespace sidq

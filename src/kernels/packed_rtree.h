#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {
namespace kernels {

// Minimum distance between two boxes (0 when they intersect). Operation
// order matches the BoxGap helper the similarity search originally used,
// so gaps computed here are bit-identical to that path. Returns +infinity
// when either box is empty (inverted).
double BoxGap(const geometry::BBox& a, const geometry::BBox& b);

// A read-only, bulk-loaded R-tree packed into contiguous arrays: the
// items in leaf order and the nodes in level order (all leaves first,
// root last). Compared to index::RTree this trades dynamic inserts for
// pointer-free traversal over dense arrays -- child ranges are [begin, end)
// index spans, and batched query entry points amortize the traversal stack
// and result buffers across a whole query set. Leaf boxes are additionally
// stored COLUMNAR (min_x/min_y/max_x/max_y in separate arrays mirroring
// leaf order, ~40 extra bytes per item) so the per-leaf intersection test
// is a branch-free SIMD sweep instead of a branchy AoS scan; because the
// packing is level-by-level, every subtree's items are one contiguous run,
// so a query that CONTAINS a node's box emits the whole span with a single
// linear copy. Wide leaves (max_entries 32..64) are cheap under the
// vectorized scan and cut traversal overhead for range workloads; the
// default 16 matches index::RTree fanout. Drop-in alternative for
// read-mostly workloads; returns the same result SETS as index::RTree
// (enumeration order may differ, except Knn which is distance-ordered in
// both).
class PackedRTree {
 public:
  struct Item {
    uint64_t id;
    geometry::BBox box;
  };

  // Concatenated per-query results: ids of query q live at
  // [offsets[q], offsets[q+1]) in `ids`.
  struct BatchResults {
    std::vector<uint64_t> ids;
    std::vector<size_t> offsets;

    [[nodiscard]] size_t queries() const {
      return offsets.empty() ? 0 : offsets.size() - 1;
    }
    [[nodiscard]] const uint64_t* begin_of(size_t q) const {
      return ids.data() + offsets[q];
    }
    [[nodiscard]] const uint64_t* end_of(size_t q) const {
      return ids.data() + offsets[q + 1];
    }
    [[nodiscard]] size_t count_of(size_t q) const {
      return offsets[q + 1] - offsets[q];
    }
  };

  // Hard cap on max_entries; bounds the fixed scratch buffers of the
  // vectorized leaf scan.
  static constexpr size_t kMaxEntriesCap = 256;

  explicit PackedRTree(size_t max_entries = 16);

  // Bulk-loads (replaces) the tree contents with STR packing. Item boxes
  // must be non-empty: an inverted box has a NaN center, which would
  // poison the STR sort (checked).
  void BulkLoad(std::vector<Item> items);

  [[nodiscard]] size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] int height() const { return height_; }

  // Ids of items whose box intersects `query` (same set as
  // index::RTree::RangeQuery).
  [[nodiscard]] std::vector<uint64_t> RangeQuery(
      const geometry::BBox& query) const;
  // Batched range query over a SHARED tree walk: one DFS visits each node
  // at most once carrying the subset of queries still active there, so a
  // fleet of probes pays one pass over the node array instead of one
  // root-to-leaf traversal each. Traversal state (frames, active-query
  // subsets, emission runs) lives in the thread-local scratch arena --
  // zero heap allocations beyond the caller-visible result buffers.
  // Contract: for every query q, the id sequence [begin_of(q), end_of(q))
  // is IDENTICAL to what RangeQuery(queries[q]) returns -- the shared walk
  // restricted to q pops q's nodes in exactly the solo DFS order.
  [[nodiscard]] BatchResults RangeQueryMany(
      const std::vector<geometry::BBox>& queries) const;
  // Same, into caller-owned buffers (cleared, capacity kept) so repeated
  // batches reuse their result allocations.
  void RangeQueryMany(const std::vector<geometry::BBox>& queries,
                      BatchResults* res) const;

  // Ids of the k items nearest to `q` by box MinDistance, nearest first.
  [[nodiscard]] std::vector<uint64_t> Knn(const geometry::Point& q,
                                          size_t k) const;
  // Batched k-nearest-neighbour queries. The best-first frontier heap is
  // arena-backed and reused across the whole batch (heap ops replicate
  // std::priority_queue push/pop exactly, so per-query output -- including
  // tie resolution -- is identical to Knn).
  [[nodiscard]] BatchResults KnnMany(const std::vector<geometry::Point>& qs,
                                     size_t k) const;

  // Items in leaf order (for tests / bulk consumers).
  [[nodiscard]] const std::vector<Item>& items() const { return items_; }

  // Number of nodes visited by the last RangeQuery / Knn on this thread's
  // call (pruning statistics; mirrors index::RTree).
  mutable size_t last_nodes_visited = 0;

 private:
  friend class BoxGapScan;

  // begin/end index into items_ (leaf nodes) or nodes_ (internal nodes).
  // item_begin/item_end always span the node's descendant items: because
  // packing is level-by-level over consecutive children, every subtree's
  // items form one contiguous run of items_ -- which is what makes the
  // contains-whole-subtree fast path in RangeQuery a linear copy.
  struct Node {
    geometry::BBox box;
    uint32_t begin = 0;
    uint32_t end = 0;
    uint32_t item_begin = 0;
    uint32_t item_end = 0;
  };

  [[nodiscard]] bool IsLeaf(size_t node) const { return node < leaf_count_; }
  [[nodiscard]] int32_t root() const {
    return nodes_.empty() ? -1 : static_cast<int32_t>(nodes_.size()) - 1;
  }

  // Appends the ids of this leaf's items intersecting `query` to `out`
  // (dispatched SIMD sweep over the columnar leaf arrays).
  void ScanLeaf(const Node& node, const geometry::BBox& query,
                std::vector<uint64_t>* out) const;
  // Same sweep into a raw buffer (capacity >= node entry count); returns
  // the hit count. The shared-walk batch traversal writes arena scratch.
  size_t ScanLeafInto(const Node& node, const geometry::BBox& query,
                      uint64_t* out) const;

  size_t max_entries_;
  size_t leaf_count_ = 0;
  int height_ = 0;
  std::vector<Item> items_;  // leaf order
  std::vector<Node> nodes_;  // level order: leaves first, root last
  // Columnar mirror of items_ (same order): leaf scans read these.
  std::vector<double> leaf_min_x_, leaf_min_y_, leaf_max_x_, leaf_max_y_;
  std::vector<uint64_t> leaf_ids_;
  // Columnar mirror of nodes_' boxes (same level order) plus an identity
  // index column: the shared-walk batch traversal partitions a node's
  // active query set by running the SIMD leaf-scan kernel over the node's
  // contiguous CHILD span of these arrays -- one 8-wide sweep per query
  // instead of a scalar test per (child, query) pair.
  std::vector<double> node_min_x_, node_min_y_, node_max_x_, node_max_y_;
  std::vector<uint64_t> node_index_;
};

// Streams the items of a PackedRTree in non-decreasing BoxGap order from a
// query box, expanding nodes lazily (incremental nearest-neighbour search,
// Hjaltason & Samet style). At equal gap, items surface in increasing id
// order -- together with gap-ascending order this reproduces exactly the
// sequence `std::sort` over (gap, id) pairs of ALL items would give,
// without ever materializing the full sorted array, which is what lets the
// similarity search stop scanning as soon as its pruning bound closes.
class BoxGapScan {
 public:
  BoxGapScan(const PackedRTree& tree, const geometry::BBox& query);

  // Advances to the next item; false when the tree is exhausted.
  bool Next(uint64_t* id, double* gap);

 private:
  struct Entry {
    double gap;
    bool is_item;  // nodes order before items at equal gap
    uint64_t key;  // item id, or node index
    bool operator>(const Entry& o) const {
      if (gap != o.gap) return gap > o.gap;
      if (is_item != o.is_item) return is_item && !o.is_item;
      return key > o.key;
    }
  };

  const PackedRTree& tree_;
  geometry::BBox query_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq_;
};

}  // namespace kernels
}  // namespace sidq

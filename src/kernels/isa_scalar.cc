// Scalar oracle tier. This TU is compiled with auto-vectorization disabled
// (see src/kernels/CMakeLists.txt), the same mode as scalar_ref.cc, so its
// output defines the bit-exactness contract every wider tier must match.

#define SIDQ_KERNEL_ISA_NS isa_scalar
#define SIDQ_KERNEL_ISA_GETTER ScalarOps
#define SIDQ_KERNEL_ISA_ENUM Isa::kScalar

#include "kernels/kernel_impl.inc"

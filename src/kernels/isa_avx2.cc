// AVX2 tier: this TU is compiled with -mavx2 -mfma when the toolchain
// accepts those flags (SIDQ_KERNELS_HAVE_AVX2), and the dispatcher only
// selects it after a CPUID probe. -ffp-contract=off still applies, so FMA
// availability never changes results. When the flag is absent the TU
// exports a nullptr getter and the tier reports unavailable.

#include "kernels/dispatch.h"

#if defined(SIDQ_KERNELS_HAVE_AVX2)

#define SIDQ_KERNEL_ISA_NS isa_avx2
#define SIDQ_KERNEL_ISA_GETTER Avx2Ops
#define SIDQ_KERNEL_ISA_ENUM Isa::kAvx2

#include "kernels/kernel_impl.inc"

#else

namespace sidq {
namespace kernels {
namespace detail {
const KernelOps* Avx2Ops() { return nullptr; }
}  // namespace detail
}  // namespace kernels
}  // namespace sidq

#endif

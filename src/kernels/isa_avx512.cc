// AVX-512 tier: compiled with -mavx512f -mavx512dq when the toolchain
// accepts those flags (SIDQ_KERNELS_HAVE_AVX512); the dispatcher
// additionally requires a runtime CPUID probe before selecting it. This is
// the one tier whose leaf scan uses hand-written intrinsics
// (compress-store compaction) rather than auto-vectorization.

#include "kernels/dispatch.h"

#if defined(SIDQ_KERNELS_HAVE_AVX512)

#define SIDQ_KERNEL_ISA_NS isa_avx512
#define SIDQ_KERNEL_ISA_GETTER Avx512Ops
#define SIDQ_KERNEL_ISA_ENUM Isa::kAvx512

#include "kernels/kernel_impl.inc"

#else

namespace sidq {
namespace kernels {
namespace detail {
const KernelOps* Avx512Ops() { return nullptr; }
}  // namespace detail
}  // namespace kernels
}  // namespace sidq

#endif

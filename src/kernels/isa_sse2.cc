// Baseline vector tier: plain build flags, auto-vectorization on. On
// x86-64 that means SSE2 (the ABI baseline); on other architectures it is
// simply the portably auto-vectorized build. Always compiled in, so the
// dispatcher can always offer one vectorized tier.

#define SIDQ_KERNEL_ISA_NS isa_sse2
#define SIDQ_KERNEL_ISA_GETTER Sse2Ops
#define SIDQ_KERNEL_ISA_ENUM Isa::kSse2

#include "kernels/kernel_impl.inc"

#include "kernels/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/logging.h"

namespace sidq {
namespace kernels {
namespace detail {

// Exported by the per-ISA translation units (isa_*.cc). A getter returns
// nullptr when its tier is not compiled in.
const KernelOps* ScalarOps();
const KernelOps* Sse2Ops();
const KernelOps* Avx2Ops();
const KernelOps* Avx512Ops();

}  // namespace detail

namespace {

bool CpuSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
    case Isa::kSse2:
      // SSE2 is the x86-64 ABI baseline; on non-x86 the "sse2" tier is the
      // plain auto-vectorized build, which any host runs.
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

const KernelOps* CompiledTable(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return detail::ScalarOps();
    case Isa::kSse2:
      return detail::Sse2Ops();
    case Isa::kAvx2:
      return detail::Avx2Ops();
    case Isa::kAvx512:
      return detail::Avx512Ops();
  }
  return nullptr;
}

bool TierAvailable(Isa isa) {
  return CompiledTable(isa) != nullptr && CpuSupports(isa);
}

Isa BestAvailable() {
  for (int i = kIsaCount - 1; i > 0; --i) {
    const Isa isa = static_cast<Isa>(i);
    if (TierAvailable(isa)) return isa;
  }
  return Isa::kScalar;
}

// Parses SIDQ_FORCE_ISA. Returns false when the variable is unset or does
// not name a tier (the latter warns); `out` is the tier to pin otherwise,
// already clamped to what this host can run.
bool ParseForcedIsa(Isa* out) {
  const char* env = std::getenv("SIDQ_FORCE_ISA");
  if (env == nullptr || *env == '\0') return false;
  Isa requested;
  if (std::strcmp(env, "scalar") == 0) {
    requested = Isa::kScalar;
  } else if (std::strcmp(env, "sse2") == 0) {
    requested = Isa::kSse2;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = Isa::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    requested = Isa::kAvx512;
  } else {
    SIDQ_WARN() << "SIDQ_FORCE_ISA=" << env
                << " is not one of scalar|sse2|avx2|avx512; using best tier";
    return false;
  }
  // Fall back to the widest runnable tier at or below the request, so a
  // CI matrix can force avx512 everywhere and still run on older hosts.
  for (int i = static_cast<int>(requested); i > 0; --i) {
    const Isa isa = static_cast<Isa>(i);
    if (TierAvailable(isa)) {
      if (isa != requested) {
        SIDQ_WARN() << "SIDQ_FORCE_ISA=" << env << " unavailable on this "
                    << "host; falling back to " << IsaName(isa);
      }
      *out = isa;
      return true;
    }
  }
  if (requested != Isa::kScalar) {
    SIDQ_WARN() << "SIDQ_FORCE_ISA=" << env << " unavailable on this host; "
                << "falling back to scalar";
  }
  *out = Isa::kScalar;
  return true;
}

const KernelOps* ResolveActive() {
  Isa forced;
  const Isa active = ParseForcedIsa(&forced) ? forced : BestAvailable();
  const KernelOps* table = CompiledTable(active);
  SIDQ_CHECK(table != nullptr) << "kernel tier " << IsaName(active)
                               << " resolved but not compiled in";
  return table;
}

// One-time resolution through an atomic pointer: every thread that loads a
// non-null value sees a fully constructed table (release/acquire), and
// racing first calls all resolve to the same answer because the inputs
// (CPUID, environment) are stable. No mutex needed (lint R10).
std::atomic<const KernelOps*> g_active{nullptr};

const KernelOps* ActiveTable() {
  const KernelOps* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = ResolveActive();
    g_active.store(table, std::memory_order_release);
  }
  return table;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const KernelOps& KernelDispatch::Get() { return *ActiveTable(); }

Isa KernelDispatch::Active() { return ActiveTable()->isa; }

const KernelOps* KernelDispatch::Table(Isa isa) {
  return TierAvailable(isa) ? CompiledTable(isa) : nullptr;
}

Isa KernelDispatch::Best() { return BestAvailable(); }

bool KernelDispatch::Available(Isa isa) { return TierAvailable(isa); }

void KernelDispatch::ReinitForTest() {
  g_active.store(nullptr, std::memory_order_release);
}

}  // namespace kernels
}  // namespace sidq

#pragma once

#include <optional>
#include <vector>

#include "core/statusor.h"
#include "core/stid.h"
#include "core/trajectory.h"
#include "uncertainty/interpolation.h"

namespace sidq {
namespace integrate {

// Trajectory+STID integration (Section 2.2.5): attaches thematic
// measurements (e.g. air quality) to each trajectory point based on
// spatiotemporal proximity, yielding an enriched trajectory a consumer can
// interpret directly ("exposure along the commute").
struct EnrichedTrajectory {
  Trajectory trajectory;
  // One attached value per point; nullopt when no measurement was close
  // enough (controlled by the interpolator's data coverage).
  std::vector<std::optional<double>> values;

  // Fraction of points that received a value.
  double AttachmentRate() const;
};

// Attaches values from `interpolator` (built over the STID source) to every
// point of `trajectory`.
[[nodiscard]] StatusOr<EnrichedTrajectory> AttachStid(
    const Trajectory& trajectory,
    const uncertainty::StInterpolator& interpolator);

// Mean attached value over a trajectory segment [t_begin, t_end]
// (aggregation used by exposure analyses); fails when nothing is attached.
[[nodiscard]] StatusOr<double> MeanAttachedValue(const EnrichedTrajectory& enriched,
                                   Timestamp t_begin, Timestamp t_end);

}  // namespace integrate
}  // namespace sidq

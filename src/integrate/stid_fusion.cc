#include "integrate/stid_fusion.h"

#include <cmath>
#include <map>
#include <tuple>

#include "core/logging.h"

namespace sidq {
namespace integrate {

StatusOr<GridFuser::Result> GridFuser::Fuse(
    const std::vector<StDataset>& sources) const {
  if (sources.empty()) {
    return Status::InvalidArgument("no sources to fuse");
  }
  // Cell key -> per-source mean observation in that space-time cell.
  using CellKey = std::tuple<int64_t, int64_t, int64_t>;
  struct CellObs {
    std::vector<double> sum;
    std::vector<int> count;
  };
  std::map<CellKey, CellObs> cells;
  const double cell = options_.cell_m;
  const Timestamp slot = options_.slot_ms;
  const size_t num_sources = sources.size();
  for (size_t src = 0; src < num_sources; ++src) {
    for (const StSeries& s : sources[src].series()) {
      for (const StRecord& r : s.records()) {
        const CellKey key{static_cast<int64_t>(std::floor(r.loc.x / cell)),
                          static_cast<int64_t>(std::floor(r.loc.y / cell)),
                          r.t / slot};
        CellObs& obs = cells[key];
        if (obs.sum.empty()) {
          obs.sum.assign(num_sources, 0.0);
          obs.count.assign(num_sources, 0);
        }
        obs.sum[src] += r.value;
        obs.count[src] += 1;
      }
    }
  }

  // Truth discovery by pairwise deviations: D[a][b] = mean squared
  // difference of the two sources' cell means over co-observed cells.
  // Deviations are estimated on a finer grid than the fusion grid:
  // averaging many records per cell before differencing shrinks the
  // per-cell noise and starves the estimator of degrees of freedom.
  std::map<CellKey, CellObs> est_cells;
  {
    const double est_cell = cell / 2.0;
    const Timestamp est_slot = std::max<Timestamp>(1, slot / 5);
    for (size_t src = 0; src < num_sources; ++src) {
      for (const StSeries& s : sources[src].series()) {
        for (const StRecord& r : s.records()) {
          const CellKey key{
              static_cast<int64_t>(std::floor(r.loc.x / est_cell)),
              static_cast<int64_t>(std::floor(r.loc.y / est_cell)),
              r.t / est_slot};
          CellObs& obs = est_cells[key];
          if (obs.sum.empty()) {
            obs.sum.assign(num_sources, 0.0);
            obs.count.assign(num_sources, 0);
          }
          obs.sum[src] += r.value;
          obs.count[src] += 1;
        }
      }
    }
  }
  std::vector<std::vector<double>> dev(num_sources,
                                       std::vector<double>(num_sources, 0.0));
  std::vector<std::vector<int>> dev_cnt(num_sources,
                                        std::vector<int>(num_sources, 0));
  for (const auto& [key, obs] : est_cells) {
    for (size_t a = 0; a < num_sources; ++a) {
      if (obs.count[a] == 0) continue;
      const double ma = obs.sum[a] / obs.count[a];
      for (size_t b = a + 1; b < num_sources; ++b) {
        if (obs.count[b] == 0) continue;
        const double mb = obs.sum[b] / obs.count[b];
        dev[a][b] += (ma - mb) * (ma - mb);
        dev_cnt[a][b] += 1;
      }
    }
  }
  auto pair_dev = [&](size_t a, size_t b) -> double {
    const size_t lo = std::min(a, b), hi = std::max(a, b);
    if (dev_cnt[lo][hi] == 0) return -1.0;
    return dev[lo][hi] / dev_cnt[lo][hi];
  };

  std::vector<double> variance(num_sources, 1.0);
  if (num_sources == 1) {
    variance[0] = 1.0;
  } else if (num_sources == 2) {
    const double d = pair_dev(0, 1);
    variance[0] = variance[1] = d > 0.0 ? d / 2.0 : 1.0;
  } else {
    for (size_t a = 0; a < num_sources; ++a) {
      double acc = 0.0;
      int cnt = 0;
      for (size_t b = 0; b < num_sources; ++b) {
        if (b == a) continue;
        for (size_t c = b + 1; c < num_sources; ++c) {
          if (c == a) continue;
          const double dab = pair_dev(a, b);
          const double dac = pair_dev(a, c);
          const double dbc = pair_dev(b, c);
          if (dab < 0.0 || dac < 0.0 || dbc < 0.0) continue;
          acc += (dab + dac - dbc) / 2.0;
          ++cnt;
        }
      }
      if (cnt > 0) {
        variance[a] = std::max(options_.min_variance, acc / cnt);
      }
    }
  }
  std::vector<double> weights(num_sources, 1.0);
  double wtotal = 0.0;
  for (size_t src = 0; src < num_sources; ++src) {
    weights[src] = 1.0 / std::max(options_.min_variance, variance[src]);
    wtotal += weights[src];
  }
  // Normalise to mean 1 for interpretability.
  if (wtotal > 0.0) {
    for (double& w : weights) {
      w *= static_cast<double>(num_sources) / wtotal;
    }
  }

  // Emit fused virtual sensors: one series per spatial cell, one record per
  // time slot.
  Result result;
  result.fused = StDataset(sources.front().field_name());
  result.source_weights = weights;
  // Group by spatial cell.
  std::map<std::pair<int64_t, int64_t>,
           std::map<int64_t, std::pair<double, double>>>
      spatial;  // (cx,cy) -> slot -> (weighted sum, weight)
  for (const auto& [key, obs] : cells) {
    const auto [cx, cy, ct] = key;
    double wsum = 0.0, acc = 0.0;
    for (size_t src = 0; src < num_sources; ++src) {
      if (obs.count[src] == 0) continue;
      const double mean = obs.sum[src] / obs.count[src];
      acc += weights[src] * mean;
      wsum += weights[src];
    }
    if (wsum <= 0.0) continue;
    auto& slot_map = spatial[{cx, cy}];
    auto& entry = slot_map[ct];
    entry.first += acc;
    entry.second += wsum;
  }
  SensorId next_id = 0;
  for (const auto& [cell_xy, slots] : spatial) {
    const geometry::Point center(
        (static_cast<double>(cell_xy.first) + 0.5) * cell,
        (static_cast<double>(cell_xy.second) + 0.5) * cell);
    StSeries series(next_id++, center);
    for (const auto& [ct, sumw] : slots) {
      const Timestamp t = ct * slot + slot / 2;
      SIDQ_CHECK_OK(series.Append(t, sumw.first / sumw.second));
    }
    result.fused.AddSeries(std::move(series));
  }
  return result;
}

}  // namespace integrate
}  // namespace sidq

#include "integrate/attachment.h"

namespace sidq {
namespace integrate {

double EnrichedTrajectory::AttachmentRate() const {
  if (values.empty()) return 0.0;
  size_t attached = 0;
  for (const auto& v : values) {
    if (v.has_value()) ++attached;
  }
  return static_cast<double>(attached) / static_cast<double>(values.size());
}

StatusOr<EnrichedTrajectory> AttachStid(
    const Trajectory& trajectory,
    const uncertainty::StInterpolator& interpolator) {
  EnrichedTrajectory out;
  out.trajectory = trajectory;
  out.values.reserve(trajectory.size());
  for (const TrajectoryPoint& pt : trajectory.points()) {
    auto v = interpolator.Estimate(pt.p, pt.t);
    if (v.ok()) {
      out.values.emplace_back(v.value());
    } else {
      out.values.emplace_back(std::nullopt);
    }
  }
  return out;
}

StatusOr<double> MeanAttachedValue(const EnrichedTrajectory& enriched,
                                   Timestamp t_begin, Timestamp t_end) {
  double acc = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < enriched.trajectory.size(); ++i) {
    const Timestamp t = enriched.trajectory[i].t;
    if (t < t_begin || t > t_end) continue;
    if (!enriched.values[i].has_value()) continue;
    acc += *enriched.values[i];
    ++n;
  }
  if (n == 0) return Status::NotFound("no attached values in range");
  return acc / static_cast<double>(n);
}

}  // namespace integrate
}  // namespace sidq

#pragma once

#include <string>
#include <vector>

#include "core/statusor.h"
#include "core/trajectory.h"
#include "core/types.h"

namespace sidq {
namespace integrate {

// Semantic data integration for trajectories (Section 2.2.5): annotates raw
// location traces with stay/move episodes and POI labels, turning
// coordinates into interpretable mobility semantics (Yan et al., TIST 2013;
// Li et al., TDS 2020 families).

// A point of interest used for annotation.
struct Poi {
  geometry::Point p;
  std::string name;
  std::string category;
};

// A detected stay: the object remained within `radius` of the centroid from
// t_begin to t_end.
struct StayPoint {
  geometry::Point centroid;
  Timestamp t_begin = 0;
  Timestamp t_end = 0;
  size_t first_index = 0;  // point range in the source trajectory
  size_t last_index = 0;

  Timestamp Duration() const { return t_end - t_begin; }
};

// Classic stay-point detection (Li/Zheng style): a maximal run of points
// within `radius_m` of its first point lasting at least `min_duration_ms`.
std::vector<StayPoint> DetectStayPoints(const Trajectory& trajectory,
                                        double radius_m,
                                        Timestamp min_duration_ms);

// One semantic episode of the annotated trajectory.
struct Episode {
  enum class Kind { kMove, kStay };
  Kind kind = Kind::kMove;
  Timestamp t_begin = 0;
  Timestamp t_end = 0;
  // For stays: annotation from the nearest POI within the match radius
  // ("unknown" when none).
  std::string label;
  std::string category;
  geometry::Point anchor;
};

// Segments the trajectory into alternating move/stay episodes and labels
// stays with the nearest POI within `poi_match_radius_m`.
class SemanticAnnotator {
 public:
  struct Options {
    double stay_radius_m = 60.0;
    Timestamp min_stay_ms = 120'000;
    double poi_match_radius_m = 120.0;
  };

  SemanticAnnotator(std::vector<Poi> pois, Options options)
      : pois_(std::move(pois)), options_(options) {}
  explicit SemanticAnnotator(std::vector<Poi> pois)
      : SemanticAnnotator(std::move(pois), Options{}) {}

  [[nodiscard]] StatusOr<std::vector<Episode>> Annotate(const Trajectory& trajectory) const;

 private:
  std::vector<Poi> pois_;
  Options options_;
};

}  // namespace integrate
}  // namespace sidq

#pragma once

#include <vector>

#include "core/statusor.h"
#include "core/trajectory.h"

namespace sidq {
namespace integrate {

// Non-semantic trajectory+trajectory integration: spatiotemporal entity
// linking across ID systems (Jin et al., TKDE 2020 family). Two sources
// observe the same moving objects under unrelated identifiers; trajectories
// are linked by the similarity of their spatiotemporal signatures
// (normalised visit histograms over space-time cells).
class EntityLinker {
 public:
  struct Options {
    double cell_m = 200.0;
    Timestamp time_slot_ms = 60'000;
    // Pairs below this cosine similarity stay unlinked.
    double min_similarity = 0.1;
  };

  explicit EntityLinker(Options options) : options_(options) {}
  EntityLinker() : EntityLinker(Options{}) {}

  struct Match {
    size_t a_index;
    size_t b_index;
    double similarity;
  };

  // Greedy best-first one-to-one matching between the two sets.
  std::vector<Match> Link(const std::vector<Trajectory>& set_a,
                         const std::vector<Trajectory>& set_b) const;

  // Cosine similarity of two trajectories' space-time signatures.
  double Similarity(const Trajectory& a, const Trajectory& b) const;

 private:
  Options options_;
};

}  // namespace integrate
}  // namespace sidq

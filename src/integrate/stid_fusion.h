#pragma once

#include <vector>

#include "core/statusor.h"
#include "core/stid.h"
#include "core/types.h"
#include "geometry/bbox.h"

namespace sidq {
namespace integrate {

// STID+STID integration (Section 2.2.5): multiple sources measuring the
// same field are fused onto a common space-time grid. Source reliabilities
// are unknown a priori and estimated by truth discovery via pairwise
// deviations (method of moments): for independent sources a and b,
// E|v_a - v_b|^2 = var_a + var_b over co-observed cells, so with three or
// more sources each variance has the closed form
//   var_a = mean over pairs (b, c != a) of (D_ab + D_ac - D_bc) / 2.
// This is stable where iterative consensus re-weighting (CRH-style) can
// run away to a single source. With exactly two sources the variances are
// unidentifiable and split evenly (fusion degrades to plain averaging).
class GridFuser {
 public:
  struct Options {
    double cell_m = 400.0;
    Timestamp slot_ms = 300'000;
    // Variance floor keeping near-perfect sources from dominating the
    // weights entirely.
    double min_variance = 1e-6;
  };

  explicit GridFuser(Options options) : options_(options) {}
  GridFuser() : GridFuser(Options{}) {}

  struct Result {
    // Fused virtual sensors at cell centres; one series per non-empty cell.
    StDataset fused;
    // Final reliability weight per input source (normalised to mean 1).
    std::vector<double> source_weights;
  };

  // Fuses `sources` (>= 1 dataset measuring the same field). Fails on empty
  // input.
  [[nodiscard]] StatusOr<Result> Fuse(const std::vector<StDataset>& sources) const;

 private:
  Options options_;
};

}  // namespace integrate
}  // namespace sidq

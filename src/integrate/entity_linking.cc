#include "integrate/entity_linking.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace sidq {
namespace integrate {

namespace {

using Signature = std::unordered_map<uint64_t, double>;

uint64_t CellKey(int64_t cx, int64_t cy, int64_t ct) {
  // 24/24/16-bit packing of space-time cell coordinates.
  return (static_cast<uint64_t>(static_cast<uint32_t>(cx) & 0xFFFFFF) << 40) |
         (static_cast<uint64_t>(static_cast<uint32_t>(cy) & 0xFFFFFF) << 16) |
         (static_cast<uint64_t>(static_cast<uint32_t>(ct) & 0xFFFF));
}

Signature BuildSignature(const Trajectory& tr, double cell_m,
                         Timestamp slot_ms) {
  Signature sig;
  for (const TrajectoryPoint& pt : tr.points()) {
    const int64_t cx = static_cast<int64_t>(std::floor(pt.p.x / cell_m));
    const int64_t cy = static_cast<int64_t>(std::floor(pt.p.y / cell_m));
    const int64_t ct = pt.t / slot_ms;
    sig[CellKey(cx, cy, ct)] += 1.0;
  }
  // L2 normalise.
  double norm = 0.0;
  for (const auto& [k, v] : sig) norm += v * v;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (auto& [k, v] : sig) v /= norm;
  }
  return sig;
}

double Cosine(const Signature& a, const Signature& b) {
  const Signature& small = a.size() <= b.size() ? a : b;
  const Signature& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [k, v] : small) {
    const auto it = large.find(k);
    if (it != large.end()) dot += v * it->second;
  }
  return dot;
}

}  // namespace

double EntityLinker::Similarity(const Trajectory& a,
                                const Trajectory& b) const {
  return Cosine(BuildSignature(a, options_.cell_m, options_.time_slot_ms),
                BuildSignature(b, options_.cell_m, options_.time_slot_ms));
}

std::vector<EntityLinker::Match> EntityLinker::Link(
    const std::vector<Trajectory>& set_a,
    const std::vector<Trajectory>& set_b) const {
  std::vector<Signature> sig_a, sig_b;
  sig_a.reserve(set_a.size());
  sig_b.reserve(set_b.size());
  for (const Trajectory& t : set_a) {
    sig_a.push_back(BuildSignature(t, options_.cell_m, options_.time_slot_ms));
  }
  for (const Trajectory& t : set_b) {
    sig_b.push_back(BuildSignature(t, options_.cell_m, options_.time_slot_ms));
  }
  struct Cand {
    double sim;
    size_t i, j;
  };
  std::vector<Cand> cands;
  for (size_t i = 0; i < sig_a.size(); ++i) {
    for (size_t j = 0; j < sig_b.size(); ++j) {
      const double s = Cosine(sig_a[i], sig_b[j]);
      if (s >= options_.min_similarity) cands.push_back({s, i, j});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& x, const Cand& y) { return x.sim > y.sim; });
  std::vector<bool> used_a(set_a.size(), false), used_b(set_b.size(), false);
  std::vector<EntityLinker::Match> links;
  for (const Cand& c : cands) {
    if (used_a[c.i] || used_b[c.j]) continue;
    used_a[c.i] = true;
    used_b[c.j] = true;
    links.push_back({c.i, c.j, c.sim});
  }
  return links;
}

}  // namespace integrate
}  // namespace sidq

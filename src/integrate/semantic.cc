#include "integrate/semantic.h"

#include <limits>

namespace sidq {
namespace integrate {

std::vector<StayPoint> DetectStayPoints(const Trajectory& trajectory,
                                        double radius_m,
                                        Timestamp min_duration_ms) {
  std::vector<StayPoint> stays;
  const size_t n = trajectory.size();
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n &&
           geometry::Distance(trajectory[j].p, trajectory[i].p) <= radius_m) {
      ++j;
    }
    // Points [i, j) are within radius of point i.
    const Timestamp duration = trajectory[j - 1].t - trajectory[i].t;
    if (j - i >= 2 && duration >= min_duration_ms) {
      StayPoint sp;
      geometry::Point acc(0.0, 0.0);
      for (size_t k = i; k < j; ++k) acc += trajectory[k].p;
      sp.centroid = acc / static_cast<double>(j - i);
      sp.t_begin = trajectory[i].t;
      sp.t_end = trajectory[j - 1].t;
      sp.first_index = i;
      sp.last_index = j - 1;
      stays.push_back(sp);
      i = j;
    } else {
      ++i;
    }
  }
  return stays;
}

StatusOr<std::vector<Episode>> SemanticAnnotator::Annotate(
    const Trajectory& trajectory) const {
  if (trajectory.empty()) {
    return Status::FailedPrecondition("empty trajectory");
  }
  const std::vector<StayPoint> stays = DetectStayPoints(
      trajectory, options_.stay_radius_m, options_.min_stay_ms);
  std::vector<Episode> episodes;
  Timestamp cursor = trajectory.front().t;
  auto nearest_poi = [&](const geometry::Point& p) -> const Poi* {
    const Poi* best = nullptr;
    double best_d = std::numeric_limits<double>::infinity();
    for (const Poi& poi : pois_) {
      const double d = geometry::Distance(poi.p, p);
      if (d <= options_.poi_match_radius_m && d < best_d) {
        best = &poi;
        best_d = d;
      }
    }
    return best;
  };
  for (const StayPoint& sp : stays) {
    if (sp.t_begin > cursor) {
      Episode move;
      move.kind = Episode::Kind::kMove;
      move.t_begin = cursor;
      move.t_end = sp.t_begin;
      move.label = "move";
      episodes.push_back(move);
    }
    Episode stay;
    stay.kind = Episode::Kind::kStay;
    stay.t_begin = sp.t_begin;
    stay.t_end = sp.t_end;
    stay.anchor = sp.centroid;
    const Poi* poi = nearest_poi(sp.centroid);
    stay.label = poi != nullptr ? poi->name : "unknown";
    stay.category = poi != nullptr ? poi->category : "unknown";
    episodes.push_back(stay);
    cursor = sp.t_end;
  }
  if (cursor < trajectory.back().t) {
    Episode move;
    move.kind = Episode::Kind::kMove;
    move.t_begin = cursor;
    move.t_end = trajectory.back().t;
    move.label = "move";
    episodes.push_back(move);
  }
  return episodes;
}

}  // namespace integrate
}  // namespace sidq

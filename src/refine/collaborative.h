#pragma once

#include <vector>

#include "core/statusor.h"
#include "geometry/point.h"

namespace sidq {
namespace refine {

// Collaborative Location Refinement (Section 2.2.1): positions of multiple
// objects observed at the same instant are optimised together.

// Joint denoising: assumes a *system* error shared by all observations
// (e.g. a miscalibrated positioning infrastructure shifts every estimate by
// the same unknown offset). Objects with known true positions (anchors)
// reveal the offset; the statistically best estimate under Gaussian noise
// is the mean anchor residual, which is removed from every observation.
struct JointDenoiseInput {
  geometry::Point observed;
  bool is_anchor = false;
  geometry::Point anchor_truth;  // valid when is_anchor
};

[[nodiscard]] StatusOr<std::vector<geometry::Point>> JointDenoise(
    const std::vector<JointDenoiseInput>& inputs);

// Iterative optimisation: assumes independent *random* errors and refines a
// batch of noisy positions using noisy pairwise range measurements between
// objects (e.g. BLE/UWB peer ranging). Minimises
//   sum_pairs w_ij (|p_i - p_j| - d_ij)^2 + lambda * sum_i |p_i - obs_i|^2
// by damped gradient descent -- a spring-relaxation refinement in the
// spirit of swarm-optimised WiFi positioning (Chen & Zou 2017).
struct PairRange {
  size_t i = 0;
  size_t j = 0;
  double distance = 0.0;
  double sigma = 1.0;
};

class IterativeRefiner {
 public:
  struct Options {
    int iterations = 200;
    double step = 0.15;           // gradient step scale
    double anchor_lambda = 0.05;  // pull toward the original observations
  };

  explicit IterativeRefiner(Options options) : options_(options) {}
  IterativeRefiner() : IterativeRefiner(Options{}) {}

  // Refines `observed` given pairwise ranges; fails on out-of-range pair
  // indices.
  [[nodiscard]] StatusOr<std::vector<geometry::Point>> Refine(
      const std::vector<geometry::Point>& observed,
      const std::vector<PairRange>& ranges) const;

 private:
  Options options_;
};

}  // namespace refine
}  // namespace sidq

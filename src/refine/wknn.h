#pragma once

#include <vector>

#include "core/statusor.h"
#include "geometry/point.h"
#include "sim/fingerprint.h"

namespace sidq {
namespace refine {

// Ensemble Location Refinement, single-source: weighted k-nearest-neighbour
// fingerprint positioning (Fang et al., IET Comm. 2018 family). Aggregates
// the k reference points closest in signal space, weighted by inverse
// signal distance -- the "aggregate a set of possible results produced by a
// single process" pattern of Section 2.2.1.
class WknnLocalizer {
 public:
  struct Options {
    size_t k = 4;
    // Added to signal distances before inversion to avoid divide-by-zero.
    double epsilon_db = 1e-3;
  };

  WknnLocalizer(std::vector<sim::Fingerprint> database, Options options);
  WknnLocalizer(std::vector<sim::Fingerprint> database)
      : WknnLocalizer(std::move(database), Options{}) {}

  // Location estimate for an observed RSSI vector; fails when the vector
  // length does not match the database or the database is empty.
  [[nodiscard]] StatusOr<geometry::Point> Estimate(const std::vector<double>& rssi) const;

  // Plain nearest-neighbour baseline (k = 1, unweighted).
  [[nodiscard]] StatusOr<geometry::Point> EstimateNn(const std::vector<double>& rssi) const;

 private:
  [[nodiscard]] StatusOr<geometry::Point> EstimateK(const std::vector<double>& rssi,
                                      size_t k, bool weighted) const;

  std::vector<sim::Fingerprint> database_;
  Options options_;
};

}  // namespace refine
}  // namespace sidq

#include "refine/particle_filter.h"

#include <cmath>

#include "core/failpoint.h"

namespace sidq {
namespace refine {

StatusOr<Trajectory> ParticleFilter2D::Filter(const Trajectory& noisy,
                                              const ExecContext* exec) const {
  if (noisy.empty()) return Status::FailedPrecondition("empty trajectory");
  if (!noisy.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  const double default_r =
      options_.measurement_noise;
  std::vector<Particle> particles(options_.num_particles);

  // Initialize around the first measurement.
  {
    const TrajectoryPoint& p0 = noisy[0];
    const double r = p0.accuracy > 0.0 ? p0.accuracy : default_r;
    for (Particle& pa : particles) {
      pa.p = geometry::Point(p0.p.x + rng_->Gaussian(0.0, r),
                             p0.p.y + rng_->Gaussian(0.0, r));
      pa.v = geometry::Point(rng_->Gaussian(0.0, 2.0),
                             rng_->Gaussian(0.0, 2.0));
      pa.weight = 1.0 / static_cast<double>(particles.size());
    }
  }

  Trajectory out(noisy.object_id());
  std::vector<Particle> resampled(particles.size());
  for (size_t i = 0; i < noisy.size(); ++i) {
    // One chaos evaluation + cooperative check per assimilated measurement.
    SIDQ_RETURN_IF_ERROR(MaybeInjectFailPoint("refine.particle_filter.step",
                                              noisy.object_id(), exec));
    if (exec != nullptr) SIDQ_RETURN_IF_ERROR(exec->Check());
    const TrajectoryPoint& pt = noisy[i];
    const double r = pt.accuracy > 0.0 ? pt.accuracy : default_r;
    const double inv_2r2 = 1.0 / (2.0 * r * r);
    const double inv_2road2 =
        1.0 / (2.0 * options_.road_sigma * options_.road_sigma);

    if (i > 0) {
      const double dt = TimestampToSeconds(pt.t - noisy[i - 1].t);
      for (Particle& pa : particles) {
        const double ax = rng_->Gaussian(0.0, options_.accel_noise);
        const double ay = rng_->Gaussian(0.0, options_.accel_noise);
        pa.p.x += pa.v.x * dt + 0.5 * ax * dt * dt;
        pa.p.y += pa.v.y * dt + 0.5 * ay * dt * dt;
        pa.v.x += ax * dt;
        pa.v.y += ay * dt;
      }
    }

    // Weight by measurement likelihood (and road proximity if attached).
    double wsum = 0.0;
    for (Particle& pa : particles) {
      const double d2 = geometry::DistanceSq(pa.p, pt.p);
      double logw = -d2 * inv_2r2;
      if (network_ != nullptr) {
        auto e = network_->NearestEdge(pa.p);
        if (e.ok()) {
          const double road_d = network_->DistanceToEdge(e.value(), pa.p);
          logw += -road_d * road_d * inv_2road2;
        }
      }
      pa.weight *= std::exp(logw);
      wsum += pa.weight;
    }
    if (wsum <= 0.0 || !std::isfinite(wsum)) {
      // Degenerate weights: re-spread around the measurement.
      for (Particle& pa : particles) {
        pa.p = geometry::Point(pt.p.x + rng_->Gaussian(0.0, r),
                               pt.p.y + rng_->Gaussian(0.0, r));
        pa.weight = 1.0 / static_cast<double>(particles.size());
      }
      wsum = 1.0;
    } else {
      for (Particle& pa : particles) pa.weight /= wsum;
    }

    // Output: weighted mean.
    geometry::Point mean(0.0, 0.0);
    for (const Particle& pa : particles) mean += pa.p * pa.weight;
    TrajectoryPoint out_pt = pt;
    out_pt.p = mean;
    out.AppendUnordered(out_pt);

    // Resample (systematic) when ESS drops.
    double ess_denom = 0.0;
    for (const Particle& pa : particles) ess_denom += pa.weight * pa.weight;
    const double ess = 1.0 / std::max(1e-300, ess_denom);
    if (ess < options_.resample_threshold *
                  static_cast<double>(particles.size())) {
      const double step = 1.0 / static_cast<double>(particles.size());
      double u = rng_->Uniform(0.0, step);
      double cum = particles[0].weight;
      size_t j = 0;
      for (size_t k = 0; k < particles.size(); ++k) {
        while (u > cum && j + 1 < particles.size()) {
          ++j;
          cum += particles[j].weight;
        }
        resampled[k] = particles[j];
        resampled[k].weight = step;
        u += step;
      }
      particles.swap(resampled);
    }
  }
  return out;
}

}  // namespace refine
}  // namespace sidq

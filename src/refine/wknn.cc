#include "refine/wknn.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace refine {

WknnLocalizer::WknnLocalizer(std::vector<sim::Fingerprint> database,
                             Options options)
    : database_(std::move(database)), options_(options) {}

StatusOr<geometry::Point> WknnLocalizer::EstimateK(
    const std::vector<double>& rssi, size_t k, bool weighted) const {
  if (database_.empty()) {
    return Status::FailedPrecondition("empty fingerprint database");
  }
  if (rssi.size() != database_.front().rssi.size()) {
    return Status::InvalidArgument("rssi vector length mismatch");
  }
  // Signal-space Euclidean distances to all reference points.
  std::vector<std::pair<double, size_t>> dists;
  dists.reserve(database_.size());
  for (size_t i = 0; i < database_.size(); ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < rssi.size(); ++j) {
      const double d = rssi[j] - database_[i].rssi[j];
      acc += d * d;
    }
    dists.emplace_back(std::sqrt(acc), i);
  }
  k = std::min(k, dists.size());
  std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
  geometry::Point acc(0.0, 0.0);
  double weight_sum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double w =
        weighted ? 1.0 / (dists[i].first + options_.epsilon_db) : 1.0;
    acc += database_[dists[i].second].p * w;
    weight_sum += w;
  }
  return acc / weight_sum;
}

StatusOr<geometry::Point> WknnLocalizer::Estimate(
    const std::vector<double>& rssi) const {
  return EstimateK(rssi, options_.k, /*weighted=*/true);
}

StatusOr<geometry::Point> WknnLocalizer::EstimateNn(
    const std::vector<double>& rssi) const {
  return EstimateK(rssi, 1, /*weighted=*/false);
}

}  // namespace refine
}  // namespace sidq

#include "refine/hmm_map_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/arena.h"
#include "core/failpoint.h"
#include "kernels/distance.h"
#include "kernels/soa.h"

namespace sidq {
namespace refine {

std::vector<HmmMapMatcher::Candidate> HmmMapMatcher::CandidatesFor(
    const geometry::Point& p) const {
  std::vector<Candidate> out;
  double radius = options_.candidate_radius_m;
  std::vector<EdgeId> edges;
  for (int attempt = 0; attempt < 3 && edges.empty(); ++attempt) {
    edges = network_->EdgesNear(p, radius);
    radius *= 2.0;
  }
  const double inv_2s2 =
      1.0 / (2.0 * options_.gps_sigma_m * options_.gps_sigma_m);
  // Project onto every candidate edge, then score all emissions in one
  // batched distance sweep over arena-backed projection columns.
  out.reserve(edges.size());
  ArenaScope scope(ScratchArena());
  double* proj_x = scope.AllocArray<double>(edges.size());
  double* proj_y = scope.AllocArray<double>(edges.size());
  for (EdgeId e : edges) {
    Candidate c;
    c.edge = e;
    c.proj = network_->ProjectToEdge(e, p);
    proj_x[out.size()] = c.proj.x;
    proj_y[out.size()] = c.proj.y;
    out.push_back(c);
  }
  double* dists = scope.AllocArray<double>(out.size());
  kernels::PointToManyDist(p.x, p.y, proj_x, proj_y, out.size(), dists);
  for (size_t i = 0; i < out.size(); ++i) {
    const double d = dists[i];
    out[i].emission_logp = -d * d * inv_2s2;
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.emission_logp > b.emission_logp;
  });
  if (out.size() > options_.max_candidates) {
    out.resize(options_.max_candidates);
  }
  return out;
}

double HmmMapMatcher::NodeDistance(NodeId u, NodeId v) const {
  if (u == v) return 0.0;
  const uint64_t key = (static_cast<uint64_t>(std::min(u, v)) << 32) |
                       static_cast<uint64_t>(std::max(u, v));
  auto it = node_dist_cache_.find(key);
  if (it != node_dist_cache_.end()) return it->second;
  const double d = network_->ShortestPathLength(u, v);
  node_dist_cache_.emplace(key, d);
  return d;
}

double HmmMapMatcher::RouteDistance(const Candidate& a,
                                    const Candidate& b) const {
  if (a.edge == b.edge) return geometry::Distance(a.proj, b.proj);
  const auto& ea = network_->edge(a.edge);
  const auto& eb = network_->edge(b.edge);
  const NodeId a_nodes[2] = {ea.u, ea.v};
  const NodeId b_nodes[2] = {eb.u, eb.v};
  double best = std::numeric_limits<double>::infinity();
  for (NodeId an : a_nodes) {
    const double da = geometry::Distance(a.proj, network_->node(an).p);
    for (NodeId bn : b_nodes) {
      const double db = geometry::Distance(b.proj, network_->node(bn).p);
      const double mid = NodeDistance(an, bn);
      best = std::min(best, da + mid + db);
    }
  }
  return best;
}

StatusOr<HmmMapMatcher::MatchResult> HmmMapMatcher::Match(
    const Trajectory& noisy, const ExecContext* exec) const {
  if (noisy.empty()) return Status::FailedPrecondition("empty trajectory");
  if (!noisy.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  const size_t n = noisy.size();
  std::vector<std::vector<Candidate>> layers(n);
  for (size_t i = 0; i < n; ++i) {
    // Candidate generation runs Dijkstra-backed projections; check the
    // budget before each point so a dense network cannot blow past it.
    if (exec != nullptr) SIDQ_RETURN_IF_ERROR(exec->Check());
    layers[i] = CandidatesFor(noisy[i].p);
    if (layers[i].empty()) {
      return Status::NotFound("no road candidates near point");
    }
  }

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  // Viterbi scratch -- step lengths, the flattened score/backpointer
  // tables, and the backtracked choices -- lives in the arena. The tables
  // are ragged (one row per point, layer-sized), so they are flattened
  // over prefix-sum row offsets.
  ArenaScope vscope(ScratchArena());
  const kernels::TrajectoryView nv = kernels::TrajectoryView::Of(noisy);
  double* straight_dists = vscope.AllocArray<double>(n > 1 ? n - 1 : 0);
  if (n > 1) {
    kernels::ConsecutiveDist(nv.x(), nv.y(), n, straight_dists);
  }
  size_t* row = vscope.AllocArray<size_t>(n + 1);
  row[0] = 0;
  for (size_t i = 0; i < n; ++i) row[i + 1] = row[i] + layers[i].size();
  double* score = vscope.AllocArray<double>(row[n]);
  int* back = vscope.AllocFilled<int>(row[n], -1);
  for (size_t c = 0; c < layers[0].size(); ++c) {
    score[row[0] + c] = layers[0][c].emission_logp;
  }
  for (size_t i = 1; i < n; ++i) {
    // One chaos evaluation + one cooperative check per Viterbi layer: the
    // layer is the unit of work a deadline can interrupt.
    SIDQ_RETURN_IF_ERROR(MaybeInjectFailPoint("refine.hmm.viterbi_row",
                                              noisy.object_id(), exec));
    if (exec != nullptr) SIDQ_RETURN_IF_ERROR(exec->Check());
    const double straight = straight_dists[i - 1];
    double* cur = score + row[i];
    const double* prev = score + row[i - 1];
    int* cur_back = back + row[i];
    std::fill(cur, cur + layers[i].size(), kNegInf);
    for (size_t c = 0; c < layers[i].size(); ++c) {
      for (size_t p = 0; p < layers[i - 1].size(); ++p) {
        if (prev[p] == kNegInf) continue;
        const double route =
            RouteDistance(layers[i - 1][p], layers[i][c]);
        if (!std::isfinite(route)) continue;
        const double trans_logp =
            -std::abs(route - straight) / options_.beta_m;
        const double s = prev[p] + trans_logp + layers[i][c].emission_logp;
        if (s > cur[c]) {
          cur[c] = s;
          cur_back[c] = static_cast<int>(p);
        }
      }
    }
    // If everything is unreachable (disconnected network), restart the
    // chain at this layer.
    bool any = false;
    for (size_t c = 0; c < layers[i].size(); ++c) {
      any = any || cur[c] != kNegInf;
    }
    if (!any) {
      for (size_t c = 0; c < layers[i].size(); ++c) {
        cur[c] = layers[i][c].emission_logp;
        cur_back[c] = -1;
      }
    }
  }

  // Backtrack.
  int* choice = vscope.AllocFilled<int>(n, 0);
  {
    size_t best = 0;
    const double* last = score + row[n - 1];
    for (size_t c = 1; c < layers[n - 1].size(); ++c) {
      if (last[c] > last[best]) best = c;
    }
    choice[n - 1] = static_cast<int>(best);
    for (size_t i = n - 1; i-- > 0;) {
      const int b = back[row[i + 1] + choice[i + 1]];
      if (b >= 0) {
        choice[i] = b;
      } else {
        size_t loc_best = 0;
        for (size_t c = 1; c < layers[i].size(); ++c) {
          if (score[row[i] + c] > score[row[i] + loc_best]) loc_best = c;
        }
        choice[i] = static_cast<int>(loc_best);
      }
    }
  }

  MatchResult result;
  result.matched.set_object_id(noisy.object_id());
  result.matched.Reserve(n);
  result.edges.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Candidate& c = layers[i][choice[i]];
    TrajectoryPoint pt = noisy[i];
    pt.p = c.proj;
    result.matched.AppendUnordered(pt);
    result.edges.push_back(c.edge);
  }
  return result;
}

}  // namespace refine
}  // namespace sidq

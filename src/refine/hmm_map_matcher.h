#pragma once

#include <unordered_map>
#include <vector>

#include "core/exec_context.h"
#include "core/statusor.h"
#include "core/trajectory.h"
#include "core/types.h"
#include "sim/road_network.h"

namespace sidq {
namespace refine {

// Motion-based Location Refinement with a probabilistic graph model:
// HMM map matching in the Newson-Krumm style. Hidden states are candidate
// road positions; emissions follow a Gaussian on the GPS-to-road distance;
// transitions prefer candidates whose route distance matches the
// great-circle distance between fixes. Decoded with Viterbi.
class HmmMapMatcher {
 public:
  struct Options {
    double candidate_radius_m = 60.0;  // search radius for candidate edges
    size_t max_candidates = 6;         // per point
    double gps_sigma_m = 15.0;         // emission sigma
    double beta_m = 30.0;              // transition exponential scale
  };

  HmmMapMatcher(const sim::RoadNetwork* network, Options options)
      : network_(network), options_(options) {}
  explicit HmmMapMatcher(const sim::RoadNetwork* network)
      : HmmMapMatcher(network, Options{}) {}

  struct MatchResult {
    // Input points snapped to the matched road positions (same timestamps).
    Trajectory matched;
    // Matched edge per input point.
    std::vector<EdgeId> edges;
  };

  // Matches a time-ordered trajectory to the network. Fails when empty or
  // when no candidates exist for some point at 4x the configured radius.
  // When `exec` is non-null, the candidate build and every Viterbi layer
  // check it cooperatively, so a deadline or fleet cancellation stops the
  // O(n * k^2) recursion mid-flight with kDeadlineExceeded / kCancelled.
  // Chaos site: "refine.hmm.viterbi_row", keyed by object id, evaluated
  // once per Viterbi layer.
  [[nodiscard]] StatusOr<MatchResult> Match(
      const Trajectory& noisy, const ExecContext* exec = nullptr) const;

 private:
  struct Candidate {
    EdgeId edge;
    geometry::Point proj;
    double emission_logp;
  };

  std::vector<Candidate> CandidatesFor(const geometry::Point& p) const;
  // Network route distance between two candidate road positions.
  double RouteDistance(const Candidate& a, const Candidate& b) const;
  double NodeDistance(NodeId u, NodeId v) const;

  const sim::RoadNetwork* network_;
  Options options_;
  // Node-pair shortest path cache (Dijkstra results are reused heavily
  // between consecutive points).
  mutable std::unordered_map<uint64_t, double> node_dist_cache_;
};

}  // namespace refine
}  // namespace sidq

#pragma once

#include <array>
#include <vector>

#include "core/statusor.h"
#include "core/trajectory.h"

namespace sidq {
namespace refine {

// Motion-based Location Refinement via Bayes filtering: a 2-D
// constant-velocity Kalman filter with an optional Rauch-Tung-Striebel
// smoothing pass. State is [x, y, vx, vy]; x and y evolve independently,
// so the filter runs two decoupled 2-state filters for speed and stability.
class KalmanFilter2D {
 public:
  struct Options {
    // Continuous white-noise acceleration spectral density (m^2/s^3).
    double process_noise = 1.0;
    // Default 1-sigma measurement noise (m); per-point `accuracy` overrides
    // it when positive.
    double measurement_noise = 10.0;
  };

  explicit KalmanFilter2D(Options options) : options_(options) {}
  KalmanFilter2D() : KalmanFilter2D(Options{}) {}

  // Causal (online) filtering: each output point uses only measurements up
  // to its own time. Requires a time-ordered, non-empty trajectory.
  [[nodiscard]] StatusOr<Trajectory> Filter(const Trajectory& noisy) const;

  // Forward filter + RTS backward smoothing: each output point uses the
  // whole trajectory (offline refinement; strictly better than Filter).
  [[nodiscard]] StatusOr<Trajectory> Smooth(const Trajectory& noisy) const;

 private:
  struct AxisState {
    // State mean [pos, vel] and covariance for one axis.
    double x = 0.0, v = 0.0;
    double p00 = 0.0, p01 = 0.0, p11 = 0.0;
  };
  struct Step {
    AxisState predicted;  // prior at time k (before update)
    AxisState filtered;   // posterior at time k
    double dt = 0.0;      // seconds since step k-1
  };

  [[nodiscard]] Status RunForward(const Trajectory& noisy,
                    std::vector<std::array<Step, 2>>* steps) const;

  Options options_;
};

}  // namespace refine
}  // namespace sidq

#pragma once

#include "core/types.h"

namespace sidq {
namespace refine {

// Record-at-a-time scalar Kalman filter for one sensor's value stream:
// local level + trend state [value, dvalue/dt], the 1-D sibling of
// KalmanFilter2D's per-axis filter. The stream engine keeps one per sensor
// and feeds it records in event-time order at window close, so the filtered
// estimate is a pure function of the admitted record sequence -- which is
// what lets streamed output match the batch pipeline bit-for-bit.
class OnlineKalman1D {
 public:
  struct Options {
    // Continuous white-noise acceleration spectral density on the trend.
    double process_noise = 0.05;
    // Default 1-sigma measurement noise in value units; a record's own
    // reported stddev overrides it when positive.
    double measurement_noise = 1.0;
  };

  explicit OnlineKalman1D(Options options) : options_(options) {}
  OnlineKalman1D() : OnlineKalman1D(Options{}) {}

  struct Estimate {
    double value = 0.0;
    double stddev = 0.0;  // posterior 1-sigma on the level
  };

  // Incorporates one measurement at event time `t` (must be strictly after
  // the previous update) and returns the posterior estimate.
  Estimate Update(Timestamp t, double value, double reported_stddev);

  [[nodiscard]] bool initialized() const { return initialized_; }

 private:
  Options options_;
  bool initialized_ = false;
  Timestamp last_t_ = 0;
  // State mean [level, trend] and covariance.
  double x_ = 0.0, v_ = 0.0;
  double p00_ = 0.0, p01_ = 0.0, p11_ = 0.0;
};

}  // namespace refine
}  // namespace sidq

#pragma once

#include <vector>

#include "core/statusor.h"
#include "geometry/point.h"

namespace sidq {
namespace refine {

// One range observation: measured distance to a known anchor, with its
// 1-sigma noise (used as the WLS weight 1/sigma^2).
struct RangeMeasurement {
  geometry::Point anchor;
  double range = 0.0;
  double sigma = 1.0;
};

// Ensemble LR, multi-source flavour: weighted-least-squares trilateration
// (Gauss-Newton on the range residuals), as in INS/WiFi WLS systems
// (Chen et al., Sensors 2018).
class WlsTrilaterator {
 public:
  struct Options {
    int max_iterations = 25;
    double tolerance_m = 1e-4;
    // Levenberg damping added to the normal equations for stability.
    double damping = 1e-6;
  };

  explicit WlsTrilaterator(Options options) : options_(options) {}
  WlsTrilaterator() : WlsTrilaterator(Options{}) {}

  // Solves for the position from >= 3 range measurements, starting the
  // iteration from the anchors' weighted centroid.
  [[nodiscard]] StatusOr<geometry::Point> Solve(
      const std::vector<RangeMeasurement>& measurements) const;

 private:
  Options options_;
};

// A location estimate with its error variance (m^2), as produced by one
// positioning process.
struct LocationEstimate {
  geometry::Point p;
  double variance = 1.0;
};

// Ensemble LR, multi-source fusion: combines independent estimates by
// inverse-variance weighting -- the minimum-variance unbiased combination
// when sources are independent. Fails on an empty input.
[[nodiscard]] StatusOr<LocationEstimate> FuseEstimates(
    const std::vector<LocationEstimate>& estimates);

}  // namespace refine
}  // namespace sidq

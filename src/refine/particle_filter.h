#pragma once

#include <vector>

#include "core/exec_context.h"
#include "core/random.h"
#include "core/statusor.h"
#include "core/trajectory.h"
#include "sim/road_network.h"

namespace sidq {
namespace refine {

// Motion-based Location Refinement via sequential Monte Carlo: a bootstrap
// particle filter with a constant-velocity proposal. When a road network is
// attached, particle weights additionally favour on-road positions --
// the spatial-constraint modelling of Section 2.1 applied to filtering.
class ParticleFilter2D {
 public:
  struct Options {
    size_t num_particles = 300;
    // 1-sigma process acceleration noise (m/s^2).
    double accel_noise = 2.0;
    // Default 1-sigma measurement noise (m); per-point accuracy overrides.
    double measurement_noise = 10.0;
    // When a network is attached: soft road-constraint width (m).
    double road_sigma = 15.0;
    // Resample when effective sample size falls below this fraction.
    double resample_threshold = 0.5;
  };

  ParticleFilter2D(Options options, Rng* rng)
      : options_(options), rng_(rng) {}

  // Attaches a road network used as a soft spatial constraint (must
  // outlive the filter; pass nullptr to detach).
  void AttachNetwork(const sim::RoadNetwork* network) { network_ = network; }

  // Causal filtering of a time-ordered trajectory: each output point is the
  // weighted particle mean after assimilating that measurement. When `exec`
  // is non-null every filter step checks it cooperatively (deadline /
  // cancellation). Chaos site: "refine.particle_filter.step", keyed by
  // object id, evaluated once per measurement.
  [[nodiscard]] StatusOr<Trajectory> Filter(
      const Trajectory& noisy, const ExecContext* exec = nullptr) const;

 private:
  struct Particle {
    geometry::Point p;
    geometry::Point v;
    double weight = 1.0;
  };

  Options options_;
  Rng* rng_;
  const sim::RoadNetwork* network_ = nullptr;
};

}  // namespace refine
}  // namespace sidq

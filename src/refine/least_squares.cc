#include "refine/least_squares.h"

#include <cmath>

namespace sidq {
namespace refine {

StatusOr<geometry::Point> WlsTrilaterator::Solve(
    const std::vector<RangeMeasurement>& measurements) const {
  if (measurements.size() < 3) {
    return Status::InvalidArgument("trilateration needs >= 3 ranges");
  }
  // Start at the weighted anchor centroid.
  geometry::Point x(0.0, 0.0);
  double wsum = 0.0;
  for (const RangeMeasurement& m : measurements) {
    const double w = 1.0 / (m.sigma * m.sigma);
    x += m.anchor * w;
    wsum += w;
  }
  x = x / wsum;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Normal equations J^T W J dx = J^T W r for residuals
    // r_i = range_i - |x - anchor_i|.
    double a11 = options_.damping, a12 = 0.0, a22 = options_.damping;
    double b1 = 0.0, b2 = 0.0;
    for (const RangeMeasurement& m : measurements) {
      const geometry::Point diff = x - m.anchor;
      const double d = std::max(1e-9, diff.Norm());
      const double w = 1.0 / (m.sigma * m.sigma);
      // d(|x-a|)/dx = diff/d; residual derivative is -diff/d.
      const double jx = diff.x / d;
      const double jy = diff.y / d;
      const double r = m.range - d;
      a11 += w * jx * jx;
      a12 += w * jx * jy;
      a22 += w * jy * jy;
      // Solving J^T W J dx = -J^T W r with residual r = measured - model and
      // jacobian of the model being +j, the update is dx = (JtWJ)^-1 JtW r.
      b1 += w * jx * r;
      b2 += w * jy * r;
    }
    const double det = a11 * a22 - a12 * a12;
    if (std::abs(det) < 1e-18) {
      return Status::Internal("degenerate trilateration geometry");
    }
    const double dx = (a22 * b1 - a12 * b2) / det;
    const double dy = (-a12 * b1 + a11 * b2) / det;
    x.x += dx;
    x.y += dy;
    if (std::sqrt(dx * dx + dy * dy) < options_.tolerance_m) break;
  }
  return x;
}

StatusOr<LocationEstimate> FuseEstimates(
    const std::vector<LocationEstimate>& estimates) {
  if (estimates.empty()) {
    return Status::InvalidArgument("no estimates to fuse");
  }
  geometry::Point acc(0.0, 0.0);
  double wsum = 0.0;
  for (const LocationEstimate& e : estimates) {
    const double w = 1.0 / std::max(1e-12, e.variance);
    acc += e.p * w;
    wsum += w;
  }
  LocationEstimate out;
  out.p = acc / wsum;
  out.variance = 1.0 / wsum;
  return out;
}

}  // namespace refine
}  // namespace sidq

#include "refine/online_kalman.h"

#include <cmath>

namespace sidq {
namespace refine {

OnlineKalman1D::Estimate OnlineKalman1D::Update(Timestamp t, double value,
                                                double reported_stddev) {
  const double r = reported_stddev > 0.0 ? reported_stddev
                                         : options_.measurement_noise;
  const double r2 = r * r;
  if (!initialized_) {
    x_ = value;
    v_ = 0.0;
    p00_ = r2;
    p01_ = 0.0;
    p11_ = 100.0;
    initialized_ = true;
  } else {
    // Predict with F = [1 dt; 0 1], Q = q * [dt^3/3 dt^2/2; dt^2/2 dt],
    // same discretization as KalmanFilter2D's per-axis filter.
    const double dt = TimestampToSeconds(t - last_t_);
    const double q = options_.process_noise;
    x_ += dt * v_;
    const double p00n =
        p00_ + dt * (p01_ + p01_) + dt * dt * p11_ + q * dt * dt * dt / 3.0;
    const double p01n = p01_ + dt * p11_ + q * dt * dt / 2.0;
    const double p11n = p11_ + q * dt;
    p00_ = p00n;
    p01_ = p01n;
    p11_ = p11n;
  }
  // Measurement update with z ~ N(level, r2).
  const double s = p00_ + r2;
  const double k0 = p00_ / s;
  const double k1 = p01_ / s;
  const double innov = value - x_;
  x_ += k0 * innov;
  v_ += k1 * innov;
  const double p00n = (1.0 - k0) * p00_;
  const double p01n = (1.0 - k0) * p01_;
  const double p11n = p11_ - k1 * p01_;
  p00_ = p00n;
  p01_ = p01n;
  p11_ = p11n;
  last_t_ = t;
  return Estimate{x_, std::sqrt(std::max(0.0, p00_))};
}

}  // namespace refine
}  // namespace sidq

#include "refine/kalman.h"

#include <cmath>

namespace sidq {
namespace refine {

namespace {

// One predict step of the per-axis [pos, vel] constant-velocity model:
//   F = [1 dt; 0 1],  Q = q * [dt^3/3 dt^2/2; dt^2/2 dt].
void Predict(double dt, double q, double* x, double* v, double* p00,
             double* p01, double* p11) {
  *x += dt * *v;
  const double p00n = *p00 + dt * (*p01 + *p01) + dt * dt * *p11 +
                      q * dt * dt * dt / 3.0;
  const double p01n = *p01 + dt * *p11 + q * dt * dt / 2.0;
  const double p11n = *p11 + q * dt;
  *p00 = p00n;
  *p01 = p01n;
  *p11 = p11n;
}

// Measurement update with z ~ N(pos, r2).
void Update(double z, double r2, double* x, double* v, double* p00,
            double* p01, double* p11) {
  const double s = *p00 + r2;
  const double k0 = *p00 / s;
  const double k1 = *p01 / s;
  const double innov = z - *x;
  *x += k0 * innov;
  *v += k1 * innov;
  const double p00n = (1.0 - k0) * *p00;
  const double p01n = (1.0 - k0) * *p01;
  const double p11n = *p11 - k1 * *p01;
  *p00 = p00n;
  *p01 = p01n;
  *p11 = p11n;
}

}  // namespace

Status KalmanFilter2D::RunForward(
    const Trajectory& noisy,
    std::vector<std::array<Step, 2>>* steps) const {
  if (noisy.empty()) return Status::FailedPrecondition("empty trajectory");
  if (!noisy.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  steps->clear();
  steps->reserve(noisy.size());

  const double default_r2 =
      options_.measurement_noise * options_.measurement_noise;
  const double q = options_.process_noise;

  std::array<AxisState, 2> state;
  for (size_t i = 0; i < noisy.size(); ++i) {
    const TrajectoryPoint& pt = noisy[i];
    const double z[2] = {pt.p.x, pt.p.y};
    const double r2 =
        pt.accuracy > 0.0 ? pt.accuracy * pt.accuracy : default_r2;
    std::array<Step, 2> step;
    const double dt =
        i == 0 ? 0.0 : TimestampToSeconds(pt.t - noisy[i - 1].t);
    for (int axis = 0; axis < 2; ++axis) {
      AxisState& s = state[axis];
      if (i == 0) {
        // Initialize at the first measurement with large prior covariance.
        s.x = z[axis];
        s.v = 0.0;
        s.p00 = r2;
        s.p01 = 0.0;
        s.p11 = 100.0;
      } else {
        Predict(dt, q, &s.x, &s.v, &s.p00, &s.p01, &s.p11);
      }
      step[axis].predicted = s;
      step[axis].dt = dt;
      Update(z[axis], r2, &s.x, &s.v, &s.p00, &s.p01, &s.p11);
      step[axis].filtered = s;
    }
    steps->push_back(step);
  }
  return Status::OK();
}

StatusOr<Trajectory> KalmanFilter2D::Filter(const Trajectory& noisy) const {
  std::vector<std::array<Step, 2>> steps;
  SIDQ_RETURN_IF_ERROR(RunForward(noisy, &steps));
  Trajectory out(noisy.object_id());
  for (size_t i = 0; i < steps.size(); ++i) {
    TrajectoryPoint pt = noisy[i];
    pt.p = geometry::Point(steps[i][0].filtered.x, steps[i][1].filtered.x);
    pt.accuracy = std::sqrt(
        std::max(0.0, (steps[i][0].filtered.p00 + steps[i][1].filtered.p00) /
                          2.0));
    out.AppendUnordered(pt);
  }
  return out;
}

StatusOr<Trajectory> KalmanFilter2D::Smooth(const Trajectory& noisy) const {
  std::vector<std::array<Step, 2>> steps;
  SIDQ_RETURN_IF_ERROR(RunForward(noisy, &steps));
  const size_t n = steps.size();
  // RTS backward pass per axis.
  std::vector<std::array<AxisState, 2>> smoothed(n);
  for (int axis = 0; axis < 2; ++axis) {
    smoothed[n - 1][axis] = steps[n - 1][axis].filtered;
    for (size_t i = n - 1; i-- > 0;) {
      const AxisState& f = steps[i][axis].filtered;
      const AxisState& pr = steps[i + 1][axis].predicted;
      const AxisState& sn = smoothed[i + 1][axis];
      const double dt = steps[i + 1][axis].dt;
      // F = [1 dt; 0 1]; C = P_f F^T P_pred^-1 (2x2 solve).
      // P_f F^T:
      const double a00 = f.p00 + dt * f.p01;
      const double a01 = f.p01;
      const double a10 = f.p01 + dt * f.p11;
      const double a11 = f.p11;
      // invert predicted covariance
      const double det = pr.p00 * pr.p11 - pr.p01 * pr.p01;
      if (std::abs(det) < 1e-18) {
        smoothed[i][axis] = f;
        continue;
      }
      const double i00 = pr.p11 / det;
      const double i01 = -pr.p01 / det;
      const double i11 = pr.p00 / det;
      const double c00 = a00 * i00 + a01 * i01;
      const double c01 = a00 * i01 + a01 * i11;
      const double c10 = a10 * i00 + a11 * i01;
      const double c11 = a10 * i01 + a11 * i11;
      AxisState s;
      const double dx = sn.x - pr.x;
      const double dv = sn.v - pr.v;
      s.x = f.x + c00 * dx + c01 * dv;
      s.v = f.v + c10 * dx + c11 * dv;
      // Covariance: P_s = P_f + C (P_s,next - P_pred) C^T.
      const double q00 = sn.p00 - pr.p00;
      const double q01 = sn.p01 - pr.p01;
      const double q11 = sn.p11 - pr.p11;
      const double t00 = c00 * q00 + c01 * q01;
      const double t01 = c00 * q01 + c01 * q11;
      const double t10 = c10 * q00 + c11 * q01;
      const double t11 = c10 * q01 + c11 * q11;
      s.p00 = f.p00 + t00 * c00 + t01 * c01;
      s.p01 = f.p01 + t00 * c10 + t01 * c11;
      s.p11 = f.p11 + t10 * c10 + t11 * c11;
      smoothed[i][axis] = s;
    }
  }
  Trajectory out(noisy.object_id());
  for (size_t i = 0; i < n; ++i) {
    TrajectoryPoint pt = noisy[i];
    pt.p = geometry::Point(smoothed[i][0].x, smoothed[i][1].x);
    pt.accuracy = std::sqrt(std::max(
        0.0, (smoothed[i][0].p00 + smoothed[i][1].p00) / 2.0));
    out.AppendUnordered(pt);
  }
  return out;
}

}  // namespace refine
}  // namespace sidq

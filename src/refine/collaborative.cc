#include "refine/collaborative.h"

#include <cmath>

namespace sidq {
namespace refine {

StatusOr<std::vector<geometry::Point>> JointDenoise(
    const std::vector<JointDenoiseInput>& inputs) {
  geometry::Point bias(0.0, 0.0);
  size_t anchors = 0;
  for (const JointDenoiseInput& in : inputs) {
    if (in.is_anchor) {
      bias += in.observed - in.anchor_truth;
      ++anchors;
    }
  }
  if (anchors == 0) {
    return Status::FailedPrecondition("joint denoising needs >= 1 anchor");
  }
  bias = bias / static_cast<double>(anchors);
  std::vector<geometry::Point> out;
  out.reserve(inputs.size());
  for (const JointDenoiseInput& in : inputs) {
    out.push_back(in.observed - bias);
  }
  return out;
}

StatusOr<std::vector<geometry::Point>> IterativeRefiner::Refine(
    const std::vector<geometry::Point>& observed,
    const std::vector<PairRange>& ranges) const {
  for (const PairRange& r : ranges) {
    if (r.i >= observed.size() || r.j >= observed.size() || r.i == r.j) {
      return Status::InvalidArgument("bad pair indices");
    }
  }
  std::vector<geometry::Point> pos = observed;
  std::vector<geometry::Point> grad(pos.size());
  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (geometry::Point& g : grad) g = geometry::Point(0.0, 0.0);
    for (const PairRange& r : ranges) {
      const geometry::Point diff = pos[r.i] - pos[r.j];
      const double d = std::max(1e-9, diff.Norm());
      const double w = 1.0 / (r.sigma * r.sigma);
      // d/dp_i of (d - d_ij)^2 = 2 (d - d_ij) * diff / d.
      const geometry::Point g_pair = diff * (2.0 * w * (d - r.distance) / d);
      grad[r.i] += g_pair;
      grad[r.j] -= g_pair;
    }
    for (size_t i = 0; i < pos.size(); ++i) {
      grad[i] += (pos[i] - observed[i]) * (2.0 * options_.anchor_lambda);
    }
    // Damped step, normalised per point so a single bad pair cannot blow up.
    const double step = options_.step / (1.0 + 0.02 * iter);
    for (size_t i = 0; i < pos.size(); ++i) {
      geometry::Point g = grad[i];
      const double gn = g.Norm();
      if (gn > 10.0) g = g * (10.0 / gn);
      pos[i] -= g * step;
    }
  }
  return pos;
}

}  // namespace refine
}  // namespace sidq

#include "fault/rfid_cleaning.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

namespace sidq {
namespace fault {

namespace {

// Buckets readings into ticks; tick k covers [t0 + k*tick, t0 + (k+1)*tick).
struct TickGrid {
  Timestamp t0 = 0;
  Timestamp tick = 1;
  size_t num_ticks = 0;
  std::vector<std::vector<RegionId>> observed;  // regions per tick
};

StatusOr<TickGrid> MakeGrid(const SymbolicTrajectory& traj,
                            Timestamp tick_ms) {
  if (traj.empty()) return Status::FailedPrecondition("empty trajectory");
  if (tick_ms <= 0) return Status::InvalidArgument("tick must be positive");
  TickGrid grid;
  grid.t0 = traj.readings().front().t;
  Timestamp t_max = grid.t0;
  for (const SymbolicReading& r : traj.readings()) {
    grid.t0 = std::min(grid.t0, r.t);
    t_max = std::max(t_max, r.t);
  }
  grid.tick = tick_ms;
  grid.num_ticks = static_cast<size_t>((t_max - grid.t0) / tick_ms) + 1;
  grid.observed.resize(grid.num_ticks);
  for (const SymbolicReading& r : traj.readings()) {
    const size_t k = static_cast<size_t>((r.t - grid.t0) / tick_ms);
    grid.observed[k].push_back(r.region);
  }
  return grid;
}

SymbolicTrajectory FromRegions(ObjectId object,
                               const std::vector<RegionId>& regions,
                               Timestamp t0, Timestamp tick) {
  SymbolicTrajectory out(object);
  for (size_t k = 0; k < regions.size(); ++k) {
    out.Append(regions[k], t0 + static_cast<Timestamp>(k) * tick);
  }
  return out;
}

}  // namespace

StatusOr<SymbolicTrajectory> SmoothingWindowCleaner::Clean(
    const SymbolicTrajectory& dirty) const {
  SIDQ_ASSIGN_OR_RETURN(TickGrid grid, MakeGrid(dirty, options_.tick_ms));
  std::vector<RegionId> repaired(grid.num_ticks, 0);
  RegionId prev = grid.observed.empty() || grid.observed[0].empty()
                      ? 0
                      : grid.observed[0].front();
  // Find the first observed region for leading gap fill.
  for (const auto& obs : grid.observed) {
    if (!obs.empty()) {
      prev = obs.front();
      break;
    }
  }
  int w = options_.half_window_ticks;
  if (options_.adaptive) {
    // Estimated per-tick read probability over the whole stream; the
    // window grows until it is expected to hold target_reads readings.
    size_t ticks_with_reads = 0;
    for (const auto& obs : grid.observed) {
      ticks_with_reads += obs.empty() ? 0 : 1;
    }
    const double read_rate =
        std::max(0.05, static_cast<double>(ticks_with_reads) /
                           static_cast<double>(grid.num_ticks));
    w = static_cast<int>(
        std::ceil(options_.target_reads / read_rate / 2.0));
    w = std::clamp(w, 1, options_.max_half_window_ticks);
  }
  for (size_t k = 0; k < grid.num_ticks; ++k) {
    std::map<RegionId, int> counts;
    const size_t lo = k >= static_cast<size_t>(w) ? k - w : 0;
    const size_t hi = std::min(grid.num_ticks - 1, k + static_cast<size_t>(w));
    for (size_t j = lo; j <= hi; ++j) {
      for (RegionId r : grid.observed[j]) counts[r] += 1;
    }
    if (!counts.empty()) {
      // Mode; ties resolved toward the previous region for continuity.
      RegionId best = counts.begin()->first;
      int best_count = counts.begin()->second;
      for (const auto& [r, c] : counts) {
        if (c > best_count || (c == best_count && r == prev)) {
          best = r;
          best_count = c;
        }
      }
      repaired[k] = best;
    } else {
      repaired[k] = prev;
    }
    prev = repaired[k];
  }
  return FromRegions(dirty.object(), repaired, grid.t0, grid.tick);
}

StatusOr<SymbolicTrajectory> ConstraintCleaner::Clean(
    const SymbolicTrajectory& dirty) const {
  SIDQ_ASSIGN_OR_RETURN(TickGrid grid, MakeGrid(dirty, options_.tick_ms));
  std::vector<RegionId> repaired(grid.num_ticks, 0);
  // Seed: first observed region that is consistent with the next
  // observation (equal or adjacent), otherwise just the first observed.
  RegionId prev = 0;
  bool have_prev = false;
  for (size_t k = 0; k < grid.num_ticks && !have_prev; ++k) {
    for (RegionId r : grid.observed[k]) {
      prev = r;
      have_prev = true;
      break;
    }
  }
  for (size_t k = 0; k < grid.num_ticks; ++k) {
    const auto& obs = grid.observed[k];
    RegionId chosen = prev;
    bool found = false;
    // Prefer a reading equal to the previous region (no move), then an
    // adjacent one (legal move); everything else is a false positive.
    for (RegionId r : obs) {
      if (r == prev) {
        chosen = r;
        found = true;
        break;
      }
    }
    if (!found) {
      for (RegionId r : obs) {
        if (deployment_->Adjacent(prev, r)) {
          chosen = r;
          found = true;
          break;
        }
      }
    }
    repaired[k] = chosen;
    prev = chosen;
  }
  return FromRegions(dirty.object(), repaired, grid.t0, grid.tick);
}

StatusOr<SymbolicTrajectory> HmmCleaner::Clean(
    const SymbolicTrajectory& dirty) const {
  SIDQ_ASSIGN_OR_RETURN(TickGrid grid, MakeGrid(dirty, options_.tick_ms));
  const size_t num_regions = deployment_->num_readers();
  const size_t T = grid.num_ticks;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  constexpr double kFalseProb = 0.01;  // spurious read from a far reader

  const double log_det = std::log(options_.detection_prob);
  const double log_no_det = std::log(1.0 - options_.detection_prob);
  const double log_cross = std::log(options_.cross_read_prob);
  const double log_no_cross = std::log(1.0 - options_.cross_read_prob);
  const double log_false = std::log(kFalseProb);
  const double log_no_false = std::log(1.0 - kFalseProb);

  // Baseline emission mass assuming nothing was observed, per state.
  std::vector<double> absent_base(num_regions);
  for (size_t s = 0; s < num_regions; ++s) {
    const double deg =
        static_cast<double>(deployment_->neighbors(static_cast<RegionId>(s))
                                .size());
    absent_base[s] = log_no_det + deg * log_no_cross +
                     (static_cast<double>(num_regions) - 1.0 - deg) *
                         log_no_false;
  }
  auto present_adjust = [&](size_t s, RegionId o) {
    if (o == s) return log_det - log_no_det;
    if (deployment_->Adjacent(static_cast<RegionId>(s), o)) {
      return log_cross - log_no_cross;
    }
    return log_false - log_no_false;
  };

  std::vector<std::vector<double>> score(T,
                                         std::vector<double>(num_regions));
  std::vector<std::vector<int>> back(T, std::vector<int>(num_regions, -1));
  auto emission = [&](size_t t, size_t s) {
    double e = absent_base[s];
    for (RegionId o : grid.observed[t]) e += present_adjust(s, o);
    return e;
  };
  for (size_t s = 0; s < num_regions; ++s) {
    score[0][s] = emission(0, s) - std::log(static_cast<double>(num_regions));
  }
  const double log_stay = std::log(options_.stay_prob);
  for (size_t t = 1; t < T; ++t) {
    for (size_t s = 0; s < num_regions; ++s) {
      double best = score[t - 1][s] + log_stay;
      int best_from = static_cast<int>(s);
      for (RegionId nb : deployment_->neighbors(static_cast<RegionId>(s))) {
        const double move_deg = static_cast<double>(
            deployment_->neighbors(nb).size());
        const double log_move =
            std::log((1.0 - options_.stay_prob) / std::max(1.0, move_deg));
        const double cand = score[t - 1][nb] + log_move;
        if (cand > best) {
          best = cand;
          best_from = static_cast<int>(nb);
        }
      }
      score[t][s] = best + emission(t, s);
      back[t][s] = best_from;
    }
  }
  // Backtrack.
  std::vector<RegionId> repaired(T);
  size_t cur = 0;
  for (size_t s = 1; s < num_regions; ++s) {
    if (score[T - 1][s] > score[T - 1][cur]) cur = s;
  }
  repaired[T - 1] = static_cast<RegionId>(cur);
  for (size_t t = T - 1; t-- > 0;) {
    cur = static_cast<size_t>(back[t + 1][cur]);
    repaired[t] = static_cast<RegionId>(cur);
  }
  (void)kNegInf;
  return FromRegions(dirty.object(), repaired, grid.t0, grid.tick);
}

double TickAccuracy(const SymbolicTrajectory& repaired,
                    const SymbolicTrajectory& truth, Timestamp tick_ms) {
  if (truth.empty() || repaired.empty()) return 0.0;
  // Piecewise-constant region lookup.
  auto region_at = [](const SymbolicTrajectory& tr,
                      Timestamp t) -> int64_t {
    int64_t region = -1;
    for (const SymbolicReading& r : tr.readings()) {
      if (r.t <= t) {
        region = r.region;
      } else {
        break;
      }
    }
    return region;
  };
  const Timestamp t0 = truth.readings().front().t;
  const Timestamp t1 = truth.readings().back().t;
  size_t total = 0, correct = 0;
  for (Timestamp t = t0; t <= t1; t += tick_ms) {
    const int64_t tr = region_at(truth, t);
    const int64_t rr = region_at(repaired, t);
    if (tr < 0) continue;
    ++total;
    if (tr == rr) ++correct;
  }
  return total > 0 ? static_cast<double>(correct) /
                         static_cast<double>(total)
                   : 0.0;
}

}  // namespace fault
}  // namespace sidq

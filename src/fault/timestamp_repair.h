#pragma once

#include <vector>

#include "core/statusor.h"
#include "core/trajectory.h"
#include "core/types.h"

namespace sidq {
namespace fault {

// Timestamp fault correction under temporal constraints (Song et al.,
// VLDB Journal 2021 family): repairs imprecise or disordered timestamps
// with the minimum total change that restores the constraints.

// Minimal-L2-change repair restoring non-decreasing order: isotonic
// regression via the pool-adjacent-violators algorithm (PAVA). When
// min_gap_ms > 0 the repaired sequence additionally satisfies
// t[i+1] >= t[i] + min_gap_ms (solved by PAVA on t[i] - i*min_gap).
[[nodiscard]] StatusOr<std::vector<Timestamp>> RepairTimestamps(
    const std::vector<Timestamp>& observed, Timestamp min_gap_ms = 0);

// Applies RepairTimestamps to a trajectory's timestamps in record order.
[[nodiscard]] StatusOr<Trajectory> RepairTrajectoryTimestamps(const Trajectory& input,
                                                Timestamp min_gap_ms = 0);

}  // namespace fault
}  // namespace sidq

#include "fault/value_repair.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sidq {
namespace fault {

namespace {

// Weighted median: the value at which the cumulative weight reaches half.
// Robust to a minority of faulty neighbours, unlike a weighted mean.
double WeightedMedian(std::vector<std::pair<double, double>> value_weight) {
  if (value_weight.empty()) return 0.0;
  std::sort(value_weight.begin(), value_weight.end());
  double total = 0.0;
  for (const auto& [v, w] : value_weight) total += w;
  double acc = 0.0;
  for (const auto& [v, w] : value_weight) {
    acc += w;
    if (acc >= total / 2.0) return v;
  }
  return value_weight.back().first;
}

}  // namespace

StatusOr<StDataset> ConsensusValueRepairer::Repair(
    const StDataset& dirty,
    std::vector<std::vector<bool>>* repaired_flags) const {
  StDataset out(dirty.field_name());
  if (repaired_flags != nullptr) repaired_flags->clear();
  const double r_sq = options_.radius_m * options_.radius_m;
  for (size_t si = 0; si < dirty.num_sensors(); ++si) {
    const StSeries& s = dirty.series()[si];
    StSeries repaired(s.sensor(), s.loc());
    std::vector<bool> flags(s.size(), false);
    for (size_t i = 0; i < s.size(); ++i) {
      const StRecord& rec = s[i];
      std::vector<std::pair<double, double>> neighbor_values;
      for (size_t sj = 0; sj < dirty.num_sensors(); ++sj) {
        if (sj == si) continue;
        const StSeries& other = dirty.series()[sj];
        if (other.empty()) continue;
        const double d_sq = geometry::DistanceSq(other.loc(), rec.loc);
        if (d_sq > r_sq) continue;
        // Closest-in-time record of the neighbour within the window.
        const StRecord* best = nullptr;
        Timestamp best_dt = options_.window_ms + 1;
        for (const StRecord& orec : other.records()) {
          const Timestamp dt = std::abs(orec.t - rec.t);
          if (dt <= options_.window_ms && dt < best_dt) {
            best = &orec;
            best_dt = dt;
          }
        }
        if (best == nullptr) continue;
        const double w =
            std::exp(-std::sqrt(d_sq) / options_.distance_scale_m);
        neighbor_values.emplace_back(best->value, w);
      }
      double value = rec.value;
      if (neighbor_values.size() >= options_.min_neighbors) {
        // Robust consensus: weighted median tolerates faulty neighbours.
        const double consensus = WeightedMedian(std::move(neighbor_values));
        if (std::abs(rec.value - consensus) > options_.max_deviation) {
          value = consensus;
          flags[i] = true;
        }
      }
      SIDQ_CHECK_OK(repaired.Append(rec.t, value, rec.stddev));
    }
    out.AddSeries(std::move(repaired));
    if (repaired_flags != nullptr) repaired_flags->push_back(std::move(flags));
  }
  return out;
}

StatusOr<StDataset> DriftCorrector::Repair(const StDataset& dirty,
                                           std::vector<bool>* corrected) const {
  StDataset out(dirty.field_name());
  if (corrected != nullptr) corrected->clear();
  const size_t n = dirty.num_sensors();
  for (size_t si = 0; si < n; ++si) {
    const StSeries& s = dirty.series()[si];
    // Spatial neighbours by distance.
    std::vector<std::pair<double, size_t>> others;
    for (size_t sj = 0; sj < n; ++sj) {
      if (sj == si || dirty.series()[sj].empty()) continue;
      others.emplace_back(
          geometry::DistanceSq(dirty.series()[sj].loc(), s.loc()), sj);
    }
    const size_t k = std::min(options_.neighbors, others.size());
    std::partial_sort(others.begin(), others.begin() + k, others.end());

    // Residual against neighbour consensus per record, then an OLS slope
    // over the record index.
    double sum_i = 0.0, sum_r = 0.0, sum_ii = 0.0, sum_ir = 0.0;
    size_t m = 0;
    for (size_t i = 0; i < s.size(); ++i) {
      // Median of neighbour values: robust to neighbours that drift too.
      std::vector<std::pair<double, double>> neighbor_values;
      for (size_t q = 0; q < k; ++q) {
        const StSeries& other = dirty.series()[others[q].second];
        auto v = other.InterpolateAt(std::clamp(
            s[i].t, other.records().front().t, other.records().back().t));
        if (v.ok()) neighbor_values.emplace_back(v.value(), 1.0);
      }
      if (neighbor_values.empty()) continue;
      const double residual =
          s[i].value - WeightedMedian(std::move(neighbor_values));
      const double x = static_cast<double>(i);
      sum_i += x;
      sum_r += residual;
      sum_ii += x * x;
      sum_ir += x * residual;
      ++m;
    }
    double slope = 0.0;
    if (m >= 3) {
      const double denom =
          static_cast<double>(m) * sum_ii - sum_i * sum_i;
      if (std::abs(denom) > 1e-12) {
        slope = (static_cast<double>(m) * sum_ir - sum_i * sum_r) / denom;
      }
    }
    const bool fix = std::abs(slope) >= options_.min_slope;
    StSeries repaired(s.sensor(), s.loc());
    for (size_t i = 0; i < s.size(); ++i) {
      const double v =
          fix ? s[i].value - slope * static_cast<double>(i) : s[i].value;
      SIDQ_CHECK_OK(repaired.Append(s[i].t, v, s[i].stddev));
    }
    out.AddSeries(std::move(repaired));
    if (corrected != nullptr) corrected->push_back(fix);
  }
  return out;
}

}  // namespace fault
}  // namespace sidq

#pragma once

#include <vector>

#include "core/statusor.h"
#include "core/stid.h"
#include "core/types.h"

namespace sidq {
namespace fault {

// STID thematic value repair (Section 2.2.4): wrong values are found and
// fixed by comparative analysis against spatiotemporal neighbours.

// Belief-based repair (Pumpichet et al., ICC 2012 family): a record whose
// value deviates from the weighted consensus of its ST-neighbours by more
// than `max_deviation` is replaced by that consensus. Weights decay with
// spatial distance.
class ConsensusValueRepairer {
 public:
  struct Options {
    double radius_m = 500.0;
    Timestamp window_ms = 90'000;
    double max_deviation = 8.0;
    size_t min_neighbors = 3;
    double distance_scale_m = 250.0;  // weight = exp(-d / scale)
  };

  explicit ConsensusValueRepairer(Options options) : options_(options) {}
  ConsensusValueRepairer() : ConsensusValueRepairer(Options{}) {}

  // Repairs values in place across the dataset; returns the repaired copy
  // and (optionally) per-series repair flags.
  [[nodiscard]] StatusOr<StDataset> Repair(
      const StDataset& dirty,
      std::vector<std::vector<bool>>* repaired_flags = nullptr) const;

 private:
  Options options_;
};

// Drift correction: estimates a per-sensor linear drift as the slope of the
// residual between the sensor's series and the consensus of its spatial
// neighbours, and subtracts it when the slope is significant.
class DriftCorrector {
 public:
  struct Options {
    size_t neighbors = 5;
    // Minimum |slope| (units per sample) considered a real drift; residual
    // slopes below this are measurement noise, not systematic drift.
    double min_slope = 0.1;
  };

  explicit DriftCorrector(Options options) : options_(options) {}
  DriftCorrector() : DriftCorrector(Options{}) {}

  [[nodiscard]] StatusOr<StDataset> Repair(const StDataset& dirty,
                             std::vector<bool>* corrected = nullptr) const;

 private:
  Options options_;
};

}  // namespace fault
}  // namespace sidq

#include "fault/timestamp_repair.h"

#include <cmath>

#include "core/failpoint.h"

namespace sidq {
namespace fault {

StatusOr<std::vector<Timestamp>> RepairTimestamps(
    const std::vector<Timestamp>& observed, Timestamp min_gap_ms) {
  if (min_gap_ms < 0) {
    return Status::InvalidArgument("min_gap_ms must be >= 0");
  }
  const size_t n = observed.size();
  if (n == 0) return std::vector<Timestamp>{};
  // Shift by -i*gap so the min-gap constraint becomes plain monotonicity.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = static_cast<double>(observed[i]) -
           static_cast<double>(min_gap_ms) * static_cast<double>(i);
  }
  // PAVA with blocks (value = block mean, weight = block size).
  std::vector<double> value;
  std::vector<double> weight;
  std::vector<size_t> count;
  value.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    value.push_back(y[i]);
    weight.push_back(1.0);
    count.push_back(1);
    while (value.size() >= 2 &&
           value[value.size() - 2] > value[value.size() - 1]) {
      const double w = weight[weight.size() - 2] + weight.back();
      const double v = (value[value.size() - 2] * weight[weight.size() - 2] +
                        value.back() * weight.back()) /
                       w;
      value.pop_back();
      weight.pop_back();
      const size_t c = count.back();
      count.pop_back();
      value.back() = v;
      weight.back() = w;
      count.back() += c;
    }
  }
  std::vector<Timestamp> out;
  out.reserve(n);
  size_t idx = 0;
  for (size_t b = 0; b < value.size(); ++b) {
    for (size_t k = 0; k < count[b]; ++k, ++idx) {
      const double repaired =
          value[b] +
          static_cast<double>(min_gap_ms) * static_cast<double>(idx);
      out.push_back(static_cast<Timestamp>(std::llround(repaired)));
    }
  }
  // Rounding can reintroduce an off-by-one order violation; fix forward.
  for (size_t i = 1; i < out.size(); ++i) {
    if (out[i] < out[i - 1] + min_gap_ms) out[i] = out[i - 1] + min_gap_ms;
  }
  return out;
}

StatusOr<Trajectory> RepairTrajectoryTimestamps(const Trajectory& input,
                                                Timestamp min_gap_ms) {
  // Chaos site: lets tests inject transient/permanent repair failures or a
  // corrupted repair (an order violation the repair claims to have fixed).
  bool corrupt = false;
  SIDQ_RETURN_IF_ERROR(MaybeInjectFailPoint(
      "fault.timestamp_repair", input.object_id(), nullptr, &corrupt));
  std::vector<Timestamp> ts;
  ts.reserve(input.size());
  for (const TrajectoryPoint& pt : input.points()) ts.push_back(pt.t);
  SIDQ_ASSIGN_OR_RETURN(std::vector<Timestamp> repaired,
                        RepairTimestamps(ts, min_gap_ms));
  if (corrupt && repaired.size() > 1) {
    repaired.back() = repaired.front() - 1;
  }
  Trajectory out(input.object_id());
  for (size_t i = 0; i < input.size(); ++i) {
    TrajectoryPoint pt = input[i];
    pt.t = repaired[i];
    out.AppendUnordered(pt);
  }
  return out;
}

}  // namespace fault
}  // namespace sidq

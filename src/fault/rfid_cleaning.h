#pragma once

#include <vector>

#include "core/statusor.h"
#include "core/symbolic.h"
#include "core/types.h"
#include "sim/rfid.h"

namespace sidq {
namespace fault {

// Symbolic (RFID) trajectory fault correction, Section 2.2.4: false
// negatives (missed reads) and false positives (cross reads) are detected
// and repaired. All cleaners emit a dense repaired trajectory with exactly
// one reading per tick of `tick_ms` spanning the observation window.

// Smoothing-window cleaning (SMURF family, Jeffery et al. VLDB 2006):
// a tick's region is the most frequent region observed within a window of
// `half_window_ticks` ticks around it; empty windows inherit the previous
// repaired region. With `adaptive` set, the window instead sizes itself
// from the observed read rate so that it is expected to contain at least
// `target_reads` readings -- SMURF's core idea: lossy readers need wider
// windows, reliable readers need narrow ones to track motion.
class SmoothingWindowCleaner {
 public:
  struct Options {
    int half_window_ticks = 2;
    Timestamp tick_ms = 1000;
    bool adaptive = false;
    double target_reads = 2.5;
    int max_half_window_ticks = 10;
  };

  explicit SmoothingWindowCleaner(Options options) : options_(options) {}
  SmoothingWindowCleaner() : SmoothingWindowCleaner(Options{}) {}

  [[nodiscard]] StatusOr<SymbolicTrajectory> Clean(const SymbolicTrajectory& dirty) const;

 private:
  Options options_;
};

// Constraint-based cleaning (Chen et al. SIGMOD 2010 / Fazzinga et al.
// TODS 2016 family): readings violating the deployment's adjacency
// constraints against their temporal neighbours are discarded as false
// positives; remaining gaps are filled from the previous region.
class ConstraintCleaner {
 public:
  struct Options {
    Timestamp tick_ms = 1000;
  };

  ConstraintCleaner(const sim::RfidDeployment* deployment, Options options)
      : deployment_(deployment), options_(options) {}
  explicit ConstraintCleaner(const sim::RfidDeployment* deployment)
      : ConstraintCleaner(deployment, Options{}) {}

  [[nodiscard]] StatusOr<SymbolicTrajectory> Clean(const SymbolicTrajectory& dirty) const;

 private:
  const sim::RfidDeployment* deployment_;
  Options options_;
};

// Probabilistic (HMM) cleaning (Baba et al. SIGMOD 2016 family): hidden
// state = true region per tick; transitions allow staying or moving to an
// adjacent region; emissions model detection probability and cross-read
// rate. Viterbi decodes the most likely region sequence.
class HmmCleaner {
 public:
  struct Options {
    Timestamp tick_ms = 1000;
    double stay_prob = 0.8;        // P(region unchanged between ticks)
    double detection_prob = 0.85;  // P(read | object in region)
    double cross_read_prob = 0.05; // P(ghost read from a neighbour)
  };

  HmmCleaner(const sim::RfidDeployment* deployment, Options options)
      : deployment_(deployment), options_(options) {}
  explicit HmmCleaner(const sim::RfidDeployment* deployment)
      : HmmCleaner(deployment, Options{}) {}

  [[nodiscard]] StatusOr<SymbolicTrajectory> Clean(const SymbolicTrajectory& dirty) const;

 private:
  const sim::RfidDeployment* deployment_;
  Options options_;
};

// Fraction of ticks whose repaired region equals the truth region
// (both trajectories interpreted as piecewise-constant in time).
double TickAccuracy(const SymbolicTrajectory& repaired,
                    const SymbolicTrajectory& truth, Timestamp tick_ms);

}  // namespace fault
}  // namespace sidq

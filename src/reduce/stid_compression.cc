#include "reduce/stid_compression.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "reduce/coding.h"

namespace sidq {
namespace reduce {

LosslessEncoded LosslessCompress(const StSeries& series, double quantum) {
  LosslessEncoded out;
  out.quantum = quantum;
  std::vector<int64_t> ts, vs;
  ts.reserve(series.size());
  vs.reserve(series.size());
  for (const StRecord& r : series.records()) {
    ts.push_back(r.t);
    vs.push_back(static_cast<int64_t>(std::llround(r.value / quantum)));
  }
  out.timestamps = EncodeIntegerSeries(ts);
  out.values = EncodeIntegerSeries(vs);
  return out;
}

StatusOr<StSeries> LosslessDecompress(const LosslessEncoded& encoded,
                                      SensorId sensor,
                                      const geometry::Point& loc) {
  SIDQ_ASSIGN_OR_RETURN(std::vector<int64_t> ts,
                        DecodeIntegerSeries(encoded.timestamps));
  SIDQ_ASSIGN_OR_RETURN(std::vector<int64_t> vs,
                        DecodeIntegerSeries(encoded.values));
  if (ts.size() != vs.size()) {
    return Status::DataLoss("timestamp/value count mismatch");
  }
  StSeries out(sensor, loc);
  for (size_t i = 0; i < ts.size(); ++i) {
    SIDQ_RETURN_IF_ERROR(out.Append(
        ts[i], static_cast<double>(vs[i]) * encoded.quantum));
  }
  return out;
}

StatusOr<LtcEncoded> LtcCompress(const StSeries& series, double epsilon) {
  if (epsilon < 0.0) return Status::InvalidArgument("epsilon must be >= 0");
  LtcEncoded out;
  out.epsilon = epsilon;
  const auto& recs = series.records();
  const size_t n = recs.size();
  if (n == 0) return out;
  // Greedy segment growth with knots at actual samples: extend while every
  // intermediate sample stays within epsilon of the knot->candidate line.
  size_t knot = 0;
  out.knot_times.push_back(recs[0].t);
  out.knot_values.push_back(recs[0].value);
  size_t i = 1;
  while (i < n) {
    size_t best = i;
    for (size_t j = i; j < n; ++j) {
      // Validate segment knot -> j.
      bool ok = true;
      const double t0 = static_cast<double>(recs[knot].t);
      const double t1 = static_cast<double>(recs[j].t);
      const double v0 = recs[knot].value;
      const double v1 = recs[j].value;
      for (size_t m = knot + 1; m < j && ok; ++m) {
        const double tm = static_cast<double>(recs[m].t);
        const double f = t1 > t0 ? (tm - t0) / (t1 - t0) : 0.0;
        const double interp = v0 + (v1 - v0) * f;
        ok = std::abs(interp - recs[m].value) <= epsilon;
      }
      if (ok) {
        best = j;
      } else {
        break;
      }
    }
    out.knot_times.push_back(recs[best].t);
    out.knot_values.push_back(recs[best].value);
    knot = best;
    i = best + 1;
  }
  return out;
}

StatusOr<StSeries> LtcDecompress(const LtcEncoded& encoded,
                                 const std::vector<Timestamp>& timestamps,
                                 SensorId sensor,
                                 const geometry::Point& loc) {
  if (encoded.knot_times.empty()) {
    if (!timestamps.empty()) {
      return Status::InvalidArgument("no knots but timestamps requested");
    }
    return StSeries(sensor, loc);
  }
  StSeries out(sensor, loc);
  size_t seg = 0;
  for (Timestamp t : timestamps) {
    while (seg + 1 < encoded.knot_times.size() &&
           encoded.knot_times[seg + 1] < t) {
      ++seg;
    }
    double value;
    if (t <= encoded.knot_times.front()) {
      value = encoded.knot_values.front();
    } else if (t >= encoded.knot_times.back()) {
      value = encoded.knot_values.back();
    } else {
      const Timestamp t0 = encoded.knot_times[seg];
      const Timestamp t1 = encoded.knot_times[seg + 1];
      const double f =
          t1 > t0 ? static_cast<double>(t - t0) /
                        static_cast<double>(t1 - t0)
                  : 0.0;
      value = encoded.knot_values[seg] +
              (encoded.knot_values[seg + 1] - encoded.knot_values[seg]) * f;
    }
    SIDQ_RETURN_IF_ERROR(out.Append(t, value));
  }
  return out;
}

DualPredictionResult DualPredictionReduce(const std::vector<double>& values,
                                          double epsilon) {
  DualPredictionResult out;
  out.total = values.size();
  out.reconstructed.reserve(values.size());
  double prev = 0.0, prev2 = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    double predicted;
    if (i == 0) {
      predicted = values[0] + 2.0 * epsilon + 1.0;  // force first transmit
    } else if (i == 1) {
      predicted = prev;
    } else {
      predicted = prev + (prev - prev2);  // last value + slope
    }
    double received;
    if (std::abs(predicted - values[i]) > epsilon) {
      received = values[i];  // transmit the true reading
      ++out.transmitted;
    } else {
      received = predicted;  // receiver keeps its prediction
    }
    out.reconstructed.push_back(received);
    prev2 = i == 0 ? received : prev;
    prev = received;
  }
  return out;
}

}  // namespace reduce
}  // namespace sidq

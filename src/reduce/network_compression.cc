#include "reduce/network_compression.h"

#include "reduce/coding.h"

namespace sidq {
namespace reduce {

StatusOr<NetworkCompressed> CompressMatched(
    const std::vector<EdgeId>& edges, const std::vector<Timestamp>& times) {
  if (edges.size() != times.size()) {
    return Status::InvalidArgument("edges/times length mismatch");
  }
  NetworkCompressed out;
  std::vector<uint8_t>& b = out.bytes;
  PutVarint(edges.size(), &b);
  if (edges.empty()) return out;
  // Run-length encode the edge sequence: (edge delta zigzag, run length).
  PutVarint(times.front() >= 0 ? static_cast<uint64_t>(times.front()) * 2
                               : static_cast<uint64_t>(-times.front()) * 2 + 1,
            &b);
  // Timestamp deltas.
  Timestamp prev_t = times.front();
  for (size_t i = 1; i < times.size(); ++i) {
    PutVarint(ZigZagEncode(times[i] - prev_t), &b);
    prev_t = times[i];
  }
  // Edge runs.
  size_t i = 0;
  EdgeId prev_edge = 0;
  while (i < edges.size()) {
    size_t run = 1;
    while (i + run < edges.size() && edges[i + run] == edges[i]) ++run;
    PutVarint(ZigZagEncode(static_cast<int64_t>(edges[i]) -
                           static_cast<int64_t>(prev_edge)),
              &b);
    PutVarint(run, &b);
    prev_edge = edges[i];
    i += run;
  }
  return out;
}

StatusOr<NetworkDecompressed> DecompressMatched(
    const NetworkCompressed& compressed) {
  NetworkDecompressed out;
  const std::vector<uint8_t>& b = compressed.bytes;
  size_t pos = 0;
  SIDQ_ASSIGN_OR_RETURN(uint64_t count, GetVarint(b, &pos));
  if (count == 0) return out;
  SIDQ_ASSIGN_OR_RETURN(uint64_t t0z, GetVarint(b, &pos));
  Timestamp t = (t0z & 1) ? -static_cast<Timestamp>(t0z / 2)
                          : static_cast<Timestamp>(t0z / 2);
  out.times.reserve(count);
  out.times.push_back(t);
  for (uint64_t i = 1; i < count; ++i) {
    SIDQ_ASSIGN_OR_RETURN(uint64_t dz, GetVarint(b, &pos));
    t += ZigZagDecode(dz);
    out.times.push_back(t);
  }
  out.edges.reserve(count);
  int64_t prev_edge = 0;
  while (out.edges.size() < count) {
    SIDQ_ASSIGN_OR_RETURN(uint64_t ez, GetVarint(b, &pos));
    SIDQ_ASSIGN_OR_RETURN(uint64_t run, GetVarint(b, &pos));
    const int64_t edge = prev_edge + ZigZagDecode(ez);
    if (edge < 0 || run == 0 || out.edges.size() + run > count) {
      return Status::DataLoss("corrupt edge run");
    }
    for (uint64_t k = 0; k < run; ++k) {
      out.edges.push_back(static_cast<EdgeId>(edge));
    }
    prev_edge = edge;
  }
  return out;
}

}  // namespace reduce
}  // namespace sidq

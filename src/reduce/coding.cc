#include "reduce/coding.h"

#include <algorithm>

namespace sidq {
namespace reduce {

void BitWriter::WriteBit(bool bit) {
  const size_t byte = bit_count_ / 8;
  if (byte >= bytes_.size()) bytes_.push_back(0);
  if (bit) {
    bytes_[byte] |= static_cast<uint8_t>(1u << (7 - bit_count_ % 8));
  }
  ++bit_count_;
}

void BitWriter::WriteBits(uint64_t value, int count) {
  for (int i = count - 1; i >= 0; --i) {
    WriteBit((value >> i) & 1u);
  }
}

void BitWriter::WriteUnary(uint64_t value) {
  for (uint64_t i = 0; i < value; ++i) WriteBit(true);
  WriteBit(false);
}

std::vector<uint8_t> BitWriter::Finish() { return std::move(bytes_); }

StatusOr<bool> BitReader::ReadBit() {
  if (AtEnd()) return Status::OutOfRange("bit stream exhausted");
  const bool bit =
      (bytes_[pos_ / 8] >> (7 - pos_ % 8)) & 1u;
  ++pos_;
  return bit;
}

StatusOr<uint64_t> BitReader::ReadBits(int count) {
  uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    SIDQ_ASSIGN_OR_RETURN(bool bit, ReadBit());
    value = (value << 1) | (bit ? 1u : 0u);
  }
  return value;
}

StatusOr<uint64_t> BitReader::ReadUnary() {
  uint64_t value = 0;
  while (true) {
    SIDQ_ASSIGN_OR_RETURN(bool bit, ReadBit());
    if (!bit) break;
    ++value;
    if (value > (1ull << 32)) {
      return Status::DataLoss("unary run too long; corrupt stream");
    }
  }
  return value;
}

void GolombRiceEncode(uint64_t value, int k, BitWriter* writer) {
  writer->WriteUnary(value >> k);
  if (k > 0) writer->WriteBits(value & ((1ull << k) - 1), k);
}

StatusOr<uint64_t> GolombRiceDecode(int k, BitReader* reader) {
  SIDQ_ASSIGN_OR_RETURN(uint64_t q, reader->ReadUnary());
  uint64_t r = 0;
  if (k > 0) {
    SIDQ_ASSIGN_OR_RETURN(r, reader->ReadBits(k));
  }
  return (q << k) | r;
}

int OptimalRiceParameter(const std::vector<uint64_t>& values) {
  int best_k = 0;
  uint64_t best_bits = ~0ull;
  for (int k = 0; k < 32; ++k) {
    uint64_t bits = 0;
    for (uint64_t v : values) {
      bits += (v >> k) + 1 + static_cast<uint64_t>(k);
      if (bits >= best_bits) break;
    }
    if (bits < best_bits) {
      best_bits = bits;
      best_k = k;
    }
  }
  return best_k;
}

std::vector<uint8_t> EncodeIntegerSeries(const std::vector<int64_t>& values) {
  BitWriter writer;
  if (values.empty()) {
    writer.WriteBits(0, 6);
    writer.WriteBits(0, 32);
    return writer.Finish();
  }
  std::vector<uint64_t> deltas;
  deltas.reserve(values.size() - 1);
  for (size_t i = 1; i < values.size(); ++i) {
    deltas.push_back(ZigZagEncode(values[i] - values[i - 1]));
  }
  const int k = OptimalRiceParameter(deltas);
  writer.WriteBits(static_cast<uint64_t>(k), 6);
  writer.WriteBits(values.size(), 32);
  writer.WriteBits(static_cast<uint64_t>(values.front()), 64);
  for (uint64_t d : deltas) GolombRiceEncode(d, k, &writer);
  return writer.Finish();
}

StatusOr<std::vector<int64_t>> DecodeIntegerSeries(
    const std::vector<uint8_t>& bytes) {
  BitReader reader(bytes);
  SIDQ_ASSIGN_OR_RETURN(uint64_t k64, reader.ReadBits(6));
  SIDQ_ASSIGN_OR_RETURN(uint64_t count, reader.ReadBits(32));
  std::vector<int64_t> out;
  if (count == 0) return out;
  // Every coded delta occupies at least one bit, so a count beyond the
  // remaining bit budget means a corrupt header -- reject it before
  // attempting a multi-gigabyte allocation.
  if (count - 1 > bytes.size() * 8) {
    return Status::DataLoss("count exceeds stream capacity");
  }
  SIDQ_ASSIGN_OR_RETURN(uint64_t first, reader.ReadBits(64));
  out.reserve(count);
  out.push_back(static_cast<int64_t>(first));
  const int k = static_cast<int>(k64);
  for (uint64_t i = 1; i < count; ++i) {
    SIDQ_ASSIGN_OR_RETURN(uint64_t code, GolombRiceDecode(k, &reader));
    out.push_back(out.back() + ZigZagDecode(code));
  }
  return out;
}

void PutVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

StatusOr<uint64_t> GetVarint(const std::vector<uint8_t>& bytes, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (*pos >= bytes.size()) {
      return Status::OutOfRange("varint stream exhausted");
    }
    const uint8_t b = bytes[(*pos)++];
    value |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) return Status::DataLoss("varint too long");
  }
  return value;
}

}  // namespace reduce
}  // namespace sidq

#pragma once

#include <cstdint>
#include <vector>

#include "core/statusor.h"

namespace sidq {
namespace reduce {

// Bit-level writer for compression codecs. Bits are appended MSB-first
// within each byte.
class BitWriter {
 public:
  void WriteBit(bool bit);
  // Writes the `count` low bits of `value`, most significant first.
  void WriteBits(uint64_t value, int count);
  // Unary coding: `value` one-bits followed by a zero.
  void WriteUnary(uint64_t value);

  // Pads the final partial byte with zeros and returns the buffer.
  std::vector<uint8_t> Finish();
  size_t bit_count() const { return bit_count_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t bit_count_ = 0;
};

// Bit-level reader mirroring BitWriter.
class BitReader {
 public:
  explicit BitReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  [[nodiscard]] StatusOr<bool> ReadBit();
  [[nodiscard]] StatusOr<uint64_t> ReadBits(int count);
  [[nodiscard]] StatusOr<uint64_t> ReadUnary();
  bool AtEnd() const { return pos_ >= bytes_.size() * 8; }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

// Maps signed to unsigned so small-magnitude values stay small:
// 0,-1,1,-2,2,... -> 0,1,2,3,4,...
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// Golomb-Rice codec with divisor 2^k: quotient in unary, remainder in k
// bits. The workhorse of lossless smart-grid/IoT value compression
// (Tate, IEEE TSG 2015).
void GolombRiceEncode(uint64_t value, int k, BitWriter* writer);
[[nodiscard]] StatusOr<uint64_t> GolombRiceDecode(int k, BitReader* reader);

// Rice parameter minimising the total coded size of `values` (scans k in
// [0, 32)).
int OptimalRiceParameter(const std::vector<uint64_t>& values);

// Encodes a signed integer sequence with delta + zigzag + Golomb-Rice.
// Layout: [k: 6 bits][count: 32 bits][first value: 64 bits][codes...].
std::vector<uint8_t> EncodeIntegerSeries(const std::vector<int64_t>& values);
[[nodiscard]] StatusOr<std::vector<int64_t>> DecodeIntegerSeries(
    const std::vector<uint8_t>& bytes);

// LEB128-style varint over a byte vector (for the network-constrained
// trajectory codec).
void PutVarint(uint64_t value, std::vector<uint8_t>* out);
[[nodiscard]] StatusOr<uint64_t> GetVarint(const std::vector<uint8_t>& bytes, size_t* pos);

}  // namespace reduce
}  // namespace sidq

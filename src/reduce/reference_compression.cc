#include "reduce/reference_compression.h"

#include <cmath>

namespace sidq {
namespace reduce {

namespace {

uint64_t CellKey(double x, double y, double cell) {
  const int32_t cx = static_cast<int32_t>(std::floor(x / cell));
  const int32_t cy = static_cast<int32_t>(std::floor(y / cell));
  return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(cy));
}

}  // namespace

void ReferenceCompressor::BuildReferences(
    const std::vector<Trajectory>* references) {
  references_ = references;
  buckets_.clear();
  for (uint32_t r = 0; r < references->size(); ++r) {
    const Trajectory& tr = (*references)[r];
    for (uint32_t i = 0; i < tr.size(); ++i) {
      buckets_[CellKey(tr[i].p.x, tr[i].p.y, options_.candidate_cell_m)]
          .push_back(RefPoint{r, i});
    }
  }
}

std::vector<ReferenceCompressor::RefPoint>
ReferenceCompressor::CandidatesNear(const geometry::Point& p) const {
  std::vector<RefPoint> out;
  const double cell = options_.candidate_cell_m;
  const int32_t cx = static_cast<int32_t>(std::floor(p.x / cell));
  const int32_t cy = static_cast<int32_t>(std::floor(p.y / cell));
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      const uint64_t key =
          (static_cast<uint64_t>(static_cast<uint32_t>(cx + dx)) << 32) |
          static_cast<uint64_t>(static_cast<uint32_t>(cy + dy));
      const auto it = buckets_.find(key);
      if (it == buckets_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  return out;
}

StatusOr<ReferenceCompressor::Encoded> ReferenceCompressor::Compress(
    const Trajectory& input) const {
  if (references_ == nullptr) {
    return Status::FailedPrecondition("BuildReferences() not called");
  }
  Encoded out;
  out.times.reserve(input.size());
  for (const TrajectoryPoint& pt : input.points()) out.times.push_back(pt.t);

  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    // Greedily find the longest 1:1 forward match starting at input[i] in
    // any reference: input[i + k] must lie within tolerance of
    // ref[first + k]. The 1:1 discipline is what makes decompression
    // per-point exact within tolerance.
    uint32_t best_ref = 0, best_first = 0;
    size_t best_len = 0;
    for (const RefPoint& cand : CandidatesNear(input[i].p)) {
      const Trajectory& ref = (*references_)[cand.ref];
      size_t len = 0;
      while (i + len < n && cand.idx + len < ref.size() &&
             geometry::Distance(ref[cand.idx + len].p, input[i + len].p) <=
                 options_.tolerance_m) {
        ++len;
      }
      if (len > best_len) {
        best_len = len;
        best_ref = cand.ref;
        best_first = cand.idx;
      }
    }
    if (best_len >= options_.min_match_points) {
      Segment seg;
      seg.is_match = true;
      seg.ref = best_ref;
      seg.first = best_first;
      seg.last = best_first + static_cast<uint32_t>(best_len) - 1;
      out.segments.push_back(seg);
      out.matched_points += best_len;
      i += best_len;
    } else {
      Segment seg;
      seg.is_match = false;
      seg.literal = input[i];
      out.segments.push_back(seg);
      out.literal_points += 1;
      ++i;
    }
  }
  return out;
}

StatusOr<Trajectory> ReferenceCompressor::Decompress(
    const Encoded& encoded, ObjectId object_id) const {
  if (references_ == nullptr) {
    return Status::FailedPrecondition("BuildReferences() not called");
  }
  Trajectory out(object_id);
  size_t t_idx = 0;
  auto emit = [&](const geometry::Point& p) -> Status {
    if (t_idx >= encoded.times.size()) {
      return Status::DataLoss("more positions than timestamps");
    }
    out.AppendUnordered(TrajectoryPoint(encoded.times[t_idx++], p));
    return Status::OK();
  };
  for (const Segment& seg : encoded.segments) {
    if (!seg.is_match) {
      SIDQ_RETURN_IF_ERROR(emit(seg.literal.p));
      continue;
    }
    if (seg.ref >= references_->size()) {
      return Status::DataLoss("reference id out of range");
    }
    const Trajectory& ref = (*references_)[seg.ref];
    if (seg.last >= ref.size() || seg.first > seg.last) {
      return Status::DataLoss("reference range out of bounds");
    }
    for (uint32_t k = seg.first; k <= seg.last; ++k) {
      SIDQ_RETURN_IF_ERROR(emit(ref[k].p));
    }
  }
  if (t_idx != encoded.times.size()) {
    return Status::DataLoss("fewer positions than timestamps");
  }
  return out;
}

}  // namespace reduce
}  // namespace sidq

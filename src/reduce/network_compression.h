#pragma once

#include <cstdint>
#include <vector>

#include "core/statusor.h"
#include "core/types.h"
#include "sim/road_network.h"

namespace sidq {
namespace reduce {

// Network-constrained trajectory compression (Section 2.2.6; Han et al.
// TODS 2017 / Koide et al. ICDE 2018 family): once map-matched, a
// trajectory is an edge sequence plus timestamps. Consecutive duplicate
// edges collapse into (edge, dwell) runs; edge ids and timestamps are
// delta+varint coded.
struct NetworkCompressed {
  std::vector<uint8_t> bytes;

  size_t TotalBytes() const { return bytes.size(); }
};

// Encodes per-point matched edges + timestamps (parallel arrays from
// HmmMapMatcher). Fails on length mismatch.
[[nodiscard]] StatusOr<NetworkCompressed> CompressMatched(
    const std::vector<EdgeId>& edges, const std::vector<Timestamp>& times);

struct NetworkDecompressed {
  std::vector<EdgeId> edges;
  std::vector<Timestamp> times;
};

[[nodiscard]] StatusOr<NetworkDecompressed> DecompressMatched(
    const NetworkCompressed& compressed);

// Raw cost baseline: the byte size of storing the same points as
// (x, y, t) doubles -- used to report compression factors.
inline size_t RawPointBytes(size_t num_points) { return num_points * 24; }

}  // namespace reduce
}  // namespace sidq

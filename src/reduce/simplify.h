#pragma once

#include <vector>

#include "core/statusor.h"
#include "core/trajectory.h"

namespace sidq {
namespace reduce {

// Error-bounded trajectory simplification (Section 2.2.6 / Lin et al.,
// TODS 2021 evaluation family). All algorithms guarantee (or target) a
// bound on the synchronized Euclidean distance (SED) between the original
// points and the simplified trajectory.

// Offline: Douglas-Peucker with the SED metric (time-aware split).
[[nodiscard]] StatusOr<Trajectory> DouglasPeuckerSed(const Trajectory& input,
                                       double epsilon_m);
// Offline: classic Douglas-Peucker with perpendicular distance.
[[nodiscard]] StatusOr<Trajectory> DouglasPeuckerPerp(const Trajectory& input,
                                        double epsilon_m);

// Online: dead reckoning -- emit a point when the constant-velocity
// forecast from the last emitted point misses the actual position by more
// than epsilon.
[[nodiscard]] StatusOr<Trajectory> DeadReckoning(const Trajectory& input, double epsilon_m);

// Online: opening window with SED (OPW-SP): grow the window anchored at the
// last emitted point while every buffered point stays within epsilon of the
// anchor->candidate segment.
[[nodiscard]] StatusOr<Trajectory> OpeningWindow(const Trajectory& input, double epsilon_m);

// Online: SQUISH-E(epsilon) -- bounded-priority-queue simplification that
// removes the point whose removal introduces the least SED error while that
// error stays below epsilon (Muckell et al.).
[[nodiscard]] StatusOr<Trajectory> SquishE(const Trajectory& input, double epsilon_m);

// Baseline: keep every n-th point (plus the last).
[[nodiscard]] StatusOr<Trajectory> UniformSample(const Trajectory& input, size_t every_n);

// --- quality metrics ---

// Maximum SED from any original point to the simplified trajectory
// (piecewise linear in time).
double MaxSedError(const Trajectory& original, const Trajectory& simplified);
// Mean SED over all original points.
double MeanSedError(const Trajectory& original, const Trajectory& simplified);
// |original| / |simplified|.
double CompressionRatio(const Trajectory& original,
                        const Trajectory& simplified);

}  // namespace reduce
}  // namespace sidq

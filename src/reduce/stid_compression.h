#pragma once

#include <cstdint>
#include <vector>

#include "core/statusor.h"
#include "core/stid.h"
#include "core/types.h"

namespace sidq {
namespace reduce {

// STID reduction (Section 2.2.6): lossless coding, lossy error-bounded
// coding, and prediction-based transmission suppression for sensor series.

// --- Lossless: quantised delta + Golomb-Rice (Tate, IEEE TSG 2015) ---
//
// Sensor readings are fixed-point values (quantum = measurement
// resolution); compression is exact at that resolution.
struct LosslessEncoded {
  std::vector<uint8_t> timestamps;
  std::vector<uint8_t> values;
  double quantum = 0.01;

  size_t TotalBytes() const { return timestamps.size() + values.size(); }
};

// Encodes timestamps and values of a series; values are quantised to
// multiples of `quantum` first.
LosslessEncoded LosslessCompress(const StSeries& series, double quantum);
// Exact inverse at the quantised resolution.
[[nodiscard]] StatusOr<StSeries> LosslessDecompress(const LosslessEncoded& encoded,
                                      SensorId sensor,
                                      const geometry::Point& loc);

// --- Lossy: Lightweight Temporal Compression (Li et al., Big Data 2018) --
//
// Error-bounded piecewise-linear approximation: keeps only knot points such
// that reconstruction error never exceeds epsilon.
struct LtcEncoded {
  std::vector<Timestamp> knot_times;
  std::vector<double> knot_values;
  double epsilon = 0.0;

  // Serialised size estimate (8 bytes per knot time + value pair halves).
  size_t TotalBytes() const { return knot_times.size() * 16; }
};

[[nodiscard]] StatusOr<LtcEncoded> LtcCompress(const StSeries& series, double epsilon);
// Reconstructs the series at the original timestamps (linear between knots).
[[nodiscard]] StatusOr<StSeries> LtcDecompress(const LtcEncoded& encoded,
                                 const std::vector<Timestamp>& timestamps,
                                 SensorId sensor, const geometry::Point& loc);

// --- Prediction-based suppression (dual prediction, Zhang et al. 2018) ---
//
// Sender and receiver run the same predictor; the sender transmits a
// reading only when the prediction error would exceed epsilon. The receiver
// reconstructs non-transmitted readings from the predictor.
struct DualPredictionResult {
  // Reconstruction as seen by the receiver (same timestamps as input).
  std::vector<double> reconstructed;
  size_t transmitted = 0;
  size_t total = 0;

  double SuppressionRate() const {
    return total == 0 ? 0.0
                      : 1.0 - static_cast<double>(transmitted) /
                                  static_cast<double>(total);
  }
};

// Last-value-plus-slope predictor; guarantees |reconstructed - actual| <=
// epsilon at every sample.
DualPredictionResult DualPredictionReduce(const std::vector<double>& values,
                                          double epsilon);

}  // namespace reduce
}  // namespace sidq

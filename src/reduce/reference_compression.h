#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/statusor.h"
#include "core/trajectory.h"
#include "core/types.h"

namespace sidq {
namespace reduce {

// Reference-based trajectory compression (REST family, Zhao et al.,
// KDD 2018): urban trajectories repeat — most rides follow paths already
// present in a historical reference set. A new trajectory is encoded as a
// sequence of *matches* into reference trajectories (reference id + point
// range) plus literal points where nothing in the reference set is within
// the error tolerance. Decompression is exact up to the tolerance.
class ReferenceCompressor {
 public:
  struct Options {
    // A point matches a reference point within this distance.
    double tolerance_m = 25.0;
    // Matches shorter than this many points are stored as literals
    // (avoids per-match overhead dominating).
    size_t min_match_points = 3;
    // Spatial cell used to find candidate reference points.
    double candidate_cell_m = 50.0;
  };

  explicit ReferenceCompressor(Options options) : options_(options) {}
  ReferenceCompressor() : ReferenceCompressor(Options{}) {}

  // Indexes the reference set (kept by pointer; must outlive the
  // compressor).
  void BuildReferences(const std::vector<Trajectory>* references);

  // One piece of the encoding: either a run borrowed from a reference or
  // one literal point.
  struct Segment {
    bool is_match = false;
    // Match: points [first, last] of references[ref].
    uint32_t ref = 0;
    uint32_t first = 0;
    uint32_t last = 0;
    // Literal: the point itself.
    TrajectoryPoint literal;
  };

  struct Encoded {
    std::vector<Segment> segments;
    // Timestamps of the original points (delta-codable; stored raw here).
    std::vector<Timestamp> times;
    size_t matched_points = 0;
    size_t literal_points = 0;

    // Storage estimate: a match costs 12 bytes, a literal 16, a timestamp
    // delta ~2 (what EncodeIntegerSeries achieves on regular sampling).
    size_t ApproxBytes() const {
      size_t matches = 0;
      for (const auto& s : segments) matches += s.is_match ? 1 : 0;
      return matches * 12 + literal_points * 16 + times.size() * 2;
    }
    double MatchedFraction() const {
      const size_t total = matched_points + literal_points;
      return total == 0 ? 0.0
                        : static_cast<double>(matched_points) /
                              static_cast<double>(total);
    }
  };

  // Encodes `input` against the reference set; fails when BuildReferences
  // has not run.
  [[nodiscard]] StatusOr<Encoded> Compress(const Trajectory& input) const;

  // Reconstructs the trajectory (positions from references/literals,
  // timestamps from `times`). Exact within tolerance_m of the input.
  [[nodiscard]] StatusOr<Trajectory> Decompress(const Encoded& encoded,
                                  ObjectId object_id) const;

 private:
  Options options_;
  const std::vector<Trajectory>* references_ = nullptr;
  // spatial cell -> reference points inside it
  struct RefPoint {
    uint32_t ref;
    uint32_t idx;
  };
  std::unordered_map<uint64_t, std::vector<RefPoint>> buckets_;

  std::vector<RefPoint> CandidatesNear(const geometry::Point& p) const;
};

}  // namespace reduce
}  // namespace sidq

#include "reduce/simplify.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "geometry/segment.h"

namespace sidq {
namespace reduce {

namespace {

double SedToSegment(const TrajectoryPoint& p, const TrajectoryPoint& a,
                    const TrajectoryPoint& b) {
  return geometry::SynchronizedEuclideanDistance(
      p.p, static_cast<double>(p.t), a.p, static_cast<double>(a.t), b.p,
      static_cast<double>(b.t));
}

// Shared Douglas-Peucker skeleton parameterised by the error metric.
template <typename ErrorFn>
void DpRecurse(const Trajectory& input, size_t lo, size_t hi,
               double epsilon, ErrorFn error, std::vector<bool>* keep) {
  if (hi <= lo + 1) return;
  double worst = -1.0;
  size_t worst_i = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    const double e = error(input[i], input[lo], input[hi]);
    if (e > worst) {
      worst = e;
      worst_i = i;
    }
  }
  if (worst > epsilon) {
    (*keep)[worst_i] = true;
    DpRecurse(input, lo, worst_i, epsilon, error, keep);
    DpRecurse(input, worst_i, hi, epsilon, error, keep);
  }
}

template <typename ErrorFn>
StatusOr<Trajectory> DpSimplify(const Trajectory& input, double epsilon,
                                ErrorFn error) {
  if (epsilon < 0.0) return Status::InvalidArgument("epsilon must be >= 0");
  if (!input.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  const size_t n = input.size();
  Trajectory out(input.object_id());
  if (n <= 2) {
    for (size_t i = 0; i < n; ++i) out.AppendUnordered(input[i]);
    return out;
  }
  std::vector<bool> keep(n, false);
  keep.front() = keep.back() = true;
  DpRecurse(input, 0, n - 1, epsilon, error, &keep);
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) out.AppendUnordered(input[i]);
  }
  return out;
}

}  // namespace

StatusOr<Trajectory> DouglasPeuckerSed(const Trajectory& input,
                                       double epsilon_m) {
  return DpSimplify(input, epsilon_m,
                    [](const TrajectoryPoint& p, const TrajectoryPoint& a,
                       const TrajectoryPoint& b) {
                      return SedToSegment(p, a, b);
                    });
}

StatusOr<Trajectory> DouglasPeuckerPerp(const Trajectory& input,
                                        double epsilon_m) {
  return DpSimplify(input, epsilon_m,
                    [](const TrajectoryPoint& p, const TrajectoryPoint& a,
                       const TrajectoryPoint& b) {
                      return geometry::PointSegmentDistance(p.p, a.p, b.p);
                    });
}

StatusOr<Trajectory> DeadReckoning(const Trajectory& input,
                                   double epsilon_m) {
  if (epsilon_m < 0.0) return Status::InvalidArgument("epsilon must be >= 0");
  if (!input.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  const size_t n = input.size();
  Trajectory out(input.object_id());
  if (n == 0) return out;
  out.AppendUnordered(input[0]);
  geometry::Point velocity(0.0, 0.0);
  size_t last_kept = 0;
  bool have_velocity = false;
  for (size_t i = 1; i < n; ++i) {
    const double dt = TimestampToSeconds(input[i].t - input[last_kept].t);
    geometry::Point predicted = input[last_kept].p;
    if (have_velocity) predicted += velocity * dt;
    if (!have_velocity ||
        geometry::Distance(predicted, input[i].p) > epsilon_m) {
      // Emit; new velocity from the segment just closed.
      if (i + 1 <= n) {
        const double seg_dt = TimestampToSeconds(input[i].t - input[last_kept].t);
        if (seg_dt > 0.0) {
          velocity = (input[i].p - input[last_kept].p) / seg_dt;
          have_velocity = true;
        }
      }
      out.AppendUnordered(input[i]);
      last_kept = i;
    }
  }
  if (out.back().t != input.back().t) out.AppendUnordered(input.back());
  return out;
}

StatusOr<Trajectory> OpeningWindow(const Trajectory& input,
                                   double epsilon_m) {
  if (epsilon_m < 0.0) return Status::InvalidArgument("epsilon must be >= 0");
  if (!input.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  const size_t n = input.size();
  Trajectory out(input.object_id());
  if (n == 0) return out;
  out.AppendUnordered(input[0]);
  size_t anchor = 0;
  for (size_t i = 2; i < n; ++i) {
    // Test window (anchor, i): all intermediates within epsilon of the
    // anchor->i segment (SED metric).
    bool ok = true;
    for (size_t j = anchor + 1; j < i && ok; ++j) {
      ok = SedToSegment(input[j], input[anchor], input[i]) <= epsilon_m;
    }
    if (!ok) {
      out.AppendUnordered(input[i - 1]);
      anchor = i - 1;
    }
  }
  if (n > 1) out.AppendUnordered(input[n - 1]);
  return out;
}

StatusOr<Trajectory> SquishE(const Trajectory& input, double epsilon_m) {
  if (epsilon_m < 0.0) return Status::InvalidArgument("epsilon must be >= 0");
  if (!input.IsTimeOrdered()) {
    return Status::FailedPrecondition("trajectory must be time-ordered");
  }
  const size_t n = input.size();
  Trajectory out(input.object_id());
  if (n <= 2) {
    for (size_t i = 0; i < n; ++i) out.AppendUnordered(input[i]);
    return out;
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<size_t> prev(n), next(n);
  std::vector<double> acc(n, 0.0), pri(n, kInf);
  std::vector<bool> removed(n, false);
  using HeapEntry = std::pair<double, size_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>> heap;

  auto compute_pri = [&](size_t i) {
    if (prev[i] == i || next[i] == i) return kInf;  // endpoint sentinel
    return acc[i] + SedToSegment(input[i], input[prev[i]], input[next[i]]);
  };

  for (size_t i = 0; i < n; ++i) {
    prev[i] = i == 0 ? i : i - 1;
    next[i] = i;  // provisional: no successor yet
    if (i >= 2) {
      // Point i-1 now has both neighbours.
      next[i - 1] = i;
      pri[i - 1] = compute_pri(i - 1);
      heap.emplace(pri[i - 1], i - 1);
    }
    // Shrink while the cheapest removal stays within budget.
    while (!heap.empty()) {
      const auto [p, j] = heap.top();
      if (removed[j] || p != pri[j]) {
        heap.pop();
        continue;
      }
      if (p > epsilon_m) break;
      heap.pop();
      removed[j] = true;
      const size_t a = prev[j];
      const size_t b = next[j];
      next[a] = b;
      prev[b] = a;
      acc[a] = std::max(acc[a], pri[j]);
      acc[b] = std::max(acc[b], pri[j]);
      for (size_t k : {a, b}) {
        const double np = compute_pri(k);
        if (np != pri[k]) {
          pri[k] = np;
          if (np != kInf) heap.emplace(np, k);
        }
      }
    }
  }
  next[n - 1] = n - 1;
  for (size_t i = 0; i < n; ++i) {
    if (!removed[i]) out.AppendUnordered(input[i]);
  }
  return out;
}

StatusOr<Trajectory> UniformSample(const Trajectory& input, size_t every_n) {
  if (every_n == 0) return Status::InvalidArgument("every_n must be >= 1");
  Trajectory out(input.object_id());
  for (size_t i = 0; i < input.size(); i += every_n) {
    out.AppendUnordered(input[i]);
  }
  if (!input.empty() && !out.empty() && out.back().t != input.back().t) {
    out.AppendUnordered(input.back());
  }
  return out;
}

namespace {

double SedToSimplified(const TrajectoryPoint& p, const Trajectory& simp) {
  // Bracket p.t within the simplified trajectory.
  const auto& pts = simp.points();
  if (pts.empty()) return 0.0;
  if (p.t <= pts.front().t) return geometry::Distance(p.p, pts.front().p);
  if (p.t >= pts.back().t) return geometry::Distance(p.p, pts.back().p);
  size_t lo = 0, hi = pts.size() - 1;
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (pts[mid].t <= p.t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return SedToSegment(p, pts[lo], pts[hi]);
}

}  // namespace

double MaxSedError(const Trajectory& original, const Trajectory& simplified) {
  double worst = 0.0;
  for (const TrajectoryPoint& p : original.points()) {
    worst = std::max(worst, SedToSimplified(p, simplified));
  }
  return worst;
}

double MeanSedError(const Trajectory& original,
                    const Trajectory& simplified) {
  if (original.empty()) return 0.0;
  double acc = 0.0;
  for (const TrajectoryPoint& p : original.points()) {
    acc += SedToSimplified(p, simplified);
  }
  return acc / static_cast<double>(original.size());
}

double CompressionRatio(const Trajectory& original,
                        const Trajectory& simplified) {
  if (simplified.empty()) return 0.0;
  return static_cast<double>(original.size()) /
         static_cast<double>(simplified.size());
}

}  // namespace reduce
}  // namespace sidq

#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>

#include "geometry/segment.h"

namespace sidq {
namespace geometry {

Polygon::Polygon(std::vector<Point> vertices)
    : vertices_(std::move(vertices)) {
  for (const Point& v : vertices_) bounds_.Extend(v);
}

bool Polygon::Contains(const Point& p) const {
  if (!Valid() || !bounds_.Contains(p)) return false;
  const size_t n = vertices_.size();
  // Boundary counts as inside.
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    if (PointSegmentDistance(p, a, b) < 1e-12) return true;
  }
  bool inside = false;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& vi = vertices_[i];
    const Point& vj = vertices_[j];
    const bool crosses = (vi.y > p.y) != (vj.y > p.y);
    if (crosses) {
      const double x_at =
          vj.x + (vi.x - vj.x) * (p.y - vj.y) / (vi.y - vj.y);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

double Polygon::SignedArea() const {
  if (!Valid()) return 0.0;
  double acc = 0.0;
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    acc += a.Cross(b);
  }
  return acc / 2.0;
}

double Polygon::Area() const { return std::abs(SignedArea()); }

double Polygon::BoundaryDistance(const Point& p) const {
  if (!Valid()) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    best = std::min(
        best, PointSegmentDistance(p, vertices_[i], vertices_[(i + 1) % n]));
  }
  return best;
}

Polygon Polygon::Rectangle(const BBox& box) {
  return Polygon({Point(box.min_x, box.min_y), Point(box.max_x, box.min_y),
                  Point(box.max_x, box.max_y), Point(box.min_x, box.max_y)});
}

Polygon Polygon::Circle(const Point& center, double radius, int segments) {
  std::vector<Point> vs;
  vs.reserve(segments);
  for (int i = 0; i < segments; ++i) {
    const double a = 2.0 * M_PI * i / segments;
    vs.emplace_back(center.x + radius * std::cos(a),
                    center.y + radius * std::sin(a));
  }
  return Polygon(std::move(vs));
}

std::vector<Point> ConvexHull(std::vector<Point> points) {
  if (points.size() < 3) return points;
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (points.size() < 3) return points;
  std::vector<Point> hull(2 * points.size());
  size_t k = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    while (k >= 2 && (hull[k - 1] - hull[k - 2])
                             .Cross(points[i] - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  const size_t lower = k + 1;
  for (size_t i = points.size() - 1; i-- > 0;) {
    while (k >= lower && (hull[k - 1] - hull[k - 2])
                                 .Cross(points[i] - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);
  return hull;
}

}  // namespace geometry
}  // namespace sidq

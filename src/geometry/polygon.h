#pragma once

#include <vector>

#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {
namespace geometry {

// A simple polygon given by its vertices in order (closing edge implied).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }
  const BBox& bounds() const { return bounds_; }
  [[nodiscard]] bool Valid() const { return vertices_.size() >= 3; }

  // Even-odd (ray casting) point-in-polygon test; boundary points count as
  // inside.
  [[nodiscard]] bool Contains(const Point& p) const;

  // Signed area (positive for counter-clockwise vertex order).
  [[nodiscard]] double SignedArea() const;
  [[nodiscard]] double Area() const;

  // Minimum distance from p to the polygon boundary (0 when on boundary).
  [[nodiscard]] double BoundaryDistance(const Point& p) const;

  // Axis-aligned rectangle helper.
  static Polygon Rectangle(const BBox& box);
  // Regular n-gon approximation of a circle.
  static Polygon Circle(const Point& center, double radius, int segments = 32);

 private:
  std::vector<Point> vertices_;
  BBox bounds_;
};

// Area of the convex hull of `points` (monotone chain); 0 for <3 points.
std::vector<Point> ConvexHull(std::vector<Point> points);

}  // namespace geometry
}  // namespace sidq

#include "geometry/geo.h"

#include <cmath>

namespace sidq {
namespace geometry {

double HaversineDistance(const LatLon& a, const LatLon& b) {
  const double phi1 = a.lat * kDegToRad;
  const double phi2 = b.lat * kDegToRad;
  const double dphi = (b.lat - a.lat) * kDegToRad;
  const double dlam = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dphi / 2.0);
  const double s2 = std::sin(dlam / 2.0);
  const double h = s1 * s1 + std::cos(phi1) * std::cos(phi2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double InitialBearing(const LatLon& a, const LatLon& b) {
  const double phi1 = a.lat * kDegToRad;
  const double phi2 = b.lat * kDegToRad;
  const double dlam = (b.lon - a.lon) * kDegToRad;
  const double y = std::sin(dlam) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlam);
  double theta = std::atan2(y, x);
  if (theta < 0.0) theta += 2.0 * M_PI;
  return theta;
}

LocalProjection::LocalProjection(const LatLon& origin)
    : origin_(origin), cos_lat_(std::cos(origin.lat * kDegToRad)) {}

Point LocalProjection::Forward(const LatLon& g) const {
  const double x =
      (g.lon - origin_.lon) * kDegToRad * cos_lat_ * kEarthRadiusMeters;
  const double y = (g.lat - origin_.lat) * kDegToRad * kEarthRadiusMeters;
  return Point(x, y);
}

LatLon LocalProjection::Backward(const Point& p) const {
  const double lat =
      origin_.lat + p.y / kEarthRadiusMeters / kDegToRad;
  const double lon =
      origin_.lon + p.x / (kEarthRadiusMeters * cos_lat_) / kDegToRad;
  return LatLon(lat, lon);
}

}  // namespace geometry
}  // namespace sidq

#pragma once

#include <algorithm>
#include <limits>

#include "geometry/point.h"

namespace sidq {
namespace geometry {

// Axis-aligned bounding box. Default-constructed boxes are empty (inverted)
// and grow via Extend().
struct BBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  BBox() = default;
  BBox(double mnx, double mny, double mxx, double mxy)
      : min_x(mnx), min_y(mny), max_x(mxx), max_y(mxy) {}
  BBox(const Point& a, const Point& b)
      : min_x(std::min(a.x, b.x)),
        min_y(std::min(a.y, b.y)),
        max_x(std::max(a.x, b.x)),
        max_y(std::max(a.y, b.y)) {}

  [[nodiscard]] bool Empty() const { return min_x > max_x || min_y > max_y; }

  void Extend(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  void Extend(const BBox& o) {
    min_x = std::min(min_x, o.min_x);
    min_y = std::min(min_y, o.min_y);
    max_x = std::max(max_x, o.max_x);
    max_y = std::max(max_y, o.max_y);
  }
  // Grows the box by `margin` on every side.
  [[nodiscard]] BBox Expanded(double margin) const {
    return BBox(min_x - margin, min_y - margin, max_x + margin,
                max_y + margin);
  }

  [[nodiscard]] bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  [[nodiscard]] bool Intersects(const BBox& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }
  [[nodiscard]] bool Contains(const BBox& o) const {
    return min_x <= o.min_x && o.max_x <= max_x && min_y <= o.min_y &&
           o.max_y <= max_y;
  }

  [[nodiscard]] double Width() const { return Empty() ? 0.0 : max_x - min_x; }
  [[nodiscard]] double Height() const { return Empty() ? 0.0 : max_y - min_y; }
  [[nodiscard]] double Area() const { return Width() * Height(); }
  // Half-perimeter; the standard R-tree enlargement metric component.
  [[nodiscard]] double Margin() const { return Width() + Height(); }
  [[nodiscard]] Point Center() const {
    return Point((min_x + max_x) / 2.0, (min_y + max_y) / 2.0);
  }

  // Minimum distance from `p` to this box (0 when inside).
  [[nodiscard]] double MinDistance(const Point& p) const {
    double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
    double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
    return std::sqrt(dx * dx + dy * dy);
  }
  // Maximum distance from `p` to any point of this box.
  [[nodiscard]] double MaxDistance(const Point& p) const {
    double dx = std::max(std::abs(p.x - min_x), std::abs(p.x - max_x));
    double dy = std::max(std::abs(p.y - min_y), std::abs(p.y - max_y));
    return std::sqrt(dx * dx + dy * dy);
  }
};

}  // namespace geometry
}  // namespace sidq

#pragma once

#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {
namespace geometry {

// A directed line segment from `a` to `b`.
struct Segment {
  Point a;
  Point b;

  Segment() = default;
  Segment(const Point& pa, const Point& pb) : a(pa), b(pb) {}

  [[nodiscard]] double Length() const { return Distance(a, b); }
  [[nodiscard]] BBox Bounds() const { return BBox(a, b); }
};

// Fraction f in [0,1] such that a + f*(b-a) is the point of segment (a,b)
// closest to p. Returns 0 for degenerate segments.
double ProjectFraction(const Point& p, const Point& a, const Point& b);

// Closest point of segment (a,b) to p.
Point ClosestPointOnSegment(const Point& p, const Point& a, const Point& b);

// Perpendicular (closest-point) distance from p to segment (a,b).
double PointSegmentDistance(const Point& p, const Point& a, const Point& b);

// Distance from p to the infinite line through (a,b); falls back to
// point distance when a==b.
double PointLineDistance(const Point& p, const Point& a, const Point& b);

// Synchronized Euclidean distance: distance between p (timestamped tp) and
// the position linearly interpolated on segment (a@ta, b@tb) at time tp.
// The workhorse error metric of error-bounded trajectory simplification.
double SynchronizedEuclideanDistance(const Point& p, double tp, const Point& a,
                                     double ta, const Point& b, double tb);

// True when segments (a,b) and (c,d) intersect (including touching).
bool SegmentsIntersect(const Point& a, const Point& b, const Point& c,
                       const Point& d);

}  // namespace geometry
}  // namespace sidq

#pragma once

#include <cmath>
#include <ostream>

namespace sidq {
namespace geometry {

// A point (or vector) in a local planar coordinate system, in metres.
// Geographic coordinates are projected into this system via LocalProjection
// (see geo.h); all library algorithms operate on planar metres.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  constexpr Point operator+(const Point& o) const {
    return Point(x + o.x, y + o.y);
  }
  constexpr Point operator-(const Point& o) const {
    return Point(x - o.x, y - o.y);
  }
  constexpr Point operator*(double s) const { return Point(x * s, y * s); }
  constexpr Point operator/(double s) const { return Point(x / s, y / s); }
  Point& operator+=(const Point& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Point& operator-=(const Point& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }

  constexpr bool operator==(const Point& o) const {
    return x == o.x && y == o.y;
  }

  // Dot product with `o`.
  constexpr double Dot(const Point& o) const { return x * o.x + y * o.y; }
  // Z-component of the cross product with `o`.
  constexpr double Cross(const Point& o) const { return x * o.y - y * o.x; }
  // Squared Euclidean norm.
  constexpr double NormSq() const { return x * x + y * y; }
  // Euclidean norm.
  [[nodiscard]] double Norm() const { return std::sqrt(NormSq()); }
  // Unit vector in this direction; returns (0,0) for the zero vector.
  [[nodiscard]] Point Normalized() const {
    double n = Norm();
    if (n == 0.0) return Point(0.0, 0.0);
    return Point(x / n, y / n);
  }
};

inline constexpr Point operator*(double s, const Point& p) { return p * s; }

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

// Euclidean distance between `a` and `b`.
inline double Distance(const Point& a, const Point& b) {
  return (a - b).Norm();
}
// Squared Euclidean distance between `a` and `b`.
inline constexpr double DistanceSq(const Point& a, const Point& b) {
  return (a - b).NormSq();
}
// Linear interpolation: a at f=0, b at f=1.
inline constexpr Point Lerp(const Point& a, const Point& b, double f) {
  return Point(a.x + (b.x - a.x) * f, a.y + (b.y - a.y) * f);
}

}  // namespace geometry
}  // namespace sidq

#include "geometry/segment.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace geometry {

double ProjectFraction(const Point& p, const Point& a, const Point& b) {
  const Point d = b - a;
  const double len_sq = d.NormSq();
  if (len_sq == 0.0) return 0.0;
  double f = (p - a).Dot(d) / len_sq;
  return std::clamp(f, 0.0, 1.0);
}

Point ClosestPointOnSegment(const Point& p, const Point& a, const Point& b) {
  return Lerp(a, b, ProjectFraction(p, a, b));
}

double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  return Distance(p, ClosestPointOnSegment(p, a, b));
}

double PointLineDistance(const Point& p, const Point& a, const Point& b) {
  const Point d = b - a;
  const double len = d.Norm();
  if (len == 0.0) return Distance(p, a);
  return std::abs(d.Cross(p - a)) / len;
}

double SynchronizedEuclideanDistance(const Point& p, double tp, const Point& a,
                                     double ta, const Point& b, double tb) {
  if (tb <= ta) return Distance(p, a);
  const double f = std::clamp((tp - ta) / (tb - ta), 0.0, 1.0);
  return Distance(p, Lerp(a, b, f));
}

namespace {

// Orientation of the triple (a, b, c): >0 counter-clockwise, <0 clockwise,
// 0 collinear.
int Orientation(const Point& a, const Point& b, const Point& c) {
  const double v = (b - a).Cross(c - a);
  if (v > 0.0) return 1;
  if (v < 0.0) return -1;
  return 0;
}

bool OnSegment(const Point& p, const Point& a, const Point& b) {
  return p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
         p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y);
}

}  // namespace

bool SegmentsIntersect(const Point& a, const Point& b, const Point& c,
                       const Point& d) {
  const int o1 = Orientation(a, b, c);
  const int o2 = Orientation(a, b, d);
  const int o3 = Orientation(c, d, a);
  const int o4 = Orientation(c, d, b);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && OnSegment(c, a, b)) return true;
  if (o2 == 0 && OnSegment(d, a, b)) return true;
  if (o3 == 0 && OnSegment(a, c, d)) return true;
  if (o4 == 0 && OnSegment(b, c, d)) return true;
  return false;
}

}  // namespace geometry
}  // namespace sidq

#pragma once

#include "geometry/point.h"

namespace sidq {
namespace geometry {

// A geographic coordinate in degrees (WGS-84 spherical approximation).
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  constexpr LatLon() = default;
  constexpr LatLon(double la, double lo) : lat(la), lon(lo) {}
  constexpr bool operator==(const LatLon& o) const {
    return lat == o.lat && lon == o.lon;
  }
};

inline constexpr double kEarthRadiusMeters = 6371008.8;
inline constexpr double kDegToRad = 0.017453292519943295;

// Great-circle (haversine) distance in metres.
double HaversineDistance(const LatLon& a, const LatLon& b);

// Initial bearing from a to b, radians in [0, 2*pi).
double InitialBearing(const LatLon& a, const LatLon& b);

// Equirectangular local projection around a reference origin. Accurate to
// well under 0.1% for extents up to tens of kilometres -- more than enough
// for city-scale IoT workloads -- and exactly invertible.
class LocalProjection {
 public:
  explicit LocalProjection(const LatLon& origin);

  // Projects a geographic coordinate to planar metres (east = +x,
  // north = +y) relative to the origin.
  [[nodiscard]] Point Forward(const LatLon& g) const;
  // Inverse projection back to geographic coordinates.
  LatLon Backward(const Point& p) const;

  const LatLon& origin() const { return origin_; }

 private:
  LatLon origin_;
  double cos_lat_;
};

}  // namespace geometry
}  // namespace sidq

#include "query/continuous.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace query {

double SafeRegionMonitor::BoundaryDistance(const geometry::Point& p) const {
  if (range_.Contains(p)) {
    // Distance to the nearest side from inside.
    return std::min({p.x - range_.min_x, range_.max_x - p.x,
                     p.y - range_.min_y, range_.max_y - p.y});
  }
  return range_.MinDistance(p);
}

bool SafeRegionMonitor::ProcessUpdate(ObjectId id, const geometry::Point& p) {
  ++updates_processed_;
  auto it = states_.find(id);
  const bool is_new = it == states_.end();
  bool must_report = is_new;
  if (!is_new) {
    const ObjectState& st = it->second;
    // Still within the safe circle: the inside/outside answer cannot have
    // changed, no message needed.
    must_report =
        geometry::Distance(p, st.last_reported) > st.safe_radius;
  }
  if (!must_report) return false;

  ++messages_sent_;
  ObjectState st;
  st.last_reported = p;
  st.inside = range_.Contains(p);
  st.safe_radius = BoundaryDistance(p);
  states_[id] = st;
  if (st.inside) {
    inside_.insert(id);
  } else {
    inside_.erase(id);
  }
  return true;
}

}  // namespace query
}  // namespace sidq

#pragma once

#include <vector>

#include "core/statusor.h"
#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {
namespace query {

// Data partitioning for skewed SID (Section 2.3.1, "queries over skewed
// SID"; SATO / load-balancing family): points are assigned to spatial
// partitions for parallel processing. A uniform grid suffers under skew;
// adaptive quad-splitting bounds the per-partition load.
struct Partition {
  geometry::BBox box;
  size_t load = 0;
};

struct PartitionStats {
  size_t num_partitions = 0;
  size_t max_load = 0;
  double mean_load = 0.0;
  // max/mean; 1.0 is perfectly balanced.
  double imbalance = 0.0;
};

PartitionStats ComputeStats(const std::vector<Partition>& partitions);

// Fixed cols x rows grid partitioning.
std::vector<Partition> UniformGridPartition(
    const std::vector<geometry::Point>& points, int cols, int rows);

// Adaptive quadtree partitioning: recursively splits any partition whose
// load exceeds `max_load_per_partition` (up to `max_depth` levels).
std::vector<Partition> AdaptiveQuadPartition(
    const std::vector<geometry::Point>& points, size_t max_load_per_partition,
    int max_depth = 12);

}  // namespace query
}  // namespace sidq

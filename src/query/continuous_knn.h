#pragma once

#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "geometry/point.h"

namespace sidq {
namespace query {

// Continuous k-nearest-neighbour monitoring over moving objects
// (Section 2.3.1 "queries over evolving SID"; safe-region family, Qi et
// al., CSUR 2018). The server maintains the k objects nearest to a fixed
// query point. After each accepted report the server assigns the object a
// safe radius -- half its distance gap to the k-th boundary -- within
// which its own movement cannot change the result ordering relative to the
// snapshot. Objects suppress updates inside their safe radius, trading a
// bounded staleness (other objects may move concurrently) for most of the
// communication; the harness measures both the savings and the resulting
// result accuracy.
class ContinuousKnnMonitor {
 public:
  ContinuousKnnMonitor(const geometry::Point& query, size_t k)
      : query_(query), k_(k) {}

  // Processes one object-side location update; returns true when the
  // object had to send it to the server (outside its safe radius).
  bool ProcessUpdate(ObjectId id, const geometry::Point& p);

  // The server's current k nearest objects (ordered by distance).
  std::vector<ObjectId> Result() const;

  size_t messages_sent() const { return messages_sent_; }
  size_t updates_processed() const { return updates_processed_; }
  double MessageSavings() const {
    return updates_processed_ == 0
               ? 0.0
               : 1.0 - static_cast<double>(messages_sent_) /
                           static_cast<double>(updates_processed_);
  }

 private:
  struct ObjectState {
    geometry::Point last_reported;
    double safe_radius = 0.0;
  };

  void ReassignSafeRadii();

  geometry::Point query_;
  size_t k_;
  std::unordered_map<ObjectId, ObjectState> states_;
  size_t messages_sent_ = 0;
  size_t updates_processed_ = 0;
};

}  // namespace query
}  // namespace sidq

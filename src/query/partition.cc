#include "query/partition.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace query {

PartitionStats ComputeStats(const std::vector<Partition>& partitions) {
  PartitionStats stats;
  stats.num_partitions = partitions.size();
  if (partitions.empty()) return stats;
  size_t total = 0;
  for (const Partition& p : partitions) {
    stats.max_load = std::max(stats.max_load, p.load);
    total += p.load;
  }
  stats.mean_load =
      static_cast<double>(total) / static_cast<double>(partitions.size());
  stats.imbalance = stats.mean_load > 0.0
                        ? static_cast<double>(stats.max_load) /
                              stats.mean_load
                        : 0.0;
  return stats;
}

std::vector<Partition> UniformGridPartition(
    const std::vector<geometry::Point>& points, int cols, int rows) {
  std::vector<Partition> out;
  if (points.empty() || cols < 1 || rows < 1) return out;
  geometry::BBox bounds;
  for (const geometry::Point& p : points) bounds.Extend(p);
  const double dx = std::max(1e-9, bounds.Width() / cols);
  const double dy = std::max(1e-9, bounds.Height() / rows);
  out.resize(static_cast<size_t>(cols) * rows);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      out[static_cast<size_t>(r) * cols + c].box =
          geometry::BBox(bounds.min_x + c * dx, bounds.min_y + r * dy,
                         bounds.min_x + (c + 1) * dx,
                         bounds.min_y + (r + 1) * dy);
    }
  }
  for (const geometry::Point& p : points) {
    int c = static_cast<int>((p.x - bounds.min_x) / dx);
    int r = static_cast<int>((p.y - bounds.min_y) / dy);
    c = std::clamp(c, 0, cols - 1);
    r = std::clamp(r, 0, rows - 1);
    out[static_cast<size_t>(r) * cols + c].load += 1;
  }
  return out;
}

namespace {

void QuadSplit(const geometry::BBox& box, std::vector<geometry::Point> pts,
               size_t max_load, int depth, int max_depth,
               std::vector<Partition>* out) {
  if (pts.size() <= max_load || depth >= max_depth) {
    out->push_back(Partition{box, pts.size()});
    return;
  }
  const geometry::Point c = box.Center();
  const geometry::BBox quads[4] = {
      geometry::BBox(box.min_x, box.min_y, c.x, c.y),
      geometry::BBox(c.x, box.min_y, box.max_x, c.y),
      geometry::BBox(box.min_x, c.y, c.x, box.max_y),
      geometry::BBox(c.x, c.y, box.max_x, box.max_y)};
  std::vector<geometry::Point> buckets[4];
  for (const geometry::Point& p : pts) {
    const int qx = p.x < c.x ? 0 : 1;
    const int qy = p.y < c.y ? 0 : 1;
    buckets[qy * 2 + qx].push_back(p);
  }
  pts.clear();
  pts.shrink_to_fit();
  for (int q = 0; q < 4; ++q) {
    QuadSplit(quads[q], std::move(buckets[q]), max_load, depth + 1,
              max_depth, out);
  }
}

}  // namespace

std::vector<Partition> AdaptiveQuadPartition(
    const std::vector<geometry::Point>& points, size_t max_load_per_partition,
    int max_depth) {
  std::vector<Partition> out;
  if (points.empty()) return out;
  geometry::BBox bounds;
  for (const geometry::Point& p : points) bounds.Extend(p);
  // Nudge the bounds so boundary points fall strictly inside.
  bounds = bounds.Expanded(1e-6);
  QuadSplit(bounds, points, std::max<size_t>(1, max_load_per_partition), 0,
            max_depth, &out);
  return out;
}

}  // namespace query
}  // namespace sidq

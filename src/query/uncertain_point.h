#pragma once

#include <cstdint>
#include <vector>

#include "core/statusor.h"
#include "core/types.h"
#include "geometry/bbox.h"
#include "core/random.h"
#include "geometry/point.h"

namespace sidq {
namespace query {

// An object location under uncertainty (Section 2.3.1, "uncertainty caused
// by location inaccuracy"). Two pdf flavours are supported: a continuous
// isotropic Gaussian and a discrete sample set with occurrence
// probabilities.
class UncertainPoint {
 public:
  struct Sample {
    geometry::Point p;
    double prob = 0.0;
  };

  // Gaussian pdf centred at `mean` with per-axis sigma.
  static UncertainPoint MakeGaussian(ObjectId id, const geometry::Point& mean,
                                     double sigma);
  // Discrete pdf; probabilities are normalised internally.
  static StatusOr<UncertainPoint> MakeDiscrete(ObjectId id,
                                               std::vector<Sample> samples);

  ObjectId id() const { return id_; }
  bool is_gaussian() const { return gaussian_; }
  const geometry::Point& mean() const { return mean_; }
  double sigma() const { return sigma_; }
  const std::vector<Sample>& samples() const { return samples_; }

  // Probability that the true location lies inside `box` (exact closed form
  // for the Gaussian via erf; exact sum for the discrete case).
  double ProbInBox(const geometry::BBox& box) const;

  // Expected Euclidean distance to `q` (closed form for discrete; accurate
  // series approximation of the Rice distribution mean for the Gaussian).
  double ExpectedDistance(const geometry::Point& q) const;

  // A conservative bounding region: mean +/- `k` sigma for Gaussians
  // (prob mass outside is < 1e-5 for k >= 4.5), sample extent for discrete.
  geometry::BBox BoundingRegion(double k = 4.5) const;

 private:
  ObjectId id_ = kInvalidObjectId;
  bool gaussian_ = true;
  geometry::Point mean_;
  double sigma_ = 1.0;
  std::vector<Sample> samples_;
};

// Result statistics exposing how effective bound-based pruning was -- the
// "priority-oriented processing and object pruning" the tutorial highlights.
struct PruningStats {
  size_t total_objects = 0;
  size_t pruned_out = 0;      // bounding region misses the query
  size_t accepted_cheap = 0;  // bounding region fully inside (tau <= 1)
  size_t evaluated_exact = 0; // needed the exact probability

  double PrunedFraction() const {
    return total_objects == 0
               ? 0.0
               : 1.0 - static_cast<double>(evaluated_exact) /
                           static_cast<double>(total_objects);
  }
};

// Probabilistic range query: ids of objects with P(inside box) >= tau.
// Uses bounding-region pruning before exact evaluation.
std::vector<ObjectId> ProbabilisticRangeQuery(
    const std::vector<UncertainPoint>& objects, const geometry::BBox& box,
    double tau, PruningStats* stats = nullptr);

// Batched form for a fleet of boxes: bulk-loads a packed R-tree over the
// objects' bounding regions once and answers all boxes with ONE shared
// tree walk (kernels::PackedRTree::RangeQueryMany), replacing B full
// linear scans with B tree probes that share their traversal. Per box, the
// returned ids and the stats are IDENTICAL to ProbabilisticRangeQuery on
// that box -- candidates are re-ordered to object order before the exact
// evaluation, and the pruning predicates are the same box tests.
// `stats`, when non-null, is resized to one entry per box.
std::vector<std::vector<ObjectId>> ProbabilisticRangeQueryMany(
    const std::vector<UncertainPoint>& objects,
    const std::vector<geometry::BBox>& boxes, double tau,
    std::vector<PruningStats>* stats = nullptr);

// Expected-distance k-nearest-neighbours with lower-bound pruning: objects
// whose bounding-region MinDistance exceeds the current k-th expected
// distance are skipped without exact evaluation.
std::vector<ObjectId> ExpectedDistanceKnn(
    const std::vector<UncertainPoint>& objects, const geometry::Point& q,
    size_t k, PruningStats* stats = nullptr);

// Range aggregates against uncertain objects (Zhang et al., TKDE 2011
// family): the number of objects inside `box` is Poisson-binomial
// distributed with per-object inclusion probabilities p_i = P(o_i in box).
struct RangeCountDistribution {
  double expected = 0.0;
  double variance = 0.0;
  // tail[m] = P(count >= m); size = #objects with p_i > 0, plus one.
  std::vector<double> tail;

  // P(count >= m); 0 beyond the support.
  double ProbAtLeast(size_t m) const {
    if (m == 0) return 1.0;
    return m < tail.size() ? tail[m] : 0.0;
  }
};

// Exact count distribution via the Poisson-binomial dynamic program
// (objects with negligible probability are skipped; bounding regions prune
// the exact pdf evaluations just like the range query).
RangeCountDistribution RangeCount(const std::vector<UncertainPoint>& objects,
                                  const geometry::BBox& box);

// Probabilistic nearest neighbour: P(o_i is the NN of q) for every object,
// estimated by Monte Carlo over the location pdfs (`samples` draws).
// Returns (id, probability) pairs sorted by decreasing probability;
// objects with zero hits are omitted.
std::vector<std::pair<ObjectId, double>> ProbabilisticNearestNeighbor(
    const std::vector<UncertainPoint>& objects, const geometry::Point& q,
    int samples, Rng* rng);

}  // namespace query
}  // namespace sidq

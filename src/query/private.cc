#include "query/private.h"

#include <cmath>

namespace sidq {
namespace query {

geometry::Point PlanarLaplaceObfuscator::Obfuscate(const geometry::Point& p,
                                                   Rng* rng) const {
  // Radius of the planar Laplace is Gamma(2, 1/epsilon): the sum of two
  // independent exponentials with rate epsilon.
  const double r =
      (rng->Exponential(epsilon_) + rng->Exponential(epsilon_));
  const double theta = rng->Uniform(0.0, 2.0 * M_PI);
  return geometry::Point(p.x + r * std::cos(theta),
                         p.y + r * std::sin(theta));
}

UncertainPoint PlanarLaplaceObfuscator::ToUncertainPoint(
    ObjectId id, const geometry::Point& reported) const {
  // E[r^2] = 6 / eps^2 for Gamma(2, 1/eps) => per-axis variance 3 / eps^2.
  const double sigma = std::sqrt(3.0) / epsilon_;
  return UncertainPoint::MakeGaussian(id, reported, sigma);
}

PrivateRangeResult PrivateRangeQuery(
    const std::vector<std::pair<ObjectId, geometry::Point>>& reports,
    const PlanarLaplaceObfuscator& mechanism, const geometry::BBox& range,
    double tau) {
  PrivateRangeResult result;
  std::vector<UncertainPoint> uncertain;
  uncertain.reserve(reports.size());
  for (const auto& [id, reported] : reports) {
    if (range.Contains(reported)) result.naive.push_back(id);
    uncertain.push_back(mechanism.ToUncertainPoint(id, reported));
  }
  result.aware = ProbabilisticRangeQuery(uncertain, range, tau);
  return result;
}

}  // namespace query
}  // namespace sidq

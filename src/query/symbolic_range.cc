#include "query/symbolic_range.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace query {

void SymbolicRangeMonitor::ProcessReading(const SymbolicReading& reading) {
  ObjectState& st = states_[reading.object];
  st.region = reading.region;
  st.last_seen = reading.t;
}

std::vector<ObjectId> SymbolicRangeMonitor::Inside(Timestamp now) const {
  std::vector<ObjectId> out;
  for (const auto& [id, st] : states_) {
    if (query_regions_.count(st.region) == 0) continue;
    if (now - st.last_seen > stale_after_ms_) continue;
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double CountError(const std::vector<SymbolicTrajectory>& truth_streams,
                  const std::vector<SymbolicTrajectory>& observed_streams,
                  const std::set<RegionId>& query_regions,
                  Timestamp tick_ms, Timestamp stale_after_ms) {
  // Merge all readings into one time-ordered stream per variant.
  auto merge = [](const std::vector<SymbolicTrajectory>& streams) {
    std::vector<SymbolicReading> all;
    for (const auto& s : streams) {
      all.insert(all.end(), s.readings().begin(), s.readings().end());
    }
    std::sort(all.begin(), all.end(),
              [](const SymbolicReading& a, const SymbolicReading& b) {
                return a.t < b.t;
              });
    return all;
  };
  const auto truth_all = merge(truth_streams);
  const auto observed_all = merge(observed_streams);
  if (truth_all.empty()) return 0.0;

  SymbolicRangeMonitor truth_monitor(query_regions, stale_after_ms);
  SymbolicRangeMonitor observed_monitor(query_regions, stale_after_ms);
  size_t ti = 0, oi = 0;
  double err = 0.0;
  size_t ticks = 0;
  const Timestamp t0 = truth_all.front().t;
  const Timestamp t1 = truth_all.back().t;
  for (Timestamp now = t0; now <= t1; now += tick_ms) {
    while (ti < truth_all.size() && truth_all[ti].t <= now) {
      truth_monitor.ProcessReading(truth_all[ti++]);
    }
    while (oi < observed_all.size() && observed_all[oi].t <= now) {
      observed_monitor.ProcessReading(observed_all[oi++]);
    }
    err += std::abs(static_cast<double>(truth_monitor.CountInside(now)) -
                    static_cast<double>(observed_monitor.CountInside(now)));
    ++ticks;
  }
  return ticks > 0 ? err / static_cast<double>(ticks) : 0.0;
}

}  // namespace query
}  // namespace sidq

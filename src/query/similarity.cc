#include "query/similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/arena.h"
#include "kernels/distance.h"
#include "kernels/soa.h"

namespace sidq {
namespace query {

// The O(n*m) measures below run on columnar views (kernels::TrajectoryView)
// and per-row kernels (kernels/distance.h): the distance pass of each DP row
// vectorizes over contiguous x/y columns while the carried recurrence stays
// sequential. The kernels execute the same operations in the same order as
// the original AoS loops (kept verbatim in kernels/scalar_ref.cc), so every
// result is bit-identical to the pre-kernel implementation -- asserted by
// tests/kernels_test.cc and the bench_kernels checksum gate. DP rows and
// distance scratch live in the thread-local scratch arena (core/arena.h):
// a distance call performs zero heap allocations, which matters when the
// similarity search evaluates thousands of candidates per query.

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

StatusOr<double> DtwDistanceBounded(const Trajectory& a, const Trajectory& b,
                                    int band, const ExecContext* exec) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : kInf;
  const kernels::TrajectoryView va = kernels::TrajectoryView::Of(a);
  const kernels::TrajectoryView vb = kernels::TrajectoryView::Of(b);
  // Two-row DP; rows over a, columns over b. Rows and the per-row distance
  // scratch come from the arena (the kernel fills `cur` completely, so
  // only `prev` needs initializing).
  ArenaScope scope(ScratchArena());
  double* prev = scope.AllocFilled<double>(m + 1, kInf);
  double* cur = scope.AllocArray<double>(m + 1);
  double* dist = scope.AllocArray<double>(m);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    // The DP row is the unit of work a deadline can interrupt.
    if (exec != nullptr) SIDQ_RETURN_IF_ERROR(exec->Check());
    size_t lo = 1, hi = m;
    if (band > 0) {
      // Keep |i*m/n - j| within the band (scaled Sakoe-Chiba).
      const double center = static_cast<double>(i) * m / n;
      lo = static_cast<size_t>(std::max(1.0, center - band));
      hi = static_cast<size_t>(
          std::min(static_cast<double>(m), center + band));
    }
    kernels::DtwRowKernel(va.x()[i - 1], va.y()[i - 1], vb.x(), vb.y(), m,
                          lo, hi, prev, cur, dist);
    std::swap(prev, cur);
  }
  return prev[m];
}

double DtwDistance(const Trajectory& a, const Trajectory& b, int band) {
  // Without a context the bounded variant cannot fail.
  return *DtwDistanceBounded(a, b, band, nullptr);
}

StatusOr<double> DiscreteFrechetDistanceBounded(const Trajectory& a,
                                                const Trajectory& b,
                                                const ExecContext* exec) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : kInf;
  const kernels::TrajectoryView va = kernels::TrajectoryView::Of(a);
  const kernels::TrajectoryView vb = kernels::TrajectoryView::Of(b);
  ArenaScope scope(ScratchArena());
  if (exec == nullptr) {
    // No deadline to honor: run the whole DP as one anti-diagonal
    // wavefront. Bit-identical to the row iteration below (see
    // FrechetFullKernel), just without its carried per-row recurrence.
    double* scratch = scope.AllocArray<double>(3 * m);
    return kernels::FrechetFullKernel(va.x(), va.y(), n, vb.x(), vb.y(), m,
                                      scratch);
  }
  // Deadline-bounded: the DP row is the unit of work a deadline can
  // interrupt, so keep the row-kernel form.
  // Every row is written in full, so all three arrays start uninitialized.
  double* prev = scope.AllocArray<double>(m);
  double* cur = scope.AllocArray<double>(m);
  double* dist = scope.AllocArray<double>(m);
  // Row 0: running max of the distance prefix.
  kernels::DistRow(va.x()[0], va.y()[0], vb.x(), vb.y(), 0, m, dist);
  prev[0] = dist[0];
  for (size_t j = 1; j < m; ++j) prev[j] = std::max(prev[j - 1], dist[j]);
  for (size_t i = 1; i < n; ++i) {
    SIDQ_RETURN_IF_ERROR(exec->Check());
    kernels::FrechetRowKernel(va.x()[i], va.y()[i], vb.x(), vb.y(), m, prev,
                              cur, dist);
    std::swap(prev, cur);
  }
  return prev[m - 1];
}

double DiscreteFrechetDistance(const Trajectory& a, const Trajectory& b) {
  return *DiscreteFrechetDistanceBounded(a, b, nullptr);
}

double EdrDistance(const Trajectory& a, const Trajectory& b,
                   double epsilon_m) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 0.0;
  if (n == 0 || m == 0) return 1.0;
  const kernels::TrajectoryView va = kernels::TrajectoryView::Of(a);
  const kernels::TrajectoryView vb = kernels::TrajectoryView::Of(b);
  ArenaScope scope(ScratchArena());
  double* prev = scope.AllocArray<double>(m + 1);
  double* cur = scope.AllocArray<double>(m + 1);
  double* dist = scope.AllocArray<double>(m);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<double>(i);
    kernels::DistRow(va.x()[i - 1], va.y()[i - 1], vb.x(), vb.y(), 0, m,
                     dist);
    for (size_t j = 1; j <= m; ++j) {
      const bool match = dist[j - 1] <= epsilon_m;
      const double sub = prev[j - 1] + (match ? 0.0 : 1.0);
      cur[j] = std::min({sub, prev[j] + 1.0, cur[j - 1] + 1.0});
    }
    std::swap(prev, cur);
  }
  return prev[m] / static_cast<double>(std::max(n, m));
}

double LcssSimilarity(const Trajectory& a, const Trajectory& b,
                      double epsilon_m, Timestamp delta_ms) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return 0.0;
  const kernels::TrajectoryView va = kernels::TrajectoryView::Of(a);
  const kernels::TrajectoryView vb = kernels::TrajectoryView::Of(b);
  // cur[0] is never written by the row loop and must stay 0 across swaps,
  // so both DP rows start zero-filled.
  ArenaScope scope(ScratchArena());
  double* prev = scope.AllocFilled<double>(m + 1, 0.0);
  double* cur = scope.AllocFilled<double>(m + 1, 0.0);
  double* dist = scope.AllocArray<double>(m);
  for (size_t i = 1; i <= n; ++i) {
    kernels::DistRow(va.x()[i - 1], va.y()[i - 1], vb.x(), vb.y(), 0, m,
                     dist);
    const Timestamp ta = va.t()[i - 1];
    for (size_t j = 1; j <= m; ++j) {
      const bool match = dist[j - 1] <= epsilon_m &&
                         std::abs(ta - vb.t()[j - 1]) <= delta_ms;
      if (match) {
        cur[j] = prev[j - 1] + 1.0;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[m] / static_cast<double>(std::min(n, m));
}

void TrajectorySimilaritySearch::Build(
    const std::vector<Trajectory>* collection) {
  collection_ = collection;
  mbrs_.clear();
  mbrs_.reserve(collection->size());
  empty_mbrs_.clear();
  std::vector<kernels::PackedRTree::Item> items;
  items.reserve(collection->size());
  for (size_t i = 0; i < collection->size(); ++i) {
    mbrs_.push_back((*collection)[i].Bounds());
    if (mbrs_.back().Empty()) {
      empty_mbrs_.push_back(i);
    } else {
      items.push_back({static_cast<uint64_t>(i), mbrs_.back()});
    }
  }
  tree_.BulkLoad(std::move(items));
}

StatusOr<std::vector<size_t>> TrajectorySimilaritySearch::Knn(
    const Trajectory& queried, size_t k, SearchStats* stats) const {
  if (collection_ == nullptr) {
    return Status::FailedPrecondition("Build() not called");
  }
  if (queried.empty()) {
    return Status::InvalidArgument("empty query trajectory");
  }
  SearchStats local;
  local.candidates = collection_->size();
  if (k == 0) {
    local.pruned = local.candidates;
    if (stats != nullptr) *stats = local;
    return std::vector<size_t>{};
  }
  const geometry::BBox qbox = queried.Bounds();
  const double qn = static_cast<double>(queried.size());

  // Max-heap of the best k (dtw, index). Candidates arrive in increasing
  // (MBR-gap, index) order -- BoxGapScan streams the tree in exactly the
  // order the former sort-all-candidates implementation produced -- so the
  // pruning bound tightens as early as possible, and once even a
  // query-length alignment at the current gap cannot beat the k-th best
  // (gap * |q| >= kth), every remaining candidate is pruned wholesale.
  std::vector<std::pair<double, size_t>> best;
  // Returns false when the scan can stop: all remaining candidates (gap at
  // least as large) are prunable.
  const auto consider = [&](size_t i, double gap) {
    if (best.size() == k && gap * qn >= best.front().first) return false;
    const Trajectory& cand = (*collection_)[i];
    // Every DTW alignment has at least max(|q|, |c|) matched pairs, each
    // costing at least the MBR gap.
    const double lower_bound =
        gap * static_cast<double>(std::max(queried.size(), cand.size()));
    if (best.size() == k && lower_bound >= best.front().first) return true;
    ++local.dtw_computed;
    const double d = DtwDistance(queried, cand, options_.dtw_band);
    if (best.size() < k) {
      best.emplace_back(d, i);
      std::push_heap(best.begin(), best.end());
    } else if (d < best.front().first) {
      std::pop_heap(best.begin(), best.end());
      best.back() = {d, i};
      std::push_heap(best.begin(), best.end());
    }
    return true;
  };

  kernels::BoxGapScan scan(tree_, qbox);
  uint64_t id = 0;
  double gap = 0.0;
  bool stopped = false;
  while (scan.Next(&id, &gap)) {
    if (!consider(static_cast<size_t>(id), gap)) {
      stopped = true;
      break;
    }
  }
  // Point-free trajectories have inverted MBRs (infinite gap): they sort
  // after every tree item, in index order.
  if (!stopped) {
    for (size_t i : empty_mbrs_) {
      if (!consider(i, kernels::BoxGap(qbox, mbrs_[i]))) break;
    }
  }

  // Every candidate not reached by the scan was pruned by the bound that
  // stopped it.
  local.pruned = local.candidates - local.dtw_computed;
  std::sort_heap(best.begin(), best.end());
  std::vector<size_t> out;
  out.reserve(best.size());
  for (const auto& [d, i] : best) out.push_back(i);
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace query
}  // namespace sidq

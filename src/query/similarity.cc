#include "query/similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sidq {
namespace query {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Minimum distance between two boxes (0 when they intersect).
double BoxGap(const geometry::BBox& a, const geometry::BBox& b) {
  const double dx =
      std::max({a.min_x - b.max_x, b.min_x - a.max_x, 0.0});
  const double dy =
      std::max({a.min_y - b.max_y, b.min_y - a.max_y, 0.0});
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

double DtwDistance(const Trajectory& a, const Trajectory& b, int band) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : kInf;
  // Two-row DP; rows over a, columns over b.
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    size_t lo = 1, hi = m;
    if (band > 0) {
      // Keep |i*m/n - j| within the band (scaled Sakoe-Chiba).
      const double center = static_cast<double>(i) * m / n;
      lo = static_cast<size_t>(std::max(1.0, center - band));
      hi = static_cast<size_t>(
          std::min(static_cast<double>(m), center + band));
    }
    for (size_t j = lo; j <= hi; ++j) {
      const double d = geometry::Distance(a[i - 1].p, b[j - 1].p);
      const double best =
          std::min({prev[j], prev[j - 1], cur[j - 1]});
      if (best != kInf) cur[j] = d + best;
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double DiscreteFrechetDistance(const Trajectory& a, const Trajectory& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : kInf;
  std::vector<double> prev(m), cur(m);
  for (size_t j = 0; j < m; ++j) {
    const double d = geometry::Distance(a[0].p, b[j].p);
    prev[j] = j == 0 ? d : std::max(prev[j - 1], d);
  }
  for (size_t i = 1; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double d = geometry::Distance(a[i].p, b[j].p);
      double reach;
      if (j == 0) {
        reach = prev[0];
      } else {
        reach = std::min({prev[j], prev[j - 1], cur[j - 1]});
      }
      cur[j] = std::max(reach, d);
    }
    std::swap(prev, cur);
  }
  return prev[m - 1];
}

double EdrDistance(const Trajectory& a, const Trajectory& b,
                   double epsilon_m) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 0.0;
  if (n == 0 || m == 0) return 1.0;
  std::vector<double> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<double>(i);
    for (size_t j = 1; j <= m; ++j) {
      const bool match =
          geometry::Distance(a[i - 1].p, b[j - 1].p) <= epsilon_m;
      const double sub = prev[j - 1] + (match ? 0.0 : 1.0);
      cur[j] = std::min({sub, prev[j] + 1.0, cur[j - 1] + 1.0});
    }
    std::swap(prev, cur);
  }
  return prev[m] / static_cast<double>(std::max(n, m));
}

double LcssSimilarity(const Trajectory& a, const Trajectory& b,
                      double epsilon_m, Timestamp delta_ms) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return 0.0;
  std::vector<double> prev(m + 1, 0.0), cur(m + 1, 0.0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const bool match =
          geometry::Distance(a[i - 1].p, b[j - 1].p) <= epsilon_m &&
          std::abs(a[i - 1].t - b[j - 1].t) <= delta_ms;
      if (match) {
        cur[j] = prev[j - 1] + 1.0;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[m] / static_cast<double>(std::min(n, m));
}

void TrajectorySimilaritySearch::Build(
    const std::vector<Trajectory>* collection) {
  collection_ = collection;
  mbrs_.clear();
  mbrs_.reserve(collection->size());
  for (const Trajectory& tr : *collection) {
    mbrs_.push_back(tr.Bounds());
  }
}

StatusOr<std::vector<size_t>> TrajectorySimilaritySearch::Knn(
    const Trajectory& queried, size_t k, SearchStats* stats) const {
  if (collection_ == nullptr) {
    return Status::FailedPrecondition("Build() not called");
  }
  if (queried.empty()) {
    return Status::InvalidArgument("empty query trajectory");
  }
  SearchStats local;
  local.candidates = collection_->size();
  const geometry::BBox qbox = queried.Bounds();

  // Process candidates in increasing MBR-gap order so the pruning bound
  // tightens as early as possible.
  std::vector<std::pair<double, size_t>> order;
  order.reserve(collection_->size());
  for (size_t i = 0; i < collection_->size(); ++i) {
    order.emplace_back(BoxGap(qbox, mbrs_[i]), i);
  }
  std::sort(order.begin(), order.end());

  // Max-heap of the best k (dtw, index).
  std::vector<std::pair<double, size_t>> best;
  for (const auto& [gap, i] : order) {
    const Trajectory& cand = (*collection_)[i];
    // Every DTW alignment has at least max(|q|, |c|) matched pairs, each
    // costing at least the MBR gap.
    const double lower_bound =
        gap * static_cast<double>(std::max(queried.size(), cand.size()));
    if (best.size() == k && lower_bound >= best.front().first) {
      ++local.pruned;
      continue;
    }
    ++local.dtw_computed;
    const double d = DtwDistance(queried, cand, options_.dtw_band);
    if (best.size() < k) {
      best.emplace_back(d, i);
      std::push_heap(best.begin(), best.end());
    } else if (d < best.front().first) {
      std::pop_heap(best.begin(), best.end());
      best.back() = {d, i};
      std::push_heap(best.begin(), best.end());
    }
  }
  std::sort_heap(best.begin(), best.end());
  std::vector<size_t> out;
  out.reserve(best.size());
  for (const auto& [d, i] : best) out.push_back(i);
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace query
}  // namespace sidq

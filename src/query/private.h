#pragma once

#include <vector>

#include "core/random.h"
#include "core/statusor.h"
#include "geometry/bbox.h"
#include "geometry/point.h"
#include "query/uncertain_point.h"

namespace sidq {
namespace query {

// Privacy-preserving spatial computing (Section 2.4 "emerging trends";
// geo-indistinguishability, Andres et al.): locations are obfuscated with
// planar Laplace noise before leaving the device, and the server queries
// the obfuscated feed. Because the noise distribution is public, the
// server can treat each obfuscated report as an *uncertain point* and run
// the probabilistic machinery of this module -- turning the privacy noise
// into just another quality issue to manage.
class PlanarLaplaceObfuscator {
 public:
  // epsilon is the geo-indistinguishability parameter in 1/metres:
  // locations r metres apart are e^(epsilon*r)-indistinguishable. Smaller
  // epsilon = stronger privacy = more noise.
  explicit PlanarLaplaceObfuscator(double epsilon_per_m)
      : epsilon_(epsilon_per_m) {}

  double epsilon() const { return epsilon_; }
  // Mean displacement of the mechanism: E[r] = 2 / epsilon.
  double MeanDisplacement() const { return 2.0 / epsilon_; }

  // Draws one obfuscated location: uniform angle, radius ~ Gamma(2,
  // 1/epsilon) (the planar Laplace radial law).
  geometry::Point Obfuscate(const geometry::Point& p, Rng* rng) const;

  // The server-side uncertainty model for a report: a Gaussian with the
  // planar Laplace's per-axis variance 3 / epsilon^2 (moment matched).
  UncertainPoint ToUncertainPoint(ObjectId id,
                                  const geometry::Point& reported) const;

 private:
  double epsilon_;
};

// Server-side range query over obfuscated reports.
struct PrivateRangeResult {
  // Naive: objects whose obfuscated report falls inside the range.
  std::vector<ObjectId> naive;
  // Noise-aware: objects with P(true location inside) >= tau under the
  // public noise model.
  std::vector<ObjectId> aware;
};

PrivateRangeResult PrivateRangeQuery(
    const std::vector<std::pair<ObjectId, geometry::Point>>& reports,
    const PlanarLaplaceObfuscator& mechanism, const geometry::BBox& range,
    double tau);

}  // namespace query
}  // namespace sidq

#include "query/cloaking.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace query {

namespace {

// Recursive quadtree descent: returns, for each user index in `members`,
// the smallest cell on its root-to-leaf path that still holds >= k users.
void Descend(const geometry::BBox& cell,
             const std::vector<std::pair<ObjectId, geometry::Point>>& users,
             const std::vector<size_t>& members, size_t k, int depth,
             int max_depth, std::vector<geometry::BBox>* out) {
  // This cell is the current best cloak for all members.
  for (size_t i : members) (*out)[i] = cell;
  if (depth >= max_depth) return;
  const geometry::Point c = cell.Center();
  const geometry::BBox quads[4] = {
      geometry::BBox(cell.min_x, cell.min_y, c.x, c.y),
      geometry::BBox(c.x, cell.min_y, cell.max_x, c.y),
      geometry::BBox(cell.min_x, c.y, c.x, cell.max_y),
      geometry::BBox(c.x, c.y, cell.max_x, cell.max_y)};
  std::vector<size_t> buckets[4];
  for (size_t i : members) {
    const geometry::Point& p = users[i].second;
    const int qx = p.x < c.x ? 0 : 1;
    const int qy = p.y < c.y ? 0 : 1;
    buckets[qy * 2 + qx].push_back(i);
  }
  for (int q = 0; q < 4; ++q) {
    // Only sub-cells that still satisfy k-anonymity may shrink the cloak.
    if (buckets[q].size() >= k) {
      Descend(quads[q], users, buckets[q], k, depth + 1, max_depth, out);
    }
  }
}

}  // namespace

StatusOr<std::vector<SpatialCloaker::Cloak>> SpatialCloaker::CloakAll(
    const std::vector<std::pair<ObjectId, geometry::Point>>& users) const {
  if (users.size() < options_.k) {
    return Status::FailedPrecondition(
        "fewer users than the anonymity level k");
  }
  geometry::BBox root;
  for (const auto& [id, p] : users) root.Extend(p);
  root = root.Expanded(1.0);
  std::vector<size_t> all(users.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<geometry::BBox> regions(users.size());
  Descend(root, users, all, options_.k, 0, options_.max_depth, &regions);
  std::vector<Cloak> out(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    out[i].id = users[i].first;
    out[i].region = regions[i];
  }
  return out;
}

double ExpectedCountInRange(const std::vector<SpatialCloaker::Cloak>& cloaks,
                            const geometry::BBox& range) {
  double expected = 0.0;
  for (const auto& cloak : cloaks) {
    if (!cloak.region.Intersects(range) || cloak.region.Area() <= 0.0) {
      continue;
    }
    const double ox = std::min(cloak.region.max_x, range.max_x) -
                      std::max(cloak.region.min_x, range.min_x);
    const double oy = std::min(cloak.region.max_y, range.max_y) -
                      std::max(cloak.region.min_y, range.min_y);
    expected += std::max(0.0, ox) * std::max(0.0, oy) / cloak.region.Area();
  }
  return expected;
}

}  // namespace query
}  // namespace sidq

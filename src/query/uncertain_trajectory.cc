#include "query/uncertain_trajectory.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace sidq {
namespace query {

namespace {

// Bracketing sample indices for time t; false when outside the span.
bool Bracket(const Trajectory& tr, Timestamp t, size_t* lo, size_t* hi) {
  if (tr.empty() || t < tr.front().t || t > tr.back().t) return false;
  size_t a = 0, b = tr.size() - 1;
  while (a + 1 < b) {
    const size_t mid = (a + b) / 2;
    if (tr[mid].t <= t) {
      a = mid;
    } else {
      b = mid;
    }
  }
  if (tr.size() == 1) {
    *lo = *hi = 0;
    return true;
  }
  *lo = a;
  *hi = b;
  return true;
}

}  // namespace

geometry::BBox BeadModel::PossibleRegionBounds(Timestamp t) const {
  size_t lo, hi;
  if (!Bracket(*trajectory_, t, &lo, &hi)) return geometry::BBox();
  const TrajectoryPoint& a = (*trajectory_)[lo];
  const TrajectoryPoint& b = (*trajectory_)[hi];
  const double r1 = vmax_ * TimestampToSeconds(t - a.t);
  const double r2 = vmax_ * TimestampToSeconds(b.t - t);
  const geometry::BBox box1(a.p.x - r1, a.p.y - r1, a.p.x + r1, a.p.y + r1);
  if (lo == hi) return box1;
  const geometry::BBox box2(b.p.x - r2, b.p.y - r2, b.p.x + r2, b.p.y + r2);
  // The lens is contained in the intersection of the two disks' boxes.
  geometry::BBox out(std::max(box1.min_x, box2.min_x),
                     std::max(box1.min_y, box2.min_y),
                     std::min(box1.max_x, box2.max_x),
                     std::min(box1.max_y, box2.max_y));
  return out;
}

bool BeadModel::PossiblyAt(const geometry::Point& p, Timestamp t) const {
  size_t lo, hi;
  if (!Bracket(*trajectory_, t, &lo, &hi)) return false;
  const TrajectoryPoint& a = (*trajectory_)[lo];
  const TrajectoryPoint& b = (*trajectory_)[hi];
  const double r1 = vmax_ * TimestampToSeconds(t - a.t);
  if (geometry::Distance(p, a.p) > r1) return false;
  if (lo == hi) return true;
  const double r2 = vmax_ * TimestampToSeconds(b.t - t);
  return geometry::Distance(p, b.p) <= r2;
}

bool BeadModel::PossiblyInside(const geometry::BBox& box, Timestamp t_begin,
                               Timestamp t_end, int steps) const {
  if (steps < 1) steps = 1;
  for (int s = 0; s <= steps; ++s) {
    const Timestamp t =
        t_begin + (t_end - t_begin) * s / std::max(1, steps);
    const geometry::BBox region = PossibleRegionBounds(t);
    if (region.Empty()) continue;
    if (!region.Intersects(box)) continue;
    // The box intersects the lens bounds; verify with a corner/center
    // containment test against the exact lens.
    const geometry::Point probes[5] = {
        region.Center(),
        geometry::Point(std::clamp(region.Center().x, box.min_x, box.max_x),
                        std::clamp(region.Center().y, box.min_y, box.max_y)),
        geometry::Point(box.min_x, box.min_y),
        geometry::Point(box.max_x, box.max_y),
        geometry::Point((box.min_x + box.max_x) / 2.0,
                        (box.min_y + box.max_y) / 2.0)};
    for (const geometry::Point& p : probes) {
      if (box.Contains(p) && PossiblyAt(p, t)) return true;
    }
  }
  return false;
}

bool BeadModel::DefinitelyInside(const geometry::BBox& box, Timestamp t_begin,
                                 Timestamp t_end, int steps) const {
  if (steps < 1) steps = 1;
  for (int s = 0; s <= steps; ++s) {
    const Timestamp t =
        t_begin + (t_end - t_begin) * s / std::max(1, steps);
    const geometry::BBox region = PossibleRegionBounds(t);
    if (region.Empty()) return false;  // outside the observed span
    if (!box.Contains(region)) return false;
  }
  return true;
}

double MarkovGridModel::ProbInBox(const geometry::BBox& box,
                                  Timestamp t) const {
  size_t lo, hi;
  if (!Bracket(*trajectory_, t, &lo, &hi)) return 0.0;
  const TrajectoryPoint& a = (*trajectory_)[lo];
  const TrajectoryPoint& b = (*trajectory_)[hi];
  const double cell = options_.cell_m;
  // The forward and backward diffusions must be able to meet: the step
  // budget has to cover the Chebyshev cell distance between the endpoints.
  const int cheb = std::max(
      std::abs(static_cast<int>(std::floor(a.p.x / cell)) -
               static_cast<int>(std::floor(b.p.x / cell))),
      std::abs(static_cast<int>(std::floor(a.p.y / cell)) -
               static_cast<int>(std::floor(b.p.y / cell))));
  const int total_steps =
      std::max({1, options_.steps_per_interval, cheb + 1});
  int fwd_steps = 0;
  if (hi != lo && b.t > a.t) {
    fwd_steps = static_cast<int>(std::lround(
        static_cast<double>(total_steps) * static_cast<double>(t - a.t) /
        static_cast<double>(b.t - a.t)));
    fwd_steps = std::clamp(fwd_steps, 0, total_steps);
  }
  const int bwd_steps = hi == lo ? 0 : total_steps - fwd_steps;

  // Local window covering both endpoints plus diffusion reach.
  const int margin = total_steps + 1;
  const int ax = static_cast<int>(std::floor(a.p.x / cell));
  const int ay = static_cast<int>(std::floor(a.p.y / cell));
  const int bx = static_cast<int>(std::floor(b.p.x / cell));
  const int by = static_cast<int>(std::floor(b.p.y / cell));
  const int min_x = std::min(ax, bx) - margin;
  const int max_x = std::max(ax, bx) + margin;
  const int min_y = std::min(ay, by) - margin;
  const int max_y = std::max(ay, by) + margin;
  const int w = max_x - min_x + 1;
  const int h = max_y - min_y + 1;
  auto idx = [&](int cx, int cy) {
    return static_cast<size_t>((cy - min_y) * w + (cx - min_x));
  };

  auto diffuse = [&](std::vector<double>& dist, int steps) {
    std::vector<double> next(dist.size());
    for (int s = 0; s < steps; ++s) {
      std::fill(next.begin(), next.end(), 0.0);
      for (int cy = min_y; cy <= max_y; ++cy) {
        for (int cx = min_x; cx <= max_x; ++cx) {
          const double p = dist[idx(cx, cy)];
          if (p == 0.0) continue;
          const double share = p / 9.0;
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const int nx = std::clamp(cx + dx, min_x, max_x);
              const int ny = std::clamp(cy + dy, min_y, max_y);
              next[idx(nx, ny)] += share;
            }
          }
        }
      }
      dist.swap(next);
    }
  };

  std::vector<double> fwd(static_cast<size_t>(w) * h, 0.0);
  fwd[idx(ax, ay)] = 1.0;
  diffuse(fwd, fwd_steps);
  std::vector<double> prob;
  if (hi == lo) {
    prob = std::move(fwd);
  } else {
    std::vector<double> bwd(static_cast<size_t>(w) * h, 0.0);
    bwd[idx(bx, by)] = 1.0;
    diffuse(bwd, bwd_steps);
    prob.resize(fwd.size());
    double total = 0.0;
    for (size_t i = 0; i < prob.size(); ++i) {
      prob[i] = fwd[i] * bwd[i];
      total += prob[i];
    }
    if (total <= 0.0) return 0.0;
    for (double& p : prob) p /= total;
  }

  double mass = 0.0;
  for (int cy = min_y; cy <= max_y; ++cy) {
    for (int cx = min_x; cx <= max_x; ++cx) {
      const geometry::Point center((cx + 0.5) * cell, (cy + 0.5) * cell);
      if (box.Contains(center)) mass += prob[idx(cx, cy)];
    }
  }
  return mass;
}

namespace {

// The lens (possible-location region) of a bead model at time t, described
// by up to two disks whose intersection is the region. Returns false when
// t is outside the trajectory span.
struct Lens {
  geometry::Point center[2];
  double radius[2];
  int disks = 0;
};

bool LensAt(const Trajectory& tr, double vmax, Timestamp t, Lens* lens) {
  size_t lo, hi;
  if (!Bracket(tr, t, &lo, &hi)) return false;
  const TrajectoryPoint& a = tr[lo];
  const TrajectoryPoint& b = tr[hi];
  lens->center[0] = a.p;
  lens->radius[0] = vmax * TimestampToSeconds(t - a.t);
  lens->disks = 1;
  if (hi != lo) {
    lens->center[1] = b.p;
    lens->radius[1] = vmax * TimestampToSeconds(b.t - t);
    lens->disks = 2;
  }
  return true;
}

// Projects p onto the lens by alternating projection onto its disks.
geometry::Point ProjectToLens(const Lens& lens, geometry::Point p) {
  for (int iter = 0; iter < 24; ++iter) {
    bool inside_all = true;
    for (int d = 0; d < lens.disks; ++d) {
      const geometry::Point diff = p - lens.center[d];
      const double dist = diff.Norm();
      if (dist > lens.radius[d]) {
        inside_all = false;
        p = lens.center[d] +
            (dist > 0.0 ? diff * (lens.radius[d] / dist)
                        : geometry::Point(lens.radius[d], 0.0));
      }
    }
    if (inside_all) break;
  }
  return p;
}

}  // namespace

bool AlibiPossiblyMet(const Trajectory& a, const Trajectory& b,
                      double vmax_mps, Timestamp t_begin, Timestamp t_end,
                      double meet_distance_m, int steps) {
  if (steps < 1) steps = 1;
  for (int s = 0; s <= steps; ++s) {
    const Timestamp t =
        t_begin + (t_end - t_begin) * s / std::max(1, steps);
    Lens la, lb;
    if (!LensAt(a, vmax_mps, t, &la) || !LensAt(b, vmax_mps, t, &lb)) {
      continue;
    }
    // Alternating projection between the two lenses approximates the
    // set-to-set distance.
    geometry::Point pa = geometry::Lerp(la.center[0], lb.center[0], 0.5);
    geometry::Point pb = pa;
    for (int iter = 0; iter < 32; ++iter) {
      pa = ProjectToLens(la, pb);
      pb = ProjectToLens(lb, pa);
    }
    if (geometry::Distance(pa, pb) <= meet_distance_m + 1e-6) return true;
  }
  return false;
}

UncertainRangeResult UncertainTrajectoryRange(
    const std::vector<Trajectory>& trajectories, double vmax_mps,
    const geometry::BBox& box, Timestamp t_begin, Timestamp t_end) {
  UncertainRangeResult out;
  for (const Trajectory& tr : trajectories) {
    BeadModel model(&tr, vmax_mps);
    if (model.PossiblyInside(box, t_begin, t_end)) {
      out.possible.push_back(tr.object_id());
      if (model.DefinitelyInside(box, t_begin, t_end)) {
        out.definite.push_back(tr.object_id());
      }
    }
  }
  return out;
}

}  // namespace query
}  // namespace sidq

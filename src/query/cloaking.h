#pragma once

#include <vector>

#include "core/statusor.h"
#include "core/types.h"
#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {
namespace query {

// Spatial k-anonymity cloaking (Section 2.4 privacy-preserving computing;
// Casper/quadtree cloaking family): each user's exact location is replaced
// by the smallest quadtree cell containing at least k users, so any report
// is indistinguishable among >= k people. Queries over cloaked regions
// return expected counts under a uniform-within-cell assumption -- privacy
// noise handled, once again, as quantified uncertainty.
class SpatialCloaker {
 public:
  struct Options {
    size_t k = 5;
    int max_depth = 16;
  };

  explicit SpatialCloaker(Options options) : options_(options) {}
  SpatialCloaker() : SpatialCloaker(Options{}) {}

  struct Cloak {
    ObjectId id = kInvalidObjectId;
    geometry::BBox region;
  };

  // Cloaks every user; fails when fewer than k users exist in total.
  [[nodiscard]] StatusOr<std::vector<Cloak>> CloakAll(
      const std::vector<std::pair<ObjectId, geometry::Point>>& users) const;

 private:
  Options options_;
};

// Expected number of cloaked users inside `range`, counting each cloak by
// its area overlap fraction (uniform-within-cloak model).
double ExpectedCountInRange(const std::vector<SpatialCloaker::Cloak>& cloaks,
                            const geometry::BBox& range);

}  // namespace query
}  // namespace sidq

#include "query/continuous_knn.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace query {

bool ContinuousKnnMonitor::ProcessUpdate(ObjectId id,
                                         const geometry::Point& p) {
  ++updates_processed_;
  const auto it = states_.find(id);
  if (it != states_.end() &&
      geometry::Distance(p, it->second.last_reported) <=
          it->second.safe_radius) {
    return false;  // movement cannot have crossed the k-th boundary
  }
  ++messages_sent_;
  states_[id].last_reported = p;
  ReassignSafeRadii();
  return true;
}

void ContinuousKnnMonitor::ReassignSafeRadii() {
  // Distances of all known objects to the query point.
  std::vector<std::pair<double, ObjectId>> dist;
  dist.reserve(states_.size());
  for (const auto& [id, st] : states_) {
    dist.emplace_back(geometry::Distance(st.last_reported, query_), id);
  }
  std::sort(dist.begin(), dist.end());
  if (dist.size() <= k_) {
    // Everyone is in the result; no boundary to protect.
    // sidq: allow-unordered-iter(independent per-object constant write;
    // no ordering dependence)
    for (auto& [id, st] : states_) st.safe_radius = 0.0;
    return;
  }
  const double d_k = dist[k_ - 1].first;      // k-th (last inside)
  const double d_k1 = dist[k_].first;         // (k+1)-th (first outside)
  for (size_t i = 0; i < dist.size(); ++i) {
    ObjectState& st = states_[dist[i].second];
    if (i < k_) {
      // Inside: safe while it cannot pass the first outsider.
      st.safe_radius = std::max(0.0, (d_k1 - dist[i].first) / 2.0);
    } else {
      // Outside: safe while it cannot pass the k-th insider.
      st.safe_radius = std::max(0.0, (dist[i].first - d_k) / 2.0);
    }
  }
}

std::vector<ObjectId> ContinuousKnnMonitor::Result() const {
  std::vector<std::pair<double, ObjectId>> dist;
  dist.reserve(states_.size());
  for (const auto& [id, st] : states_) {
    dist.emplace_back(geometry::Distance(st.last_reported, query_), id);
  }
  std::sort(dist.begin(), dist.end());
  std::vector<ObjectId> out;
  for (size_t i = 0; i < std::min(k_, dist.size()); ++i) {
    out.push_back(dist[i].second);
  }
  return out;
}

}  // namespace query
}  // namespace sidq

#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/types.h"
#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {
namespace query {

// Continuous range monitoring over evolving SID (Section 2.3.1, "queries
// over evolving SID"): a server maintains the set of objects inside a fixed
// rectangular query. With safe regions (Qi et al., CSUR 2018) an object
// only communicates when it leaves the circular safe region assigned at its
// last report, slashing the message volume against naive per-update
// reporting.
class SafeRegionMonitor {
 public:
  explicit SafeRegionMonitor(const geometry::BBox& range) : range_(range) {}

  // Processes one location update as evaluated on the *object* side;
  // returns true when the object had to send a message to the server.
  bool ProcessUpdate(ObjectId id, const geometry::Point& p);

  // Objects currently known to be inside the range (server view).
  const std::unordered_set<ObjectId>& inside() const { return inside_; }

  size_t messages_sent() const { return messages_sent_; }
  size_t updates_processed() const { return updates_processed_; }
  double MessageSavings() const {
    return updates_processed_ == 0
               ? 0.0
               : 1.0 - static_cast<double>(messages_sent_) /
                           static_cast<double>(updates_processed_);
  }

 private:
  struct ObjectState {
    geometry::Point last_reported;
    double safe_radius = 0.0;
    bool inside = false;
  };

  // Distance from p to the range boundary (positive inside and outside).
  double BoundaryDistance(const geometry::Point& p) const;

  geometry::BBox range_;
  std::unordered_map<ObjectId, ObjectState> states_;
  std::unordered_set<ObjectId> inside_;
  size_t messages_sent_ = 0;
  size_t updates_processed_ = 0;
};

}  // namespace query
}  // namespace sidq

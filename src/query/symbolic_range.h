#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "core/symbolic.h"
#include "core/types.h"

namespace sidq {
namespace query {

// Continuous range monitoring in symbolic indoor space (Yang, Lu & Jensen,
// CIKM 2009 family): the query is a set of regions (rooms/zones covered by
// RFID or BLE readers) and the monitor maintains which objects are
// currently inside, driven by symbolic detection streams. Running the
// monitor on raw vs cleaned streams quantifies how much fault correction
// (Section 2.2.4) improves downstream query answers -- the management →
// exploitation hand-off of the tutorial.
class SymbolicRangeMonitor {
 public:
  // `query_regions` is the monitored zone set; `stale_after_ms` expires an
  // object whose last reading is older than this (it may have left through
  // an uninstrumented path).
  SymbolicRangeMonitor(std::set<RegionId> query_regions,
                       Timestamp stale_after_ms)
      : query_regions_(std::move(query_regions)),
        stale_after_ms_(stale_after_ms) {}

  // Feeds one detection (readings may interleave across objects but must
  // be globally non-decreasing in time for exact staleness handling).
  void ProcessReading(const SymbolicReading& reading);

  // Objects currently believed inside the query regions at time `now`.
  std::vector<ObjectId> Inside(Timestamp now) const;
  size_t CountInside(Timestamp now) const { return Inside(now).size(); }

 private:
  struct ObjectState {
    RegionId region = 0;
    Timestamp last_seen = kMinTimestamp;
  };

  std::set<RegionId> query_regions_;
  Timestamp stale_after_ms_;
  std::unordered_map<ObjectId, ObjectState> states_;
};

// Convenience evaluation: mean absolute error of the monitored count vs
// truth, sampled every `tick_ms` over the streams' joint time span.
double CountError(const std::vector<SymbolicTrajectory>& truth_streams,
                  const std::vector<SymbolicTrajectory>& observed_streams,
                  const std::set<RegionId>& query_regions,
                  Timestamp tick_ms, Timestamp stale_after_ms);

}  // namespace query
}  // namespace sidq

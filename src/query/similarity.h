#pragma once

#include <vector>

#include "core/exec_context.h"
#include "core/statusor.h"
#include "core/trajectory.h"
#include "core/types.h"
#include "kernels/packed_rtree.h"

namespace sidq {
namespace query {

// Trajectory similarity measures and similarity search over large
// collections (Section 2.3.1, "queries over massive SID"; Xie et al.
// PVLDB 2017 / Yuan & Li ICDE 2019 families). The robust measures (DTW,
// EDR, LCSS) are exactly the tools used to query *low-quality* trajectory
// data: they tolerate noise, differing sampling rates, and gaps that break
// naive pointwise distances.

// Dynamic time warping distance with an optional Sakoe-Chiba band
// (band <= 0 disables the constraint). O(n*m) time, O(min(n,m)) memory.
double DtwDistance(const Trajectory& a, const Trajectory& b, int band = -1);

// DtwDistance with a cooperative ExecContext check per DP row: a deadline
// or fleet cancellation aborts the O(n*m) recursion between rows with
// kDeadlineExceeded / kCancelled instead of running to completion. exec ==
// nullptr never fails and computes exactly DtwDistance.
[[nodiscard]] StatusOr<double> DtwDistanceBounded(const Trajectory& a,
                                                  const Trajectory& b,
                                                  int band,
                                                  const ExecContext* exec);

// Discrete Frechet distance. O(n*m).
double DiscreteFrechetDistance(const Trajectory& a, const Trajectory& b);

// DiscreteFrechetDistance with a cooperative ExecContext check per DP row
// (same contract as DtwDistanceBounded).
[[nodiscard]] StatusOr<double> DiscreteFrechetDistanceBounded(
    const Trajectory& a, const Trajectory& b, const ExecContext* exec);

// Edit distance on real sequences (EDR): edit cost with a match tolerance
// `epsilon_m`; insertions/deletions/substitutions cost 1. Normalised by
// max(|a|, |b|) so 0 = identical (within tolerance) and 1 = nothing
// matches.
double EdrDistance(const Trajectory& a, const Trajectory& b,
                   double epsilon_m);

// Longest common subsequence similarity with spatial tolerance `epsilon_m`
// and temporal tolerance `delta_ms`; returned as a fraction of
// min(|a|, |b|), so 1 = fully matching.
double LcssSimilarity(const Trajectory& a, const Trajectory& b,
                      double epsilon_m, Timestamp delta_ms);

// k-nearest-trajectory search under DTW with bounding-box pruning: a
// candidate whose MBR distance to the query's MBR already exceeds the
// current k-th best DTW is skipped without computing DTW (the MBR gap is
// a lower bound of any pointwise alignment cost).
class TrajectorySimilaritySearch {
 public:
  struct Options {
    int dtw_band = 32;
  };

  explicit TrajectorySimilaritySearch(Options options)
      : options_(options) {}
  TrajectorySimilaritySearch() : TrajectorySimilaritySearch(Options{}) {}

  // Indexes the collection (kept by reference; must outlive the search).
  void Build(const std::vector<Trajectory>* collection);

  struct SearchStats {
    size_t candidates = 0;
    size_t pruned = 0;
    size_t dtw_computed = 0;
  };

  // Indices of the k most similar trajectories by DTW, most similar first.
  [[nodiscard]] StatusOr<std::vector<size_t>> Knn(const Trajectory& queried, size_t k,
                                    SearchStats* stats = nullptr) const;

 private:
  Options options_;
  const std::vector<Trajectory>* collection_ = nullptr;
  std::vector<geometry::BBox> mbrs_;
  // Packed R-tree over the non-empty MBRs (item id = collection index);
  // BoxGapScan streams candidates gap-ascending so Knn can stop as soon as
  // the pruning bound closes instead of sorting every candidate. Empty
  // MBRs (point-free trajectories) cannot live in the tree -- their boxes
  // are inverted -- and trail the scan at infinite gap, in index order.
  kernels::PackedRTree tree_;
  std::vector<size_t> empty_mbrs_;
};

}  // namespace query
}  // namespace sidq

#pragma once

#include <vector>

#include "core/statusor.h"
#include "core/trajectory.h"
#include "core/types.h"
#include "geometry/bbox.h"

namespace sidq {
namespace query {

// Uncertainty caused by discrete sampling (Section 2.3.1): where was the
// object *between* its samples? Two classic models are provided.

// Space-time prism ("beads/necklace") model (Kuijpers et al.; Trajcevski
// et al.): between samples (t_i, p_i) and (t_{i+1}, p_{i+1}) with maximum
// speed vmax, the object's possible location at time t is the lens
//   |p - p_i| <= vmax (t - t_i)  AND  |p - p_{i+1}| <= vmax (t_{i+1} - t).
class BeadModel {
 public:
  BeadModel(const Trajectory* trajectory, double vmax_mps)
      : trajectory_(trajectory), vmax_(vmax_mps) {}

  // The bounding box of the possible-location lens at time t; empty box
  // when t is outside the trajectory span.
  geometry::BBox PossibleRegionBounds(Timestamp t) const;
  // True when `p` is a possible location at time t.
  bool PossiblyAt(const geometry::Point& p, Timestamp t) const;
  // True when the object may have been inside `box` at some time in
  // [t_begin, t_end] (checked at `steps` evenly spaced instants).
  bool PossiblyInside(const geometry::BBox& box, Timestamp t_begin,
                      Timestamp t_end, int steps = 16) const;
  // True when the object was certainly inside `box` during the whole
  // interval (every lens fits inside the box).
  bool DefinitelyInside(const geometry::BBox& box, Timestamp t_begin,
                        Timestamp t_end, int steps = 16) const;

 private:
  const Trajectory* trajectory_;
  double vmax_;
};

// First-order Markov grid model (Zhang et al., PVLDB 2009 family): space is
// discretised; between consecutive samples the location distribution
// diffuses step by step over the 8-neighbourhood, conditioned to end at the
// next sample (forward-backward product).
class MarkovGridModel {
 public:
  struct Options {
    double cell_m = 50.0;
    // Diffusion steps per sampling interval.
    int steps_per_interval = 4;
  };

  MarkovGridModel(const Trajectory* trajectory, Options options)
      : trajectory_(trajectory), options_(options) {}
  MarkovGridModel(const Trajectory* trajectory)
      : MarkovGridModel(trajectory, Options{}) {}

  // P(object inside box at time t); 0 outside the trajectory span.
  double ProbInBox(const geometry::BBox& box, Timestamp t) const;

 private:
  const Trajectory* trajectory_;
  Options options_;
};

// Range query over a set of uncertain trajectories under the bead model:
// returns ids that possibly / definitely intersect `box` during
// [t_begin, t_end].
struct UncertainRangeResult {
  std::vector<ObjectId> possible;
  std::vector<ObjectId> definite;
};

UncertainRangeResult UncertainTrajectoryRange(
    const std::vector<Trajectory>& trajectories, double vmax_mps,
    const geometry::BBox& box, Timestamp t_begin, Timestamp t_end);

// The alibi query (Kuijpers, Grimson & Othman, IJGIS 2011): given two
// sampled trajectories and a speed bound, could the objects have been
// within `meet_distance_m` of each other at some instant of
// [t_begin, t_end]? Returns false when the space-time prisms provably
// never come close -- the "alibi" is confirmed. The prism-to-prism
// distance at each probed instant is computed by alternating projection
// onto the two lens regions (each the intersection of two disks), which
// converges for these convex sets; `steps` instants are probed.
bool AlibiPossiblyMet(const Trajectory& a, const Trajectory& b,
                      double vmax_mps, Timestamp t_begin, Timestamp t_end,
                      double meet_distance_m, int steps = 32);

}  // namespace query
}  // namespace sidq

#include "query/uncertain_point.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/arena.h"
#include "kernels/packed_rtree.h"

namespace sidq {
namespace query {

UncertainPoint UncertainPoint::MakeGaussian(ObjectId id,
                                            const geometry::Point& mean,
                                            double sigma) {
  UncertainPoint p;
  p.id_ = id;
  p.gaussian_ = true;
  p.mean_ = mean;
  p.sigma_ = std::max(1e-9, sigma);
  return p;
}

StatusOr<UncertainPoint> UncertainPoint::MakeDiscrete(
    ObjectId id, std::vector<Sample> samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("discrete pdf needs >= 1 sample");
  }
  double total = 0.0;
  for (const Sample& s : samples) {
    if (s.prob < 0.0) {
      return Status::InvalidArgument("negative sample probability");
    }
    total += s.prob;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("zero total probability");
  }
  UncertainPoint p;
  p.id_ = id;
  p.gaussian_ = false;
  geometry::Point mean(0.0, 0.0);
  for (Sample& s : samples) {
    s.prob /= total;
    mean += s.p * s.prob;
  }
  p.mean_ = mean;
  p.samples_ = std::move(samples);
  return p;
}

namespace {

// P(lo <= X <= hi) for X ~ N(mu, sigma^2).
double GaussianIntervalProb(double mu, double sigma, double lo, double hi) {
  const double inv = 1.0 / (sigma * std::sqrt(2.0));
  return 0.5 * (std::erf((hi - mu) * inv) - std::erf((lo - mu) * inv));
}

}  // namespace

double UncertainPoint::ProbInBox(const geometry::BBox& box) const {
  if (box.Empty()) return 0.0;
  if (gaussian_) {
    return GaussianIntervalProb(mean_.x, sigma_, box.min_x, box.max_x) *
           GaussianIntervalProb(mean_.y, sigma_, box.min_y, box.max_y);
  }
  double p = 0.0;
  for (const Sample& s : samples_) {
    if (box.Contains(s.p)) p += s.prob;
  }
  return p;
}

double UncertainPoint::ExpectedDistance(const geometry::Point& q) const {
  if (!gaussian_) {
    double acc = 0.0;
    for (const Sample& s : samples_) {
      acc += s.prob * geometry::Distance(s.p, q);
    }
    return acc;
  }
  // Distance to an isotropic Gaussian is Rice-distributed with
  // nu = |q - mean| and sigma. Mean (exact):
  //   sigma * sqrt(pi/2) * e^{-x/2} [(1+x) I0(x/2) + x I1(x/2)],
  // with x = nu^2 / (2 sigma^2). Far from the mean the Bessel terms
  // overflow, so switch to the asymptotic nu + sigma^2/(2 nu).
  const double nu = geometry::Distance(mean_, q);
  if (nu > 6.0 * sigma_) {
    return nu + sigma_ * sigma_ / (2.0 * nu);
  }
  const double x = nu * nu / (2.0 * sigma_ * sigma_);
  const double half = x / 2.0;
  const double i0 = std::cyl_bessel_i(0.0, half);
  const double i1 = std::cyl_bessel_i(1.0, half);
  return sigma_ * std::sqrt(M_PI / 2.0) * std::exp(-half) *
         ((1.0 + x) * i0 + x * i1);
}

geometry::BBox UncertainPoint::BoundingRegion(double k) const {
  if (gaussian_) {
    const double r = k * sigma_;
    return geometry::BBox(mean_.x - r, mean_.y - r, mean_.x + r,
                          mean_.y + r);
  }
  geometry::BBox box;
  for (const Sample& s : samples_) box.Extend(s.p);
  return box;
}

std::vector<ObjectId> ProbabilisticRangeQuery(
    const std::vector<UncertainPoint>& objects, const geometry::BBox& box,
    double tau, PruningStats* stats) {
  std::vector<ObjectId> out;
  PruningStats local;
  local.total_objects = objects.size();
  for (const UncertainPoint& obj : objects) {
    const geometry::BBox region = obj.BoundingRegion();
    if (!region.Intersects(box)) {
      ++local.pruned_out;  // probability ~ 0 (< 1e-5): cannot reach tau
      continue;
    }
    if (box.Contains(region) && tau <= 1.0 - 1e-5) {
      ++local.accepted_cheap;  // probability ~ 1
      out.push_back(obj.id());
      continue;
    }
    ++local.evaluated_exact;
    if (obj.ProbInBox(box) >= tau) out.push_back(obj.id());
  }
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<std::vector<ObjectId>> ProbabilisticRangeQueryMany(
    const std::vector<UncertainPoint>& objects,
    const std::vector<geometry::BBox>& boxes, double tau,
    std::vector<PruningStats>* stats) {
  std::vector<std::vector<ObjectId>> out(boxes.size());
  if (stats != nullptr) stats->assign(boxes.size(), PruningStats{});
  if (boxes.empty()) return out;
  // Bulk-load the bounding regions once, keyed by object index. An empty
  // region (unreachable through the factories, but guarded: BulkLoad
  // rejects inverted boxes) can intersect nothing, so leaving it out of
  // the tree classifies it pruned_out exactly like the linear scan.
  std::vector<geometry::BBox> regions(objects.size());
  std::vector<kernels::PackedRTree::Item> items;
  items.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    regions[i] = objects[i].BoundingRegion();
    if (!regions[i].Empty()) items.push_back({i, regions[i]});
  }
  kernels::PackedRTree tree;
  tree.BulkLoad(std::move(items));
  // One shared walk answers every box; BBox::Intersects is symmetric, so
  // the tree's region-vs-box test prunes exactly the objects the solo
  // scan's region.Intersects(box) would.
  const kernels::PackedRTree::BatchResults candidates =
      tree.RangeQueryMany(boxes);
  for (size_t q = 0; q < boxes.size(); ++q) {
    PruningStats local;
    local.total_objects = objects.size();
    const size_t cand_count = candidates.count_of(q);
    local.pruned_out = objects.size() - cand_count;
    // The solo scan emits ids in object order; sort the tree's DFS-order
    // candidates back to index order so the output is bit-identical.
    ArenaScope scope(ScratchArena());
    uint64_t* cand = scope.AllocArray<uint64_t>(cand_count);
    if (cand_count > 0) {
      std::memcpy(cand, candidates.begin_of(q),
                  cand_count * sizeof(uint64_t));
    }
    std::sort(cand, cand + cand_count);
    for (size_t c = 0; c < cand_count; ++c) {
      const size_t i = static_cast<size_t>(cand[c]);
      const UncertainPoint& obj = objects[i];
      if (boxes[q].Contains(regions[i]) && tau <= 1.0 - 1e-5) {
        ++local.accepted_cheap;  // probability ~ 1
        out[q].push_back(obj.id());
        continue;
      }
      ++local.evaluated_exact;
      if (obj.ProbInBox(boxes[q]) >= tau) out[q].push_back(obj.id());
    }
    if (stats != nullptr) (*stats)[q] = local;
  }
  return out;
}

std::vector<ObjectId> ExpectedDistanceKnn(
    const std::vector<UncertainPoint>& objects, const geometry::Point& q,
    size_t k, PruningStats* stats) {
  PruningStats local;
  local.total_objects = objects.size();
  if (k == 0 || objects.empty()) {
    if (stats != nullptr) *stats = local;
    return {};
  }
  // Process in increasing lower-bound order so pruning kicks in early.
  std::vector<std::pair<double, size_t>> order;
  order.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    order.emplace_back(objects[i].BoundingRegion().MinDistance(q), i);
  }
  std::sort(order.begin(), order.end());
  // Max-heap of the best k (expected distance, id).
  std::vector<std::pair<double, ObjectId>> best;
  for (const auto& [lower_bound, i] : order) {
    if (best.size() == k && lower_bound >= best.front().first) {
      ++local.pruned_out;
      continue;  // every later object has an even larger lower bound
    }
    ++local.evaluated_exact;
    const double ed = objects[i].ExpectedDistance(q);
    if (best.size() < k) {
      best.emplace_back(ed, objects[i].id());
      std::push_heap(best.begin(), best.end());
    } else if (ed < best.front().first) {
      std::pop_heap(best.begin(), best.end());
      best.back() = {ed, objects[i].id()};
      std::push_heap(best.begin(), best.end());
    }
  }
  std::sort_heap(best.begin(), best.end());
  std::vector<ObjectId> out;
  out.reserve(best.size());
  for (const auto& [ed, id] : best) out.push_back(id);
  if (stats != nullptr) *stats = local;
  return out;
}

RangeCountDistribution RangeCount(const std::vector<UncertainPoint>& objects,
                                  const geometry::BBox& box) {
  RangeCountDistribution out;
  // Inclusion probabilities, with bounding-region shortcuts.
  std::vector<double> probs;
  for (const UncertainPoint& obj : objects) {
    const geometry::BBox region = obj.BoundingRegion();
    if (!region.Intersects(box)) continue;  // p ~ 0
    double p;
    if (box.Contains(region)) {
      p = 1.0;
    } else {
      p = obj.ProbInBox(box);
    }
    if (p <= 1e-12) continue;
    probs.push_back(std::min(1.0, p));
    out.expected += p;
    out.variance += p * (1.0 - p);
  }
  // Poisson-binomial DP: pmf[c] after processing each object.
  std::vector<double> pmf(probs.size() + 1, 0.0);
  pmf[0] = 1.0;
  size_t upper = 0;
  for (const double p : probs) {
    ++upper;
    for (size_t c = upper; c-- > 0;) {
      pmf[c + 1] += pmf[c] * p;
      pmf[c] *= (1.0 - p);
    }
  }
  out.tail.assign(pmf.size(), 0.0);
  double acc = 0.0;
  for (size_t c = pmf.size(); c-- > 0;) {
    acc += pmf[c];
    out.tail[c] = std::min(1.0, acc);
  }
  return out;
}

std::vector<std::pair<ObjectId, double>> ProbabilisticNearestNeighbor(
    const std::vector<UncertainPoint>& objects, const geometry::Point& q,
    int samples, Rng* rng) {
  std::vector<std::pair<ObjectId, double>> out;
  if (objects.empty() || samples <= 0) return out;
  std::vector<size_t> wins(objects.size(), 0);
  // One location draw per object per round; the round's winner is the NN.
  auto draw = [&](const UncertainPoint& obj) {
    if (obj.is_gaussian()) {
      return geometry::Point(obj.mean().x + rng->Gaussian(0, obj.sigma()),
                             obj.mean().y + rng->Gaussian(0, obj.sigma()));
    }
    std::vector<double> weights;
    weights.reserve(obj.samples().size());
    for (const auto& s : obj.samples()) weights.push_back(s.prob);
    return obj.samples()[rng->Categorical(weights)].p;
  };
  for (int round = 0; round < samples; ++round) {
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < objects.size(); ++i) {
      const double d = geometry::DistanceSq(draw(objects[i]), q);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    ++wins[best];
  }
  for (size_t i = 0; i < objects.size(); ++i) {
    if (wins[i] == 0) continue;
    out.emplace_back(objects[i].id(),
                     static_cast<double>(wins[i]) / samples);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

}  // namespace query
}  // namespace sidq

#include "core/quality.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "core/logging.h"

namespace sidq {

const char* DqDimensionName(DqDimension d) {
  switch (d) {
    case DqDimension::kPrecision:
      return "precision";
    case DqDimension::kAccuracy:
      return "accuracy";
    case DqDimension::kConsistency:
      return "consistency";
    case DqDimension::kTimeSparsity:
      return "time_sparsity";
    case DqDimension::kSpaceCoverage:
      return "space_coverage";
    case DqDimension::kCompleteness:
      return "completeness";
    case DqDimension::kRedundancy:
      return "redundancy";
    case DqDimension::kLatency:
      return "latency";
    case DqDimension::kStaleness:
      return "staleness";
    case DqDimension::kDataVolume:
      return "data_volume";
    case DqDimension::kTruthVolume:
      return "truth_volume";
    case DqDimension::kResolution:
      return "resolution";
    case DqDimension::kInterpretability:
      return "interpretability";
  }
  return "unknown";
}

const char* ExecQualityName(ExecQuality q) {
  switch (q) {
    case ExecQuality::kFull:
      return "full";
    case ExecQuality::kDegraded:
      return "degraded";
    case ExecQuality::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

bool MetricLargerIsWorse(DqDimension d) {
  switch (d) {
    // Metrics reported as error / gap / violation / count: larger is worse.
    case DqDimension::kPrecision:      // scatter (m)
    case DqDimension::kAccuracy:       // error vs truth (m or units)
    case DqDimension::kConsistency:    // violation fraction
    case DqDimension::kTimeSparsity:   // mean interval (s)
    case DqDimension::kRedundancy:     // duplicate fraction
    case DqDimension::kLatency:        // delay (s)
    case DqDimension::kStaleness:      // age (s)
    case DqDimension::kDataVolume:     // record count
    case DqDimension::kResolution:     // quantization step (m or units)
      return true;
    // Metrics reported as fractions of "good": larger is better.
    case DqDimension::kSpaceCoverage:
    case DqDimension::kCompleteness:
    case DqDimension::kTruthVolume:
    case DqDimension::kInterpretability:
      return false;
  }
  return true;
}

double DqReport::Get(DqDimension d) const {
  const auto it = metrics_.find(d);
  SIDQ_CHECK(it != metrics_.end())
      << "dimension not profiled: " << DqDimensionName(d);
  return it->second;
}

std::string DqReport::ToString() const {
  std::ostringstream os;
  for (const auto& [dim, value] : metrics_) {
    os << DqDimensionName(dim) << "=" << value << " ";
  }
  return os.str();
}

std::vector<DqIssue> DiagnoseChanges(const DqReport& clean,
                                     const DqReport& dirty,
                                     double rel_threshold,
                                     double abs_threshold) {
  std::vector<DqIssue> issues;
  for (const auto& [dim, clean_value] : clean.metrics()) {
    if (!dirty.Has(dim)) continue;
    const double dirty_value = dirty.Get(dim);
    const double delta = dirty_value - clean_value;
    const double denom =
        std::max({std::abs(clean_value), std::abs(dirty_value),
                  abs_threshold});
    if (std::abs(delta) <= abs_threshold) continue;
    if (std::abs(delta) / denom <= rel_threshold) continue;
    DqIssue issue;
    issue.dimension = dim;
    issue.degraded = (delta > 0.0) == MetricLargerIsWorse(dim);
    issue.clean_value = clean_value;
    issue.dirty_value = dirty_value;
    issues.push_back(issue);
  }
  return issues;
}

namespace {

// Integer grid cell key for coverage computations.
std::pair<int64_t, int64_t> CellOf(const geometry::Point& p, double cell) {
  return {static_cast<int64_t>(std::floor(p.x / cell)),
          static_cast<int64_t>(std::floor(p.y / cell))};
}

// Median of the positive gaps between adjacent sorted distinct values;
// estimates the quantization step of a coordinate/value stream. Returns 0
// for fewer than 2 distinct values.
double QuantizationStep(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (values.size() < 2) return 0.0;
  std::vector<double> gaps;
  gaps.reserve(values.size() - 1);
  for (size_t i = 1; i < values.size(); ++i) {
    gaps.push_back(values[i] - values[i - 1]);
  }
  std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
  return gaps[gaps.size() / 2];
}

double MedianOf(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  return v[v.size() / 2];
}

}  // namespace

DqReport TrajectoryProfiler::Profile(
    const std::vector<Trajectory>& observed,
    const std::vector<Trajectory>* truth,
    const std::vector<std::vector<Timestamp>>* arrival_times) const {
  DqReport report;
  size_t total_points = 0;
  double volatility_sum = 0.0;
  size_t volatility_n = 0;
  size_t speed_pairs = 0, speed_violations = 0;
  double interval_sum = 0.0;
  size_t interval_n = 0;
  size_t duplicate_n = 0;
  Timestamp max_t = kMinTimestamp;
  std::set<std::pair<int64_t, int64_t>> observed_cells;
  std::vector<double> xs, ys;
  std::vector<double> median_speeds;

  for (const Trajectory& tr : observed) {
    total_points += tr.size();
    std::vector<double> speeds;
    for (size_t i = 0; i < tr.size(); ++i) {
      const TrajectoryPoint& pt = tr[i];
      max_t = std::max(max_t, pt.t);
      observed_cells.insert(CellOf(pt.p, options_.coverage_cell_m));
      xs.push_back(pt.p.x);
      ys.push_back(pt.p.y);
      if (i >= 1) {
        const Timestamp dt = pt.t - tr[i - 1].t;
        interval_sum += TimestampToSeconds(dt);
        ++interval_n;
        const double d = geometry::Distance(pt.p, tr[i - 1].p);
        if (dt <= options_.duplicate_window_ms &&
            d <= options_.duplicate_radius_m) {
          ++duplicate_n;
        }
        if (dt > 0) {
          const double v = d / TimestampToSeconds(dt);
          speeds.push_back(v);
          ++speed_pairs;
          if (v > options_.max_speed_mps) ++speed_violations;
        }
      }
      if (i >= 1 && i + 1 < tr.size()) {
        const geometry::Point mid =
            geometry::Lerp(tr[i - 1].p, tr[i + 1].p, 0.5);
        volatility_sum += geometry::Distance(pt.p, mid);
        ++volatility_n;
      }
    }
    if (!speeds.empty()) median_speeds.push_back(MedianOf(speeds));
  }

  report.Set(DqDimension::kDataVolume, static_cast<double>(total_points));
  if (volatility_n > 0) {
    report.Set(DqDimension::kPrecision,
               volatility_sum / static_cast<double>(volatility_n));
  }
  if (speed_pairs > 0) {
    report.Set(DqDimension::kConsistency,
               static_cast<double>(speed_violations) /
                   static_cast<double>(speed_pairs));
  }
  if (interval_n > 0) {
    report.Set(DqDimension::kTimeSparsity,
               interval_sum / static_cast<double>(interval_n));
  }
  if (total_points > 1) {
    report.Set(DqDimension::kRedundancy,
               static_cast<double>(duplicate_n) /
                   static_cast<double>(total_points));
  }
  if (!xs.empty()) {
    report.Set(DqDimension::kResolution,
               (QuantizationStep(xs) + QuantizationStep(ys)) / 2.0);
  }

  // Staleness: mean age of each trajectory's newest sample relative to `now`.
  Timestamp now = options_.now == kMinTimestamp ? max_t : options_.now;
  double staleness_sum = 0.0;
  size_t staleness_n = 0;
  for (const Trajectory& tr : observed) {
    if (tr.empty()) continue;
    staleness_sum += TimestampToSeconds(now - tr.back().t);
    ++staleness_n;
  }
  if (staleness_n > 0) {
    report.Set(DqDimension::kStaleness,
               staleness_sum / static_cast<double>(staleness_n));
  }

  // Interpretability: fraction of trajectories whose speed statistics agree
  // with the corpus (detects unit/format heterogeneity across sources).
  if (median_speeds.size() > 1) {
    const double global_median = MedianOf(median_speeds);
    size_t coherent = 0;
    for (double v : median_speeds) {
      if (global_median <= 0.0 ||
          (v >= 0.5 * global_median && v <= 2.0 * global_median)) {
        ++coherent;
      }
    }
    report.Set(DqDimension::kInterpretability,
               static_cast<double>(coherent) /
                   static_cast<double>(median_speeds.size()));
  }

  // Latency: mean (arrival - event) delay.
  if (arrival_times != nullptr) {
    double delay_sum = 0.0;
    size_t delay_n = 0;
    for (size_t k = 0; k < observed.size() && k < arrival_times->size(); ++k) {
      const Trajectory& tr = observed[k];
      const std::vector<Timestamp>& arr = (*arrival_times)[k];
      for (size_t i = 0; i < tr.size() && i < arr.size(); ++i) {
        delay_sum += TimestampToSeconds(arr[i] - tr[i].t);
        ++delay_n;
      }
    }
    if (delay_n > 0) {
      report.Set(DqDimension::kLatency,
                 delay_sum / static_cast<double>(delay_n));
    }
  }

  if (truth != nullptr) {
    // Accuracy: mean distance to the time-aligned true position.
    double err_sum = 0.0;
    size_t err_n = 0;
    size_t with_truth = 0;
    std::set<std::pair<int64_t, int64_t>> truth_cells;
    double expected_points = 0.0;
    for (size_t k = 0; k < observed.size(); ++k) {
      const Trajectory& obs = observed[k];
      const Trajectory* tt =
          k < truth->size() && !(*truth)[k].empty() ? &(*truth)[k] : nullptr;
      if (tt == nullptr) continue;
      ++with_truth;
      expected_points +=
          1.0 + static_cast<double>(tt->Duration()) /
                    static_cast<double>(options_.expected_interval_ms);
      for (const TrajectoryPoint& pt : tt->points()) {
        truth_cells.insert(CellOf(pt.p, options_.coverage_cell_m));
      }
      for (const TrajectoryPoint& pt : obs.points()) {
        auto true_p = tt->InterpolateAt(
            std::clamp(pt.t, tt->front().t, tt->back().t));
        if (true_p.ok()) {
          err_sum += geometry::Distance(pt.p, true_p.value());
          ++err_n;
        }
      }
    }
    if (err_n > 0) {
      report.Set(DqDimension::kAccuracy,
                 err_sum / static_cast<double>(err_n));
    }
    if (!observed.empty()) {
      report.Set(DqDimension::kTruthVolume,
                 static_cast<double>(with_truth) /
                     static_cast<double>(observed.size()));
    }
    if (!truth_cells.empty()) {
      size_t covered = 0;
      for (const auto& c : truth_cells) {
        if (observed_cells.count(c) > 0) ++covered;
      }
      report.Set(DqDimension::kSpaceCoverage,
                 static_cast<double>(covered) /
                     static_cast<double>(truth_cells.size()));
    }
    if (expected_points > 0.0) {
      report.Set(DqDimension::kCompleteness,
                 std::min(1.0, static_cast<double>(total_points) /
                                   expected_points));
    }
  }

  return report;
}

DqReport StidProfiler::Profile(const StDataset& observed,
                               const StDataset* truth) const {
  DqReport report;
  size_t total_records = 0;
  double volatility_sum = 0.0;
  size_t volatility_n = 0;
  size_t rate_pairs = 0, rate_violations = 0;
  double interval_sum = 0.0;
  size_t interval_n = 0;
  size_t duplicate_n = 0;
  Timestamp max_t = kMinTimestamp;
  std::vector<double> all_values;
  std::vector<double> series_ranges;

  for (const StSeries& s : observed.series()) {
    total_records += s.size();
    double lo = 0.0, hi = 0.0;
    for (size_t i = 0; i < s.size(); ++i) {
      const StRecord& r = s[i];
      max_t = std::max(max_t, r.t);
      all_values.push_back(r.value);
      if (i == 0) {
        lo = hi = r.value;
      } else {
        lo = std::min(lo, r.value);
        hi = std::max(hi, r.value);
        const Timestamp dt = r.t - s[i - 1].t;
        interval_sum += TimestampToSeconds(dt);
        ++interval_n;
        if (dt <= 0) ++duplicate_n;
        if (dt > 0) {
          ++rate_pairs;
          const double rate =
              std::abs(r.value - s[i - 1].value) / TimestampToSeconds(dt);
          if (rate > options_.max_rate_per_s) ++rate_violations;
        }
      }
      if (i >= 1 && i + 1 < s.size()) {
        const double mid = (s[i - 1].value + s[i + 1].value) / 2.0;
        volatility_sum += std::abs(r.value - mid);
        ++volatility_n;
      }
    }
    if (s.size() > 1) series_ranges.push_back(hi - lo);
  }

  report.Set(DqDimension::kDataVolume, static_cast<double>(total_records));
  if (volatility_n > 0) {
    report.Set(DqDimension::kPrecision,
               volatility_sum / static_cast<double>(volatility_n));
  }
  if (rate_pairs > 0) {
    report.Set(DqDimension::kConsistency,
               static_cast<double>(rate_violations) /
                   static_cast<double>(rate_pairs));
  }
  if (interval_n > 0) {
    report.Set(DqDimension::kTimeSparsity,
               interval_sum / static_cast<double>(interval_n));
  }
  if (total_records > 1) {
    report.Set(DqDimension::kRedundancy,
               static_cast<double>(duplicate_n) /
                   static_cast<double>(total_records));
  }
  if (!all_values.empty()) {
    report.Set(DqDimension::kResolution, QuantizationStep(all_values));
  }

  // Space coverage: fraction of the dataset's bounding-box cells that hold a
  // sensor (against the truth deployment's box when given).
  {
    const StDataset& region_src = truth != nullptr ? *truth : observed;
    geometry::BBox box = region_src.SpatialBounds();
    if (!box.Empty() && box.Area() > 0.0) {
      const double cell = options_.coverage_cell_m;
      std::set<std::pair<int64_t, int64_t>> cells;
      for (const StSeries& s : observed.series()) {
        if (!s.empty()) cells.insert(CellOf(s.loc(), cell));
      }
      const double nx = std::max(1.0, std::ceil(box.Width() / cell));
      const double ny = std::max(1.0, std::ceil(box.Height() / cell));
      report.Set(DqDimension::kSpaceCoverage,
                 static_cast<double>(cells.size()) / (nx * ny));
    }
  }

  // Staleness.
  Timestamp now = options_.now == kMinTimestamp ? max_t : options_.now;
  double staleness_sum = 0.0;
  size_t staleness_n = 0;
  for (const StSeries& s : observed.series()) {
    if (s.empty()) continue;
    staleness_sum += TimestampToSeconds(now - s.records().back().t);
    ++staleness_n;
  }
  if (staleness_n > 0) {
    report.Set(DqDimension::kStaleness,
               staleness_sum / static_cast<double>(staleness_n));
  }

  // Interpretability: agreement of per-series value ranges (detects unit
  // heterogeneity across sensor vendors).
  if (series_ranges.size() > 1) {
    const double global_median = MedianOf(series_ranges);
    size_t coherent = 0;
    for (double r : series_ranges) {
      if (global_median <= 0.0 ||
          (r >= 0.5 * global_median && r <= 2.0 * global_median)) {
        ++coherent;
      }
    }
    report.Set(DqDimension::kInterpretability,
               static_cast<double>(coherent) /
                   static_cast<double>(series_ranges.size()));
  }

  if (truth != nullptr) {
    double err_sq = 0.0;
    size_t err_n = 0;
    size_t with_truth = 0;
    double expected_records = 0.0;
    for (const StSeries& s : observed.series()) {
      auto ts = truth->FindSeries(s.sensor());
      if (!ts.ok() || (*ts)->empty()) continue;
      ++with_truth;
      const StSeries& t_series = **ts;
      expected_records +=
          1.0 +
          static_cast<double>(t_series.records().back().t -
                              t_series.records().front().t) /
              static_cast<double>(options_.expected_interval_ms);
      for (const StRecord& r : s.records()) {
        auto tv = t_series.InterpolateAt(std::clamp(
            r.t, t_series.records().front().t, t_series.records().back().t));
        if (tv.ok()) {
          const double e = r.value - tv.value();
          err_sq += e * e;
          ++err_n;
        }
      }
    }
    if (err_n > 0) {
      report.Set(DqDimension::kAccuracy,
                 std::sqrt(err_sq / static_cast<double>(err_n)));
    }
    if (observed.num_sensors() > 0) {
      report.Set(DqDimension::kTruthVolume,
                 static_cast<double>(with_truth) /
                     static_cast<double>(observed.num_sensors()));
    }
    if (expected_records > 0.0) {
      report.Set(DqDimension::kCompleteness,
                 std::min(1.0, static_cast<double>(total_records) /
                                   expected_records));
    }
  }

  return report;
}

}  // namespace sidq

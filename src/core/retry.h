#pragma once

#include <cstdint>

#include "core/random.h"
#include "core/status.h"

namespace sidq {

// True for error codes worth retrying: the operation may succeed on a
// second attempt because the failure was environmental (an overloaded
// gateway, an injected chaos fault), not a property of the data.
// kDeadlineExceeded is deliberately NOT transient -- the time budget is
// gone, so the right reaction is degradation, not another full-price
// attempt.
[[nodiscard]] inline bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

// Deterministic exponential backoff with jitter. The jitter is drawn from
// an Rng substream keyed per object (DeriveSeed(base_seed ^ salt,
// object_id)), so a retried N-worker fleet run backs off -- and therefore
// produces output -- bit-identically to the serial run.
struct RetryPolicy {
  // Additional attempts after the first; 0 disables retrying.
  int max_retries = 0;
  int64_t initial_backoff_ms = 10;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_ms = 2000;
  // Backoff is scaled by Uniform(1 - jitter, 1 + jitter).
  double jitter = 0.2;

  // Whether a failure with `status` on 0-based attempt `attempt` should be
  // retried: transient code and retries remaining.
  [[nodiscard]] bool ShouldRetry(const Status& status, int attempt) const {
    return attempt < max_retries && IsTransient(status.code());
  }

  // Backoff before retry number `attempt + 1` (attempt is 0-based). Draws
  // exactly one uniform from `rng` when jitter > 0.
  [[nodiscard]] int64_t BackoffMs(int attempt, Rng& rng) const {
    double backoff = static_cast<double>(initial_backoff_ms);
    for (int i = 0; i < attempt; ++i) backoff *= backoff_multiplier;
    if (backoff > static_cast<double>(max_backoff_ms)) {
      backoff = static_cast<double>(max_backoff_ms);
    }
    if (jitter > 0.0) {
      backoff *= rng.Uniform(1.0 - jitter, 1.0 + jitter);
    }
    return backoff < 0.0 ? 0 : static_cast<int64_t>(backoff);
  }
};

// Substream salt separating retry-jitter draws from the cleaning stages'
// randomness: a retry must never perturb what the pipeline computes.
inline constexpr uint64_t kRetryStreamSalt = 0x52455452595F5253ull;  // "RETRY_RS"

}  // namespace sidq

#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "core/thread_annotations.h"

namespace sidq {

// Annotated synchronization wrappers -- the only place in the tree allowed
// to name the raw std primitives (sidq-lint rule R10). Everything else
// takes locks through these types so that Clang Thread Safety Analysis can
// check, at compile time, that every SIDQ_GUARDED_BY field is touched only
// under its lock (DESIGN.md "Concurrency & locking discipline").
//
// The wrappers are zero-cost veneers: Mutex is exactly std::mutex,
// MutexLock is exactly std::lock_guard, and on non-Clang compilers the
// annotations vanish entirely -- locking behavior, layout, and codegen are
// unchanged, which keeps the determinism contract's byte-identical outputs
// byte-identical.

// Exclusive capability over std::mutex.
class SIDQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SIDQ_ACQUIRE() { mu_.lock(); }
  void Unlock() SIDQ_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() SIDQ_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Reader/writer capability over std::shared_mutex. Exclusive (writer)
// acquisition uses Lock/Unlock; shared (reader) acquisition uses
// LockShared/UnlockShared. A SIDQ_GUARDED_BY field may be *read* under
// either mode but *written* only under exclusive -- the analysis enforces
// the distinction.
class SIDQ_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SIDQ_ACQUIRE() { mu_.lock(); }
  void Unlock() SIDQ_RELEASE() { mu_.unlock(); }
  void LockShared() SIDQ_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SIDQ_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Scoped exclusive lock (the std::lock_guard idiom). Non-movable: a lock's
// lifetime IS its critical section, and the analysis leans on that.
class SIDQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SIDQ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SIDQ_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Scoped exclusive (writer) lock on a SharedMutex.
class SIDQ_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SIDQ_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() SIDQ_RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Scoped shared (reader) lock on a SharedMutex.
class SIDQ_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SIDQ_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() SIDQ_RELEASE() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to sidq::Mutex. Wait() is deliberately
// predicate-free: callers loop `while (!cond) cv_.Wait(mu_);` in the
// function that holds the capability, which keeps the guarded reads of the
// condition inside an analyzed scope (predicate lambdas are opaque to the
// analysis and would need escape hatches).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  // Atomically releases `mu`, blocks until notified, reacquires `mu`.
  // Spurious wakeups happen; always wait in a condition loop.
  void Wait(Mutex& mu) SIDQ_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait protocol, then
    // release the unique_lock's ownership claim so the caller's scoped
    // lock remains the one true owner.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace sidq

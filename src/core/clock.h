#pragma once

#include <atomic>
#include <cstdint>

namespace sidq {

// Time source abstraction behind every deadline and backoff decision, so
// resilience logic is testable without real waiting. Production code uses
// exec::SteadyClock (defined in src/exec/, the only directory allowed to
// touch wall time -- sidq-lint rule R8); tests and deterministic fleet runs
// use VirtualClock, where "sleeping" is an instant atomic add.
//
// Methods are const so a shared clock can be read through const contexts;
// implementations keep their state in atomics.
class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic milliseconds since an arbitrary epoch.
  virtual int64_t NowMs() const = 0;
  // Blocks (or, for virtual clocks, instantly advances) for `ms`.
  virtual void SleepMs(int64_t ms) const = 0;
};

// Manually-advanced clock: Now starts at 0 and moves only via Advance() or
// SleepMs(). Thread-safe; time never goes backwards. A fleet run in virtual
// time gives every trajectory its own VirtualClock, so one object's injected
// stall can never push a *different* object over its deadline -- the
// property the chaos determinism tests rely on.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(int64_t start_ms = 0) : now_ms_(start_ms) {}

  int64_t NowMs() const override {
    return now_ms_.load(std::memory_order_acquire);
  }
  void SleepMs(int64_t ms) const override { Advance(ms); }
  void Advance(int64_t ms) const {
    if (ms > 0) now_ms_.fetch_add(ms, std::memory_order_acq_rel);
  }

 private:
  mutable std::atomic<int64_t> now_ms_;
};

}  // namespace sidq

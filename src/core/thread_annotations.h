#pragma once

// Clang Thread Safety Analysis attributes (-Wthread-safety), wrapped so the
// codebase can state its locking contracts in the type system:
//
//   class SIDQ_CAPABILITY("mutex") Mutex { ... };
//   Mutex mu_;
//   size_t queued_ SIDQ_GUARDED_BY(mu_) = 0;
//   void Drain() SIDQ_REQUIRES(mu_);
//
// Under Clang the annotations make lock discipline a *compile-time* check:
// touching `queued_` without holding `mu_`, or calling `Drain()` unlocked,
// is a -Wthread-safety warning (an error under the -Werror presets and the
// CI `thread-safety` job). Under GCC and every other compiler the macros
// expand to nothing, so annotations are zero runtime and zero portability
// cost -- which is why they may (and must) stay on in release builds: the
// determinism contract (DESIGN.md "Concurrency & locking discipline") is
// enforced without perturbing the golden-tested byte output.
//
// The macro set mirrors the upstream attribute names
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); only the
// capability wrappers in core/mutex.h should need the ACQUIRE/RELEASE
// family -- annotated application code speaks GUARDED_BY / REQUIRES /
// EXCLUDES.

#if defined(__clang__) && defined(__has_attribute)
#define SIDQ_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SIDQ_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

// --- Declaring capabilities -----------------------------------------------

// Marks a class as a capability (lock) type; `x` names the capability kind
// in diagnostics, conventionally "mutex".
#define SIDQ_CAPABILITY(x) SIDQ_THREAD_ANNOTATION__(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (MutexLock and friends).
#define SIDQ_SCOPED_CAPABILITY SIDQ_THREAD_ANNOTATION__(scoped_lockable)

// --- Declaring guarded data -----------------------------------------------

// Data member readable only while holding `x` (shared suffices) and
// writable only while holding `x` exclusively.
#define SIDQ_GUARDED_BY(x) SIDQ_THREAD_ANNOTATION__(guarded_by(x))

// Pointer member whose *pointee* is guarded by `x` (the pointer itself is
// not).
#define SIDQ_PT_GUARDED_BY(x) SIDQ_THREAD_ANNOTATION__(pt_guarded_by(x))

// Lock-ordering declarations: this capability must be acquired before /
// after the named ones (deadlock-ordering checks are opt-in via
// -Wthread-safety-beta, but the declarations double as documentation).
#define SIDQ_ACQUIRED_BEFORE(...) \
  SIDQ_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define SIDQ_ACQUIRED_AFTER(...) \
  SIDQ_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

// --- Annotating functions --------------------------------------------------

// Caller must hold the capability exclusively / shared on entry (and still
// holds it on exit).
#define SIDQ_REQUIRES(...) \
  SIDQ_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define SIDQ_REQUIRES_SHARED(...) \
  SIDQ_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability (must not already hold it).
#define SIDQ_ACQUIRE(...) \
  SIDQ_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define SIDQ_ACQUIRE_SHARED(...) \
  SIDQ_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

// Function releases the capability (must hold it on entry). The bare
// RELEASE form also serves scoped-capability destructors, where it means
// "release whatever this scope acquired" (exclusive or shared).
#define SIDQ_RELEASE(...) \
  SIDQ_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define SIDQ_RELEASE_SHARED(...) \
  SIDQ_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

// Function attempts the acquisition; holds the capability iff the return
// value equals `b` (first argument).
#define SIDQ_TRY_ACQUIRE(...) \
  SIDQ_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define SIDQ_TRY_ACQUIRE_SHARED(...) \
  SIDQ_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (the function acquires it itself;
// guards against self-deadlock on non-reentrant locks).
#define SIDQ_EXCLUDES(...) SIDQ_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// Function returns a reference to the capability guarding its result.
#define SIDQ_RETURN_CAPABILITY(x) SIDQ_THREAD_ANNOTATION__(lock_returned(x))

// Escape hatch: body is exempt from analysis. Every use must carry a
// written justification on the same line or the line above.
#define SIDQ_NO_THREAD_SAFETY_ANALYSIS \
  SIDQ_THREAD_ANNOTATION__(no_thread_safety_analysis)

#pragma once

#include <cstdint>
#include <limits>

namespace sidq {

// Milliseconds since an arbitrary epoch. All sidq timestamps share one epoch
// within a dataset; simulators start at 0.
using Timestamp = int64_t;

inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

// Identifier of a moving object (vehicle, person, tag, ...).
using ObjectId = uint64_t;
// Identifier of a stationary IoT device (sensor, RFID reader, WiFi AP, ...).
using SensorId = uint64_t;
// Identifier of a road-network node/edge, grid cell, or symbolic region.
using NodeId = uint32_t;
using EdgeId = uint32_t;
using RegionId = uint32_t;

inline constexpr ObjectId kInvalidObjectId =
    std::numeric_limits<ObjectId>::max();
inline constexpr SensorId kInvalidSensorId =
    std::numeric_limits<SensorId>::max();
inline constexpr NodeId kInvalidNodeId = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdgeId = std::numeric_limits<EdgeId>::max();

// Converts between seconds (double) and Timestamp milliseconds.
inline constexpr Timestamp SecondsToTimestamp(double seconds) {
  return static_cast<Timestamp>(seconds * 1000.0);
}
inline constexpr double TimestampToSeconds(Timestamp t) {
  return static_cast<double>(t) / 1000.0;
}

}  // namespace sidq

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace sidq {
namespace internal_logging {

// Accumulates a fatal message and aborts the process when destroyed.
// Used only via the SIDQ_CHECK family below.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " Check failed: " << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Turns a streamed expression into void so both branches of the SIDQ_CHECK
// ternary have type void. operator& binds looser than operator<<.
struct Voidify {
  void operator&(std::ostream&) {}
};

// Accumulates a non-fatal message and flushes it to stderr when destroyed.
// Used only via SIDQ_WARN below.
class WarnLogMessage {
 public:
  WarnLogMessage(const char* file, int line) {
    stream_ << file << ":" << line << " WARNING: ";
  }
  ~WarnLogMessage() { std::cerr << stream_.str() << std::endl; }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace sidq

// Aborts with a diagnostic when `condition` is false. Active in all builds;
// reserve for programmer errors (API misuse), not data errors -- those are
// reported via Status.
#define SIDQ_CHECK(condition)                                   \
  (condition) ? (void)0                                         \
              : ::sidq::internal_logging::Voidify() &           \
                    ::sidq::internal_logging::FatalLogMessage(  \
                        __FILE__, __LINE__, #condition)         \
                        .stream()

// Non-fatal diagnostic to stderr, for recoverable anomalies that must not be
// silent (e.g. a probe with no sensor coverage that a stat loop skips).
#define SIDQ_WARN()                                          \
  ::sidq::internal_logging::WarnLogMessage(__FILE__, __LINE__).stream()

#define SIDQ_CHECK_OK(expr)                    \
  do {                                         \
    const ::sidq::Status& _s = (expr);         \
    SIDQ_CHECK(_s.ok()) << _s.ToString();      \
  } while (0)

#ifdef NDEBUG
// Compiles the condition (keeping it well-formed) but never evaluates it.
#define SIDQ_DCHECK(condition) SIDQ_CHECK(true || (condition))
#else
#define SIDQ_DCHECK(condition) SIDQ_CHECK(condition)
#endif

#ifndef SIDQ_CORE_LOGGING_H_
#define SIDQ_CORE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace sidq {
namespace internal_logging {

// Accumulates a fatal message and aborts the process when destroyed.
// Used only via the SIDQ_CHECK family below.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " Check failed: " << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Turns a streamed expression into void so both branches of the SIDQ_CHECK
// ternary have type void. operator& binds looser than operator<<.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace sidq

// Aborts with a diagnostic when `condition` is false. Active in all builds;
// reserve for programmer errors (API misuse), not data errors -- those are
// reported via Status.
#define SIDQ_CHECK(condition)                                   \
  (condition) ? (void)0                                         \
              : ::sidq::internal_logging::Voidify() &           \
                    ::sidq::internal_logging::FatalLogMessage(  \
                        __FILE__, __LINE__, #condition)         \
                        .stream()

#define SIDQ_CHECK_OK(expr)                    \
  do {                                         \
    const ::sidq::Status& _s = (expr);         \
    SIDQ_CHECK(_s.ok()) << _s.ToString();      \
  } while (0)

#ifdef NDEBUG
// Compiles the condition (keeping it well-formed) but never evaluates it.
#define SIDQ_DCHECK(condition) SIDQ_CHECK(true || (condition))
#else
#define SIDQ_DCHECK(condition) SIDQ_CHECK(condition)
#endif

#endif  // SIDQ_CORE_LOGGING_H_

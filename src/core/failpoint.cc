#include "core/failpoint.h"

#include <unordered_map>
#include <utility>

#include "core/mutex.h"
#include "core/random.h"
#include "core/thread_annotations.h"

namespace sidq {

namespace internal_failpoint {

std::atomic<int> g_armed_sites{0};

namespace {

struct SiteState {
  FailPointConfig cfg;
  // Evaluation count per key; drives fail_first_n and the probability
  // substream index. An object is evaluated sequentially (its shard owns
  // it), so the count sequence per (site, key) is scheduling-independent.
  std::unordered_map<uint64_t, uint32_t> counts;
  size_t hits = 0;
};

struct Registry {
  Mutex mu;
  // Sites are looked up by name, never iterated -- site decisions must not
  // depend on map order (determinism contract, lint rule R11).
  std::unordered_map<std::string, SiteState> sites SIDQ_GUARDED_BY(mu);
};

Registry& GlobalRegistry() {
  static Registry registry;
  return registry;
}

// FNV-1a over the site name, mixed into the draw so two sites armed with
// the same seed still fire independently.
uint64_t HashSite(const char* site) {
  uint64_t h = 1469598103934665603ull;
  for (const char* c = site; *c != '\0'; ++c) {
    h ^= static_cast<uint64_t>(*c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::optional<FailPointConfig> EvaluateSlow(const char* site, uint64_t key) {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end()) return std::nullopt;
  SiteState& state = it->second;
  const uint32_t count = state.counts[key]++;

  bool fired;
  if (state.cfg.fail_first_n > 0) {
    fired = count < static_cast<uint32_t>(state.cfg.fail_first_n);
  } else {
    // Deterministic uniform in [0, 1): mix (seed, site, key, count) and
    // take the top 53 bits.
    const uint64_t stream = DeriveSeed(state.cfg.seed ^ HashSite(site), key);
    const uint64_t draw = DeriveSeed(stream, count);
    const double u =
        static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
    fired = u < state.cfg.probability;
  }
  if (!fired) return std::nullopt;
  ++state.hits;
  return state.cfg;
}

}  // namespace internal_failpoint

void ArmFailPoint(const std::string& site, FailPointConfig cfg) {
  auto& registry = internal_failpoint::GlobalRegistry();
  MutexLock lock(registry.mu);
  const bool inserted =
      registry.sites
          .insert_or_assign(site, internal_failpoint::SiteState{cfg, {}, 0})
          .second;
  if (inserted) {
    internal_failpoint::g_armed_sites.fetch_add(1,
                                                std::memory_order_relaxed);
  }
}

void DisarmFailPoint(const std::string& site) {
  auto& registry = internal_failpoint::GlobalRegistry();
  MutexLock lock(registry.mu);
  if (registry.sites.erase(site) > 0) {
    internal_failpoint::g_armed_sites.fetch_sub(1,
                                                std::memory_order_relaxed);
  }
}

void DisarmAllFailPoints() {
  auto& registry = internal_failpoint::GlobalRegistry();
  MutexLock lock(registry.mu);
  internal_failpoint::g_armed_sites.fetch_sub(
      static_cast<int>(registry.sites.size()), std::memory_order_relaxed);
  registry.sites.clear();
}

size_t FailPointHits(const std::string& site) {
  auto& registry = internal_failpoint::GlobalRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

namespace {

std::atomic<FailPointObserver*> g_failpoint_observer{nullptr};

}  // namespace

FailPointObserver* ExchangeFailPointObserver(FailPointObserver* observer) {
  return g_failpoint_observer.exchange(observer, std::memory_order_acq_rel);
}

const char* FailPointActionName(FailPointAction action) {
  switch (action) {
    case FailPointAction::kTransientError:
      return "transient";
    case FailPointAction::kPermanentError:
      return "permanent";
    case FailPointAction::kStall:
      return "stall";
    case FailPointAction::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

Status MaybeInjectFailPoint(const char* site, uint64_t key,
                            const ExecContext* ctx, bool* corrupt) {
  const std::optional<FailPointConfig> hit = EvaluateFailPoint(site, key);
  if (!hit.has_value()) return Status::OK();
  // Notify before performing the action so a stall's timestamp is the
  // moment the fault fired, not the moment it finished.
  FailPointObserver* observer =
      g_failpoint_observer.load(std::memory_order_acquire);
  if (observer != nullptr) {
    observer->OnFailPointFired(site, key, hit->action,
                               ctx != nullptr ? ctx->clock() : nullptr);
  }
  switch (hit->action) {
    case FailPointAction::kTransientError:
      return Status::Unavailable(std::string("injected transient fault at ") +
                                 site);
    case FailPointAction::kPermanentError:
      return Status::DataLoss(std::string("injected permanent fault at ") +
                              site);
    case FailPointAction::kStall:
      if (ctx != nullptr) ctx->Stall(hit->stall_ms);
      return Status::OK();
    case FailPointAction::kCorrupt:
      if (corrupt != nullptr) *corrupt = true;
      return Status::OK();
  }
  return Status::OK();
}

}  // namespace sidq

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "core/logging.h"

namespace sidq {

// Bump allocator for per-stage scratch memory (DP rows, SoA temporaries,
// R-tree traversal state). The kernel hot paths allocate short-lived arrays
// thousands of times per fleet run; going through the heap for each one
// costs an allocator round trip and scatters the working set. An Arena
// hands out 64-byte-aligned slices of a few large blocks with a pointer
// bump, and a whole stage's scratch is released in O(1) by rewinding to a
// mark.
//
// Contracts:
//   - Every allocation is aligned to kAlignment (64 B: cache line and the
//     widest vector the kernels dispatch to), so arena-backed columns are
//     valid SIMD targets.
//   - Memory is NOT initialized and NO destructors run: only trivially
//     destructible element types are accepted by AllocArray.
//   - Rewind(mark) releases everything allocated after mark() was taken;
//     blocks are retained for reuse, so steady-state operation performs
//     zero heap traffic ("reset-reuse").
//   - A request larger than the next block size gets a dedicated block of
//     exactly the requested size (the oversize-fallback path); it is
//     reused like any other block after a rewind.
//   - Not thread-safe. Use one Arena per thread; ScratchArena() below
//     hands out a thread-local one.
class Arena {
 public:
  static constexpr size_t kAlignment = 64;
  static constexpr size_t kDefaultFirstBlockBytes = size_t{1} << 16;  // 64 KiB
  static constexpr size_t kMaxBlockBytes = size_t{8} << 20;           // 8 MiB

  // Opaque rewind token: a position in the block sequence.
  struct Mark {
    size_t block = 0;
    size_t offset = 0;
  };

  explicit Arena(size_t first_block_bytes = kDefaultFirstBlockBytes)
      : first_block_bytes_(RoundUp(std::max<size_t>(first_block_bytes, 1))) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (Block& b : blocks_) {
      ::operator delete(b.data, std::align_val_t{kAlignment});
    }
  }

  // Aligned, uninitialized storage. A zero-byte request returns the
  // current (aligned, valid) bump pointer without consuming space.
  void* AllocBytes(size_t bytes) {
    const size_t need = RoundUp(bytes);
    while (true) {
      if (cur_ < blocks_.size()) {
        Block& b = blocks_[cur_];
        if (b.size - offset_ >= need) {
          void* p = b.data + offset_;
          offset_ += need;
          return p;
        }
        // Look ahead: a block retained from an earlier high-water phase
        // (or an oversize block) may already fit.
        size_t next = cur_ + 1;
        while (next < blocks_.size() && blocks_[next].size < need) ++next;
        if (next < blocks_.size()) {
          // Blocks between cur_ and next stay unused until the next
          // rewind; marks remain ordered because block index increases.
          cur_ = next;
          offset_ = need;
          return blocks_[next].data;
        }
      }
      AppendBlock(need);
    }
  }

  // Typed uninitialized array of `count` elements.
  template <typename T>
  T* AllocArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    SIDQ_CHECK(count <= (~size_t{0}) / sizeof(T)) << "arena size overflow";
    return static_cast<T*>(AllocBytes(count * sizeof(T)));
  }

  [[nodiscard]] Mark mark() const { return Mark{cur_, offset_}; }

  // Releases everything allocated since `m` was taken. Blocks are kept.
  void Rewind(Mark m) {
    SIDQ_CHECK(m.block < blocks_.size() || (m.block == 0 && m.offset == 0))
        << "rewind past the arena";
    cur_ = m.block;
    offset_ = m.offset;
  }

  void Reset() { Rewind(Mark{0, 0}); }

  // Introspection for tests and capacity audits.
  [[nodiscard]] size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  [[nodiscard]] size_t used_bytes() const {
    size_t total = 0;
    for (size_t i = 0; i < cur_ && i < blocks_.size(); ++i) {
      total += blocks_[i].size;
    }
    return total + offset_;
  }

 private:
  struct Block {
    std::byte* data = nullptr;
    size_t size = 0;
  };

  static constexpr size_t RoundUp(size_t bytes) {
    return (bytes + (kAlignment - 1)) & ~(kAlignment - 1);
  }

  void AppendBlock(size_t min_bytes) {
    size_t grow = blocks_.empty()
                      ? first_block_bytes_
                      : std::min(blocks_.back().size * 2, kMaxBlockBytes);
    // Oversize fallback: a request bigger than the growth schedule gets a
    // dedicated block of exactly its (rounded) size.
    const size_t size = std::max(grow, RoundUp(min_bytes));
    auto* data = static_cast<std::byte*>(
        ::operator new(size, std::align_val_t{kAlignment}));
    blocks_.push_back(Block{data, size});
    cur_ = blocks_.size() - 1;
    offset_ = 0;
  }

  size_t first_block_bytes_;
  std::vector<Block> blocks_;
  size_t cur_ = 0;     // block currently bumping
  size_t offset_ = 0;  // bytes used in blocks_[cur_]
};

// The per-thread scratch arena the kernel layer and pipeline stages draw
// from. Each worker thread gets its own instance, so scratch allocation is
// lock-free and race-free by construction; determinism is unaffected
// because scratch contents never outlive the stage that wrote them.
inline Arena* ScratchArena() {
  thread_local Arena arena(size_t{256} << 10);  // 256 KiB first block
  return &arena;
}

// RAII stack discipline over an arena: captures a mark on entry, rewinds
// on exit (normal or early return). Nested scopes compose like call
// frames; everything a stage allocates under its scope is gone when the
// stage returns, which is what keeps the thread-local scratch arena from
// growing monotonically.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena) : arena_(arena), mark_(arena->mark()) {}
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope() { arena_->Rewind(mark_); }

  [[nodiscard]] Arena* arena() const { return arena_; }

  template <typename T>
  T* AllocArray(size_t count) {
    return arena_->AllocArray<T>(count);
  }

  // Typed array initialized to `value` (the arena itself never zeroes).
  template <typename T>
  T* AllocFilled(size_t count, T value) {
    T* p = arena_->AllocArray<T>(count);
    std::fill(p, p + count, value);
    return p;
  }

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

// Minimal growable array over an arena for trivially copyable elements
// (traversal stacks, candidate lists). Growth doubles into a fresh arena
// slice; superseded slices are reclaimed by the enclosing scope's rewind,
// so the waste is bounded by 2x the peak size and lives only as long as
// the scope.
template <typename T>
class ArenaVec {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  explicit ArenaVec(Arena* arena, size_t initial_capacity = 16)
      : arena_(arena),
        data_(arena->AllocArray<T>(initial_capacity)),
        capacity_(initial_capacity) {}

  void push_back(const T& v) {
    if (size_ == capacity_) Grow();
    data_[size_++] = v;
  }
  void pop_back() { --size_; }
  void clear() { size_ = 0; }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }

 private:
  void Grow() {
    const size_t new_cap = capacity_ * 2;
    T* next = arena_->AllocArray<T>(new_cap);
    std::memcpy(next, data_, size_ * sizeof(T));
    data_ = next;
    capacity_ = new_cap;
  }

  Arena* arena_;
  T* data_;
  size_t size_ = 0;
  size_t capacity_;
};

}  // namespace sidq

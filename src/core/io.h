#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/statusor.h"
#include "core/stid.h"
#include "core/trajectory.h"

namespace sidq {

// CSV interchange for the core data types, so datasets can move between
// sidq and the usual spatial tooling (GeoPandas, MobilityDB exports, ...).
//
// Trajectory CSV columns: object_id,t_ms,x,y[,accuracy]
// STID CSV columns:       sensor_id,t_ms,x,y,value[,stddev]
// A single header line is written/expected; extra columns are rejected.

// Writes trajectories (may be multiple objects) as CSV.
[[nodiscard]] Status WriteTrajectoriesCsv(const std::vector<Trajectory>& trajectories,
                            std::ostream& out);
[[nodiscard]] Status WriteTrajectoriesCsvFile(const std::vector<Trajectory>& trajectories,
                                const std::string& path);

// Reads trajectories grouped by object_id (each sorted by time).
[[nodiscard]] StatusOr<std::vector<Trajectory>> ReadTrajectoriesCsv(std::istream& in);
[[nodiscard]] StatusOr<std::vector<Trajectory>> ReadTrajectoriesCsvFile(
    const std::string& path);

// Writes an STID dataset as CSV.
[[nodiscard]] Status WriteStidCsv(const StDataset& dataset, std::ostream& out);
[[nodiscard]] Status WriteStidCsvFile(const StDataset& dataset, const std::string& path);

// Reads an STID dataset; the field name is supplied by the caller (CSV
// stores no metadata). Sensor locations are taken from each sensor's first
// record.
[[nodiscard]] StatusOr<StDataset> ReadStidCsv(std::istream& in, std::string field_name);
[[nodiscard]] StatusOr<StDataset> ReadStidCsvFile(const std::string& path,
                                    std::string field_name);

}  // namespace sidq

#include "core/trajectory.h"

#include <algorithm>
#include <cmath>

namespace sidq {

Trajectory::Trajectory(ObjectId object_id, std::vector<TrajectoryPoint> points)
    : object_id_(object_id), points_(std::move(points)) {
  SortByTime();
}

Status Trajectory::Append(const TrajectoryPoint& pt) {
  if (!points_.empty() && pt.t < points_.back().t) {
    return Status::OutOfRange("Append would violate time order");
  }
  ++revision_;
  points_.push_back(pt);
  return Status::OK();
}

void Trajectory::SortByTime() {
  ++revision_;
  std::stable_sort(
      points_.begin(), points_.end(),
      [](const TrajectoryPoint& a, const TrajectoryPoint& b) {
        return a.t < b.t;
      });
}

bool Trajectory::IsTimeOrdered() const {
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].t < points_[i - 1].t) return false;
  }
  return true;
}

Timestamp Trajectory::Duration() const {
  if (points_.size() < 2) return 0;
  return points_.back().t - points_.front().t;
}

double Trajectory::Length() const {
  double len = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    len += geometry::Distance(points_[i - 1].p, points_[i].p);
  }
  return len;
}

double Trajectory::MeanSamplingIntervalSeconds() const {
  if (points_.size() < 2) return 0.0;
  return TimestampToSeconds(Duration()) /
         static_cast<double>(points_.size() - 1);
}

double Trajectory::SpeedAt(size_t i) const {
  if (i == 0 || i >= points_.size()) return 0.0;
  const Timestamp dt = points_[i].t - points_[i - 1].t;
  if (dt <= 0) return 0.0;
  return geometry::Distance(points_[i].p, points_[i - 1].p) /
         TimestampToSeconds(dt);
}

geometry::BBox Trajectory::Bounds() const {
  geometry::BBox box;
  for (const TrajectoryPoint& pt : points_) box.Extend(pt.p);
  return box;
}

StatusOr<geometry::Point> Trajectory::InterpolateAt(Timestamp t) const {
  if (points_.empty()) {
    return Status::FailedPrecondition("empty trajectory");
  }
  if (t < points_.front().t || t > points_.back().t) {
    return Status::OutOfRange("time outside trajectory span");
  }
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const TrajectoryPoint& pt, Timestamp ts) { return pt.t < ts; });
  if (it == points_.begin()) return it->p;
  const TrajectoryPoint& hi = *it;
  const TrajectoryPoint& lo = *(it - 1);
  if (hi.t == lo.t) return lo.p;
  const double f =
      static_cast<double>(t - lo.t) / static_cast<double>(hi.t - lo.t);
  return geometry::Lerp(lo.p, hi.p, f);
}

StatusOr<size_t> Trajectory::NearestIndexByTime(Timestamp t) const {
  if (points_.empty()) {
    return Status::FailedPrecondition("empty trajectory");
  }
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const TrajectoryPoint& pt, Timestamp ts) { return pt.t < ts; });
  if (it == points_.end()) return points_.size() - 1;
  if (it == points_.begin()) return size_t{0};
  const size_t hi = static_cast<size_t>(it - points_.begin());
  const size_t lo = hi - 1;
  return (t - points_[lo].t <= points_[hi].t - t) ? lo : hi;
}

Trajectory Trajectory::Slice(Timestamp t_begin, Timestamp t_end) const {
  Trajectory out(object_id_);
  for (const TrajectoryPoint& pt : points_) {
    if (pt.t >= t_begin && pt.t <= t_end) out.AppendUnordered(pt);
  }
  return out;
}

std::vector<Trajectory> SplitByGap(const Trajectory& input,
                                   Timestamp max_gap_ms,
                                   size_t min_points) {
  std::vector<Trajectory> out;
  Trajectory current(input.object_id());
  auto flush = [&] {
    if (current.size() >= min_points) {
      out.push_back(std::move(current));
    }
    current = Trajectory(input.object_id());
  };
  for (size_t i = 0; i < input.size(); ++i) {
    if (!current.empty() &&
        input[i].t - current.back().t > max_gap_ms) {
      flush();
    }
    current.AppendUnordered(input[i]);
  }
  flush();
  return out;
}

StatusOr<double> RmseBetween(const Trajectory& a, const Trajectory& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("trajectory size mismatch");
  }
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += geometry::DistanceSq(a[i].p, b[i].p);
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

StatusOr<double> MeanErrorBetween(const Trajectory& a, const Trajectory& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("trajectory size mismatch");
  }
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += geometry::Distance(a[i].p, b[i].p);
  }
  return acc / static_cast<double>(a.size());
}

}  // namespace sidq

#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace sidq {

// Mixes (base_seed, key) into one well-distributed 64-bit stream seed via
// two rounds of the SplitMix64 finalizer. Nearby keys (0, 1, 2, ...) yield
// statistically independent streams, which is what the fleet executor needs:
// each trajectory draws from the substream (base_seed, trajectory_id), so
// randomized cleaning stages produce bit-identical output no matter how the
// batch is sharded across worker threads.
inline uint64_t DeriveSeed(uint64_t base_seed, uint64_t key) {
  auto mix = [](uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  uint64_t z = mix(base_seed + 0x9E3779B97F4A7C15ull);
  z = mix(z ^ (key + 0x9E3779B97F4A7C15ull));
  return z;
}

// Deterministic random source used throughout simulators and randomized
// algorithms. Wraps a fixed engine so that experiments are reproducible
// bit-for-bit given the same seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  // Substream constructor: an Rng seeded with DeriveSeed(base_seed, key).
  static Rng ForKey(uint64_t base_seed, uint64_t key) {
    return Rng(DeriveSeed(base_seed, key));
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }
  // Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  // Exponential with the given rate (lambda).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }
  // Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }
  // Poisson sample with the given mean.
  int Poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }
  // Samples an index in [0, weights.size()) proportionally to weights.
  size_t Categorical(const std::vector<double>& weights) {
    std::discrete_distribution<size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }
  // Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sidq

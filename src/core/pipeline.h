#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/exec_context.h"
#include "core/observer.h"
#include "core/quality.h"
#include "core/random.h"
#include "core/retry.h"
#include "core/status.h"
#include "core/statusor.h"
#include "core/trajectory.h"

namespace sidq {

// One recorded fall down a degradation ladder: `stage` ran rung `rung`
// (`rung_name`) because the rungs above it failed, the topmost with `cause`.
struct DegradeEvent {
  std::string stage;
  int rung = 0;
  std::string rung_name;
  Status cause;
};

// Per-trajectory resilience trace filled during a pipeline run: how many
// retries were spent and which stages fell down their ladder. The fleet
// runner folds this into per-object quality annotations.
struct RunTrace {
  int retries = 0;
  std::vector<DegradeEvent> degraded;

  [[nodiscard]] bool degraded_mode() const { return !degraded.empty(); }
};

// Execution environment for one pipeline run over one trajectory. All
// pointers are optional and borrowed:
//   rng        stage randomness substream (nullptr = unseeded Apply path)
//   retry_rng  backoff-jitter substream, separate from `rng` so a retry
//              never perturbs what the stages compute
//   exec       deadline + cooperative cancellation, shared across workers
//   retry      per-stage retry policy for transient failures
//   trace      receives retries/degradations (owned by the caller)
//   obs        observability hook (stage/attempt/retry/degrade events);
//              see core/observer.h for the nesting contract
struct StageContext {
  Rng* rng = nullptr;
  Rng* retry_rng = nullptr;
  const ExecContext* exec = nullptr;
  const RetryPolicy* retry = nullptr;
  RunTrace* trace = nullptr;
  RunObserver* obs = nullptr;
};

// A single trajectory-cleaning step. Implementations live in the refine /
// uncertainty / outlier / fault / reduce modules; the pipeline composes them.
class TrajectoryStage {
 public:
  virtual ~TrajectoryStage() = default;
  virtual std::string name() const = 0;
  virtual StatusOr<Trajectory> Apply(const Trajectory& input) const = 0;

  // Seeded entry point used by batch/fleet execution: `rng` is a substream
  // derived from (base_seed, trajectory id), so randomized stages stay
  // bit-identical no matter how the batch is sharded across threads (the
  // determinism contract in DESIGN.md). Deterministic stages keep the
  // default, which ignores the stream.
  virtual StatusOr<Trajectory> ApplySeeded(const Trajectory& input,
                                           Rng& /*rng*/) const {
    return Apply(input);
  }

  // Context-aware entry point used by resilient execution. Stages that can
  // honour deadlines/cancellation (or report degradation) override this;
  // the default routes to the seeded/unseeded paths, so existing stages
  // behave identically under a context they ignore.
  virtual StatusOr<Trajectory> ApplyCtx(const Trajectory& input,
                                        const StageContext& ctx) const {
    return ctx.rng != nullptr ? ApplySeeded(input, *ctx.rng) : Apply(input);
  }
};

// Runs one stage attempt-by-attempt under the context's retry policy:
// transient failures (IsTransient) back off on the context clock -- jitter
// drawn from ctx.retry_rng -- and re-run, up to retry->max_retries extra
// attempts; retrying stops early once the context is cancelled or past its
// deadline. Retries are counted into ctx.trace. Without a policy this is a
// single plain ApplyCtx call.
StatusOr<Trajectory> RunStageWithRetry(const TrajectoryStage& stage,
                                       const Trajectory& input,
                                       const StageContext& ctx);

// Adapts a plain callable into a TrajectoryStage.
class LambdaStage : public TrajectoryStage {
 public:
  using Fn = std::function<StatusOr<Trajectory>(const Trajectory&)>;
  LambdaStage(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string name() const override { return name_; }
  [[nodiscard]] StatusOr<Trajectory> Apply(const Trajectory& input) const override {
    return fn_(input);
  }

 private:
  std::string name_;
  Fn fn_;
};

// Adapts a callable that consumes randomness into a TrajectoryStage. When
// invoked through the unseeded Apply() path the stage falls back to a fixed
// private stream, so single-trajectory runs stay reproducible too.
class SeededLambdaStage : public TrajectoryStage {
 public:
  using Fn = std::function<StatusOr<Trajectory>(const Trajectory&, Rng&)>;
  SeededLambdaStage(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string name() const override { return name_; }
  [[nodiscard]] StatusOr<Trajectory> Apply(const Trajectory& input) const override {
    Rng fallback(kFallbackSeed);
    return fn_(input, fallback);
  }
  [[nodiscard]] StatusOr<Trajectory> ApplySeeded(const Trajectory& input,
                                                 Rng& rng) const override {
    return fn_(input, rng);
  }

 private:
  static constexpr uint64_t kFallbackSeed = 0x51D95EEDull;
  std::string name_;
  Fn fn_;
};

// Adapts a context-aware callable (deadline checks, failpoint sites) into a
// TrajectoryStage.
class ContextLambdaStage : public TrajectoryStage {
 public:
  using Fn = std::function<StatusOr<Trajectory>(const Trajectory&,
                                                const StageContext&)>;
  ContextLambdaStage(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string name() const override { return name_; }
  [[nodiscard]] StatusOr<Trajectory> Apply(const Trajectory& input) const override {
    return fn_(input, StageContext{});
  }
  [[nodiscard]] StatusOr<Trajectory> ApplyCtx(const Trajectory& input,
                                              const StageContext& ctx)
      const override {
    return fn_(input, ctx);
  }

 private:
  std::string name_;
  Fn fn_;
};

// Graceful-degradation ladder: an ordered list of rungs implementing the
// same logical stage at decreasing fidelity and cost (e.g. HMM map matcher
// -> geometric nearest-road snap; particle filter -> Kalman -> passthrough).
// Each rung runs with per-rung retries (RunStageWithRetry); when a rung
// fails terminally with anything but kCancelled -- including
// kDeadlineExceeded from a cooperative kernel -- the ladder falls to the
// next rung and records a DegradeEvent in the trace. Rungs below the top
// should be cheap and deadline-free so they can still rescue an object
// whose budget is already spent. The ladder fails only when every rung
// failed, with the last rung's error.
class LadderStage : public TrajectoryStage {
 public:
  explicit LadderStage(std::string name) : name_(std::move(name)) {}

  LadderStage& AddRung(std::unique_ptr<TrajectoryStage> rung) {
    rungs_.push_back(std::move(rung));
    return *this;
  }
  LadderStage& AddRung(std::string rung_name, LambdaStage::Fn fn) {
    return AddRung(
        std::make_unique<LambdaStage>(std::move(rung_name), std::move(fn)));
  }
  LadderStage& AddRungCtx(std::string rung_name, ContextLambdaStage::Fn fn) {
    return AddRung(std::make_unique<ContextLambdaStage>(std::move(rung_name),
                                                        std::move(fn)));
  }

  size_t num_rungs() const { return rungs_.size(); }
  std::string name() const override { return name_; }

  [[nodiscard]] StatusOr<Trajectory> Apply(const Trajectory& input) const override {
    return ApplyCtx(input, StageContext{});
  }
  [[nodiscard]] StatusOr<Trajectory> ApplyCtx(const Trajectory& input,
                                              const StageContext& ctx)
      const override;

 private:
  std::string name_;
  std::vector<std::unique_ptr<TrajectoryStage>> rungs_;
};

// Quality report captured after one pipeline stage.
struct StageReport {
  std::string stage_name;
  DqReport report;
};

// Composes cleaning stages into a quality-management pipeline and, when a
// profiler is attached, records the DQ report after every stage -- the
// "means to resolve DQ issues" workflow of Section 2.1.
class TrajectoryPipeline {
 public:
  TrajectoryPipeline() = default;

  // Appends a stage; returns *this for chaining.
  TrajectoryPipeline& Add(std::unique_ptr<TrajectoryStage> stage) {
    stages_.push_back(std::move(stage));
    return *this;
  }
  TrajectoryPipeline& Add(std::string name, LambdaStage::Fn fn) {
    return Add(std::make_unique<LambdaStage>(std::move(name), std::move(fn)));
  }
  TrajectoryPipeline& AddSeeded(std::string name, SeededLambdaStage::Fn fn) {
    return Add(
        std::make_unique<SeededLambdaStage>(std::move(name), std::move(fn)));
  }
  TrajectoryPipeline& AddCtx(std::string name, ContextLambdaStage::Fn fn) {
    return Add(
        std::make_unique<ContextLambdaStage>(std::move(name), std::move(fn)));
  }

  size_t num_stages() const { return stages_.size(); }
  const TrajectoryStage& stage(size_t i) const { return *stages_[i]; }

  // Runs all stages in order. Fails fast on the first stage error.
  [[nodiscard]] StatusOr<Trajectory> Run(const Trajectory& input) const;
  // Seeded variant: stages draw from `rng` (pass nullptr for the unseeded
  // behaviour). Fleet execution derives one substream per trajectory.
  [[nodiscard]] StatusOr<Trajectory> Run(const Trajectory& input,
                                         Rng* rng) const;
  // Resilient variant: stages additionally observe ctx.exec (deadline /
  // cancellation), retry transient failures under ctx.retry, and record
  // retries/degradations into ctx.trace. With a default-constructed ctx
  // this is exactly Run(input); with only ctx.rng set it is exactly
  // Run(input, rng) -- same draws, same output bits.
  [[nodiscard]] StatusOr<Trajectory> Run(const Trajectory& input,
                                         const StageContext& ctx) const;

  // Runs all stages, profiling the data before the first stage and after
  // every stage against `truth` (may be nullptr). `reports` receives
  // num_stages()+1 entries, the first named "input". The optional `rng`
  // selects the seeded stage path exactly as in Run().
  [[nodiscard]] StatusOr<Trajectory> RunProfiled(const Trajectory& input,
                                   const Trajectory* truth,
                                   const TrajectoryProfiler& profiler,
                                   std::vector<StageReport>* reports,
                                   Rng* rng = nullptr) const;
  // Resilient + profiled.
  [[nodiscard]] StatusOr<Trajectory> RunProfiled(const Trajectory& input,
                                   const Trajectory* truth,
                                   const TrajectoryProfiler& profiler,
                                   std::vector<StageReport>* reports,
                                   const StageContext& ctx) const;

  // Serial reference implementation of batch cleaning: trajectory i is
  // cleaned with the substream DeriveSeed(base_seed, inputs[i].object_id()).
  // exec::FleetRunner is required to produce bit-identical results to this
  // loop for every worker count and sharding mode. Fails fast on the first
  // trajectory whose pipeline run fails.
  [[nodiscard]] StatusOr<std::vector<Trajectory>> RunBatch(
      const std::vector<Trajectory>& inputs, uint64_t base_seed) const;

 private:
  StatusOr<Trajectory> RunStages(const Trajectory& input,
                                 const StageContext& ctx,
                                 const Trajectory* truth,
                                 const TrajectoryProfiler* profiler,
                                 std::vector<StageReport>* reports) const;

  std::vector<std::unique_ptr<TrajectoryStage>> stages_;
};

}  // namespace sidq

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/quality.h"
#include "core/random.h"
#include "core/status.h"
#include "core/statusor.h"
#include "core/trajectory.h"

namespace sidq {

// A single trajectory-cleaning step. Implementations live in the refine /
// uncertainty / outlier / fault / reduce modules; the pipeline composes them.
class TrajectoryStage {
 public:
  virtual ~TrajectoryStage() = default;
  virtual std::string name() const = 0;
  virtual StatusOr<Trajectory> Apply(const Trajectory& input) const = 0;

  // Seeded entry point used by batch/fleet execution: `rng` is a substream
  // derived from (base_seed, trajectory id), so randomized stages stay
  // bit-identical no matter how the batch is sharded across threads (the
  // determinism contract in DESIGN.md). Deterministic stages keep the
  // default, which ignores the stream.
  virtual StatusOr<Trajectory> ApplySeeded(const Trajectory& input,
                                           Rng& /*rng*/) const {
    return Apply(input);
  }
};

// Adapts a plain callable into a TrajectoryStage.
class LambdaStage : public TrajectoryStage {
 public:
  using Fn = std::function<StatusOr<Trajectory>(const Trajectory&)>;
  LambdaStage(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string name() const override { return name_; }
  [[nodiscard]] StatusOr<Trajectory> Apply(const Trajectory& input) const override {
    return fn_(input);
  }

 private:
  std::string name_;
  Fn fn_;
};

// Adapts a callable that consumes randomness into a TrajectoryStage. When
// invoked through the unseeded Apply() path the stage falls back to a fixed
// private stream, so single-trajectory runs stay reproducible too.
class SeededLambdaStage : public TrajectoryStage {
 public:
  using Fn = std::function<StatusOr<Trajectory>(const Trajectory&, Rng&)>;
  SeededLambdaStage(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string name() const override { return name_; }
  [[nodiscard]] StatusOr<Trajectory> Apply(const Trajectory& input) const override {
    Rng fallback(kFallbackSeed);
    return fn_(input, fallback);
  }
  [[nodiscard]] StatusOr<Trajectory> ApplySeeded(const Trajectory& input,
                                                 Rng& rng) const override {
    return fn_(input, rng);
  }

 private:
  static constexpr uint64_t kFallbackSeed = 0x51D95EEDull;
  std::string name_;
  Fn fn_;
};

// Quality report captured after one pipeline stage.
struct StageReport {
  std::string stage_name;
  DqReport report;
};

// Composes cleaning stages into a quality-management pipeline and, when a
// profiler is attached, records the DQ report after every stage -- the
// "means to resolve DQ issues" workflow of Section 2.1.
class TrajectoryPipeline {
 public:
  TrajectoryPipeline() = default;

  // Appends a stage; returns *this for chaining.
  TrajectoryPipeline& Add(std::unique_ptr<TrajectoryStage> stage) {
    stages_.push_back(std::move(stage));
    return *this;
  }
  TrajectoryPipeline& Add(std::string name, LambdaStage::Fn fn) {
    return Add(std::make_unique<LambdaStage>(std::move(name), std::move(fn)));
  }
  TrajectoryPipeline& AddSeeded(std::string name, SeededLambdaStage::Fn fn) {
    return Add(
        std::make_unique<SeededLambdaStage>(std::move(name), std::move(fn)));
  }

  size_t num_stages() const { return stages_.size(); }
  const TrajectoryStage& stage(size_t i) const { return *stages_[i]; }

  // Runs all stages in order. Fails fast on the first stage error.
  [[nodiscard]] StatusOr<Trajectory> Run(const Trajectory& input) const;
  // Seeded variant: stages draw from `rng` (pass nullptr for the unseeded
  // behaviour). Fleet execution derives one substream per trajectory.
  [[nodiscard]] StatusOr<Trajectory> Run(const Trajectory& input,
                                         Rng* rng) const;

  // Runs all stages, profiling the data before the first stage and after
  // every stage against `truth` (may be nullptr). `reports` receives
  // num_stages()+1 entries, the first named "input". The optional `rng`
  // selects the seeded stage path exactly as in Run().
  [[nodiscard]] StatusOr<Trajectory> RunProfiled(const Trajectory& input,
                                   const Trajectory* truth,
                                   const TrajectoryProfiler& profiler,
                                   std::vector<StageReport>* reports,
                                   Rng* rng = nullptr) const;

  // Serial reference implementation of batch cleaning: trajectory i is
  // cleaned with the substream DeriveSeed(base_seed, inputs[i].object_id()).
  // exec::FleetRunner is required to produce bit-identical results to this
  // loop for every worker count and sharding mode. Fails fast on the first
  // trajectory whose pipeline run fails.
  [[nodiscard]] StatusOr<std::vector<Trajectory>> RunBatch(
      const std::vector<Trajectory>& inputs, uint64_t base_seed) const;

 private:
  std::vector<std::unique_ptr<TrajectoryStage>> stages_;
};

}  // namespace sidq

#pragma once

#include <ostream>
#include <string>
#include <utility>

namespace sidq {

// Canonical error space, modelled after the Arrow/RocksDB Status idiom.
// Library code must not throw on fallible paths; it returns Status or
// StatusOr<T> instead.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kResourceExhausted = 6,
  kDataLoss = 7,
  kInternal = 8,
  kUnimplemented = 9,
  kCancelled = 10,
  kUnavailable = 11,
  kDeadlineExceeded = 12,
};

// Returns the canonical name of `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// A Status holds an error code plus a human-readable message. The OK status
// carries no message and is cheap to copy. The class itself is [[nodiscard]]:
// any call expression returning a Status by value must be consumed, so a
// failed cleaning/repair step can never be silently mistaken for success.
// Intentional discards require `(void)` plus a `// sidq: allow-ignored-status(...)`
// annotation (enforced by scripts/sidq_lint.py).
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace sidq

// Propagates a non-OK status to the caller.
#define SIDQ_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::sidq::Status _st = (expr);               \
    if (!_st.ok()) return _st;                 \
  } while (0)

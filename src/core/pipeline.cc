#include "core/pipeline.h"

namespace sidq {

StatusOr<Trajectory> TrajectoryPipeline::Run(const Trajectory& input) const {
  Trajectory current = input;
  for (const auto& stage : stages_) {
    auto result = stage->Apply(current);
    if (!result.ok()) {
      return Status(result.status().code(),
                    "stage '" + stage->name() +
                        "' failed: " + result.status().message());
    }
    current = std::move(result).value();
  }
  return current;
}

StatusOr<Trajectory> TrajectoryPipeline::RunProfiled(
    const Trajectory& input, const Trajectory* truth,
    const TrajectoryProfiler& profiler,
    std::vector<StageReport>* reports) const {
  auto profile_one = [&](const std::string& name, const Trajectory& tr) {
    if (reports == nullptr) return;
    std::vector<Trajectory> obs{tr};
    std::vector<Trajectory> tru;
    if (truth != nullptr) tru.push_back(*truth);
    StageReport sr;
    sr.stage_name = name;
    sr.report = profiler.Profile(obs, truth != nullptr ? &tru : nullptr);
    reports->push_back(std::move(sr));
  };

  profile_one("input", input);
  Trajectory current = input;
  for (const auto& stage : stages_) {
    auto result = stage->Apply(current);
    if (!result.ok()) {
      return Status(result.status().code(),
                    "stage '" + stage->name() +
                        "' failed: " + result.status().message());
    }
    current = std::move(result).value();
    profile_one(stage->name(), current);
  }
  return current;
}

}  // namespace sidq

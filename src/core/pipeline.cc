#include "core/pipeline.h"

namespace sidq {

StatusOr<Trajectory> RunStageWithRetry(const TrajectoryStage& stage,
                                       const Trajectory& input,
                                       const StageContext& ctx) {
  for (int attempt = 0;; ++attempt) {
    if (ctx.obs != nullptr) ctx.obs->OnAttemptBegin(stage.name(), attempt);
    auto result = stage.ApplyCtx(input, ctx);
    if (ctx.obs != nullptr) {
      ctx.obs->OnAttemptEnd(stage.name(), attempt,
                            result.ok() ? Status::OK() : result.status());
    }
    if (result.ok()) return result;
    const Status& st = result.status();
    if (st.code() == StatusCode::kCancelled) return result;
    const bool can_retry =
        ctx.retry != nullptr && ctx.retry->ShouldRetry(st, attempt) &&
        (ctx.exec == nullptr || ctx.exec->Check().ok());
    if (!can_retry) return result;
    if (ctx.trace != nullptr) ++ctx.trace->retries;
    int64_t backoff = 0;
    if (ctx.retry_rng != nullptr) {
      backoff = ctx.retry->BackoffMs(attempt, *ctx.retry_rng);
    }
    if (ctx.obs != nullptr) ctx.obs->OnRetry(stage.name(), attempt, backoff);
    if (ctx.retry_rng != nullptr && ctx.exec != nullptr) {
      ctx.exec->Stall(backoff);
    }
  }
}

StatusOr<Trajectory> LadderStage::ApplyCtx(const Trajectory& input,
                                           const StageContext& ctx) const {
  if (rungs_.empty()) {
    return Status::FailedPrecondition("ladder stage '" + name_ +
                                      "' has no rungs");
  }
  Status last = Status::OK();
  for (size_t r = 0; r < rungs_.size(); ++r) {
    auto result = RunStageWithRetry(*rungs_[r], input, ctx);
    if (result.ok()) {
      if (r > 0) {
        if (ctx.trace != nullptr) {
          ctx.trace->degraded.push_back(DegradeEvent{
              name_, static_cast<int>(r), rungs_[r]->name(), last});
        }
        if (ctx.obs != nullptr) {
          ctx.obs->OnDegrade(name_, static_cast<int>(r), rungs_[r]->name(),
                             last);
        }
      }
      return result;
    }
    if (result.status().code() == StatusCode::kCancelled) return result;
    last = result.status();
  }
  return Status(last.code(), "ladder '" + name_ + "' exhausted all " +
                                 std::to_string(rungs_.size()) +
                                 " rungs, last: " + last.message());
}

namespace {

StatusOr<Trajectory> ApplyStage(const TrajectoryStage& stage,
                                const Trajectory& input,
                                const StageContext& ctx) {
  auto result = RunStageWithRetry(stage, input, ctx);
  if (!result.ok()) {
    return Status(result.status().code(),
                  "stage '" + stage.name() +
                      "' failed: " + result.status().message());
  }
  return result;
}

}  // namespace

StatusOr<Trajectory> TrajectoryPipeline::Run(const Trajectory& input) const {
  return Run(input, StageContext{});
}

StatusOr<Trajectory> TrajectoryPipeline::Run(const Trajectory& input,
                                             Rng* rng) const {
  StageContext ctx;
  ctx.rng = rng;
  return Run(input, ctx);
}

StatusOr<Trajectory> TrajectoryPipeline::Run(const Trajectory& input,
                                             const StageContext& ctx) const {
  return RunStages(input, ctx, nullptr, nullptr, nullptr);
}

StatusOr<Trajectory> TrajectoryPipeline::RunProfiled(
    const Trajectory& input, const Trajectory* truth,
    const TrajectoryProfiler& profiler,
    std::vector<StageReport>* reports, Rng* rng) const {
  StageContext ctx;
  ctx.rng = rng;
  return RunStages(input, ctx, truth, &profiler, reports);
}

StatusOr<Trajectory> TrajectoryPipeline::RunProfiled(
    const Trajectory& input, const Trajectory* truth,
    const TrajectoryProfiler& profiler,
    std::vector<StageReport>* reports, const StageContext& ctx) const {
  return RunStages(input, ctx, truth, &profiler, reports);
}

StatusOr<Trajectory> TrajectoryPipeline::RunStages(
    const Trajectory& input, const StageContext& ctx,
    const Trajectory* truth, const TrajectoryProfiler* profiler,
    std::vector<StageReport>* reports) const {
  auto profile_one = [&](const std::string& name, const Trajectory& tr) {
    if (profiler == nullptr || reports == nullptr) return;
    std::vector<Trajectory> obs{tr};
    std::vector<Trajectory> tru;
    if (truth != nullptr) tru.push_back(*truth);
    StageReport sr;
    sr.stage_name = name;
    sr.report = profiler->Profile(obs, truth != nullptr ? &tru : nullptr);
    reports->push_back(std::move(sr));
  };

  profile_one("input", input);
  Trajectory current = input;
  for (const auto& stage : stages_) {
    // Between stages only cancellation stops the run outright; an expired
    // deadline is left for the stages' cooperative checks, so a ladder
    // whose fallback rung is cheap can still rescue the object.
    if (ctx.exec != nullptr) {
      Status st = ctx.exec->Check();
      if (st.code() == StatusCode::kCancelled) return st;
    }
    if (ctx.obs != nullptr) ctx.obs->OnStageBegin(stage->name());
    auto result = ApplyStage(*stage, current, ctx);
    if (ctx.obs != nullptr) {
      ctx.obs->OnStageEnd(stage->name(),
                          result.ok() ? Status::OK() : result.status());
    }
    if (!result.ok()) return result.status();
    current = std::move(result).value();
    profile_one(stage->name(), current);
  }
  return current;
}

StatusOr<std::vector<Trajectory>> TrajectoryPipeline::RunBatch(
    const std::vector<Trajectory>& inputs, uint64_t base_seed) const {
  std::vector<Trajectory> out;
  out.reserve(inputs.size());
  for (const Trajectory& input : inputs) {
    Rng rng = Rng::ForKey(base_seed, input.object_id());
    auto result = Run(input, &rng);
    if (!result.ok()) return result.status();
    out.push_back(std::move(result).value());
  }
  return out;
}

}  // namespace sidq

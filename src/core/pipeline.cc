#include "core/pipeline.h"

namespace sidq {

namespace {

StatusOr<Trajectory> ApplyStage(const TrajectoryStage& stage,
                                const Trajectory& input, Rng* rng) {
  auto result = rng != nullptr ? stage.ApplySeeded(input, *rng)
                               : stage.Apply(input);
  if (!result.ok()) {
    return Status(result.status().code(),
                  "stage '" + stage.name() +
                      "' failed: " + result.status().message());
  }
  return result;
}

}  // namespace

StatusOr<Trajectory> TrajectoryPipeline::Run(const Trajectory& input) const {
  return Run(input, nullptr);
}

StatusOr<Trajectory> TrajectoryPipeline::Run(const Trajectory& input,
                                             Rng* rng) const {
  Trajectory current = input;
  for (const auto& stage : stages_) {
    auto result = ApplyStage(*stage, current, rng);
    if (!result.ok()) return result.status();
    current = std::move(result).value();
  }
  return current;
}

StatusOr<Trajectory> TrajectoryPipeline::RunProfiled(
    const Trajectory& input, const Trajectory* truth,
    const TrajectoryProfiler& profiler,
    std::vector<StageReport>* reports, Rng* rng) const {
  auto profile_one = [&](const std::string& name, const Trajectory& tr) {
    if (reports == nullptr) return;
    std::vector<Trajectory> obs{tr};
    std::vector<Trajectory> tru;
    if (truth != nullptr) tru.push_back(*truth);
    StageReport sr;
    sr.stage_name = name;
    sr.report = profiler.Profile(obs, truth != nullptr ? &tru : nullptr);
    reports->push_back(std::move(sr));
  };

  profile_one("input", input);
  Trajectory current = input;
  for (const auto& stage : stages_) {
    auto result = ApplyStage(*stage, current, rng);
    if (!result.ok()) return result.status();
    current = std::move(result).value();
    profile_one(stage->name(), current);
  }
  return current;
}

StatusOr<std::vector<Trajectory>> TrajectoryPipeline::RunBatch(
    const std::vector<Trajectory>& inputs, uint64_t base_seed) const {
  std::vector<Trajectory> out;
  out.reserve(inputs.size());
  for (const Trajectory& input : inputs) {
    Rng rng = Rng::ForKey(base_seed, input.object_id());
    auto result = Run(input, &rng);
    if (!result.ok()) return result.status();
    out.push_back(std::move(result).value());
  }
  return out;
}

}  // namespace sidq

#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/stid.h"
#include "core/trajectory.h"
#include "core/types.h"

namespace sidq {

// The major data-quality dimensions of spatial IoT data, following
// Section 2.1 of the tutorial. The three groups correspond to the three
// consumption requirements: accurate & reliable; comprehensive &
// informative; easy to use.
enum class DqDimension : int {
  // -- accurate and reliable --
  kPrecision = 0,     // scatter of repeated measurements
  kAccuracy,          // deviation from the true state
  kConsistency,       // agreement with constraints / other observations
  // -- comprehensive and informative --
  kTimeSparsity,      // temporal gap between consecutive samples
  kSpaceCoverage,     // fraction of the region observed
  kCompleteness,      // fraction of expected records present
  kRedundancy,        // fraction of duplicated records
  // -- easy to use --
  kLatency,           // delay between event and availability
  kStaleness,         // age of the most recent record
  kDataVolume,        // number of records to process
  kTruthVolume,       // availability of ground-truth labels
  kResolution,        // spatial/thematic granularity
  kInterpretability,  // availability of semantics / uniform schema
};

inline constexpr int kNumDqDimensions = 13;

// Short canonical name, e.g. "precision".
const char* DqDimensionName(DqDimension d);

// True when a larger metric value means *worse* quality for `d`
// (e.g. accuracy is reported as RMSE; coverage as a fraction covered).
bool MetricLargerIsWorse(DqDimension d);

// Execution-quality grade the resilient fleet executor attaches to each
// cleaned object: was the result produced at full fidelity, by a degraded
// fallback rung of a stage ladder, or not at all because the object was
// quarantined after repeated failures? Consumers treat kDegraded output as
// usable-but-flagged (its DQ metrics reflect the cheaper algorithm) and
// kQuarantined output as absent.
enum class ExecQuality : int {
  kFull = 0,
  kDegraded,
  kQuarantined,
};

// Short canonical name, e.g. "degraded".
const char* ExecQualityName(ExecQuality q);

// A set of measured quality metrics keyed by dimension. Metric values are
// raw (metres, seconds, fractions, counts) -- not normalized scores -- so
// reports are comparable across runs of the same profiler.
class DqReport {
 public:
  void Set(DqDimension d, double value) { metrics_[d] = value; }
  [[nodiscard]] bool Has(DqDimension d) const { return metrics_.count(d) > 0; }
  [[nodiscard]] double Get(DqDimension d) const;
  const std::map<DqDimension, double>& metrics() const { return metrics_; }

  [[nodiscard]] std::string ToString() const;

 private:
  std::map<DqDimension, double> metrics_;
};

// One detected quality change between a clean and a dirty dataset.
struct DqIssue {
  DqDimension dimension;
  bool degraded = false;  // true: quality got worse ("low" in Table 1 terms)
  double clean_value = 0.0;
  double dirty_value = 0.0;
};

// Compares two reports dimension-by-dimension and returns the dimensions
// whose metric moved by more than `rel_threshold` (relative) or
// `abs_threshold` (absolute), tagged with the direction of quality change.
// This is the machinery behind the Table 1 reproduction (bench E1).
std::vector<DqIssue> DiagnoseChanges(const DqReport& clean,
                                     const DqReport& dirty,
                                     double rel_threshold = 0.10,
                                     double abs_threshold = 1e-9);

// Measures DQ dimensions of a trajectory dataset. Metrics that need ground
// truth or arrival times are only emitted when those inputs are provided.
class TrajectoryProfiler {
 public:
  struct Options {
    // Grid cell size for space-coverage estimation, metres.
    double coverage_cell_m = 250.0;
    // Expected sampling interval; completeness = observed / expected count.
    Timestamp expected_interval_ms = 1000;
    // Speed above which consecutive samples are counted as inconsistent.
    double max_speed_mps = 50.0;
    // Two samples closer than this in time and space count as duplicates.
    Timestamp duplicate_window_ms = 1;
    double duplicate_radius_m = 0.5;
    // "now" for staleness; defaults to the max timestamp in the data.
    Timestamp now = kMinTimestamp;
  };

  explicit TrajectoryProfiler(Options options) : options_(options) {}
  TrajectoryProfiler() : TrajectoryProfiler(Options{}) {}

  // Profiles `observed`. `truth` (same object, any sampling) enables
  // kAccuracy and kTruthVolume; `arrival_times` (aligned with observed
  // points) enables kLatency.
  DqReport Profile(const std::vector<Trajectory>& observed,
                   const std::vector<Trajectory>* truth = nullptr,
                   const std::vector<std::vector<Timestamp>>* arrival_times =
                       nullptr) const;

 private:
  Options options_;
};

// Measures DQ dimensions of an STID dataset (thematic sensor readings).
class StidProfiler {
 public:
  struct Options {
    double coverage_cell_m = 250.0;
    Timestamp expected_interval_ms = 60'000;
    // Rate-of-change (per second) beyond which consecutive values are
    // inconsistent.
    double max_rate_per_s = 10.0;
    Timestamp now = kMinTimestamp;
  };

  explicit StidProfiler(Options options) : options_(options) {}
  StidProfiler() : StidProfiler(Options{}) {}

  // Profiles `observed`; `truth_fn` values aligned per sensor per record
  // enable kAccuracy (pass nullptr to skip).
  DqReport Profile(const StDataset& observed,
                   const StDataset* truth = nullptr) const;

 private:
  Options options_;
};

}  // namespace sidq

#pragma once

#include <atomic>
#include <cstdint>

#include "core/clock.h"
#include "core/status.h"

namespace sidq {

// Execution context threaded through FleetRunner, TrajectoryPipeline, and
// the expensive inner loops (HMM Viterbi layers, DTW/Frechet rows, particle
// filter steps). Bundles a deadline against an injectable Clock with a
// shared cancellation flag, so long-running kernels can stop cooperatively
// instead of running to completion after the answer stopped mattering.
//
// The context itself is immutable and safe to share across threads; the
// cancellation flag is an external atomic (typically owned by the fleet
// runner) observed with acquire loads. ExecContext therefore holds no
// capability of its own -- it is lock-free by construction, and appears in
// the capability map (DESIGN.md "Concurrency & locking discipline") as an
// atomics-only structure: nothing here may ever take a sidq::Mutex, or a
// cooperative Check() inside a locked region could invert the lock order.
class ExecContext {
 public:
  // No clock, no deadline, no cancellation: Check() always returns OK and
  // Stall() is a no-op.
  ExecContext() = default;

  // Clock + cancellation, no deadline. `clock` (nullable) must outlive the
  // context; it serves retry backoff and injected stalls.
  explicit ExecContext(const Clock* clock,
                       const std::atomic<bool>* cancel = nullptr)
      : clock_(clock), cancel_(cancel) {}

  // Context whose deadline is `budget_ms` from the clock's current reading;
  // budget_ms <= 0 (or a null clock) means no deadline, clock retained.
  static ExecContext After(const Clock* clock, int64_t budget_ms,
                           const std::atomic<bool>* cancel = nullptr) {
    ExecContext ctx(clock, cancel);
    if (clock != nullptr && budget_ms > 0) {
      ctx.has_deadline_ = true;
      ctx.deadline_ms_ = clock->NowMs() + budget_ms;
    }
    return ctx;
  }

  // The cooperative check: kCancelled when the shared flag is set,
  // kDeadlineExceeded when the clock passed the deadline, OK otherwise.
  // Cheap enough to call once per DP row / filter step.
  [[nodiscard]] Status Check() const {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_acquire)) {
      return Status::Cancelled("execution cancelled");
    }
    if (has_deadline_ && clock_->NowMs() > deadline_ms_) {
      return Status::DeadlineExceeded("deadline exceeded");
    }
    return Status::OK();
  }

  [[nodiscard]] bool has_deadline() const { return has_deadline_; }
  // Milliseconds left before the deadline (may be negative); deadline-free
  // contexts report INT64_MAX.
  [[nodiscard]] int64_t RemainingMs() const {
    if (!has_deadline_) return INT64_MAX;
    return deadline_ms_ - clock_->NowMs();
  }

  // Sleeps on the context's clock (instant under VirtualClock). Used by
  // retry backoff and by injected chaos stalls; a no-op without a clock, so
  // clockless retries are immediate by design.
  void Stall(int64_t ms) const {
    if (clock_ != nullptr && ms > 0) clock_->SleepMs(ms);
  }

  [[nodiscard]] const Clock* clock() const { return clock_; }

 private:
  const Clock* clock_ = nullptr;
  bool has_deadline_ = false;
  int64_t deadline_ms_ = 0;
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace sidq

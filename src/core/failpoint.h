#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "core/exec_context.h"
#include "core/status.h"

namespace sidq {

// -------------------------------------------------------------------------
// FailPoint: chaos fault injection at named sites.
//
// Exec / refine / fault stages compile in named injection sites (e.g.
// "refine.hmm.viterbi_row"). Tests arm a site with a FailPointConfig --
// seeded probabilities or a deterministic fail-first-N count -- and the site
// then injects transient errors, permanent errors, stalls (consuming
// deadline budget through the caller's ExecContext clock), or flags the
// caller to corrupt its output. With nothing armed, a site is one relaxed
// atomic load: zero contention, no branches taken, safe to leave in
// production hot loops.
//
// Determinism: a site decision for (site, key) depends only on the config
// seed, the site name, the key (object id), and how many times that (site,
// key) pair has been evaluated -- never on thread interleaving. A fleet run
// under chaos therefore injects the *same* faults into the same objects for
// any worker count, which is what the chaos determinism property test pins.
// -------------------------------------------------------------------------

enum class FailPointAction : int {
  kTransientError = 0,  // Status::Unavailable -- retryable
  kPermanentError,      // Status::DataLoss -- not retryable
  kStall,               // sleep stall_ms on the caller's ExecContext clock
  kCorrupt,             // tell the caller to corrupt its output
};

struct FailPointConfig {
  FailPointAction action = FailPointAction::kTransientError;
  // Per-evaluation firing probability, drawn from the deterministic
  // (seed, site, key, evaluation#) substream. Ignored if fail_first_n > 0.
  double probability = 1.0;
  // > 0: fire on exactly the first N evaluations for each key, then pass.
  // The precise tool for "transient fault that retry must survive".
  int fail_first_n = 0;
  // Stall length for kStall.
  int64_t stall_ms = 0;
  // Substream salt for probability draws.
  uint64_t seed = 0;
};

namespace internal_failpoint {
// Number of armed sites; the fast-path gate for every site check.
extern std::atomic<int> g_armed_sites;
// Slow path: consults the registry under its mutex.
std::optional<FailPointConfig> EvaluateSlow(const char* site, uint64_t key);
}  // namespace internal_failpoint

// Observability hook for fired fail points. Installed process-wide (chaos is
// already a global registry, so its observer is too); implementations must
// be thread-safe -- workers fire sites concurrently. `clock` is the firing
// caller's ExecContext clock (nullptr at clockless sites), so recorded
// timestamps stay virtual-time deterministic.
class FailPointObserver {
 public:
  virtual ~FailPointObserver() = default;
  virtual void OnFailPointFired(const char* site, uint64_t key,
                                FailPointAction action, const Clock* clock) = 0;
};

// Installs `observer` (nullptr to uninstall) and returns the previous one.
// The caller keeps ownership; uninstall before destroying the observer.
FailPointObserver* ExchangeFailPointObserver(FailPointObserver* observer);

// Stable lowercase names for metric/span labels: "transient", "permanent",
// "stall", "corrupt".
const char* FailPointActionName(FailPointAction action);

// Arms `site` with `cfg`, resetting any per-key evaluation counts from a
// previous arming (so repeated test runs start identical). Thread-safe.
void ArmFailPoint(const std::string& site, FailPointConfig cfg);
// Disarms one site / every site. DisarmAll() is the test-teardown hammer.
void DisarmFailPoint(const std::string& site);
void DisarmAllFailPoints();
// Times `site` fired since it was last armed (0 when not armed).
size_t FailPointHits(const std::string& site);

// The site check: nullopt when the site should pass, the armed config when
// it fired. `key` is the determinism key -- object id at per-object sites.
inline std::optional<FailPointConfig> EvaluateFailPoint(const char* site,
                                                        uint64_t key) {
  if (internal_failpoint::g_armed_sites.load(std::memory_order_relaxed) ==
      0) {
    return std::nullopt;
  }
  return internal_failpoint::EvaluateSlow(site, key);
}

// One-call site helper: evaluates the site and performs the action --
// stalls on ctx's clock, sets *corrupt for kCorrupt (when the caller
// supports corruption), and returns the injected Status for error actions.
// Returns OK when the site passed, stalled, or corrupted.
Status MaybeInjectFailPoint(const char* site, uint64_t key,
                            const ExecContext* ctx, bool* corrupt = nullptr);

}  // namespace sidq

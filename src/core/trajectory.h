#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/status.h"
#include "core/statusor.h"
#include "core/types.h"
#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {

// One timestamped location sample of a moving object. `accuracy` is the
// reported 1-sigma positioning error in metres (<= 0 means unknown).
struct TrajectoryPoint {
  Timestamp t = 0;
  geometry::Point p;
  double accuracy = -1.0;

  TrajectoryPoint() = default;
  TrajectoryPoint(Timestamp ts, geometry::Point pt, double acc = -1.0)
      : t(ts), p(pt), accuracy(acc) {}
};

// A time series of location samples for one object. Points are kept sorted
// by timestamp; Append enforces monotonicity, AppendUnordered + SortByTime
// supports out-of-order IoT delivery.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(ObjectId object_id) : object_id_(object_id) {}
  Trajectory(ObjectId object_id, std::vector<TrajectoryPoint> points);

  ObjectId object_id() const { return object_id_; }
  void set_object_id(ObjectId id) { object_id_ = id; }

  const std::vector<TrajectoryPoint>& points() const { return points_; }
  // Conservatively bumps revision(): the caller may mutate through the
  // returned reference, so any derived-column cache must be rebuilt.
  std::vector<TrajectoryPoint>& mutable_points() {
    ++revision_;
    return points_;
  }
  // Pre-allocates capacity for `n` samples (no revision bump: capacity is
  // not content).
  void Reserve(size_t n) { points_.reserve(n); }
  [[nodiscard]] size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  const TrajectoryPoint& operator[](size_t i) const { return points_[i]; }
  const TrajectoryPoint& front() const { return points_.front(); }
  const TrajectoryPoint& back() const { return points_.back(); }

  // Appends a sample; fails if its timestamp precedes the current last one.
  [[nodiscard]] Status Append(const TrajectoryPoint& pt);
  // Appends without ordering checks (raw IoT ingestion); call SortByTime()
  // before using time-ordered algorithms.
  void AppendUnordered(const TrajectoryPoint& pt) {
    ++revision_;
    points_.push_back(pt);
  }
  // Stable-sorts samples by timestamp.
  void SortByTime();
  // True when timestamps are non-decreasing.
  [[nodiscard]] bool IsTimeOrdered() const;

  // Total elapsed time in ms (0 for <2 points).
  [[nodiscard]] Timestamp Duration() const;
  // Total path length in metres.
  [[nodiscard]] double Length() const;
  // Mean sampling interval in seconds (0 for <2 points).
  [[nodiscard]] double MeanSamplingIntervalSeconds() const;
  // Speed of segment ending at index i (metres/second); 0 for i==0 or
  // zero-duration segments.
  [[nodiscard]] double SpeedAt(size_t i) const;
  [[nodiscard]] geometry::BBox Bounds() const;

  // Location linearly interpolated at time t; fails when the trajectory is
  // empty or t is outside [front().t, back().t].
  [[nodiscard]] StatusOr<geometry::Point> InterpolateAt(Timestamp t) const;
  // Index of the sample whose timestamp is closest to t; fails when empty.
  [[nodiscard]] StatusOr<size_t> NearestIndexByTime(Timestamp t) const;

  // Sub-trajectory of samples with t in [t_begin, t_end].
  Trajectory Slice(Timestamp t_begin, Timestamp t_end) const;

  // --- derived-column cache -------------------------------------------
  // Monotonic mutation counter: every mutating method (Append,
  // AppendUnordered, SortByTime, and -- conservatively -- mutable_points())
  // bumps it. Derived caches stamp the revision they were built at; a stale
  // stamp means "rebuild".
  [[nodiscard]] uint64_t revision() const { return revision_; }

  // Opaque per-object slot for memoized derived data (the columnar x/y/t
  // copies built by kernels::TrajectoryView, see src/kernels/soa.h). The
  // slot is mutable state behind a const object: it is NOT internally
  // synchronized. Concurrent first-materialization on the same object must
  // be serialized by the consumer (kernels::TrajectoryView stripes a lock);
  // copies of a Trajectory share the immutable cached buffer, which is safe
  // because a cached value is only ever read while its stamp matches.
  struct DerivedCache {
    uint64_t revision = std::numeric_limits<uint64_t>::max();
    std::shared_ptr<const void> value;
  };
  DerivedCache& derived_cache() const { return derived_cache_; }

 private:
  ObjectId object_id_ = kInvalidObjectId;
  std::vector<TrajectoryPoint> points_;
  uint64_t revision_ = 0;
  mutable DerivedCache derived_cache_;
};

// Splits a trajectory into sub-trajectories wherever the time gap between
// consecutive samples exceeds `max_gap_ms` (trip segmentation). Pieces
// keep the source object id; pieces shorter than `min_points` are dropped.
std::vector<Trajectory> SplitByGap(const Trajectory& input,
                                   Timestamp max_gap_ms,
                                   size_t min_points = 2);

// Root-mean-square distance between matching samples of two equally-sized
// trajectories; the standard accuracy metric against ground truth.
[[nodiscard]] StatusOr<double> RmseBetween(const Trajectory& a, const Trajectory& b);
// Mean distance between matching samples of two equally-sized trajectories.
[[nodiscard]] StatusOr<double> MeanErrorBetween(const Trajectory& a, const Trajectory& b);

}  // namespace sidq

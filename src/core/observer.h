#pragma once

#include <cstdint>
#include <string>

#include "core/status.h"

namespace sidq {

// Hook interface the pipeline machinery reports execution events into.
// Core stays dependency-free: this header defines only the narrow contract;
// the implementation (metrics counters, trace spans) lives in src/obs/.
//
// Call pattern per stage, strictly nested:
//
//   OnStageBegin(stage)
//     OnAttemptBegin(rung_or_stage, 0) ... OnAttemptEnd(..., 0, status)
//     [OnRetry(rung_or_stage, 0, backoff_ms)]      transient failure
//     OnAttemptBegin(rung_or_stage, 1) ...
//     [OnDegrade(ladder, rung, rung_name, cause)]  ladder fell a rung
//   OnStageEnd(stage, status)
//
// For a LadderStage the attempt-level names are the *rung* names while the
// stage-level name is the ladder's. Observers are per-run objects owned by
// the caller (one per trajectory in fleet execution) and are only touched
// from the thread running that trajectory, so implementations need no
// internal locking for per-run state.
//
// Timing contract: observers that measure durations must read time from an
// injected Clock (core/clock.h), never from wall clocks directly -- under
// VirtualClock this makes every observation a pure function of the inputs,
// which is what lets tests golden-file whole traces (DESIGN.md
// "Observability").
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  // Brackets all attempts (and ladder rungs) of one pipeline stage.
  virtual void OnStageBegin(const std::string& stage) = 0;
  virtual void OnStageEnd(const std::string& stage, const Status& status) = 0;

  // Brackets one ApplyCtx call; `attempt` is 0-based per stage/rung.
  virtual void OnAttemptBegin(const std::string& stage, int attempt) = 0;
  virtual void OnAttemptEnd(const std::string& stage, int attempt,
                            const Status& status) = 0;

  // A transient failure of `stage` is about to be retried after backing off
  // `backoff_ms` on the run's clock (0 when retries are clockless). Fires
  // once per retry, i.e. exactly as often as RunTrace::retries increments.
  virtual void OnRetry(const std::string& stage, int attempt,
                       int64_t backoff_ms) = 0;

  // `ladder` fell to 0-based rung `rung` (`rung_name`) because the rungs
  // above it failed, the topmost with `cause`.
  virtual void OnDegrade(const std::string& ladder, int rung,
                         const std::string& rung_name, const Status& cause) = 0;
};

}  // namespace sidq

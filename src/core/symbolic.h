#pragma once

#include <algorithm>
#include <vector>

#include "core/types.h"

namespace sidq {

// One symbolic detection: object `object` was seen by detector/region
// `region` at time `t`. This is the record type of RFID / Bluetooth /
// infrared tracking (Section 2.2.4 of the tutorial).
struct SymbolicReading {
  ObjectId object = kInvalidObjectId;
  RegionId region = 0;
  Timestamp t = 0;

  SymbolicReading() = default;
  SymbolicReading(ObjectId o, RegionId r, Timestamp ts)
      : object(o), region(r), t(ts) {}

  bool operator==(const SymbolicReading& o) const {
    return object == o.object && region == o.region && t == o.t;
  }
};

// A time-ordered sequence of symbolic detections for one object.
class SymbolicTrajectory {
 public:
  SymbolicTrajectory() = default;
  explicit SymbolicTrajectory(ObjectId object) : object_(object) {}

  ObjectId object() const { return object_; }
  const std::vector<SymbolicReading>& readings() const { return readings_; }
  std::vector<SymbolicReading>& mutable_readings() { return readings_; }
  [[nodiscard]] size_t size() const { return readings_.size(); }
  [[nodiscard]] bool empty() const { return readings_.empty(); }
  const SymbolicReading& operator[](size_t i) const { return readings_[i]; }

  void Append(RegionId region, Timestamp t) {
    readings_.emplace_back(object_, region, t);
  }
  void SortByTime() {
    std::stable_sort(readings_.begin(), readings_.end(),
                     [](const SymbolicReading& a, const SymbolicReading& b) {
                       return a.t < b.t;
                     });
  }

  // Collapses consecutive readings in the same region into one, keeping the
  // earliest timestamp; the usual first step of symbolic-trajectory analysis.
  SymbolicTrajectory Deduplicated() const;

  // The region sequence with consecutive duplicates collapsed.
  [[nodiscard]] std::vector<RegionId> RegionSequence() const;

 private:
  ObjectId object_ = kInvalidObjectId;
  std::vector<SymbolicReading> readings_;
};

inline SymbolicTrajectory SymbolicTrajectory::Deduplicated() const {
  SymbolicTrajectory out(object_);
  for (const SymbolicReading& r : readings_) {
    if (out.readings_.empty() || out.readings_.back().region != r.region) {
      out.readings_.push_back(r);
    }
  }
  return out;
}

inline std::vector<RegionId> SymbolicTrajectory::RegionSequence() const {
  std::vector<RegionId> out;
  for (const SymbolicReading& r : readings_) {
    if (out.empty() || out.back() != r.region) out.push_back(r.region);
  }
  return out;
}

}  // namespace sidq

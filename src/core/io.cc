#include "core/io.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "store/vfs.h"

namespace sidq {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) out.push_back(field);
  // Trailing empty field ("a,b,") is significant.
  if (!line.empty() && line.back() == ',') out.push_back("");
  return out;
}

StatusOr<double> ParseDouble(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument(std::string("bad ") + what + ": '" + s +
                                   "'");
  }
  return v;
}

StatusOr<int64_t> ParseInt(const std::string& s, const char* what) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument(std::string("bad ") + what + ": '" + s +
                                   "'");
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Status WriteTrajectoriesCsv(const std::vector<Trajectory>& trajectories,
                            std::ostream& out) {
  out << "object_id,t_ms,x,y,accuracy\n";
  out.precision(10);
  for (const Trajectory& tr : trajectories) {
    for (const TrajectoryPoint& pt : tr.points()) {
      out << tr.object_id() << ',' << pt.t << ',' << pt.p.x << ',' << pt.p.y
          << ',' << pt.accuracy << '\n';
    }
  }
  if (!out.good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status WriteTrajectoriesCsvFile(const std::vector<Trajectory>& trajectories,
                                const std::string& path) {
  // Serialize in memory, publish atomically: a crash or full disk cannot
  // leave a truncated CSV that parses as valid-but-short.
  std::ostringstream out;
  SIDQ_RETURN_IF_ERROR(WriteTrajectoriesCsv(trajectories, out));
  return store::AtomicWriteFile(store::DefaultVfs(), path, out.str());
}

StatusOr<std::vector<Trajectory>> ReadTrajectoriesCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty input");
  }
  std::map<ObjectId, Trajectory> by_object;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 4 && fields.size() != 5) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected 4-5 columns");
    }
    SIDQ_ASSIGN_OR_RETURN(int64_t id, ParseInt(fields[0], "object_id"));
    SIDQ_ASSIGN_OR_RETURN(int64_t t, ParseInt(fields[1], "t_ms"));
    SIDQ_ASSIGN_OR_RETURN(double x, ParseDouble(fields[2], "x"));
    SIDQ_ASSIGN_OR_RETURN(double y, ParseDouble(fields[3], "y"));
    double accuracy = -1.0;
    if (fields.size() == 5) {
      SIDQ_ASSIGN_OR_RETURN(accuracy, ParseDouble(fields[4], "accuracy"));
    }
    const ObjectId oid = static_cast<ObjectId>(id);
    auto it = by_object.find(oid);
    if (it == by_object.end()) {
      it = by_object.emplace(oid, Trajectory(oid)).first;
    }
    it->second.AppendUnordered(
        TrajectoryPoint(t, geometry::Point(x, y), accuracy));
  }
  std::vector<Trajectory> out;
  out.reserve(by_object.size());
  for (auto& [id, tr] : by_object) {
    tr.SortByTime();
    out.push_back(std::move(tr));
  }
  return out;
}

StatusOr<std::vector<Trajectory>> ReadTrajectoriesCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  return ReadTrajectoriesCsv(in);
}

Status WriteStidCsv(const StDataset& dataset, std::ostream& out) {
  out << "sensor_id,t_ms,x,y,value,stddev\n";
  out.precision(10);
  for (const StSeries& s : dataset.series()) {
    for (const StRecord& r : s.records()) {
      out << r.sensor << ',' << r.t << ',' << r.loc.x << ',' << r.loc.y
          << ',' << r.value << ',' << r.stddev << '\n';
    }
  }
  if (!out.good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status WriteStidCsvFile(const StDataset& dataset, const std::string& path) {
  std::ostringstream out;
  SIDQ_RETURN_IF_ERROR(WriteStidCsv(dataset, out));
  return store::AtomicWriteFile(store::DefaultVfs(), path, out.str());
}

StatusOr<StDataset> ReadStidCsv(std::istream& in, std::string field_name) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty input");
  }
  struct Pending {
    geometry::Point loc;
    std::vector<StRecord> records;
  };
  std::map<SensorId, Pending> by_sensor;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 5 && fields.size() != 6) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected 5-6 columns");
    }
    SIDQ_ASSIGN_OR_RETURN(int64_t id, ParseInt(fields[0], "sensor_id"));
    SIDQ_ASSIGN_OR_RETURN(int64_t t, ParseInt(fields[1], "t_ms"));
    SIDQ_ASSIGN_OR_RETURN(double x, ParseDouble(fields[2], "x"));
    SIDQ_ASSIGN_OR_RETURN(double y, ParseDouble(fields[3], "y"));
    SIDQ_ASSIGN_OR_RETURN(double value, ParseDouble(fields[4], "value"));
    double stddev = -1.0;
    if (fields.size() == 6) {
      SIDQ_ASSIGN_OR_RETURN(stddev, ParseDouble(fields[5], "stddev"));
    }
    const SensorId sid = static_cast<SensorId>(id);
    auto it = by_sensor.find(sid);
    if (it == by_sensor.end()) {
      it = by_sensor.emplace(sid, Pending{geometry::Point(x, y), {}}).first;
    }
    it->second.records.emplace_back(sid, t, geometry::Point(x, y), value,
                                    stddev);
  }
  StDataset out(std::move(field_name));
  for (auto& [sid, pending] : by_sensor) {
    std::stable_sort(pending.records.begin(), pending.records.end(),
                     [](const StRecord& a, const StRecord& b) {
                       return a.t < b.t;
                     });
    StSeries series(sid, pending.loc);
    for (const StRecord& r : pending.records) {
      SIDQ_RETURN_IF_ERROR(series.Append(r.t, r.value, r.stddev));
    }
    out.AddSeries(std::move(series));
  }
  return out;
}

StatusOr<StDataset> ReadStidCsvFile(const std::string& path,
                                    std::string field_name) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  return ReadStidCsv(in, std::move(field_name));
}

}  // namespace sidq

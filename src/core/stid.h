#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/statusor.h"
#include "core/types.h"
#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {

// One spatiotemporal IoT data (STID) record: a thematic measurement `value`
// taken by `sensor` at location `loc` and time `t`. `stddev` is the reported
// 1-sigma measurement noise (<= 0 means unknown).
struct StRecord {
  SensorId sensor = kInvalidSensorId;
  Timestamp t = 0;
  geometry::Point loc;
  double value = 0.0;
  double stddev = -1.0;

  StRecord() = default;
  StRecord(SensorId s, Timestamp ts, geometry::Point l, double v,
           double sd = -1.0)
      : sensor(s), t(ts), loc(l), value(v), stddev(sd) {}
};

// The time series of one stationary sensor.
class StSeries {
 public:
  StSeries() = default;
  StSeries(SensorId sensor, geometry::Point loc)
      : sensor_(sensor), loc_(loc) {}

  SensorId sensor() const { return sensor_; }
  const geometry::Point& loc() const { return loc_; }
  void set_loc(const geometry::Point& p) { loc_ = p; }

  const std::vector<StRecord>& records() const { return records_; }
  std::vector<StRecord>& mutable_records() { return records_; }
  [[nodiscard]] size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  const StRecord& operator[](size_t i) const { return records_[i]; }

  // Appends a measurement taken at this sensor's location; fails on
  // decreasing timestamps.
  [[nodiscard]] Status Append(Timestamp t, double value, double stddev = -1.0);
  void SortByTime();

  // Values as a contiguous vector (for coders and predictors).
  [[nodiscard]] std::vector<double> Values() const;

  // Value linearly interpolated at time t; fails outside the series span.
  [[nodiscard]] StatusOr<double> InterpolateAt(Timestamp t) const;

 private:
  SensorId sensor_ = kInvalidSensorId;
  geometry::Point loc_;
  std::vector<StRecord> records_;
};

// A collection of sensor series measuring one thematic field (e.g. PM2.5).
class StDataset {
 public:
  StDataset() = default;
  explicit StDataset(std::string field_name)
      : field_name_(std::move(field_name)) {}

  const std::string& field_name() const { return field_name_; }
  const std::vector<StSeries>& series() const { return series_; }
  std::vector<StSeries>& mutable_series() { return series_; }
  [[nodiscard]] size_t num_sensors() const { return series_.size(); }

  void AddSeries(StSeries s) { series_.push_back(std::move(s)); }
  // Series for `sensor`, or NotFound.
  [[nodiscard]] StatusOr<const StSeries*> FindSeries(SensorId sensor) const;

  // All records across sensors, unordered.
  [[nodiscard]] std::vector<StRecord> AllRecords() const;
  [[nodiscard]] size_t TotalRecords() const;
  [[nodiscard]] geometry::BBox SpatialBounds() const;

 private:
  std::string field_name_;
  std::vector<StSeries> series_;
};

}  // namespace sidq

#pragma once

#include <cstdlib>
#include <optional>
#include <utility>

#include "core/logging.h"
#include "core/status.h"

namespace sidq {

// Holds either a value of type T or a non-OK Status explaining why the value
// is absent. Accessing the value of a non-OK StatusOr aborts the process,
// mirroring absl::StatusOr semantics.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit conversions from Status/T are intentional: they let functions
  // `return Status::Invalid(...)` or `return value;` directly.
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {
    SIDQ_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    SIDQ_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  [[nodiscard]] T& value() & {
    SIDQ_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    SIDQ_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when in the error state.
  [[nodiscard]] T value_or(T fallback) const {
    if (ok()) return *value_;
    return fallback;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sidq

// Evaluates `rexpr` (a StatusOr expression); on error returns the status,
// otherwise assigns the value to `lhs`.
#define SIDQ_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  SIDQ_ASSIGN_OR_RETURN_IMPL_(                            \
      SIDQ_STATUS_MACROS_CONCAT_(_statusor_, __LINE__), lhs, rexpr)

#define SIDQ_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                \
  if (!statusor.ok()) return statusor.status();           \
  lhs = std::move(statusor).value()

#define SIDQ_STATUS_MACROS_CONCAT_(x, y) SIDQ_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define SIDQ_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

#include "core/stid.h"

#include <algorithm>

namespace sidq {

Status StSeries::Append(Timestamp t, double value, double stddev) {
  if (!records_.empty() && t < records_.back().t) {
    return Status::OutOfRange("Append would violate time order");
  }
  records_.emplace_back(sensor_, t, loc_, value, stddev);
  return Status::OK();
}

void StSeries::SortByTime() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const StRecord& a, const StRecord& b) {
                     return a.t < b.t;
                   });
}

std::vector<double> StSeries::Values() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const StRecord& r : records_) out.push_back(r.value);
  return out;
}

StatusOr<double> StSeries::InterpolateAt(Timestamp t) const {
  if (records_.empty()) {
    return Status::FailedPrecondition("empty series");
  }
  if (t < records_.front().t || t > records_.back().t) {
    return Status::OutOfRange("time outside series span");
  }
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), t,
      [](const StRecord& r, Timestamp ts) { return r.t < ts; });
  if (it == records_.begin()) return it->value;
  const StRecord& hi = *it;
  const StRecord& lo = *(it - 1);
  if (hi.t == lo.t) return lo.value;
  const double f =
      static_cast<double>(t - lo.t) / static_cast<double>(hi.t - lo.t);
  return lo.value + (hi.value - lo.value) * f;
}

StatusOr<const StSeries*> StDataset::FindSeries(SensorId sensor) const {
  for (const StSeries& s : series_) {
    if (s.sensor() == sensor) return &s;
  }
  return Status::NotFound("no series for sensor");
}

std::vector<StRecord> StDataset::AllRecords() const {
  std::vector<StRecord> out;
  out.reserve(TotalRecords());
  for (const StSeries& s : series_) {
    out.insert(out.end(), s.records().begin(), s.records().end());
  }
  return out;
}

size_t StDataset::TotalRecords() const {
  size_t n = 0;
  for (const StSeries& s : series_) n += s.size();
  return n;
}

geometry::BBox StDataset::SpatialBounds() const {
  geometry::BBox box;
  for (const StSeries& s : series_) box.Extend(s.loc());
  return box;
}

}  // namespace sidq

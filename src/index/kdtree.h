#pragma once

#include <cstdint>
#include <vector>

#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {
namespace index {

// A static 2-d tree bulk-built over a point set. Best for
// build-once/query-many workloads such as fingerprint maps and kNN joins.
class KdTree {
 public:
  struct Item {
    uint64_t id;
    geometry::Point p;
  };

  KdTree() = default;
  explicit KdTree(std::vector<Item> items);

  [[nodiscard]] size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  // Ids of the k nearest points to `q`, ordered by increasing distance.
  [[nodiscard]] std::vector<uint64_t> Knn(const geometry::Point& q, size_t k) const;
  // (id, distance) pairs of the k nearest points, ordered by distance.
  std::vector<std::pair<uint64_t, double>> KnnWithDistance(
      const geometry::Point& q, size_t k) const;
  // Ids of points inside `box`.
  [[nodiscard]] std::vector<uint64_t> RangeQuery(const geometry::BBox& box) const;
  // Ids of points within `radius` of `center`.
  std::vector<uint64_t> RadiusQuery(const geometry::Point& center,
                                    double radius) const;

 private:
  struct Node {
    int32_t left = -1;
    int32_t right = -1;
    uint32_t begin = 0;  // leaf: range into items_
    uint32_t end = 0;
    uint8_t axis = 0;
    double split = 0.0;
    bool leaf = false;
  };

  static constexpr size_t kLeafSize = 16;

  int32_t Build(uint32_t begin, uint32_t end, int depth);
  void KnnRecurse(int32_t node, const geometry::Point& q, size_t k,
                  std::vector<std::pair<double, uint64_t>>* heap) const;
  void RangeRecurse(int32_t node, const geometry::BBox& box,
                    std::vector<uint64_t>* out) const;

  std::vector<Item> items_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace index
}  // namespace sidq

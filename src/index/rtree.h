#pragma once

#include <cstdint>
#include <vector>

#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {
namespace index {

// An R-tree over rectangles, bulk-loaded with Sort-Tile-Recursive (STR) and
// supporting quadratic-split dynamic inserts. Used for indexing trajectory
// segments, uncertainty regions, and sensor footprints.
class RTree {
 public:
  struct Item {
    uint64_t id;
    geometry::BBox box;
  };

  explicit RTree(size_t max_entries = 16);

  // Bulk-loads (replaces) the tree contents with STR packing.
  void BulkLoad(std::vector<Item> items);
  // Dynamic insert with quadratic split.
  void Insert(uint64_t id, const geometry::BBox& box);

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] int height() const;

  // Ids of items whose box intersects `query`.
  [[nodiscard]] std::vector<uint64_t> RangeQuery(const geometry::BBox& query) const;
  // Ids of the k items nearest to `q` by box MinDistance (best-first).
  [[nodiscard]] std::vector<uint64_t> Knn(const geometry::Point& q, size_t k) const;
  // Number of nodes visited by the last RangeQuery (pruning statistics).
  mutable size_t last_nodes_visited = 0;

 private:
  struct Node {
    geometry::BBox box;
    std::vector<int32_t> children;  // internal nodes
    std::vector<Item> items;        // leaves
    bool leaf = true;
  };

  int32_t NewNode(bool leaf);
  void RecomputeBox(int32_t n);
  int32_t ChooseLeaf(int32_t n, const geometry::BBox& box, int level,
                     std::vector<int32_t>* path) const;
  // Splits node `n` in two (quadratic split); returns the new sibling.
  int32_t SplitNode(int32_t n);
  int32_t BuildStr(std::vector<Item>* items, size_t begin, size_t end);

  size_t max_entries_;
  size_t size_ = 0;
  int32_t root_ = -1;
  std::vector<Node> nodes_;
};

}  // namespace index
}  // namespace sidq

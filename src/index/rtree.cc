#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/logging.h"

namespace sidq {
namespace index {

RTree::RTree(size_t max_entries) : max_entries_(max_entries) {
  SIDQ_CHECK(max_entries >= 4) << "max_entries must be >= 4";
}

int32_t RTree::NewNode(bool leaf) {
  Node node;
  node.leaf = leaf;
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size()) - 1;
}

void RTree::RecomputeBox(int32_t n) {
  Node& node = nodes_[n];
  node.box = geometry::BBox();
  if (node.leaf) {
    for (const Item& it : node.items) node.box.Extend(it.box);
  } else {
    for (int32_t c : node.children) node.box.Extend(nodes_[c].box);
  }
}

int RTree::height() const {
  if (root_ < 0) return 0;
  int h = 1;
  int32_t n = root_;
  while (!nodes_[n].leaf) {
    n = nodes_[n].children.front();
    ++h;
  }
  return h;
}

// ---------------------------------------------------------------- bulk load

int32_t RTree::BuildStr(std::vector<Item>* items, size_t begin, size_t end) {
  const size_t n = end - begin;
  if (n <= max_entries_) {
    const int32_t leaf = NewNode(true);
    nodes_[leaf].items.assign(items->begin() + begin, items->begin() + end);
    RecomputeBox(leaf);
    return leaf;
  }
  // STR: P = ceil(n / M) leaf pages, S = ceil(sqrt(P)) vertical slices.
  const size_t pages =
      (n + max_entries_ - 1) / max_entries_;
  const size_t slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(pages))));
  const size_t slice_cap = (n + slices - 1) / slices;
  std::sort(items->begin() + begin, items->begin() + end,
            [](const Item& a, const Item& b) {
              return a.box.Center().x < b.box.Center().x;
            });
  std::vector<int32_t> children;
  for (size_t s = begin; s < end; s += slice_cap) {
    const size_t s_end = std::min(s + slice_cap, end);
    std::sort(items->begin() + s, items->begin() + s_end,
              [](const Item& a, const Item& b) {
                return a.box.Center().y < b.box.Center().y;
              });
    for (size_t p = s; p < s_end; p += max_entries_) {
      const size_t p_end = std::min(p + max_entries_, s_end);
      const int32_t leaf = NewNode(true);
      nodes_[leaf].items.assign(items->begin() + p, items->begin() + p_end);
      RecomputeBox(leaf);
      children.push_back(leaf);
    }
  }
  // Pack children upward until one root remains.
  while (children.size() > 1) {
    std::vector<int32_t> parents;
    for (size_t i = 0; i < children.size(); i += max_entries_) {
      const size_t i_end = std::min(i + max_entries_, children.size());
      const int32_t parent = NewNode(false);
      nodes_[parent].children.assign(children.begin() + i,
                                     children.begin() + i_end);
      RecomputeBox(parent);
      parents.push_back(parent);
    }
    children = std::move(parents);
  }
  return children.front();
}

void RTree::BulkLoad(std::vector<Item> items) {
  nodes_.clear();
  size_ = items.size();
  if (items.empty()) {
    root_ = -1;
    return;
  }
  root_ = BuildStr(&items, 0, items.size());
}

// ------------------------------------------------------------------ insert

namespace {

double Enlargement(const geometry::BBox& box, const geometry::BBox& add) {
  geometry::BBox merged = box;
  merged.Extend(add);
  return merged.Area() - box.Area();
}

}  // namespace

int32_t RTree::SplitNode(int32_t n) {
  Node& node = nodes_[n];
  const int32_t sibling_idx = NewNode(node.leaf);
  // NewNode may reallocate nodes_, so re-take the reference.
  Node& self = nodes_[n];
  Node& sibling = nodes_[sibling_idx];

  // Quadratic split over item/child boxes.
  auto box_of = [&](size_t i) -> geometry::BBox {
    return self.leaf ? self.items[i].box : nodes_[self.children[i]].box;
  };
  const size_t count = self.leaf ? self.items.size() : self.children.size();
  // Pick the pair of seeds wasting the most area together.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      geometry::BBox merged = box_of(i);
      merged.Extend(box_of(j));
      const double waste =
          merged.Area() - box_of(i).Area() - box_of(j).Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  std::vector<size_t> group_a{seed_a}, group_b{seed_b};
  geometry::BBox box_a = box_of(seed_a), box_b = box_of(seed_b);
  for (size_t i = 0; i < count; ++i) {
    if (i == seed_a || i == seed_b) continue;
    const double ea = Enlargement(box_a, box_of(i));
    const double eb = Enlargement(box_b, box_of(i));
    if (ea < eb || (ea == eb && group_a.size() <= group_b.size())) {
      group_a.push_back(i);
      box_a.Extend(box_of(i));
    } else {
      group_b.push_back(i);
      box_b.Extend(box_of(i));
    }
  }
  // Rebuild self from group_a, sibling from group_b.
  if (self.leaf) {
    std::vector<Item> items_a, items_b;
    for (size_t i : group_a) items_a.push_back(self.items[i]);
    for (size_t i : group_b) items_b.push_back(self.items[i]);
    self.items = std::move(items_a);
    sibling.items = std::move(items_b);
  } else {
    std::vector<int32_t> kids_a, kids_b;
    for (size_t i : group_a) kids_a.push_back(self.children[i]);
    for (size_t i : group_b) kids_b.push_back(self.children[i]);
    self.children = std::move(kids_a);
    sibling.children = std::move(kids_b);
  }
  RecomputeBox(n);
  RecomputeBox(sibling_idx);
  return sibling_idx;
}

void RTree::Insert(uint64_t id, const geometry::BBox& box) {
  ++size_;
  if (root_ < 0) {
    root_ = NewNode(true);
    nodes_[root_].items.push_back(Item{id, box});
    RecomputeBox(root_);
    return;
  }
  // Descend to a leaf, remembering the path.
  std::vector<int32_t> path;
  int32_t n = root_;
  path.push_back(n);
  while (!nodes_[n].leaf) {
    const Node& node = nodes_[n];
    int32_t best = node.children.front();
    double best_enlarge = Enlargement(nodes_[best].box, box);
    for (int32_t c : node.children) {
      const double e = Enlargement(nodes_[c].box, box);
      if (e < best_enlarge ||
          (e == best_enlarge && nodes_[c].box.Area() < nodes_[best].box.Area())) {
        best = c;
        best_enlarge = e;
      }
    }
    n = best;
    path.push_back(n);
  }
  nodes_[n].items.push_back(Item{id, box});

  // Walk back up: fix boxes and split overflowing nodes.
  int32_t pending_split = -1;  // newly created sibling at the child level
  for (size_t level = path.size(); level-- > 0;) {
    const int32_t cur = path[level];
    if (pending_split >= 0) {
      nodes_[cur].children.push_back(pending_split);
      pending_split = -1;
    }
    RecomputeBox(cur);
    const size_t count =
        nodes_[cur].leaf ? nodes_[cur].items.size() : nodes_[cur].children.size();
    if (count > max_entries_) {
      pending_split = SplitNode(cur);
    }
  }
  if (pending_split >= 0) {
    // Root split: grow the tree.
    const int32_t new_root = NewNode(false);
    nodes_[new_root].children = {root_, pending_split};
    RecomputeBox(new_root);
    root_ = new_root;
  }
}

// ----------------------------------------------------------------- queries

std::vector<uint64_t> RTree::RangeQuery(const geometry::BBox& query) const {
  std::vector<uint64_t> out;
  last_nodes_visited = 0;
  if (root_ < 0 || query.Empty()) return out;
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const int32_t n = stack.back();
    stack.pop_back();
    ++last_nodes_visited;
    const Node& node = nodes_[n];
    if (!node.box.Intersects(query)) continue;
    if (node.leaf) {
      for (const Item& it : node.items) {
        if (it.box.Intersects(query)) out.push_back(it.id);
      }
    } else {
      for (int32_t c : node.children) {
        if (nodes_[c].box.Intersects(query)) stack.push_back(c);
      }
    }
  }
  return out;
}

std::vector<uint64_t> RTree::Knn(const geometry::Point& q, size_t k) const {
  std::vector<uint64_t> out;
  if (root_ < 0 || k == 0) return out;
  // Best-first search over (min-distance, is_item, index/id).
  struct Entry {
    double dist;
    bool is_item;
    uint64_t id;
    int32_t node;
    bool operator>(const Entry& o) const { return dist > o.dist; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  pq.push(Entry{nodes_[root_].box.MinDistance(q), false, 0, root_});
  while (!pq.empty() && out.size() < k) {
    const Entry e = pq.top();
    pq.pop();
    if (e.is_item) {
      out.push_back(e.id);
      continue;
    }
    const Node& node = nodes_[e.node];
    if (node.leaf) {
      for (const Item& it : node.items) {
        pq.push(Entry{it.box.MinDistance(q), true, it.id, -1});
      }
    } else {
      for (int32_t c : node.children) {
        pq.push(Entry{nodes_[c].box.MinDistance(q), false, 0, c});
      }
    }
  }
  return out;
}

}  // namespace index
}  // namespace sidq

#include "index/grid_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/logging.h"

namespace sidq {
namespace index {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  SIDQ_CHECK(cell_size > 0.0) << "cell size must be positive";
}

void GridIndex::CellCoords(const geometry::Point& p, int64_t* cx,
                           int64_t* cy) const {
  *cx = static_cast<int64_t>(std::floor(p.x / cell_size_));
  *cy = static_cast<int64_t>(std::floor(p.y / cell_size_));
}

GridIndex::CellKey GridIndex::KeyOf(int64_t cx, int64_t cy) const {
  // Interleave-free 32/32 packing; fine for |cell coord| < 2^31.
  return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(cy));
}

GridIndex::CellKey GridIndex::KeyOf(const geometry::Point& p) const {
  int64_t cx, cy;
  CellCoords(p, &cx, &cy);
  return KeyOf(cx, cy);
}

void GridIndex::Insert(uint64_t id, const geometry::Point& p) {
  cells_[KeyOf(p)].push_back(Entry{id, p});
  ++size_;
}

bool GridIndex::Remove(uint64_t id, const geometry::Point& p) {
  auto it = cells_.find(KeyOf(p));
  if (it == cells_.end()) return false;
  auto& vec = it->second;
  for (size_t i = 0; i < vec.size(); ++i) {
    if (vec[i].id == id) {
      vec[i] = vec.back();
      vec.pop_back();
      if (vec.empty()) cells_.erase(it);
      --size_;
      return true;
    }
  }
  return false;
}

void GridIndex::Clear() {
  cells_.clear();
  size_ = 0;
}

std::vector<uint64_t> GridIndex::RangeQuery(const geometry::BBox& box) const {
  std::vector<uint64_t> out;
  if (box.Empty()) return out;
  int64_t cx0, cy0, cx1, cy1;
  CellCoords(geometry::Point(box.min_x, box.min_y), &cx0, &cy0);
  CellCoords(geometry::Point(box.max_x, box.max_y), &cx1, &cy1);
  for (int64_t cx = cx0; cx <= cx1; ++cx) {
    for (int64_t cy = cy0; cy <= cy1; ++cy) {
      auto it = cells_.find(KeyOf(cx, cy));
      if (it == cells_.end()) continue;
      for (const Entry& e : it->second) {
        if (box.Contains(e.p)) out.push_back(e.id);
      }
    }
  }
  return out;
}

std::vector<uint64_t> GridIndex::RadiusQuery(const geometry::Point& center,
                                             double radius) const {
  std::vector<uint64_t> out;
  const geometry::BBox box(center.x - radius, center.y - radius,
                           center.x + radius, center.y + radius);
  int64_t cx0, cy0, cx1, cy1;
  CellCoords(geometry::Point(box.min_x, box.min_y), &cx0, &cy0);
  CellCoords(geometry::Point(box.max_x, box.max_y), &cx1, &cy1);
  const double r_sq = radius * radius;
  for (int64_t cx = cx0; cx <= cx1; ++cx) {
    for (int64_t cy = cy0; cy <= cy1; ++cy) {
      auto it = cells_.find(KeyOf(cx, cy));
      if (it == cells_.end()) continue;
      for (const Entry& e : it->second) {
        if (geometry::DistanceSq(e.p, center) <= r_sq) out.push_back(e.id);
      }
    }
  }
  return out;
}

std::vector<uint64_t> GridIndex::Knn(const geometry::Point& p,
                                     size_t k) const {
  std::vector<uint64_t> out;
  if (k == 0 || size_ == 0) return out;
  // Expanding-ring search: examine cells ring by ring; stop once the
  // current best k-th distance is below the next ring's minimum distance.
  using Cand = std::pair<double, uint64_t>;  // (dist_sq, id)
  std::priority_queue<Cand> best;            // max-heap of the k best
  int64_t pcx, pcy;
  CellCoords(p, &pcx, &pcy);
  for (int64_t ring = 0;; ++ring) {
    if (best.size() == k) {
      const double ring_min =
          (static_cast<double>(ring) - 1.0) * cell_size_;
      if (ring_min > 0.0 && best.top().first <= ring_min * ring_min) break;
    }
    bool any_cell_in_index = false;
    for (int64_t dx = -ring; dx <= ring; ++dx) {
      for (int64_t dy = -ring; dy <= ring; ++dy) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        auto it = cells_.find(KeyOf(pcx + dx, pcy + dy));
        if (it == cells_.end()) continue;
        any_cell_in_index = true;
        for (const Entry& e : it->second) {
          const double d = geometry::DistanceSq(e.p, p);
          if (best.size() < k) {
            best.emplace(d, e.id);
          } else if (d < best.top().first) {
            best.pop();
            best.emplace(d, e.id);
          }
        }
      }
    }
    (void)any_cell_in_index;
    // Termination guard: once we have k results and the ring has marched
    // past the farthest candidate we can stop; also stop when the ring is
    // absurdly large relative to the index extent.
    if (best.size() == k && ring > 0) {
      const double ring_min = static_cast<double>(ring) * cell_size_;
      if (best.top().first <= ring_min * ring_min) break;
    }
    if (ring > 1 && static_cast<size_t>(ring) > cells_.size() + 2 &&
        best.size() >= std::min(k, size_)) {
      break;
    }
  }
  out.resize(best.size());
  for (size_t i = out.size(); i-- > 0;) {
    out[i] = best.top().second;
    best.pop();
  }
  return out;
}

}  // namespace index
}  // namespace sidq

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {
namespace index {

// A uniform hash-grid index over 2-D points. Supports dynamic insert/remove,
// which the heavier trees do not need to; this is the workhorse index for
// streaming IoT feeds.
class GridIndex {
 public:
  explicit GridIndex(double cell_size);

  [[nodiscard]] double cell_size() const { return cell_size_; }
  [[nodiscard]] size_t size() const { return size_; }

  void Insert(uint64_t id, const geometry::Point& p);
  // Removes one entry with this id at (approximately) this point; returns
  // false if absent.
  bool Remove(uint64_t id, const geometry::Point& p);
  void Clear();

  // Ids of points inside `box` (inclusive).
  [[nodiscard]] std::vector<uint64_t> RangeQuery(const geometry::BBox& box) const;
  // Ids of points within `radius` of `center`.
  std::vector<uint64_t> RadiusQuery(const geometry::Point& center,
                                    double radius) const;
  // Ids of the k nearest points to `p` (fewer when the index is smaller),
  // ordered by increasing distance.
  [[nodiscard]] std::vector<uint64_t> Knn(const geometry::Point& p, size_t k) const;

 private:
  struct Entry {
    uint64_t id;
    geometry::Point p;
  };
  using CellKey = uint64_t;

  CellKey KeyOf(const geometry::Point& p) const;
  CellKey KeyOf(int64_t cx, int64_t cy) const;
  void CellCoords(const geometry::Point& p, int64_t* cx, int64_t* cy) const;

  double cell_size_;
  size_t size_ = 0;
  std::unordered_map<CellKey, std::vector<Entry>> cells_;
};

}  // namespace index
}  // namespace sidq

#include "index/kdtree.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace index {

KdTree::KdTree(std::vector<Item> items) : items_(std::move(items)) {
  if (!items_.empty()) {
    nodes_.reserve(2 * items_.size() / kLeafSize + 2);
    root_ = Build(0, static_cast<uint32_t>(items_.size()), 0);
  }
}

int32_t KdTree::Build(uint32_t begin, uint32_t end, int depth) {
  Node node;
  if (end - begin <= kLeafSize) {
    node.leaf = true;
    node.begin = begin;
    node.end = end;
    nodes_.push_back(node);
    return static_cast<int32_t>(nodes_.size()) - 1;
  }
  const uint8_t axis = static_cast<uint8_t>(depth % 2);
  const uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(items_.begin() + begin, items_.begin() + mid,
                   items_.begin() + end,
                   [axis](const Item& a, const Item& b) {
                     return axis == 0 ? a.p.x < b.p.x : a.p.y < b.p.y;
                   });
  node.axis = axis;
  node.split = axis == 0 ? items_[mid].p.x : items_[mid].p.y;
  const int32_t self = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  const int32_t left = Build(begin, mid, depth + 1);
  const int32_t right = Build(mid, end, depth + 1);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

void KdTree::KnnRecurse(
    int32_t node_idx, const geometry::Point& q, size_t k,
    std::vector<std::pair<double, uint64_t>>* heap) const {
  const Node& node = nodes_[node_idx];
  if (node.leaf) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      const double d = geometry::DistanceSq(items_[i].p, q);
      if (heap->size() < k) {
        heap->emplace_back(d, items_[i].id);
        std::push_heap(heap->begin(), heap->end());
      } else if (d < heap->front().first) {
        std::pop_heap(heap->begin(), heap->end());
        heap->back() = {d, items_[i].id};
        std::push_heap(heap->begin(), heap->end());
      }
    }
    return;
  }
  const double qv = node.axis == 0 ? q.x : q.y;
  const int32_t near = qv < node.split ? node.left : node.right;
  const int32_t far = qv < node.split ? node.right : node.left;
  KnnRecurse(near, q, k, heap);
  const double plane_d = qv - node.split;
  if (heap->size() < k || plane_d * plane_d < heap->front().first) {
    KnnRecurse(far, q, k, heap);
  }
}

std::vector<std::pair<uint64_t, double>> KdTree::KnnWithDistance(
    const geometry::Point& q, size_t k) const {
  std::vector<std::pair<uint64_t, double>> out;
  if (empty() || k == 0) return out;
  std::vector<std::pair<double, uint64_t>> heap;
  heap.reserve(k);
  KnnRecurse(root_, q, k, &heap);
  std::sort_heap(heap.begin(), heap.end());
  out.reserve(heap.size());
  for (const auto& [d, id] : heap) out.emplace_back(id, std::sqrt(d));
  return out;
}

std::vector<uint64_t> KdTree::Knn(const geometry::Point& q, size_t k) const {
  std::vector<uint64_t> out;
  for (const auto& [id, d] : KnnWithDistance(q, k)) out.push_back(id);
  return out;
}

void KdTree::RangeRecurse(int32_t node_idx, const geometry::BBox& box,
                          std::vector<uint64_t>* out) const {
  const Node& node = nodes_[node_idx];
  if (node.leaf) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      if (box.Contains(items_[i].p)) out->push_back(items_[i].id);
    }
    return;
  }
  const double lo = node.axis == 0 ? box.min_x : box.min_y;
  const double hi = node.axis == 0 ? box.max_x : box.max_y;
  if (lo < node.split) RangeRecurse(node.left, box, out);
  if (hi >= node.split) RangeRecurse(node.right, box, out);
}

std::vector<uint64_t> KdTree::RangeQuery(const geometry::BBox& box) const {
  std::vector<uint64_t> out;
  if (!empty() && !box.Empty()) RangeRecurse(root_, box, &out);
  return out;
}

std::vector<uint64_t> KdTree::RadiusQuery(const geometry::Point& center,
                                          double radius) const {
  const geometry::BBox box(center.x - radius, center.y - radius,
                           center.x + radius, center.y + radius);
  std::vector<uint64_t> out;
  const double r_sq = radius * radius;
  struct Filter {
    const KdTree* tree;
    const geometry::Point* c;
    double r_sq;
    std::vector<uint64_t>* out;
    void Recurse(int32_t node_idx, const geometry::BBox& box) {
      const Node& node = tree->nodes_[node_idx];
      if (node.leaf) {
        for (uint32_t i = node.begin; i < node.end; ++i) {
          if (geometry::DistanceSq(tree->items_[i].p, *c) <= r_sq) {
            out->push_back(tree->items_[i].id);
          }
        }
        return;
      }
      const double lo = node.axis == 0 ? box.min_x : box.min_y;
      const double hi = node.axis == 0 ? box.max_x : box.max_y;
      if (lo < node.split) Recurse(node.left, box);
      if (hi >= node.split) Recurse(node.right, box);
    }
  };
  if (!empty()) {
    Filter f{this, &center, r_sq, &out};
    f.Recurse(root_, box);
  }
  return out;
}

}  // namespace index
}  // namespace sidq

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "obs/metrics.h"
#include "store/format.h"

namespace sidq {
namespace store {

class BlockCache;

// -------------------------------------------------------------------------
// BlockCache: sharded LRU over CRC-verified decoded blocks, the RAM arm of
// the ≫-RAM scan path (DESIGN.md "Store v2"). Shaped after rippled's
// TaggedCache (beast/container): a fixed byte budget, entry pinning so a
// block being scanned can never be evicted under the reader, and
// deterministic per-shard LRU order.
//
// Invariants (pinned by the model-based property test in
// tests/store_cache_test.cc):
//   - UNPINNED resident bytes in a shard never exceed the shard budget
//     (capacity_bytes / shards) after any operation returns. Pinned bytes
//     may transiently exceed it -- a budget of one block must still be
//     able to pin the block currently under the scan cursor.
//   - A pinned entry is never evicted; eviction only consumes the LRU
//     list, which holds exactly the unpinned entries.
//   - hits/misses count Lookup outcomes exactly; inserts/evictions count
//     entry lifecycle exactly.
//
// Sharding is deterministic: ShardOf(KeyOf(segment, offset)) is a pure
// function, exposed so the reference model in the property test can
// mirror per-shard budgets bit-exactly.
//
// Thread safety: each shard is guarded by its own sidq::Mutex; entries
// are handed out as shared_ptrs, so an entry erased mid-pin (segment
// invalidation during compaction) stays alive until its last PinnedBlock
// drops.
// -------------------------------------------------------------------------

// RAII pin on a cached block. While alive, the block cannot be evicted
// and the pointer stays valid even if the entry is invalidated under it.
class PinnedBlock {
 public:
  PinnedBlock() = default;
  PinnedBlock(PinnedBlock&& other) noexcept { *this = std::move(other); }
  PinnedBlock& operator=(PinnedBlock&& other) noexcept;
  PinnedBlock(const PinnedBlock&) = delete;
  PinnedBlock& operator=(const PinnedBlock&) = delete;
  ~PinnedBlock() { Release(); }

  explicit operator bool() const { return block_ != nullptr; }
  const ColumnarBlock& operator*() const { return *block_; }
  const ColumnarBlock* operator->() const { return block_.get(); }
  [[nodiscard]] const ColumnarBlock* get() const { return block_.get(); }

  // Unpins early (idempotent).
  void Release();

 private:
  friend class BlockCache;
  friend class BlockReader;  // cache-less fallback pins (null cache_)
  PinnedBlock(BlockCache* cache, uint64_t key,
              std::shared_ptr<const ColumnarBlock> block)
      : cache_(cache), key_(key), block_(std::move(block)) {}

  BlockCache* cache_ = nullptr;
  uint64_t key_ = 0;
  std::shared_ptr<const ColumnarBlock> block_;
};

class BlockCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t resident_bytes = 0;  // pinned + unpinned
    uint64_t unpinned_bytes = 0;
    uint64_t resident_blocks = 0;
    uint64_t pinned_blocks = 0;
  };

  // capacity_bytes == 0 means unbounded (nothing is ever evicted); the
  // budget is split evenly across `shards` (>= 1). `obs` may be null --
  // metric handles degrade to no-ops.
  BlockCache(size_t capacity_bytes, size_t shards, obs::MetricsRegistry* obs);

  // (segment, offset) -> cache key. Segment files roll at tens of MiB, so
  // 40 offset bits (1 TiB) can never collide with the segment number.
  [[nodiscard]] static uint64_t KeyOf(uint32_t segment, uint64_t offset) {
    return (static_cast<uint64_t>(segment) << 40) | offset;
  }
  [[nodiscard]] static uint32_t SegmentOf(uint64_t key) {
    return static_cast<uint32_t>(key >> 40);
  }
  // Deterministic shard placement (exposed for the model test).
  [[nodiscard]] size_t ShardOf(uint64_t key) const;

  // Bytes an entry is charged for: the decoded columns plus fixed
  // bookkeeping overhead. Exposed so tests and budget flags can reason in
  // whole blocks.
  [[nodiscard]] static size_t ChargeOf(size_t rows) {
    return sizeof(ColumnarBlock) + rows * 48 + 64;
  }

  // Hit: pins the entry and returns it (counts one hit). Miss: returns a
  // null handle (counts one miss).
  [[nodiscard]] PinnedBlock Lookup(uint32_t segment, uint64_t offset);

  // Inserts a decoded block and returns it pinned. If the key is already
  // resident the existing entry is pinned and returned instead (neither a
  // hit nor a miss: Lookup already counted this key's miss).
  [[nodiscard]] PinnedBlock Insert(uint32_t segment, uint64_t offset,
                                   ColumnarBlock block);

  // Drops every resident entry of `segment` (compaction / truncation
  // invalidation). Pinned entries are unlinked immediately -- later
  // lookups miss -- and their memory is freed when the last pin drops.
  void EraseSegment(uint32_t segment);

  // Drops everything (same pinned-entry semantics as EraseSegment).
  void Clear();

  [[nodiscard]] Stats GetStats() const;
  [[nodiscard]] size_t capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] size_t shard_capacity_bytes() const { return shard_capacity_; }

 private:
  friend class PinnedBlock;

  struct Entry {
    std::shared_ptr<const ColumnarBlock> block;
    size_t charge = 0;
    uint32_t pins = 0;
    bool in_lru = false;
    std::list<uint64_t>::iterator lru_it;
  };

  struct Shard {
    mutable Mutex mu;
    // std::map, not unordered: eviction order must be a pure function of
    // the operation sequence, and invalidation walks the table.
    std::map<uint64_t, Entry> table SIDQ_GUARDED_BY(mu);
    // front = next eviction victim; holds exactly the unpinned entries.
    std::list<uint64_t> lru SIDQ_GUARDED_BY(mu);
    size_t resident_bytes SIDQ_GUARDED_BY(mu) = 0;
    size_t unpinned_bytes SIDQ_GUARDED_BY(mu) = 0;
    uint64_t hits SIDQ_GUARDED_BY(mu) = 0;
    uint64_t misses SIDQ_GUARDED_BY(mu) = 0;
    uint64_t inserts SIDQ_GUARDED_BY(mu) = 0;
    uint64_t evictions SIDQ_GUARDED_BY(mu) = 0;
  };

  void Unpin(uint64_t key);
  // Evicts LRU entries until the shard's unpinned bytes fit the budget.
  void EvictIfNeeded(Shard& shard) SIDQ_REQUIRES(shard.mu);
  // Unlinks one entry from table + LRU and updates accounting/metrics.
  void EraseLocked(Shard& shard, std::map<uint64_t, Entry>::iterator it,
                   bool count_as_eviction) SIDQ_REQUIRES(shard.mu);

  size_t capacity_bytes_;
  size_t shard_capacity_;  // capacity_bytes_ / shards (0 = unbounded)
  std::vector<std::unique_ptr<Shard>> shards_;

  obs::Counter hit_metric_;
  obs::Counter miss_metric_;
  obs::Counter insert_metric_;
  obs::Counter eviction_metric_;
  obs::Gauge resident_metric_;
};

}  // namespace store
}  // namespace sidq

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/status.h"
#include "core/statusor.h"
#include "store/block_cache.h"
#include "store/format.h"
#include "store/segment.h"
#include "store/vfs.h"

namespace sidq {
namespace store {

// -------------------------------------------------------------------------
// BlockReader: the bounded-memory segment read path. Every segment byte
// the store reads flows through positional RandomAccessFile handles (mmap
// on RealVfs) in block-sized chunks, feeding decoded blocks into the
// BlockCache -- peak read-path RSS is bounded by the cache budget plus
// one in-flight block, regardless of segment or dataset size. sidq-lint
// R16 bans whole-segment Vfs::ReadFile in src/store/ outside this file so
// the load-everything scan path cannot creep back.
//
// Defect parity: the bounded ladder reproduces ParseBlockAt's verdicts on
// a whole file byte-for-byte. A first read of the 16-byte header settles
// kShortHeader/kBadMagic/kBadVersion/kBadLength; the header's payload
// length then sizes the second read, so kShortPayload means the FILE is
// short, never that our read window was (the re-read rule the defect
// differential in tests/store_cache_test.cc pins).
//
// Invalidation contract: after any mutation of a segment file (tail
// truncation, orphan removal, compaction rename) the caller must
// Invalidate(segment) before the next read -- a stale mmap of a shrunk
// file is undefined, and cached decodes of rewritten offsets would be
// wrong. Externally synchronized, like the Store that owns it.
// -------------------------------------------------------------------------
class BlockReader {
 public:
  // How Read treats a segment that cannot be opened or read at all.
  enum class MissingPolicy {
    kError,   // propagate the I/O error (scan path: fail loudly)
    kDefect,  // verdict kShortHeader, as if the file were empty
              // (recovery path: quarantine, never abort)
  };

  // `vfs`/`cache` are borrowed; `cache` may be null (every read misses).
  BlockReader(const Vfs* vfs, std::string dir, BlockCache* cache);

  // Verified, cached read of a manifested block. On a cache hit the
  // decode is served as-is (it was verified on insert). On a miss the
  // block is read in bounded chunks, run through the defect ladder,
  // cross-checked against the entry (crc/length/row_count mismatch =>
  // kManifestMismatch), and inserted into the cache when clean. *defect
  // receives the verdict; *out is set only when the verdict is kNone.
  [[nodiscard]] Status Read(const BlockEntry& entry, MissingPolicy policy,
                            BlockDefect* defect, PinnedBlock* out);

  // Runs the defect ladder + manifest cross-check at entry.offset of an
  // arbitrary handle (no cache): recovery's compaction roll-forward
  // verifies NNNNNN.seg.cmp contents with this before renaming. `out`
  // may be null when only the verdict matters.
  [[nodiscard]] static Status VerifyAt(RandomAccessFile* file,
                                       std::string* scratch,
                                       const BlockEntry& entry,
                                       BlockDefect* defect,
                                       ColumnarBlock* out);

  // Streamed ScanSegment: walks self-describing blocks from
  // `start_offset`, calling `fn` for each valid block, stopping at the
  // first defect. Matches SegmentScan semantics (valid_bytes = offset of
  // the first unexplained byte; defect = what stopped the walk) without
  // materializing the segment.
  struct TailScanResult {
    uint64_t valid_bytes = 0;
    BlockDefect defect = BlockDefect::kNone;
  };
  [[nodiscard]] StatusOr<TailScanResult> TailScan(
      uint32_t segment, uint64_t start_offset, uint32_t start_index,
      const std::function<void(ScannedBlock&&)>& fn);

  // Verbatim bytes [offset, offset+length) of a segment, short at EOF
  // (compaction copies live blocks without re-encoding).
  [[nodiscard]] StatusOr<std::string> ReadRange(uint32_t segment,
                                                uint64_t offset,
                                                uint64_t length);

  [[nodiscard]] StatusOr<uint64_t> SegmentSize(uint32_t segment);

  // Drops the open handle and cached decodes of `segment`. Required after
  // truncate/remove/rewrite of the segment file.
  void Invalidate(uint32_t segment);
  void InvalidateAll();

  [[nodiscard]] BlockCache* cache() const { return cache_; }

 private:
  // Opens (or returns the cached) positional handle for a segment.
  [[nodiscard]] StatusOr<RandomAccessFile*> Handle(uint32_t segment);

  const Vfs* vfs_;
  std::string dir_;
  BlockCache* cache_;
  std::map<uint32_t, std::unique_ptr<RandomAccessFile>> handles_;
  std::string scratch_;  // reused bounded read buffer
};

}  // namespace store
}  // namespace sidq

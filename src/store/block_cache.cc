#include "store/block_cache.h"

#include <algorithm>
#include <utility>

namespace sidq {
namespace store {

namespace {

// SplitMix64: decorrelates the (segment << 40 | offset) key structure so
// consecutive blocks of one segment spread across shards instead of
// serializing on one mutex.
uint64_t ShardMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

PinnedBlock& PinnedBlock::operator=(PinnedBlock&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    key_ = other.key_;
    block_ = std::move(other.block_);
    other.cache_ = nullptr;
    other.block_.reset();
  }
  return *this;
}

void PinnedBlock::Release() {
  if (cache_ != nullptr && block_ != nullptr) {
    cache_->Unpin(key_);
  }
  cache_ = nullptr;
  block_.reset();
}

BlockCache::BlockCache(size_t capacity_bytes, size_t shards,
                       obs::MetricsRegistry* obs)
    : capacity_bytes_(capacity_bytes) {
  shards = std::max<size_t>(1, shards);
  shard_capacity_ =
      capacity_bytes_ == 0 ? 0 : std::max<size_t>(1, capacity_bytes_ / shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (obs != nullptr) {
    hit_metric_ = obs->counter("store.cache.hit");
    miss_metric_ = obs->counter("store.cache.miss");
    insert_metric_ = obs->counter("store.cache.insert");
    eviction_metric_ = obs->counter("store.cache.eviction");
    resident_metric_ = obs->gauge("store.cache.resident_bytes");
  }
}

size_t BlockCache::ShardOf(uint64_t key) const {
  return static_cast<size_t>(ShardMix(key) % shards_.size());
}

PinnedBlock BlockCache::Lookup(uint32_t segment, uint64_t offset) {
  const uint64_t key = KeyOf(segment, offset);
  Shard& sh = *shards_[ShardOf(key)];
  MutexLock lock(sh.mu);
  auto it = sh.table.find(key);
  if (it == sh.table.end()) {
    ++sh.misses;
    miss_metric_.Increment();
    return PinnedBlock();
  }
  ++sh.hits;
  hit_metric_.Increment();
  Entry& e = it->second;
  if (e.in_lru) {
    sh.lru.erase(e.lru_it);
    e.in_lru = false;
    sh.unpinned_bytes -= e.charge;
  }
  ++e.pins;
  return PinnedBlock(this, key, e.block);
}

PinnedBlock BlockCache::Insert(uint32_t segment, uint64_t offset,
                               ColumnarBlock block) {
  const uint64_t key = KeyOf(segment, offset);
  Shard& sh = *shards_[ShardOf(key)];
  MutexLock lock(sh.mu);
  auto it = sh.table.find(key);
  if (it != sh.table.end()) {
    // Raced with another reader decoding the same block: keep the
    // incumbent so existing pins stay coherent.
    Entry& e = it->second;
    if (e.in_lru) {
      sh.lru.erase(e.lru_it);
      e.in_lru = false;
      sh.unpinned_bytes -= e.charge;
    }
    ++e.pins;
    return PinnedBlock(this, key, e.block);
  }
  Entry e;
  e.charge = ChargeOf(block.size());
  e.block = std::make_shared<const ColumnarBlock>(std::move(block));
  e.pins = 1;
  e.in_lru = false;
  sh.resident_bytes += e.charge;
  ++sh.inserts;
  insert_metric_.Increment();
  resident_metric_.Add(static_cast<int64_t>(e.charge));
  auto inserted = sh.table.emplace(key, std::move(e)).first;
  EvictIfNeeded(sh);
  return PinnedBlock(this, key, inserted->second.block);
}

void BlockCache::Unpin(uint64_t key) {
  Shard& sh = *shards_[ShardOf(key)];
  MutexLock lock(sh.mu);
  auto it = sh.table.find(key);
  if (it == sh.table.end()) return;  // invalidated while pinned
  Entry& e = it->second;
  if (e.pins == 0) return;  // stale handle from a removed+reinserted key
  if (--e.pins == 0) {
    e.lru_it = sh.lru.insert(sh.lru.end(), key);
    e.in_lru = true;
    sh.unpinned_bytes += e.charge;
    EvictIfNeeded(sh);
  }
}

void BlockCache::EvictIfNeeded(Shard& shard) {
  if (shard_capacity_ == 0) return;  // unbounded
  while (shard.unpinned_bytes > shard_capacity_ && !shard.lru.empty()) {
    const uint64_t victim = shard.lru.front();
    auto it = shard.table.find(victim);
    EraseLocked(shard, it, /*count_as_eviction=*/true);
  }
}

void BlockCache::EraseLocked(Shard& shard,
                             std::map<uint64_t, Entry>::iterator it,
                             bool count_as_eviction) {
  Entry& e = it->second;
  if (e.in_lru) {
    shard.lru.erase(e.lru_it);
    shard.unpinned_bytes -= e.charge;
  }
  shard.resident_bytes -= e.charge;
  resident_metric_.Add(-static_cast<int64_t>(e.charge));
  if (count_as_eviction) {
    ++shard.evictions;
    eviction_metric_.Increment();
  }
  shard.table.erase(it);
}

void BlockCache::EraseSegment(uint32_t segment) {
  for (auto& shard : shards_) {
    Shard& sh = *shard;
    MutexLock lock(sh.mu);
    for (auto it = sh.table.begin(); it != sh.table.end();) {
      auto next = std::next(it);
      if (SegmentOf(it->first) == segment) {
        EraseLocked(sh, it, /*count_as_eviction=*/false);
      }
      it = next;
    }
  }
}

void BlockCache::Clear() {
  for (auto& shard : shards_) {
    Shard& sh = *shard;
    MutexLock lock(sh.mu);
    for (auto it = sh.table.begin(); it != sh.table.end();) {
      auto next = std::next(it);
      EraseLocked(sh, it, /*count_as_eviction=*/false);
      it = next;
    }
  }
}

BlockCache::Stats BlockCache::GetStats() const {
  Stats out;
  for (const auto& shard : shards_) {
    const Shard& sh = *shard;
    MutexLock lock(sh.mu);
    out.hits += sh.hits;
    out.misses += sh.misses;
    out.inserts += sh.inserts;
    out.evictions += sh.evictions;
    out.resident_bytes += sh.resident_bytes;
    out.unpinned_bytes += sh.unpinned_bytes;
    out.resident_blocks += sh.table.size();
    for (const auto& [key, e] : sh.table) {
      (void)key;
      if (e.pins > 0) ++out.pinned_blocks;
    }
  }
  return out;
}

}  // namespace store
}  // namespace sidq

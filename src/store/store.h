#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/statusor.h"
#include "core/stid.h"
#include "core/types.h"
#include "obs/observer.h"
#include "store/block_cache.h"
#include "store/block_reader.h"
#include "store/format.h"
#include "store/segment.h"
#include "store/vfs.h"
#include "stream/quarantine.h"

namespace sidq {
namespace store {

struct StoreOptions {
  // Records per sealed block. Small blocks bound the blast radius of one
  // corrupt CRC; large blocks amortize header overhead.
  size_t block_records = 256;
  // Blocks per segment file before rolling to the next NNNNNN.seg.
  size_t segment_target_blocks = 64;
  // Thematic field name stamped into the manifest (a recovered store's
  // manifest wins over this).
  std::string field_name = "stid";
  // Byte budget of the decoded-block cache backing the scan path; peak
  // read RSS is bounded by this, not by the dataset (0 = unbounded).
  size_t cache_bytes = 64ull << 20;
  // LRU shards the budget is split across (clamped to >= 1).
  size_t cache_shards = 8;
  // Optional metrics/trace sinks (store.* counters, store open/commit
  // instants). Null sinks drop the signals.
  obs::ObsSinks obs;
};

// What one Compact() pass rewrote. Compaction drops quarantined blocks'
// bytes from rolled segments while keeping their verdicts (tombstoned
// with offset/length 0) so row-id gaps and per-sensor loss accounting
// survive -- quality metadata travels with the data, it is not laundered
// away by maintenance.
struct CompactionReport {
  uint32_t segments_compacted = 0;
  uint64_t blocks_rewritten = 0;  // live blocks copied verbatim
  uint64_t blocks_dropped = 0;    // quarantined blocks tombstoned
  uint64_t bytes_reclaimed = 0;
  uint64_t manifest_gen = 0;  // generation that committed the pass
};

// Per-trajectory recovery quality: how many of a sensor's rows survived
// and how many sit in quarantined blocks. This is the "quality metadata
// travels with the data" annotation -- a consumer can tell a complete
// trajectory from a degraded one without forensics.
struct SensorQuality {
  uint64_t rows_recovered = 0;
  uint64_t rows_lost = 0;
  [[nodiscard]] bool complete() const { return rows_lost == 0; }
};

// What Store::Open found and did. Every defect is itemized: recovery
// degrades to serve-what's-readable but never silently drops.
struct RecoveryReport {
  uint64_t manifest_gen = 0;       // generation served (0 = fresh store)
  bool current_valid = false;      // CURRENT pointed at a verifiable manifest
  uint32_t chain_links_verified = 0;  // prev-gen links that checksum-match
  bool chain_intact = true;        // false when a surviving link mismatched
  uint64_t blocks_verified = 0;    // manifested blocks that passed CRC
  uint64_t tail_blocks_recovered = 0;  // valid blocks beyond the manifest
  uint64_t rows_recovered = 0;     // rows servable after recovery
  uint64_t rows_lost = 0;          // rows in quarantined blocks
  bool tail_truncated = false;     // a torn append was cut off
  uint32_t tail_segment = 0;       // segment that was truncated
  uint64_t tail_bytes_discarded = 0;
  BlockDefect tail_defect = BlockDefect::kNone;
  uint32_t orphan_segments_removed = 0;  // segments beyond a torn point
  std::vector<QuarantinedBlockEntry> quarantined;  // every dead block
  std::map<SensorId, SensorQuality> sensor_quality;

  // One-line human summary ("clean" or what was lost and why).
  [[nodiscard]] std::string Summary() const;
};

// -------------------------------------------------------------------------
// Store: append-optimized durable storage for STID records.
//
// Write path: Append buffers records into an in-memory columnar block;
// full blocks are sealed (CRC'd, appended to the current segment file);
// Commit seals the partial block, fsyncs segment data, then publishes a
// new manifest generation via AtomicWriteFile and repoints CURRENT --
// data is always durable on media before any manifest references it, so
// a crash never yields a manifest pointing at missing bytes.
//
// Read path: Scan replays every readable row in global append order with
// its stable row id (row ids never shift; quarantined blocks leave gaps).
// Uncommitted-but-written blocks and the open in-memory block are
// included, so a Scan immediately after Append sees everything.
//
// Open runs recovery unconditionally; see RecoveryReport. Reopening a
// recovered store without writing is read-only -- no files are created
// or modified except a tail truncation cutting a torn append.
//
// Thread model: externally synchronized (single logical writer), like the
// stream engine. No internal locks.
// -------------------------------------------------------------------------
class Store {
 public:
  // Opens (creating if absent) the store in `dir`, running recovery.
  // `vfs` may be null for DefaultVfs(). Fails only when the directory is
  // unusable or I/O fails during recovery itself -- corrupt contents are
  // a report, not an error.
  static StatusOr<std::unique_ptr<Store>> Open(Vfs* vfs, std::string dir,
                                               StoreOptions options = {});

  // Public so Open() can std::make_unique; use Open(), which validates
  // options and runs recovery before handing the store out.
  Store(Vfs* vfs, std::string dir, StoreOptions options);

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  [[nodiscard]] Status Append(const StRecord& rec);
  // Seals the open block, fsyncs segment data, publishes the next
  // manifest generation. No-op when nothing changed since the last
  // commit.
  [[nodiscard]] Status Commit();
  // Commit + close the segment writer. The destructor does NOT commit:
  // dropping a store loses uncommitted appends, exactly like a crash.
  [[nodiscard]] Status Close();

  // Deterministic maintenance pass: rewrites every rolled segment that
  // holds quarantined bytes, dropping the dead blocks and tombstoning
  // their verdicts, then commits a new manifest generation and completes
  // each rewrite with an atomic rename. Crash-safe at every I/O op:
  // recovery serves either the pre- or the post-compaction generation
  // bit-identically (the NNNNNN.seg.cmp roll-forward in Recover()
  // finishes or discards interrupted renames). The active tail segment is
  // never touched. After a non-crash I/O error the in-memory state may be
  // ahead of disk -- reopen the store, as with any mid-scan DataLoss.
  [[nodiscard]] Status Compact(CompactionReport* report);

  // Calls `fn(row_id, record)` for every readable row in row-id order.
  [[nodiscard]] Status Scan(
      const std::function<void(uint64_t, const StRecord&)>& fn) const;

  [[nodiscard]] const RecoveryReport& recovery() const { return recovery_; }
  [[nodiscard]] uint64_t manifest_gen() const { return manifest_gen_; }
  // Total rows ever appended, including rows lost to quarantine.
  [[nodiscard]] uint64_t rows() const { return next_row_; }
  [[nodiscard]] uint64_t rows_readable() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const std::string& field_name() const { return field_name_; }
  // Segment files 0..num_segments-1 exist (what the next manifest says).
  [[nodiscard]] uint32_t num_segments() const { return ComputeNumSegments(); }
  [[nodiscard]] BlockCache::Stats cache_stats() const {
    return cache_->GetStats();
  }

  // Surfaces recovery verdicts into a stream-side quarantine ledger
  // (reasons kStoreCorruptBlock / kStoreTornTail), seq = first lost row.
  void AppendQuarantineTo(stream::QuarantineLedger* ledger) const;

 private:
  [[nodiscard]] Status Recover();
  [[nodiscard]] Status RollForwardCompaction(const Manifest& manifest,
                                             bool have_manifest,
                                             const std::string& name);
  [[nodiscard]] Status EnsureWriter();
  [[nodiscard]] Status SealOpenBlock();
  // Serializes + atomically publishes manifest gen+1 from the current
  // in-memory state (the commit tail shared by Commit and Compact).
  [[nodiscard]] Status PublishManifest();
  [[nodiscard]] uint32_t ComputeNumSegments() const;
  [[nodiscard]] Status ScanEntries(
      const std::vector<BlockEntry>& entries,
      const std::function<void(uint64_t, const StRecord&)>& fn) const;
  void CountRecovered(const BlockEntry& entry);
  void Quarantine(QuarantinedBlockEntry q);

  Vfs* vfs_;
  std::string dir_;
  StoreOptions options_;
  std::string field_name_;

  // Out-of-core read path: decoded-block cache + bounded segment reader
  // (mutable: Scan() is logically const but warms the cache and rotates
  // read handles; the store is externally synchronized).
  std::unique_ptr<BlockCache> cache_;
  mutable std::unique_ptr<BlockReader> reader_;

  // Committed state (mirrors the live manifest).
  std::vector<BlockEntry> committed_;
  std::vector<QuarantinedBlockEntry> quarantined_;
  uint64_t manifest_gen_ = 0;
  uint32_t manifest_crc_ = 0;

  // Uncommitted state.
  // Set when recovery changed what the next manifest must say (tail
  // blocks adopted, new quarantines, truncation) even with no new appends.
  bool dirty_ = false;
  std::vector<BlockEntry> pending_;  // sealed + written, not yet manifested
  ColumnarBlock open_block_;         // in-memory, not yet sealed
  uint64_t open_row_start_ = 0;
  uint64_t next_row_ = 0;

  // Current segment append position.
  std::unique_ptr<SegmentWriter> writer_;  // lazily opened
  uint32_t current_segment_ = 0;
  uint64_t segment_size_ = 0;    // valid bytes in current segment
  uint32_t segment_blocks_ = 0;  // blocks in current segment

  RecoveryReport recovery_;
};

}  // namespace store
}  // namespace sidq

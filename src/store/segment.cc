#include "store/segment.h"

#include <cstring>
#include <utility>

namespace sidq {
namespace store {

StatusOr<std::unique_ptr<SegmentWriter>> SegmentWriter::Open(
    Vfs* vfs, const std::string& dir, uint32_t segment,
    uint64_t existing_size, uint32_t existing_blocks) {
  const std::string path = dir + "/" + SegmentFileName(segment);
  SIDQ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        vfs->NewWritableFile(path, WriteMode::kAppend));
  return std::make_unique<SegmentWriter>(std::move(file), segment,
                                         existing_size, existing_blocks);
}

Status SegmentWriter::AppendBlock(const ColumnarBlock& block,
                                  BlockEntry* entry) {
  const std::string encoded = EncodeBlock(block);
  entry->segment = segment_;
  entry->index = num_blocks_;
  entry->offset = offset_;
  entry->length = encoded.size();
  // The self-CRC sits in header bytes [12, 16); recording it in the
  // manifest too lets recovery cross-check block against manifest.
  std::memcpy(&entry->crc, encoded.data() + 12, sizeof(entry->crc));
  SIDQ_RETURN_IF_ERROR(file_->Append(encoded));
  offset_ += encoded.size();
  ++num_blocks_;
  return Status::OK();
}

SegmentScan ScanSegment(std::string_view data, uint64_t start_offset,
                        uint32_t start_index) {
  SegmentScan scan;
  scan.valid_bytes = start_offset;
  uint64_t offset = start_offset;
  uint32_t index = start_index;
  while (offset < data.size()) {
    ParsedBlock parsed = ParseBlockAt(data, offset);
    if (parsed.defect != BlockDefect::kNone) {
      scan.defect = parsed.defect;
      return scan;
    }
    ScannedBlock b;
    b.index = index++;
    b.offset = offset;
    b.length = parsed.bytes_consumed;
    b.crc = parsed.crc;
    b.block = std::move(parsed.block);
    offset += parsed.bytes_consumed;
    scan.valid_bytes = offset;
    scan.blocks.push_back(std::move(b));
  }
  return scan;
}

}  // namespace store
}  // namespace sidq

#include "store/store.h"

#include <algorithm>
#include <set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sidq {
namespace store {

namespace {

// Per-sensor row counts of a block, sensor-ascending (std::map order).
std::vector<std::pair<SensorId, uint32_t>> SensorRowsOf(
    const ColumnarBlock& block) {
  std::map<SensorId, uint32_t> counts;
  for (SensorId s : block.sensor) ++counts[s];
  return {counts.begin(), counts.end()};
}

// The commit CRC of a serialized manifest covers every byte before the
// trailing commit line; recomputing it here avoids re-parsing what we
// just serialized.
uint32_t CommitCrcOf(const std::string& serialized) {
  const size_t pos = serialized.rfind("commit ");
  return Crc32c(serialized.data(), pos);
}

}  // namespace

std::string RecoveryReport::Summary() const {
  if (!tail_truncated && quarantined.empty() && chain_intact) {
    return "clean: gen " + std::to_string(manifest_gen) + ", " +
           std::to_string(blocks_verified) + " blocks verified, " +
           std::to_string(rows_recovered) + " rows";
  }
  std::string out = "degraded: gen " + std::to_string(manifest_gen) + ", " +
                    std::to_string(rows_recovered) + " rows recovered, " +
                    std::to_string(rows_lost) + " lost in " +
                    std::to_string(quarantined.size()) +
                    " quarantined block(s)";
  if (tail_truncated) {
    out += ", torn tail cut at segment " + std::to_string(tail_segment) +
           " (" + std::to_string(tail_bytes_discarded) + " bytes, " +
           BlockDefectName(tail_defect) + ")";
  }
  if (!chain_intact) out += ", manifest chain broken";
  return out;
}

Store::Store(Vfs* vfs, std::string dir, StoreOptions options)
    : vfs_(vfs), dir_(std::move(dir)), options_(std::move(options)) {
  cache_ = std::make_unique<BlockCache>(options_.cache_bytes,
                                        options_.cache_shards,
                                        options_.obs.metrics);
  reader_ = std::make_unique<BlockReader>(vfs_, dir_, cache_.get());
}

StatusOr<std::unique_ptr<Store>> Store::Open(Vfs* vfs, std::string dir,
                                             StoreOptions options) {
  if (vfs == nullptr) vfs = DefaultVfs();
  if (options.block_records == 0 || options.segment_target_blocks == 0) {
    return Status::InvalidArgument(
        "block_records and segment_target_blocks must be positive");
  }
  auto store =
      std::make_unique<Store>(vfs, std::move(dir), std::move(options));
  SIDQ_RETURN_IF_ERROR(store->Recover());
  if (obs::MetricsRegistry* m = store->options_.obs.metrics) {
    const RecoveryReport& r = store->recovery_;
    m->counter("store.recovery.blocks_verified")
        .Increment(static_cast<int64_t>(r.blocks_verified));
    m->counter("store.recovery.blocks_quarantined")
        .Increment(static_cast<int64_t>(r.quarantined.size()));
    m->counter("store.recovery.rows_recovered")
        .Increment(static_cast<int64_t>(r.rows_recovered));
    m->counter("store.recovery.rows_lost")
        .Increment(static_cast<int64_t>(r.rows_lost));
    if (r.tail_truncated) m->counter("store.recovery.torn_tail").Increment();
  }
  if (obs::Tracer* t = store->options_.obs.tracer) {
    t->Instant(obs::kProcessKey, "store.open", "store", nullptr,
               store->recovery_.Summary());
  }
  return store;
}

Status Store::Recover() {
  SIDQ_RETURN_IF_ERROR(vfs_->CreateDir(dir_));
  std::vector<std::string> names;
  {
    StatusOr<std::vector<std::string>> listing = vfs_->ListDir(dir_);
    if (listing.ok()) {
      names = std::move(listing).value();
    } else if (listing.status().code() != StatusCode::kNotFound) {
      return listing.status();
    }
  }
  std::vector<uint64_t> manifest_gens;
  std::vector<uint32_t> disk_segments;
  std::vector<std::string> compaction_temps;  // NNNNNN.seg.cmp
  for (const std::string& name : names) {
    uint64_t gen = 0;
    uint32_t seg = 0;
    if (ParseManifestFileName(name, &gen)) {
      manifest_gens.push_back(gen);
    } else if (ParseSegmentFileName(name, &seg)) {
      disk_segments.push_back(seg);
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".cmp") == 0 &&
               ParseSegmentFileName(name.substr(0, name.size() - 4), &seg)) {
      compaction_temps.push_back(name);
    }
    // Anything else (CURRENT, stray *.tmp from an interrupted atomic
    // publish) is not data.
  }
  std::sort(manifest_gens.begin(), manifest_gens.end());
  std::sort(disk_segments.begin(), disk_segments.end());

  auto load_manifest = [&](uint64_t gen) -> StatusOr<ParsedManifest> {
    SIDQ_ASSIGN_OR_RETURN(
        std::string text,
        // sidq: allow-raw-read(manifests are small bounded control files)
        vfs_->ReadFile(dir_ + "/" + ManifestFileName(gen)));
    SIDQ_ASSIGN_OR_RETURN(ParsedManifest parsed, ParseManifest(text));
    if (parsed.manifest.gen != gen) {
      return Status::DataLoss("manifest " + ManifestFileName(gen) +
                              " claims gen " +
                              std::to_string(parsed.manifest.gen));
    }
    return parsed;
  };

  // 1. Choose the manifest: CURRENT first, falling back to the highest
  //    generation that passes its own commit CRC.
  Manifest manifest;
  bool have_manifest = false;
  const std::string current_path = dir_ + "/" + kCurrentFileName;
  if (vfs_->Exists(current_path)) {
    StatusOr<std::string> current =
        // sidq: allow-raw-read(CURRENT is a one-line control file)
        vfs_->ReadFile(current_path);
    if (current.ok()) {
      uint64_t gen = 0;
      uint32_t crc = 0;
      if (ParseCurrent(*current, &gen, &crc).ok()) {
        StatusOr<ParsedManifest> parsed = load_manifest(gen);
        if (parsed.ok() && parsed->commit_crc == crc) {
          manifest = std::move(parsed->manifest);
          manifest_gen_ = gen;
          manifest_crc_ = crc;
          have_manifest = true;
          recovery_.current_valid = true;
        }
      }
    }
  }
  if (!have_manifest) {
    for (auto it = manifest_gens.rbegin(); it != manifest_gens.rend(); ++it) {
      StatusOr<ParsedManifest> parsed = load_manifest(*it);
      if (parsed.ok()) {
        manifest = std::move(parsed->manifest);
        manifest_gen_ = *it;
        manifest_crc_ = parsed->commit_crc;
        have_manifest = true;
        break;
      }
    }
  }
  recovery_.manifest_gen = manifest_gen_;

  // 2. Verify the generation chain backwards over surviving manifests.
  if (have_manifest) {
    uint64_t prev_gen = manifest.prev_gen;
    uint32_t prev_crc = manifest.prev_crc;
    while (prev_gen != 0) {
      if (!std::binary_search(manifest_gens.begin(), manifest_gens.end(),
                              prev_gen)) {
        break;  // predecessors may legitimately be gone
      }
      StatusOr<ParsedManifest> parsed = load_manifest(prev_gen);
      if (!parsed.ok() || parsed->commit_crc != prev_crc) {
        recovery_.chain_intact = false;
        break;
      }
      ++recovery_.chain_links_verified;
      prev_gen = parsed->manifest.prev_gen;
      prev_crc = parsed->manifest.prev_crc;
    }
  }

  // 2.5 Compaction roll-forward. A crash between a compaction's manifest
  //     commit and its segment rename leaves NNNNNN.seg.cmp beside a
  //     stale NNNNNN.seg whose layout the chosen manifest no longer
  //     describes. When every live entry the chosen manifest holds for
  //     that segment verifies against the .cmp bytes, the rename is
  //     completed here; any other .cmp is a dead intermediate of an
  //     uncommitted pass and is removed. Either way recovery then serves
  //     exactly one committed generation -- never a blend.
  for (const std::string& name : compaction_temps) {
    SIDQ_RETURN_IF_ERROR(RollForwardCompaction(manifest, have_manifest, name));
  }

  field_name_ = have_manifest ? manifest.field_name : options_.field_name;
  next_row_ = manifest.rows;

  // Per-segment accounting: bytes and blocks the manifest explains, so the
  // tail scan knows where unexplained bytes begin.
  std::map<uint32_t, std::pair<uint64_t, uint32_t>> accounted;  // end, blocks
  auto account = [&](uint32_t segment, uint64_t offset, uint64_t length,
                     uint32_t index) {
    auto& [end, blocks] = accounted[segment];
    end = std::max(end, offset + length);
    blocks = std::max(blocks, index + 1);
  };

  // 3. Carried quarantine verdicts stay visible across reopens.
  for (const QuarantinedBlockEntry& q : manifest.quarantined) {
    account(q.segment, q.offset, q.length, q.index);
    Quarantine(q);
  }

  // 4. CRC-verify every manifested block against both its self-checksum
  //    and its manifest entry; defects are quarantined, never dropped.
  //    Bounded reads through the block reader: verified decodes land in
  //    the cache (budget-evicted), so recovery RSS stays flat on stores
  //    far larger than RAM. A missing/unreadable segment verdicts as
  //    short-header, exactly like the empty file it effectively is.
  for (const BlockEntry& entry : manifest.blocks) {
    account(entry.segment, entry.offset, entry.length, entry.index);
    BlockDefect defect = BlockDefect::kNone;
    PinnedBlock block;
    SIDQ_RETURN_IF_ERROR(reader_->Read(
        entry, BlockReader::MissingPolicy::kDefect, &defect, &block));
    if (defect == BlockDefect::kNone) {
      committed_.push_back(entry);
      CountRecovered(entry);
      ++recovery_.blocks_verified;
    } else {
      QuarantinedBlockEntry q;
      q.segment = entry.segment;
      q.index = entry.index;
      q.defect = defect;
      q.offset = entry.offset;
      q.length = entry.length;
      q.row_start = entry.row_start;
      q.row_count = entry.row_count;
      q.sensor_rows = entry.sensor_rows;
      Quarantine(std::move(q));
      dirty_ = true;
    }
  }

  // 5. Tail scan: segments at or past the last manifested one may hold
  //    blocks appended after the last commit. They are self-describing;
  //    recover them until the first defect, cut the torn tail there, and
  //    drop (with a report) any segment past a torn point -- its row ids
  //    would be unknowable.
  uint32_t first_tail_segment = 0;
  if (have_manifest && manifest.num_segments > 0) {
    first_tail_segment = manifest.num_segments - 1;
  }
  bool torn = false;
  for (uint32_t segment : disk_segments) {
    if (segment < first_tail_segment) continue;
    const std::string path = dir_ + "/" + SegmentFileName(segment);
    if (torn) {
      SIDQ_RETURN_IF_ERROR(vfs_->Remove(path));
      reader_->Invalidate(segment);
      ++recovery_.orphan_segments_removed;
      dirty_ = true;
      continue;
    }
    StatusOr<uint64_t> size_or = reader_->SegmentSize(segment);
    if (!size_or.ok()) continue;  // vanished under us: nothing to adopt
    const uint64_t size = *size_or;
    const auto [start, start_index] = accounted[segment];
    if (start > size) continue;  // already quarantined as short
    // Streamed ScanSegment: adopted blocks are decoded one at a time, so
    // even a never-committed store recovers in bounded memory.
    SIDQ_ASSIGN_OR_RETURN(
        BlockReader::TailScanResult scan,
        reader_->TailScan(segment, start, start_index, [&](ScannedBlock&& b) {
          BlockEntry entry;
          entry.segment = segment;
          entry.index = b.index;
          entry.offset = b.offset;
          entry.length = b.length;
          entry.crc = b.crc;
          entry.row_start = next_row_;
          entry.row_count = static_cast<uint32_t>(b.block.size());
          entry.sensor_rows = SensorRowsOf(b.block);
          next_row_ += entry.row_count;
          account(segment, entry.offset, entry.length, entry.index);
          committed_.push_back(entry);
          CountRecovered(entry);
          ++recovery_.tail_blocks_recovered;
          dirty_ = true;
        }));
    if (scan.defect != BlockDefect::kNone && scan.valid_bytes < size) {
      SIDQ_RETURN_IF_ERROR(vfs_->Truncate(path, scan.valid_bytes));
      reader_->Invalidate(segment);
      recovery_.tail_truncated = true;
      recovery_.tail_segment = segment;
      recovery_.tail_bytes_discarded = size - scan.valid_bytes;
      recovery_.tail_defect = scan.defect;
      torn = true;
      dirty_ = true;
    }
  }

  // 6. Position the (lazily opened) writer after the last explained byte.
  if (!accounted.empty()) {
    const auto& [segment, state] = *accounted.rbegin();
    current_segment_ = segment;
    segment_size_ = state.first;
    segment_blocks_ = state.second;
    if (recovery_.tail_truncated && recovery_.tail_segment == segment) {
      // The truncation cut below the accounted end when a manifested
      // block near the tail was itself the defect; trust the file.
      StatusOr<uint64_t> size =
          vfs_->FileSize(dir_ + "/" + SegmentFileName(segment));
      if (size.ok()) segment_size_ = std::min(segment_size_, *size);
    }
    if (segment_blocks_ >= options_.segment_target_blocks) {
      ++current_segment_;
      segment_size_ = 0;
      segment_blocks_ = 0;
    }
  }
  open_row_start_ = next_row_;
  return Status::OK();
}

Status Store::RollForwardCompaction(const Manifest& manifest,
                                    bool have_manifest,
                                    const std::string& name) {
  const std::string cmp_path = dir_ + "/" + name;
  uint32_t seg = 0;
  if (!ParseSegmentFileName(name.substr(0, name.size() - 4), &seg)) {
    return Status::Internal("unparseable compaction temp " + name);
  }
  bool adopt = false;
  // Adoption needs the chosen manifest to actually describe the .cmp
  // layout: a committed generation, a rolled (never-tail) segment it still
  // references, and every live block entry verifying byte-for-byte
  // against the temp. The pre-compaction generation fails the verify
  // (offsets moved), so a crash before the manifest commit rolls back.
  if (have_manifest && manifest.num_segments > 0 &&
      seg < manifest.num_segments - 1) {
    bool referenced = false;
    for (const QuarantinedBlockEntry& q : manifest.quarantined) {
      if (q.segment == seg) {
        referenced = true;
        break;
      }
    }
    for (const BlockEntry& b : manifest.blocks) {
      if (b.segment == seg) {
        referenced = true;
        break;
      }
    }
    if (referenced) {
      StatusOr<std::unique_ptr<RandomAccessFile>> file =
          vfs_->NewRandomAccessFile(cmp_path);
      if (file.ok()) {
        adopt = true;
        std::string scratch;
        for (const BlockEntry& b : manifest.blocks) {
          if (b.segment != seg) continue;
          BlockDefect defect = BlockDefect::kNone;
          const Status st =
              BlockReader::VerifyAt(file->get(), &scratch, b, &defect,
                                    /*out=*/nullptr);
          if (!st.ok() || defect != BlockDefect::kNone) {
            adopt = false;
            break;
          }
        }
      }
    }
  }
  if (adopt) {
    SIDQ_RETURN_IF_ERROR(
        vfs_->Rename(cmp_path, dir_ + "/" + SegmentFileName(seg)));
    SIDQ_RETURN_IF_ERROR(vfs_->SyncDir(dir_));
    reader_->Invalidate(seg);
  } else {
    SIDQ_RETURN_IF_ERROR(vfs_->Remove(cmp_path));
    SIDQ_RETURN_IF_ERROR(vfs_->SyncDir(dir_));
  }
  return Status::OK();
}

void Store::CountRecovered(const BlockEntry& entry) {
  recovery_.rows_recovered += entry.row_count;
  for (const auto& [sensor, count] : entry.sensor_rows) {
    recovery_.sensor_quality[sensor].rows_recovered += count;
  }
}

void Store::Quarantine(QuarantinedBlockEntry q) {
  recovery_.rows_lost += q.row_count;
  for (const auto& [sensor, count] : q.sensor_rows) {
    recovery_.sensor_quality[sensor].rows_lost += count;
  }
  recovery_.quarantined.push_back(q);
  quarantined_.push_back(std::move(q));
}

Status Store::EnsureWriter() {
  if (writer_ != nullptr) return Status::OK();
  SIDQ_ASSIGN_OR_RETURN(
      writer_, SegmentWriter::Open(vfs_, dir_, current_segment_,
                                   segment_size_, segment_blocks_));
  return Status::OK();
}

Status Store::Append(const StRecord& rec) {
  open_block_.Add(rec);
  ++next_row_;
  if (obs::MetricsRegistry* m = options_.obs.metrics) {
    m->counter("store.append.records").Increment();
  }
  if (open_block_.size() >= options_.block_records) {
    return SealOpenBlock();
  }
  return Status::OK();
}

Status Store::SealOpenBlock() {
  if (open_block_.empty()) return Status::OK();
  SIDQ_RETURN_IF_ERROR(EnsureWriter());
  BlockEntry entry;
  SIDQ_RETURN_IF_ERROR(writer_->AppendBlock(open_block_, &entry));
  entry.row_start = open_row_start_;
  entry.row_count = static_cast<uint32_t>(open_block_.size());
  entry.sensor_rows = SensorRowsOf(open_block_);
  if (obs::MetricsRegistry* m = options_.obs.metrics) {
    m->counter("store.append.blocks").Increment();
    m->counter("store.append.bytes")
        .Increment(static_cast<int64_t>(entry.length));
  }
  pending_.push_back(std::move(entry));
  segment_size_ = writer_->offset();
  segment_blocks_ = writer_->num_blocks();
  open_row_start_ = next_row_;
  open_block_.Clear();
  if (segment_blocks_ >= options_.segment_target_blocks) {
    SIDQ_RETURN_IF_ERROR(writer_->Sync());
    SIDQ_RETURN_IF_ERROR(writer_->Close());
    writer_.reset();
    ++current_segment_;
    segment_size_ = 0;
    segment_blocks_ = 0;
  }
  return Status::OK();
}

uint32_t Store::ComputeNumSegments() const {
  uint32_t n = 0;
  for (const BlockEntry& b : committed_) n = std::max(n, b.segment + 1);
  for (const BlockEntry& b : pending_) n = std::max(n, b.segment + 1);
  for (const QuarantinedBlockEntry& q : quarantined_) {
    n = std::max(n, q.segment + 1);
  }
  if (writer_ != nullptr || segment_blocks_ > 0) {
    n = std::max(n, current_segment_ + 1);
  }
  return n;
}

Status Store::Commit() {
  SIDQ_RETURN_IF_ERROR(SealOpenBlock());
  if (pending_.empty() && !dirty_ && manifest_gen_ > 0) {
    return Status::OK();  // nothing new since the last commit
  }
  // Data before metadata: every byte a manifest references must be
  // durable before the manifest exists. Rolled segments were synced at
  // roll time; only the live writer still has volatile bytes.
  if (writer_ != nullptr) {
    SIDQ_RETURN_IF_ERROR(writer_->Sync());
  }
  return PublishManifest();
}

Status Store::PublishManifest() {
  Manifest m;
  m.gen = manifest_gen_ + 1;
  m.prev_gen = manifest_gen_;
  m.prev_crc = manifest_crc_;
  m.field_name = field_name_;
  m.rows = next_row_;
  m.blocks = committed_;
  m.blocks.insert(m.blocks.end(), pending_.begin(), pending_.end());
  m.quarantined = quarantined_;
  m.num_segments = ComputeNumSegments();
  const std::string serialized = SerializeManifest(m);
  const uint32_t crc = CommitCrcOf(serialized);
  // The manifest publish and the CURRENT repoint are each atomic; a crash
  // between them leaves CURRENT at the old generation and the new
  // manifest as a benign orphan the next commit overwrites.
  SIDQ_RETURN_IF_ERROR(AtomicWriteFile(
      vfs_, dir_ + "/" + ManifestFileName(m.gen), serialized));
  SIDQ_RETURN_IF_ERROR(AtomicWriteFile(vfs_, dir_ + "/" + kCurrentFileName,
                                       SerializeCurrent(m.gen, crc)));
  committed_.insert(committed_.end(),
                    std::make_move_iterator(pending_.begin()),
                    std::make_move_iterator(pending_.end()));
  pending_.clear();
  manifest_gen_ = m.gen;
  manifest_crc_ = crc;
  dirty_ = false;
  if (obs::MetricsRegistry* metrics = options_.obs.metrics) {
    metrics->counter("store.commit.manifests").Increment();
  }
  if (obs::Tracer* t = options_.obs.tracer) {
    t->Instant(obs::kProcessKey, "store.commit", "store", nullptr,
               "gen=" + std::to_string(manifest_gen_) +
                   " blocks=" + std::to_string(committed_.size()) +
                   " rows=" + std::to_string(next_row_));
  }
  return Status::OK();
}

Status Store::Compact(CompactionReport* report) {
  CompactionReport local;
  // Seal and publish everything pending first: compaction rewrites only
  // committed state, and the pre-compaction generation must be complete
  // on disk so a crash anywhere in the pass recovers it exactly.
  SIDQ_RETURN_IF_ERROR(Commit());
  local.manifest_gen = manifest_gen_;

  // Eligible: rolled segments holding quarantined bytes. The active tail
  // segment (highest-numbered) is never rewritten -- recovery's tail-scan
  // and adoption rules own it, and rewriting it would race the writer.
  const uint32_t num_segments = ComputeNumSegments();
  const uint32_t first_tail = num_segments == 0 ? 0 : num_segments - 1;
  std::set<uint32_t> targets;
  for (const QuarantinedBlockEntry& q : quarantined_) {
    if (q.length > 0 && q.segment < first_tail) targets.insert(q.segment);
  }
  if (targets.empty()) {
    if (report != nullptr) *report = local;
    return Status::OK();
  }

  // Phase 1: write each replacement NNNNNN.seg.cmp -- live blocks copied
  // verbatim in row order -- and make the temps durable. Nothing the live
  // manifest references is touched, so a crash anywhere in this phase
  // leaves dead temps that recovery's roll-forward check removes.
  std::vector<std::pair<size_t, uint64_t>> relocations;  // index, new offset
  for (uint32_t seg : targets) {
    SIDQ_ASSIGN_OR_RETURN(uint64_t old_size, reader_->SegmentSize(seg));
    SIDQ_ASSIGN_OR_RETURN(
        std::unique_ptr<WritableFile> out,
        vfs_->NewWritableFile(dir_ + "/" + SegmentFileName(seg) + ".cmp",
                              WriteMode::kTruncate));
    uint64_t new_offset = 0;
    for (size_t i = 0; i < committed_.size(); ++i) {
      const BlockEntry& entry = committed_[i];
      if (entry.segment != seg) continue;
      SIDQ_ASSIGN_OR_RETURN(
          std::string bytes,
          reader_->ReadRange(seg, entry.offset, entry.length));
      if (bytes.size() != entry.length) {
        return Status::DataLoss(SegmentFileName(seg) +
                                " truncated under compaction; reopen the "
                                "store to recover");
      }
      SIDQ_RETURN_IF_ERROR(out->Append(bytes));
      relocations.emplace_back(i, new_offset);
      new_offset += entry.length;
      ++local.blocks_rewritten;
    }
    SIDQ_RETURN_IF_ERROR(out->Sync());
    SIDQ_RETURN_IF_ERROR(out->Close());
    ++local.segments_compacted;
    local.bytes_reclaimed += old_size - new_offset;
  }
  SIDQ_RETURN_IF_ERROR(vfs_->SyncDir(dir_));

  // Phase 2: commit the post-compaction layout. Live entries take their
  // .cmp offsets; dropped quarantines become zero-length tombstones (the
  // verdict, row-id gap, and per-sensor loss survive -- only the bytes
  // go). Recovery from a crash before this publish serves the
  // pre-compaction generation; from one after it, the roll-forward
  // completes any rename below that didn't happen.
  for (const auto& [index, new_offset] : relocations) {
    committed_[index].offset = new_offset;
  }
  for (QuarantinedBlockEntry& q : quarantined_) {
    if (q.length > 0 && targets.count(q.segment) != 0) {
      q.offset = 0;
      q.length = 0;
      ++local.blocks_dropped;
    }
  }
  dirty_ = true;
  SIDQ_RETURN_IF_ERROR(PublishManifest());
  local.manifest_gen = manifest_gen_;

  // Phase 3: complete each rewrite with an atomic rename, then drop every
  // stale handle and cached decode of the rewritten segments.
  for (uint32_t seg : targets) {
    SIDQ_RETURN_IF_ERROR(
        vfs_->Rename(dir_ + "/" + SegmentFileName(seg) + ".cmp",
                     dir_ + "/" + SegmentFileName(seg)));
    reader_->Invalidate(seg);
  }
  SIDQ_RETURN_IF_ERROR(vfs_->SyncDir(dir_));

  if (obs::MetricsRegistry* m = options_.obs.metrics) {
    m->counter("store.compaction.passes").Increment();
    m->counter("store.compaction.segments")
        .Increment(static_cast<int64_t>(local.segments_compacted));
    m->counter("store.compaction.blocks_dropped")
        .Increment(static_cast<int64_t>(local.blocks_dropped));
    m->counter("store.compaction.bytes_reclaimed")
        .Increment(static_cast<int64_t>(local.bytes_reclaimed));
  }
  if (obs::Tracer* t = options_.obs.tracer) {
    t->Instant(obs::kProcessKey, "store.compact", "store", nullptr,
               "segments=" + std::to_string(local.segments_compacted) +
                   " dropped=" + std::to_string(local.blocks_dropped) +
                   " reclaimed=" + std::to_string(local.bytes_reclaimed) +
                   " gen=" + std::to_string(local.manifest_gen));
  }
  if (report != nullptr) *report = local;
  return Status::OK();
}

Status Store::Close() {
  SIDQ_RETURN_IF_ERROR(Commit());
  if (writer_ != nullptr) {
    SIDQ_RETURN_IF_ERROR(writer_->Close());
    writer_.reset();
  }
  return Status::OK();
}

Status Store::ScanEntries(
    const std::vector<BlockEntry>& entries,
    const std::function<void(uint64_t, const StRecord&)>& fn) const {
  // Every block flows through the bounded reader: a cache hit costs no
  // I/O, a miss reads exactly one block, and peak RSS is capped by the
  // cache budget plus the block under the cursor (which stays pinned for
  // the duration of its rows).
  for (const BlockEntry& entry : entries) {
    BlockDefect defect = BlockDefect::kNone;
    PinnedBlock block;
    SIDQ_RETURN_IF_ERROR(reader_->Read(
        entry, BlockReader::MissingPolicy::kError, &defect, &block));
    if (defect != BlockDefect::kNone) {
      return Status::DataLoss(
          "block " + std::to_string(entry.index) + " in " +
          SegmentFileName(entry.segment) + " failed verification mid-scan (" +
          BlockDefectName(defect) + "); reopen the store to recover");
    }
    for (size_t i = 0; i < block->size(); ++i) {
      fn(entry.row_start + i, block->Record(i));
    }
  }
  return Status::OK();
}

Status Store::Scan(
    const std::function<void(uint64_t, const StRecord&)>& fn) const {
  // committed_ and pending_ are each row-ordered, and every pending row
  // id is greater than every committed one.
  SIDQ_RETURN_IF_ERROR(ScanEntries(committed_, fn));
  SIDQ_RETURN_IF_ERROR(ScanEntries(pending_, fn));
  for (size_t i = 0; i < open_block_.size(); ++i) {
    fn(open_row_start_ + i, open_block_.Record(i));
  }
  return Status::OK();
}

uint64_t Store::rows_readable() const {
  uint64_t rows = open_block_.size();
  for (const BlockEntry& b : committed_) rows += b.row_count;
  for (const BlockEntry& b : pending_) rows += b.row_count;
  return rows;
}

void Store::AppendQuarantineTo(stream::QuarantineLedger* ledger) const {
  for (const QuarantinedBlockEntry& q : recovery_.quarantined) {
    stream::QuarantineEntry entry;
    entry.seq = q.row_start;
    entry.sensor = kInvalidSensorId;
    entry.reason = stream::QuarantineReason::kStoreCorruptBlock;
    ledger->Add(entry);
  }
  if (recovery_.tail_truncated) {
    stream::QuarantineEntry entry;
    // The first row id that could have been lost to the torn tail: all
    // accounted rows are either recovered or quarantined above.
    entry.seq = recovery_.rows_recovered + recovery_.rows_lost;
    entry.sensor = kInvalidSensorId;
    entry.reason = stream::QuarantineReason::kStoreTornTail;
    ledger->Add(entry);
  }
}

}  // namespace store
}  // namespace sidq

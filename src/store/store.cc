#include "store/store.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sidq {
namespace store {

namespace {

// Per-sensor row counts of a block, sensor-ascending (std::map order).
std::vector<std::pair<SensorId, uint32_t>> SensorRowsOf(
    const ColumnarBlock& block) {
  std::map<SensorId, uint32_t> counts;
  for (SensorId s : block.sensor) ++counts[s];
  return {counts.begin(), counts.end()};
}

// The commit CRC of a serialized manifest covers every byte before the
// trailing commit line; recomputing it here avoids re-parsing what we
// just serialized.
uint32_t CommitCrcOf(const std::string& serialized) {
  const size_t pos = serialized.rfind("commit ");
  return Crc32c(serialized.data(), pos);
}

}  // namespace

std::string RecoveryReport::Summary() const {
  if (!tail_truncated && quarantined.empty() && chain_intact) {
    return "clean: gen " + std::to_string(manifest_gen) + ", " +
           std::to_string(blocks_verified) + " blocks verified, " +
           std::to_string(rows_recovered) + " rows";
  }
  std::string out = "degraded: gen " + std::to_string(manifest_gen) + ", " +
                    std::to_string(rows_recovered) + " rows recovered, " +
                    std::to_string(rows_lost) + " lost in " +
                    std::to_string(quarantined.size()) +
                    " quarantined block(s)";
  if (tail_truncated) {
    out += ", torn tail cut at segment " + std::to_string(tail_segment) +
           " (" + std::to_string(tail_bytes_discarded) + " bytes, " +
           BlockDefectName(tail_defect) + ")";
  }
  if (!chain_intact) out += ", manifest chain broken";
  return out;
}

Store::Store(Vfs* vfs, std::string dir, StoreOptions options)
    : vfs_(vfs), dir_(std::move(dir)), options_(std::move(options)) {}

StatusOr<std::unique_ptr<Store>> Store::Open(Vfs* vfs, std::string dir,
                                             StoreOptions options) {
  if (vfs == nullptr) vfs = DefaultVfs();
  if (options.block_records == 0 || options.segment_target_blocks == 0) {
    return Status::InvalidArgument(
        "block_records and segment_target_blocks must be positive");
  }
  auto store =
      std::make_unique<Store>(vfs, std::move(dir), std::move(options));
  SIDQ_RETURN_IF_ERROR(store->Recover());
  if (obs::MetricsRegistry* m = store->options_.obs.metrics) {
    const RecoveryReport& r = store->recovery_;
    m->counter("store.recovery.blocks_verified")
        .Increment(static_cast<int64_t>(r.blocks_verified));
    m->counter("store.recovery.blocks_quarantined")
        .Increment(static_cast<int64_t>(r.quarantined.size()));
    m->counter("store.recovery.rows_recovered")
        .Increment(static_cast<int64_t>(r.rows_recovered));
    m->counter("store.recovery.rows_lost")
        .Increment(static_cast<int64_t>(r.rows_lost));
    if (r.tail_truncated) m->counter("store.recovery.torn_tail").Increment();
  }
  if (obs::Tracer* t = store->options_.obs.tracer) {
    t->Instant(obs::kProcessKey, "store.open", "store", nullptr,
               store->recovery_.Summary());
  }
  return store;
}

Status Store::Recover() {
  SIDQ_RETURN_IF_ERROR(vfs_->CreateDir(dir_));
  std::vector<std::string> names;
  {
    StatusOr<std::vector<std::string>> listing = vfs_->ListDir(dir_);
    if (listing.ok()) {
      names = std::move(listing).value();
    } else if (listing.status().code() != StatusCode::kNotFound) {
      return listing.status();
    }
  }
  std::vector<uint64_t> manifest_gens;
  std::vector<uint32_t> disk_segments;
  for (const std::string& name : names) {
    uint64_t gen = 0;
    uint32_t seg = 0;
    if (ParseManifestFileName(name, &gen)) {
      manifest_gens.push_back(gen);
    } else if (ParseSegmentFileName(name, &seg)) {
      disk_segments.push_back(seg);
    }
    // Anything else (CURRENT, stray *.tmp from an interrupted atomic
    // publish) is not data.
  }
  std::sort(manifest_gens.begin(), manifest_gens.end());
  std::sort(disk_segments.begin(), disk_segments.end());

  auto load_manifest = [&](uint64_t gen) -> StatusOr<ParsedManifest> {
    SIDQ_ASSIGN_OR_RETURN(
        std::string text,
        vfs_->ReadFile(dir_ + "/" + ManifestFileName(gen)));
    SIDQ_ASSIGN_OR_RETURN(ParsedManifest parsed, ParseManifest(text));
    if (parsed.manifest.gen != gen) {
      return Status::DataLoss("manifest " + ManifestFileName(gen) +
                              " claims gen " +
                              std::to_string(parsed.manifest.gen));
    }
    return parsed;
  };

  // 1. Choose the manifest: CURRENT first, falling back to the highest
  //    generation that passes its own commit CRC.
  Manifest manifest;
  bool have_manifest = false;
  const std::string current_path = dir_ + "/" + kCurrentFileName;
  if (vfs_->Exists(current_path)) {
    StatusOr<std::string> current = vfs_->ReadFile(current_path);
    if (current.ok()) {
      uint64_t gen = 0;
      uint32_t crc = 0;
      if (ParseCurrent(*current, &gen, &crc).ok()) {
        StatusOr<ParsedManifest> parsed = load_manifest(gen);
        if (parsed.ok() && parsed->commit_crc == crc) {
          manifest = std::move(parsed->manifest);
          manifest_gen_ = gen;
          manifest_crc_ = crc;
          have_manifest = true;
          recovery_.current_valid = true;
        }
      }
    }
  }
  if (!have_manifest) {
    for (auto it = manifest_gens.rbegin(); it != manifest_gens.rend(); ++it) {
      StatusOr<ParsedManifest> parsed = load_manifest(*it);
      if (parsed.ok()) {
        manifest = std::move(parsed->manifest);
        manifest_gen_ = *it;
        manifest_crc_ = parsed->commit_crc;
        have_manifest = true;
        break;
      }
    }
  }
  recovery_.manifest_gen = manifest_gen_;

  // 2. Verify the generation chain backwards over surviving manifests.
  if (have_manifest) {
    uint64_t prev_gen = manifest.prev_gen;
    uint32_t prev_crc = manifest.prev_crc;
    while (prev_gen != 0) {
      if (!std::binary_search(manifest_gens.begin(), manifest_gens.end(),
                              prev_gen)) {
        break;  // predecessors may legitimately be gone
      }
      StatusOr<ParsedManifest> parsed = load_manifest(prev_gen);
      if (!parsed.ok() || parsed->commit_crc != prev_crc) {
        recovery_.chain_intact = false;
        break;
      }
      ++recovery_.chain_links_verified;
      prev_gen = parsed->manifest.prev_gen;
      prev_crc = parsed->manifest.prev_crc;
    }
  }

  field_name_ = have_manifest ? manifest.field_name : options_.field_name;
  next_row_ = manifest.rows;

  // Per-segment accounting: bytes and blocks the manifest explains, so the
  // tail scan knows where unexplained bytes begin.
  std::map<uint32_t, std::pair<uint64_t, uint32_t>> accounted;  // end, blocks
  auto account = [&](uint32_t segment, uint64_t offset, uint64_t length,
                     uint32_t index) {
    auto& [end, blocks] = accounted[segment];
    end = std::max(end, offset + length);
    blocks = std::max(blocks, index + 1);
  };

  // 3. Carried quarantine verdicts stay visible across reopens.
  for (const QuarantinedBlockEntry& q : manifest.quarantined) {
    account(q.segment, q.offset, q.length, q.index);
    Quarantine(q);
  }

  // 4. CRC-verify every manifested block against both its self-checksum
  //    and its manifest entry; defects are quarantined, never dropped.
  std::map<uint32_t, std::string> segment_data;
  auto load_segment = [&](uint32_t segment) -> const std::string& {
    auto it = segment_data.find(segment);
    if (it == segment_data.end()) {
      StatusOr<std::string> data =
          vfs_->ReadFile(dir_ + "/" + SegmentFileName(segment));
      // A missing segment reads as empty: every block in it fails with
      // short-header, which is the right verdict.
      it = segment_data
               .emplace(segment, data.ok() ? std::move(data).value() : "")
               .first;
    }
    return it->second;
  };
  for (const BlockEntry& entry : manifest.blocks) {
    account(entry.segment, entry.offset, entry.length, entry.index);
    const std::string& data = load_segment(entry.segment);
    ParsedBlock parsed = ParseBlockAt(data, entry.offset);
    BlockDefect defect = parsed.defect;
    if (defect == BlockDefect::kNone &&
        (parsed.crc != entry.crc || parsed.bytes_consumed != entry.length ||
         parsed.block.size() != entry.row_count)) {
      defect = BlockDefect::kManifestMismatch;
    }
    if (defect == BlockDefect::kNone) {
      committed_.push_back(entry);
      CountRecovered(entry);
      ++recovery_.blocks_verified;
    } else {
      QuarantinedBlockEntry q;
      q.segment = entry.segment;
      q.index = entry.index;
      q.defect = defect;
      q.offset = entry.offset;
      q.length = entry.length;
      q.row_start = entry.row_start;
      q.row_count = entry.row_count;
      q.sensor_rows = entry.sensor_rows;
      Quarantine(std::move(q));
      dirty_ = true;
    }
  }

  // 5. Tail scan: segments at or past the last manifested one may hold
  //    blocks appended after the last commit. They are self-describing;
  //    recover them until the first defect, cut the torn tail there, and
  //    drop (with a report) any segment past a torn point -- its row ids
  //    would be unknowable.
  uint32_t first_tail_segment = 0;
  if (have_manifest && manifest.num_segments > 0) {
    first_tail_segment = manifest.num_segments - 1;
  }
  bool torn = false;
  for (uint32_t segment : disk_segments) {
    if (segment < first_tail_segment) continue;
    const std::string path = dir_ + "/" + SegmentFileName(segment);
    if (torn) {
      SIDQ_RETURN_IF_ERROR(vfs_->Remove(path));
      ++recovery_.orphan_segments_removed;
      dirty_ = true;
      continue;
    }
    const std::string& data = load_segment(segment);
    const auto [start, start_index] = accounted[segment];
    if (start > data.size()) continue;  // already quarantined as short
    SegmentScan scan = ScanSegment(data, start, start_index);
    for (ScannedBlock& b : scan.blocks) {
      BlockEntry entry;
      entry.segment = segment;
      entry.index = b.index;
      entry.offset = b.offset;
      entry.length = b.length;
      entry.crc = b.crc;
      entry.row_start = next_row_;
      entry.row_count = static_cast<uint32_t>(b.block.size());
      entry.sensor_rows = SensorRowsOf(b.block);
      next_row_ += entry.row_count;
      account(segment, entry.offset, entry.length, entry.index);
      committed_.push_back(entry);
      CountRecovered(entry);
      ++recovery_.tail_blocks_recovered;
      dirty_ = true;
    }
    if (scan.defect != BlockDefect::kNone && scan.valid_bytes < data.size()) {
      SIDQ_RETURN_IF_ERROR(vfs_->Truncate(path, scan.valid_bytes));
      recovery_.tail_truncated = true;
      recovery_.tail_segment = segment;
      recovery_.tail_bytes_discarded = data.size() - scan.valid_bytes;
      recovery_.tail_defect = scan.defect;
      torn = true;
      dirty_ = true;
    }
  }

  // 6. Position the (lazily opened) writer after the last explained byte.
  if (!accounted.empty()) {
    const auto& [segment, state] = *accounted.rbegin();
    current_segment_ = segment;
    segment_size_ = state.first;
    segment_blocks_ = state.second;
    if (recovery_.tail_truncated && recovery_.tail_segment == segment) {
      // The truncation cut below the accounted end when a manifested
      // block near the tail was itself the defect; trust the file.
      StatusOr<uint64_t> size =
          vfs_->FileSize(dir_ + "/" + SegmentFileName(segment));
      if (size.ok()) segment_size_ = std::min(segment_size_, *size);
    }
    if (segment_blocks_ >= options_.segment_target_blocks) {
      ++current_segment_;
      segment_size_ = 0;
      segment_blocks_ = 0;
    }
  }
  open_row_start_ = next_row_;
  return Status::OK();
}

void Store::CountRecovered(const BlockEntry& entry) {
  recovery_.rows_recovered += entry.row_count;
  for (const auto& [sensor, count] : entry.sensor_rows) {
    recovery_.sensor_quality[sensor].rows_recovered += count;
  }
}

void Store::Quarantine(QuarantinedBlockEntry q) {
  recovery_.rows_lost += q.row_count;
  for (const auto& [sensor, count] : q.sensor_rows) {
    recovery_.sensor_quality[sensor].rows_lost += count;
  }
  recovery_.quarantined.push_back(q);
  quarantined_.push_back(std::move(q));
}

Status Store::EnsureWriter() {
  if (writer_ != nullptr) return Status::OK();
  SIDQ_ASSIGN_OR_RETURN(
      writer_, SegmentWriter::Open(vfs_, dir_, current_segment_,
                                   segment_size_, segment_blocks_));
  return Status::OK();
}

Status Store::Append(const StRecord& rec) {
  open_block_.Add(rec);
  ++next_row_;
  if (obs::MetricsRegistry* m = options_.obs.metrics) {
    m->counter("store.append.records").Increment();
  }
  if (open_block_.size() >= options_.block_records) {
    return SealOpenBlock();
  }
  return Status::OK();
}

Status Store::SealOpenBlock() {
  if (open_block_.empty()) return Status::OK();
  SIDQ_RETURN_IF_ERROR(EnsureWriter());
  BlockEntry entry;
  SIDQ_RETURN_IF_ERROR(writer_->AppendBlock(open_block_, &entry));
  entry.row_start = open_row_start_;
  entry.row_count = static_cast<uint32_t>(open_block_.size());
  entry.sensor_rows = SensorRowsOf(open_block_);
  if (obs::MetricsRegistry* m = options_.obs.metrics) {
    m->counter("store.append.blocks").Increment();
    m->counter("store.append.bytes")
        .Increment(static_cast<int64_t>(entry.length));
  }
  pending_.push_back(std::move(entry));
  segment_size_ = writer_->offset();
  segment_blocks_ = writer_->num_blocks();
  open_row_start_ = next_row_;
  open_block_.Clear();
  if (segment_blocks_ >= options_.segment_target_blocks) {
    SIDQ_RETURN_IF_ERROR(writer_->Sync());
    SIDQ_RETURN_IF_ERROR(writer_->Close());
    writer_.reset();
    ++current_segment_;
    segment_size_ = 0;
    segment_blocks_ = 0;
  }
  return Status::OK();
}

Status Store::Commit() {
  SIDQ_RETURN_IF_ERROR(SealOpenBlock());
  if (pending_.empty() && !dirty_ && manifest_gen_ > 0) {
    return Status::OK();  // nothing new since the last commit
  }
  // Data before metadata: every byte a manifest references must be
  // durable before the manifest exists. Rolled segments were synced at
  // roll time; only the live writer still has volatile bytes.
  if (writer_ != nullptr) {
    SIDQ_RETURN_IF_ERROR(writer_->Sync());
  }
  Manifest m;
  m.gen = manifest_gen_ + 1;
  m.prev_gen = manifest_gen_;
  m.prev_crc = manifest_crc_;
  m.field_name = field_name_;
  m.rows = next_row_;
  m.blocks = committed_;
  m.blocks.insert(m.blocks.end(), pending_.begin(), pending_.end());
  m.quarantined = quarantined_;
  for (const BlockEntry& b : m.blocks) {
    m.num_segments = std::max(m.num_segments, b.segment + 1);
  }
  for (const QuarantinedBlockEntry& q : m.quarantined) {
    m.num_segments = std::max(m.num_segments, q.segment + 1);
  }
  if (writer_ != nullptr || segment_blocks_ > 0) {
    m.num_segments = std::max(m.num_segments, current_segment_ + 1);
  }
  const std::string serialized = SerializeManifest(m);
  const uint32_t crc = CommitCrcOf(serialized);
  // The manifest publish and the CURRENT repoint are each atomic; a crash
  // between them leaves CURRENT at the old generation and the new
  // manifest as a benign orphan the next commit overwrites.
  SIDQ_RETURN_IF_ERROR(AtomicWriteFile(
      vfs_, dir_ + "/" + ManifestFileName(m.gen), serialized));
  SIDQ_RETURN_IF_ERROR(AtomicWriteFile(vfs_, dir_ + "/" + kCurrentFileName,
                                       SerializeCurrent(m.gen, crc)));
  committed_.insert(committed_.end(),
                    std::make_move_iterator(pending_.begin()),
                    std::make_move_iterator(pending_.end()));
  pending_.clear();
  manifest_gen_ = m.gen;
  manifest_crc_ = crc;
  dirty_ = false;
  if (obs::MetricsRegistry* metrics = options_.obs.metrics) {
    metrics->counter("store.commit.manifests").Increment();
  }
  if (obs::Tracer* t = options_.obs.tracer) {
    t->Instant(obs::kProcessKey, "store.commit", "store", nullptr,
               "gen=" + std::to_string(manifest_gen_) +
                   " blocks=" + std::to_string(committed_.size()) +
                   " rows=" + std::to_string(next_row_));
  }
  return Status::OK();
}

Status Store::Close() {
  SIDQ_RETURN_IF_ERROR(Commit());
  if (writer_ != nullptr) {
    SIDQ_RETURN_IF_ERROR(writer_->Close());
    writer_.reset();
  }
  return Status::OK();
}

Status Store::ScanEntries(
    const std::vector<BlockEntry>& entries,
    const std::function<void(uint64_t, const StRecord&)>& fn) const {
  uint32_t loaded_segment = 0;
  bool loaded = false;
  std::string data;
  for (const BlockEntry& entry : entries) {
    if (!loaded || entry.segment != loaded_segment) {
      SIDQ_ASSIGN_OR_RETURN(
          data, vfs_->ReadFile(dir_ + "/" + SegmentFileName(entry.segment)));
      loaded_segment = entry.segment;
      loaded = true;
    }
    ParsedBlock parsed = ParseBlockAt(data, entry.offset);
    if (parsed.defect != BlockDefect::kNone ||
        parsed.block.size() != entry.row_count) {
      return Status::DataLoss(
          "block " + std::to_string(entry.index) + " in " +
          SegmentFileName(entry.segment) + " failed verification mid-scan (" +
          BlockDefectName(parsed.defect) + "); reopen the store to recover");
    }
    for (size_t i = 0; i < parsed.block.size(); ++i) {
      fn(entry.row_start + i, parsed.block.Record(i));
    }
  }
  return Status::OK();
}

Status Store::Scan(
    const std::function<void(uint64_t, const StRecord&)>& fn) const {
  // committed_ and pending_ are each row-ordered, and every pending row
  // id is greater than every committed one.
  SIDQ_RETURN_IF_ERROR(ScanEntries(committed_, fn));
  SIDQ_RETURN_IF_ERROR(ScanEntries(pending_, fn));
  for (size_t i = 0; i < open_block_.size(); ++i) {
    fn(open_row_start_ + i, open_block_.Record(i));
  }
  return Status::OK();
}

uint64_t Store::rows_readable() const {
  uint64_t rows = open_block_.size();
  for (const BlockEntry& b : committed_) rows += b.row_count;
  for (const BlockEntry& b : pending_) rows += b.row_count;
  return rows;
}

void Store::AppendQuarantineTo(stream::QuarantineLedger* ledger) const {
  for (const QuarantinedBlockEntry& q : recovery_.quarantined) {
    stream::QuarantineEntry entry;
    entry.seq = q.row_start;
    entry.sensor = kInvalidSensorId;
    entry.reason = stream::QuarantineReason::kStoreCorruptBlock;
    ledger->Add(entry);
  }
  if (recovery_.tail_truncated) {
    stream::QuarantineEntry entry;
    // The first row id that could have been lost to the torn tail: all
    // accounted rows are either recovered or quarantined above.
    entry.seq = recovery_.rows_recovered + recovery_.rows_lost;
    entry.sensor = kInvalidSensorId;
    entry.reason = stream::QuarantineReason::kStoreTornTail;
    ledger->Add(entry);
  }
}

}  // namespace store
}  // namespace sidq

#include "store/format.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace sidq {
namespace store {

static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "store format assumes little-endian host layout");

namespace {

// Reflected Castagnoli polynomial (same bitstream as SSE4.2 crc32).
constexpr uint32_t kCrc32cPoly = 0x82f63b78u;

const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc & 1u) ? (crc >> 1) ^ kCrc32cPoly : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n) {
  const uint32_t* table = Crc32cTable();
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ static_cast<uint8_t>(data[i])) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

template <typename T>
void AppendRaw(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void AppendColumn(std::string* out, const std::vector<T>& column) {
  out->append(reinterpret_cast<const char*>(column.data()),
              column.size() * sizeof(T));
}

template <typename T>
void ReadColumn(const char* src, size_t n, std::vector<T>* column) {
  column->resize(n);
  std::memcpy(column->data(), src, n * sizeof(T));
}

// Per-record payload bytes: sensor u64 + t i64 + four doubles.
constexpr size_t kRowBytes = sizeof(SensorId) + sizeof(Timestamp) +
                             4 * sizeof(double);

bool ParseU64(std::istringstream* in, uint64_t* out) {
  std::string tok;
  if (!(*in >> tok)) return false;
  char* end = nullptr;
  errno = 0;
  *out = std::strtoull(tok.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0' && !tok.empty();
}

bool ParseHex32(std::istringstream* in, uint32_t* out) {
  std::string tok;
  if (!(*in >> tok)) return false;
  char* end = nullptr;
  errno = 0;
  const uint64_t v = std::strtoull(tok.c_str(), &end, 16);
  if (errno != 0 || end == nullptr || *end != '\0' || tok.empty() ||
      v > 0xffffffffull) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

std::string Hex32(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

void AppendSensorRows(
    std::string* out,
    const std::vector<std::pair<SensorId, uint32_t>>& sensor_rows) {
  out->push_back(' ');
  out->append(std::to_string(sensor_rows.size()));
  for (const auto& [sensor, count] : sensor_rows) {
    out->push_back(' ');
    out->append(std::to_string(sensor));
    out->push_back(' ');
    out->append(std::to_string(count));
  }
}

bool ParseSensorRows(std::istringstream* in,
                     std::vector<std::pair<SensorId, uint32_t>>* out) {
  uint64_t n = 0;
  if (!ParseU64(in, &n) || n > (1u << 20)) return false;
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t sensor = 0, count = 0;
    if (!ParseU64(in, &sensor) || !ParseU64(in, &count) ||
        count > 0xffffffffull) {
      return false;
    }
    out->emplace_back(static_cast<SensorId>(sensor),
                      static_cast<uint32_t>(count));
  }
  return true;
}

}  // namespace

uint32_t Crc32c(const char* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

const char* BlockDefectName(BlockDefect defect) {
  switch (defect) {
    case BlockDefect::kNone:
      return "none";
    case BlockDefect::kShortHeader:
      return "short-header";
    case BlockDefect::kBadMagic:
      return "bad-magic";
    case BlockDefect::kBadVersion:
      return "bad-version";
    case BlockDefect::kBadLength:
      return "bad-length";
    case BlockDefect::kShortPayload:
      return "short-payload";
    case BlockDefect::kBadCrc:
      return "bad-crc";
    case BlockDefect::kBadPayload:
      return "bad-payload";
    case BlockDefect::kManifestMismatch:
      return "manifest-mismatch";
  }
  return "unknown";
}

std::string EncodeBlock(const ColumnarBlock& block) {
  std::string payload;
  const uint32_t n = static_cast<uint32_t>(block.size());
  payload.reserve(sizeof(uint32_t) + n * kRowBytes);
  AppendRaw(&payload, n);
  AppendColumn(&payload, block.sensor);
  AppendColumn(&payload, block.t);
  AppendColumn(&payload, block.x);
  AppendColumn(&payload, block.y);
  AppendColumn(&payload, block.value);
  AppendColumn(&payload, block.stddev);

  // Header: magic | version | type | reserved | payload_len | crc. The CRC
  // covers the header fields after the magic (minus itself) plus the
  // payload, so a flipped length bit fails verification just like flipped
  // data.
  std::string header;
  header.reserve(kBlockHeaderSize);
  header.append(kBlockMagic, sizeof(kBlockMagic));
  AppendRaw(&header, kFormatVersion);
  AppendRaw(&header, kBlockTypeColumnar);
  AppendRaw(&header, static_cast<uint16_t>(0));
  AppendRaw(&header, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32cExtend(0, header.data() + 4, 8);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  AppendRaw(&header, crc);
  return header + payload;
}

ParsedBlock ParseBlockAt(std::string_view segment, uint64_t offset) {
  ParsedBlock out;
  if (offset > segment.size() ||
      segment.size() - offset < kBlockHeaderSize) {
    out.defect = BlockDefect::kShortHeader;
    return out;
  }
  const char* header = segment.data() + offset;
  if (std::memcmp(header, kBlockMagic, sizeof(kBlockMagic)) != 0) {
    out.defect = BlockDefect::kBadMagic;
    return out;
  }
  const uint8_t version = static_cast<uint8_t>(header[4]);
  const uint8_t type = static_cast<uint8_t>(header[5]);
  if (version != kFormatVersion || type != kBlockTypeColumnar) {
    out.defect = BlockDefect::kBadVersion;
    return out;
  }
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, header + 8, sizeof(payload_len));
  if (payload_len > kMaxBlockPayload) {
    out.defect = BlockDefect::kBadLength;
    return out;
  }
  std::memcpy(&out.crc, header + 12, sizeof(out.crc));
  if (segment.size() - offset - kBlockHeaderSize < payload_len) {
    out.defect = BlockDefect::kShortPayload;
    return out;
  }
  out.bytes_consumed = kBlockHeaderSize + payload_len;
  const char* payload = header + kBlockHeaderSize;
  uint32_t crc = Crc32cExtend(0, header + 4, 8);
  crc = Crc32cExtend(crc, payload, payload_len);
  if (crc != out.crc) {
    out.defect = BlockDefect::kBadCrc;
    return out;
  }
  if (payload_len < sizeof(uint32_t)) {
    out.defect = BlockDefect::kBadPayload;
    return out;
  }
  uint32_t n = 0;
  std::memcpy(&n, payload, sizeof(n));
  if (payload_len != sizeof(uint32_t) + static_cast<uint64_t>(n) * kRowBytes) {
    out.defect = BlockDefect::kBadPayload;
    return out;
  }
  const char* p = payload + sizeof(uint32_t);
  ReadColumn(p, n, &out.block.sensor);
  p += n * sizeof(SensorId);
  ReadColumn(p, n, &out.block.t);
  p += n * sizeof(Timestamp);
  ReadColumn(p, n, &out.block.x);
  p += n * sizeof(double);
  ReadColumn(p, n, &out.block.y);
  p += n * sizeof(double);
  ReadColumn(p, n, &out.block.value);
  p += n * sizeof(double);
  ReadColumn(p, n, &out.block.stddev);
  return out;
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

std::string SerializeManifest(const Manifest& m) {
  std::string out = "# sidq-store manifest v1\n";
  out += "gen " + std::to_string(m.gen) + "\n";
  if (m.prev_gen == 0) {
    out += "prev none\n";
  } else {
    out += "prev " + std::to_string(m.prev_gen) + " " + Hex32(m.prev_crc) +
           "\n";
  }
  out += "field " + m.field_name + "\n";
  out += "segments " + std::to_string(m.num_segments) + "\n";
  out += "rows " + std::to_string(m.rows) + "\n";
  for (const BlockEntry& b : m.blocks) {
    out += "block " + std::to_string(b.segment) + " " +
           std::to_string(b.index) + " " + std::to_string(b.offset) + " " +
           std::to_string(b.length) + " " + Hex32(b.crc) + " " +
           std::to_string(b.row_start) + " " + std::to_string(b.row_count);
    AppendSensorRows(&out, b.sensor_rows);
    out += "\n";
  }
  for (const QuarantinedBlockEntry& q : m.quarantined) {
    out += "quarantine " + std::to_string(q.segment) + " " +
           std::to_string(q.index) + " " +
           std::to_string(static_cast<int>(q.defect)) + " " +
           std::to_string(q.offset) + " " + std::to_string(q.length) + " " +
           std::to_string(q.row_start) + " " + std::to_string(q.row_count);
    AppendSensorRows(&out, q.sensor_rows);
    out += "\n";
  }
  out += "commit " + Hex32(Crc32c(out.data(), out.size())) + "\n";
  return out;
}

StatusOr<ParsedManifest> ParseManifest(std::string_view text) {
  // The commit line must be the last line and must checksum everything
  // before it; anything else is a torn or corrupted manifest.
  const size_t commit_pos = text.rfind("commit ");
  if (commit_pos == std::string_view::npos ||
      (commit_pos != 0 && text[commit_pos - 1] != '\n')) {
    return Status::DataLoss("manifest has no commit line (torn)");
  }
  // The commit line must itself be newline-terminated: a manifest cut even
  // one byte short is torn, full stop -- "every strict prefix fails" is
  // the invariant the crash sweep leans on.
  if (text.back() != '\n') {
    return Status::DataLoss("manifest commit line unterminated (torn)");
  }
  std::istringstream commit_line(
      std::string(text.substr(commit_pos + 7)));
  uint32_t commit_crc = 0;
  {
    std::string tok;
    if (!(commit_line >> tok)) {
      return Status::DataLoss("manifest commit line unreadable (torn)");
    }
    std::istringstream hex_in(tok);
    if (!ParseHex32(&hex_in, &commit_crc)) {
      return Status::DataLoss("manifest commit crc unreadable (torn)");
    }
    std::string trailing;
    if (commit_line >> trailing) {
      return Status::InvalidArgument("garbage after manifest commit line");
    }
  }
  const uint32_t actual =
      Crc32c(text.data(), commit_pos);
  if (actual != commit_crc) {
    return Status::DataLoss("manifest commit crc mismatch: recorded " +
                            Hex32(commit_crc) + ", computed " + Hex32(actual));
  }

  ParsedManifest out;
  out.commit_crc = commit_crc;
  Manifest& m = out.manifest;
  std::istringstream body{std::string(text.substr(0, commit_pos))};
  std::string line;
  if (!std::getline(body, line) || line != "# sidq-store manifest v1") {
    return Status::InvalidArgument("bad manifest header line: " + line);
  }
  bool saw_gen = false, saw_field = false, saw_segments = false,
       saw_rows = false, saw_prev = false;
  while (std::getline(body, line)) {
    std::istringstream in(line);
    std::string kind;
    if (!(in >> kind)) continue;
    if (kind == "gen") {
      if (!ParseU64(&in, &m.gen)) {
        return Status::InvalidArgument("bad gen line: " + line);
      }
      saw_gen = true;
    } else if (kind == "prev") {
      std::string tok;
      if (!(in >> tok)) {
        return Status::InvalidArgument("bad prev line: " + line);
      }
      if (tok != "none") {
        std::istringstream gen_in(tok);
        if (!ParseU64(&gen_in, &m.prev_gen)) {
          return Status::InvalidArgument("bad prev gen: " + line);
        }
        if (!ParseHex32(&in, &m.prev_crc)) {
          return Status::InvalidArgument("bad prev crc: " + line);
        }
      }
      saw_prev = true;
    } else if (kind == "field") {
      std::string rest;
      std::getline(in, rest);
      m.field_name = rest.empty() ? "" : rest.substr(1);  // skip the space
      saw_field = true;
    } else if (kind == "segments") {
      uint64_t v = 0;
      if (!ParseU64(&in, &v) || v > 0xffffffffull) {
        return Status::InvalidArgument("bad segments line: " + line);
      }
      m.num_segments = static_cast<uint32_t>(v);
      saw_segments = true;
    } else if (kind == "rows") {
      if (!ParseU64(&in, &m.rows)) {
        return Status::InvalidArgument("bad rows line: " + line);
      }
      saw_rows = true;
    } else if (kind == "block") {
      BlockEntry b;
      uint64_t seg = 0, idx = 0, count = 0;
      if (!ParseU64(&in, &seg) || !ParseU64(&in, &idx) ||
          !ParseU64(&in, &b.offset) || !ParseU64(&in, &b.length) ||
          !ParseHex32(&in, &b.crc) || !ParseU64(&in, &b.row_start) ||
          !ParseU64(&in, &count) || count > 0xffffffffull ||
          !ParseSensorRows(&in, &b.sensor_rows)) {
        return Status::InvalidArgument("bad block line: " + line);
      }
      b.segment = static_cast<uint32_t>(seg);
      b.index = static_cast<uint32_t>(idx);
      b.row_count = static_cast<uint32_t>(count);
      m.blocks.push_back(std::move(b));
    } else if (kind == "quarantine") {
      QuarantinedBlockEntry q;
      uint64_t seg = 0, idx = 0, defect = 0, count = 0;
      if (!ParseU64(&in, &seg) || !ParseU64(&in, &idx) ||
          !ParseU64(&in, &defect) || !ParseU64(&in, &q.offset) ||
          !ParseU64(&in, &q.length) || !ParseU64(&in, &q.row_start) ||
          !ParseU64(&in, &count) || count > 0xffffffffull ||
          defect > static_cast<uint64_t>(BlockDefect::kManifestMismatch) ||
          !ParseSensorRows(&in, &q.sensor_rows)) {
        return Status::InvalidArgument("bad quarantine line: " + line);
      }
      q.segment = static_cast<uint32_t>(seg);
      q.index = static_cast<uint32_t>(idx);
      q.defect = static_cast<BlockDefect>(defect);
      q.row_count = static_cast<uint32_t>(count);
      m.quarantined.push_back(std::move(q));
    } else {
      return Status::InvalidArgument("unknown manifest line: " + line);
    }
  }
  if (!saw_gen || !saw_prev || !saw_field || !saw_segments || !saw_rows) {
    return Status::InvalidArgument("manifest missing required line");
  }
  return out;
}

std::string ManifestFileName(uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "MANIFEST-%06" PRIu64, gen);
  return buf;
}

std::string SegmentFileName(uint32_t segment) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06u.seg", segment);
  return buf;
}

bool ParseManifestFileName(const std::string& name, uint64_t* gen) {
  constexpr char kPrefix[] = "MANIFEST-";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.size() <= kPrefixLen || name.compare(0, kPrefixLen, kPrefix) != 0) {
    return false;
  }
  const std::string digits = name.substr(kPrefixLen);
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  char* end = nullptr;
  *gen = std::strtoull(digits.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseSegmentFileName(const std::string& name, uint32_t* segment) {
  constexpr char kSuffix[] = ".seg";
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  if (name.size() <= kSuffixLen ||
      name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
    return false;
  }
  const std::string digits = name.substr(0, name.size() - kSuffixLen);
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  char* end = nullptr;
  const uint64_t v = std::strtoull(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v > 0xffffffffull) return false;
  *segment = static_cast<uint32_t>(v);
  return true;
}

std::string SerializeCurrent(uint64_t gen, uint32_t commit_crc) {
  return ManifestFileName(gen) + " " + Hex32(commit_crc) + "\n";
}

Status ParseCurrent(std::string_view text, uint64_t* gen,
                    uint32_t* commit_crc) {
  std::istringstream in{std::string(text)};
  std::string name;
  if (!(in >> name)) {
    return Status::DataLoss("CURRENT is empty or unreadable");
  }
  if (!ParseManifestFileName(name, gen)) {
    return Status::DataLoss("CURRENT names no manifest: " + name);
  }
  if (!ParseHex32(&in, commit_crc)) {
    return Status::DataLoss("CURRENT has no commit crc");
  }
  return Status::OK();
}

}  // namespace store
}  // namespace sidq

#include "store/vfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/failpoint.h"

namespace sidq {
namespace store {

namespace {

// SplitMix64: the seeded-but-cheap mixer used to place torn-write cut
// points and flipped bits deterministically per (seed, op).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// ---------------------------------------------------------------------------
// RealVfs: thin POSIX. Raw fds rather than iostreams so every syscall
// result is checked -- std::ofstream swallows short writes and close
// errors, which is exactly the failure mode this seam exists to kill.
// ---------------------------------------------------------------------------

namespace {

class RealWritableFile : public WritableFile {
 public:
  RealWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~RealWritableFile() override {
    if (fd_ >= 0) ::close(fd_);  // last-resort; Close() reports errors
  }

  Status Append(const char* data, size_t n) override {
    if (fd_ < 0) return Status::FailedPrecondition("append to closed file " + path_);
    while (n > 0) {
      const ssize_t w = ::write(fd_, data, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::DataLoss(ErrnoMessage("short write to", path_));
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("sync of closed file " + path_);
    if (::fsync(fd_) != 0) {
      return Status::DataLoss(ErrnoMessage("fsync failed for", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      // A failing close can mean deferred write errors (NFS, full disk):
      // data loss, not a shrug.
      return Status::DataLoss(ErrnoMessage("close failed for", path_));
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

// Positional reads served from an mmap of the file. The mapping covers
// the size observed at open (or last Refresh); a read past the mapped
// range re-stats and remaps, so a reader handle opened before the tail
// segment grew still sees appended blocks. When mmap is unavailable
// (length-0 files, exotic filesystems) every read falls back to pread --
// same semantics, one extra copy.
class RealRandomAccessFile : public RandomAccessFile {
 public:
  RealRandomAccessFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {
    (void)Refresh();  // sidq: allow-ignored-status(best-effort initial map; reads re-stat on miss)
  }

  ~RealRandomAccessFile() override {
    Unmap();
    if (fd_ >= 0) ::close(fd_);
  }

  StatusOr<std::string_view> Read(uint64_t offset, size_t n,
                                  char* scratch) override {
    if (offset + n > size_ || map_ == nullptr) {
      SIDQ_RETURN_IF_ERROR(Refresh());
    }
    if (offset >= size_) return std::string_view();
    const size_t avail = static_cast<size_t>(size_ - offset);
    const size_t len = std::min(n, avail);
    if (map_ != nullptr) {
      return std::string_view(static_cast<const char*>(map_) + offset, len);
    }
    // pread fallback: short reads mean the file shrank under us.
    size_t got = 0;
    while (got < len) {
      const ssize_t r = ::pread(fd_, scratch + got, len - got,
                                static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable(ErrnoMessage("pread failed for", path_));
      }
      if (r == 0) break;
      got += static_cast<size_t>(r);
    }
    return std::string_view(scratch, got);
  }

  StatusOr<uint64_t> Size() override {
    SIDQ_RETURN_IF_ERROR(Refresh());
    return size_;
  }

 private:
  Status Refresh() {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::Unavailable(ErrnoMessage("fstat failed for", path_));
    }
    const uint64_t size = static_cast<uint64_t>(st.st_size);
    if (size != size_ || (map_ == nullptr && size > 0)) {
      Unmap();
      size_ = size;
      if (size_ > 0) {
        void* m = ::mmap(nullptr, static_cast<size_t>(size_), PROT_READ,
                         MAP_SHARED, fd_, 0);
        if (m != MAP_FAILED) map_ = m;  // else: pread fallback
      }
    }
    return Status::OK();
  }

  void Unmap() {
    if (map_ != nullptr) {
      ::munmap(map_, static_cast<size_t>(size_));
      map_ = nullptr;
    }
  }

  int fd_;
  std::string path_;
  void* map_ = nullptr;
  uint64_t size_ = 0;
};

class RealVfs : public Vfs {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
    flags |= (mode == WriteMode::kTruncate) ? O_TRUNC : O_APPEND;
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Status::Unavailable(ErrnoMessage("cannot open", path));
    }
    return {std::make_unique<RealWritableFile>(fd, path)};
  }

  StatusOr<std::string> ReadFile(const std::string& path) const override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::Unavailable(ErrnoMessage("cannot open", path));
    }
    std::string out;
    char buf[1 << 16];
    for (;;) {
      const ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        const Status st = Status::Unavailable(ErrnoMessage("read failed for", path));
        ::close(fd);
        return st;
      }
      if (r == 0) break;
      out.append(buf, static_cast<size_t>(r));
    }
    ::close(fd);
    return out;
  }

  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) const override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::Unavailable(ErrnoMessage("cannot open", path));
    }
    return {std::make_unique<RealRandomAccessFile>(fd, path)};
  }

  StatusOr<uint64_t> FileSize(const std::string& path) const override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::Unavailable(ErrnoMessage("stat failed for", path));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  bool Exists(const std::string& path) const override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) const override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      if (errno == ENOENT) return Status::NotFound("no such directory: " + dir);
      return Status::Unavailable(ErrnoMessage("cannot open directory", dir));
    }
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      struct stat st;
      if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
        names.push_back(name);
      }
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Unavailable(ErrnoMessage("rename failed for", from + " -> " + to));
    }
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::Unavailable(ErrnoMessage("truncate failed for", path));
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::Unavailable(ErrnoMessage("unlink failed for", path));
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) == 0) return Status::OK();
    if (errno == EEXIST) {
      struct stat st;
      if (::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        return Status::OK();
      }
      return Status::AlreadyExists("path exists but is not a directory: " + dir);
    }
    return Status::Unavailable(ErrnoMessage("mkdir failed for", dir));
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) {
      return Status::Unavailable(ErrnoMessage("cannot open directory", dir));
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      return Status::DataLoss(ErrnoMessage("fsync failed for directory", dir));
    }
    return Status::OK();
  }
};

}  // namespace

Vfs* DefaultVfs() {
  // Meyers singleton: RealVfs is stateless, so destruction order at exit
  // cannot strand anyone holding the pointer.
  static RealVfs vfs;
  return &vfs;
}

Status AtomicWriteFile(Vfs* vfs, const std::string& path,
                       const std::string& content) {
  if (vfs == nullptr) vfs = DefaultVfs();
  const std::string tmp = path + ".tmp";
  SIDQ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        vfs->NewWritableFile(tmp, WriteMode::kTruncate));
  SIDQ_RETURN_IF_ERROR(file->Append(content));
  SIDQ_RETURN_IF_ERROR(file->Sync());
  SIDQ_RETURN_IF_ERROR(file->Close());
  SIDQ_RETURN_IF_ERROR(vfs->Rename(tmp, path));
  const std::string dir = ParentDir(path);
  if (!dir.empty()) {
    SIDQ_RETURN_IF_ERROR(vfs->SyncDir(dir));
  }
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const Vfs* vfs,
                                       const std::string& path) {
  if (vfs == nullptr) vfs = DefaultVfs();
  return vfs->ReadFile(path);
}

// ---------------------------------------------------------------------------
// MemVfs
// ---------------------------------------------------------------------------

namespace {
// Set by MemVfs on SimulateCrash via the handle's generation check.
constexpr char kStaleHandle[] = "stale file handle (post-crash)";
}  // namespace

class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(MemVfs* vfs, std::string path, uint64_t generation)
      : vfs_(vfs), path_(std::move(path)), generation_(generation) {}

  Status Append(const char* data, size_t n) override {
    SIDQ_ASSIGN_OR_RETURN(MemVfs::MemFile * f, Live());
    f->data.append(data, n);
    return Status::OK();
  }

  Status Sync() override {
    SIDQ_ASSIGN_OR_RETURN(MemVfs::MemFile * f, Live());
    f->synced = f->data.size();
    return Status::OK();
  }

  Status Close() override {
    closed_ = true;
    return Status::OK();
  }

 private:
  StatusOr<MemVfs::MemFile*> Live() {
    if (closed_) return Status::FailedPrecondition("file closed: " + path_);
    if (generation_ != vfs_->generation_) return Status::Unavailable(kStaleHandle);
    auto it = vfs_->files_.find(path_);
    if (it == vfs_->files_.end()) return Status::Unavailable(kStaleHandle);
    return &it->second;
  }

  MemVfs* vfs_;
  std::string path_;
  uint64_t generation_;
  bool closed_ = false;
};

// Mem positional reads re-resolve the path on every call, so a handle
// held across a crash / rename / remove degrades to NotFound instead of
// serving stale bytes -- the strictest form of the "discard handles after
// mutation" contract, which keeps the crash sweeps honest.
class MemRandomAccessFile : public RandomAccessFile {
 public:
  MemRandomAccessFile(const MemVfs* vfs, std::string path)
      : vfs_(vfs), path_(std::move(path)) {}

  StatusOr<std::string_view> Read(uint64_t offset, size_t n,
                                  char* scratch) override {
    auto it = vfs_->files_.find(path_);
    if (it == vfs_->files_.end()) {
      return Status::NotFound("no such file: " + path_);
    }
    const std::string& data = it->second.data;
    if (offset >= data.size()) return std::string_view();
    const size_t len = std::min(n, data.size() - offset);
    std::memcpy(scratch, data.data() + offset, len);
    return std::string_view(scratch, len);
  }

  StatusOr<uint64_t> Size() override {
    auto it = vfs_->files_.find(path_);
    if (it == vfs_->files_.end()) {
      return Status::NotFound("no such file: " + path_);
    }
    return static_cast<uint64_t>(it->second.data.size());
  }

 private:
  const MemVfs* vfs_;
  std::string path_;
};

StatusOr<std::unique_ptr<WritableFile>> MemVfs::NewWritableFile(
    const std::string& path, WriteMode mode) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    // Brand-new file: the dir entry is volatile until SyncDir(parent).
    journal_.push_back(DirOp{DirOp::kCreate, path, "", std::nullopt});
    files_[path] = MemFile{};
  } else if (mode == WriteMode::kTruncate) {
    // Truncating an existing file: undone wholesale on crash unless the
    // parent dir is synced (conservative -- the real-world outcome is
    // "old content, new content, or garbage"; we model the recoverable
    // worst case deterministically).
    journal_.push_back(DirOp{DirOp::kCreate, path, "", it->second});
    it->second = MemFile{};
  }
  return {std::make_unique<MemWritableFile>(this, path, generation_)};
}

StatusOr<std::string> MemVfs::ReadFile(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.data;
}

StatusOr<std::unique_ptr<RandomAccessFile>> MemVfs::NewRandomAccessFile(
    const std::string& path) const {
  if (files_.count(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return {std::make_unique<MemRandomAccessFile>(this, path)};
}

StatusOr<uint64_t> MemVfs::FileSize(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return static_cast<uint64_t>(it->second.data.size());
}

bool MemVfs::Exists(const std::string& path) const {
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

StatusOr<std::vector<std::string>> MemVfs::ListDir(
    const std::string& dir) const {
  std::vector<std::string> names;
  for (const auto& [path, file] : files_) {
    (void)file;
    if (ParentDir(path) == dir) {
      names.push_back(path.substr(dir.size() + 1));
    }
  }
  if (names.empty() && dirs_.count(dir) == 0) {
    return Status::NotFound("no such directory: " + dir);
  }
  return names;  // std::map iteration order is already sorted
}

Status MemVfs::Rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  std::optional<MemFile> overwritten;
  auto dst = files_.find(to);
  if (dst != files_.end()) overwritten = dst->second;
  journal_.push_back(DirOp{DirOp::kRename, from, to, std::move(overwritten)});
  files_[to] = std::move(it->second);
  files_.erase(from);
  return Status::OK();
}

Status MemVfs::Truncate(const std::string& path, uint64_t size) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  if (size > it->second.data.size()) {
    return Status::InvalidArgument("truncate beyond end of " + path);
  }
  // Recovery's tail cut: modelled as immediately durable (recovery syncs
  // before committing anyway, and a re-crash just re-runs the same cut).
  it->second.data.resize(size);
  it->second.synced = std::min(it->second.synced, static_cast<size_t>(size));
  return Status::OK();
}

Status MemVfs::Remove(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  journal_.push_back(DirOp{DirOp::kRemove, path, "", it->second});
  files_.erase(it);
  return Status::OK();
}

Status MemVfs::CreateDir(const std::string& dir) {
  // Directory creation is modelled as immediately durable; the store
  // creates its directory once, before any data it must protect exists.
  dirs_[dir] = true;
  return Status::OK();
}

Status MemVfs::SyncDir(const std::string& dir) {
  // Directory fsync pins every pending create/rename/remove whose entries
  // live in `dir`.
  auto affected = [&](const DirOp& op) {
    if (op.kind == DirOp::kRename) {
      return ParentDir(op.a) == dir && ParentDir(op.b) == dir;
    }
    return ParentDir(op.a) == dir;
  };
  journal_.erase(
      std::remove_if(journal_.begin(), journal_.end(), affected),
      journal_.end());
  return Status::OK();
}

void MemVfs::SimulateCrash() {
  // Undo un-fsynced directory operations, newest first.
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    switch (it->kind) {
      case DirOp::kCreate:
        if (it->saved.has_value()) {
          files_[it->a] = std::move(*it->saved);
        } else {
          files_.erase(it->a);
        }
        break;
      case DirOp::kRename: {
        auto dst = files_.find(it->b);
        if (dst != files_.end()) {
          files_[it->a] = std::move(dst->second);
          files_.erase(it->b);
        }
        if (it->saved.has_value()) {
          files_[it->b] = std::move(*it->saved);
        }
        break;
      }
      case DirOp::kRemove:
        files_[it->a] = std::move(*it->saved);
        break;
    }
  }
  journal_.clear();
  // Unsynced bytes vanish.
  for (auto& [path, file] : files_) {
    (void)path;
    file.data.resize(file.synced);
  }
  ++generation_;
}

Status MemVfs::CorruptByte(const std::string& path, uint64_t offset,
                           uint8_t xor_mask) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  if (offset >= it->second.data.size()) {
    return Status::OutOfRange("corrupt offset beyond end of " + path);
  }
  it->second.data[offset] =
      static_cast<char>(it->second.data[offset] ^ xor_mask);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------------

namespace {
constexpr char kCrashed[] = "vfs crashed (injected)";
}  // namespace

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultVfs* vfs, std::unique_ptr<WritableFile> base,
                    std::string path)
      : vfs_(vfs), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(const char* data, size_t n) override {
    if (vfs_->crashed_) return Status::Unavailable(kCrashed);
    const int64_t op = vfs_->ops_++;
    // Crash plan: this append is the kill point.
    if (op == vfs_->plan_.at_op) {
      switch (vfs_->plan_.style) {
        case FaultVfs::CrashStyle::kBeforeOp:
          vfs_->Crash();
          return Status::Unavailable(kCrashed);
        case FaultVfs::CrashStyle::kTornAppend: {
          // A seeded strict prefix of the append reaches the medium (torn
          // page), made durable so recovery actually sees it.
          const size_t torn =
              n == 0 ? 0
                     : static_cast<size_t>(
                           Mix64(vfs_->plan_.seed ^ static_cast<uint64_t>(op)) %
                           n);
          if (torn > 0) {
            (void)base_->Append(data, torn);  // sidq: allow-ignored-status(crashing anyway; best-effort torn prefix)
            (void)base_->Sync();  // sidq: allow-ignored-status(crashing anyway; best-effort torn prefix)
          }
          vfs_->Crash();
          return Status::Unavailable(kCrashed);
        }
        case FaultVfs::CrashStyle::kBitFlip: {
          // The full append lands, but one seeded bit flips on the way
          // down (media corruption at the moment of loss).
          std::string corrupted(data, n);
          if (n > 0) {
            const uint64_t bit =
                Mix64(vfs_->plan_.seed ^ static_cast<uint64_t>(op) ^
                      0x5bd1e995ull) %
                (static_cast<uint64_t>(n) * 8);
            corrupted[bit / 8] =
                static_cast<char>(corrupted[bit / 8] ^ (1u << (bit % 8)));
          }
          (void)base_->Append(corrupted.data(), corrupted.size());  // sidq: allow-ignored-status(crashing anyway; best-effort corrupt write)
          (void)base_->Sync();  // sidq: allow-ignored-status(crashing anyway; best-effort corrupt write)
          vfs_->Crash();
          return Status::Unavailable(kCrashed);
        }
      }
    }
    // FailPoint chaos (no crash): injected EIO or silent corruption.
    if (auto fp = EvaluateFailPoint(kVfsAppendFailPoint,
                                    static_cast<uint64_t>(op))) {
      switch (fp->action) {
        case FailPointAction::kTransientError:
          return Status::Unavailable("injected EIO (transient) on append to " +
                                     path_);
        case FailPointAction::kPermanentError:
          return Status::DataLoss("injected EIO on append to " + path_);
        case FailPointAction::kCorrupt: {
          std::string corrupted(data, n);
          if (n > 0) {
            const uint64_t bit =
                Mix64(fp->seed ^ static_cast<uint64_t>(op)) %
                (static_cast<uint64_t>(n) * 8);
            corrupted[bit / 8] =
                static_cast<char>(corrupted[bit / 8] ^ (1u << (bit % 8)));
          }
          return base_->Append(corrupted.data(), corrupted.size());
        }
        case FailPointAction::kStall:
          break;  // no clock at this layer; treat as pass
      }
    }
    return base_->Append(data, n);
  }

  Status Sync() override {
    if (vfs_->crashed_) return Status::Unavailable(kCrashed);
    const int64_t op = vfs_->ops_++;
    if (op == vfs_->plan_.at_op) {
      // Any style at a sync point means "died before the fsync".
      vfs_->Crash();
      return Status::Unavailable(kCrashed);
    }
    if (auto fp = EvaluateFailPoint(kVfsSyncFailPoint,
                                    static_cast<uint64_t>(op))) {
      switch (fp->action) {
        case FailPointAction::kTransientError:
          return Status::Unavailable("injected EIO (transient) on fsync of " +
                                     path_);
        case FailPointAction::kPermanentError:
          return Status::DataLoss("injected EIO on fsync of " + path_);
        case FailPointAction::kCorrupt:
          // LOST FSYNC: the drive acknowledged and dropped it. The caller
          // believes the bytes are durable; a later crash proves otherwise.
          return Status::OK();
        case FailPointAction::kStall:
          break;
      }
    }
    return base_->Sync();
  }

  Status Close() override {
    if (vfs_->crashed_) return Status::Unavailable(kCrashed);
    const int64_t op = vfs_->ops_++;
    if (op == vfs_->plan_.at_op) {
      vfs_->Crash();
      return Status::Unavailable(kCrashed);
    }
    return base_->Close();
  }

 private:
  FaultVfs* vfs_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

Status FaultVfs::BeginOp(const char* site, bool* corrupt) {
  if (crashed_) return Status::Unavailable(kCrashed);
  const int64_t op = ops_++;
  if (op == plan_.at_op) {
    // Non-append ops have no partial version; every style degrades to
    // "crash before the op happens".
    Crash();
    return Status::Unavailable(kCrashed);
  }
  if (site != nullptr) {
    if (auto fp = EvaluateFailPoint(site, static_cast<uint64_t>(op))) {
      switch (fp->action) {
        case FailPointAction::kTransientError:
          return Status::Unavailable(std::string("injected EIO (transient) at ") +
                                     site);
        case FailPointAction::kPermanentError:
          return Status::DataLoss(std::string("injected EIO at ") + site);
        case FailPointAction::kCorrupt:
          if (corrupt != nullptr) *corrupt = true;
          return Status::OK();
        case FailPointAction::kStall:
          return Status::OK();
      }
    }
  }
  return Status::OK();
}

void FaultVfs::Crash() {
  crashed_ = true;
  base_->SimulateCrash();
}

StatusOr<std::unique_ptr<WritableFile>> FaultVfs::NewWritableFile(
    const std::string& path, WriteMode mode) {
  SIDQ_RETURN_IF_ERROR(BeginOp(nullptr, nullptr));
  SIDQ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                        base_->NewWritableFile(path, mode));
  return {std::make_unique<FaultWritableFile>(this, std::move(base), path)};
}

StatusOr<std::string> FaultVfs::ReadFile(const std::string& path) const {
  if (crashed_) return Status::Unavailable(kCrashed);
  return base_->ReadFile(path);
}

// Positional reads pass through un-numbered (the crash plan enumerates
// mutating I/O only, so adding the read path cannot shift existing sweep
// op indices); once the crash fired, every read fails like the rest.
class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(const FaultVfs* vfs,
                        std::unique_ptr<RandomAccessFile> base)
      : vfs_(vfs), base_(std::move(base)) {}

  StatusOr<std::string_view> Read(uint64_t offset, size_t n,
                                  char* scratch) override {
    if (vfs_->crashed_) return Status::Unavailable(kCrashed);
    return base_->Read(offset, n, scratch);
  }

  StatusOr<uint64_t> Size() override {
    if (vfs_->crashed_) return Status::Unavailable(kCrashed);
    return base_->Size();
  }

 private:
  const FaultVfs* vfs_;
  std::unique_ptr<RandomAccessFile> base_;
};

StatusOr<std::unique_ptr<RandomAccessFile>> FaultVfs::NewRandomAccessFile(
    const std::string& path) const {
  if (crashed_) return Status::Unavailable(kCrashed);
  SIDQ_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> base,
                        base_->NewRandomAccessFile(path));
  return {std::make_unique<FaultRandomAccessFile>(this, std::move(base))};
}

StatusOr<uint64_t> FaultVfs::FileSize(const std::string& path) const {
  if (crashed_) return Status::Unavailable(kCrashed);
  return base_->FileSize(path);
}

bool FaultVfs::Exists(const std::string& path) const {
  if (crashed_) return false;
  return base_->Exists(path);
}

StatusOr<std::vector<std::string>> FaultVfs::ListDir(
    const std::string& dir) const {
  if (crashed_) return Status::Unavailable(kCrashed);
  return base_->ListDir(dir);
}

Status FaultVfs::Rename(const std::string& from, const std::string& to) {
  SIDQ_RETURN_IF_ERROR(BeginOp(kVfsRenameFailPoint, nullptr));
  return base_->Rename(from, to);
}

Status FaultVfs::Truncate(const std::string& path, uint64_t size) {
  SIDQ_RETURN_IF_ERROR(BeginOp(nullptr, nullptr));
  return base_->Truncate(path, size);
}

Status FaultVfs::Remove(const std::string& path) {
  SIDQ_RETURN_IF_ERROR(BeginOp(nullptr, nullptr));
  return base_->Remove(path);
}

Status FaultVfs::CreateDir(const std::string& dir) {
  SIDQ_RETURN_IF_ERROR(BeginOp(nullptr, nullptr));
  return base_->CreateDir(dir);
}

Status FaultVfs::SyncDir(const std::string& dir) {
  // The sync FailPoint site covers directory fsyncs too: kCorrupt here is
  // a lost dir fsync -- the rename "succeeded" but the entry never became
  // durable.
  bool lost = false;
  SIDQ_RETURN_IF_ERROR(BeginOp(kVfsSyncFailPoint, &lost));
  if (lost) return Status::OK();
  return base_->SyncDir(dir);
}

}  // namespace store
}  // namespace sidq

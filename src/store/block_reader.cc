#include "store/block_reader.h"

#include <cstring>
#include <utility>

namespace sidq {
namespace store {

namespace {

// Sequential scans touch segments in ascending order, so a handful of
// live handles covers them; the cap keeps fd/mapping usage flat on
// thousand-segment stores.
constexpr size_t kMaxHandles = 64;

// Bounded defect ladder at `offset` of `file`, verdict-identical to
// ParseBlockAt over the whole file: a 16-byte header read settles
// kShortHeader / kBadMagic / kBadVersion / kBadLength, then the header's
// own payload length sizes the full read, so kShortPayload is only ever
// "the file ends early", not "our window was small".
Status LadderAt(RandomAccessFile* file, std::string* scratch, uint64_t offset,
                ParsedBlock* parsed) {
  *parsed = ParsedBlock();
  scratch->resize(kBlockHeaderSize);
  SIDQ_ASSIGN_OR_RETURN(
      std::string_view header,
      file->Read(offset, kBlockHeaderSize, scratch->data()));
  if (header.size() < kBlockHeaderSize) {
    parsed->defect = BlockDefect::kShortHeader;
    return Status::OK();
  }
  const ParsedBlock header_verdict = ParseBlockAt(header, 0);
  if (header_verdict.defect == BlockDefect::kBadMagic ||
      header_verdict.defect == BlockDefect::kBadVersion ||
      header_verdict.defect == BlockDefect::kBadLength) {
    *parsed = header_verdict;
    return Status::OK();
  }
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, header.data() + 8, sizeof(payload_len));
  const size_t want = kBlockHeaderSize + payload_len;
  scratch->resize(want);
  SIDQ_ASSIGN_OR_RETURN(std::string_view full,
                        file->Read(offset, want, scratch->data()));
  if (full.size() < want) {
    parsed->defect = BlockDefect::kShortPayload;
    return Status::OK();
  }
  *parsed = ParseBlockAt(full, 0);
  return Status::OK();
}

}  // namespace

BlockReader::BlockReader(const Vfs* vfs, std::string dir, BlockCache* cache)
    : vfs_(vfs), dir_(std::move(dir)), cache_(cache) {}

StatusOr<RandomAccessFile*> BlockReader::Handle(uint32_t segment) {
  auto it = handles_.find(segment);
  if (it != handles_.end()) return it->second.get();
  SIDQ_ASSIGN_OR_RETURN(
      std::unique_ptr<RandomAccessFile> file,
      vfs_->NewRandomAccessFile(dir_ + "/" + SegmentFileName(segment)));
  if (handles_.size() >= kMaxHandles) {
    // Scans walk segments in ascending order; the lowest-numbered handle
    // is the least likely to be touched again.
    handles_.erase(handles_.begin());
  }
  RandomAccessFile* raw = file.get();
  handles_[segment] = std::move(file);
  return raw;
}

Status BlockReader::VerifyAt(RandomAccessFile* file, std::string* scratch,
                             const BlockEntry& entry, BlockDefect* defect,
                             ColumnarBlock* out) {
  ParsedBlock parsed;
  SIDQ_RETURN_IF_ERROR(LadderAt(file, scratch, entry.offset, &parsed));
  *defect = parsed.defect;
  if (*defect == BlockDefect::kNone &&
      (parsed.crc != entry.crc || parsed.bytes_consumed != entry.length ||
       parsed.block.size() != entry.row_count)) {
    *defect = BlockDefect::kManifestMismatch;
  }
  if (*defect == BlockDefect::kNone && out != nullptr) {
    *out = std::move(parsed.block);
  }
  return Status::OK();
}

Status BlockReader::Read(const BlockEntry& entry, MissingPolicy policy,
                         BlockDefect* defect, PinnedBlock* out) {
  *defect = BlockDefect::kNone;
  *out = PinnedBlock();
  if (cache_ != nullptr) {
    PinnedBlock hit = cache_->Lookup(entry.segment, entry.offset);
    if (hit) {
      *out = std::move(hit);
      return Status::OK();
    }
  }
  StatusOr<RandomAccessFile*> handle = Handle(entry.segment);
  if (!handle.ok()) {
    if (policy == MissingPolicy::kDefect) {
      // Missing/unreadable segment: same verdict a zero-length file gives.
      *defect = BlockDefect::kShortHeader;
      return Status::OK();
    }
    return handle.status();
  }
  ColumnarBlock block;
  const Status st = VerifyAt(*handle, &scratch_, entry, defect, &block);
  if (!st.ok()) {
    if (policy == MissingPolicy::kDefect) {
      *defect = BlockDefect::kShortHeader;
      return Status::OK();
    }
    return st;
  }
  if (*defect != BlockDefect::kNone) return Status::OK();
  if (cache_ != nullptr) {
    *out = cache_->Insert(entry.segment, entry.offset, std::move(block));
  } else {
    *out = PinnedBlock(
        nullptr, 0, std::make_shared<const ColumnarBlock>(std::move(block)));
  }
  return Status::OK();
}

StatusOr<BlockReader::TailScanResult> BlockReader::TailScan(
    uint32_t segment, uint64_t start_offset, uint32_t start_index,
    const std::function<void(ScannedBlock&&)>& fn) {
  SIDQ_ASSIGN_OR_RETURN(RandomAccessFile * file, Handle(segment));
  SIDQ_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  TailScanResult result;
  uint64_t offset = start_offset;
  uint32_t index = start_index;
  while (offset < size) {
    ParsedBlock parsed;
    SIDQ_RETURN_IF_ERROR(LadderAt(file, &scratch_, offset, &parsed));
    if (parsed.defect != BlockDefect::kNone) {
      result.defect = parsed.defect;
      break;
    }
    ScannedBlock scanned;
    scanned.index = index;
    scanned.offset = offset;
    scanned.length = parsed.bytes_consumed;
    scanned.crc = parsed.crc;
    scanned.block = std::move(parsed.block);
    offset += parsed.bytes_consumed;
    ++index;
    fn(std::move(scanned));
  }
  result.valid_bytes = offset;
  return result;
}

StatusOr<std::string> BlockReader::ReadRange(uint32_t segment, uint64_t offset,
                                             uint64_t length) {
  SIDQ_ASSIGN_OR_RETURN(RandomAccessFile * file, Handle(segment));
  std::string out;
  out.resize(length);
  SIDQ_ASSIGN_OR_RETURN(std::string_view view,
                        file->Read(offset, length, out.data()));
  if (view.data() == out.data()) {
    out.resize(view.size());  // pread path filled the buffer in place
  } else {
    out.assign(view.data(), view.size());  // mmap path: copy out
  }
  return out;
}

StatusOr<uint64_t> BlockReader::SegmentSize(uint32_t segment) {
  SIDQ_ASSIGN_OR_RETURN(RandomAccessFile * file, Handle(segment));
  return file->Size();
}

void BlockReader::Invalidate(uint32_t segment) {
  handles_.erase(segment);
  if (cache_ != nullptr) cache_->EraseSegment(segment);
}

void BlockReader::InvalidateAll() {
  handles_.clear();
  if (cache_ != nullptr) cache_->Clear();
}

}  // namespace store
}  // namespace sidq

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "core/statusor.h"
#include "store/format.h"
#include "store/vfs.h"

namespace sidq {
namespace store {

// Appends checksummed columnar blocks to one NNNNNN.seg file. The writer
// never overwrites: a segment only ever grows, and only Sync() makes the
// growth crash-durable (the store syncs data files before committing a
// manifest that references them).
class SegmentWriter {
 public:
  // Opens segment `segment` in `dir` for appending. `existing_size` and
  // `existing_blocks` describe what the manifest already accounts for when
  // reopening a recovered store (0/0 for a fresh segment).
  static StatusOr<std::unique_ptr<SegmentWriter>> Open(
      Vfs* vfs, const std::string& dir, uint32_t segment,
      uint64_t existing_size, uint32_t existing_blocks);

  // Encodes and appends `block`; fills `entry` with the block's location
  // (segment, index, offset, length, crc). Row bookkeeping (row_start,
  // row_count, sensor_rows) is the store's job.
  [[nodiscard]] Status AppendBlock(const ColumnarBlock& block,
                                   BlockEntry* entry);

  [[nodiscard]] Status Sync() { return file_->Sync(); }
  [[nodiscard]] Status Close() { return file_->Close(); }

  [[nodiscard]] uint32_t segment() const { return segment_; }
  [[nodiscard]] uint64_t offset() const { return offset_; }
  [[nodiscard]] uint32_t num_blocks() const { return num_blocks_; }

  // Public so Open() can std::make_unique; use Open(), which resolves the
  // segment path and opens the file in append mode.
  SegmentWriter(std::unique_ptr<WritableFile> file, uint32_t segment,
                uint64_t offset, uint32_t num_blocks)
      : file_(std::move(file)),
        segment_(segment),
        offset_(offset),
        num_blocks_(num_blocks) {}

 private:
  std::unique_ptr<WritableFile> file_;
  uint32_t segment_;
  uint64_t offset_;      // current append position
  uint32_t num_blocks_;  // blocks written so far (next block's index)
};

// One block located by a raw segment scan.
struct ScannedBlock {
  uint32_t index = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
  ColumnarBlock block;
};

// Result of scanning segment bytes from `start_offset` to the end without
// a manifest: the self-describing tail-recovery primitive.
struct SegmentScan {
  std::vector<ScannedBlock> blocks;  // every valid block, in file order
  // Offset of the first defective byte; == data.size() when the scan ran
  // clean to EOF. Recovery truncates the file here.
  uint64_t valid_bytes = 0;
  // What stopped the scan (kNone for a clean run). kShortHeader /
  // kShortPayload at EOF are torn appends; anything else is corruption.
  BlockDefect defect = BlockDefect::kNone;
};

// Walks blocks back-to-back from `start_offset`, stopping at the first
// byte that does not parse as a valid block. Never reads past the end.
[[nodiscard]] SegmentScan ScanSegment(std::string_view data,
                                      uint64_t start_offset,
                                      uint32_t start_index);

}  // namespace store
}  // namespace sidq

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "core/statusor.h"

namespace sidq {
namespace store {

// -------------------------------------------------------------------------
// Vfs: the single seam between sidq and the filesystem.
//
// Every byte the store (and the hardened writers in core/io.cc,
// obs/export.cc, stream/event_log.cc) persists goes through this
// interface. That is the whole point: durability bugs live at the
// filesystem boundary -- short writes on a full disk, torn appends on
// power loss, fsyncs the kernel acknowledged but a dying drive dropped --
// and a seam makes every one of those failure modes injectable and
// therefore testable. RealVfs is thin POSIX; MemVfs models the
// crash-visible state machine of a journaled filesystem (what survives a
// power cut is exactly the synced prefix of each file plus the dir entries
// made durable by SyncDir); FaultVfs wraps MemVfs and kills I/O at an
// enumerable crash point or at seeded FailPoint sites.
//
// Durability contract implemented by all backends:
//   - Append is buffered: bytes are crash-durable only after Sync()
//     succeeds AND the file's directory entry is durable.
//   - A new file's directory entry becomes durable via SyncDir(parent);
//     so does a Rename. AtomicWriteFile below sequences
//     tmp-write + fsync + rename + dir-fsync for the classic atomic
//     publish.
//   - Rename is atomic: readers see the old content or the new, never a
//     mix.
//
// sidq-lint rule R15 bans raw std::ofstream / fopen outside
// src/store/vfs.cc, so this seam cannot silently grow bypasses.
// -------------------------------------------------------------------------

// A sequential output file. Append order is write order; nothing is
// crash-durable before Sync().
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  [[nodiscard]] virtual Status Append(const char* data, size_t n) = 0;
  [[nodiscard]] Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }
  // Makes every appended byte crash-durable (fsync).
  [[nodiscard]] virtual Status Sync() = 0;
  // Closes the descriptor, reporting (not swallowing) close errors; the
  // destructor closes silently as a last resort.
  [[nodiscard]] virtual Status Close() = 0;
};

enum class WriteMode {
  kTruncate,  // create or wipe
  kAppend,    // create or continue at the end
};

// A positional-read handle for the out-of-core scan path (Store v2). The
// Real backend serves reads from an mmap of the file (remapping when the
// file has grown since open, falling back to pread when mmap is
// unavailable); Mem/Fault backends copy into `scratch` so crash and
// corruption semantics stay exactly those of the in-memory model. Reads
// past EOF are short, not errors: the returned view holds
// min(n, size - offset) bytes (empty at/after EOF). The view is valid
// until the next Read/Refresh on the same handle.
//
// Contract with the mutating API: a RandomAccessFile pins no filesystem
// state. After a Truncate/Remove/Rename of the underlying path, the
// handle must be discarded (the BlockReader's Invalidate hook does this);
// reading through a stale mapping of a shrunk file is undefined.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  [[nodiscard]] virtual StatusOr<std::string_view> Read(uint64_t offset,
                                                        size_t n,
                                                        char* scratch) = 0;
  // Size of the file as of the last Read/Refresh (mmap backends re-stat
  // lazily; call Refresh() to observe growth explicitly).
  [[nodiscard]] virtual StatusOr<uint64_t> Size() = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  [[nodiscard]] virtual StatusOr<std::unique_ptr<WritableFile>>
  NewWritableFile(const std::string& path, WriteMode mode) = 0;
  // Whole-file read. Inside src/store/ this is reserved for the small
  // bounded control files (manifests, CURRENT); segment data goes through
  // NewRandomAccessFile + the BlockReader so peak RSS stays bounded by
  // the cache budget (sidq-lint R16 enforces the split).
  [[nodiscard]] virtual StatusOr<std::string> ReadFile(
      const std::string& path) const = 0;
  // Positional-read handle for bounded block reads (mmap on RealVfs).
  [[nodiscard]] virtual StatusOr<std::unique_ptr<RandomAccessFile>>
  NewRandomAccessFile(const std::string& path) const = 0;
  [[nodiscard]] virtual StatusOr<uint64_t> FileSize(
      const std::string& path) const = 0;
  [[nodiscard]] virtual bool Exists(const std::string& path) const = 0;
  // Sorted basenames of regular files directly inside `dir`.
  [[nodiscard]] virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) const = 0;
  [[nodiscard]] virtual Status Rename(const std::string& from,
                                      const std::string& to) = 0;
  [[nodiscard]] virtual Status Truncate(const std::string& path,
                                        uint64_t size) = 0;
  [[nodiscard]] virtual Status Remove(const std::string& path) = 0;
  [[nodiscard]] virtual Status CreateDir(const std::string& dir) = 0;
  // Makes the directory's current entries (creates, renames, removes)
  // crash-durable.
  [[nodiscard]] virtual Status SyncDir(const std::string& dir) = 0;
};

// Process-wide POSIX Vfs singleton (stateless, thread-safe).
Vfs* DefaultVfs();

// The atomic publish every sidq writer uses: write `path`.tmp, fsync,
// rename over `path`, fsync the directory. A crash at any point leaves
// either the complete old file or the complete new one -- never a
// truncated parse-as-valid prefix.
[[nodiscard]] Status AtomicWriteFile(Vfs* vfs, const std::string& path,
                                     const std::string& content);

// Reads `path` through `vfs` (nullptr = DefaultVfs()).
[[nodiscard]] StatusOr<std::string> ReadFileToString(const Vfs* vfs,
                                                     const std::string& path);

// Directory portion of `path` ("" when none).
[[nodiscard]] std::string ParentDir(const std::string& path);

// -------------------------------------------------------------------------
// MemVfs: in-memory filesystem with an explicit crash model, for the
// crash-point sweep. Externally synchronized (the store is single-writer;
// tests drive it from one thread).
//
// Crash semantics of SimulateCrash():
//   - every file's content reverts to its synced prefix;
//   - directory operations (create/rename/remove) not yet covered by a
//     SyncDir of their parent are undone, newest first -- a tmp file that
//     was renamed over a target without a dir fsync reverts to the old
//     target content;
//   - open WritableFile handles go stale and fail every later call.
// -------------------------------------------------------------------------
class MemVfs : public Vfs {
 public:
  MemVfs() = default;

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override;
  StatusOr<std::string> ReadFile(const std::string& path) const override;
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) const override;
  StatusOr<uint64_t> FileSize(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) const override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;

  // Power cut: unsynced bytes and un-fsynced directory operations vanish.
  void SimulateCrash();

  // Test hooks.
  [[nodiscard]] size_t num_files() const { return files_.size(); }
  // Flips one bit of `path` at byte `offset` (durable and volatile alike):
  // the media-corruption injection the CRC sweep uses.
  [[nodiscard]] Status CorruptByte(const std::string& path, uint64_t offset,
                                   uint8_t xor_mask);

 private:
  friend class MemWritableFile;
  friend class MemRandomAccessFile;

  struct MemFile {
    std::string data;
    size_t synced = 0;  // crash-durable prefix length
  };
  struct DirOp {
    enum Kind { kCreate, kRename, kRemove } kind;
    std::string a, b;              // kRename: a -> b
    std::optional<MemFile> saved;  // overwritten/removed content
  };

  std::map<std::string, MemFile> files_;
  std::map<std::string, bool> dirs_;
  // Un-fsynced directory operations, undone in reverse on crash.
  std::vector<DirOp> journal_;
  // Bumped by SimulateCrash(); stale handles compare against it.
  uint64_t generation_ = 0;
};

// -------------------------------------------------------------------------
// FaultVfs: deterministic crash-fault injection over a MemVfs.
//
// Every mutating call is one numbered "op". Two injection mechanisms:
//
//   1. CrashPlan: kill I/O at exactly op `at_op`. kBeforeOp drops the op
//      whole (power cut between writes); kTornAppend persists a seeded
//      prefix of the append before dying (torn page); kBitFlip persists
//      the append with one seeded bit flipped (media corruption at the
//      moment of loss). After the crash fires, every call -- on the vfs
//      and on any open handle -- fails kUnavailable, and the base MemVfs
//      reverts to crash-durable state; recovery then reopens the base.
//      Enumerating at_op over [0, ops()) is the crash-point sweep.
//
//   2. FailPoint sites (core/failpoint.h), keyed by op number, for seeded
//      probabilistic chaos without a crash:
//        store.vfs.append  transient/permanent -> injected EIO before any
//                          byte is written; corrupt -> one seeded bit flip
//                          in the appended data (write "succeeds");
//        store.vfs.sync    corrupt -> LOST FSYNC: reports success without
//                          making anything durable; errors -> injected
//                          EIO;
//        store.vfs.rename  transient/permanent -> injected EIO, rename
//                          not performed.
// -------------------------------------------------------------------------
class FaultVfs : public Vfs {
 public:
  enum class CrashStyle {
    kBeforeOp,    // op never happens
    kTornAppend,  // seeded prefix of the append becomes durable
    kBitFlip,     // append lands with one seeded bit flipped, then crash
  };
  struct CrashPlan {
    int64_t at_op = -1;  // < 0: never crash
    CrashStyle style = CrashStyle::kBeforeOp;
    uint64_t seed = 0;  // drives torn prefix length / flipped bit position
  };

  explicit FaultVfs(MemVfs* base) : base_(base) {}

  void set_plan(const CrashPlan& plan) { plan_ = plan; }
  [[nodiscard]] int64_t ops() const { return ops_; }
  [[nodiscard]] bool crashed() const { return crashed_; }

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override;
  StatusOr<std::string> ReadFile(const std::string& path) const override;
  // Reads are not numbered ops (the crash plan enumerates MUTATING I/O);
  // a read after the crash fired fails kUnavailable like everything else.
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) const override;
  StatusOr<uint64_t> FileSize(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) const override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;

  // Claims the next op number; returns the crash/injection verdict for a
  // non-append op (append handles torn/flip itself). `site` may be null
  // (op counts toward the crash plan but has no FailPoint). For kCorrupt
  // verdicts *corrupt is set and OK returned; callers that cannot corrupt
  // pass nullptr and the verdict degrades to pass.
  [[nodiscard]] Status BeginOp(const char* site, bool* corrupt);
  void Crash();

  MemVfs* base_;
  CrashPlan plan_;
  int64_t ops_ = 0;
  bool crashed_ = false;
};

// Chaos site names (armed via ArmFailPoint in tests and chaos CI legs).
inline constexpr char kVfsAppendFailPoint[] = "store.vfs.append";
inline constexpr char kVfsSyncFailPoint[] = "store.vfs.sync";
inline constexpr char kVfsRenameFailPoint[] = "store.vfs.rename";

}  // namespace store
}  // namespace sidq

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "core/statusor.h"
#include "core/stid.h"
#include "core/types.h"

namespace sidq {
namespace store {

// -------------------------------------------------------------------------
// On-disk format of the durable trajectory store.
//
// A store directory holds:
//   NNNNNN.seg        append-only segment files: a sequence of checksummed
//                     columnar blocks, nothing else. Self-describing --
//                     a segment can be scanned without the manifest, which
//                     is how tail recovery reclaims blocks appended after
//                     the last manifest commit.
//   MANIFEST-NNNNNN   one manifest per commit generation: canonical text
//                     listing every live block (location + CRC + row span
//                     + per-sensor row counts) plus carried-forward
//                     quarantine verdicts. Ends in a `commit <crc>` line
//                     so a torn manifest fails its own checksum. Each
//                     manifest names its predecessor's generation and
//                     commit CRC, forming a verifiable chain.
//   CURRENT           the name + commit CRC of the live manifest, itself
//                     published via AtomicWriteFile.
//
// Blocks are columnar (one array per field, mirroring src/kernels/ SoA):
// scans memcpy straight into kernel-ready column vectors, no per-record
// deserialization. Doubles are stored as raw IEEE-754 bits, so NaN
// payloads and signed zeros round-trip exactly -- the store-vs-memory
// bit-identity gates depend on that.
//
// All integers are little-endian host layout (the only platform sidq
// builds on; a static_assert in format.cc pins the assumption).
// -------------------------------------------------------------------------

// CRC32C (Castagnoli), software table-driven; matches the polynomial
// hardware SSE4.2 crc32 would give, so an accelerated swap stays
// format-compatible.
uint32_t Crc32c(const char* data, size_t n);
inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(data.data(), data.size());
}

inline constexpr char kBlockMagic[4] = {'S', 'B', 'L', 'K'};
inline constexpr uint8_t kFormatVersion = 1;
inline constexpr uint8_t kBlockTypeColumnar = 1;
inline constexpr size_t kBlockHeaderSize = 16;
// Sanity bound: a length field beyond this is a corrupt header, not a
// 64 MiB block (keeps a flipped length bit from driving a huge allocation).
inline constexpr uint32_t kMaxBlockPayload = 1u << 26;

// One columnar block of STID records (struct-of-arrays).
struct ColumnarBlock {
  std::vector<SensorId> sensor;
  std::vector<Timestamp> t;
  std::vector<double> x, y, value, stddev;

  void Add(const StRecord& r) {
    sensor.push_back(r.sensor);
    t.push_back(r.t);
    x.push_back(r.loc.x);
    y.push_back(r.loc.y);
    value.push_back(r.value);
    stddev.push_back(r.stddev);
  }
  [[nodiscard]] StRecord Record(size_t i) const {
    return StRecord(sensor[i], t[i], geometry::Point{x[i], y[i]}, value[i],
                    stddev[i]);
  }
  [[nodiscard]] size_t size() const { return sensor.size(); }
  [[nodiscard]] bool empty() const { return sensor.empty(); }
  void Clear() {
    sensor.clear();
    t.clear();
    x.clear();
    y.clear();
    value.clear();
    stddev.clear();
  }
};

// Header + payload bytes, ready to append to a segment.
[[nodiscard]] std::string EncodeBlock(const ColumnarBlock& block);

// Why a block failed verification. Append-only (reason codes are persisted
// in manifests and surfaced in quarantine ledgers).
enum class BlockDefect : int {
  kNone = 0,
  kShortHeader = 1,    // fewer than kBlockHeaderSize bytes remain: torn append
  kBadMagic = 2,       // not a block boundary
  kBadVersion = 3,     // future/garbage version byte
  kBadLength = 4,      // length field fails the sanity bound
  kShortPayload = 5,   // payload extends past end of segment: torn append
  kBadCrc = 6,         // checksum mismatch: corruption
  kBadPayload = 7,     // CRC fine but column layout inconsistent
  kManifestMismatch = 8,  // block disagrees with its manifest entry
};
const char* BlockDefectName(BlockDefect defect);

struct ParsedBlock {
  BlockDefect defect = BlockDefect::kNone;
  ColumnarBlock block;        // populated when defect == kNone
  uint64_t bytes_consumed = 0;  // header + payload, when parseable
  uint32_t crc = 0;           // header-recorded CRC, when header parseable
};

// Parses the block starting at `offset` in `segment`. Never throws, never
// reads past the end: every malformation maps to a BlockDefect.
[[nodiscard]] ParsedBlock ParseBlockAt(std::string_view segment,
                                       uint64_t offset);

// -------------------------------------------------------------------------
// Manifest
// -------------------------------------------------------------------------

struct BlockEntry {
  uint32_t segment = 0;  // segment file number
  uint32_t index = 0;    // block ordinal within the segment
  uint64_t offset = 0;   // byte offset of the block header
  uint64_t length = 0;   // header + payload bytes
  uint32_t crc = 0;      // must equal the block's self-CRC
  uint64_t row_start = 0;  // global row id of the block's first record
  uint32_t row_count = 0;
  // Rows per sensor inside this block, sensor-ascending. This is the
  // quality metadata that must travel with the data: when a block is
  // quarantined, recovery knows exactly which trajectories lost how many
  // rows without being able to read the payload.
  std::vector<std::pair<SensorId, uint32_t>> sensor_rows;
};

// A quarantine verdict carried in the manifest so a quarantined block
// stays visible (never silently dropped) across reopens. Keeps the byte
// range: tail recovery must know the segment region the dead block
// occupies even though its payload is unreadable.
struct QuarantinedBlockEntry {
  uint32_t segment = 0;
  uint32_t index = 0;
  BlockDefect defect = BlockDefect::kNone;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t row_start = 0;
  uint32_t row_count = 0;
  std::vector<std::pair<SensorId, uint32_t>> sensor_rows;
};

struct Manifest {
  uint64_t gen = 0;
  // Predecessor link: generation + commit CRC of the previous manifest
  // (gen 1 has none). Recovery walks this chain backwards over whatever
  // manifest files survive and reports how many links verify.
  uint64_t prev_gen = 0;
  uint32_t prev_crc = 0;
  std::string field_name;
  uint32_t num_segments = 0;  // segment files 0..num_segments-1 exist
  uint64_t rows = 0;          // total rows ever appended (incl. quarantined)
  std::vector<BlockEntry> blocks;
  std::vector<QuarantinedBlockEntry> quarantined;
};

// Canonical text serialization ending in `commit <crc32c>` over every
// preceding byte; a torn or bit-flipped manifest fails its own check.
[[nodiscard]] std::string SerializeManifest(const Manifest& m);

struct ParsedManifest {
  Manifest manifest;
  uint32_t commit_crc = 0;  // the self-CRC the commit line carried
};
// Fails with DataLoss when the commit CRC does not match (torn/corrupt)
// and InvalidArgument on any structural garbage.
[[nodiscard]] StatusOr<ParsedManifest> ParseManifest(std::string_view text);

[[nodiscard]] std::string ManifestFileName(uint64_t gen);
[[nodiscard]] std::string SegmentFileName(uint32_t segment);
// Parses "MANIFEST-NNNNNN" / "NNNNNN.seg"; false when `name` is neither.
[[nodiscard]] bool ParseManifestFileName(const std::string& name,
                                         uint64_t* gen);
[[nodiscard]] bool ParseSegmentFileName(const std::string& name,
                                        uint32_t* segment);

inline constexpr char kCurrentFileName[] = "CURRENT";
// CURRENT contents: "<manifest-file-name> <commit-crc-hex>\n".
[[nodiscard]] std::string SerializeCurrent(uint64_t gen, uint32_t commit_crc);
[[nodiscard]] Status ParseCurrent(std::string_view text, uint64_t* gen,
                                  uint32_t* commit_crc);

}  // namespace store
}  // namespace sidq

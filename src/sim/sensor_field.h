#pragma once

#include <vector>

#include "core/random.h"
#include "core/stid.h"
#include "core/types.h"
#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {
namespace sim {

// A synthetic spatiotemporal scalar field (e.g. PM2.5 concentration):
// a base level plus Gaussian plumes whose intensity oscillates over time.
// Spatially autocorrelated and varying smoothly -- the two SID
// characteristics Table 1 lists as exploitable by dependency modelling.
class ScalarField {
 public:
  struct Plume {
    geometry::Point center;
    double amplitude = 1.0;
    double sigma = 300.0;   // spatial spread (m)
    double phase = 0.0;     // temporal phase (rad)
  };

  ScalarField(double base, double period_s, std::vector<Plume> plumes)
      : base_(base), period_s_(period_s), plumes_(std::move(plumes)) {}

  // True field value at location p and time t.
  double Value(const geometry::Point& p, Timestamp t) const;

  const std::vector<Plume>& plumes() const { return plumes_; }
  double base() const { return base_; }

  // Random field with `num_plumes` plumes inside `bounds`.
  static ScalarField MakeRandom(const geometry::BBox& bounds, int num_plumes,
                                double base, double max_amplitude,
                                double min_sigma, double max_sigma,
                                double period_s, Rng* rng);

 private:
  double base_;
  double period_s_;
  std::vector<Plume> plumes_;
};

// Uniformly random sensor locations inside `bounds`.
std::vector<geometry::Point> DeploySensors(const geometry::BBox& bounds,
                                           int num_sensors, Rng* rng);

// Samples the true field at each sensor every `interval_ms` for
// `num_samples` steps starting at `start`; no noise (ground truth).
StDataset SampleField(const ScalarField& field,
                      const std::vector<geometry::Point>& sensors,
                      Timestamp start, Timestamp interval_ms,
                      int num_samples, const std::string& field_name);

// --- STID degradation injectors (Table 1 characteristics) ---

// [Noisy] Gaussian measurement noise on every value; stddev recorded.
StDataset AddValueNoise(const StDataset& truth, double sigma, Rng* rng);

// [Noisy/erroneous] Replaces a fraction `rate` of records with spikes of
// +/- `magnitude`; per-series outlier labels (aligned with records) go to
// `labels` when non-null.
StDataset AddValueSpikes(const StDataset& truth, double rate,
                         double magnitude, Rng* rng,
                         std::vector<std::vector<bool>>* labels = nullptr);

// [Erroneous] A fraction of sensors gets stuck: from a random time on they
// repeat their last value. `stuck` (if non-null) receives per-series flags.
StDataset AddStuckSensors(const StDataset& truth, double sensor_fraction,
                          Rng* rng, std::vector<bool>* stuck = nullptr);

// [Erroneous] A fraction of sensors drifts linearly by `drift_per_sample`
// units per record.
StDataset AddSensorDrift(const StDataset& truth, double sensor_fraction,
                         double drift_per_sample, Rng* rng,
                         std::vector<bool>* drifting = nullptr);

// [Temporally discrete] Drops each record with probability drop_prob.
StDataset DropRecords(const StDataset& truth, double drop_prob, Rng* rng);

// [Spatially discrete] Keeps only a random subset of sensors.
StDataset DropSensors(const StDataset& truth, double keep_fraction, Rng* rng);

// [Heterogeneous] Rescales a fraction of series by `factor` (unit mismatch).
StDataset ScaleSeriesUnits(const StDataset& truth, double sensor_fraction,
                           double factor, Rng* rng);

// [Multi-scaled] Quantizes all values to multiples of `step`.
StDataset QuantizeValues(const StDataset& truth, double step);

}  // namespace sim
}  // namespace sidq

#pragma once

#include <vector>

#include "core/random.h"
#include "core/symbolic.h"
#include "core/types.h"

namespace sidq {
namespace sim {

// An RFID (or Bluetooth/infrared) reader deployment: readers are regions
// with an adjacency graph induced by the walkable space. Objects move from
// region to adjacent region; readers detect imperfectly, yielding the false
// negatives and false positives that Section 2.2.4 targets.
class RfidDeployment {
 public:
  // A corridor of `num_readers` readers in a chain: reader i is adjacent to
  // i-1 and i+1.
  static RfidDeployment Corridor(int num_readers);
  // A ring of `num_readers` readers (closed corridor).
  static RfidDeployment Ring(int num_readers);

  size_t num_readers() const { return adjacency_.size(); }
  const std::vector<RegionId>& neighbors(RegionId r) const {
    return adjacency_[r];
  }
  bool Adjacent(RegionId a, RegionId b) const;

  // Simulates an object walking `num_steps` region transitions starting at
  // a random reader, dwelling `dwell_ticks` ticks (of `tick_ms`) in each
  // region; returns the ground-truth symbolic trajectory with one reading
  // per tick.
  SymbolicTrajectory SimulateWalk(ObjectId object, int num_steps,
                                  int dwell_ticks, Timestamp tick_ms,
                                  Rng* rng) const;

  // Degrades a ground-truth symbolic trajectory:
  //  - each reading is missed (false negative) with probability `fn_rate`;
  //  - with probability `fp_rate` an extra ghost reading from a random
  //    neighbouring reader is emitted at the same tick (cross-reads).
  // The result keeps time order.
  SymbolicTrajectory Degrade(const SymbolicTrajectory& truth, double fn_rate,
                             double fp_rate, Rng* rng) const;

 private:
  std::vector<std::vector<RegionId>> adjacency_;
};

}  // namespace sim
}  // namespace sidq

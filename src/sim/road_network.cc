#include "sim/road_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "core/logging.h"
#include "geometry/segment.h"

namespace sidq {
namespace sim {

NodeId RoadNetwork::AddNode(const geometry::Point& p) {
  nodes_.push_back(Node{p});
  adjacency_.emplace_back();
  index_built_ = false;
  return static_cast<NodeId>(nodes_.size()) - 1;
}

StatusOr<EdgeId> RoadNetwork::AddEdge(NodeId u, NodeId v) {
  if (u >= nodes_.size() || v >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loop edge");
  Edge e;
  e.u = u;
  e.v = v;
  e.length = geometry::Distance(nodes_[u].p, nodes_[v].p);
  edges_.push_back(e);
  const EdgeId id = static_cast<EdgeId>(edges_.size()) - 1;
  adjacency_[u].push_back(id);
  adjacency_[v].push_back(id);
  index_built_ = false;
  return id;
}

geometry::BBox RoadNetwork::Bounds() const {
  geometry::BBox box;
  for (const Node& n : nodes_) box.Extend(n.p);
  return box;
}

NodeId RoadNetwork::Opposite(EdgeId e, NodeId from) const {
  const Edge& edge = edges_[e];
  return edge.u == from ? edge.v : edge.u;
}

StatusOr<std::vector<NodeId>> RoadNetwork::ShortestPath(NodeId from,
                                                        NodeId to) const {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("node out of range");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodes_.size(), kInf);
  std::vector<NodeId> prev(nodes_.size(), kInvalidNodeId);
  using QE = std::pair<double, NodeId>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> pq;
  dist[from] = 0.0;
  pq.emplace(0.0, from);
  last_nodes_expanded = 0;
  while (!pq.empty()) {
    const auto [d, n] = pq.top();
    pq.pop();
    if (d > dist[n]) continue;
    ++last_nodes_expanded;
    if (n == to) break;
    for (EdgeId eid : adjacency_[n]) {
      const NodeId m = Opposite(eid, n);
      const double nd = d + edges_[eid].length;
      if (nd < dist[m]) {
        dist[m] = nd;
        prev[m] = n;
        pq.emplace(nd, m);
      }
    }
  }
  if (dist[to] == kInf) return Status::NotFound("no path");
  std::vector<NodeId> path;
  for (NodeId n = to; n != kInvalidNodeId; n = prev[n]) {
    path.push_back(n);
    if (n == from) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != from) return Status::NotFound("no path");
  return path;
}

StatusOr<std::vector<NodeId>> RoadNetwork::ShortestPathAStar(
    NodeId from, NodeId to) const {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("node out of range");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const geometry::Point goal = nodes_[to].p;
  std::vector<double> g(nodes_.size(), kInf);
  std::vector<NodeId> prev(nodes_.size(), kInvalidNodeId);
  // (f = g + h, node)
  using QE = std::pair<double, NodeId>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> pq;
  g[from] = 0.0;
  pq.emplace(geometry::Distance(nodes_[from].p, goal), from);
  last_nodes_expanded = 0;
  while (!pq.empty()) {
    const auto [f, n] = pq.top();
    pq.pop();
    // Stale entry check against the best-known f for n.
    if (f > g[n] + geometry::Distance(nodes_[n].p, goal) + 1e-9) continue;
    ++last_nodes_expanded;
    if (n == to) break;
    for (EdgeId eid : adjacency_[n]) {
      const NodeId m = Opposite(eid, n);
      const double ng = g[n] + edges_[eid].length;
      if (ng < g[m]) {
        g[m] = ng;
        prev[m] = n;
        pq.emplace(ng + geometry::Distance(nodes_[m].p, goal), m);
      }
    }
  }
  if (g[to] == kInf) return Status::NotFound("no path");
  std::vector<NodeId> path;
  for (NodeId n = to; n != kInvalidNodeId; n = prev[n]) {
    path.push_back(n);
    if (n == from) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != from) return Status::NotFound("no path");
  return path;
}

double RoadNetwork::ShortestPathLength(NodeId from, NodeId to) const {
  auto path = ShortestPath(from, to);
  if (!path.ok()) return std::numeric_limits<double>::infinity();
  double len = 0.0;
  const std::vector<NodeId>& p = path.value();
  for (size_t i = 1; i < p.size(); ++i) {
    len += geometry::Distance(nodes_[p[i - 1]].p, nodes_[p[i]].p);
  }
  return len;
}

void RoadNetwork::BuildSpatialIndex(double cell_size) {
  edge_index_ = index::GridIndex(cell_size);
  max_edge_length_ = 0.0;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const geometry::Point mid =
        geometry::Lerp(nodes_[edges_[e].u].p, nodes_[edges_[e].v].p, 0.5);
    edge_index_.Insert(e, mid);
    max_edge_length_ = std::max(max_edge_length_, edges_[e].length);
  }
  index_built_ = true;
}

std::vector<EdgeId> RoadNetwork::EdgesNear(const geometry::Point& p,
                                           double radius) const {
  SIDQ_CHECK(index_built_) << "call BuildSpatialIndex() first";
  std::vector<EdgeId> out;
  // A point within `radius` of an edge is within radius + len/2 of its
  // midpoint.
  const auto ids =
      edge_index_.RadiusQuery(p, radius + max_edge_length_ / 2.0);
  for (uint64_t id : ids) {
    const EdgeId e = static_cast<EdgeId>(id);
    if (DistanceToEdge(e, p) <= radius) out.push_back(e);
  }
  return out;
}

StatusOr<EdgeId> RoadNetwork::NearestEdge(const geometry::Point& p) const {
  SIDQ_CHECK(index_built_) << "call BuildSpatialIndex() first";
  if (edges_.empty()) return Status::NotFound("no edges");
  // Expanding radius search; falls back to a full scan if needed.
  double radius = max_edge_length_;
  for (int attempt = 0; attempt < 8; ++attempt) {
    EdgeId best = kInvalidEdgeId;
    double best_d = std::numeric_limits<double>::infinity();
    for (EdgeId e : EdgesNear(p, radius)) {
      const double d = DistanceToEdge(e, p);
      if (d < best_d) {
        best_d = d;
        best = e;
      }
    }
    if (best != kInvalidEdgeId) return best;
    radius *= 4.0;
  }
  EdgeId best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const double d = DistanceToEdge(e, p);
    if (d < best_d) {
      best_d = d;
      best = e;
    }
  }
  return best;
}

StatusOr<NodeId> RoadNetwork::NearestNode(const geometry::Point& p) const {
  if (nodes_.empty()) return Status::NotFound("no nodes");
  NodeId best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    const double d = geometry::DistanceSq(nodes_[n].p, p);
    if (d < best_d) {
      best_d = d;
      best = n;
    }
  }
  return best;
}

geometry::Point RoadNetwork::ProjectToEdge(EdgeId e,
                                           const geometry::Point& p) const {
  const Edge& edge = edges_[e];
  return geometry::ClosestPointOnSegment(p, nodes_[edge.u].p,
                                         nodes_[edge.v].p);
}

double RoadNetwork::DistanceToEdge(EdgeId e, const geometry::Point& p) const {
  const Edge& edge = edges_[e];
  return geometry::PointSegmentDistance(p, nodes_[edge.u].p, nodes_[edge.v].p);
}

RoadNetwork MakeGridRoadNetwork(int cols, int rows, double spacing,
                                double jitter, double drop_edge_prob,
                                Rng* rng) {
  SIDQ_CHECK(cols >= 2 && rows >= 2) << "grid must be at least 2x2";
  RoadNetwork net;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double x = c * spacing + rng->Gaussian(0.0, jitter);
      const double y = r * spacing + rng->Gaussian(0.0, jitter);
      net.AddNode(geometry::Point(x, y));
    }
  }
  auto id_of = [cols](int r, int c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols && !rng->Bernoulli(drop_edge_prob)) {
        SIDQ_CHECK(net.AddEdge(id_of(r, c), id_of(r, c + 1)).ok());
      }
      if (r + 1 < rows && !rng->Bernoulli(drop_edge_prob)) {
        SIDQ_CHECK(net.AddEdge(id_of(r, c), id_of(r + 1, c)).ok());
      }
    }
  }
  net.BuildSpatialIndex(spacing);
  return net;
}

StatusOr<std::vector<NodeId>> RandomRoute(const RoadNetwork& net,
                                          size_t min_hops, Rng* rng) {
  if (net.num_nodes() == 0) return Status::FailedPrecondition("empty network");
  for (int attempt = 0; attempt < 32; ++attempt) {
    const NodeId start = static_cast<NodeId>(
        rng->UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    std::vector<NodeId> route{start};
    NodeId prev = kInvalidNodeId;
    NodeId cur = start;
    while (route.size() < min_hops) {
      const auto& inc = net.incident_edges(cur);
      std::vector<NodeId> candidates;
      for (EdgeId e : inc) {
        const NodeId next = net.Opposite(e, cur);
        if (next != prev) candidates.push_back(next);
      }
      if (candidates.empty()) break;
      const NodeId next = candidates[static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(candidates.size()) - 1))];
      route.push_back(next);
      prev = cur;
      cur = next;
    }
    if (route.size() >= min_hops) return route;
  }
  return Status::Internal("could not generate route; network too sparse");
}

}  // namespace sim
}  // namespace sidq

#include "sim/trajectory_sim.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sidq {
namespace sim {

StatusOr<Trajectory> TrajectorySimulator::AlongRoute(
    const RoadNetwork& net, const std::vector<NodeId>& route,
    ObjectId object_id) const {
  if (route.size() < 2) {
    return Status::InvalidArgument("route needs at least 2 nodes");
  }
  // Build the polyline of the route.
  std::vector<geometry::Point> polyline;
  polyline.reserve(route.size());
  for (NodeId n : route) {
    if (n >= net.num_nodes()) {
      return Status::InvalidArgument("route node out of range");
    }
    polyline.push_back(net.node(n).p);
  }

  Trajectory out(object_id);
  Timestamp t = options_.start_time;
  size_t seg = 0;                  // current polyline segment
  double seg_pos = 0.0;            // metres travelled along current segment
  geometry::Point cur = polyline.front();
  SIDQ_CHECK_OK(out.Append(TrajectoryPoint(t, cur)));
  const double dt = TimestampToSeconds(options_.sample_interval_ms);

  while (seg + 1 < polyline.size()) {
    double speed = std::max(
        0.5, rng_->Gaussian(options_.mean_speed_mps, options_.speed_jitter));
    double remaining = speed * dt;
    while (remaining > 0.0 && seg + 1 < polyline.size()) {
      const double seg_len =
          geometry::Distance(polyline[seg], polyline[seg + 1]);
      const double left_in_seg = seg_len - seg_pos;
      if (remaining < left_in_seg) {
        seg_pos += remaining;
        remaining = 0.0;
      } else {
        remaining -= left_in_seg;
        ++seg;
        seg_pos = 0.0;
      }
    }
    if (seg + 1 >= polyline.size()) {
      cur = polyline.back();
    } else {
      const double seg_len =
          geometry::Distance(polyline[seg], polyline[seg + 1]);
      const double f = seg_len > 0.0 ? seg_pos / seg_len : 0.0;
      cur = geometry::Lerp(polyline[seg], polyline[seg + 1], f);
    }
    t += options_.sample_interval_ms;
    SIDQ_CHECK_OK(out.Append(TrajectoryPoint(t, cur)));
  }
  return out;
}

StatusOr<Trajectory> TrajectorySimulator::RandomOnNetwork(
    const RoadNetwork& net, size_t min_hops, ObjectId object_id) const {
  SIDQ_ASSIGN_OR_RETURN(std::vector<NodeId> route,
                        RandomRoute(net, min_hops, rng_));
  return AlongRoute(net, route, object_id);
}

Trajectory TrajectorySimulator::RandomWaypoint(const geometry::BBox& bounds,
                                               size_t num_samples,
                                               ObjectId object_id) const {
  Trajectory out(object_id);
  if (num_samples == 0) return out;
  out.Reserve(num_samples);
  geometry::Point cur(rng_->Uniform(bounds.min_x, bounds.max_x),
                      rng_->Uniform(bounds.min_y, bounds.max_y));
  geometry::Point target(rng_->Uniform(bounds.min_x, bounds.max_x),
                         rng_->Uniform(bounds.min_y, bounds.max_y));
  Timestamp t = options_.start_time;
  const double dt = TimestampToSeconds(options_.sample_interval_ms);
  for (size_t i = 0; i < num_samples; ++i) {
    SIDQ_CHECK_OK(out.Append(TrajectoryPoint(t, cur)));
    const double speed = std::max(
        0.5, rng_->Gaussian(options_.mean_speed_mps, options_.speed_jitter));
    double step = speed * dt;
    while (step > 0.0) {
      const double to_target = geometry::Distance(cur, target);
      if (to_target <= step) {
        cur = target;
        step -= to_target;
        target = geometry::Point(rng_->Uniform(bounds.min_x, bounds.max_x),
                                 rng_->Uniform(bounds.min_y, bounds.max_y));
      } else {
        cur = cur + (target - cur).Normalized() * step;
        step = 0.0;
      }
    }
    t += options_.sample_interval_ms;
  }
  return out;
}

Fleet MakeFleet(int cols, int rows, double spacing, int num_objects,
                size_t min_hops, Rng* rng,
                TrajectorySimulator::Options sim_options) {
  Fleet fleet;
  fleet.network =
      MakeGridRoadNetwork(cols, rows, spacing, spacing * 0.05, 0.05, rng);
  TrajectorySimulator simulator(sim_options, rng);
  fleet.trajectories.reserve(static_cast<size_t>(std::max(0, num_objects)));
  for (int i = 0; i < num_objects; ++i) {
    auto tr = simulator.RandomOnNetwork(fleet.network, min_hops,
                                        static_cast<ObjectId>(i));
    SIDQ_CHECK(tr.ok()) << tr.status();
    fleet.trajectories.push_back(std::move(tr).value());
  }
  return fleet;
}

}  // namespace sim
}  // namespace sidq

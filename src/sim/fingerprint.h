#pragma once

#include <vector>

#include "core/random.h"
#include "geometry/bbox.h"
#include "geometry/point.h"

namespace sidq {
namespace sim {

// A WiFi/BLE access point with a log-distance path-loss radio model.
struct AccessPoint {
  geometry::Point p;
  double tx_power_dbm = -30.0;   // RSSI at 1 m
  double path_loss_exponent = 3.0;
};

// Simulated radio environment for fingerprint- and range-based indoor
// positioning: produces RSSI vectors and range measurements with
// controllable noise.
class RssiWorld {
 public:
  RssiWorld(std::vector<AccessPoint> aps) : aps_(std::move(aps)) {}

  size_t num_aps() const { return aps_.size(); }
  const std::vector<AccessPoint>& aps() const { return aps_; }

  // Noise-free RSSI (dBm) of AP `i` at location `p`.
  double TrueRssi(size_t i, const geometry::Point& p) const;
  // RSSI vector across all APs with Gaussian shadowing noise sigma (dB).
  std::vector<double> Measure(const geometry::Point& p, double sigma_db,
                              Rng* rng) const;
  // Range (m) to AP `i` with Gaussian ranging noise sigma (m), floored at 0.
  double MeasureRange(size_t i, const geometry::Point& p, double sigma_m,
                      Rng* rng) const;

  // Random deployment of `num_aps` APs inside `bounds`.
  static RssiWorld MakeRandom(const geometry::BBox& bounds, int num_aps,
                              Rng* rng);

 private:
  std::vector<AccessPoint> aps_;
};

// One labelled radio fingerprint: the survey location and its RSSI vector.
struct Fingerprint {
  geometry::Point p;
  std::vector<double> rssi;
};

// Builds a survey database on a uniform grid of `cols` x `rows` cells over
// `bounds`; each fingerprint averages `samples_per_cell` noisy measurements
// (the offline phase of fingerprint positioning).
std::vector<Fingerprint> BuildFingerprintDatabase(
    const RssiWorld& world, const geometry::BBox& bounds, int cols, int rows,
    int samples_per_cell, double sigma_db, Rng* rng);

}  // namespace sim
}  // namespace sidq

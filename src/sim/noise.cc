#include "sim/noise.h"

#include <cmath>
#include <limits>

#include "core/failpoint.h"

namespace sidq {
namespace sim {

Trajectory AddGpsNoise(const Trajectory& truth, double sigma, Rng* rng) {
  // Chaos site (corrupt-only -- injectors return Trajectory, not Status):
  // a fired kCorrupt replaces the first noisy fix with a non-finite
  // coordinate, manufacturing an object every downstream refine stage must
  // reject. Error/stall actions do not apply here and are ignored.
  const auto fp = EvaluateFailPoint("sim.noise.gps", truth.object_id());
  const bool corrupt =
      fp.has_value() && fp->action == FailPointAction::kCorrupt;
  Trajectory out(truth.object_id());
  out.Reserve(truth.size());
  for (const TrajectoryPoint& pt : truth.points()) {
    geometry::Point noisy(pt.p.x + rng->Gaussian(0.0, sigma),
                          pt.p.y + rng->Gaussian(0.0, sigma));
    if (corrupt && out.empty()) {
      noisy.x = std::numeric_limits<double>::quiet_NaN();
    }
    out.AppendUnordered(TrajectoryPoint(pt.t, noisy, sigma));
  }
  return out;
}

Trajectory AddOutliers(const Trajectory& truth, double rate, double min_mag,
                       double max_mag, Rng* rng,
                       std::vector<bool>* is_outlier) {
  Trajectory out(truth.object_id());
  out.Reserve(truth.size());
  if (is_outlier != nullptr) {
    is_outlier->assign(truth.size(), false);
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    TrajectoryPoint pt = truth[i];
    if (rng->Bernoulli(rate)) {
      const double mag = rng->Uniform(min_mag, max_mag);
      const double dir = rng->Uniform(0.0, 2.0 * M_PI);
      pt.p.x += mag * std::cos(dir);
      pt.p.y += mag * std::sin(dir);
      if (is_outlier != nullptr) (*is_outlier)[i] = true;
    }
    out.AppendUnordered(pt);
  }
  return out;
}

Trajectory DropSamples(const Trajectory& truth, double drop_prob, Rng* rng) {
  Trajectory out(truth.object_id());
  out.Reserve(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    const bool endpoint = i == 0 || i + 1 == truth.size();
    if (endpoint || !rng->Bernoulli(drop_prob)) {
      out.AppendUnordered(truth[i]);
    }
  }
  return out;
}

Trajectory Resample(const Trajectory& truth, Timestamp interval_ms) {
  Trajectory out(truth.object_id());
  if (truth.empty()) return out;
  out.Reserve(truth.size());
  Timestamp next = truth.front().t;
  for (const TrajectoryPoint& pt : truth.points()) {
    if (pt.t >= next) {
      out.AppendUnordered(pt);
      next = pt.t + interval_ms;
    }
  }
  if (out.back().t != truth.back().t) {
    out.AppendUnordered(truth.back());
  }
  return out;
}

Trajectory DuplicateSamples(const Trajectory& truth, double dup_prob,
                            Rng* rng) {
  Trajectory out(truth.object_id());
  out.Reserve(truth.size());
  for (const TrajectoryPoint& pt : truth.points()) {
    out.AppendUnordered(pt);
    if (rng->Bernoulli(dup_prob)) {
      TrajectoryPoint dup = pt;
      dup.t += rng->UniformInt(0, 1);
      out.AppendUnordered(dup);
    }
  }
  out.SortByTime();
  return out;
}

Trajectory AddDeliveryDelay(const Trajectory& truth, double mean_delay_s,
                            Rng* rng, std::vector<Timestamp>* arrival) {
  Trajectory out = truth;
  if (arrival != nullptr) {
    arrival->clear();
    arrival->reserve(truth.size());
    for (const TrajectoryPoint& pt : truth.points()) {
      const double delay_s =
          mean_delay_s > 0.0 ? rng->Exponential(1.0 / mean_delay_s) : 0.0;
      arrival->push_back(pt.t + SecondsToTimestamp(delay_s));
    }
  }
  return out;
}

Trajectory JitterTimestamps(const Trajectory& truth, double sigma_ms,
                            Rng* rng) {
  Trajectory out(truth.object_id());
  out.Reserve(truth.size());
  for (const TrajectoryPoint& pt : truth.points()) {
    TrajectoryPoint jittered = pt;
    jittered.t = pt.t + static_cast<Timestamp>(rng->Gaussian(0.0, sigma_ms));
    out.AppendUnordered(jittered);
  }
  return out;
}

Trajectory QuantizeCoordinates(const Trajectory& truth, double step) {
  Trajectory out(truth.object_id());
  out.Reserve(truth.size());
  for (const TrajectoryPoint& pt : truth.points()) {
    TrajectoryPoint q = pt;
    q.p.x = std::round(pt.p.x / step) * step;
    q.p.y = std::round(pt.p.y / step) * step;
    out.AppendUnordered(q);
  }
  return out;
}

Trajectory ScaleUnits(const Trajectory& truth, double factor) {
  Trajectory out(truth.object_id());
  out.Reserve(truth.size());
  for (const TrajectoryPoint& pt : truth.points()) {
    TrajectoryPoint s = pt;
    s.p.x *= factor;
    s.p.y *= factor;
    out.AppendUnordered(s);
  }
  return out;
}

Trajectory TruncateTail(const Trajectory& truth, Timestamp cut_ms) {
  Trajectory out(truth.object_id());
  if (truth.empty()) return out;
  out.Reserve(truth.size());
  const Timestamp cutoff = truth.back().t - cut_ms;
  for (const TrajectoryPoint& pt : truth.points()) {
    if (pt.t <= cutoff) out.AppendUnordered(pt);
  }
  if (out.empty()) out.AppendUnordered(truth.front());
  return out;
}

}  // namespace sim
}  // namespace sidq

#include "sim/rfid.h"

#include <algorithm>

#include "core/logging.h"

namespace sidq {
namespace sim {

RfidDeployment RfidDeployment::Corridor(int num_readers) {
  SIDQ_CHECK(num_readers >= 2) << "corridor needs >= 2 readers";
  RfidDeployment d;
  d.adjacency_.resize(num_readers);
  for (int i = 0; i < num_readers; ++i) {
    if (i > 0) d.adjacency_[i].push_back(static_cast<RegionId>(i - 1));
    if (i + 1 < num_readers) {
      d.adjacency_[i].push_back(static_cast<RegionId>(i + 1));
    }
  }
  return d;
}

RfidDeployment RfidDeployment::Ring(int num_readers) {
  SIDQ_CHECK(num_readers >= 3) << "ring needs >= 3 readers";
  RfidDeployment d;
  d.adjacency_.resize(num_readers);
  for (int i = 0; i < num_readers; ++i) {
    d.adjacency_[i].push_back(
        static_cast<RegionId>((i + num_readers - 1) % num_readers));
    d.adjacency_[i].push_back(static_cast<RegionId>((i + 1) % num_readers));
  }
  return d;
}

bool RfidDeployment::Adjacent(RegionId a, RegionId b) const {
  if (a >= adjacency_.size()) return false;
  const auto& nb = adjacency_[a];
  return std::find(nb.begin(), nb.end(), b) != nb.end();
}

SymbolicTrajectory RfidDeployment::SimulateWalk(ObjectId object,
                                                int num_steps,
                                                int dwell_ticks,
                                                Timestamp tick_ms,
                                                Rng* rng) const {
  SymbolicTrajectory out(object);
  RegionId cur = static_cast<RegionId>(
      rng->UniformInt(0, static_cast<int64_t>(num_readers()) - 1));
  Timestamp t = 0;
  for (int step = 0; step < num_steps; ++step) {
    for (int tick = 0; tick < dwell_ticks; ++tick) {
      out.Append(cur, t);
      t += tick_ms;
    }
    const auto& nb = adjacency_[cur];
    if (nb.empty()) break;
    cur = nb[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(nb.size()) - 1))];
  }
  return out;
}

SymbolicTrajectory RfidDeployment::Degrade(const SymbolicTrajectory& truth,
                                           double fn_rate, double fp_rate,
                                           Rng* rng) const {
  SymbolicTrajectory out(truth.object());
  for (const SymbolicReading& r : truth.readings()) {
    if (!rng->Bernoulli(fn_rate)) {
      out.Append(r.region, r.t);
    }
    if (rng->Bernoulli(fp_rate)) {
      const auto& nb = adjacency_[r.region];
      if (!nb.empty()) {
        const RegionId ghost = nb[static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(nb.size()) - 1))];
        out.Append(ghost, r.t);
      }
    }
  }
  out.SortByTime();
  return out;
}

}  // namespace sim
}  // namespace sidq

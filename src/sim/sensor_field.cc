#include "sim/sensor_field.h"

#include <cmath>

#include "core/logging.h"

namespace sidq {
namespace sim {

double ScalarField::Value(const geometry::Point& p, Timestamp t) const {
  double v = base_;
  const double ts = TimestampToSeconds(t);
  for (const Plume& plume : plumes_) {
    const double d_sq = geometry::DistanceSq(p, plume.center);
    const double spatial =
        std::exp(-d_sq / (2.0 * plume.sigma * plume.sigma));
    const double temporal =
        1.0 + 0.3 * std::sin(2.0 * M_PI * ts / period_s_ + plume.phase);
    v += plume.amplitude * spatial * temporal;
  }
  return v;
}

ScalarField ScalarField::MakeRandom(const geometry::BBox& bounds,
                                    int num_plumes, double base,
                                    double max_amplitude, double min_sigma,
                                    double max_sigma, double period_s,
                                    Rng* rng) {
  std::vector<Plume> plumes;
  plumes.reserve(num_plumes);
  for (int i = 0; i < num_plumes; ++i) {
    Plume p;
    p.center = geometry::Point(rng->Uniform(bounds.min_x, bounds.max_x),
                               rng->Uniform(bounds.min_y, bounds.max_y));
    p.amplitude = rng->Uniform(max_amplitude / 4.0, max_amplitude);
    p.sigma = rng->Uniform(min_sigma, max_sigma);
    p.phase = rng->Uniform(0.0, 2.0 * M_PI);
    plumes.push_back(p);
  }
  return ScalarField(base, period_s, std::move(plumes));
}

std::vector<geometry::Point> DeploySensors(const geometry::BBox& bounds,
                                           int num_sensors, Rng* rng) {
  std::vector<geometry::Point> out;
  out.reserve(num_sensors);
  for (int i = 0; i < num_sensors; ++i) {
    out.emplace_back(rng->Uniform(bounds.min_x, bounds.max_x),
                     rng->Uniform(bounds.min_y, bounds.max_y));
  }
  return out;
}

StDataset SampleField(const ScalarField& field,
                      const std::vector<geometry::Point>& sensors,
                      Timestamp start, Timestamp interval_ms, int num_samples,
                      const std::string& field_name) {
  StDataset out(field_name);
  for (size_t s = 0; s < sensors.size(); ++s) {
    StSeries series(static_cast<SensorId>(s), sensors[s]);
    for (int i = 0; i < num_samples; ++i) {
      const Timestamp t = start + i * interval_ms;
      SIDQ_CHECK_OK(series.Append(t, field.Value(sensors[s], t)));
    }
    out.AddSeries(std::move(series));
  }
  return out;
}

StDataset AddValueNoise(const StDataset& truth, double sigma, Rng* rng) {
  StDataset out(truth.field_name());
  for (const StSeries& s : truth.series()) {
    StSeries noisy(s.sensor(), s.loc());
    for (const StRecord& r : s.records()) {
      SIDQ_CHECK_OK(
          noisy.Append(r.t, r.value + rng->Gaussian(0.0, sigma), sigma));
    }
    out.AddSeries(std::move(noisy));
  }
  return out;
}

StDataset AddValueSpikes(const StDataset& truth, double rate,
                         double magnitude, Rng* rng,
                         std::vector<std::vector<bool>>* labels) {
  StDataset out(truth.field_name());
  if (labels != nullptr) labels->clear();
  for (const StSeries& s : truth.series()) {
    StSeries spiked(s.sensor(), s.loc());
    std::vector<bool> flags(s.size(), false);
    for (size_t i = 0; i < s.size(); ++i) {
      double v = s[i].value;
      if (rng->Bernoulli(rate)) {
        v += rng->Bernoulli(0.5) ? magnitude : -magnitude;
        flags[i] = true;
      }
      SIDQ_CHECK_OK(spiked.Append(s[i].t, v, s[i].stddev));
    }
    out.AddSeries(std::move(spiked));
    if (labels != nullptr) labels->push_back(std::move(flags));
  }
  return out;
}

StDataset AddStuckSensors(const StDataset& truth, double sensor_fraction,
                          Rng* rng, std::vector<bool>* stuck) {
  StDataset out(truth.field_name());
  if (stuck != nullptr) stuck->clear();
  for (const StSeries& s : truth.series()) {
    const bool is_stuck = rng->Bernoulli(sensor_fraction) && s.size() > 2;
    StSeries series(s.sensor(), s.loc());
    size_t stuck_from =
        is_stuck ? static_cast<size_t>(rng->UniformInt(
                       1, static_cast<int64_t>(s.size()) - 1))
                 : s.size();
    double stuck_value = 0.0;
    for (size_t i = 0; i < s.size(); ++i) {
      double v = s[i].value;
      if (i >= stuck_from) {
        if (i == stuck_from) stuck_value = s[i - 1].value;
        v = stuck_value;
      }
      SIDQ_CHECK_OK(series.Append(s[i].t, v, s[i].stddev));
    }
    out.AddSeries(std::move(series));
    if (stuck != nullptr) stuck->push_back(is_stuck);
  }
  return out;
}

StDataset AddSensorDrift(const StDataset& truth, double sensor_fraction,
                         double drift_per_sample, Rng* rng,
                         std::vector<bool>* drifting) {
  StDataset out(truth.field_name());
  if (drifting != nullptr) drifting->clear();
  for (const StSeries& s : truth.series()) {
    const bool drifts = rng->Bernoulli(sensor_fraction);
    StSeries series(s.sensor(), s.loc());
    for (size_t i = 0; i < s.size(); ++i) {
      const double v =
          s[i].value +
          (drifts ? drift_per_sample * static_cast<double>(i) : 0.0);
      SIDQ_CHECK_OK(series.Append(s[i].t, v, s[i].stddev));
    }
    out.AddSeries(std::move(series));
    if (drifting != nullptr) drifting->push_back(drifts);
  }
  return out;
}

StDataset DropRecords(const StDataset& truth, double drop_prob, Rng* rng) {
  StDataset out(truth.field_name());
  for (const StSeries& s : truth.series()) {
    StSeries series(s.sensor(), s.loc());
    for (size_t i = 0; i < s.size(); ++i) {
      const bool endpoint = i == 0 || i + 1 == s.size();
      if (endpoint || !rng->Bernoulli(drop_prob)) {
        SIDQ_CHECK_OK(series.Append(s[i].t, s[i].value, s[i].stddev));
      }
    }
    out.AddSeries(std::move(series));
  }
  return out;
}

StDataset DropSensors(const StDataset& truth, double keep_fraction,
                      Rng* rng) {
  StDataset out(truth.field_name());
  for (const StSeries& s : truth.series()) {
    if (rng->Bernoulli(keep_fraction)) out.AddSeries(s);
  }
  if (out.num_sensors() == 0 && truth.num_sensors() > 0) {
    out.AddSeries(truth.series().front());
  }
  return out;
}

StDataset ScaleSeriesUnits(const StDataset& truth, double sensor_fraction,
                           double factor, Rng* rng) {
  StDataset out(truth.field_name());
  for (const StSeries& s : truth.series()) {
    const bool scaled = rng->Bernoulli(sensor_fraction);
    StSeries series(s.sensor(), s.loc());
    for (const StRecord& r : s.records()) {
      SIDQ_CHECK_OK(
          series.Append(r.t, scaled ? r.value * factor : r.value, r.stddev));
    }
    out.AddSeries(std::move(series));
  }
  return out;
}

StDataset QuantizeValues(const StDataset& truth, double step) {
  StDataset out(truth.field_name());
  for (const StSeries& s : truth.series()) {
    StSeries series(s.sensor(), s.loc());
    for (const StRecord& r : s.records()) {
      SIDQ_CHECK_OK(
          series.Append(r.t, std::round(r.value / step) * step, r.stddev));
    }
    out.AddSeries(std::move(series));
  }
  return out;
}

}  // namespace sim
}  // namespace sidq

#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/random.h"
#include "core/status.h"
#include "core/statusor.h"
#include "core/types.h"
#include "geometry/bbox.h"
#include "geometry/point.h"
#include "index/grid_index.h"

namespace sidq {
namespace sim {

// Relaxed atomic counter that keeps value semantics: copies snapshot the
// current count, so an owning object stays copyable/movable. Used for
// const-method statistics that fleet execution may bump from many worker
// threads (data-race-free; interleaved writers make the value approximate,
// which is fine for search-effort stats). Atomics-only by design -- it
// carries no capability and needs no SIDQ_GUARDED_BY; the capability map
// in DESIGN.md ("Concurrency & locking discipline") lists it with the
// other lock-free structures, and its values are scheduling-dependent, so
// they must never feed golden-tested output (they are kVolatile-class
// stats, same rule as obs::MetricStability::kVolatile).
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter& other) : v_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    v_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(size_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator size_t() const { return load(); }
  size_t load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<size_t> v_{0};
};

// A planar road network: undirected edges between embedded nodes. Serves as
// the spatial constraint substrate for map matching, route inference,
// network-constrained compression, and trajectory simulation.
class RoadNetwork {
 public:
  struct Node {
    geometry::Point p;
  };
  struct Edge {
    NodeId u = kInvalidNodeId;
    NodeId v = kInvalidNodeId;
    double length = 0.0;
  };

  RoadNetwork() = default;

  NodeId AddNode(const geometry::Point& p);
  // Adds an undirected edge; fails on unknown endpoints or self-loops.
  [[nodiscard]] StatusOr<EdgeId> AddEdge(NodeId u, NodeId v);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  const Edge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<Edge>& edges() const { return edges_; }
  // Edge ids incident to node `id`.
  const std::vector<EdgeId>& incident_edges(NodeId id) const {
    return adjacency_[id];
  }
  geometry::BBox Bounds() const;

  // Other endpoint of `e` as seen from `from`.
  NodeId Opposite(EdgeId e, NodeId from) const;

  // Dijkstra shortest path between nodes; returns node sequence (inclusive).
  [[nodiscard]] StatusOr<std::vector<NodeId>> ShortestPath(NodeId from, NodeId to) const;
  // A* shortest path with the Euclidean heuristic (admissible because edge
  // lengths are Euclidean); same result as ShortestPath, fewer expansions.
  [[nodiscard]] StatusOr<std::vector<NodeId>> ShortestPathAStar(NodeId from,
                                                  NodeId to) const;
  // Length of the shortest path, or infinity when unreachable.
  double ShortestPathLength(NodeId from, NodeId to) const;
  // Nodes expanded by the most recent ShortestPath/ShortestPathAStar call
  // (search-effort statistics for the A* ablation). Atomic because const
  // path queries update it and fleet execution issues them from many
  // worker threads; concurrent callers see *a* recent count, not their own.
  mutable RelaxedCounter last_nodes_expanded;

  // Builds (or rebuilds) the edge lookup accelerator; must be called after
  // the last AddEdge and before Nearest*() queries.
  void BuildSpatialIndex(double cell_size = 100.0);
  // Edge nearest to `p` (requires BuildSpatialIndex); NotFound when empty.
  [[nodiscard]] StatusOr<EdgeId> NearestEdge(const geometry::Point& p) const;
  // Edges within `radius` of `p` (requires BuildSpatialIndex).
  std::vector<EdgeId> EdgesNear(const geometry::Point& p,
                                double radius) const;
  // Node nearest to `p` (linear scan; networks are small).
  [[nodiscard]] StatusOr<NodeId> NearestNode(const geometry::Point& p) const;

  // Closest point of edge `e` to `p`.
  geometry::Point ProjectToEdge(EdgeId e, const geometry::Point& p) const;
  // Distance from `p` to edge `e`.
  double DistanceToEdge(EdgeId e, const geometry::Point& p) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
  // Edge midpoints indexed on a grid; radius searches over-expand by the
  // max edge half-length to stay exact.
  index::GridIndex edge_index_{100.0};
  double max_edge_length_ = 0.0;
  bool index_built_ = false;
};

// Generates a perturbed grid road network: `cols` x `rows` intersections
// spaced `spacing` metres apart, each jittered by `jitter` metres, with a
// fraction `drop_edge_prob` of street segments removed (keeping the network
// connected is not guaranteed for high drop rates; generator retries are the
// caller's concern -- defaults keep it connected with overwhelming
// probability).
RoadNetwork MakeGridRoadNetwork(int cols, int rows, double spacing,
                                double jitter, double drop_edge_prob,
                                Rng* rng);

// Picks a random simple route of at least `min_hops` nodes via random walk
// without immediate backtracking.
[[nodiscard]] StatusOr<std::vector<NodeId>> RandomRoute(const RoadNetwork& net,
                                          size_t min_hops, Rng* rng);

}  // namespace sim
}  // namespace sidq

#include "sim/fingerprint.h"

#include <algorithm>
#include <cmath>

namespace sidq {
namespace sim {

double RssiWorld::TrueRssi(size_t i, const geometry::Point& p) const {
  const AccessPoint& ap = aps_[i];
  const double d = std::max(1.0, geometry::Distance(ap.p, p));
  return ap.tx_power_dbm - 10.0 * ap.path_loss_exponent * std::log10(d);
}

std::vector<double> RssiWorld::Measure(const geometry::Point& p,
                                       double sigma_db, Rng* rng) const {
  std::vector<double> out(aps_.size());
  for (size_t i = 0; i < aps_.size(); ++i) {
    out[i] = TrueRssi(i, p) + rng->Gaussian(0.0, sigma_db);
  }
  return out;
}

double RssiWorld::MeasureRange(size_t i, const geometry::Point& p,
                               double sigma_m, Rng* rng) const {
  const double d = geometry::Distance(aps_[i].p, p);
  return std::max(0.0, d + rng->Gaussian(0.0, sigma_m));
}

RssiWorld RssiWorld::MakeRandom(const geometry::BBox& bounds, int num_aps,
                                Rng* rng) {
  std::vector<AccessPoint> aps;
  aps.reserve(num_aps);
  for (int i = 0; i < num_aps; ++i) {
    AccessPoint ap;
    ap.p = geometry::Point(rng->Uniform(bounds.min_x, bounds.max_x),
                           rng->Uniform(bounds.min_y, bounds.max_y));
    ap.tx_power_dbm = rng->Uniform(-35.0, -25.0);
    ap.path_loss_exponent = rng->Uniform(2.5, 3.5);
    aps.push_back(ap);
  }
  return RssiWorld(std::move(aps));
}

std::vector<Fingerprint> BuildFingerprintDatabase(
    const RssiWorld& world, const geometry::BBox& bounds, int cols, int rows,
    int samples_per_cell, double sigma_db, Rng* rng) {
  std::vector<Fingerprint> db;
  db.reserve(static_cast<size_t>(cols) * rows);
  const double dx = bounds.Width() / cols;
  const double dy = bounds.Height() / rows;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      Fingerprint fp;
      fp.p = geometry::Point(bounds.min_x + (c + 0.5) * dx,
                             bounds.min_y + (r + 0.5) * dy);
      fp.rssi.assign(world.num_aps(), 0.0);
      for (int s = 0; s < samples_per_cell; ++s) {
        const std::vector<double> m = world.Measure(fp.p, sigma_db, rng);
        for (size_t i = 0; i < m.size(); ++i) fp.rssi[i] += m[i];
      }
      for (double& v : fp.rssi) v /= std::max(1, samples_per_cell);
      db.push_back(std::move(fp));
    }
  }
  return db;
}

}  // namespace sim
}  // namespace sidq

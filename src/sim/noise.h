#pragma once

#include <vector>

#include "core/random.h"
#include "core/trajectory.h"
#include "core/types.h"

namespace sidq {
namespace sim {

// Degradation injectors. Each one reproduces a single SID characteristic
// from Table 1 of the tutorial on ground-truth data, so that the resulting
// quality issue can be measured against known truth.

// [Noisy and erroneous] Adds isotropic Gaussian position noise of the given
// standard deviation (metres); sets each point's reported accuracy to sigma.
Trajectory AddGpsNoise(const Trajectory& truth, double sigma, Rng* rng);

// [Noisy and erroneous] Replaces a fraction `rate` of points with gross
// outliers displaced by Uniform(min_mag, max_mag) metres in a random
// direction. `is_outlier` (if non-null) receives per-point truth labels.
Trajectory AddOutliers(const Trajectory& truth, double rate, double min_mag,
                       double max_mag, Rng* rng,
                       std::vector<bool>* is_outlier = nullptr);

// [Temporally discrete] Keeps each point independently with probability
// (1 - drop_prob); always keeps the first and last points.
Trajectory DropSamples(const Trajectory& truth, double drop_prob, Rng* rng);

// [Temporally discrete] Downsamples to one point every `interval_ms`.
Trajectory Resample(const Trajectory& truth, Timestamp interval_ms);

// [Voluminous and duplicated] Re-emits each point with probability dup_prob
// (same location, timestamp + 0..1 ms), as duplicate-prone gateways do.
Trajectory DuplicateSamples(const Trajectory& truth, double dup_prob,
                            Rng* rng);

// [Decentralized] Simulates network delivery: per-point arrival time is
// event time plus Exponential(1/mean_delay_s) seconds. `arrival` receives
// arrival timestamps aligned with the returned (still event-time-ordered)
// trajectory.
Trajectory AddDeliveryDelay(const Trajectory& truth, double mean_delay_s,
                            Rng* rng, std::vector<Timestamp>* arrival);

// [Decentralized / disordered] Perturbs timestamps with Gaussian jitter of
// sigma_ms, producing possibly out-of-order records (points NOT re-sorted).
Trajectory JitterTimestamps(const Trajectory& truth, double sigma_ms,
                            Rng* rng);

// [Hierarchical and multi-scaled] Snaps coordinates to a `step`-metre grid.
Trajectory QuantizeCoordinates(const Trajectory& truth, double step);

// [Heterogeneous] Rescales coordinates by `factor` (e.g. a source reporting
// feet instead of metres: factor = 3.2808).
Trajectory ScaleUnits(const Trajectory& truth, double factor);

// [Dynamic] Drops every sample newer than (last_t - cut_ms): the feed went
// stale `cut_ms` ago.
Trajectory TruncateTail(const Trajectory& truth, Timestamp cut_ms);

}  // namespace sim
}  // namespace sidq

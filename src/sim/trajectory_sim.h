#pragma once

#include <vector>

#include "core/random.h"
#include "core/statusor.h"
#include "core/trajectory.h"
#include "core/types.h"
#include "sim/road_network.h"

namespace sidq {
namespace sim {

// Generates ground-truth trajectories for moving IoT objects. Observed
// (degraded) versions are produced by the injectors in sim/noise.h.
class TrajectorySimulator {
 public:
  struct Options {
    double mean_speed_mps = 12.0;    // cruising speed
    double speed_jitter = 2.0;       // per-step 1-sigma speed variation
    Timestamp sample_interval_ms = 1000;
    Timestamp start_time = 0;
  };

  TrajectorySimulator(Options options, Rng* rng)
      : options_(options), rng_(rng) {}

  // Moves along `route` (a node sequence of `net`) at a jittered speed and
  // samples the position every sample_interval_ms.
  [[nodiscard]] StatusOr<Trajectory> AlongRoute(const RoadNetwork& net,
                                  const std::vector<NodeId>& route,
                                  ObjectId object_id) const;

  // Convenience: a random route of at least min_hops nodes.
  [[nodiscard]] StatusOr<Trajectory> RandomOnNetwork(const RoadNetwork& net,
                                       size_t min_hops,
                                       ObjectId object_id) const;

  // Free-space random-waypoint motion inside `bounds` for `num_samples`
  // samples (pedestrian/drone style movement).
  Trajectory RandomWaypoint(const geometry::BBox& bounds, size_t num_samples,
                            ObjectId object_id) const;

 private:
  Options options_;
  Rng* rng_;
};

// A fleet of ground-truth trajectories over one network.
struct Fleet {
  RoadNetwork network;
  std::vector<Trajectory> trajectories;
};

// Builds a cols x rows grid network and `num_objects` trajectories of
// at least `min_hops` hops each.
Fleet MakeFleet(int cols, int rows, double spacing, int num_objects,
                size_t min_hops, Rng* rng,
                TrajectorySimulator::Options sim_options = {});

}  // namespace sim
}  // namespace sidq

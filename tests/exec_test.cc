// Tests for the parallel fleet execution engine (src/exec/): the golden
// determinism contract (parallel output bit-identical to serial for every
// worker count and sharding mode), first-error-wins failure semantics, and
// the ThreadPool's shutdown/edge-case behaviour.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>  // std::this_thread::sleep_for only
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/quality.h"
#include "core/random.h"
#include "core/status.h"
#include "core/trajectory.h"
#include "exec/fleet_runner.h"
#include "exec/thread_pool.h"

namespace sidq {
namespace {

using exec::FleetResult;
using exec::FleetRunner;
using exec::ShardingMode;
using exec::ThreadPool;

// A clustered synthetic fleet: 70% of the vehicles random-walk near a
// depot, the rest spread over the full region -- skewed on purpose so the
// two sharding modes produce genuinely different shard shapes.
std::vector<Trajectory> MakeSyntheticFleet(size_t num_trajectories,
                                           size_t points_each,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<Trajectory> fleet;
  fleet.reserve(num_trajectories);
  for (size_t i = 0; i < num_trajectories; ++i) {
    Trajectory t(static_cast<ObjectId>(i));
    const bool clustered = rng.Bernoulli(0.7);
    double x = clustered ? rng.Uniform(900.0, 1100.0) : rng.Uniform(0.0, 8000.0);
    double y = clustered ? rng.Uniform(900.0, 1100.0) : rng.Uniform(0.0, 8000.0);
    for (size_t k = 0; k < points_each; ++k) {
      t.AppendUnordered(TrajectoryPoint(static_cast<Timestamp>(k) * 1000,
                                        geometry::Point(x, y), 5.0));
      x += rng.Gaussian(0.0, 12.0);
      y += rng.Gaussian(0.0, 12.0);
    }
    fleet.push_back(std::move(t));
  }
  return fleet;
}

// Seeded jitter + deterministic smoothing: a pipeline that exercises both
// the ApplySeeded substream path and the plain Apply path.
TrajectoryPipeline MakeCleaningPipeline() {
  TrajectoryPipeline pipeline;
  pipeline.AddSeeded("jitter",
                     [](const Trajectory& in, Rng& rng) -> StatusOr<Trajectory> {
                       Trajectory out(in.object_id());
                       for (const TrajectoryPoint& pt : in.points()) {
                         TrajectoryPoint moved = pt;
                         moved.p.x += rng.Gaussian(0.0, 0.5);
                         moved.p.y += rng.Gaussian(0.0, 0.5);
                         out.AppendUnordered(moved);
                       }
                       return out;
                     });
  pipeline.Add("smooth", [](const Trajectory& in) -> StatusOr<Trajectory> {
    Trajectory out(in.object_id());
    for (size_t i = 0; i < in.size(); ++i) {
      TrajectoryPoint pt = in[i];
      if (i > 0 && i + 1 < in.size()) {
        pt.p.x = (in[i - 1].p.x + in[i].p.x + in[i + 1].p.x) / 3.0;
        pt.p.y = (in[i - 1].p.y + in[i].p.y + in[i + 1].p.y) / 3.0;
      }
      out.AppendUnordered(pt);
    }
    return out;
  });
  return pipeline;
}

// Exact (bitwise) equality of two trajectories.
::testing::AssertionResult BitIdentical(const Trajectory& a,
                                        const Trajectory& b) {
  if (a.object_id() != b.object_id())
    return ::testing::AssertionFailure() << "object_id mismatch";
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].t != b[i].t || a[i].p.x != b[i].p.x || a[i].p.y != b[i].p.y ||
        a[i].accuracy != b[i].accuracy) {
      return ::testing::AssertionFailure() << "point " << i << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

constexpr uint64_t kSeed = 2024;

TEST(FleetRunnerTest, GoldenDeterminismAcrossWorkersAndSharding) {
  const auto fleet = MakeSyntheticFleet(200, 40, kSeed);
  const TrajectoryPipeline pipeline = MakeCleaningPipeline();

  const auto serial = pipeline.RunBatch(fleet, kSeed);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_EQ(serial->size(), fleet.size());

  for (const int workers : {1, 2, 8}) {
    for (const ShardingMode mode :
         {ShardingMode::kRoundRobin, ShardingMode::kSkewAware}) {
      FleetRunner::Options options;
      options.num_threads = workers;
      options.sharding = mode;
      options.shard_size = 7;      // deliberately does not divide 200
      options.skew_max_load = 16;  // forces several quad splits
      options.base_seed = kSeed;
      const FleetRunner runner(&pipeline, options);

      const FleetResult result = runner.Run(fleet);
      ASSERT_TRUE(result.ok()) << result.first_error;
      ASSERT_EQ(result.cleaned.size(), fleet.size());
      EXPECT_GT(result.shards_total, 1u);
      for (size_t i = 0; i < fleet.size(); ++i) {
        ASSERT_TRUE(result.statuses[i].ok());
        ASSERT_TRUE(BitIdentical(result.cleaned[i], (*serial)[i]))
            << "trajectory " << i << " with " << workers << " workers";
      }
    }
  }
}

TEST(FleetRunnerTest, SubstreamsAreIndependentPerTrajectory) {
  // Two trajectories with identical points but different ids must draw
  // different jitter; the same id must reproduce exactly.
  const auto fleet = MakeSyntheticFleet(1, 30, kSeed);
  Trajectory twin = fleet[0];
  twin.set_object_id(fleet[0].object_id() + 1);
  const TrajectoryPipeline pipeline = MakeCleaningPipeline();

  Rng rng_a = Rng::ForKey(kSeed, 0);
  Rng rng_a2 = Rng::ForKey(kSeed, 0);
  Rng rng_b = Rng::ForKey(kSeed, 1);
  const auto out_a = pipeline.Run(fleet[0], &rng_a);
  const auto out_a2 = pipeline.Run(fleet[0], &rng_a2);
  const auto out_b = pipeline.Run(twin, &rng_b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_a2.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_TRUE(BitIdentical(*out_a, *out_a2));
  EXPECT_FALSE(out_a->points()[5].p.x == out_b->points()[5].p.x &&
               out_a->points()[5].p.y == out_b->points()[5].p.y);
}

TrajectoryPipeline MakePoisonedPipeline(ObjectId poisoned_id) {
  TrajectoryPipeline pipeline = MakeCleaningPipeline();
  pipeline.Add("validate",
               [poisoned_id](const Trajectory& in) -> StatusOr<Trajectory> {
                 if (in.object_id() == poisoned_id) {
                   return Status::DataLoss("sensor feed corrupted");
                 }
                 return in;
               });
  return pipeline;
}

TEST(FleetRunnerTest, OnePoisonedTrajectoryLeavesOthersUnaffected) {
  const auto fleet = MakeSyntheticFleet(60, 20, kSeed);
  const ObjectId poisoned = 37;
  const TrajectoryPipeline pipeline = MakePoisonedPipeline(poisoned);

  FleetRunner::Options options;
  options.num_threads = 4;
  options.shard_size = 5;
  options.base_seed = kSeed;
  options.cancel_on_error = false;  // clean everything, report everything
  const FleetRunner runner(&pipeline, options);
  const FleetResult result = runner.Run(fleet);

  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.first_error.code(), StatusCode::kDataLoss);
  EXPECT_NE(result.first_error.message().find("stage 'validate' failed"),
            std::string::npos);
  EXPECT_EQ(result.shards_cancelled, 0u);
  for (size_t i = 0; i < fleet.size(); ++i) {
    if (fleet[i].object_id() == poisoned) {
      EXPECT_EQ(result.statuses[i].code(), StatusCode::kDataLoss);
      continue;
    }
    ASSERT_TRUE(result.statuses[i].ok()) << "trajectory " << i;
    Rng rng = Rng::ForKey(kSeed, fleet[i].object_id());
    const auto serial = pipeline.Run(fleet[i], &rng);
    ASSERT_TRUE(serial.ok());
    EXPECT_TRUE(BitIdentical(result.cleaned[i], *serial));
  }
}

TEST(FleetRunnerTest, FirstErrorWinsCancellationSkipsUnstartedShards) {
  const auto fleet = MakeSyntheticFleet(50, 10, kSeed);
  const TrajectoryPipeline pipeline = MakePoisonedPipeline(/*poisoned_id=*/0);

  FleetRunner::Options options;
  options.num_threads = 1;  // one worker drains shards in submission order
  options.shard_size = 1;
  options.base_seed = kSeed;
  options.cancel_on_error = true;
  const FleetRunner runner(&pipeline, options);
  const FleetResult result = runner.Run(fleet);

  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.first_error.code(), StatusCode::kDataLoss);
  EXPECT_EQ(result.statuses[0].code(), StatusCode::kDataLoss);
  EXPECT_EQ(result.shards_cancelled, fleet.size() - 1);
  for (size_t i = 1; i < fleet.size(); ++i) {
    EXPECT_EQ(result.statuses[i].code(), StatusCode::kCancelled);
  }
}

TEST(FleetRunnerTest, EmptyFleetIsOk) {
  const TrajectoryPipeline pipeline = MakeCleaningPipeline();
  const FleetRunner runner(&pipeline, {});
  const FleetResult result = runner.Run({});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.shards_total, 0u);
  EXPECT_TRUE(result.cleaned.empty());
}

TEST(FleetRunnerTest, MakeShardsCoversEveryIndexExactlyOnce) {
  auto fleet = MakeSyntheticFleet(97, 12, kSeed);
  fleet.push_back(Trajectory(997));  // point-free straggler
  const TrajectoryPipeline pipeline = MakeCleaningPipeline();

  for (const ShardingMode mode :
       {ShardingMode::kRoundRobin, ShardingMode::kSkewAware}) {
    FleetRunner::Options options;
    options.sharding = mode;
    options.shard_size = 9;
    options.skew_max_load = 10;
    const FleetRunner runner(&pipeline, options);
    std::vector<size_t> seen;
    for (const auto& shard : runner.MakeShards(fleet)) {
      ASSERT_FALSE(shard.empty());
      seen.insert(seen.end(), shard.begin(), shard.end());
    }
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), fleet.size());
    for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
  }
}

TEST(FleetRunnerTest, ProfiledRunAggregatesFleetMetrics) {
  const size_t kPoints = 24;
  const auto fleet = MakeSyntheticFleet(16, kPoints, kSeed);
  const TrajectoryPipeline pipeline = MakeCleaningPipeline();

  FleetRunner::Options options;
  options.num_threads = 4;
  options.shard_size = 3;
  options.base_seed = kSeed;
  const FleetRunner runner(&pipeline, options);
  const FleetResult result =
      runner.RunProfiled(fleet, &fleet, TrajectoryProfiler());
  ASSERT_TRUE(result.ok()) << result.first_error;

  ASSERT_EQ(result.stage_stats.size(), pipeline.num_stages() + 1);
  EXPECT_EQ(result.stage_stats[0].stage_name, "input");
  EXPECT_EQ(result.stage_stats[1].stage_name, "jitter");
  EXPECT_EQ(result.stage_stats[2].stage_name, "smooth");

  // Every trajectory has kPoints samples, so the data-volume aggregate is
  // exact: count = fleet size, mean = p50 = p99 = kPoints.
  const auto& volume =
      result.stage_stats[0].metrics.at(DqDimension::kDataVolume);
  EXPECT_EQ(volume.count, fleet.size());
  EXPECT_DOUBLE_EQ(volume.mean, static_cast<double>(kPoints));
  EXPECT_DOUBLE_EQ(volume.p50, static_cast<double>(kPoints));
  EXPECT_DOUBLE_EQ(volume.p99, static_cast<double>(kPoints));

  // Ground truth equals the input, so jitter must raise the accuracy RMSE
  // above the input stage's zero and smoothing must not erase it entirely.
  const auto& acc_in = result.stage_stats[0].metrics.at(DqDimension::kAccuracy);
  const auto& acc_jit =
      result.stage_stats[1].metrics.at(DqDimension::kAccuracy);
  EXPECT_DOUBLE_EQ(acc_in.mean, 0.0);
  EXPECT_GT(acc_jit.mean, 0.0);
  EXPECT_LE(acc_jit.p50, acc_jit.p99);

  // MeanReport round-trips the means for DiagnoseChanges interop.
  EXPECT_DOUBLE_EQ(
      result.stage_stats[1].MeanReport().Get(DqDimension::kAccuracy),
      acc_jit.mean);
  EXPECT_FALSE(result.stage_stats[1].ToString().empty());
}

TEST(FleetRunnerTest, ProfiledDeterminismMatchesUnprofiledRun) {
  const auto fleet = MakeSyntheticFleet(40, 16, kSeed);
  const TrajectoryPipeline pipeline = MakeCleaningPipeline();
  FleetRunner::Options options;
  options.num_threads = 8;
  options.shard_size = 1;
  options.base_seed = kSeed;
  const FleetRunner runner(&pipeline, options);

  const FleetResult plain = runner.Run(fleet);
  const FleetResult profiled =
      runner.RunProfiled(fleet, nullptr, TrajectoryProfiler());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(profiled.ok());
  for (size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_TRUE(BitIdentical(plain.cleaned[i], profiled.cleaned[i]));
  }
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  std::atomic<int> done{0};
  ThreadPool pool(2);
  std::vector<std::future<Status>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&done]() -> Status {
      // sidq: allow-wallclock(deliberately slow task to race Shutdown drain)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      done.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }));
  }
  // Shutdown must block until every queued task ran, not drop the backlog.
  pool.Shutdown();
  EXPECT_EQ(done.load(), 100);
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejectedWithUnavailable) {
  ThreadPool pool(2);
  auto before = pool.Submit([]() -> StatusOr<int> { return 5; });
  pool.Shutdown();
  // Post-shutdown submissions must never be silently dropped: the future
  // resolves immediately to kUnavailable, for Status and StatusOr alike.
  std::atomic<bool> ran{false};
  auto rejected_status = pool.Submit([&ran]() -> Status {
    ran.store(true);
    return Status::OK();
  });
  auto rejected_value = pool.Submit([&ran]() -> StatusOr<int> {
    ran.store(true);
    return 9;
  });
  ASSERT_TRUE(before.get().ok());
  EXPECT_EQ(rejected_status.get().code(), StatusCode::kUnavailable);
  EXPECT_EQ(rejected_value.get().status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, ZeroTasksAndIdempotentShutdown) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op
  // Destructor also re-runs Shutdown; nothing to hang on.
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_workers(), 1u);
  auto f = pool.Submit([]() -> StatusOr<int> { return 41 + 1; });
  ASSERT_TRUE(f.get().ok());
}

TEST(ThreadPoolTest, StatusPropagatesThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([]() -> StatusOr<int> { return 7; });
  auto err = pool.Submit(
      []() -> Status { return Status::Internal("worker exploded"); });
  auto err_or = pool.Submit([]() -> StatusOr<int> {
    return Status::ResourceExhausted("queue full");
  });
  const auto ok_value = ok.get();
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(ok_value.value(), 7);
  const Status err_status = err.get();
  EXPECT_EQ(err_status.code(), StatusCode::kInternal);
  EXPECT_EQ(err_or.get().status().code(), StatusCode::kResourceExhausted);
}

TEST(ThreadPoolTest, WorkStealingDrainsOneHotQueue) {
  // Round-robin placement puts every 4th task on the same worker; a task
  // that blocks one worker must not strand the rest of the queue because
  // siblings steal. The run finishing at all (quickly) is the assertion.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<Status>> futures;
  futures.reserve(64);
  for (int i = 0; i < 64; ++i) {
    const bool slow = (i == 0);
    futures.push_back(pool.Submit([&done, slow]() -> Status {
      // sidq: allow-wallclock(one genuinely blocked worker forces stealing)
      if (slow) std::this_thread::sleep_for(std::chrono::milliseconds(50));
      done.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace sidq

// Observability layer tests: MetricsRegistry semantics (striped merge
// exactness, percentile resolution, stability filtering, registration
// conflicts), canonical JSON export (round-trip byte identity, loud
// NaN/Inf rejection), PipelineObserver span/metric bridging, and the
// chaos-seed accounting property -- the pipeline.retry.attempts counter
// and fleet.objects.quarantined gauge must agree exactly with the fleet
// result's own annotations for any seed.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <string>
#include <thread>  // registry merge-exactness stress
#include <vector>

#include <gtest/gtest.h>

#include "core/clock.h"
#include "core/failpoint.h"
#include "core/pipeline.h"
#include "core/random.h"
#include "core/status.h"
#include "core/trajectory.h"
#include "exec/fleet_runner.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"

namespace sidq {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::MetricStability;
using obs::ObsSinks;
using obs::PipelineObserver;
using obs::SnapshotOptions;
using obs::SpanRecord;
using obs::Tracer;

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterMergesAcrossHandleCopies) {
  MetricsRegistry reg;
  Counter a = reg.counter("events");
  Counter b = reg.counter("events");  // same cell, second handle
  a.Increment();
  b.Increment(41);

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "events");
  EXPECT_EQ(snap.counters[0].value, 42);
}

TEST(MetricsRegistryTest, DetachedHandlesAreNoOps) {
  // Default-constructed handles must absorb writes silently -- this is the
  // "observability off" path in instrumented code.
  Counter c;
  Gauge g;
  Histogram h;
  c.Increment();
  g.Set(7);
  g.Add(1);
  h.Record(1.0);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge g = reg.gauge("depth");
  g.Set(10);
  g.Add(-3);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);
}

TEST(MetricsRegistryTest, HistogramBucketsPercentilesAndOverflow) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("latency", {1.0, 2.0, 5.0, 10.0});
  // 1 sample <= 1, 2 samples in (1,2], 4 in (2,5], 2 in (5,10], 1 overflow.
  for (double v : {0.5, 1.5, 2.0, 3.0, 3.0, 4.0, 5.0, 6.0, 9.0, 25.0}) {
    h.Record(v);
  }

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const obs::HistogramValue& v = snap.histograms[0];
  EXPECT_EQ(v.bucket_counts, (std::vector<int64_t>{1, 2, 4, 2}));
  EXPECT_EQ(v.overflow, 1);
  EXPECT_EQ(v.count, 10);
  EXPECT_DOUBLE_EQ(v.sum, 0.5 + 1.5 + 2.0 + 3.0 + 3.0 + 4.0 + 5.0 + 6.0 +
                              9.0 + 25.0);
  EXPECT_DOUBLE_EQ(v.max, 25.0);
  // Nearest-rank against bucket upper bounds: rank 5 of 10 lands in the
  // (2,5] bucket; rank 10 lands in overflow, which reports max.
  EXPECT_DOUBLE_EQ(v.p50, 5.0);
  EXPECT_DOUBLE_EQ(v.p99, 25.0);
  EXPECT_FALSE(v.invalid);
}

TEST(MetricsRegistryTest, EmptyHistogramReportsZeros) {
  MetricsRegistry reg;
  // sidq: allow-ignored-status(registration only; handle unused)
  (void)reg.histogram("empty", {1.0, 10.0});
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].max, 0.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].p50, 0.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].p99, 0.0);
}

TEST(MetricsRegistryTest, KindMismatchReturnsDetachedAndRecordsError) {
  MetricsRegistry reg;
  reg.counter("x").Increment();
  Gauge wrong = reg.gauge("x");  // name already taken by a counter
  wrong.Set(99);                 // must be a no-op, not a type-punned write

  EXPECT_FALSE(reg.registration_error().empty());
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 1);
  EXPECT_TRUE(snap.gauges.empty());
}

TEST(MetricsRegistryTest, HistogramBoundsMismatchMarksInvalid) {
  MetricsRegistry reg;
  // sidq: allow-ignored-status(registration only; handle unused)
  (void)reg.histogram("h", {1.0, 2.0});
  // sidq: allow-ignored-status(registration only; handle unused)
  (void)reg.histogram("h", {1.0, 3.0});  // different bounds
  EXPECT_FALSE(reg.registration_error().empty());
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_TRUE(snap.histograms[0].invalid);
}

TEST(MetricsRegistryTest, NonIncreasingBoundsAreInvalid) {
  MetricsRegistry reg;
  // sidq: allow-ignored-status(registration only; handle unused)
  (void)reg.histogram("bad", {5.0, 5.0});
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_TRUE(snap.histograms[0].invalid);
}

TEST(MetricsRegistryTest, VolatileMetricsExcludedFromDefaultSnapshot) {
  MetricsRegistry reg;
  reg.counter("det").Increment();
  reg.counter("vol", MetricStability::kVolatile).Increment();
  reg.gauge("vol.g", MetricStability::kVolatile).Set(3);
  reg.histogram("vol.h", {1.0}, MetricStability::kVolatile).Record(0.5);

  const MetricsSnapshot def = reg.Snapshot();
  ASSERT_EQ(def.counters.size(), 1u);
  EXPECT_EQ(def.counters[0].name, "det");
  EXPECT_TRUE(def.gauges.empty());
  EXPECT_TRUE(def.histograms.empty());

  SnapshotOptions all;
  all.include_volatile = true;
  const MetricsSnapshot full = reg.Snapshot(all);
  EXPECT_EQ(full.counters.size(), 2u);
  EXPECT_EQ(full.gauges.size(), 1u);
  EXPECT_EQ(full.histograms.size(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("zebra").Increment();
  reg.counter("alpha").Increment();
  reg.counter("mid").Increment();
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "mid");
  EXPECT_EQ(snap.counters[2].name, "zebra");
}

// The merge-exactness property behind the determinism contract: N threads
// hammering one counter and one histogram through striped relaxed atomics
// lose nothing -- Snapshot() equals the arithmetic total. (The heavier
// ThreadPool version runs in exec_stress_test.cc under TSan.)
TEST(MetricsRegistryTest, ConcurrentWritesMergeExactly) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;

  // sidq: allow-stray-thread(raw threads stress the registry without pool scheduling)
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Each thread re-resolves its handles (shared-lock path) like a
      // fleet shard does, then writes lock-free.
      Counter c = reg.counter("hits");
      Histogram h = reg.histogram("samples", {10.0, 100.0, 1000.0});
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Record(static_cast<double>((t * kPerThread + i) % 500));
      }
    });
  }
  // sidq: allow-stray-thread(joining the stress threads spawned above)
  for (std::thread& th : threads) th.join();

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, kThreads * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, kThreads * kPerThread);
  // Integer-valued samples sum exactly in any stripe/interleaving order.
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      expected_sum += static_cast<double>((t * kPerThread + i) % 500);
    }
  }
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, expected_sum);
  EXPECT_DOUBLE_EQ(snap.histograms[0].max, 499.0);
}

// ---------------------------------------------------------------------------
// Canonical JSON export + round-trip
// ---------------------------------------------------------------------------

// Minimal JSON reader for the round-trip tests. Numbers and strings are
// kept as raw source tokens, so re-serialization is a pure concatenation:
// if the exporter emits canonical JSON (fixed key order, no whitespace,
// shortest-round-trip doubles), parse + reprint must be byte-identical.
struct MiniJson {
  enum Kind { kObject, kArray, kString, kNumber, kBool, kNull };
  Kind kind = kNull;
  std::string raw;  // kString (with quotes), kNumber, kBool literal
  std::vector<std::pair<std::string, MiniJson>> members;  // kObject
  std::vector<MiniJson> items;                            // kArray
};

class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text) : text_(text) {}

  bool Parse(MiniJson* out) {
    pos_ = 0;
    return ParseValue(out) && pos_ == text_.size();
  }

 private:
  bool ParseValue(MiniJson* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = MiniJson::kString;
        return ParseRawString(&out->raw);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseLiteral(out);
      default:
        out->kind = MiniJson::kNumber;
        return ParseRawNumber(&out->raw);
    }
  }

  bool ParseObject(MiniJson* out) {
    out->kind = MiniJson::kObject;
    ++pos_;  // '{'
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      if (Peek() != '"' || !ParseRawString(&key)) return false;
      if (Peek() != ':') return false;
      ++pos_;
      MiniJson value;
      if (!ParseValue(&value)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(MiniJson* out) {
    out->kind = MiniJson::kArray;
    ++pos_;  // '['
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      MiniJson value;
      if (!ParseValue(&value)) return false;
      out->items.push_back(std::move(value));
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  // Raw string token including both quotes; validates escapes.
  bool ParseRawString(std::string* out) {
    const size_t start = pos_;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (static_cast<unsigned char>(text_[pos_]) < 0x20) return false;
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        const char e = text_[pos_ + 1];
        if (e == 'u') {
          if (pos_ + 5 >= text_.size()) return false;
          for (size_t i = pos_ + 2; i < pos_ + 6; ++i) {
            if (std::isxdigit(static_cast<unsigned char>(text_[i])) == 0) {
              return false;
            }
          }
          pos_ += 6;
          continue;
        }
        if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
        pos_ += 2;
        continue;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    out->assign(text_, start, pos_ - start);
    return true;
  }

  bool ParseRawNumber(std::string* out) {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    out->assign(text_, start, pos_ - start);
    return !out->empty();
  }

  bool ParseLiteral(MiniJson* out) {
    for (const char* lit : {"true", "false", "null"}) {
      const size_t len = std::string(lit).size();
      if (text_.compare(pos_, len, lit) == 0) {
        out->kind = lit[0] == 'n' ? MiniJson::kNull : MiniJson::kBool;
        out->raw = lit;
        pos_ += len;
        return true;
      }
    }
    return false;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  const std::string& text_;
  size_t pos_ = 0;
};

void Reserialize(const MiniJson& v, std::string* out) {
  switch (v.kind) {
    case MiniJson::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < v.members.size(); ++i) {
        if (i > 0) out->push_back(',');
        out->append(v.members[i].first);
        out->push_back(':');
        Reserialize(v.members[i].second, out);
      }
      out->push_back('}');
      return;
    }
    case MiniJson::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < v.items.size(); ++i) {
        if (i > 0) out->push_back(',');
        Reserialize(v.items[i], out);
      }
      out->push_back(']');
      return;
    }
    default:
      out->append(v.raw);
      return;
  }
}

::testing::AssertionResult RoundTripsByteIdentical(const std::string& json) {
  MiniJson root;
  MiniJsonParser parser(json);
  if (!parser.Parse(&root)) {
    return ::testing::AssertionFailure() << "not valid JSON: " << json;
  }
  std::string again;
  Reserialize(root, &again);
  if (again != json) {
    return ::testing::AssertionFailure()
           << "round trip changed bytes:\n  in:  " << json
           << "\n  out: " << again;
  }
  return ::testing::AssertionSuccess();
}

TEST(ObsExportTest, MetricsJsonRoundTripsByteIdentical) {
  MetricsRegistry reg;
  reg.counter("pipeline.stage.runs.smooth").Increment(12);
  reg.gauge("fleet.objects.total").Set(-3);
  Histogram h = reg.histogram("d", {0.5, 2.0, 10.0});
  for (double v : {0.25, 0.75, 1.5, 3.0, 100.0}) h.Record(v);

  const StatusOr<std::string> json = obs::MetricsToJson(reg.Snapshot());
  ASSERT_TRUE(json.ok()) << json.status();
  EXPECT_TRUE(RoundTripsByteIdentical(*json));
  // Canonical: no whitespace anywhere outside strings.
  EXPECT_EQ(json->find(' '), std::string::npos);
  EXPECT_EQ(json->find('\n'), std::string::npos);
}

TEST(ObsExportTest, EmptySnapshotExports) {
  const StatusOr<std::string> json = obs::MetricsToJson(MetricsSnapshot{});
  ASSERT_TRUE(json.ok()) << json.status();
  EXPECT_TRUE(RoundTripsByteIdentical(*json));
}

// Fuzz-ish sweep: randomized registries (names with escape-worthy
// characters, negative and fractional values, empty and deep histograms)
// must always produce JSON the minimal validator accepts and reprints
// byte-identically. Seeded -> reproducible on failure.
TEST(ObsExportTest, RandomSnapshotsAlwaysRoundTrip) {
  for (uint64_t seed = 0; seed < 24; ++seed) {
    Rng rng(seed);
    MetricsRegistry reg;
    const int counters = static_cast<int>(rng.Uniform(0.0, 5.0));
    for (int i = 0; i < counters; ++i) {
      reg.counter("c\"\\\t" + std::to_string(i))
          .Increment(static_cast<int64_t>(rng.Uniform(-1e6, 1e6)));
    }
    const int gauges = static_cast<int>(rng.Uniform(0.0, 4.0));
    for (int i = 0; i < gauges; ++i) {
      reg.gauge("g\n" + std::to_string(i))
          .Set(static_cast<int64_t>(rng.Uniform(-1e9, 1e9)));
    }
    const int hists = static_cast<int>(rng.Uniform(0.0, 3.0));
    for (int i = 0; i < hists; ++i) {
      std::vector<double> bounds;
      double b = rng.Uniform(0.001, 1.0);
      const int nb = 1 + static_cast<int>(rng.Uniform(0.0, 6.0));
      for (int k = 0; k < nb; ++k) {
        bounds.push_back(b);
        b += rng.Uniform(0.001, 50.0);
      }
      // Two-step append instead of `"h" + std::to_string(i)`: GCC 12's
      // -Wrestrict false-positives on const char* + string&& at -O2+.
      std::string hist_name = "h";
      hist_name += std::to_string(i);
      Histogram h = reg.histogram(hist_name, bounds);
      const int samples = static_cast<int>(rng.Uniform(0.0, 40.0));
      for (int s = 0; s < samples; ++s) {
        h.Record(rng.Uniform(-10.0, 120.0));
      }
    }
    const StatusOr<std::string> json = obs::MetricsToJson(reg.Snapshot());
    ASSERT_TRUE(json.ok()) << "seed " << seed << ": " << json.status();
    EXPECT_TRUE(RoundTripsByteIdentical(*json)) << "seed " << seed;
  }
}

TEST(ObsExportTest, NanSampleFailsExportLoudly) {
  MetricsRegistry reg;
  reg.histogram("h", {1.0}).Record(std::numeric_limits<double>::quiet_NaN());
  const StatusOr<std::string> json = obs::MetricsToJson(reg.Snapshot());
  ASSERT_FALSE(json.ok());
  EXPECT_EQ(json.status().code(), StatusCode::kInvalidArgument);
}

TEST(ObsExportTest, InfSampleFailsExportLoudly) {
  MetricsRegistry reg;
  reg.histogram("h", {1.0}).Record(std::numeric_limits<double>::infinity());
  const StatusOr<std::string> json = obs::MetricsToJson(reg.Snapshot());
  ASSERT_FALSE(json.ok());
  EXPECT_EQ(json.status().code(), StatusCode::kInvalidArgument);
}

TEST(ObsExportTest, ChromeTraceRoundTripsByteIdentical) {
  Tracer tracer;
  VirtualClock clock;
  {
    obs::TraceSpan span(&tracer, &clock, 7, "map_match", "stage");
    clock.Advance(12);
    span.set_note("quote \" backslash \\ tab \t done");
  }
  tracer.Instant(7, "test.site", "failpoint", &clock, "transient");
  {
    obs::TraceSpan fleet(&tracer, &clock, obs::kProcessKey, "fleet.run",
                         "fleet");
    clock.Advance(3);
  }
  const StatusOr<std::string> json =
      obs::TraceToChromeJson(tracer.CanonicalSpans());
  ASSERT_TRUE(json.ok()) << json.status();
  EXPECT_TRUE(RoundTripsByteIdentical(*json));
}

// ---------------------------------------------------------------------------
// PipelineObserver bridging
// ---------------------------------------------------------------------------

TEST(PipelineObserverTest, StageEventsBecomeMetricsAndSpans) {
  MetricsRegistry reg;
  Tracer tracer;
  ObsSinks sinks;
  sinks.metrics = &reg;
  sinks.tracer = &tracer;
  VirtualClock clock;
  {
    PipelineObserver observer(sinks);
    observer.BeginObject(5, &clock);
    observer.OnStageBegin("smooth");
    clock.Advance(4);
    observer.OnStageEnd("smooth", Status::OK());
    observer.OnStageBegin("simplify");
    observer.OnStageEnd("simplify", Status::InvalidArgument("boom"));
    observer.EndObject("failed");
  }  // destructor flushes

  const MetricsSnapshot snap = reg.Snapshot();
  auto counter_value = [&snap](const std::string& name) -> int64_t {
    for (const obs::CounterValue& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    return -1;
  };
  EXPECT_EQ(counter_value("pipeline.stage.runs.smooth"), 1);
  EXPECT_EQ(counter_value("pipeline.stage.failures.smooth"), 0);
  EXPECT_EQ(counter_value("pipeline.stage.runs.simplify"), 1);
  EXPECT_EQ(counter_value("pipeline.stage.failures.simplify"), 1);

  const std::vector<SpanRecord> spans = tracer.CanonicalSpans();
  ASSERT_EQ(spans.size(), 3u);  // object root + 2 stage spans
  EXPECT_EQ(spans[0].name, "object");
  EXPECT_EQ(spans[0].category, "object");
  EXPECT_EQ(spans[0].note, "failed");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "smooth");
  EXPECT_EQ(spans[1].category, "stage");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].end_ms - spans[1].start_ms, 4);
  EXPECT_EQ(spans[2].name, "simplify");
  EXPECT_EQ(spans[2].note, "InvalidArgument: boom");
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.key, 5u);
    EXPECT_LT(s.seq, obs::kDirectSeqBase);
  }
}

TEST(PipelineObserverTest, CleanFirstAttemptsAreElided) {
  MetricsRegistry reg;
  Tracer tracer;
  ObsSinks sinks;
  sinks.metrics = &reg;
  sinks.tracer = &tracer;
  VirtualClock clock;
  {
    PipelineObserver observer(sinks);
    observer.BeginObject(1, &clock);
    // Attempt 0 succeeds: implied by the stage span, no attempt span.
    observer.OnStageBegin("a");
    observer.OnAttemptBegin("a", 0);
    observer.OnAttemptEnd("a", 0, Status::OK());
    observer.OnStageEnd("a", Status::OK());
    // Attempt 0 fails, retry, attempt 1 succeeds: both attempts recorded.
    observer.OnStageBegin("b");
    observer.OnAttemptBegin("b", 0);
    observer.OnAttemptEnd("b", 0, Status::Unavailable("flaky"));
    observer.OnRetry("b", 0, 25);
    observer.OnAttemptBegin("b", 1);
    observer.OnAttemptEnd("b", 1, Status::OK());
    observer.OnStageEnd("b", Status::OK());
    observer.EndObject("full");
  }

  std::vector<std::string> names;
  for (const SpanRecord& s : tracer.CanonicalSpans()) {
    names.push_back(s.category + ":" + s.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{
                       "object:object", "stage:a", "stage:b", "attempt:b#0",
                       "retry:b", "attempt:b#1"}));

  const MetricsSnapshot snap = reg.Snapshot();
  for (const obs::CounterValue& c : snap.counters) {
    if (c.name == "pipeline.retry.attempts") {
      EXPECT_EQ(c.value, 1);
    }
  }
}

TEST(PipelineObserverTest, DegradeEventsCountAndAnnotate) {
  MetricsRegistry reg;
  ObsSinks sinks;
  sinks.metrics = &reg;
  VirtualClock clock;
  PipelineObserver observer(sinks);
  observer.BeginObject(2, &clock);
  observer.OnDegrade("map_match", 1, "greedy", Status::Unavailable("x"));
  observer.OnDegrade("map_match", 2, "passthrough", Status::Unavailable("y"));
  observer.EndObject("degraded");

  const MetricsSnapshot snap = reg.Snapshot();
  bool found = false;
  for (const obs::CounterValue& c : snap.counters) {
    if (c.name == "pipeline.degrade.falls") {
      EXPECT_EQ(c.value, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Chaos accounting property
// ---------------------------------------------------------------------------

std::vector<Trajectory> MakeFleet(size_t num, size_t points, uint64_t seed) {
  Rng rng(seed);
  std::vector<Trajectory> fleet;
  fleet.reserve(num);
  for (size_t i = 0; i < num; ++i) {
    Trajectory t(static_cast<ObjectId>(i));
    double x = rng.Uniform(0.0, 4000.0);
    double y = rng.Uniform(0.0, 4000.0);
    for (size_t k = 0; k < points; ++k) {
      t.AppendUnordered(TrajectoryPoint(static_cast<Timestamp>(k) * 1000,
                                        geometry::Point(x, y), 5.0));
      x += rng.Gaussian(0.0, 10.0);
      y += rng.Gaussian(0.0, 10.0);
    }
    fleet.push_back(std::move(t));
  }
  return fleet;
}

TrajectoryPipeline MakeChaosPipeline() {
  TrajectoryPipeline pipeline;
  pipeline.AddCtx("gateway",
                  [](const Trajectory& in, const StageContext& ctx)
                      -> StatusOr<Trajectory> {
                    SIDQ_RETURN_IF_ERROR(MaybeInjectFailPoint(
                        "obs.test.gateway", in.object_id(), ctx.exec));
                    return in;
                  });
  pipeline.AddCtx("decoder",
                  [](const Trajectory& in, const StageContext& ctx)
                      -> StatusOr<Trajectory> {
                    SIDQ_RETURN_IF_ERROR(MaybeInjectFailPoint(
                        "obs.test.decoder", in.object_id(), ctx.exec));
                    return in;
                  });
  return pipeline;
}

class ObsChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAllFailPoints(); }
};

// For ANY chaos seed: the pipeline.retry.attempts counter equals the sum of
// per-object annotation retries (and retries_total), and the
// fleet.objects.quarantined gauge equals the number of ids missing from the
// best-effort output. The instrumentation is an exact ledger of the run,
// not a sampled approximation.
TEST_F(ObsChaosTest, RetryAndQuarantineAccountingIsExact) {
  const auto fleet = MakeFleet(40, 12, 77);
  const TrajectoryPipeline pipeline = MakeChaosPipeline();

  for (const uint64_t chaos_seed : {1ull, 7ull, 0xBEEFull, 31337ull}) {
    FailPointConfig transient;
    transient.action = FailPointAction::kTransientError;
    transient.probability = 0.35;
    transient.seed = chaos_seed;
    ArmFailPoint("obs.test.gateway", transient);
    FailPointConfig permanent;
    permanent.action = FailPointAction::kPermanentError;
    permanent.probability = 0.08;
    permanent.seed = chaos_seed ^ 0x5EED;
    ArmFailPoint("obs.test.decoder", permanent);

    MetricsRegistry reg;
    ObsSinks sinks;
    sinks.metrics = &reg;
    exec::FleetRunner::Options options;
    options.num_threads = 4;
    options.shard_size = 4;
    options.base_seed = 99;
    options.failure_policy = exec::FailurePolicy::kBestEffort;
    options.retry.max_retries = 2;
    options.virtual_time = true;
    options.obs = &sinks;
    const exec::FleetRunner runner(&pipeline, options);
    const exec::FleetResult result = runner.Run(fleet);
    ASSERT_TRUE(result.partial_ok());

    size_t annotation_retries = 0;
    for (const exec::ObjectAnnotation& a : result.annotations) {
      annotation_retries += static_cast<size_t>(a.retries);
    }
    size_t missing_ids = 0;
    for (const Status& st : result.statuses) {
      if (!st.ok()) ++missing_ids;
    }

    const MetricsSnapshot snap = reg.Snapshot();
    int64_t retry_counter = -1;
    for (const obs::CounterValue& c : snap.counters) {
      if (c.name == "pipeline.retry.attempts") retry_counter = c.value;
    }
    int64_t quarantined_gauge = -1;
    for (const obs::GaugeValue& g : snap.gauges) {
      if (g.name == "fleet.objects.quarantined") quarantined_gauge = g.value;
    }

    EXPECT_EQ(retry_counter, static_cast<int64_t>(annotation_retries))
        << "chaos seed " << chaos_seed;
    EXPECT_EQ(retry_counter, static_cast<int64_t>(result.retries_total))
        << "chaos seed " << chaos_seed;
    EXPECT_EQ(quarantined_gauge, static_cast<int64_t>(missing_ids))
        << "chaos seed " << chaos_seed;
    EXPECT_EQ(quarantined_gauge,
              static_cast<int64_t>(result.objects_quarantined))
        << "chaos seed " << chaos_seed;
    DisarmAllFailPoints();
  }
}

TEST_F(ObsChaosTest, FailPointRecorderCountsEveryFire) {
  const auto fleet = MakeFleet(24, 8, 11);
  const TrajectoryPipeline pipeline = MakeChaosPipeline();

  FailPointConfig transient;
  transient.action = FailPointAction::kTransientError;
  transient.fail_first_n = 1;  // exactly one fire per object at the gateway
  ArmFailPoint("obs.test.gateway", transient);

  MetricsRegistry reg;
  Tracer tracer;
  ObsSinks sinks;
  sinks.metrics = &reg;
  sinks.tracer = &tracer;
  obs::ScopedFailPointObservation observation(sinks);

  exec::FleetRunner::Options options;
  options.num_threads = 2;
  options.shard_size = 4;
  options.base_seed = 5;
  options.failure_policy = exec::FailurePolicy::kBestEffort;
  options.retry.max_retries = 2;
  options.virtual_time = true;
  options.obs = &sinks;
  const exec::FleetRunner runner(&pipeline, options);
  const exec::FleetResult result = runner.Run(fleet);
  ASSERT_TRUE(result.partial_ok());
  // fail_first_n=1 with retries available: every object fires once, retries
  // once, and cleans.
  EXPECT_EQ(result.objects_quarantined, 0u);
  EXPECT_EQ(result.retries_total, fleet.size());

  const MetricsSnapshot snap = reg.Snapshot();
  auto counter_value = [&snap](const std::string& name) -> int64_t {
    for (const obs::CounterValue& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    return -1;
  };
  EXPECT_EQ(counter_value("chaos.failpoint.fired"),
            static_cast<int64_t>(fleet.size()));
  EXPECT_EQ(counter_value("chaos.failpoint.fired.obs.test.gateway"),
            static_cast<int64_t>(fleet.size()));

  // Each fire also leaves an instant span on the firing object's timeline,
  // in the tracer's direct seq space.
  size_t failpoint_instants = 0;
  for (const SpanRecord& s : tracer.CanonicalSpans()) {
    if (s.category == "failpoint") {
      EXPECT_EQ(s.name, "obs.test.gateway");
      EXPECT_GE(s.seq, obs::kDirectSeqBase);
      ++failpoint_instants;
    }
  }
  EXPECT_EQ(failpoint_instants, fleet.size());
}

}  // namespace
}  // namespace sidq

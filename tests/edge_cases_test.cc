// Cross-module edge-case and robustness coverage: degenerate inputs,
// option extremes, and invariants that the per-module suites do not probe.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/quality.h"
#include "core/random.h"
#include "fault/rfid_cleaning.h"
#include "index/rtree.h"
#include "outlier/trajectory_outliers.h"
#include "query/similarity.h"
#include "reduce/reference_compression.h"
#include "reduce/simplify.h"
#include "reduce/stid_compression.h"
#include "refine/hmm_map_matcher.h"
#include "refine/least_squares.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"
#include "uncertainty/completion.h"
#include "uncertainty/smoothing.h"
#include "uncertainty/interpolation.h"

namespace sidq {
namespace {

using geometry::BBox;
using geometry::Point;

// ------------------------------------------------------------- trajectories

TEST(EdgeCaseTest, SinglePointTrajectoryEverywhere) {
  Trajectory one(1);
  one.AppendUnordered(TrajectoryPoint(1000, Point(5, 5)));
  // Profiler handles it.
  TrajectoryProfiler profiler;
  const DqReport report = profiler.Profile({one});
  EXPECT_DOUBLE_EQ(report.Get(DqDimension::kDataVolume), 1.0);
  // Simplifiers pass it through.
  EXPECT_EQ(reduce::DouglasPeuckerSed(one, 1.0)->size(), 1u);
  EXPECT_EQ(reduce::SquishE(one, 1.0)->size(), 1u);
  EXPECT_EQ(reduce::DeadReckoning(one, 1.0)->size(), 1u);
  // Interpolation at its own time works, outside fails.
  EXPECT_TRUE(one.InterpolateAt(1000).ok());
  EXPECT_FALSE(one.InterpolateAt(999).ok());
}

TEST(EdgeCaseTest, DuplicateTimestampsSurvivePipelines) {
  Trajectory tr(1);
  tr.AppendUnordered(TrajectoryPoint(0, Point(0, 0)));
  tr.AppendUnordered(TrajectoryPoint(0, Point(1, 0)));  // same instant
  tr.AppendUnordered(TrajectoryPoint(1000, Point(10, 0)));
  EXPECT_TRUE(tr.IsTimeOrdered());
  EXPECT_TRUE(reduce::DouglasPeuckerSed(tr, 0.5).ok());
  EXPECT_TRUE(uncertainty::MovingAverageSmooth(tr, 1).ok());
  outlier::SpeedConstraintDetector detector;
  EXPECT_TRUE(detector.Detect(tr).ok());  // zero-dt segments skipped
}

TEST(EdgeCaseTest, ZeroEpsilonSimplificationKeepsEverythingMeaningful) {
  Rng rng(1);
  sim::TrajectorySimulator simulator({}, &rng);
  const Trajectory tr =
      simulator.RandomWaypoint(BBox(0, 0, 500, 500), 60, 1);
  const auto simp = reduce::DouglasPeuckerSed(tr, 0.0).value();
  // With epsilon 0 nothing off the interpolation line may be dropped.
  EXPECT_LE(reduce::MaxSedError(tr, simp), 1e-9);
}

// ------------------------------------------------------------------ refine

TEST(EdgeCaseTest, TrilaterationCollinearAnchorsDegenerate) {
  // Collinear anchors make the solution mirror-ambiguous; starting from
  // the anchor centroid, Gauss-Newton lands on the symmetry axis (the
  // least-squares point between the two reflections). The solver must not
  // blow up and must recover the resolvable coordinate exactly.
  const Point truth(50.0, 30.0);
  std::vector<refine::RangeMeasurement> ms;
  for (const Point anchor : {Point(0, 0), Point(50, 0), Point(100, 0)}) {
    ms.push_back({anchor, geometry::Distance(anchor, truth), 1.0});
  }
  const auto est = refine::WlsTrilaterator().Solve(ms);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(std::isfinite(est->x) && std::isfinite(est->y));
  EXPECT_NEAR(est->x, 50.0, 1e-2);
  // Adding one off-axis anchor resolves the ambiguity completely.
  ms.push_back({Point(50, 100), geometry::Distance(Point(50, 100), truth),
                1.0});
  const auto est2 = refine::WlsTrilaterator().Solve(ms);
  ASSERT_TRUE(est2.ok());
  EXPECT_NEAR(est2->y, 30.0, 1e-2);
}

TEST(EdgeCaseTest, MapMatcherSinglePoint) {
  Rng rng(2);
  sim::RoadNetwork net = sim::MakeGridRoadNetwork(4, 4, 100.0, 0.0, 0.0,
                                                  &rng);
  refine::HmmMapMatcher matcher(&net);
  Trajectory one(1);
  one.AppendUnordered(TrajectoryPoint(0, Point(50, 3)));
  const auto result = matcher.Match(one);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->matched.size(), 1u);
  EXPECT_LT(net.DistanceToEdge(result->edges[0], result->matched[0].p),
            1e-6);
}

// ------------------------------------------------------------------- index

TEST(EdgeCaseTest, RTreeAllIdenticalPoints) {
  index::RTree tree(8);
  for (uint64_t i = 0; i < 100; ++i) {
    tree.Insert(i, BBox(Point(5, 5), Point(5, 5)));
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_EQ(tree.RangeQuery(BBox(4, 4, 6, 6)).size(), 100u);
  EXPECT_EQ(tree.Knn(Point(0, 0), 7).size(), 7u);
}

TEST(EdgeCaseTest, RTreeMixedBulkThenInsert) {
  Rng rng(3);
  std::vector<index::RTree::Item> items;
  for (uint64_t i = 0; i < 200; ++i) {
    const Point p(rng.Uniform(0, 100), rng.Uniform(0, 100));
    items.push_back({i, BBox(p, p)});
  }
  index::RTree tree;
  tree.BulkLoad(items);
  for (uint64_t i = 200; i < 400; ++i) {
    const Point p(rng.Uniform(0, 100), rng.Uniform(0, 100));
    tree.Insert(i, BBox(p, p));
  }
  EXPECT_EQ(tree.size(), 400u);
  EXPECT_EQ(tree.RangeQuery(BBox(-1, -1, 101, 101)).size(), 400u);
}

// ----------------------------------------------------------------- reduce

TEST(EdgeCaseTest, LtcConstantSeriesOneSegment) {
  StSeries s(1, Point(0, 0));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(s.Append(i * 1000, 42.0).ok());
  }
  const auto enc = reduce::LtcCompress(s, 0.1).value();
  EXPECT_EQ(enc.knot_times.size(), 2u);  // first + last
}

TEST(EdgeCaseTest, DualPredictionConstantSeriesSuppressesAll) {
  const std::vector<double> values(200, 7.0);
  const auto result = reduce::DualPredictionReduce(values, 0.1);
  // Only the first sample (and possibly the second) transmit.
  EXPECT_LE(result.transmitted, 2u);
}

TEST(EdgeCaseTest, ReferenceCompressorToleranceZero) {
  Rng rng(4);
  sim::TrajectorySimulator simulator({}, &rng);
  std::vector<Trajectory> refs{
      simulator.RandomWaypoint(BBox(0, 0, 500, 500), 50, 1)};
  reduce::ReferenceCompressor::Options opts;
  opts.tolerance_m = 0.0;
  reduce::ReferenceCompressor compressor(opts);
  compressor.BuildReferences(&refs);
  // The reference itself matches exactly even at tolerance zero.
  const auto enc = compressor.Compress(refs[0]).value();
  EXPECT_DOUBLE_EQ(enc.MatchedFraction(), 1.0);
  const auto dec = compressor.Decompress(enc, 1).value();
  for (size_t i = 0; i < refs[0].size(); ++i) {
    EXPECT_EQ(dec[i].p, refs[0][i].p);
  }
}

// ------------------------------------------------------------- uncertainty

TEST(EdgeCaseTest, RoadCompleterDegenerateGaps) {
  Rng rng(5);
  sim::RoadNetwork net = sim::MakeGridRoadNetwork(4, 4, 100.0, 0.0, 0.0,
                                                  &rng);
  uncertainty::RoadCompleter completer(&net);
  // Two samples at the same location and nearly the same time.
  Trajectory tr(1);
  tr.AppendUnordered(TrajectoryPoint(0, Point(50, 0)));
  tr.AppendUnordered(TrajectoryPoint(10, Point(50, 0)));
  const auto out = completer.Complete(tr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(EdgeCaseTest, InterpolatorsAtExtremeCoordinates) {
  // Far-away probes must not produce NaN/inf.
  StDataset data("x");
  StSeries s(1, Point(0, 0));
  ASSERT_TRUE(s.Append(0, 5.0).ok());
  ASSERT_TRUE(s.Append(1000, 6.0).ok());
  data.AddSeries(s);
  uncertainty::IdwInterpolator idw(&data);
  const auto v = idw.Estimate(Point(1e7, -1e7), 500);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(std::isfinite(v.value()));
  EXPECT_NEAR(v.value(), 5.5, 0.5);
}

// ------------------------------------------------------------------ fault

TEST(EdgeCaseTest, RfidCleanersSingleReading) {
  const auto deployment = sim::RfidDeployment::Corridor(4);
  SymbolicTrajectory one(1);
  one.Append(2, 5000);
  EXPECT_TRUE(fault::SmoothingWindowCleaner().Clean(one).ok());
  EXPECT_TRUE(fault::ConstraintCleaner(&deployment).Clean(one).ok());
  const auto hmm = fault::HmmCleaner(&deployment).Clean(one);
  ASSERT_TRUE(hmm.ok());
  EXPECT_EQ(hmm->size(), 1u);
  EXPECT_EQ((*hmm)[0].region, 2u);
}

// ------------------------------------------------------------------ query

TEST(EdgeCaseTest, DtwBandNarrowerThanLengthMismatch) {
  // A very narrow band on wildly different lengths must stay finite via
  // the scaled band centre.
  Trajectory a(1), b(2);
  for (int i = 0; i < 100; ++i) {
    a.AppendUnordered(TrajectoryPoint(i * 1000, Point(i * 10.0, 0)));
  }
  for (int i = 0; i < 10; ++i) {
    b.AppendUnordered(TrajectoryPoint(i * 1000, Point(i * 100.0, 0)));
  }
  const double d = query::DtwDistance(a, b, 2);
  EXPECT_TRUE(std::isfinite(d));
}

// --------------------------------------------------------------- pipeline

TEST(EdgeCaseTest, FullPipelineOnPathologicalInput) {
  // A trajectory with duplicates, out-of-order points (sorted first),
  // outliers, and noise goes through the full cleaning pipeline without
  // errors.
  Rng rng(6);
  sim::TrajectorySimulator simulator({}, &rng);
  Trajectory truth = simulator.RandomWaypoint(BBox(0, 0, 1000, 1000), 200, 1);
  Trajectory dirty = sim::AddGpsNoise(truth, 15.0, &rng);
  dirty = sim::AddOutliers(dirty, 0.05, 100, 300, &rng);
  dirty = sim::DuplicateSamples(dirty, 0.2, &rng);
  dirty.SortByTime();

  TrajectoryPipeline pipeline;
  pipeline.Add(std::make_unique<outlier::SpeedOutlierRepairStage>());
  pipeline.Add("smooth", [](const Trajectory& in) {
    return uncertainty::MovingAverageSmooth(in, 2);
  });
  pipeline.Add("simplify", [](const Trajectory& in) {
    return reduce::DouglasPeuckerSed(in, 8.0);
  });
  const auto out = pipeline.Run(dirty);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->IsTimeOrdered());
  EXPECT_LT(out->size(), dirty.size());
  EXPECT_GE(out->size(), 2u);
}

}  // namespace
}  // namespace sidq

// Tests for the resilience layer: ExecContext deadlines on a virtual
// clock, deterministic retry/backoff, the FailPoint chaos registry,
// graceful-degradation ladders (HMM -> geometric snap, particle filter ->
// Kalman -> passthrough), and the FleetRunner best-effort policy with
// quarantine annotations and the circuit breaker.

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/clock.h"
#include "core/exec_context.h"
#include "core/failpoint.h"
#include "core/pipeline.h"
#include "core/random.h"
#include "core/retry.h"
#include "core/status.h"
#include "core/trajectory.h"
#include "exec/fleet_runner.h"
#include "query/similarity.h"
#include "refine/hmm_map_matcher.h"
#include "refine/kalman.h"
#include "refine/particle_filter.h"
#include "sim/road_network.h"

namespace sidq {
namespace {

using exec::FailurePolicy;
using exec::FleetResult;
using exec::FleetRunner;

class ResilienceTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAllFailPoints(); }
};

// --------------------------------------------------------- clock & context

TEST_F(ResilienceTest, VirtualClockAdvancesOnlyForward) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowMs(), 0);
  clock.Advance(250);
  EXPECT_EQ(clock.NowMs(), 250);
  clock.SleepMs(50);  // sleeping IS advancing
  EXPECT_EQ(clock.NowMs(), 300);
  clock.Advance(-10);  // time never goes backwards
  EXPECT_EQ(clock.NowMs(), 300);
}

TEST_F(ResilienceTest, ExecContextDeadlineTripsOnVirtualClock) {
  VirtualClock clock;
  const ExecContext ctx = ExecContext::After(&clock, 100);
  ASSERT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_EQ(ctx.RemainingMs(), 100);
  clock.Advance(100);
  EXPECT_TRUE(ctx.Check().ok());  // at the deadline, not past it
  clock.Advance(1);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(ctx.RemainingMs(), 0);
}

TEST_F(ResilienceTest, ExecContextCancellationBeatsDeadline) {
  VirtualClock clock;
  std::atomic<bool> cancel{false};
  const ExecContext ctx = ExecContext::After(&clock, 100, &cancel);
  EXPECT_TRUE(ctx.Check().ok());
  cancel.store(true);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST_F(ResilienceTest, DefaultContextNeverFails) {
  const ExecContext ctx;
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_FALSE(ctx.has_deadline());
  ctx.Stall(1000000);  // no clock: instant no-op
  EXPECT_TRUE(ctx.Check().ok());
}

// ----------------------------------------------------------------- retry

TEST_F(ResilienceTest, RetryClassifiesTransientVsPermanent) {
  RetryPolicy policy;
  policy.max_retries = 3;
  EXPECT_TRUE(policy.ShouldRetry(Status::Unavailable("x"), 0));
  EXPECT_TRUE(policy.ShouldRetry(Status::ResourceExhausted("x"), 2));
  EXPECT_FALSE(policy.ShouldRetry(Status::Unavailable("x"), 3));  // spent
  EXPECT_FALSE(policy.ShouldRetry(Status::DataLoss("x"), 0));
  EXPECT_FALSE(policy.ShouldRetry(Status::InvalidArgument("x"), 0));
  // The budget is gone: degrade instead of paying full price again.
  EXPECT_FALSE(policy.ShouldRetry(Status::DeadlineExceeded("x"), 0));
}

TEST_F(ResilienceTest, BackoffGrowsExponentiallyAndIsDeterministic) {
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.initial_backoff_ms = 10;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 60;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(policy.BackoffMs(0, rng), 10);
  EXPECT_EQ(policy.BackoffMs(1, rng), 20);
  EXPECT_EQ(policy.BackoffMs(2, rng), 40);
  EXPECT_EQ(policy.BackoffMs(3, rng), 60);  // capped
  EXPECT_EQ(policy.BackoffMs(9, rng), 60);

  policy.jitter = 0.2;
  Rng a(77), b(77);
  for (int attempt = 0; attempt < 4; ++attempt) {
    const double base = std::min(10.0 * (1 << attempt), 60.0);
    const int64_t ba = policy.BackoffMs(attempt, a);
    EXPECT_EQ(ba, policy.BackoffMs(attempt, b));  // same substream, same wait
    EXPECT_GE(ba, static_cast<int64_t>(0.8 * base) - 1);
    EXPECT_LE(ba, static_cast<int64_t>(1.2 * base) + 1);
  }
}

// -------------------------------------------------------------- failpoints

TEST_F(ResilienceTest, DisarmedSiteNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(EvaluateFailPoint("test.nowhere", 7).has_value());
  }
  EXPECT_EQ(FailPointHits("test.nowhere"), 0u);
}

TEST_F(ResilienceTest, FailFirstNFiresExactlyNTimesPerKey) {
  FailPointConfig cfg;
  cfg.action = FailPointAction::kTransientError;
  cfg.fail_first_n = 2;
  ArmFailPoint("test.first_n", cfg);
  for (uint64_t key : {1ull, 2ull}) {
    EXPECT_TRUE(EvaluateFailPoint("test.first_n", key).has_value());
    EXPECT_TRUE(EvaluateFailPoint("test.first_n", key).has_value());
    EXPECT_FALSE(EvaluateFailPoint("test.first_n", key).has_value());
    EXPECT_FALSE(EvaluateFailPoint("test.first_n", key).has_value());
  }
  EXPECT_EQ(FailPointHits("test.first_n"), 4u);
  // Re-arming resets the per-key counts: the next evaluation fires again.
  ArmFailPoint("test.first_n", cfg);
  EXPECT_TRUE(EvaluateFailPoint("test.first_n", 1).has_value());
  EXPECT_EQ(FailPointHits("test.first_n"), 1u);
}

TEST_F(ResilienceTest, ProbabilityDrawsAreSeedDeterministic) {
  FailPointConfig cfg;
  cfg.probability = 0.4;
  cfg.seed = 99;
  auto pattern = [&]() {
    ArmFailPoint("test.prob", cfg);
    std::vector<bool> fired;
    for (uint64_t key = 0; key < 32; ++key) {
      for (int eval = 0; eval < 4; ++eval) {
        fired.push_back(EvaluateFailPoint("test.prob", key).has_value());
      }
    }
    return fired;
  };
  const auto first = pattern();
  const auto second = pattern();
  EXPECT_EQ(first, second);
  size_t hits = 0;
  for (const bool f : first) hits += f ? 1 : 0;
  EXPECT_GT(hits, 0u);            // ~0.4 * 128
  EXPECT_LT(hits, first.size());  // and not everything
}

TEST_F(ResilienceTest, InjectedStallConsumesContextBudget) {
  FailPointConfig cfg;
  cfg.action = FailPointAction::kStall;
  cfg.stall_ms = 400;
  ArmFailPoint("test.stall", cfg);
  VirtualClock clock;
  const ExecContext ctx = ExecContext::After(&clock, 300);
  EXPECT_TRUE(MaybeInjectFailPoint("test.stall", 1, &ctx).ok());
  EXPECT_EQ(clock.NowMs(), 400);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
}

// ----------------------------------------------------- retry + ladder

Trajectory MakeLine(ObjectId id, size_t n) {
  Trajectory t(id);
  for (size_t k = 0; k < n; ++k) {
    t.AppendUnordered(TrajectoryPoint(static_cast<Timestamp>(k) * 1000,
                                      geometry::Point(10.0 * k, 5.0), 5.0));
  }
  return t;
}

TEST_F(ResilienceTest, TransientStageSucceedsViaRetryAndBacksOff) {
  FailPointConfig cfg;
  cfg.action = FailPointAction::kTransientError;
  cfg.fail_first_n = 2;
  ArmFailPoint("test.gateway", cfg);

  const ContextLambdaStage stage(
      "gateway", [](const Trajectory& in, const StageContext& ctx)
                     -> StatusOr<Trajectory> {
        SIDQ_RETURN_IF_ERROR(
            MaybeInjectFailPoint("test.gateway", in.object_id(), ctx.exec));
        return in;
      });

  VirtualClock clock;
  const ExecContext exec(&clock);
  RetryPolicy retry;
  retry.max_retries = 3;
  retry.jitter = 0.0;
  Rng retry_rng(5);
  RunTrace trace;
  StageContext ctx;
  ctx.retry_rng = &retry_rng;
  ctx.exec = &exec;
  ctx.retry = &retry;
  ctx.trace = &trace;

  const Trajectory input = MakeLine(9, 4);
  const auto out = RunStageWithRetry(stage, input, ctx);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(trace.retries, 2);
  // Two backoffs on the virtual clock: 10 + 20 ms.
  EXPECT_EQ(clock.NowMs(), 30);
  EXPECT_EQ(FailPointHits("test.gateway"), 2u);
}

TEST_F(ResilienceTest, PermanentErrorIsNotRetried) {
  int attempts = 0;
  ContextLambdaStage stage("broken",
                           [&attempts](const Trajectory&, const StageContext&)
                               -> StatusOr<Trajectory> {
                             ++attempts;
                             return Status::DataLoss("bad sensor");
                           });
  RetryPolicy retry;
  retry.max_retries = 5;
  RunTrace trace;
  StageContext ctx;
  ctx.retry = &retry;
  ctx.trace = &trace;
  const auto out = RunStageWithRetry(stage, MakeLine(1, 3), ctx);
  EXPECT_EQ(out.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(trace.retries, 0);
}

TEST_F(ResilienceTest, LadderFallsToNextRungAndRecordsDegradeEvent) {
  LadderStage ladder("refine");
  ladder.AddRung("fancy", [](const Trajectory&) -> StatusOr<Trajectory> {
    return Status::DeadlineExceeded("too slow");
  });
  ladder.AddRung("cheap", [](const Trajectory& in) -> StatusOr<Trajectory> {
    return in;
  });
  RunTrace trace;
  StageContext ctx;
  ctx.trace = &trace;
  const auto out = ladder.ApplyCtx(MakeLine(3, 4), ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(trace.degraded.size(), 1u);
  EXPECT_TRUE(trace.degraded_mode());
  EXPECT_EQ(trace.degraded[0].stage, "refine");
  EXPECT_EQ(trace.degraded[0].rung, 1);
  EXPECT_EQ(trace.degraded[0].rung_name, "cheap");
  EXPECT_EQ(trace.degraded[0].cause.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ResilienceTest, LadderExhaustionReportsLastRungError) {
  LadderStage ladder("refine");
  ladder.AddRung("a", [](const Trajectory&) -> StatusOr<Trajectory> {
    return Status::NotFound("no candidates");
  });
  ladder.AddRung("b", [](const Trajectory&) -> StatusOr<Trajectory> {
    return Status::DataLoss("also broken");
  });
  const auto out = ladder.ApplyCtx(MakeLine(3, 4), StageContext{});
  EXPECT_EQ(out.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(out.status().message().find("exhausted all 2 rungs"),
            std::string::npos);
}

TEST_F(ResilienceTest, LadderPropagatesCancellationWithoutDegrading) {
  LadderStage ladder("refine");
  ladder.AddRung("a", [](const Trajectory&) -> StatusOr<Trajectory> {
    return Status::Cancelled("fleet cancelled");
  });
  ladder.AddRung("b", [](const Trajectory& in) -> StatusOr<Trajectory> {
    return in;
  });
  RunTrace trace;
  StageContext ctx;
  ctx.trace = &trace;
  const auto out = ladder.ApplyCtx(MakeLine(3, 4), ctx);
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(trace.degraded.empty());
}

// --------------------------------------- deadline degradation, real stages

// A road network plus an on-road trajectory for the map-matching ladder.
struct RoadFixture {
  sim::RoadNetwork net;
  Trajectory noisy;

  explicit RoadFixture(uint64_t seed) {
    Rng rng(seed);
    net = sim::MakeGridRoadNetwork(4, 4, 120.0, 4.0, 0.0, &rng);
    net.BuildSpatialIndex();
    noisy.set_object_id(42);
    // Walk along the first row of streets with mild GPS noise.
    for (size_t k = 0; k < 8; ++k) {
      noisy.AppendUnordered(TrajectoryPoint(
          static_cast<Timestamp>(k) * 1000,
          geometry::Point(20.0 + 45.0 * static_cast<double>(k) +
                              rng.Gaussian(0.0, 4.0),
                          rng.Gaussian(0.0, 4.0)),
          5.0));
    }
  }
};

// The documented HMM ladder: full Viterbi matching on top, geometric
// nearest-road snapping as the cheap deadline-free fallback.
LadderStage MakeMapMatchLadder(const sim::RoadNetwork* net) {
  LadderStage ladder("map_match");
  ladder.AddRungCtx("hmm_viterbi",
                    [net](const Trajectory& in, const StageContext& ctx)
                        -> StatusOr<Trajectory> {
                      const refine::HmmMapMatcher matcher(net);
                      SIDQ_ASSIGN_OR_RETURN(auto match,
                                            matcher.Match(in, ctx.exec));
                      return match.matched;
                    });
  ladder.AddRung("nearest_road_snap",
                 [net](const Trajectory& in) -> StatusOr<Trajectory> {
                   Trajectory out(in.object_id());
                   for (const TrajectoryPoint& pt : in.points()) {
                     SIDQ_ASSIGN_OR_RETURN(EdgeId e, net->NearestEdge(pt.p));
                     TrajectoryPoint snapped = pt;
                     snapped.p = net->ProjectToEdge(e, pt.p);
                     out.AppendUnordered(snapped);
                   }
                   return out;
                 });
  return ladder;
}

TEST_F(ResilienceTest, DeadlineViterbiDegradesToGeometricSnap) {
  const RoadFixture fix(404);

  // A stalled Viterbi layer burns the whole budget; the next cooperative
  // check aborts the rung with kDeadlineExceeded.
  FailPointConfig cfg;
  cfg.action = FailPointAction::kStall;
  cfg.stall_ms = 1000;
  ArmFailPoint("refine.hmm.viterbi_row", cfg);

  const LadderStage ladder = MakeMapMatchLadder(&fix.net);
  VirtualClock clock;
  const ExecContext exec = ExecContext::After(&clock, 500);
  RunTrace trace;
  StageContext ctx;
  ctx.exec = &exec;
  ctx.trace = &trace;

  const auto out = ladder.ApplyCtx(fix.noisy, ctx);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_TRUE(trace.degraded_mode());
  EXPECT_EQ(trace.degraded[0].rung_name, "nearest_road_snap");
  EXPECT_EQ(trace.degraded[0].cause.code(), StatusCode::kDeadlineExceeded);

  // The fallback really snapped: every output point lies on some edge.
  for (const TrajectoryPoint& pt : out->points()) {
    const auto e = fix.net.NearestEdge(pt.p);
    ASSERT_TRUE(e.ok());
    EXPECT_LT(fix.net.DistanceToEdge(e.value(), pt.p), 1e-6);
  }

  // Disarmed, the same ladder runs the full Viterbi rung: no degradation.
  DisarmAllFailPoints();
  RunTrace clean_trace;
  StageContext clean_ctx;
  clean_ctx.exec = &exec;  // clock already past the old deadline...
  VirtualClock clock2;
  const ExecContext exec2 = ExecContext::After(&clock2, 500);
  clean_ctx.exec = &exec2;
  clean_ctx.trace = &clean_trace;
  const auto full = ladder.ApplyCtx(fix.noisy, clean_ctx);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_FALSE(clean_trace.degraded_mode());
}

TEST_F(ResilienceTest, ParticleFilterDegradesToKalmanOnDeadline) {
  FailPointConfig cfg;
  cfg.action = FailPointAction::kStall;
  cfg.stall_ms = 1000;
  ArmFailPoint("refine.particle_filter.step", cfg);

  LadderStage ladder("smooth");
  ladder.AddRungCtx("particle",
                    [](const Trajectory& in, const StageContext& ctx)
                        -> StatusOr<Trajectory> {
                      Rng fallback(123);
                      Rng* rng = ctx.rng != nullptr ? ctx.rng : &fallback;
                      const refine::ParticleFilter2D pf(
                          refine::ParticleFilter2D::Options{}, rng);
                      return pf.Filter(in, ctx.exec);
                    });
  ladder.AddRung("kalman", [](const Trajectory& in) -> StatusOr<Trajectory> {
    return refine::KalmanFilter2D().Filter(in);
  });
  ladder.AddRung("passthrough",
                 [](const Trajectory& in) -> StatusOr<Trajectory> {
                   return in;
                 });

  VirtualClock clock;
  const ExecContext exec = ExecContext::After(&clock, 500);
  Rng rng(7);
  RunTrace trace;
  StageContext ctx;
  ctx.rng = &rng;
  ctx.exec = &exec;
  ctx.trace = &trace;

  const auto out = ladder.ApplyCtx(MakeLine(8, 6), ctx);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_TRUE(trace.degraded_mode());
  EXPECT_EQ(trace.degraded[0].rung, 1);
  EXPECT_EQ(trace.degraded[0].rung_name, "kalman");
  EXPECT_EQ(trace.degraded[0].cause.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(out->size(), 6u);
}

// ------------------------------------------------- fleet best-effort mode

std::vector<Trajectory> MakeFleet(size_t n, size_t points) {
  std::vector<Trajectory> fleet;
  fleet.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    fleet.push_back(MakeLine(static_cast<ObjectId>(i), points));
  }
  return fleet;
}

TrajectoryPipeline MakePipelineFailingFor(ObjectId poisoned) {
  TrajectoryPipeline pipeline;
  pipeline.Add("validate",
               [poisoned](const Trajectory& in) -> StatusOr<Trajectory> {
                 if (in.object_id() == poisoned) {
                   return Status::DataLoss("sensor feed corrupted");
                 }
                 return in;
               });
  pipeline.AddSeeded("jitter",
                     [](const Trajectory& in, Rng& rng) -> StatusOr<Trajectory> {
                       Trajectory out(in.object_id());
                       for (const TrajectoryPoint& pt : in.points()) {
                         TrajectoryPoint moved = pt;
                         moved.p.x += rng.Gaussian(0.0, 0.5);
                         out.AppendUnordered(moved);
                       }
                       return out;
                     });
  return pipeline;
}

TEST_F(ResilienceTest, BestEffortQuarantinesOneFailureAndKeepsTheRest) {
  const size_t kFleet = 24;
  const ObjectId poisoned = 11;
  const auto fleet = MakeFleet(kFleet, 10);
  const TrajectoryPipeline pipeline = MakePipelineFailingFor(poisoned);

  FleetRunner::Options options;
  options.num_threads = 4;
  options.shard_size = 3;
  options.base_seed = 7;
  options.failure_policy = FailurePolicy::kBestEffort;
  options.virtual_time = true;
  const FleetRunner runner(&pipeline, options);
  const FleetResult result = runner.Run(fleet);

  // Best-effort: the run is usable even though ok() reports the failure.
  EXPECT_TRUE(result.partial_ok());
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.breaker_tripped);
  EXPECT_EQ(result.objects_quarantined, 1u);
  EXPECT_EQ(result.objects_degraded, 0u);
  EXPECT_EQ(result.shards_cancelled, 0u);

  // Exactly N-1 cleaned results plus one quarantine record.
  size_t ok_count = 0;
  for (size_t i = 0; i < kFleet; ++i) {
    if (result.statuses[i].ok()) ++ok_count;
  }
  EXPECT_EQ(ok_count, kFleet - 1);
  ASSERT_EQ(result.annotations.size(), 1u);
  const auto& a = result.annotations[0];
  EXPECT_EQ(a.id, poisoned);
  EXPECT_EQ(a.quality, ExecQuality::kQuarantined);
  EXPECT_EQ(a.status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(result.QuarantinedIndices(), std::vector<size_t>{11});

  const std::string summary = result.ResilienceSummary();
  EXPECT_NE(summary.find("23/24 full"), std::string::npos);
  EXPECT_NE(summary.find("1 quarantined"), std::string::npos);

  // The survivors are bit-identical to the serial per-object runs.
  for (size_t i = 0; i < kFleet; ++i) {
    if (!result.statuses[i].ok()) continue;
    Rng rng = Rng::ForKey(options.base_seed, fleet[i].object_id());
    const auto serial = pipeline.Run(fleet[i], &rng);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(result.cleaned[i].size(), serial->size());
    for (size_t k = 0; k < serial->size(); ++k) {
      EXPECT_EQ(result.cleaned[i][k].p.x, (*serial)[k].p.x);
    }
  }
}

TEST_F(ResilienceTest, CircuitBreakerTripsWhenFailureIsTheRule) {
  const auto fleet = MakeFleet(32, 8);
  TrajectoryPipeline pipeline;
  pipeline.Add("validate", [](const Trajectory& in) -> StatusOr<Trajectory> {
    if (in.object_id() % 2 == 0) return Status::DataLoss("half the fleet");
    return in;
  });

  FleetRunner::Options options;
  options.num_threads = 1;  // deterministic shard order for the assertion
  options.shard_size = 4;
  options.failure_policy = FailurePolicy::kBestEffort;
  options.max_quarantine_fraction = 0.25;
  options.virtual_time = true;
  const FleetRunner runner(&pipeline, options);
  const FleetResult result = runner.Run(fleet);

  EXPECT_TRUE(result.breaker_tripped);
  EXPECT_FALSE(result.partial_ok());
  EXPECT_GT(result.shards_cancelled, 0u);
  EXPECT_GT(result.objects_quarantined, 8u);  // past the 25% limit
  EXPECT_NE(result.ResilienceSummary().find("BREAKER TRIPPED"),
            std::string::npos);
}

TEST_F(ResilienceTest, FleetRetriesTransientFaultsDeterministically) {
  const size_t kFleet = 12;
  const auto fleet = MakeFleet(kFleet, 6);

  TrajectoryPipeline pipeline;
  pipeline.AddCtx("gateway",
                  [](const Trajectory& in, const StageContext& ctx)
                      -> StatusOr<Trajectory> {
                    SIDQ_RETURN_IF_ERROR(MaybeInjectFailPoint(
                        "test.fleet.gateway", in.object_id(), ctx.exec));
                    return in;
                  });

  FleetRunner::Options options;
  options.num_threads = 4;
  options.shard_size = 2;
  options.base_seed = 13;
  options.failure_policy = FailurePolicy::kBestEffort;
  options.retry.max_retries = 3;
  options.virtual_time = true;

  FailPointConfig cfg;
  cfg.action = FailPointAction::kTransientError;
  cfg.fail_first_n = 2;  // every object fails twice, then recovers
  ArmFailPoint("test.fleet.gateway", cfg);

  const FleetRunner runner(&pipeline, options);
  const FleetResult result = runner.Run(fleet);
  EXPECT_TRUE(result.ok()) << result.first_error;
  EXPECT_EQ(result.objects_quarantined, 0u);
  EXPECT_EQ(result.retries_total, 2 * kFleet);
  ASSERT_EQ(result.annotations.size(), kFleet);  // every object retried
  for (const auto& a : result.annotations) {
    EXPECT_EQ(a.quality, ExecQuality::kFull);
    EXPECT_EQ(a.retries, 2);
    EXPECT_TRUE(a.status.ok());
  }

  // With the fault gone, the output is identical: retries never perturb
  // what the stages compute.
  DisarmAllFailPoints();
  const FleetResult clean = runner.Run(fleet);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean.annotations.empty());
  for (size_t i = 0; i < kFleet; ++i) {
    ASSERT_EQ(clean.cleaned[i].size(), result.cleaned[i].size());
    for (size_t k = 0; k < clean.cleaned[i].size(); ++k) {
      EXPECT_EQ(clean.cleaned[i][k].p.x, result.cleaned[i][k].p.x);
      EXPECT_EQ(clean.cleaned[i][k].p.y, result.cleaned[i][k].p.y);
    }
  }
}

TEST_F(ResilienceTest, FailFastStillCancelsLikeBefore) {
  const auto fleet = MakeFleet(20, 6);
  const TrajectoryPipeline pipeline = MakePipelineFailingFor(0);
  FleetRunner::Options options;
  options.num_threads = 1;
  options.shard_size = 1;
  options.cancel_on_error = true;  // kFailFast default
  const FleetRunner runner(&pipeline, options);
  const FleetResult result = runner.Run(fleet);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.first_error.code(), StatusCode::kDataLoss);
  EXPECT_EQ(result.shards_cancelled, fleet.size() - 1);
  // Cancelled objects are annotated as quarantined (status records why).
  EXPECT_EQ(result.objects_quarantined, fleet.size());
}

// ----------------------------------------- deadline-bounded DP kernels

TEST_F(ResilienceTest, BoundedSimilarityMeasuresHonourDeadlines) {
  const Trajectory a = MakeLine(1, 64);
  const Trajectory b = MakeLine(2, 64);

  VirtualClock clock;
  const ExecContext live = ExecContext::After(&clock, 1000);
  VirtualClock expired;
  const ExecContext expired_ctx = ExecContext::After(&expired, 10);
  expired.Advance(20);

  const auto dtw_ok = query::DtwDistanceBounded(a, b, -1, &live);
  ASSERT_TRUE(dtw_ok.ok());
  EXPECT_DOUBLE_EQ(*dtw_ok, query::DtwDistance(a, b));

  const auto dtw_dead = query::DtwDistanceBounded(a, b, -1, &expired_ctx);
  EXPECT_EQ(dtw_dead.status().code(), StatusCode::kDeadlineExceeded);

  const auto fr_ok = query::DiscreteFrechetDistanceBounded(a, b, &live);
  ASSERT_TRUE(fr_ok.ok());
  EXPECT_DOUBLE_EQ(*fr_ok, query::DiscreteFrechetDistance(a, b));

  const auto fr_dead = query::DiscreteFrechetDistanceBounded(a, b, &expired_ctx);
  EXPECT_EQ(fr_dead.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace sidq

// Property tests for the spatial partitioners that back skew-aware fleet
// sharding: no point may be lost or double-counted, partition boxes must
// tile the space, and the adaptive quadtree must beat the uniform grid on
// the clustered workloads it exists for.

#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/random.h"
#include "geometry/bbox.h"
#include "geometry/point.h"
#include "query/partition.h"

namespace sidq {
namespace query {
namespace {

// A deliberately skewed workload: `cluster_fraction` of the points sit in a
// tight Gaussian blob, the rest spread uniformly over a much larger region.
std::vector<geometry::Point> MakeClusteredPoints(size_t n,
                                                 double cluster_fraction,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<geometry::Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(cluster_fraction)) {
      pts.emplace_back(1000.0 + rng.Gaussian(0.0, 30.0),
                       1000.0 + rng.Gaussian(0.0, 30.0));
    } else {
      pts.emplace_back(rng.Uniform(0.0, 10000.0), rng.Uniform(0.0, 10000.0));
    }
  }
  return pts;
}

size_t TotalLoad(const std::vector<Partition>& parts) {
  size_t total = 0;
  for (const Partition& p : parts) total += p.load;
  return total;
}

size_t NumContainingBoxes(const std::vector<Partition>& parts,
                          const geometry::Point& p) {
  size_t hits = 0;
  for (const Partition& part : parts) {
    if (part.box.Contains(p)) ++hits;
  }
  return hits;
}

TEST(PartitionPropertyTest, UniformGridLoadsSumToPointCount) {
  const auto pts = MakeClusteredPoints(5000, 0.85, 71);
  for (const auto& [cols, rows] :
       {std::pair<int, int>{1, 1}, {8, 8}, {16, 16}, {3, 7}}) {
    const auto parts = UniformGridPartition(pts, cols, rows);
    ASSERT_EQ(parts.size(), static_cast<size_t>(cols) * rows);
    EXPECT_EQ(TotalLoad(parts), pts.size()) << cols << "x" << rows;
  }
}

TEST(PartitionPropertyTest, AdaptiveQuadLoadsSumToPointCount) {
  const auto pts = MakeClusteredPoints(5000, 0.85, 71);
  for (const size_t max_load : {50u, 200u, 5000u}) {
    const auto parts = AdaptiveQuadPartition(pts, max_load);
    EXPECT_EQ(TotalLoad(parts), pts.size()) << "max_load " << max_load;
  }
  // A depth cap may leave partitions above max_load but must lose nothing.
  const auto shallow = AdaptiveQuadPartition(pts, 10, /*max_depth=*/3);
  EXPECT_EQ(TotalLoad(shallow), pts.size());
  EXPECT_LE(shallow.size(), 64u);  // 4^3 leaves at most
}

TEST(PartitionPropertyTest, EveryPointFallsInExactlyOneBox) {
  const auto pts = MakeClusteredPoints(4000, 0.8, 29);
  const auto grid = UniformGridPartition(pts, 12, 9);
  const auto quad = AdaptiveQuadPartition(pts, 64);
  for (const geometry::Point& p : pts) {
    EXPECT_EQ(NumContainingBoxes(grid, p), 1u);
    EXPECT_EQ(NumContainingBoxes(quad, p), 1u);
  }
}

TEST(PartitionPropertyTest, QuadBoxInteriorsAreDisjoint) {
  const auto pts = MakeClusteredPoints(4000, 0.8, 29);
  const auto quad = AdaptiveQuadPartition(pts, 64);
  for (size_t a = 0; a < quad.size(); ++a) {
    for (size_t b = a + 1; b < quad.size(); ++b) {
      const geometry::BBox& ba = quad[a].box;
      const geometry::BBox& bb = quad[b].box;
      const double w = std::min(ba.max_x, bb.max_x) -
                       std::max(ba.min_x, bb.min_x);
      const double h = std::min(ba.max_y, bb.max_y) -
                       std::max(ba.min_y, bb.min_y);
      // Neighbouring leaves may share an edge (w or h == 0) but never area.
      if (w > 0.0 && h > 0.0) {
        ADD_FAILURE() << "boxes " << a << " and " << b
                      << " overlap with area " << w * h;
      }
    }
  }
}

TEST(PartitionPropertyTest, AdaptiveImbalanceAtMostUniformOnSkewedLoad) {
  const auto pts = MakeClusteredPoints(10000, 0.85, 107);
  // Comparable partition budgets: a 16x16 grid has 256 cells; cap the quad
  // leaves at the grid's ideal per-cell load so both aim at the same
  // granularity.
  const auto grid = UniformGridPartition(pts, 16, 16);
  const auto quad =
      AdaptiveQuadPartition(pts, pts.size() / (16 * 16) + 1);
  const PartitionStats grid_stats = ComputeStats(grid);
  const PartitionStats quad_stats = ComputeStats(quad);

  // The blob lands in a handful of grid cells, so the grid's max load dwarfs
  // its mean; the quadtree keeps splitting exactly there.
  EXPECT_LE(quad_stats.imbalance, grid_stats.imbalance);
  EXPECT_GT(grid_stats.imbalance, 5.0)
      << "workload not skewed enough to be a meaningful fixture";
  EXPECT_LT(quad_stats.max_load, grid_stats.max_load);
}

}  // namespace
}  // namespace query
}  // namespace sidq
